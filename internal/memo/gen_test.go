package memo

import "testing"

func TestGenAdvancesOnPurge(t *testing.T) {
	c := New[int](16)
	g0 := c.Gen()
	c.Purge()
	if g1 := c.Gen(); g1 != g0+1 {
		t.Fatalf("Gen after purge = %d, want %d", g1, g0+1)
	}
	c.Purge()
	c.Purge()
	if g3 := c.Gen(); g3 != g0+3 {
		t.Fatalf("Gen after three purges = %d, want %d", g3, g0+3)
	}
}

func TestPutHashGenStoresAtCurrentGen(t *testing.T) {
	c := New[string](16)
	h := HashString("k")
	c.PutHashGen(h, "k", "v", c.Gen())
	if got, ok := c.GetHash(h, "k"); !ok || got != "v" {
		t.Fatalf("Get = %q,%v after current-gen put", got, ok)
	}
}

func TestPutHashGenDropsStaleStore(t *testing.T) {
	c := New[string](16)
	h := HashString("k")
	stale := c.Gen()
	c.Purge() // the generation the caller pinned is retired
	c.PutHashGen(h, "k", "v", stale)
	if got, ok := c.GetHash(h, "k"); ok {
		t.Fatalf("stale-gen put landed: Get = %q", got)
	}
	// A fresh-gen put for the same key still works.
	c.PutHashGen(h, "k", "v2", c.Gen())
	if got, ok := c.GetHash(h, "k"); !ok || got != "v2" {
		t.Fatalf("Get = %q,%v after fresh-gen put", got, ok)
	}
}
