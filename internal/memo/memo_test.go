package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int](8)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = %d, %v; want 2, true", v, ok)
	}
	c.Put("a", 10) // refresh overwrites
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("after refresh Get(a) = %d; want 10", v)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("Len = %d; want 2", n)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Single shard so the LRU order is global and observable.
	c := NewSharded[int](2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a is now most-recent
	c.Put("c", 3) // must evict b, the least-recent
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order ignored")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted; want it retained", k)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d; want 1", ev)
	}
}

func TestCounters(t *testing.T) {
	c := NewSharded[int](1, 1)
	c.Get("x") // miss
	c.Put("x", 1)
	c.Get("x")    // hit
	c.Put("y", 2) // evicts x
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("Stats = %+v; want 1 hit, 1 miss, 1 eviction, 1 entry", st)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("HitRate = %v; want 0.5", hr)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("HitRate of zero stats should be 0")
	}
}

func TestPurge(t *testing.T) {
	c := New[string](32)
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprint(i), "v")
	}
	c.Purge()
	if n := c.Len(); n != 0 {
		t.Fatalf("Len after Purge = %d; want 0", n)
	}
	if _, ok := c.Get("3"); ok {
		t.Fatal("purged entry still retrievable")
	}
	c.Put("3", "again")
	if _, ok := c.Get("3"); !ok {
		t.Fatal("cache unusable after Purge")
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New[int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("Len = %d; want 0", n)
	}
}

func TestShardCountRounding(t *testing.T) {
	// 5 shards rounds to 8; capacity 3 still gives every shard room for
	// at least one entry, so the effective capacity is >= requested.
	c := NewSharded[int](3, 5)
	if len(c.shards) != 8 {
		t.Fatalf("shards = %d; want 8", len(c.shards))
	}
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprint(i), i)
	}
	if n := c.Len(); n < 3 || n > 8 {
		t.Fatalf("Len = %d; want within [3, 8] (1 per shard)", n)
	}
}

func TestBoundedUnderChurn(t *testing.T) {
	const capacity = 64
	c := New[int](capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Put(fmt.Sprint(i), i)
	}
	// Per-shard rounding can admit slightly more than capacity, never
	// more than capacity + shard count.
	if n := c.Len(); n > capacity+DefaultShards {
		t.Fatalf("Len = %d; cache unbounded (capacity %d)", n, capacity)
	}
	if ev := c.Stats().Evictions; ev == 0 {
		t.Fatal("no evictions recorded under churn")
	}
}

// TestConcurrentStress hammers one cache from many goroutines; run with
// -race this verifies the sharded locking.
func TestConcurrentStress(t *testing.T) {
	c := New[int](128)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprint((w*7 + i) % 200) // overlapping key space
				if v, ok := c.Get(key); ok && v != len(key) {
					t.Errorf("Get(%s) = %d; want %d", key, v, len(key))
					return
				}
				c.Put(key, len(key))
				if i%97 == 0 {
					c.Stats()
				}
				if i%1009 == 0 {
					c.Purge()
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stress stats %+v; expected both hits and misses", st)
	}
}
