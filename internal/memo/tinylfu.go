// W-TinyLFU-style admission for the memo cache (DESIGN.md §15).
//
// The problem with plain LRU under production recipe traffic: the
// phrase distribution is heavily skewed (a small head like "1 cup
// sugar" recurs across the whole corpus), and one cold bulk scan —
// 118k recipes of mostly-distinct phrases streaming through /v1/batch
// — evicts that entire hot head even though each scan key will never
// be seen again. Recency alone cannot tell a rising star from a
// one-hit wonder.
//
// W-TinyLFU fixes this with frequency-gated admission. Each shard
// keeps:
//
//   - a 4-bit count-min sketch (4 probe positions per key, counters
//     saturating at 15, 16 packed per uint64 word) estimating how
//     often each key hash has been looked up;
//   - a doorkeeper bloom filter absorbing the first occurrence of
//     every key, so the sketch's nibbles are spent on keys seen at
//     least twice — one-hit wonders never touch a counter;
//   - a small window LRU (~1% of shard capacity, min 1 entry) where
//     every new key starts, giving bursty new arrivals a grace period
//     to accumulate frequency;
//   - the main LRU segment (the remaining capacity), which a
//     window-overflow candidate enters only by winning a frequency
//     duel: estimate(candidate) > estimate(main eviction victim).
//     Losers are dropped and counted as rejections.
//
// Aging: after sampleFactor×capacity sketch increments every counter
// is halved and the doorkeeper cleared, so frequency estimates decay
// and yesterday's hot keys cannot squat forever.
//
// Everything runs under the shard mutex the LRU path already holds,
// on the key hash the caller already computed (hash-once API), with
// zero allocations on the warm path: a Get hit is nibble arithmetic
// plus a list relink; the sketch and doorkeeper are fixed arrays
// allocated at construction.
package memo

import "fmt"

// Policy selects the cache's eviction policy. The zero value is
// PolicyLRU, so existing constructors and struct literals keep plain
// LRU semantics.
type Policy uint8

const (
	// PolicyLRU is classic sharded LRU: every new key is admitted,
	// the least-recently-used entry of a full shard is evicted.
	PolicyLRU Policy = iota
	// PolicyTinyLFU is the W-TinyLFU-style windowed admission policy
	// described in this file's doc comment.
	PolicyTinyLFU
)

// String returns the spelling ParsePolicy accepts ("lru", "tinylfu").
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyTinyLFU:
		return "tinylfu"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy parses the -cache-policy flag spelling of a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "lru":
		return PolicyLRU, nil
	case "tinylfu":
		return PolicyTinyLFU, nil
	default:
		return PolicyLRU, fmt.Errorf("unknown cache policy %q (want lru or tinylfu)", s)
	}
}

// windowFrac is the window segment's share of shard capacity: 1/100,
// minimum one entry. Caffeine's default; large enough to absorb
// bursts of genuinely-new hot keys, small enough that a scan flowing
// through the window cannot displace meaningful main-segment state.
const windowFrac = 100

// sampleFactor scales the sketch aging period: counters are halved
// after sampleFactor×capacity increments. 10× means a key must be
// re-seen within roughly ten cache-fills of traffic to keep its
// frequency — the TinyLFU paper's W/C ratio.
const sampleFactor = 10

// initTinyLFU sizes the window/main split and the frequency sketch
// for a shard holding perShard entries. Called once at construction.
func (s *shard[V]) initTinyLFU(perShard int) {
	s.windowCap = perShard / windowFrac
	if s.windowCap < 1 {
		s.windowCap = 1
	}
	s.mainCap = perShard - s.windowCap
	s.sk.init(perShard)
}

// insertTinyLFU adds a new key to the window segment and, on window
// overflow, runs the admission duel. Caller holds the shard mutex and
// has verified the key is absent.
func (s *shard[V]) insertTinyLFU(h uint64, key string, val V) {
	e := &entry[V]{key: key, val: val, h: h, seg: segWindow}
	s.m[key] = e
	s.wPushFront(e)
	s.windowLen++
	if s.windowLen <= s.windowCap {
		return
	}

	// Window overflow: the window's LRU tail is the admission
	// candidate. With windowCap >= 1 the candidate is never the entry
	// just inserted unless it is the only window entry, which cannot
	// overflow.
	cand := s.wtail
	s.wUnlink(cand)
	s.windowLen--

	if s.mainCap == 0 {
		// Degenerate capacity (1-entry shard): the window is the
		// whole cache and behaves as plain LRU.
		delete(s.m, cand.key)
		s.evictions++
		return
	}
	if s.mainLen < s.mainCap {
		s.admit(cand)
		return
	}
	// The candidate's side of the duel deliberately excludes the
	// doorkeeper bonus: a key seen once this aging period has sketch
	// count 0 and can never beat a resident victim (the duel is
	// strict), so one-hit wonders — the entire scan population — are
	// structurally unadmittable. The victim keeps the bonus, biasing
	// ties toward incumbency. A key must be seen twice within one
	// aging period to earn main-segment residency.
	victim := s.tail
	if s.sk.estimateSketch(cand.h) > s.sk.estimate(victim.h) {
		s.unlink(victim)
		delete(s.m, victim.key)
		s.mainLen--
		s.evictions++
		s.admit(cand)
		return
	}
	// The candidate is no more frequent than the main segment's
	// coldest entry — a one-hit wonder or scan key. Drop it; its
	// sketch counts survive, so if it comes back it can win later.
	delete(s.m, cand.key)
	s.rejections++
}

func (s *shard[V]) admit(e *entry[V]) {
	e.seg = segMain
	s.pushFront(e)
	s.mainLen++
	s.admissions++
}

// --- window-segment intrusive list (mirrors the main-list helpers) ---

func (s *shard[V]) wPushFront(e *entry[V]) {
	e.prev = nil
	e.next = s.whead
	if s.whead != nil {
		s.whead.prev = e
	}
	s.whead = e
	if s.wtail == nil {
		s.wtail = e
	}
}

func (s *shard[V]) wUnlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.whead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.wtail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[V]) wMoveToFront(e *entry[V]) {
	if s.whead == e {
		return
	}
	s.wUnlink(e)
	s.wPushFront(e)
}

// --- frequency sketch: doorkeeper + 4-bit count-min ---

// sketch estimates per-key-hash access frequency. Counters are 4-bit
// saturating nibbles, 16 per uint64 word; each key maps to 4 probe
// positions (seed-mixed from the 64-bit key hash the cache already
// computed) and its estimate is the minimum nibble — the classic
// count-min bound, so collisions only ever over-estimate. The
// doorkeeper bloom filter (2 probes over a separate bitset) absorbs
// the first occurrence of every key: estimate = min-nibble +
// (doorkeeper hit ? 1 : 0), and the nibbles are only incremented for
// keys already past the doorkeeper.
type sketch struct {
	words  []uint64 // nibble-packed counters; len = counters/16
	mask   uint64   // counters - 1 (counters is a power of two)
	door   []uint64 // doorkeeper bitset; len = doorBits/64
	dmask  uint64   // doorBits - 1
	events int      // increments since last aging reset
	sample int      // aging period: halve counters at events == sample
	resets uint64   // lifetime aging resets (Stats.SketchResets)
}

// seeds de-correlate the 4 probe positions derived from one key hash.
// Arbitrary odd 64-bit constants (golden-ratio family).
var sketchSeeds = [4]uint64{
	0x9e3779b97f4a7c15,
	0xc2b2ae3d27d4eb4f,
	0x165667b19e3779f9,
	0x27d4eb2f165667c5,
}

// mix64 is the splitmix64 finalizer — cheap avalanche so probe
// indices use all bits of the FNV-1a key hash.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (k *sketch) init(capacity int) {
	// 16 counters (one packed word) per cache entry, matching
	// Caffeine's table sizing: 4 probes land in 16× the entry count,
	// so two resident keys rarely share even one nibble.
	counters := 1024
	for counters < 16*capacity {
		counters <<= 1
	}
	k.words = make([]uint64, counters/16)
	k.mask = uint64(counters - 1)
	// Doorkeeper: 4 bits per counter (64 per cache entry). One aging
	// period admits ~sample distinct first-occurrences; at 64 bits per
	// entry the filter stays sparse enough that a one-hit wonder's
	// false-positive odds are a few percent, not tens — a saturated
	// doorkeeper would hand every scan key a spurious +1 in the
	// admission duel. It is cleared on every reset.
	doorBits := counters * 4
	k.door = make([]uint64, doorBits/64)
	k.dmask = uint64(doorBits - 1)
	k.sample = sampleFactor * capacity
	if k.sample < 64 {
		k.sample = 64
	}
}

// touch records one access of key hash h: first occurrence sets the
// doorkeeper, subsequent occurrences bump the 4 count-min nibbles.
// Runs the aging reset when the sample period elapses.
func (k *sketch) touch(h uint64) {
	if !k.doorSet(h) {
		for i := range sketchSeeds {
			idx := mix64(h^sketchSeeds[i]) & k.mask
			word := idx >> 4
			shift := (idx & 15) << 2
			if (k.words[word]>>shift)&0xf < 15 {
				k.words[word] += 1 << shift
			}
		}
	}
	k.events++
	if k.events >= k.sample {
		k.age()
	}
}

// estimate returns the full frequency estimate for key hash h:
// min-nibble plus the doorkeeper's one absorbed occurrence.
func (k *sketch) estimate(h uint64) uint64 {
	min := k.estimateSketch(h)
	if k.doorContains(h) {
		min++
	}
	return min
}

// estimateSketch is estimate without the doorkeeper bonus — the
// count of occurrences past the first this aging period.
func (k *sketch) estimateSketch(h uint64) uint64 {
	min := uint64(15)
	for i := range sketchSeeds {
		idx := mix64(h^sketchSeeds[i]) & k.mask
		n := (k.words[idx>>4] >> ((idx & 15) << 2)) & 0xf
		if n < min {
			min = n
		}
	}
	return min
}

// doorSet adds h to the doorkeeper, reporting whether it was absent
// (true: this is the key's first occurrence this aging period).
func (k *sketch) doorSet(h uint64) bool {
	m := mix64(h)
	i1, i2 := m&k.dmask, (m>>32)&k.dmask
	b1, b2 := k.door[i1>>6]&(1<<(i1&63)), k.door[i2>>6]&(1<<(i2&63))
	if b1 != 0 && b2 != 0 {
		return false
	}
	k.door[i1>>6] |= 1 << (i1 & 63)
	k.door[i2>>6] |= 1 << (i2 & 63)
	return true
}

func (k *sketch) doorContains(h uint64) bool {
	m := mix64(h)
	i1, i2 := m&k.dmask, (m>>32)&k.dmask
	return k.door[i1>>6]&(1<<(i1&63)) != 0 && k.door[i2>>6]&(1<<(i2&63)) != 0
}

// age halves every counter (nibble-parallel shift: the 0x7777… mask
// clears the bit each nibble's neighbor shifted in) and clears the
// doorkeeper, so frequency estimates decay exponentially with
// traffic. Consistent with halving the counts, the event budget is
// halved rather than zeroed — steady state ages every sample/2
// increments, matching the classic reset schedule.
func (k *sketch) age() {
	for i := range k.words {
		k.words[i] = (k.words[i] >> 1) & 0x7777777777777777
	}
	for i := range k.door {
		k.door[i] = 0
	}
	k.events >>= 1
	k.resets++
}
