//go:build !race

package memo

const raceEnabled = false
