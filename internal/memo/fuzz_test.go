package memo

import (
	"fmt"
	"testing"
)

// FuzzMemoAdmission model-checks the cache against a reference map
// under byte-stream-decoded op sequences, for both policies. The
// reference tracks the last value Put for each key and whether it was
// stored since the last Purge; the cache may evict or reject whatever
// admission decides, but it must never fabricate, corrupt, or
// resurrect a value, never exceed capacity, and its counters must
// reconcile exactly with the op counts.
func FuzzMemoAdmission(f *testing.F) {
	f.Add([]byte{2, 4, 0x00, 0x10, 0x21, 0x12, 0x30, 0x41})
	f.Add([]byte{0, 1, 0x10, 0x00, 0x10, 0x00, 0x10, 0x00})
	f.Add([]byte{15, 2, 0x1f, 0x2f, 0x3f, 0x0f, 0x1e, 0x2e, 0x3e, 0x0e})
	f.Add([]byte{7, 8, 0x10, 0x11, 0x12, 0x13, 0x30, 0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		capacity := 1 + int(data[0]%24)
		shards := 1 << (data[1] % 3)
		ops := data[2:]
		for _, p := range []Policy{PolicyLRU, PolicyTinyLFU} {
			checkModel(t, p, capacity, shards, ops)
		}
	})
}

func checkModel(t *testing.T, p Policy, capacity, shards int, ops []byte) {
	c := NewPolicy[uint16](capacity, shards, p)

	// Reference model: last value stored per key, and whether the key
	// has been Put since the most recent Purge (a hit on a key without
	// a post-purge Put is a resurrection).
	lastVal := map[string]uint16{}
	putSincePurge := map[string]bool{}
	keyOf := func(b byte) string { return fmt.Sprintf("k%02d", b%48) }

	var lookups, puts uint64
	for i, op := range ops {
		key := keyOf(op & 0x0f)
		val := uint16(i)
		switch op >> 4 {
		case 1: // put
			lastVal[key] = val
			putSincePurge[key] = true
			c.Put(key, val)
			puts++
		case 3: // purge
			putSincePurge = map[string]bool{}
			c.Purge()
		case 4: // gen-checked put racing a purge
			gen := c.Gen()
			c.Purge()
			putSincePurge = map[string]bool{}
			c.PutHashGen(HashString(key), key, val, gen)
			// The stale store must drop; the model records nothing.
		case 5: // byte-spelling lookup
			lookups++
			if v, ok := c.GetBytes([]byte(key)); ok {
				if !putSincePurge[key] {
					t.Fatalf("%v: GetBytes(%q) hit resurrected a purged entry", p, key)
				}
				if want := lastVal[key]; v != want {
					t.Fatalf("%v: GetBytes(%q) = %d, want last-put %d", p, key, v, want)
				}
			}
		default: // lookup (the dominant op: 11 of 16 opcodes)
			lookups++
			if v, ok := c.Get(key); ok {
				if !putSincePurge[key] {
					t.Fatalf("%v: Get(%q) hit resurrected a purged entry", p, key)
				}
				if want := lastVal[key]; v != want {
					t.Fatalf("%v: Get(%q) = %d, want last-put %d", p, key, v, want)
				}
			}
		}
		if c.Len() > c.Capacity() {
			t.Fatalf("%v: Len %d exceeds Capacity %d after op %d", p, c.Len(), c.Capacity(), i)
		}
	}

	st := c.Stats()
	if st.Hits+st.Misses != lookups {
		t.Fatalf("%v: hits(%d)+misses(%d) != %d lookups", p, st.Hits, st.Misses, lookups)
	}
	if p == PolicyLRU && (st.Rejections != 0 || st.Admissions != 0) {
		t.Fatalf("%v: admission counters moved under LRU: %+v", p, st)
	}
	if st.Entries > st.Capacity {
		t.Fatalf("%v: entries %d exceed capacity %d", p, st.Entries, st.Capacity)
	}
	verifyShardStructureF(t, c, p)
}

// verifyShardStructureF is verifyShardStructure for fatal fuzz use —
// list/map/segment bookkeeping must reconcile after every op stream.
func verifyShardStructureF(t *testing.T, c *Cache[uint16], p Policy) {
	for i := range c.shards {
		s := &c.shards[i]
		wn := 0
		for e := s.whead; e != nil; e = e.next {
			wn++
		}
		mn := 0
		for e := s.head; e != nil; e = e.next {
			mn++
		}
		if wn+mn != len(s.m) {
			t.Fatalf("%v: shard %d lists hold %d entries, map %d", p, i, wn+mn, len(s.m))
		}
		if p == PolicyTinyLFU && (wn != s.windowLen || mn != s.mainLen) {
			t.Fatalf("%v: shard %d lengths %d/%d disagree with windowLen=%d mainLen=%d",
				p, i, wn, mn, s.windowLen, s.mainLen)
		}
	}
}
