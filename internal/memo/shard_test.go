package memo

import (
	"fmt"
	"sync"
	"testing"
)

// TestShardIndexStable pins the ownership contract the sharded batch
// dispatch builds on: a key's shard is a pure function of its bytes —
// identical across Get/Put spellings, repeated calls, and concurrent
// storms — so "the same phrase always lands on the same shard".
func TestShardIndexStable(t *testing.T) {
	c := NewSharded[int](1024, 8)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("phrase %d cups flour", i)
	}
	want := make([]int, len(keys))
	for i, k := range keys {
		want[i] = c.ShardIndex(HashString(k))
		if got := c.ShardIndex(Hash([]byte(k))); got != want[i] {
			t.Fatalf("ShardIndex(Hash(%q)) = %d, string spelling gives %d", k, got, want[i])
		}
		if want[i] < 0 || want[i] >= c.ShardCount() {
			t.Fatalf("ShardIndex(%q) = %d out of range [0,%d)", k, want[i], c.ShardCount())
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 100; rep++ {
				for i, k := range keys {
					if got := c.ShardIndex(HashString(k)); got != want[i] {
						t.Errorf("shard for %q moved: %d → %d", k, want[i], got)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestHashVariantsAgree: every Get/Put spelling (string, bytes, with or
// without a precomputed hash) must hit the same entry.
func TestHashVariantsAgree(t *testing.T) {
	c := New[string](128)
	key := "2 cups all-purpose flour"
	h := HashString(key)
	if h != Hash([]byte(key)) {
		t.Fatal("Hash and HashString disagree")
	}
	c.PutHash(h, key, "v1")
	if v, ok := c.Get(key); !ok || v != "v1" {
		t.Fatalf("Get after PutHash = %q, %v", v, ok)
	}
	if v, ok := c.GetHash(h, key); !ok || v != "v1" {
		t.Fatalf("GetHash = %q, %v", v, ok)
	}
	if v, ok := c.GetBytes([]byte(key)); !ok || v != "v1" {
		t.Fatalf("GetBytes = %q, %v", v, ok)
	}
	if v, ok := c.GetBytesHash(h, []byte(key)); !ok || v != "v1" {
		t.Fatalf("GetBytesHash = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 4 || st.Misses != 0 {
		t.Fatalf("stats after 4 hits: %+v", st)
	}
}

// TestPerShardStatsSumExact: the per-shard counters must aggregate to
// the exact lifetime totals under a concurrent storm — the "batched
// flush to the aggregate" happens on read and may not lose updates.
func TestPerShardStatsSumExact(t *testing.T) {
	const (
		goroutines = 32
		perG       = 500
	)
	c := NewSharded[int](1<<14, 16)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i)
				c.Get(key) // always a miss: keys are unique per goroutine
				c.Put(key, i)
				c.Get(key) // always a hit: capacity exceeds total keys
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if want := uint64(goroutines * perG); st.Hits != want {
		t.Errorf("hits = %d, want %d", st.Hits, want)
	}
	if want := uint64(goroutines * perG); st.Misses != want {
		t.Errorf("misses = %d, want %d", st.Misses, want)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (capacity %d > %d keys)", st.Evictions, c.Capacity(), goroutines*perG)
	}
	if st.Entries != goroutines*perG {
		t.Errorf("entries = %d, want %d", st.Entries, goroutines*perG)
	}
}
