package memo

import (
	"fmt"
	"testing"
)

// TestGetBytesMatchesGet: the byte-key probe must be observably
// identical to Get — same shard, same hit/miss outcome, same counters,
// same LRU recency effect.
func TestGetBytesMatchesGet(t *testing.T) {
	c := New[int](64)
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("key-%d", i)
		sv, sok := c.Get(key)
		bv, bok := c.GetBytes([]byte(key))
		if sv != bv || sok != bok {
			t.Fatalf("key %q: Get = (%d, %v), GetBytes = (%d, %v)", key, sv, sok, bv, bok)
		}
	}
	if _, ok := c.GetBytes([]byte("absent")); ok {
		t.Fatal("GetBytes(absent) hit")
	}
	if _, ok := c.GetBytes(nil); ok {
		t.Fatal("GetBytes(nil) hit")
	}
	st := c.Stats()
	// 32 string hits + 32 byte hits; 2 byte misses.
	if st.Hits != 64 || st.Misses != 2 {
		t.Fatalf("counters hits=%d misses=%d, want 64/2", st.Hits, st.Misses)
	}
}

// TestGetBytesSharding: a key probed as bytes must land on the same
// shard it was stored under as a string — pinned by filling far past
// one shard's capacity and re-probing everything both ways.
func TestGetBytesSharding(t *testing.T) {
	const n = 500
	c := New[int](2 * n)
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprintf("ingredient-%d", i), i)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("ingredient-%d", i)
		v, ok := c.GetBytes([]byte(key))
		if !ok || v != i {
			t.Fatalf("GetBytes(%q) = (%d, %v), want (%d, true)", key, v, ok, i)
		}
	}
}

// TestGetBytesRefreshesLRU: a byte-key hit must count as recency, same
// as a string hit, so the entry survives a subsequent eviction wave.
func TestGetBytesRefreshesLRU(t *testing.T) {
	// One shard with room for two entries, so eviction order is
	// observable without hunting for hash collisions.
	c := NewSharded[int](2, 1)
	c.Put("hot", 1)
	c.Put("warm", 2)
	if _, ok := c.GetBytes([]byte("hot")); !ok {
		t.Fatal("hot evaporated")
	}
	// "warm" is now the least recently used entry; the next insert must
	// evict it, not the byte-refreshed "hot".
	c.Put("new", 3)
	if _, ok := c.Get("hot"); !ok {
		t.Fatal("hot evicted despite byte-key refresh")
	}
	if _, ok := c.Get("warm"); ok {
		t.Fatal("warm survived; LRU did not account the byte-key hit")
	}
}

// TestFnv1aBytesMatchesString: the two hash spellings must agree on
// every key, or byte probes would look in the wrong shard.
func TestFnv1aBytesMatchesString(t *testing.T) {
	keys := []string{"", "a", "salt", "2 cups flour", "ingredient-42", "\x00\xff"}
	for _, k := range keys {
		if HashString(k) != Hash([]byte(k)) {
			t.Errorf("HashString(%q) = %d, Hash = %d", k, HashString(k), Hash([]byte(k)))
		}
	}
}
