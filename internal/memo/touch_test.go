package memo

import "testing"

// TestTouchHashBuildsFrequency: the out-of-band touch path must feed
// the admission sketch exactly like a probe would — without perturbing
// entries, LRU order, or the hit/miss counters. This is the contract
// the estimator's slot-L1 tier relies on: its hits never reach Get, so
// TouchHash is the only thing keeping the hottest keys' frequency
// alive across sketch resets.
func TestTouchHashBuildsFrequency(t *testing.T) {
	c := NewPolicy[int](64, 1, PolicyTinyLFU)
	s := &c.shards[0]
	h := HashString("slot-l1-hotkey")
	for i := 0; i < 10; i++ {
		c.TouchHash(h)
	}
	s.mu.Lock()
	freq := s.sk.estimate(h)
	cold := s.sk.estimate(HashString("never-seen"))
	s.mu.Unlock()
	if freq <= cold {
		t.Fatalf("10 touches left estimate %d, cold key %d", freq, cold)
	}
	st := c.Stats()
	if st.Touches != 10 {
		t.Fatalf("Touches = %d, want 10", st.Touches)
	}
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("TouchHash perturbed the cache: hits=%d misses=%d entries=%d, want all 0",
			st.Hits, st.Misses, st.Entries)
	}
}

// TestTouchHashNoopPaths: under PolicyLRU (no sketch) and on
// zero-capacity caches the touch must be a safe no-op — the slot L1
// calls it unconditionally whenever a phrase cache exists.
func TestTouchHashNoopPaths(t *testing.T) {
	lru := New[int](64)
	lru.TouchHash(HashString("x"))
	if st := lru.Stats(); st.Touches != 0 {
		t.Fatalf("LRU Touches = %d, want 0", st.Touches)
	}
	empty := NewPolicy[int](0, 1, PolicyTinyLFU)
	empty.TouchHash(HashString("x"))
	if st := empty.Stats(); st.Touches != 0 {
		t.Fatalf("zero-capacity Touches = %d, want 0", st.Touches)
	}
}
