package memo

import (
	"fmt"
	"testing"

	"nutriprofile/internal/recipedb"
)

// BenchmarkMemoZipf measures the cache under the workload that
// dominates production serving: Zipf-skewed phrase lookups, the core
// estimator's exact get-on-miss-put pattern. ns/op gates the lookup
// path's cost (the TinyLFU sketch must stay nibble-arithmetic cheap);
// the hit_ratio metric is the policy's payoff, captured into
// BENCH_match.json by the bench harness. Sub-benchmarks cover both
// policies at s=1.1 (production-like skew) and the LRU-favorable
// uniform shape (s=0) that pins the no-regression floor.
func BenchmarkMemoZipf(b *testing.B) {
	const (
		capacity = 4096
		keyspace = 131072
		traceLen = 1 << 18
	)
	keys := make([]string, keyspace)
	hashes := make([]uint64, keyspace)
	for i := range keys {
		keys[i] = fmt.Sprintf("phrase-%06d", i)
		hashes[i] = HashString(keys[i])
	}
	for _, s := range []float64{1.1, 0} {
		z := recipedb.NewZipf(keyspace, s, 42)
		trace := make([]int, traceLen)
		for i := range trace {
			trace[i] = z.Next()
		}
		name := fmt.Sprintf("s%.1f", s)
		for _, p := range []Policy{PolicyLRU, PolicyTinyLFU} {
			b.Run(name+"/"+p.String(), func(b *testing.B) {
				c := NewPolicy[int](capacity, DefaultShards, p)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k := trace[i&(traceLen-1)]
					if _, ok := c.GetHash(hashes[k], keys[k]); !ok {
						c.PutHash(hashes[k], keys[k], k)
					}
				}
				b.StopTimer()
				b.ReportMetric(c.Stats().HitRate(), "hit_ratio")
			})
		}
	}
}

// BenchmarkMemoGetHit pins the warm single-hit cost for both
// policies side by side — the per-lookup price of the sketch.
func BenchmarkMemoGetHit(b *testing.B) {
	for _, p := range []Policy{PolicyLRU, PolicyTinyLFU} {
		b.Run(p.String(), func(b *testing.B) {
			c := NewPolicy[int](1024, DefaultShards, p)
			keys := make([]string, 512)
			hashes := make([]uint64, 512)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%03d", i)
				hashes[i] = HashString(keys[i])
				c.Put(keys[i], i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i & 511
				c.GetHash(hashes[k], keys[k])
			}
		})
	}
}
