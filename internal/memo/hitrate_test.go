package memo

import (
	"fmt"
	"testing"

	"nutriprofile/internal/recipedb"
)

// replay drives a deterministic access trace through a fresh cache of
// the given policy using the core estimator's exact pattern — Get,
// and on miss compute + Put — and returns the measured hit ratio.
func replay(p Policy, capacity int, trace []int, keys []string) float64 {
	c := NewPolicy[int](capacity, DefaultShards, p)
	for _, k := range trace {
		key := keys[k]
		h := HashString(key)
		if _, ok := c.GetHash(h, key); !ok {
			c.PutHash(h, key, k)
		}
	}
	return c.Stats().HitRate()
}

func makeKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("phrase-%05d", i)
	}
	return keys
}

// TestHitRateWorkloads is the deterministic end of the acceptance
// gate: at equal capacity, TinyLFU must beat LRU on Zipf-skewed and
// scan-mixed traffic and stay within noise on uniform traffic (the
// LRU-favorable floor). Traces are seeded, so these numbers are exact
// and reproducible — the EXPERIMENTS.md table is generated from the
// same generators.
func TestHitRateWorkloads(t *testing.T) {
	const capacity = 2048
	keys := makeKeys(65536)

	uniform := func(seed int64) []int {
		z := recipedb.NewZipf(len(keys), 0, seed) // s=0 is uniform
		tr := make([]int, 200000)
		for i := range tr {
			tr[i] = z.Next()
		}
		return tr
	}
	zipf := func(s float64, seed int64) []int {
		z := recipedb.NewZipf(len(keys), s, seed)
		tr := make([]int, 200000)
		for i := range tr {
			tr[i] = z.Next()
		}
		return tr
	}
	// scanMixed: Zipf s=1.1 interactive traffic with a full sweep of
	// 32k one-hit-wonder scan keys interleaved 1:1 — the bulk-ingest-
	// during-peak-traffic scenario.
	scanMixed := func(seed int64) []int {
		z := recipedb.NewZipf(32768, 1.1, seed)
		tr := make([]int, 0, 131072)
		scanKey := 32768 // scan ranks sit above the interactive ranks
		for i := 0; i < 65536; i++ {
			tr = append(tr, z.Next())
			tr = append(tr, scanKey)
			scanKey++
			if scanKey == len(keys) {
				scanKey = 32768
			}
		}
		return tr
	}

	cases := []struct {
		name  string
		trace []int
		// gates on (tinylfu - lru) in absolute hit-ratio points
		minGain, maxLoss float64
	}{
		// Floors sit at ~60% of the measured gains (+0.088, +0.043,
		// +0.050 at the time of writing) — the traces are seeded and
		// the replay single-threaded, so runs are exactly
		// reproducible; the slack only absorbs future tuning of the
		// sketch/window parameters, not runner noise.
		{"uniform", uniform(1), -0.02, 0.02},   // within noise either way
		{"zipf_s0.8", zipf(0.8, 2), 0.05, -1},  // must win
		{"zipf_s1.1", zipf(1.1, 3), 0.025, -1}, // must win
		{"scan_mixed", scanMixed(4), 0.03, -1}, // the headline case
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lru := replay(PolicyLRU, capacity, tc.trace, keys)
			tlfu := replay(PolicyTinyLFU, capacity, tc.trace, keys)
			gain := tlfu - lru
			t.Logf("hit ratio: lru=%.4f tinylfu=%.4f gain=%+.4f", lru, tlfu, gain)
			if gain < tc.minGain {
				t.Errorf("TinyLFU gain %+.4f below floor %+.4f (lru %.4f, tinylfu %.4f)",
					gain, tc.minGain, lru, tlfu)
			}
			if tc.maxLoss >= 0 && gain > tc.maxLoss {
				t.Errorf("TinyLFU gain %+.4f above uniform-noise ceiling %.4f", gain, tc.maxLoss)
			}
		})
	}
}
