package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestPolicyParseString(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyTinyLFU} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = (%v, %v), want (%v, nil)", p.String(), got, err, p)
		}
	}
	if _, err := ParsePolicy("arc"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
	if New[int](8).Policy() != PolicyLRU {
		t.Fatal("New must default to PolicyLRU")
	}
	c := NewPolicy[int](8, 2, PolicyTinyLFU)
	if c.Policy() != PolicyTinyLFU || c.Stats().Policy != "tinylfu" {
		t.Fatalf("policy not threaded: %v / %q", c.Policy(), c.Stats().Policy)
	}
}

// TestTinyLFUGetPut: plain value semantics must be identical to LRU —
// admission decides which keys survive pressure, never what a
// resident key returns.
func TestTinyLFUGetPut(t *testing.T) {
	c := NewPolicy[int](64, 2, PolicyTinyLFU)
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	for i := 0; i < 32; i++ {
		if v, ok := c.Get(fmt.Sprintf("k%d", i)); !ok || v != i {
			t.Fatalf("Get(k%d) = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
	c.Put("k3", 333) // update in place, wherever the entry lives
	if v, ok := c.Get("k3"); !ok || v != 333 {
		t.Fatalf("updated Get(k3) = (%d, %v), want (333, true)", v, ok)
	}
	if c.Len() != 32 {
		t.Fatalf("Len = %d, want 32", c.Len())
	}
}

// TestTinyLFUCapacityBound: the window/main split must enforce the
// same total bound as LRU, for any capacity including degenerate
// 1-entry shards (mainCap == 0).
func TestTinyLFUCapacityBound(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 8, 100, 512} {
		c := NewPolicy[int](capacity, 1, PolicyTinyLFU)
		for i := 0; i < 4*capacity+16; i++ {
			k := fmt.Sprintf("k%d", i)
			c.Get(k)
			c.Put(k, i)
		}
		if c.Len() > c.Capacity() {
			t.Fatalf("capacity %d: Len %d exceeds Capacity %d", capacity, c.Len(), c.Capacity())
		}
		st := c.Stats()
		if got := uint64(st.Entries) + st.Evictions + st.Rejections; got != uint64(4*capacity+16) {
			t.Fatalf("capacity %d: entries(%d)+evictions(%d)+rejections(%d) = %d, want %d inserts",
				capacity, st.Entries, st.Evictions, st.Rejections, got, 4*capacity+16)
		}
	}
}

// TestTinyLFUScanResistance is the policy's reason to exist: a hot
// working set that fits the cache, plus a long scan of one-hit
// wonders sweeping through — a cold /v1/batch run landing on a warm
// interactive server. The hot keys keep being accessed (round-robin,
// 1 per 4 scan keys), but between two touches of the same hot key the
// interleaved traffic pushes ~2× the cache capacity of distinct keys,
// so LRU evicts the hot set over and over; TinyLFU's admission duel
// rejects the scan's frequency-1 candidates and keeps the hot set
// resident.
func TestTinyLFUScanResistance(t *testing.T) {
	const capacity, hot, scan = 128, 64, 8192
	run := func(p Policy) (survived int) {
		c := NewPolicy[int](capacity, 1, p)
		access := func(k string, v int) {
			if _, ok := c.Get(k); !ok {
				c.Put(k, v)
			}
		}
		// Warm the hot set so its frequency is established.
		for round := 0; round < 8; round++ {
			for i := 0; i < hot; i++ {
				access(fmt.Sprintf("hot-%d", i), i)
			}
		}
		// Scan of distinct keys with hot traffic mixed 1:4.
		for i := 0; i < scan; i++ {
			access(fmt.Sprintf("scan-%d", i), i)
			if i%4 == 0 {
				access(fmt.Sprintf("hot-%d", (i/4)%hot), i)
			}
		}
		for i := 0; i < hot; i++ {
			if _, ok := c.Get(fmt.Sprintf("hot-%d", i)); ok {
				survived++
			}
		}
		return survived
	}
	lru, tlfu := run(PolicyLRU), run(PolicyTinyLFU)
	t.Logf("hot entries surviving the scan: lru=%d/%d tinylfu=%d/%d", lru, hot, tlfu, hot)
	// LRU retains only the accidental tail of the run (the hot keys
	// re-inserted within the last ~capacity insertions), well under
	// half the set; TinyLFU must hold nearly all of it.
	if lru > hot/2 {
		t.Fatalf("LRU preserved %d/%d hot entries — scan not adversarial enough", lru, hot)
	}
	if tlfu < hot*9/10 {
		t.Fatalf("TinyLFU preserved only %d/%d hot entries through the scan (LRU: %d)", tlfu, hot, lru)
	}
	if tlfu < 2*lru {
		t.Fatalf("TinyLFU (%d) must out-retain LRU (%d) decisively", tlfu, lru)
	}
}

// TestTinyLFUAdmissionCounters: every window overflow ends in exactly
// one of admission or rejection+... — pin the full counter algebra on
// a deterministic single-shard trace.
func TestTinyLFUAdmissionCounters(t *testing.T) {
	c := NewPolicy[int](64, 1, PolicyTinyLFU)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%d", i%200)
		if _, ok := c.Get(k); !ok {
			c.Put(k, i)
		}
	}
	st := c.Stats()
	if st.Admissions == 0 {
		t.Fatal("no admissions recorded on an overflowing workload")
	}
	if st.Rejections == 0 {
		t.Fatal("no rejections recorded on an overflowing workload")
	}
	if st.Hits+st.Misses != 1000 {
		t.Fatalf("hits(%d)+misses(%d) != 1000 lookups", st.Hits, st.Misses)
	}
	inserts := st.Misses // every miss was followed by a Put of a new key
	if got := uint64(st.Entries) + st.Evictions + st.Rejections; got != inserts {
		t.Fatalf("entries(%d)+evictions(%d)+rejections(%d) = %d, want %d",
			st.Entries, st.Evictions, st.Rejections, got, inserts)
	}
}

// TestLRURejectionsAlwaysZero: the new counters must stay silent
// under the default policy — LRU admits everything.
func TestLRURejectionsAlwaysZero(t *testing.T) {
	c := New[int](16)
	for i := 0; i < 500; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
		c.Get(fmt.Sprintf("k%d", i/2))
	}
	st := c.Stats()
	if st.Rejections != 0 || st.Admissions != 0 || st.SketchResets != 0 {
		t.Fatalf("LRU cache reported admission stats: %+v", st)
	}
	if st.Policy != "lru" {
		t.Fatalf("Policy = %q, want lru", st.Policy)
	}
}

// TestTinyLFUPurge: Purge must clear entries and both segment lists
// (re-inserts work, capacity still enforced) while the sketch
// survives — frequency is workload signal, not value state.
func TestTinyLFUPurge(t *testing.T) {
	c := NewPolicy[int](64, 1, PolicyTinyLFU)
	for round := 0; round < 4; round++ {
		for i := 0; i < 32; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, ok := c.Get(k); !ok {
				c.Put(k, i)
			}
		}
	}
	pre := c.Stats()
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Purge", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("purged entry still resident")
	}
	// Refill past capacity: the lists were reset, so this must neither
	// panic nor leak entries beyond the bound.
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("r%d", i)
		if _, ok := c.Get(k); !ok {
			c.Put(k, i)
		}
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d exceeds Capacity %d after purge+refill", c.Len(), c.Capacity())
	}
	if post := c.Stats(); post.Hits < pre.Hits {
		t.Fatal("lifetime counters reset by Purge")
	}
}

// TestTinyLFUGenPut: PutHashGen's no-resurrection contract is policy-
// independent — a store with a stale generation must be dropped.
func TestTinyLFUGenPut(t *testing.T) {
	c := NewPolicy[int](64, 1, PolicyTinyLFU)
	gen := c.Gen()
	h := HashString("stale")
	c.Purge()
	c.PutHashGen(h, "stale", 1, gen)
	if _, ok := c.Get("stale"); ok {
		t.Fatal("stale-generation store resurrected past Purge")
	}
	c.PutHashGen(h, "fresh", 2, c.Gen())
	if v, ok := c.Get("fresh"); !ok || v != 2 {
		t.Fatal("current-generation store dropped")
	}
}

// verifyShardStructure walks both intrusive lists of every shard and
// reconciles them against the map and the segment bookkeeping. Caller
// must guarantee quiescence.
func verifyShardStructure[V any](t *testing.T, c *Cache[V]) {
	t.Helper()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		wn := 0
		for e := s.whead; e != nil; e = e.next {
			if e.seg != segWindow {
				t.Errorf("shard %d: window list holds a seg=%d entry", i, e.seg)
			}
			wn++
		}
		mn := 0
		for e := s.head; e != nil; e = e.next {
			if e.seg != segMain {
				t.Errorf("shard %d: main list holds a seg=%d entry", i, e.seg)
			}
			mn++
		}
		if wn != s.windowLen || (s.policy == PolicyTinyLFU && mn != s.mainLen) {
			t.Errorf("shard %d: list lengths %d/%d disagree with windowLen=%d mainLen=%d",
				i, wn, mn, s.windowLen, s.mainLen)
		}
		if wn+mn != len(s.m) {
			t.Errorf("shard %d: lists hold %d entries, map %d", i, wn+mn, len(s.m))
		}
		if s.windowLen > s.windowCap || s.mainLen > s.mainCap {
			if s.policy == PolicyTinyLFU {
				t.Errorf("shard %d: segment over capacity: window %d/%d main %d/%d",
					i, s.windowLen, s.windowCap, s.mainLen, s.mainCap)
			}
		}
		s.mu.Unlock()
	}
}

// TestAdmissionAccountingStorm is the satellite's exactness gate:
// under a concurrent get/put storm (run it with -race), every shard
// must reconcile exactly — inserts routed to the shard equal its live
// entries plus evictions plus rejections, lookups equal hits plus
// misses, and the intrusive lists match the map and segment caps.
// Keys are distinct per goroutine so the per-shard insert count is a
// pure function of the key set, computable outside the cache.
func TestAdmissionAccountingStorm(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyTinyLFU} {
		t.Run(p.String(), func(t *testing.T) {
			const (
				goroutines = 8
				perG       = 2000
				capacity   = 64
				shards     = 4
			)
			c := NewPolicy[int](capacity, shards, p)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						key := fmt.Sprintf("g%d-%d", g, i)
						c.Put(key, i)
						c.Get(key)                          // hit or already-evicted miss
						c.Get(fmt.Sprintf("other-%d-x", i)) // guaranteed miss
					}
				}(g)
			}
			wg.Wait()

			// Per-shard insert counts, recomputed from the key set.
			inserts := make([]uint64, c.ShardCount())
			for g := 0; g < goroutines; g++ {
				for i := 0; i < perG; i++ {
					inserts[c.ShardIndex(HashString(fmt.Sprintf("g%d-%d", g, i)))]++
				}
			}
			for i := range c.shards {
				s := &c.shards[i]
				s.mu.Lock()
				got := uint64(len(s.m)) + s.evictions + s.rejections
				s.mu.Unlock()
				if got != inserts[i] {
					t.Errorf("shard %d: entries+evictions+rejections = %d, want %d inserts", i, got, inserts[i])
				}
			}
			verifyShardStructure(t, c)

			st := c.Stats()
			if lookups := uint64(2 * goroutines * perG); st.Hits+st.Misses != lookups {
				t.Errorf("hits(%d)+misses(%d) != %d lookups", st.Hits, st.Misses, lookups)
			}
			if st.Entries > st.Capacity {
				t.Errorf("entries %d exceed capacity %d", st.Entries, st.Capacity)
			}
			if p == PolicyLRU && st.Rejections != 0 {
				t.Errorf("LRU rejected %d inserts", st.Rejections)
			}
		})
	}
}

// TestGetBytesHashProbeMisses pins the byte-key probe's miss edges:
// absent keys, empty and nil spellings, probes against a
// zero-capacity cache, and hash/spelling mismatches must all count
// one miss and return the zero value — under both policies, where
// TinyLFU additionally feeds the probe into the sketch so repeated
// byte-probe misses still build admission frequency.
func TestGetBytesHashProbeMisses(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyTinyLFU} {
		t.Run(p.String(), func(t *testing.T) {
			c := NewPolicy[int](64, 2, p)
			c.Put("present", 7)

			probes := 0
			probe := func(key []byte) {
				probes++
				if v, ok := c.GetBytesHash(Hash(key), key); ok || v != 0 {
					t.Fatalf("GetBytesHash(%q) = (%d, %v), want miss", key, v, ok)
				}
			}
			probe([]byte("absent"))
			probe([]byte{})
			probe(nil)
			probe([]byte("present\x00")) // near-miss spelling
			if st := c.Stats(); st.Misses != uint64(probes) {
				t.Fatalf("misses = %d after %d probe misses", st.Misses, probes)
			}
			// The hit side of the same API, for contrast.
			if v, ok := c.GetBytesHash(Hash([]byte("present")), []byte("present")); !ok || v != 7 {
				t.Fatalf("GetBytesHash(present) = (%d, %v), want (7, true)", v, ok)
			}

			// A wrong hash routes to (likely) another shard and probes
			// its map: must miss, never panic, and count on the shard
			// it landed on.
			before := c.Stats().Misses
			if _, ok := c.GetBytesHash(Hash([]byte("present"))+1, []byte("present")); ok {
				// Permitted only in the 1-in-2^63 case the wrong hash
				// still lands on the right shard — with 2 shards the
				// +1 flips the shard bit, so it cannot.
				t.Fatal("wrong-hash probe hit")
			}
			if c.Stats().Misses != before+1 {
				t.Fatal("wrong-hash probe not counted as a miss")
			}

			// Zero-capacity cache: every byte probe is a clean miss.
			z := NewPolicy[int](0, 2, p)
			z.Put("x", 1)
			if _, ok := z.GetBytesHash(Hash([]byte("x")), []byte("x")); ok {
				t.Fatal("zero-capacity cache hit")
			}
			if st := z.Stats(); st.Misses != 1 || st.Entries != 0 {
				t.Fatalf("zero-capacity stats %+v", st)
			}
		})
	}
}

// TestTinyLFUByteProbesBuildFrequency: GetBytesHash misses must feed
// the sketch exactly like string misses — a key probed repeatedly as
// bytes before first insertion should out-duel a one-hit wonder.
func TestTinyLFUByteProbesBuildFrequency(t *testing.T) {
	c := NewPolicy[int](64, 1, PolicyTinyLFU)
	s := &c.shards[0]
	key := []byte("repeat-offender")
	h := Hash(key)
	for i := 0; i < 10; i++ {
		c.GetBytesHash(h, key)
	}
	s.mu.Lock()
	freq := s.sk.estimate(h)
	cold := s.sk.estimate(Hash([]byte("never-seen")))
	s.mu.Unlock()
	if freq <= cold {
		t.Fatalf("10 byte-probes left estimate %d, cold key %d", freq, cold)
	}
}

// TestWarmPathZeroAllocs pins the allocation-free warm path for both
// policies: a Get hit (string and bytes) and a Put of an existing key
// must not allocate — the TinyLFU sketch is fixed arrays and nibble
// arithmetic, never a heap object.
func TestWarmPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	for _, p := range []Policy{PolicyLRU, PolicyTinyLFU} {
		t.Run(p.String(), func(t *testing.T) {
			c := NewPolicy[int](256, 4, p)
			keys := make([]string, 64)
			bkeys := make([][]byte, 64)
			hashes := make([]uint64, 64)
			for i := range keys {
				keys[i] = fmt.Sprintf("warm-%d", i)
				bkeys[i] = []byte(keys[i])
				hashes[i] = HashString(keys[i])
				c.Put(keys[i], i)
			}
			i := 0
			run := func() {
				k := i & 63
				c.GetHash(hashes[k], keys[k])
				c.GetBytesHash(hashes[k], bkeys[k])
				c.PutHash(hashes[k], keys[k], i)
				i++
			}
			run() // warm
			if allocs := testing.AllocsPerRun(500, run); allocs != 0 {
				t.Fatalf("warm Get/Put path allocates %.1f/op under %v, want 0", allocs, p)
			}
		})
	}
}

// TestSketchAging: drive enough traffic through one shard to trigger
// the halving reset, and check it both fired and decayed estimates.
func TestSketchAging(t *testing.T) {
	c := NewPolicy[int](64, 1, PolicyTinyLFU)
	s := &c.shards[0]
	hot := HashString("hot")
	for i := 0; i < 30; i++ {
		c.GetHash(hot, "hot") // saturate hot's counters toward 15
	}
	s.mu.Lock()
	pre := s.sk.estimate(hot)
	sample := s.sk.sample
	s.mu.Unlock()
	if pre < 10 {
		t.Fatalf("hot estimate %d after 30 touches, want near saturation", pre)
	}
	// Flood with distinct keys until at least one aging reset fires.
	for i := 0; i < 2*sample; i++ {
		k := fmt.Sprintf("flood-%d", i)
		c.GetHash(HashString(k), k)
	}
	st := c.Stats()
	if st.SketchResets == 0 {
		t.Fatalf("no sketch reset after %d touches (sample %d)", 2*sample, sample)
	}
	s.mu.Lock()
	post := s.sk.estimate(hot)
	s.mu.Unlock()
	if post >= pre {
		t.Fatalf("aging did not decay hot estimate: %d -> %d", pre, post)
	}
}

// TestSketchEstimateNeverUnder: count-min collisions may only ever
// over-estimate — for any key touched k times (k < 15, no aging), the
// estimate must be >= min(k, 15).
func TestSketchEstimateNeverUnder(t *testing.T) {
	var k sketch
	k.init(1024)
	for i := 0; i < 200; i++ {
		h := HashString(fmt.Sprintf("key-%d", i))
		touches := 1 + i%10
		for j := 0; j < touches; j++ {
			k.touch(h)
		}
		if est := k.estimate(h); est < uint64(touches) {
			t.Fatalf("key %d touched %d times, estimate %d", i, touches, est)
		}
	}
}
