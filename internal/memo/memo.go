// Package memo provides a sharded, bounded, LRU-evicting memoization
// cache for the estimation pipeline's hot lookups. Production recipe
// traffic is heavily repetitive — "salt", "olive oil" and "butter"
// appear in nearly every recipe — so memoizing the phrase→profile and
// query→match functions turns the common case into a map hit instead of
// a full Modified-Jaccard scan (§II-B).
//
// The cache is safe for concurrent use: keys are hashed (FNV-1a) onto
// independently locked, cache-line-padded shards so N workers rarely
// contend on the same mutex — and never false-share adjacent shards'
// state. The hit/miss/eviction counters live inside the shard they
// describe and are updated as plain fields under the shard lock the hot
// path already holds; Stats aggregates them across shards on read. That
// removes the per-lookup atomic increments on shared cache lines the
// previous design paid — under a multi-core worker pool those three
// shared counters were the only memory every worker wrote on every
// phrase. Values must be treated as read-only by callers — a cached
// value is shared by every goroutine that hits it.
//
// Shard ownership: the shard index of a key is a pure function of its
// bytes (ShardIndex of Hash), exported so batch layers can partition
// work by key hash and give each worker exclusive traffic to "its"
// shards — the same phrase always lands on the same shard, so a
// partition-aligned worker pool generates no cross-shard lock traffic
// on the hot path (DESIGN.md §12).
//
// Memoization here can never change results: both memoized functions
// are pure (a fixed database, matcher configuration, and frozen unit
// statistics fully determine the output), so a cache hit is byte-for-
// byte identical to recomputation. Callers that mutate the underlying
// state (core.Estimator.ObserveUnits) must Purge.
//
// Eviction policy: the cache runs either plain LRU (PolicyLRU, the
// zero value — what New and NewSharded build) or a W-TinyLFU-style
// admission policy (PolicyTinyLFU, via NewPolicy): a small window-LRU
// in front of a frequency-gated main segment, with a per-shard 4-bit
// count-min sketch + doorkeeper estimating each key's access
// frequency. A key evicted from the window is admitted to the main
// segment only if it is estimated more frequent than the main
// segment's eviction victim; otherwise it is rejected (counted in
// Stats.Rejections). That keeps one-hit wonders — a cold bulk scan's
// keys — from evicting the hot head of a skewed workload. Both
// policies share the same map, entry, counter and generation
// machinery, so which policy runs never changes what values are
// returned, only which keys survive. See DESIGN.md §15 and tinylfu.go.
package memo

import (
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used by New. 16 keeps per-shard
// mutex contention negligible for worker pools up to a few dozen
// goroutines while wasting little memory on tiny caches.
const DefaultShards = 16

// Stats is a point-in-time snapshot of the cache counters and shape.
// The struct marshals directly to JSON — it is the wire form the
// serving layer's GET /v1/stats exposes.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Rejections counts window-overflow candidates the TinyLFU
	// admission filter dropped instead of admitting to the main
	// segment (always 0 under PolicyLRU). Every insertion of a new key
	// ends in exactly one of {resident entry, eviction, rejection}, so
	// insertions == Entries + Evictions + Rejections at any quiescent
	// point.
	Rejections uint64 `json:"rejections"`
	// Admissions counts window-overflow candidates that won the
	// frequency duel (or found the main segment not yet full) and
	// moved window → main (always 0 under PolicyLRU).
	Admissions uint64 `json:"admissions"`
	// Touches counts out-of-band TouchHash frequency notifications —
	// hits served by caller-side tiers (e.g. the estimator's per-worker
	// slot L1s) that fed the admission sketch without probing the cache
	// (always 0 under PolicyLRU).
	Touches uint64 `json:"touches"`
	// SketchResets counts frequency-sketch aging events (all counters
	// halved, doorkeeper cleared) across shards.
	SketchResets uint64 `json:"sketch_resets"`
	Entries      int    `json:"entries"`  // current cached entries across all shards
	Capacity     int    `json:"capacity"` // total capacity (0: cache stores nothing)
	Shards       int    `json:"shards"`   // shard count (power of two)
	Policy       string `json:"policy"`   // eviction policy: "lru" or "tinylfu"
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a sharded, bounded LRU map from string keys to V.
// The zero value is not usable; construct with New or NewSharded.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint64 // len(shards) - 1; shard count is a power of two
	policy Policy

	// gen is the purge generation: bumped by Purge BEFORE any shard is
	// cleared. A writer that snapshots Gen before computing a value and
	// stores with PutHashGen can never resurrect a pre-purge value past
	// the purge — see PutHashGen for the ordering argument.
	gen atomic.Uint64
}

// entry is an intrusive doubly-linked LRU list node. head is
// most-recently used, tail is next to evict. Under PolicyTinyLFU an
// entry lives on exactly one of the shard's two lists (window or
// main, per seg) and carries its key hash so the admission duel can
// query the frequency sketch without rehashing the key.
type entry[V any] struct {
	key        string
	val        V
	prev, next *entry[V]
	h          uint64
	seg        uint8 // segMain (also all LRU entries) or segWindow
}

const (
	segMain   = 0 // main segment list (head/tail); every entry under PolicyLRU
	segWindow = 1 // window segment list (whead/wtail); PolicyTinyLFU only
)

type shard[V any] struct {
	mu         sync.Mutex
	capacity   int
	m          map[string]*entry[V]
	head, tail *entry[V] // main-segment LRU list (the only list under PolicyLRU)

	// PolicyTinyLFU state. The window list (whead/wtail) holds the
	// newest windowCap insertions; overflow from it must win the
	// admission duel against the main tail to enter the main list.
	// windowCap + mainCap == capacity; all zero under PolicyLRU.
	policy       Policy
	whead, wtail *entry[V]
	windowLen    int
	windowCap    int
	mainLen      int
	mainCap      int
	sk           sketch

	// Per-shard counters, updated under mu (no atomics: the lock is
	// already held at every update site). Each shard's counters share
	// its cache lines, not its neighbors' — see the padding below.
	hits       uint64
	misses     uint64
	evictions  uint64
	rejections uint64
	admissions uint64
	touchCount uint64

	// Pad shards apart so two workers hammering adjacent shards never
	// false-share a line. One full line of slack keeps the next
	// shard's mutex off this shard's hot counters.
	_ [64]byte
}

// New builds a cache holding at most capacity entries across
// DefaultShards shards. capacity <= 0 yields a cache that stores
// nothing (every Get misses), which callers may use as a cheap
// "disabled" mode.
func New[V any](capacity int) *Cache[V] {
	return NewSharded[V](capacity, DefaultShards)
}

// NewSharded builds a cache with an explicit shard count. The count is
// rounded up to a power of two; each shard holds capacity/shards
// entries (minimum 1 per shard when capacity > 0, so the effective
// capacity is at least the shard count).
func NewSharded[V any](capacity, shards int) *Cache[V] {
	return NewPolicy[V](capacity, shards, PolicyLRU)
}

// NewPolicy builds a cache with an explicit shard count and eviction
// policy. Shard count and capacity behave exactly as in NewSharded;
// the policy only decides which keys survive eviction pressure, never
// what values lookups return.
func NewPolicy[V any](capacity, shards int, policy Policy) *Cache[V] {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := 0
	if capacity > 0 {
		perShard = (capacity + n - 1) / n
	}
	c := &Cache[V]{shards: make([]shard[V], n), mask: uint64(n - 1), policy: policy}
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = perShard
		s.m = make(map[string]*entry[V])
		s.policy = policy
		if policy == PolicyTinyLFU && perShard > 0 {
			s.initTinyLFU(perShard)
		}
	}
	return c
}

// Policy returns the eviction policy the cache was built with.
func (c *Cache[V]) Policy() Policy { return c.policy }

// HashString is the 64-bit FNV-1a hash of a string key — the hash that
// selects a key's shard. Inlined (no interface, no seed) to keep
// Get/Put allocation-free.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Hash is HashString over a byte spelling; same algorithm, so a string
// key and its byte spelling always land on the same shard. Exported so
// callers that partition work by key hash (core's sharded batch
// dispatch, the flight layer) compute the hash exactly once per key.
func Hash(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}

// ShardCount returns the number of shards (a power of two).
func (c *Cache[V]) ShardCount() int { return len(c.shards) }

// ShardIndex maps a key hash (Hash/HashString of the key) to the index
// of the shard that owns it — a pure function of the key bytes, stable
// for the cache's lifetime, so batch layers can align worker ownership
// with shard ownership.
func (c *Cache[V]) ShardIndex(h uint64) int { return int(h & c.mask) }

func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[HashString(key)&c.mask]
}

// Get returns the cached value for key and marks it most-recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	return c.GetHash(HashString(key), key)
}

// GetHash is Get with the key's hash (HashString(key)) precomputed, so
// callers that already hashed the key for shard partitioning or the
// flight layer don't pay for a second pass over its bytes.
func (c *Cache[V]) GetHash(h uint64, key string) (V, bool) {
	s := &c.shards[h&c.mask]
	s.mu.Lock()
	if s.policy == PolicyTinyLFU && s.capacity > 0 {
		s.sk.touch(h)
	}
	e, ok := s.m[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		var zero V
		return zero, false
	}
	s.touchEntry(e)
	v := e.val
	s.hits++
	s.mu.Unlock()
	return v, true
}

// GetBytes is Get with the key spelled as bytes, so hot paths can probe
// with a scratch-assembled key without materializing a string: the
// string conversions in the map index expressions below are recognized
// by the compiler and do not allocate. Identical hit/miss, LRU and
// counter behavior to Get(string(key)).
func (c *Cache[V]) GetBytes(key []byte) (V, bool) {
	return c.GetBytesHash(Hash(key), key)
}

// GetBytesHash is GetBytes with the key's hash (Hash(key)) precomputed.
func (c *Cache[V]) GetBytesHash(h uint64, key []byte) (V, bool) {
	s := &c.shards[h&c.mask]
	s.mu.Lock()
	if s.policy == PolicyTinyLFU && s.capacity > 0 {
		s.sk.touch(h)
	}
	e, ok := s.m[string(key)]
	if !ok {
		s.misses++
		s.mu.Unlock()
		var zero V
		return zero, false
	}
	s.touchEntry(e)
	v := e.val
	s.hits++
	s.mu.Unlock()
	return v, true
}

// TouchHash records one access to the key hashing to h for the TinyLFU
// admission sketch without probing (or perturbing) the cache itself: no
// entry is looked up, no LRU list moves, no hit/miss counter changes.
// It exists for caller-side cache tiers sitting above this one — their
// hits never reach Get, which would otherwise starve the frequency
// signal for exactly the hottest keys and let cold bulk scans evict
// them. Under PolicyLRU (no sketch) it is a no-op beyond the counter.
func (c *Cache[V]) TouchHash(h uint64) {
	s := &c.shards[h&c.mask]
	s.mu.Lock()
	if s.policy == PolicyTinyLFU && s.capacity > 0 {
		s.sk.touch(h)
		s.touchCount++
	}
	s.mu.Unlock()
}

// Put inserts or refreshes key, evicting the least-recently-used entry
// of its shard when the shard is full. On a zero-capacity cache Put is
// a no-op.
func (c *Cache[V]) Put(key string, val V) {
	c.PutHash(HashString(key), key, val)
}

// PutHash is Put with the key's hash (HashString(key)) precomputed.
func (c *Cache[V]) PutHash(h uint64, key string, val V) {
	s := &c.shards[h&c.mask]
	if s.capacity <= 0 {
		return
	}
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		e.val = val
		s.touchEntry(e)
		s.mu.Unlock()
		return
	}
	s.insert(h, key, val)
	s.mu.Unlock()
}

// insert adds a new key under the shard lock, applying the shard's
// eviction policy when full. The key must not already be present.
func (s *shard[V]) insert(h uint64, key string, val V) {
	if s.policy == PolicyTinyLFU {
		s.insertTinyLFU(h, key, val)
		return
	}
	if len(s.m) >= s.capacity {
		old := s.tail
		s.unlink(old)
		delete(s.m, old.key)
		s.evictions++
	}
	e := &entry[V]{key: key, val: val, h: h}
	s.m[key] = e
	s.pushFront(e)
}

// Gen returns the current purge generation. Writers that compute
// values from purge-invalidated state (core's estimation results
// depend on the live DB snapshot and unit statistics) snapshot this
// BEFORE reading that state, then store with PutHashGen — the pair
// makes "compute under old state, store after the purge" impossible.
func (c *Cache[V]) Gen() uint64 { return c.gen.Load() }

// PutHashGen is PutHash conditional on the purge generation: the store
// is dropped when gen no longer matches. The check runs under the
// shard lock, so exactly two interleavings with a concurrent Purge
// exist — the put observes the bumped generation and drops (Purge
// bumps before clearing), or the put lands before the purge acquires
// this shard's lock and is cleared by it. A stale value therefore
// never outlives the Purge that invalidated it.
func (c *Cache[V]) PutHashGen(h uint64, key string, val V, gen uint64) {
	s := &c.shards[h&c.mask]
	if s.capacity <= 0 {
		return
	}
	s.mu.Lock()
	if c.gen.Load() != gen {
		s.mu.Unlock()
		return
	}
	if e, ok := s.m[key]; ok {
		e.val = val
		s.touchEntry(e)
		s.mu.Unlock()
		return
	}
	s.insert(h, key, val)
	s.mu.Unlock()
}

// Len returns the current entry count across all shards.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Purge drops every cached entry. Counters are preserved; Stats after a
// Purge still reports lifetime hits/misses/evictions. The generation
// bump strictly precedes the first shard clear — the ordering
// PutHashGen's no-resurrection guarantee rests on.
//
// The frequency sketch and doorkeeper deliberately survive Purge:
// they estimate the workload's access pattern, which a database swap
// does not change — only the cached values are stale. Keeping the
// sketch means the hot head re-warms through admission immediately
// after a reload instead of fighting one-hit wonders from scratch.
func (c *Cache[V]) Purge() {
	c.gen.Add(1)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[string]*entry[V])
		s.head, s.tail = nil, nil
		s.whead, s.wtail = nil, nil
		s.windowLen, s.mainLen = 0, 0
		s.mu.Unlock()
	}
}

// Capacity returns the total entry capacity across all shards (the
// per-shard capacity times the shard count, which is what eviction
// actually enforces — it may exceed the capacity passed to New due to
// per-shard rounding).
func (c *Cache[V]) Capacity() int {
	return c.shards[0].capacity * len(c.shards)
}

// Stats aggregates the per-shard counters — the "batched flush" of the
// sharded design: no aggregate is maintained per lookup, the totals are
// assembled only when somebody asks. The snapshot is not atomic across
// shards under concurrent load, which is fine for monitoring; each
// per-shard counter is monotonic, so so is every aggregate.
func (c *Cache[V]) Stats() Stats {
	st := Stats{
		Capacity: c.Capacity(),
		Shards:   len(c.shards),
		Policy:   c.policy.String(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Rejections += s.rejections
		st.Admissions += s.admissions
		st.Touches += s.touchCount
		st.SketchResets += s.sk.resets
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}

// --- intrusive LRU list (per shard, under the shard mutex) ---

func (s *shard[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[V]) moveToFront(e *entry[V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// touchEntry marks e most-recently used within its own segment. Under
// PolicyLRU every entry is segMain, so this is exactly moveToFront.
func (s *shard[V]) touchEntry(e *entry[V]) {
	if e.seg == segWindow {
		s.wMoveToFront(e)
	} else {
		s.moveToFront(e)
	}
}
