package memo

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestStatsSnapshotShape pins the exported snapshot fields — the wire
// form nutriserve's GET /v1/stats exposes — across cache shapes.
func TestStatsSnapshotShape(t *testing.T) {
	cases := []struct {
		name         string
		capacity     int
		shards       int
		wantCap      int // effective capacity (per-shard rounding enforced)
		wantShards   int
		puts         int
		wantEntries  int
		wantAtLeastE uint64 // eviction floor
	}{
		{name: "disabled", capacity: 0, shards: 4, wantCap: 0, wantShards: 4, puts: 10, wantEntries: 0},
		{name: "single shard", capacity: 4, shards: 1, wantCap: 4, wantShards: 1, puts: 10, wantEntries: 4, wantAtLeastE: 6},
		// puts stays ≤ per-shard capacity so entry counts are exact
		// regardless of how keys hash across shards.
		{name: "rounded shards", capacity: 16, shards: 3, wantCap: 16, wantShards: 4, puts: 4, wantEntries: 4},
		{name: "per-shard rounding", capacity: 5, shards: 4, wantCap: 8, wantShards: 4, puts: 2, wantEntries: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewSharded[int](tc.capacity, tc.shards)
			for i := 0; i < tc.puts; i++ {
				c.Put(fmt.Sprintf("k%02d", i), i)
			}
			s := c.Stats()
			if s.Capacity != tc.wantCap {
				t.Errorf("Capacity %d, want %d", s.Capacity, tc.wantCap)
			}
			if s.Shards != tc.wantShards {
				t.Errorf("Shards %d, want %d", s.Shards, tc.wantShards)
			}
			if s.Entries != tc.wantEntries {
				t.Errorf("Entries %d, want %d", s.Entries, tc.wantEntries)
			}
			if s.Evictions < tc.wantAtLeastE {
				t.Errorf("Evictions %d, want ≥ %d", s.Evictions, tc.wantAtLeastE)
			}
			if s.Entries > s.Capacity && tc.capacity > 0 {
				t.Errorf("entries %d exceed capacity %d", s.Entries, s.Capacity)
			}
		})
	}
}

// TestStatsJSON pins the JSON field names the serving layer publishes.
func TestStatsJSON(t *testing.T) {
	c := New[int](8)
	c.Put("a", 1)
	c.Get("a")
	c.Get("b")
	b, err := json.Marshal(c.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"hits", "misses", "evictions", "entries", "capacity", "shards"} {
		if _, ok := m[k]; !ok {
			t.Errorf("snapshot JSON missing %q: %s", k, b)
		}
	}
}

// TestEvictionAccountingConcurrent checks the eviction counter's exact
// accounting invariant under concurrent Get/Put: with distinct keys,
// every insertion beyond a shard's capacity evicts exactly one entry,
// so insertions == live entries + evictions. Run under -race this also
// exercises the counter/lock interplay on the Put path.
func TestEvictionAccountingConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
		capacity   = 64
	)
	c := NewSharded[int](capacity, 4)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("g%d-%d", g, i)
				c.Put(key, i)
				c.Get(key)                          // usually a hit
				c.Get(fmt.Sprintf("other-%d-x", i)) // guaranteed miss
			}
		}(g)
	}
	wg.Wait()

	s := c.Stats()
	inserted := uint64(goroutines * perG) // keys are distinct → every Put inserts
	if got := uint64(s.Entries) + s.Evictions; got != inserted {
		t.Fatalf("entries(%d) + evictions(%d) = %d, want %d inserted",
			s.Entries, s.Evictions, got, inserted)
	}
	if s.Entries > s.Capacity {
		t.Fatalf("entries %d exceed capacity %d", s.Entries, s.Capacity)
	}
	if s.Misses < uint64(goroutines*perG) {
		t.Fatalf("misses %d below the guaranteed-miss floor %d", s.Misses, goroutines*perG)
	}
	if s.Hits == 0 {
		t.Fatal("expected some hits from read-back")
	}
}

// TestStatsMonotonicUnderLoad samples Stats concurrently with traffic
// and asserts every counter is non-decreasing between samples.
func TestStatsMonotonicUnderLoad(t *testing.T) {
	c := New[int](128)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Put(fmt.Sprintf("g%d-%d", g, i%512), i)
				c.Get(fmt.Sprintf("g%d-%d", g, (i+1)%512))
			}
		}(g)
	}
	var prev Stats
	for i := 0; i < 200; i++ {
		s := c.Stats()
		if s.Hits < prev.Hits || s.Misses < prev.Misses || s.Evictions < prev.Evictions {
			t.Fatalf("counter went backwards: %+v after %+v", s, prev)
		}
		prev = s
	}
	close(stop)
	wg.Wait()
}
