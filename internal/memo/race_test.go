//go:build race

package memo

// The race detector instruments every memory access and allocates for
// its own bookkeeping, so testing.AllocsPerRun over-counts under -race.
// The warm-path zero-allocation pins skip themselves when this flag is
// set; the contract is still enforced by the normal test run and the
// nightly allocs/op gate.
const raceEnabled = true
