package metrics

import (
	"sync"
	"testing"
	"unsafe"
)

// TestStripedSumExact: per-stripe adds must aggregate to the exact
// total after writers quiesce, for both the owned-slot pattern and the
// modulo fold of out-of-range indices.
func TestStripedSumExact(t *testing.T) {
	const (
		goroutines = 32
		perG       = 1000
	)
	s := NewStriped(8)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Batched-flush pattern: accumulate locally, flush once.
			local := uint64(0)
			for i := 0; i < perG; i++ {
				local++
			}
			s.Add(g, local) // g beyond Stripes() folds via modulo
		}(g)
	}
	wg.Wait()
	if got, want := s.Sum(), uint64(goroutines*perG); got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
}

// TestStripedPadding pins the anti-false-sharing layout: stripes must
// be at least a cache line apart.
func TestStripedPadding(t *testing.T) {
	if sz := unsafe.Sizeof(stripe{}); sz < 64 {
		t.Fatalf("stripe size = %d, want >= 64 (cache-line padded)", sz)
	}
}

// TestStripedDegenerate covers the clamped constructor.
func TestStripedDegenerate(t *testing.T) {
	s := NewStriped(0)
	if s.Stripes() != 1 {
		t.Fatalf("Stripes = %d, want 1", s.Stripes())
	}
	s.Add(5, 3)
	s.Add(-0x7fffffff%1, 2) // index 0 after fold
	if s.Sum() != 5 {
		t.Fatalf("Sum = %d, want 5", s.Sum())
	}
}
