package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestReadRuntime: the gauges must be populated and internally
// consistent — a running process has a live heap, cumulative allocation
// at least the live heap, and at least one goroutine.
func TestReadRuntime(t *testing.T) {
	rs := ReadRuntime()
	if rs.HeapAllocBytes == 0 {
		t.Error("HeapAllocBytes = 0")
	}
	if rs.TotalAllocBytes < rs.HeapAllocBytes {
		t.Errorf("TotalAllocBytes %d < HeapAllocBytes %d", rs.TotalAllocBytes, rs.HeapAllocBytes)
	}
	if rs.Mallocs == 0 {
		t.Error("Mallocs = 0")
	}
	if rs.Goroutines < 1 {
		t.Errorf("Goroutines = %d", rs.Goroutines)
	}
	if rs.GCPauseTotalMs < 0 {
		t.Errorf("GCPauseTotalMs = %v", rs.GCPauseTotalMs)
	}
}

// TestReadRuntimeMonotonic: cumulative counters never decrease between
// samples.
func TestReadRuntimeMonotonic(t *testing.T) {
	a := ReadRuntime()
	_ = make([]byte, 1<<16) // force some allocation between samples
	b := ReadRuntime()
	if b.TotalAllocBytes < a.TotalAllocBytes {
		t.Errorf("TotalAllocBytes decreased: %d → %d", a.TotalAllocBytes, b.TotalAllocBytes)
	}
	if b.Mallocs < a.Mallocs {
		t.Errorf("Mallocs decreased: %d → %d", a.Mallocs, b.Mallocs)
	}
	if b.NumGC < a.NumGC {
		t.Errorf("NumGC decreased: %d → %d", a.NumGC, b.NumGC)
	}
}

// TestRuntimeStatsJSON: the stats endpoint marshals the gauges under
// stable snake_case keys.
func TestRuntimeStatsJSON(t *testing.T) {
	raw, err := json.Marshal(ReadRuntime())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"heap_alloc_bytes", "heap_inuse_bytes", "total_alloc_bytes",
		"mallocs", "num_gc", "gc_pause_total_ms", "goroutines",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("missing JSON key %q in %s", key, raw)
		}
	}
}

// TestRuntimeSamplerTTL drives the sampler on a fake clock and asserts
// the expensive read runs once per TTL window, not once per call.
func TestRuntimeSamplerTTL(t *testing.T) {
	clock := time.Unix(1000, 0)
	reads := 0
	s := NewRuntimeSampler(time.Second)
	s.now = func() time.Time { return clock }
	s.read = func() RuntimeStats { reads++; return RuntimeStats{Mallocs: uint64(reads)} }

	for i := 0; i < 10; i++ {
		if got := s.Sample().Mallocs; got != 1 {
			t.Fatalf("call %d within TTL: snapshot %d, want 1", i, got)
		}
	}
	if reads != 1 {
		t.Fatalf("reads within TTL = %d, want 1", reads)
	}

	clock = clock.Add(999 * time.Millisecond)
	s.Sample()
	if reads != 1 {
		t.Errorf("read refreshed before TTL expired (reads = %d)", reads)
	}

	clock = clock.Add(time.Millisecond) // exactly TTL since last refresh
	if got := s.Sample().Mallocs; got != 2 || reads != 2 {
		t.Errorf("after TTL: snapshot %d reads %d, want 2 and 2", got, reads)
	}
}

// TestRuntimeSamplerConcurrent hammers one sampler from many goroutines
// under the race detector.
func TestRuntimeSamplerConcurrent(t *testing.T) {
	s := NewRuntimeSampler(time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if s.Sample().Goroutines < 1 {
					t.Error("empty snapshot")
					return
				}
			}
		}()
	}
	wg.Wait()
}
