package metrics

import (
	"encoding/json"
	"testing"
)

// TestReadRuntime: the gauges must be populated and internally
// consistent — a running process has a live heap, cumulative allocation
// at least the live heap, and at least one goroutine.
func TestReadRuntime(t *testing.T) {
	rs := ReadRuntime()
	if rs.HeapAllocBytes == 0 {
		t.Error("HeapAllocBytes = 0")
	}
	if rs.TotalAllocBytes < rs.HeapAllocBytes {
		t.Errorf("TotalAllocBytes %d < HeapAllocBytes %d", rs.TotalAllocBytes, rs.HeapAllocBytes)
	}
	if rs.Mallocs == 0 {
		t.Error("Mallocs = 0")
	}
	if rs.Goroutines < 1 {
		t.Errorf("Goroutines = %d", rs.Goroutines)
	}
	if rs.GCPauseTotalMs < 0 {
		t.Errorf("GCPauseTotalMs = %v", rs.GCPauseTotalMs)
	}
}

// TestReadRuntimeMonotonic: cumulative counters never decrease between
// samples.
func TestReadRuntimeMonotonic(t *testing.T) {
	a := ReadRuntime()
	_ = make([]byte, 1<<16) // force some allocation between samples
	b := ReadRuntime()
	if b.TotalAllocBytes < a.TotalAllocBytes {
		t.Errorf("TotalAllocBytes decreased: %d → %d", a.TotalAllocBytes, b.TotalAllocBytes)
	}
	if b.Mallocs < a.Mallocs {
		t.Errorf("Mallocs decreased: %d → %d", a.Mallocs, b.Mallocs)
	}
	if b.NumGC < a.NumGC {
		t.Errorf("NumGC decreased: %d → %d", a.NumGC, b.NumGC)
	}
}

// TestRuntimeStatsJSON: the stats endpoint marshals the gauges under
// stable snake_case keys.
func TestRuntimeStatsJSON(t *testing.T) {
	raw, err := json.Marshal(ReadRuntime())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"heap_alloc_bytes", "heap_inuse_bytes", "total_alloc_bytes",
		"mallocs", "num_gc", "gc_pause_total_ms", "goroutines",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("missing JSON key %q in %s", key, raw)
		}
	}
}
