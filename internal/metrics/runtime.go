package metrics

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeStats is a point-in-time view of the Go runtime's memory and
// scheduler gauges — the numbers that tell an operator whether the
// allocation-free pipeline is actually running allocation-free in
// production. Marshals directly to JSON for GET /v1/stats.
type RuntimeStats struct {
	// HeapAllocBytes is the live heap (runtime.MemStats.HeapAlloc).
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// HeapInuseBytes is heap memory in in-use spans.
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	// TotalAllocBytes is cumulative bytes allocated over the process
	// lifetime (monotonic; the first derivative is the allocation rate).
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// Mallocs is the cumulative count of heap objects allocated.
	Mallocs uint64 `json:"mallocs"`
	// NumGC is the number of completed GC cycles.
	NumGC uint32 `json:"num_gc"`
	// GCPauseTotalMs is the cumulative stop-the-world pause time.
	GCPauseTotalMs float64 `json:"gc_pause_total_ms"`
	// Goroutines is the current goroutine count.
	Goroutines int `json:"goroutines"`
}

// ReadRuntime samples the runtime gauges. It calls
// runtime.ReadMemStats, which briefly stops the world — cheap enough for
// a stats endpoint, too expensive for a per-request path.
func ReadRuntime() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return RuntimeStats{
		HeapAllocBytes:  m.HeapAlloc,
		HeapInuseBytes:  m.HeapInuse,
		TotalAllocBytes: m.TotalAlloc,
		Mallocs:         m.Mallocs,
		NumGC:           m.NumGC,
		GCPauseTotalMs:  float64(m.PauseTotalNs) / 1e6,
		Goroutines:      runtime.NumGoroutine(),
	}
}

// RuntimeSampler caches ReadRuntime behind a TTL so a hot stats
// endpoint stops the world at most once per interval no matter how
// often it is scraped. Construct with NewRuntimeSampler; safe for
// concurrent use.
type RuntimeSampler struct {
	ttl time.Duration

	// Seams for tests; NewRuntimeSampler wires the real clock and reader.
	now  func() time.Time
	read func() RuntimeStats

	mu   sync.Mutex
	last time.Time
	snap RuntimeStats
}

// NewRuntimeSampler builds a sampler that refreshes at most once per
// ttl; ttl <= 0 samples on every call.
func NewRuntimeSampler(ttl time.Duration) *RuntimeSampler {
	return &RuntimeSampler{ttl: ttl, now: time.Now, read: ReadRuntime}
}

// Sample returns the cached snapshot, refreshing it first when older
// than the TTL.
func (s *RuntimeSampler) Sample() RuntimeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := s.now(); s.last.IsZero() || now.Sub(s.last) >= s.ttl {
		s.snap = s.read()
		s.last = now
	}
	return s.snap
}
