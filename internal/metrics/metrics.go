// Package metrics is the serving layer's observability registry: per-route
// request counters, status-class counters, fixed-bucket latency histograms,
// an in-flight gauge and a load-shed counter, all lock-free on the hot
// path (atomics only). A Snapshot marshals cleanly to JSON so GET
// /v1/stats and the nightly bench job can scrape it without a protocol
// dependency (the expvar idea, with typed structure instead of a flat
// string map).
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBuckets are the histogram upper bounds in milliseconds. The
// range is tuned to the pipeline's latency profile: warm-cache single
// phrases land in the sub-millisecond buckets, cold multi-ingredient
// recipes in the tens of milliseconds, and anything beyond a second
// indicates overload or a stuck dependency.
var DefaultBuckets = []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

// Histogram counts observations into fixed latency buckets. All methods
// are safe for concurrent use; counters only ever increase.
type Histogram struct {
	upperMs []float64
	counts  []atomic.Uint64 // len(upperMs) buckets + 1 overflow at the end
	count   atomic.Uint64
	sumNs   atomic.Int64
}

// NewHistogram builds a histogram over the given upper bounds
// (milliseconds, must be sorted ascending). nil selects DefaultBuckets.
func NewHistogram(upperMs []float64) *Histogram {
	if upperMs == nil {
		upperMs = DefaultBuckets
	}
	h := &Histogram{
		upperMs: append([]float64(nil), upperMs...),
		counts:  make([]atomic.Uint64, len(upperMs)+1),
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	// Binary search: first bucket whose upper bound admits ms; beyond
	// the last bound lands in the overflow slot.
	i := sort.SearchFloat64s(h.upperMs, ms)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Bucket is one histogram bucket in a snapshot. Counts are per-bucket
// (not cumulative); UpperMs is the inclusive upper bound.
type Bucket struct {
	UpperMs float64 `json:"upper_ms"`
	Count   uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count    uint64   `json:"count"`
	SumMs    float64  `json:"sum_ms"`
	MeanMs   float64  `json:"mean_ms"`
	Buckets  []Bucket `json:"buckets"`
	Overflow uint64   `json:"overflow"` // observations above the last bound
}

// Snapshot copies the histogram counters. Not atomic across buckets
// under concurrent load, which is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumMs:   float64(h.sumNs.Load()) / float64(time.Millisecond),
		Buckets: make([]Bucket, len(h.upperMs)),
	}
	for i := range h.upperMs {
		s.Buckets[i] = Bucket{UpperMs: h.upperMs[i], Count: h.counts[i].Load()}
	}
	s.Overflow = h.counts[len(h.upperMs)].Load()
	if s.Count > 0 {
		s.MeanMs = s.SumMs / float64(s.Count)
	}
	return s
}

// Route aggregates one route's counters.
type Route struct {
	requests atomic.Uint64
	// classes counts responses by status class: index 2 holds 2xx, etc.
	// Index 0 collects anything outside 100–599.
	classes [6]atomic.Uint64
	latency *Histogram
}

// Observe records one completed request.
func (r *Route) Observe(status int, d time.Duration) {
	r.requests.Add(1)
	c := status / 100
	if c < 1 || c > 5 {
		c = 0
	}
	r.classes[c].Add(1)
	r.latency.Observe(d)
}

// Requests returns the route's lifetime request count.
func (r *Route) Requests() uint64 { return r.requests.Load() }

// RouteSnapshot is a point-in-time copy of one route's counters.
type RouteSnapshot struct {
	Requests uint64            `json:"requests"`
	ByClass  map[string]uint64 `json:"by_class"` // "2xx" → count; empty classes omitted
	Latency  HistogramSnapshot `json:"latency"`
}

// Registry holds the process's route metrics plus the cross-route
// in-flight gauge and shed counter. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	routes map[string]*Route

	inFlight atomic.Int64
	shed     atomic.Uint64

	// Bulk-stream counters for the streaming /v1/batch endpoint. Route
	// counters see one request per stream; these count the work inside
	// it — NDJSON lines, per-line errors reported in-stream, estimator
	// windows — plus a gauge of streams currently held open.
	batchLines      atomic.Uint64
	batchLineErrors atomic.Uint64
	batchWindows    atomic.Uint64
	bulkActive      atomic.Int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{routes: make(map[string]*Route)}
}

// Route returns the named route's counters, creating them on first use.
func (g *Registry) Route(name string) *Route {
	g.mu.RLock()
	r := g.routes[name]
	g.mu.RUnlock()
	if r != nil {
		return r
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if r = g.routes[name]; r == nil {
		r = &Route{latency: NewHistogram(nil)}
		g.routes[name] = r
	}
	return r
}

// IncInFlight/DecInFlight maintain the cross-route in-flight gauge.
func (g *Registry) IncInFlight() { g.inFlight.Add(1) }
func (g *Registry) DecInFlight() { g.inFlight.Add(-1) }

// InFlight reads the gauge.
func (g *Registry) InFlight() int64 { return g.inFlight.Load() }

// AddShed counts one request rejected by admission control.
func (g *Registry) AddShed() { g.shed.Add(1) }

// Shed reads the lifetime shed counter.
func (g *Registry) Shed() uint64 { return g.shed.Load() }

// AddBatchLines counts n NDJSON lines answered on bulk streams (error
// lines included — every non-empty input line produces exactly one).
func (g *Registry) AddBatchLines(n uint64) { g.batchLines.Add(n) }

// AddBatchLineErrors counts n per-line errors reported in-stream.
func (g *Registry) AddBatchLineErrors(n uint64) { g.batchLineErrors.Add(n) }

// AddBatchWindow counts one estimator window processed by a bulk stream.
func (g *Registry) AddBatchWindow() { g.batchWindows.Add(1) }

// IncBulkActive/DecBulkActive maintain the open-bulk-streams gauge.
func (g *Registry) IncBulkActive() { g.bulkActive.Add(1) }
func (g *Registry) DecBulkActive() { g.bulkActive.Add(-1) }

// BatchSnapshot is a point-in-time copy of the bulk-stream counters.
type BatchSnapshot struct {
	Lines      uint64 `json:"lines"`
	LineErrors uint64 `json:"line_errors"`
	Windows    uint64 `json:"windows"`
	Active     int64  `json:"active_streams"`
}

// Snapshot is a point-in-time copy of every counter in the registry.
type Snapshot struct {
	InFlight int64                    `json:"in_flight"`
	Shed     uint64                   `json:"shed"`
	Batch    BatchSnapshot            `json:"batch"`
	Routes   map[string]RouteSnapshot `json:"routes"`
}

// TotalRequests sums route request counts — the convenient monotonic
// aggregate the stress tests assert on.
func (s Snapshot) TotalRequests() uint64 {
	var n uint64
	for _, r := range s.Routes {
		n += r.Requests
	}
	return n
}

// Snapshot copies the registry. Counter reads are not atomic across
// routes under concurrent load; each individual counter is monotonic.
func (g *Registry) Snapshot() Snapshot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := Snapshot{
		InFlight: g.inFlight.Load(),
		Shed:     g.shed.Load(),
		Batch: BatchSnapshot{
			Lines:      g.batchLines.Load(),
			LineErrors: g.batchLineErrors.Load(),
			Windows:    g.batchWindows.Load(),
			Active:     g.bulkActive.Load(),
		},
		Routes: make(map[string]RouteSnapshot, len(g.routes)),
	}
	for name, r := range g.routes {
		rs := RouteSnapshot{
			Requests: r.requests.Load(),
			ByClass:  map[string]uint64{},
			Latency:  r.latency.Snapshot(),
		}
		for c := 1; c <= 5; c++ {
			if n := r.classes[c].Load(); n > 0 {
				rs.ByClass[classNames[c]] = n
			}
		}
		if n := r.classes[0].Load(); n > 0 {
			rs.ByClass["other"] = n
		}
		s.Routes[name] = rs
	}
	return s
}

var classNames = [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}
