package metrics

// Exposition-format conformance for WritePrometheus, checked with a
// minimal text-format (0.0.4) parser rather than string matching: every
// sample must belong to a declared family, HELP/TYPE must precede the
// samples, histogram buckets must be cumulative and monotone with a
// terminal le="+Inf" equal to _count, and every rendered value must
// agree with the Snapshot the exposition claims to render.

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promFamily struct {
	help    string
	typ     string
	samples []promSample
}

// parseExposition is a strict parser for the subset of the text format
// the registry emits. It fails the test on any malformed line, on
// samples appearing before their family's HELP/TYPE header, and on a
// TYPE without a preceding HELP.
func parseExposition(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	var lastHelp string // family name of the pending HELP line
	var current string  // family samples are currently allowed for
	for ln, line := range strings.Split(text, "\n") {
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d (%q): %s", ln+1, line, fmt.Sprintf(format, args...))
		}
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" || help == "" {
				fail("malformed HELP")
			}
			if _, dup := fams[name]; dup {
				fail("duplicate HELP for %s", name)
			}
			fams[name] = &promFamily{help: help}
			lastHelp = name
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				fail("malformed TYPE")
			}
			if name != lastHelp {
				fail("TYPE for %s not immediately preceded by its HELP", name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				fail("unknown type %q", typ)
			}
			fams[name].typ = typ
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			fail("unexpected comment")
		}
		s := parsePromSample(t, ln+1, line)
		fam := fams[current]
		if fam == nil {
			fail("sample before any family header")
		}
		base := s.name
		if fam.typ == "histogram" {
			base = strings.TrimSuffix(base, "_bucket")
			base = strings.TrimSuffix(base, "_sum")
			base = strings.TrimSuffix(base, "_count")
		}
		if base != current {
			fail("sample %s outside its family block (current %s)", s.name, current)
		}
		fam.samples = append(fam.samples, s)
	}
	return fams
}

func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("line %d (%q): %s", ln, line, fmt.Sprintf(format, args...))
	}
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		rest = rest[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				fail("malformed label pair")
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			i := 0
			for ; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					if i >= len(rest) {
						fail("dangling escape")
					}
					switch rest[i] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						fail("invalid escape \\%c", rest[i])
					}
					continue
				}
				if rest[i] == '"' {
					break
				}
				val.WriteByte(rest[i])
			}
			if i >= len(rest) {
				fail("unterminated label value")
			}
			if _, dup := s.labels[key]; dup {
				fail("duplicate label %s", key)
			}
			s.labels[key] = val.String()
			rest = rest[i+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "} ") {
				rest = rest[2:]
				break
			}
			fail("malformed label list tail %q", rest)
		}
	} else {
		name, v, ok := strings.Cut(rest, " ")
		if !ok {
			fail("sample without value")
		}
		s.name, rest = name, v
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		fail("bad value: %v", err)
	}
	s.value = v
	return s
}

// sampleValue finds the unique sample with the given name and labels.
func sampleValue(t *testing.T, fams map[string]*promFamily, fam, name string, labels map[string]string) float64 {
	t.Helper()
	f := fams[fam]
	if f == nil {
		t.Fatalf("family %s not exposed", fam)
	}
outer:
	for _, s := range f.samples {
		if s.name != name || len(s.labels) != len(labels) {
			continue
		}
		for k, v := range labels {
			if s.labels[k] != v {
				continue outer
			}
		}
		return s.value
	}
	t.Fatalf("no sample %s%v in family %s", name, labels, fam)
	return 0
}

// testRegistry builds a registry with a known mix: two routes (one with
// an awkward name that needs label escaping), latencies spread across
// buckets including one overflow, shed and batch traffic, and non-zero
// gauges.
func testRegistry() *Registry {
	g := NewRegistry()
	est := g.Route("/v1/estimate")
	est.Observe(200, 300*time.Microsecond)
	est.Observe(400, 2*time.Millisecond)
	est.Observe(200, 2*time.Second) // beyond the last bucket: overflow
	g.Route("esc\"aped\\ro\nute").Observe(200, time.Millisecond)
	g.IncInFlight()
	g.IncInFlight()
	g.DecInFlight()
	g.AddShed()
	g.AddBatchLines(7)
	g.AddBatchLineErrors(2)
	g.AddBatchWindow()
	g.IncBulkActive()
	return g
}

func TestPrometheusExposition(t *testing.T) {
	g := testRegistry()
	snap := g.Snapshot()

	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, buf.String())

	wantTypes := map[string]string{
		"nutriserve_http_requests_total":           "counter",
		"nutriserve_http_responses_total":          "counter",
		"nutriserve_http_request_duration_seconds": "histogram",
		"nutriserve_http_in_flight":                "gauge",
		"nutriserve_http_shed_total":               "counter",
		"nutriserve_batch_lines_total":             "counter",
		"nutriserve_batch_line_errors_total":       "counter",
		"nutriserve_batch_windows_total":           "counter",
		"nutriserve_batch_streams_active":          "gauge",
	}
	for name, typ := range wantTypes {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing from exposition", name)
		}
		if f.typ != typ {
			t.Errorf("%s type %q, want %q", name, f.typ, typ)
		}
		if f.help == "" {
			t.Errorf("%s has no HELP text", name)
		}
	}
	if len(fams) != len(wantTypes) {
		t.Errorf("exposition has %d families, want %d", len(fams), len(wantTypes))
	}

	// Scalar families against the snapshot.
	none := map[string]string{}
	if v := sampleValue(t, fams, "nutriserve_http_in_flight", "nutriserve_http_in_flight", none); v != float64(snap.InFlight) {
		t.Errorf("in_flight %v, want %d", v, snap.InFlight)
	}
	if v := sampleValue(t, fams, "nutriserve_http_shed_total", "nutriserve_http_shed_total", none); v != float64(snap.Shed) {
		t.Errorf("shed %v, want %d", v, snap.Shed)
	}
	if v := sampleValue(t, fams, "nutriserve_batch_lines_total", "nutriserve_batch_lines_total", none); v != float64(snap.Batch.Lines) {
		t.Errorf("batch lines %v, want %d", v, snap.Batch.Lines)
	}
	if v := sampleValue(t, fams, "nutriserve_batch_line_errors_total", "nutriserve_batch_line_errors_total", none); v != float64(snap.Batch.LineErrors) {
		t.Errorf("batch line errors %v, want %d", v, snap.Batch.LineErrors)
	}
	if v := sampleValue(t, fams, "nutriserve_batch_windows_total", "nutriserve_batch_windows_total", none); v != float64(snap.Batch.Windows) {
		t.Errorf("batch windows %v, want %d", v, snap.Batch.Windows)
	}
	if v := sampleValue(t, fams, "nutriserve_batch_streams_active", "nutriserve_batch_streams_active", none); v != float64(snap.Batch.Active) {
		t.Errorf("batch active %v, want %d", v, snap.Batch.Active)
	}

	// Per-route counters — including the route whose name exercises all
	// three label escapes (backslash, quote, newline).
	for route, rs := range snap.Routes {
		lbl := map[string]string{"route": route}
		if v := sampleValue(t, fams, "nutriserve_http_requests_total", "nutriserve_http_requests_total", lbl); v != float64(rs.Requests) {
			t.Errorf("route %q requests %v, want %d", route, v, rs.Requests)
		}
		for class, n := range rs.ByClass {
			cl := map[string]string{"route": route, "class": class}
			if v := sampleValue(t, fams, "nutriserve_http_responses_total", "nutriserve_http_responses_total", cl); v != float64(n) {
				t.Errorf("route %q class %s %v, want %d", route, class, v, n)
			}
		}
	}
}

// TestPrometheusHistogram pins the histogram contract: buckets are
// rendered cumulative and monotone over ascending second-valued le
// bounds, the terminal le="+Inf" bucket equals _count (so overflow
// observations are counted), and _sum is the snapshot sum in seconds.
func TestPrometheusHistogram(t *testing.T) {
	g := testRegistry()
	snap := g.Snapshot()

	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, buf.String())
	f := fams["nutriserve_http_request_duration_seconds"]
	if f == nil {
		t.Fatal("histogram family missing")
	}

	for route, rs := range snap.Routes {
		var les []float64
		var counts []float64
		inf := math.NaN()
		for _, s := range f.samples {
			if s.name != "nutriserve_http_request_duration_seconds_bucket" || s.labels["route"] != route {
				continue
			}
			le := s.labels["le"]
			if le == "+Inf" {
				inf = s.value
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("route %q: unparseable le %q", route, le)
			}
			les = append(les, bound)
			counts = append(counts, s.value)
		}
		if len(les) != len(rs.Latency.Buckets) {
			t.Fatalf("route %q: %d finite buckets exposed, snapshot has %d", route, len(les), len(rs.Latency.Buckets))
		}
		var cum uint64
		for i, b := range rs.Latency.Buckets {
			if want := b.UpperMs / 1000; les[i] != want {
				t.Errorf("route %q bucket %d le %v, want %v (ms converted to s)", route, i, les[i], want)
			}
			if i > 0 && les[i] <= les[i-1] {
				t.Errorf("route %q bucket bounds not ascending at %d: %v after %v", route, i, les[i], les[i-1])
			}
			cum += b.Count
			if counts[i] != float64(cum) {
				t.Errorf("route %q bucket le=%v count %v, want cumulative %d", route, les[i], counts[i], cum)
			}
			if i > 0 && counts[i] < counts[i-1] {
				t.Errorf("route %q cumulative counts decrease at bucket %d", route, i)
			}
		}
		if math.IsNaN(inf) {
			t.Fatalf("route %q has no le=\"+Inf\" bucket", route)
		}
		lbl := map[string]string{"route": route}
		count := sampleValue(t, fams, "nutriserve_http_request_duration_seconds",
			"nutriserve_http_request_duration_seconds_count", lbl)
		if inf != count {
			t.Errorf("route %q le=+Inf %v != _count %v", route, inf, count)
		}
		if count != float64(rs.Latency.Count) {
			t.Errorf("route %q _count %v, want %d", route, count, rs.Latency.Count)
		}
		if inf < counts[len(counts)-1] {
			t.Errorf("route %q +Inf bucket %v below last finite bucket %v", route, inf, counts[len(counts)-1])
		}
		sum := sampleValue(t, fams, "nutriserve_http_request_duration_seconds",
			"nutriserve_http_request_duration_seconds_sum", lbl)
		if want := rs.Latency.SumMs / 1000; math.Abs(sum-want) > 1e-9 {
			t.Errorf("route %q _sum %v, want %v", route, sum, want)
		}
	}
}

// TestPrometheusDeterministic pins scrape diffability: with no traffic
// in between, two scrapes are byte-identical (routes sorted, no map
// iteration order leaking into the output).
func TestPrometheusDeterministic(t *testing.T) {
	g := testRegistry()
	g.Route("/v1/recipe").Observe(200, time.Millisecond)
	g.Route("/metrics").Observe(200, 50*time.Microsecond)
	var a, b bytes.Buffer
	if err := g.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two idle scrapes differ")
	}
}

type failWriter struct{ err error }

func (f failWriter) Write(p []byte) (int, error) { return 0, f.err }

func TestPrometheusWriteError(t *testing.T) {
	g := testRegistry()
	want := errors.New("scrape socket closed")
	if err := g.WritePrometheus(failWriter{err: want}); !errors.Is(err, want) {
		t.Fatalf("got %v, want the writer's error", err)
	}
}
