package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100}) // ms bounds
	h.Observe(500 * time.Microsecond)        // ≤ 1ms
	h.Observe(1 * time.Millisecond)          // boundary: inclusive upper bound
	h.Observe(5 * time.Millisecond)          // ≤ 10ms
	h.Observe(50 * time.Millisecond)         // ≤ 100ms
	h.Observe(2 * time.Second)               // overflow

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count %d, want 5", s.Count)
	}
	want := []uint64{2, 1, 1}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d (≤%vms): %d, want %d", i, b.UpperMs, b.Count, want[i])
		}
	}
	if s.Overflow != 1 {
		t.Fatalf("overflow %d, want 1", s.Overflow)
	}
	if s.SumMs < 2056 || s.SumMs > 2057 {
		t.Fatalf("sum %vms, want ≈2056.5", s.SumMs)
	}
	if s.MeanMs <= 0 {
		t.Fatalf("mean %v", s.MeanMs)
	}
}

func TestRouteStatusClasses(t *testing.T) {
	reg := NewRegistry()
	rt := reg.Route("/x")
	rt.Observe(200, time.Millisecond)
	rt.Observe(204, time.Millisecond)
	rt.Observe(404, time.Millisecond)
	rt.Observe(500, time.Millisecond)
	rt.Observe(999, time.Millisecond) // out of range → "other"

	s := reg.Snapshot().Routes["/x"]
	if s.Requests != 5 {
		t.Fatalf("requests %d", s.Requests)
	}
	if s.ByClass["2xx"] != 2 || s.ByClass["4xx"] != 1 || s.ByClass["5xx"] != 1 || s.ByClass["other"] != 1 {
		t.Fatalf("classes %+v", s.ByClass)
	}
}

func TestRegistryGauges(t *testing.T) {
	reg := NewRegistry()
	reg.IncInFlight()
	reg.IncInFlight()
	reg.DecInFlight()
	reg.AddShed()
	if reg.InFlight() != 1 || reg.Shed() != 1 {
		t.Fatalf("inflight=%d shed=%d", reg.InFlight(), reg.Shed())
	}
	s := reg.Snapshot()
	if s.InFlight != 1 || s.Shed != 1 {
		t.Fatalf("snapshot %+v", s)
	}
}

// TestRouteGetOrCreateConcurrent hammers Route() for the same and
// different names; run under -race this pins the double-checked map.
func TestRouteGetOrCreateConcurrent(t *testing.T) {
	reg := NewRegistry()
	names := []string{"/a", "/b", "/c"}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				reg.Route(names[(g+i)%len(names)]).Observe(200, time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := reg.Snapshot().TotalRequests(); got != 16*500 {
		t.Fatalf("total %d, want %d", got, 16*500)
	}
	// Same name must resolve to the same Route value.
	if reg.Route("/a") != reg.Route("/a") {
		t.Fatal("Route not idempotent")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Route("/v1/estimate").Observe(200, 3*time.Millisecond)
	reg.AddShed()
	b, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Shed != 1 || back.Routes["/v1/estimate"].Requests != 1 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}
