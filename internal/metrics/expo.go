package metrics

// Prometheus text exposition (format version 0.0.4) over the registry's
// snapshot — the same numbers /v1/stats serves as JSON, rendered the way
// every production scrape stack already understands. The exposition is
// computed from one Snapshot so a scrape is internally consistent to the
// same degree the JSON surface is, and the output is deterministic
// (routes sorted) so it can be golden-tested and diffed across scrapes.
//
// Unit conventions follow Prometheus practice: durations in seconds
// (the registry's millisecond buckets are converted at render time),
// cumulative counters suffixed _total, histograms exposed as cumulative
// _bucket series with an le label and a terminal le="+Inf" equal to
// _count.

import (
	"io"
	"sort"
	"strconv"
)

const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// PrometheusContentType is the Content-Type a /metrics handler should
// send with WritePrometheus output.
func PrometheusContentType() string { return promContentType }

// WritePrometheus renders the registry in Prometheus text format. One
// scrape takes one snapshot; errors are the writer's.
func (g *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, g.Snapshot())
}

// promWriter accumulates the exposition, capturing the first write error
// so the render code stays linear.
type promWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func (p *promWriter) flush() error {
	if p.err == nil && len(p.buf) > 0 {
		_, p.err = p.w.Write(p.buf)
		p.buf = p.buf[:0]
	}
	return p.err
}

func (p *promWriter) str(s string)  { p.buf = append(p.buf, s...) }
func (p *promWriter) int(v int64)   { p.buf = strconv.AppendInt(p.buf, v, 10) }
func (p *promWriter) uint(v uint64) { p.buf = strconv.AppendUint(p.buf, v, 10) }
func (p *promWriter) float(v float64) {
	p.buf = strconv.AppendFloat(p.buf, v, 'g', -1, 64)
}

// header emits the HELP and TYPE lines for one metric family.
func (p *promWriter) header(name, help, typ string) {
	p.str("# HELP ")
	p.str(name)
	p.str(" ")
	p.str(help)
	p.str("\n# TYPE ")
	p.str(name)
	p.str(" ")
	p.str(typ)
	p.str("\n")
}

// label appends one escaped label pair; Prometheus label values escape
// backslash, double quote and newline.
func (p *promWriter) label(first bool, key, val string) {
	if !first {
		p.buf = append(p.buf, ',')
	}
	p.str(key)
	p.str(`="`)
	for i := 0; i < len(val); i++ {
		switch c := val[i]; c {
		case '\\':
			p.str(`\\`)
		case '"':
			p.str(`\"`)
		case '\n':
			p.str(`\n`)
		default:
			p.buf = append(p.buf, c)
		}
	}
	p.buf = append(p.buf, '"')
}

func writePrometheus(w io.Writer, s Snapshot) error {
	p := &promWriter{w: w, buf: make([]byte, 0, 4096)}

	routes := make([]string, 0, len(s.Routes))
	for name := range s.Routes {
		routes = append(routes, name)
	}
	sort.Strings(routes)

	p.header("nutriserve_http_requests_total", "Requests received, by route.", "counter")
	for _, rt := range routes {
		p.str("nutriserve_http_requests_total{")
		p.label(true, "route", rt)
		p.str("} ")
		p.uint(s.Routes[rt].Requests)
		p.str("\n")
	}

	p.header("nutriserve_http_responses_total", "Responses sent, by route and status class.", "counter")
	for _, rt := range routes {
		classes := make([]string, 0, len(s.Routes[rt].ByClass))
		for c := range s.Routes[rt].ByClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			p.str("nutriserve_http_responses_total{")
			p.label(true, "route", rt)
			p.label(false, "class", c)
			p.str("} ")
			p.uint(s.Routes[rt].ByClass[c])
			p.str("\n")
		}
	}

	p.header("nutriserve_http_request_duration_seconds", "Request latency, by route.", "histogram")
	for _, rt := range routes {
		lat := s.Routes[rt].Latency
		var cum uint64
		for _, b := range lat.Buckets {
			cum += b.Count
			p.str("nutriserve_http_request_duration_seconds_bucket{")
			p.label(true, "route", rt)
			p.str(`,le="`)
			p.float(b.UpperMs / 1000)
			p.str(`"} `)
			p.uint(cum)
			p.str("\n")
		}
		p.str("nutriserve_http_request_duration_seconds_bucket{")
		p.label(true, "route", rt)
		p.label(false, "le", "+Inf")
		p.str("} ")
		p.uint(lat.Count)
		p.str("\n")
		p.str("nutriserve_http_request_duration_seconds_sum{")
		p.label(true, "route", rt)
		p.str("} ")
		p.float(lat.SumMs / 1000)
		p.str("\n")
		p.str("nutriserve_http_request_duration_seconds_count{")
		p.label(true, "route", rt)
		p.str("} ")
		p.uint(lat.Count)
		p.str("\n")
	}

	p.header("nutriserve_http_in_flight", "Requests currently being served.", "gauge")
	p.str("nutriserve_http_in_flight ")
	p.int(s.InFlight)
	p.str("\n")

	p.header("nutriserve_http_shed_total", "Requests rejected by admission control.", "counter")
	p.str("nutriserve_http_shed_total ")
	p.uint(s.Shed)
	p.str("\n")

	p.header("nutriserve_batch_lines_total", "NDJSON lines answered on bulk streams.", "counter")
	p.str("nutriserve_batch_lines_total ")
	p.uint(s.Batch.Lines)
	p.str("\n")

	p.header("nutriserve_batch_line_errors_total", "Per-line errors reported in-stream on bulk streams.", "counter")
	p.str("nutriserve_batch_line_errors_total ")
	p.uint(s.Batch.LineErrors)
	p.str("\n")

	p.header("nutriserve_batch_windows_total", "Estimator windows processed by bulk streams.", "counter")
	p.str("nutriserve_batch_windows_total ")
	p.uint(s.Batch.Windows)
	p.str("\n")

	p.header("nutriserve_batch_streams_active", "Bulk streams currently held open.", "gauge")
	p.str("nutriserve_batch_streams_active ")
	p.int(s.Batch.Active)
	p.str("\n")

	return p.flush()
}
