package metrics

import "sync/atomic"

// Striped is a write-striped counter: each slot's value lives on its
// own cache line, so writers pinned to distinct slots (the per-worker
// shards of core's batch pool) never contend or false-share. Reads sum
// every stripe — the aggregate is assembled on demand, never maintained
// per increment.
//
// The intended write pattern is batched: a worker accumulates a plain
// local count for a whole batch and flushes it with one Add at the end,
// so even the slot-local atomic is paid once per batch rather than once
// per phrase. Adds remain atomic (not plain stores) because slot
// ownership is advisory — two concurrent batch calls can fall back to
// the same overflow slot.
//
// The zero value is not usable; construct with NewStriped.
type Striped struct {
	slots []stripe
}

// stripe pads each counter to a 64-byte line (plus the next line's
// worth of slack, since the allocator may not line-align the slice).
type stripe struct {
	n atomic.Uint64
	_ [56]byte
}

// NewStriped builds a counter with n stripes (minimum 1).
func NewStriped(n int) *Striped {
	if n < 1 {
		n = 1
	}
	return &Striped{slots: make([]stripe, n)}
}

// Stripes returns the stripe count.
func (s *Striped) Stripes() int { return len(s.slots) }

// Add accumulates delta into stripe i (modulo the stripe count, so a
// worker index out of range folds onto a valid stripe instead of
// panicking).
func (s *Striped) Add(i int, delta uint64) {
	s.slots[i%len(s.slots)].n.Add(delta)
}

// Sum aggregates every stripe. Monotonic (each stripe is), though not
// atomic across stripes under concurrent writes — fine for monitoring
// and for totals read after writers quiesce, which are exact.
func (s *Striped) Sum() uint64 {
	var total uint64
	for i := range s.slots {
		total += s.slots[i].n.Load()
	}
	return total
}
