package stopwords

import (
	"reflect"
	"testing"
)

func TestIsStop(t *testing.T) {
	for _, w := range []string{"the", "with", "of", "and", "or", "a"} {
		if !IsStop(w) {
			t.Errorf("IsStop(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"butter", "salt", "milk", "raw", "fresh"} {
		if IsStop(w) {
			t.Errorf("IsStop(%q) = true, want false", w)
		}
	}
}

func TestNegationsAreNotStopWords(t *testing.T) {
	// §II-B(f): "not" must survive filtering so that "butter not salt"
	// matches "not salt butter".
	for _, w := range []string{"not", "no", "without", "non"} {
		if IsStop(w) {
			t.Errorf("negation %q filtered as stop word", w)
		}
		if !IsNegation(w) {
			t.Errorf("IsNegation(%q) = false, want true", w)
		}
	}
	if IsNegation("with") {
		t.Error("IsNegation(with) = true, want false")
	}
}

func TestFilter(t *testing.T) {
	in := []string{"butter", "with", "the", "salt", "not", "added"}
	want := []string{"butter", "salt", "not", "added"}
	got := Filter(in)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Filter = %v, want %v", got, want)
	}
	// Input must be unmodified.
	if in[1] != "with" {
		t.Error("Filter mutated its input")
	}
}

func TestFilterEmpty(t *testing.T) {
	if got := Filter(nil); len(got) != 0 {
		t.Errorf("Filter(nil) = %v, want empty", got)
	}
}

func TestInventorySane(t *testing.T) {
	if Count() < 80 {
		t.Errorf("stop-word inventory suspiciously small: %d", Count())
	}
}
