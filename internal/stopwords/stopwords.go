// Package stopwords provides the stop-word list used by the description
// matcher's preprocessing step (§II-B(e) of the paper: "lemmatization,
// stop-word removal and uniform casing").
//
// The list is the standard English function-word inventory plus a handful
// of culinary filler words ("approximately", "optional") that carry no
// matching signal. Negation words are deliberately EXCLUDED: the matcher's
// negation rewriting (§II-B(f)) turns "without"/"un-" prefixes into the
// sentinel token "not", which must survive stop-word filtering to produce
// the "butter not salt" ↔ "not salt butter" perfect match the paper
// describes.
package stopwords

import "nutriprofile/internal/textutil"

// list is the raw stop-word inventory. Kept sorted for readability.
var list = []string{
	"a", "about", "above", "after", "again", "all", "also", "am", "an",
	"and", "any", "approximately", "are", "as", "at",
	"be", "because", "been", "before", "being", "below", "between", "both",
	"but", "by",
	"can", "could",
	"did", "do", "does", "doing", "down", "during",
	"each",
	"few", "for", "from", "further",
	"had", "has", "have", "having", "he", "her", "here", "hers", "him",
	"his", "how",
	"i", "if", "in", "into", "is", "it", "its", "itself",
	"just",
	"me", "more", "most", "my",
	"of", "off", "on", "once", "only", "optional", "or", "other", "our",
	"out", "over", "own",
	"per", "plus",
	"same", "she", "should", "so", "some", "such",
	"than", "that", "the", "their", "theirs", "them", "then", "there",
	"these", "they", "this", "those", "through", "to", "too",
	"under", "until", "up",
	"very",
	"was", "we", "were", "what", "when", "where", "which", "while", "who",
	"whom", "why", "will", "with", "would",
	"you", "your", "yours",
}

// negations are words that the matcher rewrites to "not" BEFORE stop-word
// filtering; they are exported so the matcher and this package agree on the
// inventory. "with" is a stop word, but "without" is a negation.
var negations = []string{"without", "no", "non", "not"}

var (
	set    textutil.Set
	negSet textutil.Set
)

func init() {
	set = textutil.NewSet(list)
	negSet = textutil.NewSet(negations)
}

// IsStop reports whether the (already lower-cased) word is a stop word.
// Negation words are never stop words.
func IsStop(w string) bool {
	if negSet.Has(w) {
		return false
	}
	return set.Has(w)
}

// IsNegation reports whether the word is a negation term that the matcher
// should rewrite to the sentinel "not".
func IsNegation(w string) bool { return negSet.Has(w) }

// Filter returns the tokens with stop words removed. The input slice is
// not modified.
func Filter(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if !IsStop(t) {
			out = append(out, t)
		}
	}
	return out
}

// Count returns the number of stop words in the inventory (for tests).
func Count() int { return len(list) }
