package textutil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestExpandFractions(t *testing.T) {
	cases := []struct{ in, want string }{
		{"½ cup sugar", "1/2 cup sugar"},
		{"1½ cups flour", "1 1/2 cups flour"},
		{"¾ tsp salt", "3/4 tsp salt"},
		{"no fractions here", "no fractions here"},
		{"⅛ teaspoon", "1/8 teaspoon"},
		{"2⅓", "2 1/3"},
		{"", ""},
	}
	for _, c := range cases {
		if got := ExpandFractions(c.in); got != c.want {
			t.Errorf("ExpandFractions(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"1/2 lb lean ground beef", []string{"1/2", "lb", "lean", "ground", "beef"}},
		{"1 small onion , finely chopped", []string{"1", "small", "onion", ",", "finely", "chopped"}},
		{"1 hard-cooked egg", []string{"1", "hard-cooked", "egg"}},
		{"2 cups all-purpose flour", []string{"2", "cups", "all-purpose", "flour"}},
		{"2-4 cloves garlic", []string{"2-4", "cloves", "garlic"}},
		{"2 1/2 teaspoons", []string{"2", "1/2", "teaspoons"}},
		{"Milk, reduced fat, fluid, 2% milkfat", []string{"milk", ",", "reduced", "fat", ",", "fluid", ",", "2", "%", "milkfat"}},
		{`pat (1" sq, 1/3" high)`, []string{"pat", "(", "1", "sq", ",", "1/3", "high", ")"}},
		{"", nil},
		{"   ", nil},
		{"500 g or 1 cup", []string{"500", "g", "or", "1", "cup"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeLowercases(t *testing.T) {
	got := Tokenize("BUTTER, Salted")
	want := []string{"butter", ",", "salted"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"1/2 lb lean ground beef", []string{"lb", "lean", "ground", "beef"}},
		{"Butter, without salt", []string{"butter", "without", "salt"}},
		{"2% milkfat", []string{"milkfat"}},
		{"", nil},
	}
	for _, c := range cases {
		if got := Words(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSplitCommaTerms(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Butter, whipped, with salt", []string{"Butter", "whipped", "with salt"}},
		{"Cheese, cottage, creamed, large or small curd", []string{"Cheese", "cottage", "creamed", "large or small curd"}},
		{"Egg", []string{"Egg"}},
		{" , ,x, ", []string{"x"}},
	}
	for _, c := range cases {
		if got := SplitCommaTerms(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitCommaTerms(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if got := SplitCommaTerms(""); len(got) != 0 {
		t.Errorf("SplitCommaTerms(\"\") = %v, want empty", got)
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet([]string{"butter", "not", "salt"})
	b := NewSet([]string{"butter", "not", "salt"})
	if got := a.IntersectLen(b); got != 3 {
		t.Errorf("IntersectLen identical = %d, want 3", got)
	}
	if got := a.UnionLen(b); got != 3 {
		t.Errorf("UnionLen identical = %d, want 3", got)
	}
	c := NewSet([]string{"milk", "shake"})
	if got := a.IntersectLen(c); got != 0 {
		t.Errorf("IntersectLen disjoint = %d, want 0", got)
	}
	if got := a.UnionLen(c); got != 5 {
		t.Errorf("UnionLen disjoint = %d, want 5", got)
	}
	d := NewSet([]string{"salt", "pepper"})
	if got := a.IntersectLen(d); got != 1 {
		t.Errorf("IntersectLen overlap = %d, want 1", got)
	}
}

func TestSetSorted(t *testing.T) {
	s := NewSet([]string{"zebra", "apple", "mango"})
	want := []string{"apple", "mango", "zebra"}
	if got := s.Sorted(); !reflect.DeepEqual(got, want) {
		t.Errorf("Sorted = %v, want %v", got, want)
	}
}

func TestFirstWord(t *testing.T) {
	cases := []struct{ in, want string }{
		{`pat (1" sq, 1/3" high)`, "pat"},
		{"1 tablespoon", "tablespoon"},
		{"123", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := FirstWord(c.in); got != c.want {
			t.Errorf("FirstWord(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStripNonAlpha(t *testing.T) {
	cases := []struct{ in, want string }{
		{"tbsp.", "tbsp"},
		{"fl oz", "floz"},
		{"1cup", "cup"},
		{"TaBleSpoon", "tablespoon"},
		{"", ""},
	}
	for _, c := range cases {
		if got := StripNonAlpha(c.in); got != c.want {
			t.Errorf("StripNonAlpha(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: Jaccard set-op invariants on arbitrary token lists.
func TestSetOpsProperties(t *testing.T) {
	f := func(aw, bw []string) bool {
		a, b := NewSet(aw), NewSet(bw)
		inter := a.IntersectLen(b)
		union := a.UnionLen(b)
		if inter != b.IntersectLen(a) || union != b.UnionLen(a) {
			return false // symmetry
		}
		if inter > a.Len() || inter > b.Len() {
			return false // intersection bounded by each set
		}
		if union < a.Len() || union < b.Len() {
			return false // union dominates each set
		}
		return union == a.Len()+b.Len()-inter // inclusion–exclusion
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Tokenize always lower-cases and never emits empty tokens.
func TestTokenizeProperties(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			if tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ExpandFractions output contains no vulgar-fraction glyphs.
func TestExpandFractionsProperty(t *testing.T) {
	f := func(s string) bool {
		out := ExpandFractions(s)
		return !strings.ContainsAny(out, "½⅓⅔¼¾⅕⅖⅗⅘⅙⅚⅐⅛⅜⅝⅞⅑⅒")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	phrase := "1 1/2 cups all-purpose flour , sifted and divided"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(phrase)
	}
}
