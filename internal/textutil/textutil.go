// Package textutil provides the low-level text primitives the pipeline is
// built on: tokenization of noisy ingredient phrases, case folding, unicode
// fraction expansion, comma-term splitting for USDA-SR style food
// descriptions, and set operations over word bags.
//
// Every stage of the paper's pipeline (NER §II-A, description matching
// §II-B, unit matching §II-C) starts from these primitives, so they are
// deliberately small, allocation-conscious and deterministic.
package textutil

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// fractionGlyphs maps unicode vulgar-fraction code points to their ASCII
// "n/d" spelling. Recipe sites frequently emit ½ and ¼ glyphs; USDA-SR and
// the quantity grammar both work on ASCII fractions.
var fractionGlyphs = map[rune]string{
	'½': "1/2", '⅓': "1/3", '⅔': "2/3", '¼': "1/4", '¾': "3/4",
	'⅕': "1/5", '⅖': "2/5", '⅗': "3/5", '⅘': "4/5", '⅙': "1/6",
	'⅚': "5/6", '⅐': "1/7", '⅛': "1/8", '⅜': "3/8", '⅝': "5/8",
	'⅞': "7/8", '⅑': "1/9", '⅒': "1/10",
}

// ExpandFractions rewrites unicode vulgar-fraction glyphs as ASCII
// fractions, inserting a space before the glyph when it directly follows a
// digit so that "1½" becomes the mixed number "1 1/2". Strings without a
// glyph (the overwhelmingly common case) are returned unchanged without
// allocating.
func ExpandFractions(s string) string {
	if !containsFractionGlyph(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	prevDigit := false
	for _, r := range s {
		if frac, ok := fractionGlyphs[r]; ok {
			if prevDigit {
				b.WriteByte(' ')
			}
			b.WriteString(frac)
			prevDigit = false
			continue
		}
		b.WriteRune(r)
		prevDigit = unicode.IsDigit(r)
	}
	return b.String()
}

// containsFractionGlyph reports whether s contains any vulgar-fraction
// rune. Every glyph is multi-byte, so the pure-ASCII prefix is skipped
// bytewise before any rune decoding happens.
func containsFractionGlyph(s string) bool {
	i := 0
	for i < len(s) && s[i] < utf8.RuneSelf {
		i++
	}
	for _, r := range s[i:] {
		if _, ok := fractionGlyphs[r]; ok {
			return true
		}
	}
	return false
}

// Tokenize splits a phrase into lower-cased tokens. Alphabetic runs,
// numeric runs (including fractions "1/2", decimals "2.5" and ranges
// "2-4"), and single punctuation marks each form one token. Hyphenated
// words such as "hard-cooked" and "all-purpose" are kept together, matching
// how the paper's Table I treats them as single STATE/NAME words.
func Tokenize(s string) []string {
	return appendTokens(nil, s, false, nil)
}

// AppendTokens is Tokenize appending into dst, so callers on hot paths
// can reuse one scratch slice across phrases instead of allocating a
// fresh token slice per call.
func AppendTokens(dst []string, s string) []string {
	return appendTokens(dst, s, false, nil)
}

// AppendTokensFolded is AppendTokens with a Folder caching the case
// foldings, so phrases containing upper-case tokens stop allocating once
// the Folder has seen each distinct spelling. Token values are identical
// to Tokenize's.
func AppendTokensFolded(dst []string, s string, f *Folder) []string {
	return appendTokens(dst, s, false, f)
}

// maxFolderEntries bounds a Folder's memory; real token vocabularies are
// far smaller, so the reset path only guards against adversarial input.
const maxFolderEntries = 4096

// Folder memoizes strings.ToLower for cased tokens. Tokens that are
// already lower-case never touch the cache (they are returned as
// zero-copy substrings before the Folder is consulted), so the map only
// holds the rare cased spellings. A nil *Folder is valid and simply
// falls back to strings.ToLower. Not safe for concurrent use — a Folder
// belongs to one goroutine's scratch state.
type Folder struct {
	m map[string]string
}

// Lower returns strings.ToLower(s), serving repeated cased spellings
// from the cache without allocating.
func (f *Folder) Lower(s string) string {
	// Fast path: nothing to fold. Any non-ASCII rune falls through to
	// ToLower, which still returns s unchanged (no alloc) when the rune
	// has no lower-case form.
	i := 0
	for i < len(s) && s[i] < utf8.RuneSelf && (s[i] < 'A' || s[i] > 'Z') {
		i++
	}
	if i == len(s) {
		return s
	}
	if f == nil {
		return strings.ToLower(s)
	}
	if lowered, ok := f.m[s]; ok {
		return lowered
	}
	lowered := strings.ToLower(s)
	if f.m == nil {
		f.m = make(map[string]string)
	} else if len(f.m) >= maxFolderEntries {
		clear(f.m)
	}
	// Clone the key: s is a substring of the caller's phrase and caching
	// it verbatim would pin the whole phrase in memory.
	f.m[strings.Clone(s)] = lowered
	return lowered
}

// appendTokens walks the string directly with utf8.DecodeRuneInString and
// slices the original string for each token — no []rune conversion, no
// rune re-encoding. Already-lowercase tokens (the typical case for both
// recipe phrases and normalized queries) are emitted as zero-copy
// substrings because case folding returns its input unchanged when there
// is nothing to fold; cased tokens fold through f (nil: plain ToLower).
func appendTokens(dst []string, s string, wordsOnly bool, f *Folder) []string {
	s = ExpandFractions(s)
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case unicode.IsDigit(r):
			j := i + size
			for j < len(s) {
				r2, sz2 := utf8.DecodeRuneInString(s[j:])
				if unicode.IsDigit(r2) || r2 == '.' || r2 == '/' {
					j += sz2
					continue
				}
				if r2 == '-' {
					if r3, _ := utf8.DecodeRuneInString(s[j+sz2:]); unicode.IsDigit(r3) {
						j += sz2
						continue
					}
				}
				break
			}
			if !wordsOnly {
				dst = append(dst, f.Lower(s[i:j]))
			}
			i = j
		case unicode.IsLetter(r):
			j := i + size
			for j < len(s) {
				r2, sz2 := utf8.DecodeRuneInString(s[j:])
				if unicode.IsLetter(r2) || r2 == '\'' {
					j += sz2
					continue
				}
				if r2 == '-' {
					if r3, _ := utf8.DecodeRuneInString(s[j+sz2:]); unicode.IsLetter(r3) {
						j += sz2
						continue
					}
				}
				break
			}
			dst = append(dst, f.Lower(s[i:j]))
			i = j
		case r == '%':
			if !wordsOnly {
				dst = append(dst, "%")
			}
			i += size
		default:
			// Punctuation: emit commas (description-term separators) and
			// drop everything else as noise, e.g. the quote marks in the
			// USDA unit `pat (1" sq, 1/3" high)`.
			if !wordsOnly && (r == ',' || r == '(' || r == ')') {
				dst = append(dst, s[i:i+size])
			}
			i += size
		}
	}
	return dst
}

// Words returns only the alphabetic tokens of a phrase (lower-cased),
// dropping numbers and punctuation. This is the preprocessing base for
// Jaccard word sets (§II-B(e)).
func Words(s string) []string {
	return appendTokens(nil, s, true, nil)
}

// AppendWords is Words appending into dst (see AppendTokens).
func AppendWords(dst []string, s string) []string {
	return appendTokens(dst, s, true, nil)
}

// IsWordToken reports whether t is an alphabetic token as Tokenize emits
// them: letters plus interior hyphens/apostrophes. Numeric and
// punctuation tokens are not word tokens.
func IsWordToken(t string) bool {
	if t == "" {
		return false
	}
	for _, r := range t {
		if !unicode.IsLetter(r) && r != '-' && r != '\'' {
			return false
		}
	}
	return true
}

// SplitCommaTerms splits a USDA-SR food description into its
// comma-separated terms, trimming whitespace and dropping empties:
// "Butter, whipped, with salt" → ["Butter", "whipped", "with salt"].
// The paper (§II-B(a)) assigns decreasing importance to later terms.
func SplitCommaTerms(desc string) []string {
	parts := strings.Split(desc, ",")
	out := parts[:0:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Set is a bag-of-words set used by the Jaccard metrics.
type Set map[string]struct{}

// NewSet builds a Set from tokens.
func NewSet(tokens []string) Set {
	s := make(Set, len(tokens))
	for _, t := range tokens {
		s[t] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s Set) Has(w string) bool { _, ok := s[w]; return ok }

// Add inserts a word.
func (s Set) Add(w string) { s[w] = struct{}{} }

// Len returns |S|.
func (s Set) Len() int { return len(s) }

// IntersectLen returns |s ∩ t| without materializing the intersection.
func (s Set) IntersectLen(t Set) int {
	small, large := s, t
	if len(t) < len(s) {
		small, large = t, s
	}
	n := 0
	for w := range small {
		if _, ok := large[w]; ok {
			n++
		}
	}
	return n
}

// UnionLen returns |s ∪ t|.
func (s Set) UnionLen(t Set) int {
	return len(s) + len(t) - s.IntersectLen(t)
}

// Sorted returns the members in lexical order (for deterministic output).
func (s Set) Sorted() []string {
	out := make([]string, 0, len(s))
	for w := range s {
		out = append(out, w)
	}
	sortStrings(out)
	return out
}

// sortStrings is an insertion sort: sets here are tiny (phrase-sized) and
// this keeps the package dependency-free of sort for the hot path.
func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Singularize-adjacent helpers used across packages.

// EqualFold reports case-insensitive equality without allocating.
func EqualFold(a, b string) bool { return strings.EqualFold(a, b) }

// FirstWord returns the first alphabetic token of s, lower-cased, or "".
// Used by unit cleaning (§II-C): `pat (1" sq, 1/3" high)` → "pat".
func FirstWord(s string) string {
	for _, t := range Tokenize(s) {
		if IsWordToken(t) {
			return t
		}
	}
	return ""
}

// StripNonAlpha removes every non-letter rune and lower-cases the result,
// the "regex to obtain a cleaner version containing only alphabets" step of
// §II-C. Strings that are already clean (lower-case ASCII letters only,
// the common case for tokenized unit words) are returned unchanged
// without allocating.
func StripNonAlpha(s string) string {
	i := 0
	for i < len(s) && 'a' <= s[i] && s[i] <= 'z' {
		i++
	}
	if i == len(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if unicode.IsLetter(r) {
			b.WriteRune(unicode.ToLower(r))
		}
	}
	return b.String()
}
