package textutil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestFolderLowerMatchesToLower pins Folder.Lower (nil and warm) to
// strings.ToLower on arbitrary input.
func TestFolderLowerMatchesToLower(t *testing.T) {
	var f Folder
	check := func(s string) bool {
		want := strings.ToLower(s)
		if (*Folder)(nil).Lower(s) != want {
			return false
		}
		// Twice through the same folder: miss then hit.
		return f.Lower(s) == want && f.Lower(s) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestFolderLowerZeroCopy: already-lowercase input must come back as the
// identical string without touching the cache.
func TestFolderLowerZeroCopy(t *testing.T) {
	var f Folder
	for _, s := range []string{"", "flour", "1/2", "all-purpose"} {
		if got := f.Lower(s); got != s {
			t.Errorf("Lower(%q) = %q, want input unchanged", s, got)
		}
	}
	if f.m != nil {
		t.Errorf("lowercase inputs populated the cache: %v", f.m)
	}
}

// TestFolderBounded: overflowing the cache clears it but never changes
// results.
func TestFolderBounded(t *testing.T) {
	var f Folder
	for i := 0; i < maxFolderEntries+50; i++ {
		s := "Word" + strings.Repeat("X", i%7) + string(rune('A'+i%26))
		if got, want := f.Lower(s), strings.ToLower(s); got != want {
			t.Fatalf("Lower(%q) = %q, want %q", s, got, want)
		}
	}
	if len(f.m) > maxFolderEntries {
		t.Fatalf("folder grew past bound: %d entries", len(f.m))
	}
}

// TestAppendTokensFoldedMatchesTokenize pins the folded tokenizer (the
// scratch arena's entry point) to Tokenize on arbitrary input, with the
// folder reused across calls.
func TestAppendTokensFoldedMatchesTokenize(t *testing.T) {
	var f Folder
	var dst []string
	check := func(s string) bool {
		want := Tokenize(s)
		dst = AppendTokensFolded(dst[:0], s, &f)
		if len(want) == 0 && len(dst) == 0 {
			return true
		}
		return reflect.DeepEqual(dst, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	for _, s := range []string{
		"2 Cups FLOUR", "½ Cup Sugar", "Boiling Water", "1 (8 OZ) Package",
	} {
		if !check(s) {
			t.Errorf("AppendTokensFolded(%q) = %q, want %q", s, dst, Tokenize(s))
		}
	}
}

// TestStripNonAlphaCleanFastPath: already-clean input must come back as
// the identical string (the zero-copy fast path).
func TestStripNonAlphaCleanFastPath(t *testing.T) {
	for _, s := range []string{"", "flour", "cup"} {
		if got := StripNonAlpha(s); got != s {
			t.Errorf("StripNonAlpha(%q) = %q, want unchanged", s, got)
		}
	}
	if got := StripNonAlpha("all-purpose"); got != "allpurpose" {
		t.Errorf("StripNonAlpha(all-purpose) = %q, want allpurpose", got)
	}
}

// TestInternerLookupBytes pins the byte-key probe to Lookup.
func TestInternerLookupBytes(t *testing.T) {
	in := NewInterner()
	a := in.Intern("flour")
	b := in.Intern("butter")
	if id, ok := in.LookupBytes([]byte("flour")); !ok || id != a {
		t.Errorf("LookupBytes(flour) = (%d, %v), want (%d, true)", id, ok, a)
	}
	if id, ok := in.LookupBytes([]byte("butter")); !ok || id != b {
		t.Errorf("LookupBytes(butter) = (%d, %v), want (%d, true)", id, ok, b)
	}
	if _, ok := in.LookupBytes([]byte("sugar")); ok {
		t.Error("LookupBytes(sugar) = hit, want miss")
	}
	if _, ok := in.LookupBytes(nil); ok {
		t.Error("LookupBytes(nil) = hit, want miss")
	}
}
