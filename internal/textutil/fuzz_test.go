package textutil

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"1/2 lb lean ground beef",
		"½ cup sugar , sifted",
		`pat (1" sq, 1/3" high)`,
		"500 g or 1 cup flour",
		"Milk, reduced fat, fluid, 2% milkfat",
		"", "   ", "🍎 2 apples", "a\x00b", strings.Repeat("x", 300),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatalf("empty token from %q", s)
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("non-lowered token %q from %q", tok, s)
			}
			if !utf8.ValidString(tok) {
				t.Fatalf("invalid UTF-8 token %q from %q", tok, s)
			}
		}
		// Words ⊆ Tokenize.
		words := Words(s)
		if len(words) > len(toks) {
			t.Fatalf("Words longer than Tokenize for %q", s)
		}
	})
}

func FuzzExpandFractions(f *testing.F) {
	for _, seed := range []string{"1½", "⅛ tsp", "no fractions", "½½½", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := ExpandFractions(s)
		if strings.ContainsAny(out, "½⅓⅔¼¾⅕⅖⅗⅘⅙⅚⅐⅛⅜⅝⅞⅑⅒") {
			t.Fatalf("glyph survived: %q → %q", s, out)
		}
		// Idempotent.
		if again := ExpandFractions(out); again != out {
			t.Fatalf("not idempotent: %q → %q → %q", s, out, again)
		}
	})
}
