package textutil

import "slices"

// Interner assigns dense uint32 term IDs to strings in first-encounter
// order. The matcher interns every normalized description word once at
// build time, then scores queries entirely in ID space: posting lists,
// document word sets and accumulator arrays are all indexed by these
// IDs, so the hot path never hashes or compares strings.
//
// Interner is not synchronized: intern during single-threaded
// construction, then share read-only (Lookup, Term, Len, Terms are pure
// reads) across any number of goroutines.
type Interner struct {
	ids   map[string]uint32
	terms []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// Intern returns the ID for term, assigning the next dense ID on first
// sight.
func (in *Interner) Intern(term string) uint32 {
	if id, ok := in.ids[term]; ok {
		return id
	}
	id := uint32(len(in.terms))
	in.ids[term] = id
	in.terms = append(in.terms, term)
	return id
}

// NewInternerFromTerms rebuilds an interner from a previously assigned
// vocabulary: terms[i] gets ID i, exactly the state an interner that
// produced Terms() == terms would hold. Used by the baked-index loader
// to reconstitute a matcher's vocabulary without re-interning (the term
// strings are typically substrings of one image-backed blob, so the
// only allocation is the presized map).
func NewInternerFromTerms(terms []string) *Interner {
	in := &Interner{
		ids:   make(map[string]uint32, len(terms)),
		terms: terms,
	}
	for i, t := range terms {
		in.ids[t] = uint32(i)
	}
	return in
}

// Lookup returns the ID for term without assigning one.
func (in *Interner) Lookup(term string) (uint32, bool) {
	id, ok := in.ids[term]
	return id, ok
}

// LookupBytes is Lookup keyed by raw bytes. The string conversion in the
// map index expression is recognized by the compiler and does not
// allocate, so hot paths can probe with scratch-assembled keys for free.
func (in *Interner) LookupBytes(key []byte) (uint32, bool) {
	id, ok := in.ids[string(key)]
	return id, ok
}

// Term returns the string for a previously assigned ID.
func (in *Interner) Term(id uint32) string { return in.terms[id] }

// Len returns the number of interned terms.
func (in *Interner) Len() int { return len(in.terms) }

// Terms returns the interned terms in ID order. The slice is the
// interner's backing store: callers must treat it as read-only.
func (in *Interner) Terms() []string { return in.terms }

// IDSet is a sorted, duplicate-free slice of term IDs — the interned
// counterpart of Set. Sorted storage makes membership a binary search
// and intersection/union a linear merge, with no hashing and no map
// iteration (so results are deterministic by construction).
type IDSet []uint32

// NewIDSet sorts and deduplicates ids in place and returns the
// (possibly shortened) set view of the same backing array.
func NewIDSet(ids []uint32) IDSet { return SortDedupIDs(ids) }

// SortDedupIDs sorts ids ascending and removes duplicates in place.
func SortDedupIDs(ids []uint32) []uint32 {
	if len(ids) < 2 {
		return ids
	}
	slices.Sort(ids)
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[w-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}

// Has reports membership by binary search.
func (s IDSet) Has(id uint32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == id
}

// Len returns |S|.
func (s IDSet) Len() int { return len(s) }

// IntersectLen returns |s ∩ t| by merging the two sorted sets.
func (s IDSet) IntersectLen(t IDSet) int {
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnionLen returns |s ∪ t|.
func (s IDSet) UnionLen(t IDSet) int {
	return len(s) + len(t) - s.IntersectLen(t)
}

// ContainsAll reports t ⊆ s.
func (s IDSet) ContainsAll(t IDSet) bool {
	return s.IntersectLen(t) == len(t)
}
