package textutil

import (
	"reflect"
	"testing"
)

func TestInternerAssignsDenseIDs(t *testing.T) {
	in := NewInterner()
	a := in.Intern("butter")
	b := in.Intern("salt")
	if a != 0 || b != 1 {
		t.Fatalf("IDs not dense: %d, %d", a, b)
	}
	if again := in.Intern("butter"); again != a {
		t.Errorf("re-intern changed ID: %d vs %d", again, a)
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if in.Term(a) != "butter" || in.Term(b) != "salt" {
		t.Errorf("Term round-trip failed: %q, %q", in.Term(a), in.Term(b))
	}
	if id, ok := in.Lookup("salt"); !ok || id != b {
		t.Errorf("Lookup(salt) = %d, %v", id, ok)
	}
	if _, ok := in.Lookup("pepper"); ok {
		t.Error("Lookup found un-interned term")
	}
	if got := in.Terms(); !reflect.DeepEqual(got, []string{"butter", "salt"}) {
		t.Errorf("Terms = %v", got)
	}
}

func TestSortDedupIDs(t *testing.T) {
	cases := []struct {
		in, want []uint32
	}{
		{nil, nil},
		{[]uint32{5}, []uint32{5}},
		{[]uint32{3, 1, 2}, []uint32{1, 2, 3}},
		{[]uint32{2, 2, 2}, []uint32{2}},
		{[]uint32{4, 1, 4, 1, 0}, []uint32{0, 1, 4}},
	}
	for _, c := range cases {
		got := SortDedupIDs(append([]uint32(nil), c.in...))
		if !reflect.DeepEqual([]uint32(got), c.want) {
			t.Errorf("SortDedupIDs(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIDSetOps(t *testing.T) {
	a := NewIDSet([]uint32{1, 3, 5, 7})
	b := NewIDSet([]uint32{3, 4, 7, 9})
	if got := a.IntersectLen(b); got != 2 {
		t.Errorf("IntersectLen = %d, want 2", got)
	}
	if got := a.UnionLen(b); got != 6 {
		t.Errorf("UnionLen = %d, want 6", got)
	}
	for _, id := range []uint32{1, 3, 5, 7} {
		if !a.Has(id) {
			t.Errorf("Has(%d) = false", id)
		}
	}
	for _, id := range []uint32{0, 2, 8, 100} {
		if a.Has(id) {
			t.Errorf("Has(%d) = true", id)
		}
	}
	if !a.ContainsAll(NewIDSet([]uint32{3, 7})) {
		t.Error("ContainsAll subset = false")
	}
	if a.ContainsAll(b) {
		t.Error("ContainsAll non-subset = true")
	}
	var empty IDSet
	if empty.Has(0) || empty.IntersectLen(a) != 0 || !a.ContainsAll(empty) {
		t.Error("empty-set ops wrong")
	}
}

// The ID-space ops must agree with the string-space Set ops they replace.
func TestIDSetMatchesStringSet(t *testing.T) {
	in := NewInterner()
	words := func(ws ...string) (Set, IDSet) {
		ids := make([]uint32, len(ws))
		for i, w := range ws {
			ids[i] = in.Intern(w)
		}
		return NewSet(ws), NewIDSet(ids)
	}
	sa, ia := words("butter", "not", "salt", "butter")
	sb, ib := words("salt", "milk", "not")
	if sa.IntersectLen(sb) != ia.IntersectLen(ib) {
		t.Errorf("IntersectLen diverges: %d vs %d", sa.IntersectLen(sb), ia.IntersectLen(ib))
	}
	if sa.UnionLen(sb) != ia.UnionLen(ib) {
		t.Errorf("UnionLen diverges: %d vs %d", sa.UnionLen(sb), ia.UnionLen(ib))
	}
	if sa.Len() != ia.Len() {
		t.Errorf("Len diverges: %d vs %d", sa.Len(), ia.Len())
	}
}

func TestAppendWordsReusesBuffer(t *testing.T) {
	buf := make([]string, 0, 8)
	got := AppendWords(buf, "2 cups all-purpose flour")
	want := []string{"cups", "all-purpose", "flour"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AppendWords = %v, want %v", got, want)
	}
	// Appending reuses the same backing array when capacity suffices.
	if &buf[:1][0] != &got[:1][0] {
		t.Error("AppendWords reallocated despite sufficient capacity")
	}
	// Words and AppendWords(nil, ...) agree with Tokenize-based filtering.
	for _, s := range []string{"1/2 lb lean ground beef", "Milk, fluid, 2% milkfat", "", "🍎 2 apples"} {
		if !reflect.DeepEqual(Words(s), AppendWords(nil, s)) {
			t.Errorf("Words/AppendWords diverge on %q", s)
		}
	}
}
