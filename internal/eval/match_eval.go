package eval

import (
	"errors"
	"sort"

	"nutriprofile/internal/match"
)

// MatchRateResult is the §III "94.49% of the unique ingredients" figure.
type MatchRateResult struct {
	Unique  int // unique ingredient queries tried
	Matched int // queries that found any description
	Rate    float64
}

// MatchRate measures the fraction of unique queries the matcher maps to
// any description.
func MatchRate(m *match.Matcher, queries []match.Query) (MatchRateResult, error) {
	if len(queries) == 0 {
		return MatchRateResult{}, errors.New("eval: no queries")
	}
	seen := map[match.Query]bool{}
	res := MatchRateResult{}
	for _, q := range queries {
		if seen[q] {
			continue
		}
		seen[q] = true
		res.Unique++
		if _, ok := m.Match(q); ok {
			res.Matched++
		}
	}
	res.Rate = float64(res.Matched) / float64(res.Unique)
	return res, nil
}

// LabeledQuery pairs a query with its gold NDB (0 = genuinely
// unmappable). Regional marks gold foods that live only in the FAO-style
// regional table; primary-table accuracy skips them, the multi-database
// experiment scores them.
type LabeledQuery struct {
	Query    match.Query
	NDB      int
	Regional bool
	Freq     int // corpus frequency, for the paper's top-N protocol
}

// AccuracyResult is the §III manual-validation figure: of the 5000 most
// frequent ingredient+state pairs, 71.6% were deemed correct.
type AccuracyResult struct {
	Evaluated int
	Correct   int
	Accuracy  float64
}

// MatchAccuracyTopN ranks labeled queries by corpus frequency, takes the
// top n mappable ones, and scores the matcher's choice against gold.
func MatchAccuracyTopN(m *match.Matcher, queries []LabeledQuery, n int) (AccuracyResult, error) {
	var mappable []LabeledQuery
	for _, q := range queries {
		if q.NDB != 0 && !q.Regional {
			mappable = append(mappable, q)
		}
	}
	if len(mappable) == 0 {
		return AccuracyResult{}, errors.New("eval: no mappable labeled queries")
	}
	sort.SliceStable(mappable, func(i, j int) bool { return mappable[i].Freq > mappable[j].Freq })
	if n > 0 && len(mappable) > n {
		mappable = mappable[:n]
	}
	res := AccuracyResult{}
	for _, lq := range mappable {
		res.Evaluated++
		if r, ok := m.Match(lq.Query); ok && r.NDB == lq.NDB {
			res.Correct++
		}
	}
	res.Accuracy = float64(res.Correct) / float64(res.Evaluated)
	return res, nil
}

// Divergence counts queries on which two matchers disagree — the paper's
// "227 out of 1000 randomly sampled ingredient phrases ... having a
// different match" comparison between the modified and vanilla indices.
type Divergence struct {
	Compared  int
	Different int
	Rate      float64
	// Examples lists up to 10 diverging (query, A-choice, B-choice)
	// triples for Table III style reporting.
	Examples []DivergenceExample
}

// DivergenceExample is one diverging query.
type DivergenceExample struct {
	Query        match.Query
	DescA, DescB string
}

// CompareMatchers measures how often two matcher configurations choose
// different descriptions for the same queries.
func CompareMatchers(a, b *match.Matcher, queries []match.Query) (Divergence, error) {
	if len(queries) == 0 {
		return Divergence{}, errors.New("eval: no queries")
	}
	d := Divergence{}
	for _, q := range queries {
		ra, okA := a.Match(q)
		rb, okB := b.Match(q)
		if !okA && !okB {
			continue
		}
		d.Compared++
		if okA != okB || ra.NDB != rb.NDB {
			d.Different++
			if len(d.Examples) < 10 {
				d.Examples = append(d.Examples, DivergenceExample{
					Query: q, DescA: ra.Desc, DescB: rb.Desc,
				})
			}
		}
	}
	if d.Compared > 0 {
		d.Rate = float64(d.Different) / float64(d.Compared)
	}
	return d, nil
}
