// Package eval implements the paper's evaluation harness (§III and the
// §II-A model validation): NER precision/recall/F1 with k-fold cross
// validation, ingredient match-rate and match-accuracy, per-recipe
// mapping histograms (Fig. 2) and per-serving calorie error.
package eval

import (
	"errors"
	"fmt"
	"math/rand"

	"nutriprofile/internal/ner"
)

// PRF bundles precision, recall and F1 for one label.
type PRF struct {
	Precision, Recall, F1 float64
	Support               int // gold token count
}

// NERMetrics summarizes a tagger against gold examples.
type NERMetrics struct {
	TokenAccuracy float64
	PerLabel      map[ner.Label]PRF
	// MicroF1 pools counts over all entity labels (O excluded), the
	// figure comparable to the paper's reported F1 = 0.95.
	MicroF1 float64
	// MacroF1 averages per-label F1 over entity labels with support.
	MacroF1 float64
	// Confusion[gold][pred] counts token-level confusions, for error
	// analysis.
	Confusion [ner.NLabels][ner.NLabels]int
}

func prf(tp, fp, fn int) PRF {
	var p, r, f float64
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f = 2 * p * r / (p + r)
	}
	return PRF{Precision: p, Recall: r, F1: f, Support: tp + fn}
}

// EvaluateNER scores a tagger on gold examples.
func EvaluateNER(tagger ner.Tagger, gold []ner.Example) (NERMetrics, error) {
	if len(gold) == 0 {
		return NERMetrics{}, errors.New("eval: no gold examples")
	}
	var tp, fp, fn [ner.NLabels]int
	var confusion [ner.NLabels][ner.NLabels]int
	correct, total := 0, 0
	for _, ex := range gold {
		if err := ex.Validate(); err != nil {
			return NERMetrics{}, err
		}
		pred := tagger.Tag(ex.Tokens)
		for i, g := range ex.Labels {
			p := pred[i]
			total++
			confusion[g][p]++
			if p == g {
				correct++
				tp[g]++
			} else {
				fp[p]++
				fn[g]++
			}
		}
	}

	m := NERMetrics{
		TokenAccuracy: float64(correct) / float64(total),
		PerLabel:      map[ner.Label]PRF{},
		Confusion:     confusion,
	}
	var microTP, microFP, microFN int
	macroSum, macroN := 0.0, 0
	for l := ner.Label(0); l < ner.NLabels; l++ {
		score := prf(tp[l], fp[l], fn[l])
		m.PerLabel[l] = score
		if l == ner.Out {
			continue
		}
		microTP += tp[l]
		microFP += fp[l]
		microFN += fn[l]
		if score.Support > 0 {
			macroSum += score.F1
			macroN++
		}
	}
	m.MicroF1 = prf(microTP, microFP, microFN).F1
	if macroN > 0 {
		m.MacroF1 = macroSum / float64(macroN)
	}
	return m, nil
}

// span is a maximal run of one entity label.
type span struct {
	label      ner.Label
	start, end int // [start, end)
}

// extractSpans converts a label sequence into entity spans, merging
// adjacent identical labels (the Assemble convention) and skipping O.
func extractSpans(labels []ner.Label) []span {
	var out []span
	for i := 0; i < len(labels); {
		l := labels[i]
		j := i + 1
		for j < len(labels) && labels[j] == l {
			j++
		}
		if l != ner.Out {
			out = append(out, span{label: l, start: i, end: j})
		}
		i = j
	}
	return out
}

// SpanF1 scores a tagger at the entity-span level — the strict CoNLL-style
// metric where a predicted span counts only if label, start and end all
// match a gold span exactly. This is harsher than token-level F1 and is
// the standard NER headline figure.
func SpanF1(tagger ner.Tagger, gold []ner.Example) (PRF, error) {
	if len(gold) == 0 {
		return PRF{}, errors.New("eval: no gold examples")
	}
	tp, fp, fn := 0, 0, 0
	for _, ex := range gold {
		if err := ex.Validate(); err != nil {
			return PRF{}, err
		}
		goldSpans := extractSpans(ex.Labels)
		predSpans := extractSpans(tagger.Tag(ex.Tokens))
		matched := make([]bool, len(goldSpans))
		for _, p := range predSpans {
			hit := false
			for gi, g := range goldSpans {
				if !matched[gi] && g == p {
					matched[gi] = true
					hit = true
					break
				}
			}
			if hit {
				tp++
			} else {
				fp++
			}
		}
		for _, m := range matched {
			if !m {
				fn++
			}
		}
	}
	return prf(tp, fp, fn), nil
}

// KFoldResult carries the per-fold and aggregate CV scores.
type KFoldResult struct {
	Folds []NERMetrics
	// MeanMicroF1 is the cross-validated figure matching the paper's
	// "F1 score of 0.95 on the test set validated by 5-fold cross
	// validation".
	MeanMicroF1       float64
	MeanTokenAccuracy float64
}

// KFoldNER runs k-fold cross validation: for each fold, train on the
// other k−1 folds and evaluate on the held-out one. The split is
// deterministic for a given seed.
func KFoldNER(examples []ner.Example, k int, trainCfg ner.TrainConfig, seed int64) (KFoldResult, error) {
	if k < 2 {
		return KFoldResult{}, fmt.Errorf("eval: k must be ≥ 2, got %d", k)
	}
	if len(examples) < k {
		return KFoldResult{}, fmt.Errorf("eval: %d examples for %d folds", len(examples), k)
	}
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	var res KFoldResult
	for fold := 0; fold < k; fold++ {
		var train, test []ner.Example
		for pos, idx := range order {
			if pos%k == fold {
				test = append(test, examples[idx])
			} else {
				train = append(train, examples[idx])
			}
		}
		model, err := ner.Train(train, trainCfg)
		if err != nil {
			return KFoldResult{}, fmt.Errorf("eval: fold %d training: %w", fold, err)
		}
		m, err := EvaluateNER(model, test)
		if err != nil {
			return KFoldResult{}, fmt.Errorf("eval: fold %d scoring: %w", fold, err)
		}
		res.Folds = append(res.Folds, m)
		res.MeanMicroF1 += m.MicroF1
		res.MeanTokenAccuracy += m.TokenAccuracy
	}
	res.MeanMicroF1 /= float64(k)
	res.MeanTokenAccuracy /= float64(k)
	return res, nil
}
