package eval

import (
	"math"
	"testing"

	"nutriprofile/internal/core"
	"nutriprofile/internal/match"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/usda"
)

func corpus(t testing.TB, n int, seed int64) *recipedb.Corpus {
	t.Helper()
	c, err := recipedb.Generate(recipedb.Config{NumRecipes: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEvaluateNERPerfectTagger(t *testing.T) {
	c := corpus(t, 50, 1)
	exs := c.Examples()
	// An oracle that replays gold labels scores 1.0 everywhere.
	oracle := oracleTagger{gold: exs}
	m, err := EvaluateNER(&oracle, exs)
	if err != nil {
		t.Fatal(err)
	}
	if m.TokenAccuracy != 1.0 || m.MicroF1 != 1.0 {
		t.Errorf("oracle scored accuracy=%v microF1=%v", m.TokenAccuracy, m.MicroF1)
	}
}

// oracleTagger replays gold labels by token-sequence lookup.
type oracleTagger struct {
	gold []ner.Example
	m    map[string][]ner.Label
}

func (o *oracleTagger) Tag(tokens []string) []ner.Label {
	if o.m == nil {
		o.m = map[string][]ner.Label{}
		for _, ex := range o.gold {
			o.m[key(ex.Tokens)] = ex.Labels
		}
	}
	if l, ok := o.m[key(tokens)]; ok {
		return l
	}
	return make([]ner.Label, len(tokens))
}

func key(tokens []string) string {
	s := ""
	for _, t := range tokens {
		s += t + "\x00"
	}
	return s
}

func TestEvaluateNERRuleBaseline(t *testing.T) {
	c := corpus(t, 200, 2)
	m, err := EvaluateNER(ner.RuleTagger{}, c.Examples())
	if err != nil {
		t.Fatal(err)
	}
	// The rule baseline should be strong but imperfect on generator noise.
	if m.MicroF1 < 0.80 {
		t.Errorf("rule baseline micro-F1 = %.3f, suspiciously low", m.MicroF1)
	}
	if m.MicroF1 == 1.0 {
		t.Log("rule baseline perfect — corpus may be too easy")
	}
	if m.PerLabel[ner.Name].Support == 0 || m.PerLabel[ner.Quantity].Support == 0 {
		t.Error("missing support counts for NAME/QUANTITY")
	}
	// The confusion matrix's diagonal dominates and its total equals the
	// token count implied by per-label support.
	diag, total := 0, 0
	for g := ner.Label(0); g < ner.NLabels; g++ {
		for p := ner.Label(0); p < ner.NLabels; p++ {
			total += m.Confusion[g][p]
			if g == p {
				diag += m.Confusion[g][p]
			}
		}
	}
	if total == 0 || float64(diag)/float64(total) != m.TokenAccuracy {
		t.Errorf("confusion diagonal %d/%d inconsistent with accuracy %.4f",
			diag, total, m.TokenAccuracy)
	}
}

func TestEvaluateNERValidation(t *testing.T) {
	if _, err := EvaluateNER(ner.RuleTagger{}, nil); err == nil {
		t.Error("empty gold accepted")
	}
	bad := []ner.Example{{Tokens: []string{"a"}, Labels: []ner.Label{ner.Name, ner.Name}}}
	if _, err := EvaluateNER(ner.RuleTagger{}, bad); err == nil {
		t.Error("misaligned gold accepted")
	}
}

func TestSpanF1(t *testing.T) {
	c := corpus(t, 100, 12)
	exs := c.Examples()
	// Oracle gets a perfect span score.
	oracle := oracleTagger{gold: exs}
	s, err := SpanF1(&oracle, exs)
	if err != nil {
		t.Fatal(err)
	}
	if s.F1 != 1.0 {
		t.Errorf("oracle span F1 = %v", s.F1)
	}
	// Rule baseline: strong but below token-level accuracy (span scoring
	// is strictly harsher).
	spanScore, err := SpanF1(ner.RuleTagger{}, exs)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := EvaluateNER(ner.RuleTagger{}, exs)
	if err != nil {
		t.Fatal(err)
	}
	if spanScore.F1 > tok.TokenAccuracy+1e-9 {
		t.Errorf("span F1 %.4f above token accuracy %.4f", spanScore.F1, tok.TokenAccuracy)
	}
	if spanScore.F1 < 0.7 {
		t.Errorf("rule baseline span F1 %.3f suspiciously low", spanScore.F1)
	}
	t.Logf("rule baseline: span F1 %.4f, token accuracy %.4f", spanScore.F1, tok.TokenAccuracy)
	if _, err := SpanF1(ner.RuleTagger{}, nil); err == nil {
		t.Error("SpanF1 accepted empty gold")
	}
}

func TestKFoldNER(t *testing.T) {
	c := corpus(t, 120, 3)
	exs := c.Examples()
	res, err := KFoldNER(exs, 3, ner.TrainConfig{Epochs: 3, Seed: 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 3 {
		t.Fatalf("%d folds", len(res.Folds))
	}
	if res.MeanMicroF1 < 0.85 {
		t.Errorf("CV micro-F1 = %.3f; the paper's regime is ≈0.95", res.MeanMicroF1)
	}
}

func TestKFoldValidation(t *testing.T) {
	exs := corpus(t, 5, 4).Examples()
	if _, err := KFoldNER(exs, 1, ner.TrainConfig{}, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KFoldNER(exs[:1], 5, ner.TrainConfig{}, 1); err == nil {
		t.Error("fewer examples than folds accepted")
	}
}

func TestMatchRate(t *testing.T) {
	c := corpus(t, 300, 5)
	m := match.NewDefault(usda.Seed())
	lqs := CorpusQueries(c)
	queries := make([]match.Query, len(lqs))
	for i, lq := range lqs {
		queries[i] = lq.Query
	}
	res, err := MatchRate(m, queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unique == 0 || res.Matched > res.Unique {
		t.Fatalf("bad counts: %+v", res)
	}
	// The paper reports 94.49%; the generated corpus includes deliberate
	// unmappables, so expect high-80s to high-90s.
	if res.Rate < 0.75 || res.Rate > 1.0 {
		t.Errorf("match rate %.4f out of plausible band", res.Rate)
	}
	t.Logf("unique=%d matched=%d rate=%.2f%%", res.Unique, res.Matched, 100*res.Rate)
}

func TestMatchRateDedupes(t *testing.T) {
	m := match.NewDefault(usda.Seed())
	q := match.Query{Name: "butter"}
	res, err := MatchRate(m, []match.Query{q, q, q})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unique != 1 {
		t.Errorf("Unique = %d, want 1", res.Unique)
	}
}

func TestMatchAccuracyTopN(t *testing.T) {
	c := corpus(t, 400, 6)
	m := match.NewDefault(usda.Seed())
	res, err := MatchAccuracyTopN(m, CorpusQueries(c), 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated == 0 || res.Correct > res.Evaluated {
		t.Fatalf("bad counts: %+v", res)
	}
	// The paper's manual validation found 71.6%; near-duplicate USDA
	// variants mean exact-NDB accuracy is far below match rate.
	if res.Accuracy < 0.4 {
		t.Errorf("top-N accuracy %.3f too low", res.Accuracy)
	}
	t.Logf("evaluated=%d correct=%d accuracy=%.1f%%", res.Evaluated, res.Correct, 100*res.Accuracy)
}

func TestCompareMatchers(t *testing.T) {
	db := usda.Seed()
	mod := match.NewDefault(db)
	vanOpts := match.DefaultOptions()
	vanOpts.Metric = match.VanillaJaccard
	van := match.New(db, vanOpts)

	c := corpus(t, 300, 7)
	lqs := CorpusQueries(c)
	queries := make([]match.Query, len(lqs))
	for i, lq := range lqs {
		queries[i] = lq.Query
	}
	d, err := CompareMatchers(mod, van, queries)
	if err != nil {
		t.Fatal(err)
	}
	if d.Compared == 0 {
		t.Fatal("nothing compared")
	}
	if d.Different == 0 {
		t.Error("metrics never diverged; paper found 227/1000")
	}
	t.Logf("divergence %d/%d = %.1f%%", d.Different, d.Compared, 100*d.Rate)
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, f := range []float64{0, 0.05, 0.5, 0.95, 1.0, 1.0, -0.1, 1.5} {
		h.Observe(f)
	}
	if h.Total != 8 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Counts[10] != 3 { // 1.0, 1.0, clamped 1.5
		t.Errorf("Counts[10] = %d, want 3", h.Counts[10])
	}
	if h.Counts[0] != 3 { // 0, 0.05, clamped -0.1
		t.Errorf("Counts[0] = %d, want 3", h.Counts[0])
	}
	if h.BucketLabel(10) != "100%" || h.BucketLabel(0) != "0-10%" {
		t.Error("bucket labels wrong")
	}
}

func TestPercentMapping(t *testing.T) {
	c := corpus(t, 150, 8)
	e := core.NewDefault()
	res, err := PercentMapping(e, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The worker count must not change the result.
	seq, err := PercentMapping(e, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seq != res {
		t.Fatalf("parallel mapping %+v ≠ sequential %+v", res, seq)
	}
	if res.Hist.Total != c.Len() {
		t.Fatalf("histogram total %d ≠ corpus %d", res.Hist.Total, c.Len())
	}
	if res.MeanMapped <= 0.5 {
		t.Errorf("mean mapped %.3f too low", res.MeanMapped)
	}
	if res.FullyMapped == 0 {
		t.Error("no fully mapped recipes; the calorie experiment needs them")
	}
	t.Logf("mean mapped %.1f%%, fully mapped %d/%d",
		100*res.MeanMapped, res.FullyMapped, c.Len())
}

func TestCalorieError(t *testing.T) {
	c := corpus(t, 400, 9)
	e := core.NewDefault()
	e.ObserveUnits(c.Phrases())
	res, err := CalorieError(e, c, CalorieConfig{Seed: 1, RequireFullMapping: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recipes == 0 {
		t.Fatal("no recipes selected")
	}
	// The noise stream is drawn in corpus order after the parallel
	// estimation phase, so every figure must be worker-count invariant.
	seq, err := CalorieError(e, c, CalorieConfig{Seed: 1, RequireFullMapping: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq != res {
		t.Fatalf("parallel calorie result ≠ sequential:\n par: %+v\n seq: %+v", res, seq)
	}
	if res.MeanAbsError < 0 || math.IsNaN(res.MeanAbsError) {
		t.Fatalf("bad error %v", res.MeanAbsError)
	}
	// The paper's figure is 36.42 kcal/serving; on gold-derived data the
	// pipeline should land within the same order of magnitude.
	if res.MeanAbsError > 200 {
		t.Errorf("mean per-serving error %.1f kcal implausibly high", res.MeanAbsError)
	}
	// The bootstrap CI must bracket the point estimate.
	if !(res.CILow <= res.MeanAbsError && res.MeanAbsError <= res.CIHigh) {
		t.Errorf("CI [%.2f, %.2f] does not bracket mean %.2f",
			res.CILow, res.CIHigh, res.MeanAbsError)
	}
	t.Logf("recipes=%d meanAbsErr=%.2f kcal median=%.2f gold=%.0f est=%.0f rel=%.1f%%",
		res.Recipes, res.MeanAbsError, res.MedianError,
		res.MeanGoldKcal, res.MeanEstKcal, 100*res.MeanRelError)
}

func TestCalorieErrorValidation(t *testing.T) {
	e := core.NewDefault()
	if _, err := CalorieError(e, &recipedb.Corpus{}, CalorieConfig{}); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestCorpusQueriesAggregation(t *testing.T) {
	c := corpus(t, 100, 10)
	lqs := CorpusQueries(c)
	if len(lqs) == 0 {
		t.Fatal("no queries")
	}
	seen := map[string]bool{}
	totalFreq := 0
	for _, lq := range lqs {
		k := lq.Query.Name + "|" + lq.Query.State
		if seen[k] {
			t.Fatalf("duplicate query key %q", k)
		}
		seen[k] = true
		totalFreq += lq.Freq
	}
	lines := 0
	for _, r := range c.Recipes {
		lines += len(r.Ingredients)
	}
	if totalFreq != lines {
		t.Errorf("frequency sum %d ≠ ingredient lines %d", totalFreq, lines)
	}
}
