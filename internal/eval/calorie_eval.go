package eval

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"nutriprofile/internal/core"
	"nutriprofile/internal/match"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/units"
)

// Histogram is a fixed-bucket distribution over [0,1] used for Fig. 2's
// "percentage mapping of recipes to their nutritional profile".
type Histogram struct {
	// Counts[i] holds values in [i*10%, (i+1)*10%) for i < 10;
	// Counts[10] holds exactly 100%.
	Counts [11]int
	Total  int
}

// Observe adds one fraction in [0,1].
func (h *Histogram) Observe(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	idx := int(frac * 10)
	if frac == 1 {
		idx = 10
	}
	h.Counts[idx]++
	h.Total++
}

// BucketLabel names bucket i, e.g. "70-80%" or "100%".
func (h *Histogram) BucketLabel(i int) string {
	if i == 10 {
		return "100%"
	}
	return bucketNames[i]
}

var bucketNames = [10]string{
	"0-10%", "10-20%", "20-30%", "30-40%", "40-50%",
	"50-60%", "60-70%", "70-80%", "80-90%", "90-100%",
}

// MappingResult is the Fig. 2 experiment output.
type MappingResult struct {
	Hist Histogram
	// FullyMapped counts recipes with 100% of ingredients mapped — the
	// paper's calorie-evaluation subset criterion.
	FullyMapped int
	MeanMapped  float64
}

// PercentMapping runs the estimator over a corpus on a worker pool
// (workers <= 0 selects GOMAXPROCS) and histograms each recipe's
// mapped-ingredient fraction. The result is identical for any worker
// count: estimation is parallel, aggregation stays in corpus order.
func PercentMapping(e *core.Estimator, corpus *recipedb.Corpus, workers int) (MappingResult, error) {
	if corpus.Len() == 0 {
		return MappingResult{}, errors.New("eval: empty corpus")
	}
	inputs := make([]core.RecipeInput, corpus.Len())
	for i := range corpus.Recipes {
		rec := &corpus.Recipes[i]
		phrases := make([]string, len(rec.Ingredients))
		for j := range rec.Ingredients {
			phrases[j] = rec.Ingredients[j].Phrase
		}
		inputs[i] = core.RecipeInput{Phrases: phrases, Servings: rec.Servings}
	}
	outcomes := e.EstimateRecipes(inputs, workers)

	var res MappingResult
	sum := 0.0
	for _, out := range outcomes {
		if out.Err != nil {
			return MappingResult{}, out.Err
		}
		res.Hist.Observe(out.Result.MappedFraction)
		sum += out.Result.MappedFraction
		if out.Result.MappedFraction == 1 {
			res.FullyMapped++
		}
	}
	res.MeanMapped = sum / float64(corpus.Len())
	return res, nil
}

// CalorieConfig controls the §III calorie-error experiment.
type CalorieConfig struct {
	// GoldNoiseStd perturbs the gold per-serving calories by a relative
	// Gaussian factor, simulating the physical variation between the
	// generative model and an independent third-party profile (cooking
	// yield, measurement variance). Default 0.05 (5%).
	GoldNoiseStd float64
	// Seed drives the noise.
	Seed int64
	// RequireFullMapping keeps only recipes whose every ingredient
	// mapped, the paper's selection ("We selected data for which we had
	// 100% mapping of ingredients ... resulted in 2482 recipes").
	RequireFullMapping bool
	// RequireCleanServings additionally keeps only recipes whose
	// published servings text parses to a single unambiguous integer —
	// the paper's "had clean, well-defined servings" criterion.
	RequireCleanServings bool
	// Workers sizes the estimation worker pool (<= 0: GOMAXPROCS).
	// Scoring is sequential in corpus order regardless, so the noise
	// stream — and therefore every reported number — is identical for
	// any worker count.
	Workers int
}

// CalorieResult is the §III error figure: the paper reports an average
// per-serving error of 36.42 kcal over 2,482 fully-mapped recipes.
// The per-nutrient MAE fields extend the paper's calories-only evaluation
// to the full profile the title promises.
type CalorieResult struct {
	Recipes      int // recipes evaluated after selection
	MeanAbsError float64
	MedianError  float64
	MeanGoldKcal float64
	MeanEstKcal  float64
	MeanRelError float64 // mean |err| / gold
	// Per-serving mean absolute error for the macro profile.
	ProteinMAE, FatMAE, CarbsMAE float64 // g
	SodiumMAE                    float64 // mg
	// ExcludedUncleanServings counts recipes dropped by the
	// clean-servings criterion.
	ExcludedUncleanServings int
	// CILow/CIHigh bound the mean absolute error's 95% bootstrap
	// confidence interval (1,000 resamples).
	CILow, CIHigh float64
}

// CalorieError runs the estimator over the corpus and scores per-serving
// calorie error against (noisy) gold.
func CalorieError(e *core.Estimator, corpus *recipedb.Corpus, cfg CalorieConfig) (CalorieResult, error) {
	if corpus.Len() == 0 {
		return CalorieResult{}, errors.New("eval: empty corpus")
	}
	if cfg.GoldNoiseStd == 0 {
		cfg.GoldNoiseStd = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Phase 1 — estimate every recipe on the worker pool. The servings
	// the pipeline sees come from the published text, exactly as they
	// would from a scraped site.
	inputs := make([]core.RecipeInput, corpus.Len())
	cleanServ := make([]bool, corpus.Len())
	for i := range corpus.Recipes {
		rec := &corpus.Recipes[i]
		servings, clean, ok := units.ParseServings(rec.ServingsText)
		if !ok {
			servings, clean = rec.Servings, true
		}
		phrases := make([]string, len(rec.Ingredients))
		for j := range rec.Ingredients {
			phrases[j] = rec.Ingredients[j].Phrase
		}
		inputs[i] = core.RecipeInput{Phrases: phrases, Servings: servings}
		cleanServ[i] = clean
	}
	outcomes := e.EstimateRecipes(inputs, cfg.Workers)

	// Phase 2 — score sequentially in corpus order, so the noise stream
	// is independent of the worker count.
	var errs []float64
	var res CalorieResult
	for i := range corpus.Recipes {
		rec := &corpus.Recipes[i]
		clean := cleanServ[i]
		rr, err := outcomes[i].Result, outcomes[i].Err
		if err != nil {
			return CalorieResult{}, err
		}
		// Noise must be drawn unconditionally to keep selection from
		// changing the random stream of later recipes.
		noise := 1 + rng.NormFloat64()*cfg.GoldNoiseStd
		if cfg.RequireFullMapping && rr.MappedFraction < 1 {
			continue
		}
		if cfg.RequireCleanServings && !clean {
			res.ExcludedUncleanServings++
			continue
		}
		goldPS := rec.GoldPerServing()
		gold := goldPS.EnergyKcal * noise
		est := rr.PerServing.EnergyKcal
		absErr := math.Abs(est - gold)
		errs = append(errs, absErr)
		res.Recipes++
		res.MeanAbsError += absErr
		res.MeanGoldKcal += gold
		res.MeanEstKcal += est
		if gold > 0 {
			res.MeanRelError += absErr / gold
		}
		res.ProteinMAE += math.Abs(rr.PerServing.ProteinG - goldPS.ProteinG*noise)
		res.FatMAE += math.Abs(rr.PerServing.FatG - goldPS.FatG*noise)
		res.CarbsMAE += math.Abs(rr.PerServing.CarbsG - goldPS.CarbsG*noise)
		res.SodiumMAE += math.Abs(rr.PerServing.SodiumMg - goldPS.SodiumMg*noise)
	}
	if res.Recipes == 0 {
		return CalorieResult{}, errors.New("eval: no recipes passed selection")
	}
	n := float64(res.Recipes)
	res.MeanAbsError /= n
	res.MeanGoldKcal /= n
	res.MeanEstKcal /= n
	res.MeanRelError /= n
	res.ProteinMAE /= n
	res.FatMAE /= n
	res.CarbsMAE /= n
	res.SodiumMAE /= n
	res.MedianError = median(errs)
	res.CILow, res.CIHigh = bootstrapMeanCI(errs, 1000, rng)
	return res, nil
}

// bootstrapMeanCI returns the 2.5th and 97.5th percentiles of the mean
// over resamples-many bootstrap resamples of xs.
func bootstrapMeanCI(xs []float64, resamples int, rng *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	means := make([]float64, resamples)
	for b := 0; b < resamples; b++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[b] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	lo = means[int(0.025*float64(resamples))]
	hi = means[int(0.975*float64(resamples))]
	return lo, hi
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	// Insertion sort is fine at evaluation sizes.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// CorpusQueries extracts one labeled query per ingredient line of the
// corpus, with frequency aggregation over identical (name, state) pairs —
// the input for MatchRate and MatchAccuracyTopN.
func CorpusQueries(corpus *recipedb.Corpus) []LabeledQuery {
	type key struct {
		name, state string
	}
	agg := map[key]*LabeledQuery{}
	var order []key
	for i := range corpus.Recipes {
		for j := range corpus.Recipes[i].Ingredients {
			g := &corpus.Recipes[i].Ingredients[j].Gold
			k := key{g.Name, g.State}
			if lq, ok := agg[k]; ok {
				lq.Freq++
				continue
			}
			agg[k] = &LabeledQuery{
				Query: match.Query{
					Name: g.Name, State: g.State,
					Temp: g.Temp, DryFresh: g.DryFresh,
				},
				NDB:      g.NDB,
				Regional: g.Regional,
				Freq:     1,
			}
			order = append(order, k)
		}
	}
	out := make([]LabeledQuery, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	return out
}
