// Package yield implements the cooking-yield and nutrient-retention
// correction the paper identifies as the main accuracy gap of the
// raw-ingredient-sum approximation (§I, citing Bognár & Piekarski,
// "Guidelines for recipe information and calculation of nutrient
// composition of prepared foods"): "more accurate results would be
// obtained if nutritional yield due to cooking is taken into account,
// but there is no such consolidated resource for yield values".
//
// This package IS that consolidated resource, in miniature: per-method
// weight-yield factors and per-nutrient retention factors in the style of
// the Bognár tables and USDA's retention-factor releases. Values are
// representative constants for composite dishes, not ingredient-specific
// science — the experiment this package feeds (EXPERIMENTS.md, yield
// ablation) only needs the correction's structure to quantify how much of
// the calorie error it removes.
package yield

import "nutriprofile/internal/nutrition"

// Method is a cooking method with known yield behaviour.
type Method uint8

// The cooking-method inventory. None means served raw/uncooked.
const (
	None Method = iota
	Boiled
	Steamed
	Baked
	Roasted
	Fried
	Grilled
	Stewed
	NMethods
)

var methodNames = [NMethods]string{
	"none", "boiled", "steamed", "baked", "roasted", "fried", "grilled", "stewed",
}

// String returns the lower-case method name.
func (m Method) String() string {
	if m < NMethods {
		return methodNames[m]
	}
	return "invalid"
}

// ParseMethod resolves a method name (as recipe titles/instructions spell
// it); unknown names map to None.
func ParseMethod(s string) Method {
	for i, n := range methodNames {
		if n == s {
			return Method(i)
		}
	}
	return None
}

// Factors holds one method's correction: the weight yield (cooked weight
// as a fraction of raw weight — water loss pushes it below 1 for dry-heat
// methods, water uptake above 1 for boiled grains) and per-nutrient-class
// retention (the fraction of the raw nutrient surviving cooking).
type Factors struct {
	WeightYield float64
	// Retention by nutrient class. Energy and macronutrients are largely
	// conserved; heat- and water-sensitive micronutrients are not.
	Energy   float64
	Protein  float64
	Fat      float64
	Carbs    float64
	Minerals float64 // calcium, iron, sodium
	VitC     float64 // the canonical heat-labile vitamin
}

// table holds the per-method factors. Sources: Bognár & Piekarski (2000)
// composite-dish guidance and USDA retention factor release 6,
// generalized to dish level.
var table = [NMethods]Factors{
	None:    {WeightYield: 1.00, Energy: 1.00, Protein: 1.00, Fat: 1.00, Carbs: 1.00, Minerals: 1.00, VitC: 1.00},
	Boiled:  {WeightYield: 0.95, Energy: 0.97, Protein: 0.98, Fat: 0.95, Carbs: 0.98, Minerals: 0.80, VitC: 0.50},
	Steamed: {WeightYield: 0.97, Energy: 0.99, Protein: 0.99, Fat: 0.99, Carbs: 0.99, Minerals: 0.95, VitC: 0.75},
	Baked:   {WeightYield: 0.88, Energy: 0.99, Protein: 0.98, Fat: 0.97, Carbs: 0.99, Minerals: 0.95, VitC: 0.65},
	Roasted: {WeightYield: 0.80, Energy: 0.97, Protein: 0.97, Fat: 0.90, Carbs: 0.99, Minerals: 0.95, VitC: 0.60},
	Fried:   {WeightYield: 0.85, Energy: 0.98, Protein: 0.97, Fat: 0.95, Carbs: 0.98, Minerals: 0.95, VitC: 0.55},
	Grilled: {WeightYield: 0.78, Energy: 0.96, Protein: 0.97, Fat: 0.85, Carbs: 0.99, Minerals: 0.95, VitC: 0.60},
	Stewed:  {WeightYield: 0.92, Energy: 0.98, Protein: 0.98, Fat: 0.96, Carbs: 0.98, Minerals: 0.85, VitC: 0.45},
}

// For returns the factors of a method.
func For(m Method) Factors {
	if m >= NMethods {
		return table[None]
	}
	return table[m]
}

// Apply corrects a nutrient profile (per recipe or per serving) for a
// cooking method: each nutrient is scaled by its retention factor. The
// weight yield does NOT change nutrient totals (nutrients concentrate as
// water leaves); it is exposed separately via For for callers that need
// cooked weights.
func Apply(p nutrition.Profile, m Method) nutrition.Profile {
	f := For(m)
	return nutrition.Profile{
		EnergyKcal: p.EnergyKcal * f.Energy,
		ProteinG:   p.ProteinG * f.Protein,
		FatG:       p.FatG * f.Fat,
		CarbsG:     p.CarbsG * f.Carbs,
		FiberG:     p.FiberG * f.Carbs,
		SugarG:     p.SugarG * f.Carbs,
		CalciumMg:  p.CalciumMg * f.Minerals,
		IronMg:     p.IronMg * f.Minerals,
		SodiumMg:   p.SodiumMg * f.Minerals,
		VitCMg:     p.VitCMg * f.VitC,
		CholMg:     p.CholMg * f.Fat,
	}
}

// InferFromTitle guesses the cooking method from a recipe title — the
// lightweight signal available when instructions are absent ("Baked
// Salmon", "Beef Stew"). Unknown titles return None.
func InferFromTitle(title string) Method {
	lower := []byte(title)
	for i, c := range lower {
		if c >= 'A' && c <= 'Z' {
			lower[i] = c + 'a' - 'A'
		}
	}
	t := string(lower)
	for _, probe := range []struct {
		word string
		m    Method
	}{
		{"boil", Boiled}, {"steam", Steamed}, {"bake", Baked},
		{"baked", Baked}, {"roast", Roasted}, {"fry", Fried},
		{"fried", Fried}, {"grill", Grilled}, {"stew", Stewed},
		{"soup", Boiled}, {"braise", Stewed}, {"casserole", Baked},
	} {
		if contains(t, probe.word) {
			return probe.m
		}
	}
	return None
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
