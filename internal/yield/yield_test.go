package yield

import (
	"testing"
	"testing/quick"

	"nutriprofile/internal/nutrition"
)

func TestMethodString(t *testing.T) {
	cases := map[Method]string{
		None: "none", Boiled: "boiled", Fried: "fried", Stewed: "stewed",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if Method(200).String() != "invalid" {
		t.Error("out-of-range method should stringify as invalid")
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	for m := Method(0); m < NMethods; m++ {
		if got := ParseMethod(m.String()); got != m {
			t.Errorf("ParseMethod(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if ParseMethod("sous-vide") != None {
		t.Error("unknown method should map to None")
	}
}

func TestApplyNoneIsIdentity(t *testing.T) {
	p := nutrition.Profile{EnergyKcal: 500, ProteinG: 20, FatG: 10, CarbsG: 60, VitCMg: 30}
	if got := Apply(p, None); got != p {
		t.Errorf("Apply(None) changed the profile: %+v", got)
	}
}

func TestApplyReducesHeatLabiles(t *testing.T) {
	p := nutrition.Profile{EnergyKcal: 500, VitCMg: 100, CalciumMg: 200}
	for m := Boiled; m < NMethods; m++ {
		got := Apply(p, m)
		if got.VitCMg >= p.VitCMg {
			t.Errorf("%v: vitamin C not reduced (%.1f)", m, got.VitCMg)
		}
		if got.EnergyKcal > p.EnergyKcal || got.EnergyKcal < 0.9*p.EnergyKcal {
			t.Errorf("%v: energy retention %.1f out of the near-conserved band", m, got.EnergyKcal)
		}
	}
	// Boiling leaches more minerals than steaming.
	if Apply(p, Boiled).CalciumMg >= Apply(p, Steamed).CalciumMg {
		t.Error("boiled mineral retention should be below steamed")
	}
}

func TestFactorsSane(t *testing.T) {
	for m := Method(0); m < NMethods; m++ {
		f := For(m)
		check := func(name string, v float64) {
			if v <= 0 || v > 1.10 {
				t.Errorf("%v: %s factor %v out of (0,1.1]", m, name, v)
			}
		}
		check("weight", f.WeightYield)
		check("energy", f.Energy)
		check("protein", f.Protein)
		check("fat", f.Fat)
		check("carbs", f.Carbs)
		check("minerals", f.Minerals)
		check("vitC", f.VitC)
	}
	if For(Method(99)) != table[None] {
		t.Error("out-of-range method must fall back to None factors")
	}
}

func TestInferFromTitle(t *testing.T) {
	cases := map[string]Method{
		"Baked Salmon":           Baked,
		"Beef Stew #12":          Stewed,
		"Grilled Cheese":         Grilled,
		"Thai Fried Rice":        Fried,
		"Lentil Soup":            Boiled,
		"Roasted Vegetables":     Roasted,
		"Steamed Dumplings":      Steamed,
		"Caesar Salad":           None,
		"Chicken Casserole Bake": Baked,
		"":                       None,
	}
	for title, want := range cases {
		if got := InferFromTitle(title); got != want {
			t.Errorf("InferFromTitle(%q) = %v, want %v", title, got, want)
		}
	}
}

// Property: Apply never increases any nutrient and preserves validity.
func TestApplyMonotone(t *testing.T) {
	f := func(kcal, prot, fat, carb, vc float64, raw uint8) bool {
		clamp := func(v float64) float64 {
			if v < 0 {
				v = -v
			}
			for v > 1e6 {
				v /= 1e6
			}
			return v
		}
		p := nutrition.Profile{
			EnergyKcal: clamp(kcal), ProteinG: clamp(prot),
			FatG: clamp(fat), CarbsG: clamp(carb), VitCMg: clamp(vc),
		}
		m := Method(raw % uint8(NMethods))
		got := Apply(p, m)
		if !got.Valid() {
			return false
		}
		return got.EnergyKcal <= p.EnergyKcal+1e-9 &&
			got.VitCMg <= p.VitCMg+1e-9 &&
			got.ProteinG <= p.ProteinG+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
