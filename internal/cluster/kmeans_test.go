package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates three well-separated Gaussian-ish blobs in 2-D.
func blobs(perBlob int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	var vs [][]float64
	var truth []int
	for c, ctr := range centers {
		for i := 0; i < perBlob; i++ {
			vs = append(vs, []float64{
				ctr[0] + rng.NormFloat64(),
				ctr[1] + rng.NormFloat64(),
			})
			truth = append(truth, c)
		}
	}
	return vs, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	vs, truth := blobs(50, 1)
	res, err := KMeans(vs, Config{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every true blob must map to exactly one k-means cluster.
	blobToCluster := map[int]int{}
	for i, b := range truth {
		c := res.Assignment[i]
		if prev, ok := blobToCluster[b]; ok && prev != c {
			t.Fatalf("blob %d split across clusters %d and %d", b, prev, c)
		}
		blobToCluster[b] = c
	}
	if len(blobToCluster) != 3 {
		t.Fatalf("recovered %d clusters, want 3", len(blobToCluster))
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, Config{K: 2}); err == nil {
		t.Error("KMeans(nil) succeeded")
	}
	if _, err := KMeans([][]float64{{1}}, Config{K: 0}); err == nil {
		t.Error("KMeans K=0 succeeded")
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, Config{K: 1}); err == nil {
		t.Error("KMeans ragged input succeeded")
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	vs := [][]float64{{0}, {1}, {2}}
	res, err := KMeans(vs, Config{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Errorf("K clipped to %d centroids, want 3", len(res.Centroids))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	vs, _ := blobs(30, 3)
	a, _ := KMeans(vs, Config{K: 3, Seed: 7})
	b, _ := KMeans(vs, Config{K: 3, Seed: 7})
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("k-means not deterministic for fixed seed")
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	vs := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(vs, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Assignment {
		if c < 0 || c >= 2 {
			t.Fatalf("bad assignment %d", c)
		}
	}
}

func TestSampleBalanced(t *testing.T) {
	// 3 clusters of sizes 60/30/10.
	assign := make([]int, 100)
	for i := range assign {
		switch {
		case i < 60:
			assign[i] = 0
		case i < 90:
			assign[i] = 1
		default:
			assign[i] = 2
		}
	}
	idx := SampleBalanced(assign, 3, 20, 5)
	if len(idx) == 0 || len(idx) > 20 {
		t.Fatalf("sampled %d, want (0,20]", len(idx))
	}
	seen := map[int]bool{}
	perCluster := map[int]int{}
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
		perCluster[assign[i]]++
	}
	for c := 0; c < 3; c++ {
		if perCluster[c] == 0 {
			t.Errorf("cluster %d unrepresented in sample", c)
		}
	}
	// Proportionality: the big cluster should dominate.
	if perCluster[0] <= perCluster[2] {
		t.Errorf("sampling not proportional: %v", perCluster)
	}
}

func TestSampleBalancedEdges(t *testing.T) {
	if got := SampleBalanced(nil, 3, 10, 1); got != nil {
		t.Error("sampling empty assignment should return nil")
	}
	if got := SampleBalanced([]int{0, 1}, 2, 0, 1); got != nil {
		t.Error("total=0 should return nil")
	}
	got := SampleBalanced([]int{0, 1, 0}, 2, 100, 1)
	if len(got) != 3 {
		t.Errorf("total>n should return all %d, got %d", 3, len(got))
	}
}

// Property: assignments are always in range and every centroid has the
// input dimensionality.
func TestKMeansInvariants(t *testing.T) {
	f := func(seed int64, rawK uint8) bool {
		k := int(rawK%5) + 1
		vs, _ := blobs(20, seed)
		res, err := KMeans(vs, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		for _, a := range res.Assignment {
			if a < 0 || a >= len(res.Centroids) {
				return false
			}
		}
		for _, c := range res.Centroids {
			if len(c) != 2 {
				return false
			}
			for _, x := range c {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKMeans(b *testing.B) {
	vs, _ := blobs(200, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(vs, Config{K: 5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
