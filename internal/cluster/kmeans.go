// Package cluster implements k-means clustering over phrase vectors.
//
// The paper (§II-A) selects a diverse NER train/test corpus by
// representing each ingredient phrase as a POS-tag frequency vector,
// clustering the vectors, and sampling phrases from every cluster. This
// package provides the clustering and the per-cluster sampling.
package cluster

import (
	"errors"
	"math"
	"math/rand"
)

// Result holds a k-means clustering: final centroids and the cluster
// assignment of every input vector.
type Result struct {
	Centroids  [][]float64
	Assignment []int
	Iterations int
}

// Config controls KMeans.
type Config struct {
	K        int   // number of clusters (required, ≥1)
	MaxIters int   // default 100
	Seed     int64 // PRNG seed; clustering is deterministic given it
}

// KMeans clusters vectors (all of equal dimension) with k-means++
// initialization and Lloyd iterations.
func KMeans(vectors [][]float64, cfg Config) (*Result, error) {
	n := len(vectors)
	if n == 0 {
		return nil, errors.New("cluster: no vectors")
	}
	if cfg.K < 1 {
		return nil, errors.New("cluster: K must be ≥ 1")
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return nil, errors.New("cluster: inconsistent vector dimensions")
		}
		_ = i
	}
	k := cfg.K
	if k > n {
		k = n
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centroids := initPlusPlus(vectors, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	iters := 0
	for ; iters < maxIters; iters++ {
		changed := false
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(v, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids; empty clusters keep their position.
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, v := range vectors {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				next[c][d] += v[d]
			}
		}
		for c := range next {
			if counts[c] == 0 {
				copy(next[c], centroids[c])
				continue
			}
			inv := 1.0 / float64(counts[c])
			for d := 0; d < dim; d++ {
				next[c][d] *= inv
			}
		}
		centroids = next
	}
	return &Result{Centroids: centroids, Assignment: assign, Iterations: iters}, nil
}

// initPlusPlus seeds centroids with the k-means++ strategy: each new
// centroid is drawn with probability proportional to squared distance
// from the nearest existing centroid.
func initPlusPlus(vectors [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(vectors)
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, clone(vectors[rng.Intn(n)]))
	d2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, v := range vectors {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(v, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with existing centroids; pick uniformly.
			centroids = append(centroids, clone(vectors[rng.Intn(n)]))
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, clone(vectors[pick]))
	}
	return centroids
}

func clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SampleBalanced picks approximately total indices, drawing from every
// cluster in proportion to its size but guaranteeing at least one draw
// from each non-empty cluster — the paper's "selecting a subset of
// ingredient phrases from each cluster". Selection is deterministic for
// a given seed; returned indices are unique.
func SampleBalanced(assign []int, k, total int, seed int64) []int {
	if total <= 0 || len(assign) == 0 {
		return nil
	}
	if total >= len(assign) {
		out := make([]int, len(assign))
		for i := range out {
			out[i] = i
		}
		return out
	}
	members := make([][]int, k)
	for i, c := range assign {
		if c >= 0 && c < k {
			members[c] = append(members[c], i)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var out []int
	n := len(assign)
	for c := range members {
		m := members[c]
		if len(m) == 0 {
			continue
		}
		quota := total * len(m) / n
		if quota < 1 {
			quota = 1
		}
		if quota > len(m) {
			quota = len(m)
		}
		rng.Shuffle(len(m), func(i, j int) { m[i], m[j] = m[j], m[i] })
		out = append(out, m[:quota]...)
	}
	// Trim overshoot deterministically.
	if len(out) > total {
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		out = out[:total]
	}
	return out
}
