package usda

import (
	"strings"
	"testing"
)

func TestExpandedSeedSize(t *testing.T) {
	if n := Seed().Len(); n < 600 {
		t.Errorf("expanded seed has %d foods, want ≥600", n)
	}
}

func TestNoDuplicateDescriptions(t *testing.T) {
	db := Seed()
	seen := map[string]int{}
	for i := 0; i < db.Len(); i++ {
		f := db.At(i)
		if prev, dup := seen[f.Desc]; dup {
			t.Errorf("description %q duplicated at NDB %d and %d", f.Desc, prev, f.NDB)
		}
		seen[f.Desc] = f.NDB
	}
}

func TestSRGroupConventions(t *testing.T) {
	// The leading NDB digits encode the SR food group; spot-check that
	// the group inventory matches the description vocabulary.
	probes := map[string]int{ // description prefix → NDB/1000 group
		"Butter,":  1,
		"Cheese,":  1,
		"Spices,":  2,
		"Babyfood": 3,
		"Oil,":     4,
		"Chicken,": 5,
		"Soup,":    6,
		"Apples,":  9,
		"Pork,":    10,
		"Nuts,":    12,
		"Beef,":    13,
		"Fish,":    15,
		"Lamb,":    17,
	}
	db := Seed()
	for i := 0; i < db.Len(); i++ {
		f := db.At(i)
		if f.NDB >= 40000 {
			continue // SR's "added foods" range has no group convention
		}
		for prefix, group := range probes {
			if strings.HasPrefix(f.Desc, prefix) && f.NDB/1000 != group {
				t.Errorf("NDB %d (%q): expected group %d", f.NDB, f.Desc, group)
			}
		}
	}
}

func TestCollisionFamiliesGrewSafely(t *testing.T) {
	// The extension added near-duplicates; each family head must still
	// have several members (that is the point) and every member must be
	// retrievable by NDB.
	db := Seed()
	families := map[string]int{ // head term → minimum member count
		"Cheese": 15,
		"Milk":   10,
		"Beef":   10,
		"Fish":   12,
		"Bread":  8,
		"Soup":   10,
		"Spices": 30,
	}
	counts := map[string]int{}
	for i := 0; i < db.Len(); i++ {
		head := strings.SplitN(db.At(i).Desc, ",", 2)[0]
		counts[head]++
	}
	for head, min := range families {
		if counts[head] < min {
			t.Errorf("family %q has %d members, want ≥%d", head, counts[head], min)
		}
	}
}

func TestEveryFoodHasUsableWeightOrIsPer100g(t *testing.T) {
	// Foods without a single resolvable weight row can never be mapped
	// by unit; a few are tolerable (the Fig. 2 residue) but they must
	// stay rare.
	db := Seed()
	unusable := 0
	for i := 0; i < db.Len(); i++ {
		f := db.At(i)
		ok := false
		for _, w := range f.Weights {
			if _, known := normalizeUnit(w.Unit); known {
				ok = true
				break
			}
		}
		if !ok {
			unusable++
		}
	}
	if frac := float64(unusable) / float64(db.Len()); frac > 0.05 {
		t.Errorf("%d foods (%.1f%%) have no resolvable weight row", unusable, 100*frac)
	}
}
