// Package sr parses the genuine USDA Standard Reference release 26
// (SR26) ASCII distribution format into the in-memory database model
// (internal/usda), so the pipeline can run against the real ~7,700-food
// table instead of the curated seed.
//
// The format (per the SR26 documentation and the supershake exemplar
// referenced in ROADMAP.md):
//
//   - one record per line, fields separated by `^`
//   - text fields surrounded by `~` tildes; a `^` inside a quoted field
//     is field content, not a separator (there is no escape — a quoted
//     field cannot contain `~`)
//   - numeric fields are bare and may be blank
//   - lines end in CRLF; the encoding is ISO-8859-1 (Latin-1)
//
// The three tables the pipeline needs are FOOD_DES.txt (food
// descriptions, 14 fields), NUT_DATA.txt (nutrient values, 18 fields)
// and WEIGHT.txt (household measures, 5–7 fields). Of SR's ~150 tracked
// nutrient numbers, the 11 the nutrition.Profile vector carries are
// mapped; the rest are counted and skipped.
//
// Parsing never panics on malformed input: every failure is a
// *ParseError locating the file and line, wrapping one of the sentinel
// errors below (the fuzz harness enforces this).
package sr

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"nutriprofile/internal/nutrition"
	"nutriprofile/internal/usda"
)

// Sentinel parse failures; every returned error wraps exactly one of
// these inside a *ParseError.
var (
	// ErrFieldCount: a record has the wrong number of fields for its
	// table (truncated or over-long line).
	ErrFieldCount = errors.New("sr: wrong field count")
	// ErrUnterminatedQuote: a `~`-quoted field never closes.
	ErrUnterminatedQuote = errors.New("sr: unterminated quoted field")
	// ErrQuoteJunk: a stray `~` inside an unquoted field, or text
	// between a closing `~` and the next separator.
	ErrQuoteJunk = errors.New("sr: malformed quoting")
	// ErrBadNumber: a numeric field is unparseable, non-finite, or
	// negative where the schema requires a non-negative value.
	ErrBadNumber = errors.New("sr: bad numeric field")
	// ErrUnknownNDB: a NUT_DATA/WEIGHT record references an NDB number
	// absent from FOOD_DES.
	ErrUnknownNDB = errors.New("sr: unknown NDB number")
	// ErrDuplicate: FOOD_DES repeats an NDB number.
	ErrDuplicate = errors.New("sr: duplicate NDB number")
)

// ParseError locates a parse failure: which table file, which 1-based
// line, and the underlying sentinel (with detail).
type ParseError struct {
	File string
	Line int
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %v", e.File, e.Line, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// Report summarizes one parse: what was ingested and what was skipped
// (skips are data-quality holes in SR itself, not format errors).
type Report struct {
	Foods            int // FOOD_DES records parsed
	NutrientRows     int // NUT_DATA records mapped into a profile field
	UnknownNutrients int // NUT_DATA records for nutrient numbers we don't track
	WeightRows       int // WEIGHT records adopted
	SkippedWeights   int // WEIGHT records with zero amount/grams or empty measure
}

// Files names the three SR26 table streams.
type Files struct {
	FoodDes io.Reader // FOOD_DES.txt
	NutData io.Reader // NUT_DATA.txt
	Weight  io.Reader // WEIGHT.txt
}

// Field counts of the SR26 tables.
const (
	foodDesFields = 14 // NDB_No, FdGrp_Cd, Long_Desc, Shrt_Desc, ComName, ManufacName, Survey, Ref_desc, Refuse, SciName, N_Factor, Pro_Factor, Fat_Factor, CHO_Factor
	nutDataFields = 18 // NDB_No, Nutr_No, Nutr_Val, Num_Data_Pts, Std_Error, Src_Cd, Deriv_Cd, Ref_NDB_No, Add_Nutr_Mark, Num_Studies, Min, Max, DF, Low_EB, Up_EB, Stat_cmt, AddMod_Date, CC
	weightMinFlds = 5  // NDB_No, Seq, Amount, Msre_Desc, Gm_Wgt
	weightMaxFlds = 7  // … plus optional Num_Data_Pts, Std_Dev
)

// nutrientField maps an SR nutrient number to its index in the
// nutrition.Profile field order (the same order the CSV codec and the
// baked image use). Unmapped numbers return -1.
func nutrientField(nutrNo int) int {
	switch nutrNo {
	case 208: // Energy (kcal)
		return 0
	case 203: // Protein (g)
		return 1
	case 204: // Total lipid (g)
		return 2
	case 205: // Carbohydrate, by difference (g)
		return 3
	case 291: // Fiber, total dietary (g)
		return 4
	case 269: // Sugars, total (g)
		return 5
	case 301: // Calcium (mg)
		return 6
	case 303: // Iron (mg)
		return 7
	case 307: // Sodium (mg)
		return 8
	case 401: // Vitamin C (mg)
		return 9
	case 601: // Cholesterol (mg)
		return 10
	default:
		return -1
	}
}

// profileFromVals assembles a Profile from the 11-element value vector
// in nutrientField order.
func profileFromVals(v [11]float64) nutrition.Profile {
	return nutrition.Profile{
		EnergyKcal: v[0], ProteinG: v[1], FatG: v[2], CarbsG: v[3],
		FiberG: v[4], SugarG: v[5], CalciumMg: v[6], IronMg: v[7],
		SodiumMg: v[8], VitCMg: v[9], CholMg: v[10],
	}
}

// splitFields splits one record line on `^` separators, honoring
// `~`-quoting: a quoted field's content runs to the next `~` and may
// contain `^`. Fields are appended to dst[:0] (reused across lines).
func splitFields(line string, dst []string) ([]string, error) {
	dst = dst[:0]
	i, n := 0, len(line)
	for {
		if i < n && line[i] == '~' {
			rel := strings.IndexByte(line[i+1:], '~')
			if rel < 0 {
				return dst, ErrUnterminatedQuote
			}
			end := i + 1 + rel
			dst = append(dst, line[i+1:end])
			i = end + 1
			if i >= n {
				return dst, nil
			}
			if line[i] != '^' {
				return dst, fmt.Errorf("%w: text after closing quote", ErrQuoteJunk)
			}
			i++
			continue
		}
		rest := line[i:]
		j := strings.IndexByte(rest, '^')
		f := rest
		if j >= 0 {
			f = rest[:j]
		}
		if strings.IndexByte(f, '~') >= 0 {
			return dst, fmt.Errorf("%w: stray quote inside unquoted field", ErrQuoteJunk)
		}
		dst = append(dst, f)
		if j < 0 {
			return dst, nil
		}
		i += j + 1
	}
}

// latin1 transcodes an ISO-8859-1 field to UTF-8. Pure-ASCII fields
// (the overwhelming majority) are returned unchanged.
func latin1(s string) string {
	ascii := true
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			ascii = false
			break
		}
	}
	if ascii {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		b.WriteRune(rune(s[i]))
	}
	return b.String()
}

// parseNDB parses the zero-padded 5-digit NDB number.
func parseNDB(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("%w: empty NDB number", ErrBadNumber)
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("%w: NDB number %q", ErrBadNumber, s)
		}
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("%w: NDB number %q", ErrBadNumber, s)
	}
	return n, nil
}

// parseNonNeg parses a required non-negative finite float field.
func parseNonNeg(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrBadNumber, s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("%w: %q is not a finite non-negative value", ErrBadNumber, s)
	}
	return v, nil
}

// lineScanner iterates records: one per line, trailing CR stripped
// (CRLF terminators), blank lines skipped.
type lineScanner struct {
	sc   *bufio.Scanner
	file string
	line int
}

func newLineScanner(r io.Reader, file string) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &lineScanner{sc: sc, file: file}
}

// next returns the next non-blank record, false at EOF.
func (ls *lineScanner) next() (string, bool, error) {
	for ls.sc.Scan() {
		ls.line++
		line := strings.TrimSuffix(ls.sc.Text(), "\r")
		if line == "" {
			continue
		}
		return line, true, nil
	}
	if err := ls.sc.Err(); err != nil {
		return "", false, &ParseError{File: ls.file, Line: ls.line + 1, Err: err}
	}
	return "", false, nil
}

func (ls *lineScanner) fail(err error) error {
	return &ParseError{File: ls.file, Line: ls.line, Err: err}
}

// food accumulates one FOOD_DES record and its joined rows.
type food struct {
	ndb     int
	desc    string
	vals    [11]float64
	weights []usda.Weight
}

// Parse reads the three SR26 tables and assembles the database. The
// returned Report counts ingested and skipped rows; on error both
// return values are nil and the error is a *ParseError (or a
// usda.NewDB validation error for semantic failures like an empty
// description).
func Parse(files Files) (*usda.DB, *Report, error) {
	rep := &Report{}
	var foods []food
	byNDB := map[int]int{}

	// FOOD_DES.txt — one food per record.
	ls := newLineScanner(files.FoodDes, "FOOD_DES.txt")
	var fields []string
	for {
		line, ok, err := ls.next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		fields, err = splitFields(line, fields)
		if err != nil {
			return nil, nil, ls.fail(err)
		}
		if len(fields) != foodDesFields {
			return nil, nil, ls.fail(fmt.Errorf("%w: %d fields, want %d", ErrFieldCount, len(fields), foodDesFields))
		}
		ndb, err := parseNDB(fields[0])
		if err != nil {
			return nil, nil, ls.fail(err)
		}
		if _, dup := byNDB[ndb]; dup {
			return nil, nil, ls.fail(fmt.Errorf("%w: %05d", ErrDuplicate, ndb))
		}
		byNDB[ndb] = len(foods)
		foods = append(foods, food{ndb: ndb, desc: latin1(fields[2])})
		rep.Foods++
	}

	// NUT_DATA.txt — nutrient values joined on NDB_No.
	ls = newLineScanner(files.NutData, "NUT_DATA.txt")
	for {
		line, ok, err := ls.next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		fields, err = splitFields(line, fields)
		if err != nil {
			return nil, nil, ls.fail(err)
		}
		if len(fields) != nutDataFields {
			return nil, nil, ls.fail(fmt.Errorf("%w: %d fields, want %d", ErrFieldCount, len(fields), nutDataFields))
		}
		ndb, err := parseNDB(fields[0])
		if err != nil {
			return nil, nil, ls.fail(err)
		}
		fi, ok := byNDB[ndb]
		if !ok {
			return nil, nil, ls.fail(fmt.Errorf("%w: %05d in NUT_DATA", ErrUnknownNDB, ndb))
		}
		nutrNo, err := parseNDB(fields[1]) // same digits-only shape as NDB numbers
		if err != nil {
			return nil, nil, ls.fail(fmt.Errorf("%w: nutrient number %q", ErrBadNumber, fields[1]))
		}
		slot := nutrientField(nutrNo)
		if slot < 0 {
			rep.UnknownNutrients++
			continue
		}
		val, err := parseNonNeg(fields[2])
		if err != nil {
			return nil, nil, ls.fail(err)
		}
		foods[fi].vals[slot] = val
		rep.NutrientRows++
	}

	// WEIGHT.txt — household measures joined on NDB_No.
	ls = newLineScanner(files.Weight, "WEIGHT.txt")
	for {
		line, ok, err := ls.next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		fields, err = splitFields(line, fields)
		if err != nil {
			return nil, nil, ls.fail(err)
		}
		if len(fields) < weightMinFlds || len(fields) > weightMaxFlds {
			return nil, nil, ls.fail(fmt.Errorf("%w: %d fields, want %d–%d", ErrFieldCount, len(fields), weightMinFlds, weightMaxFlds))
		}
		ndb, err := parseNDB(fields[0])
		if err != nil {
			return nil, nil, ls.fail(err)
		}
		fi, ok := byNDB[ndb]
		if !ok {
			return nil, nil, ls.fail(fmt.Errorf("%w: %05d in WEIGHT", ErrUnknownNDB, ndb))
		}
		seq, err := strconv.Atoi(fields[1])
		if err != nil || seq < 0 {
			return nil, nil, ls.fail(fmt.Errorf("%w: sequence %q", ErrBadNumber, fields[1]))
		}
		amount, err := parseNonNeg(fields[2])
		if err != nil {
			return nil, nil, ls.fail(err)
		}
		grams, err := parseNonNeg(fields[4])
		if err != nil {
			return nil, nil, ls.fail(err)
		}
		measure := latin1(fields[3])
		// SR carries a handful of rows NewDB's invariants reject (zero
		// amounts or weights, blank measures). They contribute nothing
		// to unit resolution, so they are skipped and counted rather
		// than failing the whole release.
		if amount <= 0 || grams <= 0 || measure == "" {
			rep.SkippedWeights++
			continue
		}
		foods[fi].weights = append(foods[fi].weights, usda.Weight{
			Seq: seq, Amount: amount, Unit: measure, Grams: grams,
		})
		rep.WeightRows++
	}

	out := make([]usda.Food, len(foods))
	for i, f := range foods {
		out[i] = usda.Food{
			NDB:     f.ndb,
			Desc:    f.desc,
			Per100g: profileFromVals(f.vals),
			Weights: f.weights,
		}
	}
	db, err := usda.NewDB(out)
	if err != nil {
		return nil, nil, err
	}
	return db, rep, nil
}

// ParseDir parses an SR26 distribution directory containing
// FOOD_DES.txt, NUT_DATA.txt and WEIGHT.txt.
func ParseDir(dir string) (*usda.DB, *Report, error) {
	open := func(name string) (*os.File, error) {
		return os.Open(filepath.Join(dir, name))
	}
	fd, err := open("FOOD_DES.txt")
	if err != nil {
		return nil, nil, err
	}
	defer fd.Close()
	nd, err := open("NUT_DATA.txt")
	if err != nil {
		return nil, nil, err
	}
	defer nd.Close()
	wt, err := open("WEIGHT.txt")
	if err != nil {
		return nil, nil, err
	}
	defer wt.Close()
	return Parse(Files{FoodDes: fd, NutData: nd, Weight: wt})
}
