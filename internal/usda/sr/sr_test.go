package sr

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"nutriprofile/internal/usda"
)

func TestSplitFields(t *testing.T) {
	cases := []struct {
		name string
		line string
		want []string
		err  error
	}{
		{name: "bare", line: "a^b^c", want: []string{"a", "b", "c"}},
		{name: "quoted", line: "~x~^y", want: []string{"x", "y"}},
		{name: "caret inside quotes", line: "~a^b~^c", want: []string{"a^b", "c"}},
		{name: "empty quoted", line: "~~", want: []string{""}},
		{name: "empty line is one empty field", line: "", want: []string{""}},
		{name: "empty bare field", line: "a^^b", want: []string{"a", "", "b"}},
		{name: "trailing separator", line: "a^", want: []string{"a", ""}},
		{name: "quoted at end", line: "a^~x~", want: []string{"a", "x"}},
		{name: "all quoted", line: "~a~^~b~^~c~", want: []string{"a", "b", "c"}},
		{name: "unterminated quote", line: "~oops", err: ErrUnterminatedQuote},
		{name: "unterminated in later field", line: "a^~oops", err: ErrUnterminatedQuote},
		{name: "junk after closing quote", line: "~x~junk^y", err: ErrQuoteJunk},
		{name: "stray quote in bare field", line: "ab~cd^e", err: ErrQuoteJunk},
	}
	var scratch []string
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := splitFields(tc.line, scratch)
			if tc.err != nil {
				if !errors.Is(err, tc.err) {
					t.Fatalf("err = %v, want %v", err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("fields = %q, want %q", got, tc.want)
			}
		})
	}
}

// fixture builds the three tables from line slices, CRLF-terminated —
// the framing real SR26 releases use.
func fixture(fd, nd, wt []string) Files {
	join := func(lines []string) *strings.Reader {
		return strings.NewReader(strings.Join(lines, "\r\n") + "\r\n")
	}
	return Files{FoodDes: join(fd), NutData: join(nd), Weight: join(wt)}
}

const (
	foodDesTail = "^~~^~~^~~^~~^0^~~^^^^"           // fields 5–14, all blank
	nutDataTail = "^0^^~4~^~~^~~^~~^^^^^^^~~^~~^~~" // fields 4–18, all blank
)

func TestParseMinimalRelease(t *testing.T) {
	files := fixture(
		[]string{
			"~01001~^~0100~^~Butter, salted~^~BUTTER~" + foodDesTail,
			// Latin-1 high byte: 0xE9 is é.
			"~01002~^~0100~^~Cr\xe8me fra\xeeche~^~CREME~" + foodDesTail,
			"", // blank lines are skipped
		},
		[]string{
			"~01001~^~208~^717" + nutDataTail,
			"~01001~^~203~^0.85" + nutDataTail,
			"~01001~^~999~^42" + nutDataTail, // untracked nutrient: counted, skipped
			"~01002~^~208~^380" + nutDataTail,
		},
		[]string{
			"~01001~^~1~^1^~cup~^227^^",
			"~01001~^~2~^1^~tbsp~^14.2^12^0.5", // 7 fields with data points
			"~01001~^~3~^0^~pat~^0^^",          // zero amount+grams: skipped
			"~01002~^~1~^1^~cup~^240",          // 5-field short form
		},
	)
	db, rep, err := Parse(files)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
	want := Report{Foods: 2, NutrientRows: 3, UnknownNutrients: 1, WeightRows: 3, SkippedWeights: 1}
	if *rep != want {
		t.Fatalf("report = %+v, want %+v", *rep, want)
	}

	butter, ok := db.ByNDB(1001)
	if !ok {
		t.Fatal("NDB 1001 missing")
	}
	if butter.Desc != "Butter, salted" {
		t.Fatalf("desc %q", butter.Desc)
	}
	if butter.Per100g.EnergyKcal != 717 || butter.Per100g.ProteinG != 0.85 {
		t.Fatalf("profile %+v", butter.Per100g)
	}
	if len(butter.Weights) != 2 || butter.Weights[1].Grams != 14.2 {
		t.Fatalf("weights %+v", butter.Weights)
	}

	creme, _ := db.ByNDB(1002)
	if creme.Desc != "Crème fraîche" {
		t.Fatalf("Latin-1 transcoding: desc %q", creme.Desc)
	}
}

func TestParseErrors(t *testing.T) {
	goodFD := "~01001~^~0100~^~Butter~^~BUTTER~" + foodDesTail
	cases := []struct {
		name     string
		fd       []string
		nd       []string
		wt       []string
		sentinel error
		file     string
	}{
		{
			name:     "food_des truncated line",
			fd:       []string{"~01001~^~0100~^~Butter~"},
			sentinel: ErrFieldCount, file: "FOOD_DES.txt",
		},
		{
			name:     "food_des bad ndb",
			fd:       []string{"~01x01~^~0100~^~Butter~^~BUTTER~" + foodDesTail},
			sentinel: ErrBadNumber, file: "FOOD_DES.txt",
		},
		{
			name:     "food_des duplicate ndb",
			fd:       []string{goodFD, goodFD},
			sentinel: ErrDuplicate, file: "FOOD_DES.txt",
		},
		{
			name:     "food_des unterminated quote",
			fd:       []string{"~01001"},
			sentinel: ErrUnterminatedQuote, file: "FOOD_DES.txt",
		},
		{
			name:     "food_des junk after quote",
			fd:       []string{"~01001~x^~0100~^~Butter~^~BUTTER~" + foodDesTail},
			sentinel: ErrQuoteJunk, file: "FOOD_DES.txt",
		},
		{
			name:     "nut_data wrong field count",
			fd:       []string{goodFD},
			nd:       []string{"~01001~^~208~^717"},
			sentinel: ErrFieldCount, file: "NUT_DATA.txt",
		},
		{
			name:     "nut_data unknown ndb",
			fd:       []string{goodFD},
			nd:       []string{"~09999~^~208~^717" + nutDataTail},
			sentinel: ErrUnknownNDB, file: "NUT_DATA.txt",
		},
		{
			name:     "nut_data negative value",
			fd:       []string{goodFD},
			nd:       []string{"~01001~^~208~^-5" + nutDataTail},
			sentinel: ErrBadNumber, file: "NUT_DATA.txt",
		},
		{
			name:     "nut_data unparsable value",
			fd:       []string{goodFD},
			nd:       []string{"~01001~^~208~^seven" + nutDataTail},
			sentinel: ErrBadNumber, file: "NUT_DATA.txt",
		},
		{
			name:     "weight unknown ndb",
			fd:       []string{goodFD},
			wt:       []string{"~09999~^~1~^1^~cup~^227^^"},
			sentinel: ErrUnknownNDB, file: "WEIGHT.txt",
		},
		{
			name:     "weight bad seq",
			fd:       []string{goodFD},
			wt:       []string{"~01001~^~x~^1^~cup~^227^^"},
			sentinel: ErrBadNumber, file: "WEIGHT.txt",
		},
		{
			name:     "weight too many fields",
			fd:       []string{goodFD},
			wt:       []string{"~01001~^~1~^1^~cup~^227^^^^"},
			sentinel: ErrFieldCount, file: "WEIGHT.txt",
		},
		{
			name:     "weight non-finite grams",
			fd:       []string{goodFD},
			wt:       []string{"~01001~^~1~^1^~cup~^NaN^^"},
			sentinel: ErrBadNumber, file: "WEIGHT.txt",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Parse(fixture(tc.fd, tc.nd, tc.wt))
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err = %v, want %v", err, tc.sentinel)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("err %T is not a *ParseError", err)
			}
			if pe.File != tc.file || pe.Line < 1 {
				t.Fatalf("ParseError locates %s:%d, want %s:>=1", pe.File, pe.Line, tc.file)
			}
		})
	}
}

// TestRoundTrip pins the property the fixture pipeline and the load
// benchmarks rely on: rendering a database to the SR26 tables and
// parsing them back reproduces it exactly.
func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		db   *usda.DB
	}{
		{"seed", usda.Seed()},
		{"merged synthetic", usda.Merged(500, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var fd, nd, wt bytes.Buffer
			if err := Write(&fd, &nd, &wt, tc.db); err != nil {
				t.Fatal(err)
			}
			got, rep, err := Parse(Files{FoodDes: &fd, NutData: &nd, Weight: &wt})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Foods != tc.db.Len() {
				t.Fatalf("report foods %d, want %d", rep.Foods, tc.db.Len())
			}
			if !reflect.DeepEqual(got, tc.db) {
				for i := 0; i < tc.db.Len() && i < got.Len(); i++ {
					if !reflect.DeepEqual(got.At(i), tc.db.At(i)) {
						t.Fatalf("food %d differs:\n got %+v\nwant %+v", i, got.At(i), tc.db.At(i))
					}
				}
				t.Fatal("databases differ")
			}
		})
	}
}
