package sr

// SR26 writer: renders a database back into the three-table ASCII
// distribution format. The container has no real SR26 release, so the
// fixture images CI bakes and the parse-path benchmarks both start from
// Write over the seed/synthetic databases; the round-trip property
// Parse(Write(db)) == db is pinned by the package tests.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"nutriprofile/internal/usda"
)

// srNutrients is the (nutrient number, profile index) emission order —
// the inverse of nutrientField.
var srNutrients = [11]int{208, 203, 204, 205, 291, 269, 301, 303, 307, 401, 601}

// latin1Encode renders a UTF-8 string as ISO-8859-1 bytes; codepoints
// above U+00FF degrade to '?' (the SR character set cannot carry them).
func latin1Encode(b []byte, s string) []byte {
	for _, r := range s {
		if r > 0xFF {
			r = '?'
		}
		b = append(b, byte(r))
	}
	return b
}

func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Write renders db as the three SR26 tables: `^`-separated,
// `~`-quoted, CRLF-terminated, Latin-1 encoded.
func Write(foodDes, nutData, weight io.Writer, db *usda.DB) error {
	fd := bufio.NewWriter(foodDes)
	nd := bufio.NewWriter(nutData)
	wt := bufio.NewWriter(weight)
	var line []byte

	appendQuoted := func(b []byte, s string) []byte {
		b = append(b, '~')
		b = latin1Encode(b, s)
		return append(b, '~')
	}

	for i := 0; i < db.Len(); i++ {
		f := db.At(i)
		ndb := fmt.Sprintf("%05d", f.NDB)

		// FOOD_DES: NDB_No^FdGrp_Cd^Long_Desc^Shrt_Desc^ComName^
		// ManufacName^Survey^Ref_desc^Refuse^SciName^N_Factor^
		// Pro_Factor^Fat_Factor^CHO_Factor
		line = line[:0]
		line = appendQuoted(line, ndb)
		line = append(line, '^')
		line = appendQuoted(line, "0100")
		line = append(line, '^')
		line = appendQuoted(line, f.Desc)
		line = append(line, '^')
		line = appendQuoted(line, f.Desc)
		line = append(line, "^~~^~~^~~^~~^0^~~^^^^"...) // blank optional fields
		line = append(line, "\r\n"...)
		if _, err := fd.Write(line); err != nil {
			return err
		}

		// NUT_DATA: NDB_No^Nutr_No^Nutr_Val^Num_Data_Pts^Std_Error^
		// Src_Cd^Deriv_Cd^Ref_NDB_No^Add_Nutr_Mark^Num_Studies^Min^Max^
		// DF^Low_EB^Up_EB^Stat_cmt^AddMod_Date^CC
		vals := [11]float64{
			f.Per100g.EnergyKcal, f.Per100g.ProteinG, f.Per100g.FatG,
			f.Per100g.CarbsG, f.Per100g.FiberG, f.Per100g.SugarG,
			f.Per100g.CalciumMg, f.Per100g.IronMg, f.Per100g.SodiumMg,
			f.Per100g.VitCMg, f.Per100g.CholMg,
		}
		for slot, no := range srNutrients {
			v := vals[slot]
			if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				continue // SR omits rows for unmeasured nutrients
			}
			line = line[:0]
			line = appendQuoted(line, ndb)
			line = append(line, '^')
			line = appendQuoted(line, fmt.Sprintf("%03d", no))
			line = append(line, '^')
			line = append(line, ff(v)...)
			line = append(line, "^0^^~4~^~~^~~^~~^^^^^^^~~^~~^~~"...)
			line = append(line, "\r\n"...)
			if _, err := nd.Write(line); err != nil {
				return err
			}
		}

		// WEIGHT: NDB_No^Seq^Amount^Msre_Desc^Gm_Wgt^Num_Data_Pts^Std_Dev
		for _, w := range f.Weights {
			line = line[:0]
			line = appendQuoted(line, ndb)
			line = append(line, '^')
			line = appendQuoted(line, strconv.Itoa(w.Seq))
			line = append(line, '^')
			line = append(line, ff(w.Amount)...)
			line = append(line, '^')
			line = appendQuoted(line, w.Unit)
			line = append(line, '^')
			line = append(line, ff(w.Grams)...)
			line = append(line, "^^"...)
			line = append(line, "\r\n"...)
			if _, err := wt.Write(line); err != nil {
				return err
			}
		}
	}
	if err := fd.Flush(); err != nil {
		return err
	}
	if err := nd.Flush(); err != nil {
		return err
	}
	return wt.Flush()
}

// WriteDir writes FOOD_DES.txt, NUT_DATA.txt and WEIGHT.txt into dir.
func WriteDir(dir string, db *usda.DB) error {
	create := func(name string) (*os.File, error) {
		return os.Create(filepath.Join(dir, name))
	}
	fd, err := create("FOOD_DES.txt")
	if err != nil {
		return err
	}
	defer fd.Close()
	nd, err := create("NUT_DATA.txt")
	if err != nil {
		return err
	}
	defer nd.Close()
	wt, err := create("WEIGHT.txt")
	if err != nil {
		return err
	}
	defer wt.Close()
	if err := Write(fd, nd, wt, db); err != nil {
		return err
	}
	if err := fd.Sync(); err != nil {
		return err
	}
	if err := nd.Sync(); err != nil {
		return err
	}
	return wt.Sync()
}
