package sr

import (
	"errors"
	"strings"
	"testing"

	"nutriprofile/internal/usda"
)

// FuzzParse enforces the package contract: arbitrary table bytes never
// panic the parser, and every failure surfaces as a *ParseError (or a
// NewDB validation error for semantically invalid but well-formed
// tables).
func FuzzParse(f *testing.F) {
	f.Add(
		"~01001~^~0100~^~Butter~^~BUTTER~"+foodDesTail+"\r\n",
		"~01001~^~208~^717"+nutDataTail+"\r\n",
		"~01001~^~1~^1^~cup~^227^^\r\n",
	)
	f.Add("~01001~^~0100~^~Cr\xe8me~^~C~"+foodDesTail+"\n", "", "")
	f.Add("~unterminated\r\n", "", "")
	f.Add("a~b^c\r\n", "~~x^\r\n", "^^^^^^^^^\r\n")
	f.Add("", "~01001~^~208~^717"+nutDataTail+"\r\n", "")
	f.Add("~01001~^~0100~^~B~^~B~"+foodDesTail+"\r\n", "~01001~^~208~^NaN"+nutDataTail+"\r\n", "")
	f.Fuzz(func(t *testing.T, fd, nd, wt string) {
		db, rep, err := Parse(Files{
			FoodDes: strings.NewReader(fd),
			NutData: strings.NewReader(nd),
			Weight:  strings.NewReader(wt),
		})
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) &&
				!errors.Is(err, usda.ErrBadFood) && !errors.Is(err, usda.ErrDuplicateNDB) {
				t.Fatalf("unstructured error %T: %v", err, err)
			}
			return
		}
		if db == nil || rep == nil {
			t.Fatal("nil db/report without error")
		}
	})
}
