package usda

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"nutriprofile/internal/nutrition"
)

func TestSeedLoads(t *testing.T) {
	db := Seed()
	if db.Len() < 250 {
		t.Fatalf("seed database has %d foods, want ≥250", db.Len())
	}
}

func TestSeedOrderedByNDB(t *testing.T) {
	db := Seed()
	for i := 1; i < db.Len(); i++ {
		if db.At(i-1).NDB >= db.At(i).NDB {
			t.Fatalf("seed not NDB-ordered at %d: %d ≥ %d (%q / %q)",
				i, db.At(i-1).NDB, db.At(i).NDB, db.At(i-1).Desc, db.At(i).Desc)
		}
	}
}

// TestSeedTableII verifies every Table II description from the paper
// exists verbatim (these drive the §II-B heuristics' collision families).
func TestSeedTableII(t *testing.T) {
	wanted := []string{
		"Butter, salted",
		"Butter, whipped, with salt",
		"Butter, without salt",
		"Cheese, blue",
		"Cheese, cottage, creamed, large or small curd",
		"Cheese, mozzarella, whole milk",
		"Milk, reduced fat, fluid, 2% milkfat, with added vitamin A and vitamin D",
		"Milk, reduced fat, fluid, 2% milkfat, with added nonfat milk solids and vitamin A and vitamin D",
		"Milk, reduced fat, fluid, 2% milkfat, protein fortified, with added vitamin A and vitamin D",
		"Milk, indian buffalo, fluid",
		"Milk shakes, thick chocolate",
		"Milk shakes, thick vanilla",
		"Yogurt, plain, whole milk, 8 grams protein per 8 ounce",
		"Yogurt, vanilla, low fat, 11 grams protein per 8 ounce",
		"Egg, whole, raw, fresh",
		"Egg, white, raw, fresh",
		"Egg, yolk, raw, fresh",
		"Apples, raw, with skin",
		"Apples, raw, without skin",
	}
	descs := map[string]bool{}
	db := Seed()
	for i := 0; i < db.Len(); i++ {
		descs[db.At(i).Desc] = true
	}
	for _, d := range wanted {
		if !descs[d] {
			t.Errorf("Table II description missing from seed: %q", d)
		}
	}
}

// TestSeedTableIII verifies the food descriptions named in the paper's
// Table III comparison all exist.
func TestSeedTableIII(t *testing.T) {
	wanted := []string{
		"Lentils, pink or red, raw",
		"Cherries, sour, red, raw",
		"Soup, tomato beef with noodle, canned, condensed",
		"Soup, tomato, canned, condensed",
		"Coriander (cilantro) leaves, raw",
		"Spices, coriander leaf, dried",
		"Tomato products, canned, paste, without salt added",
		"Soup, vegetable with beef broth, canned, condensed",
		"Soup, vegetable broth, ready to serve",
		"Broadbeans (fava beans), mature seeds, raw",
		"Beans, fava, in pod, raw",
		"Spices, pepper, red or cayenne",
		"Spices, pepper, black",
		"Chicken, broilers or fryers, meat and skin and giblets and neck, raw",
		"Fast foods, quesadilla, with chicken",
		"Salad dressing, sesame seed dressing, regular",
		"Seeds, sesame seeds, whole, dried",
	}
	descs := map[string]bool{}
	db := Seed()
	for i := 0; i < db.Len(); i++ {
		descs[db.At(i).Desc] = true
	}
	for _, d := range wanted {
		if !descs[d] {
			t.Errorf("Table III description missing from seed: %q", d)
		}
	}
}

// TestTableIVButter checks the exact Table IV weight rows for
// "Butter,salted": pat 5.0, tbsp 14.2, cup 227, stick 113.
func TestTableIVButter(t *testing.T) {
	db := Seed()
	butter, ok := db.ByNDB(1001)
	if !ok {
		t.Fatal("Butter, salted (NDB 1001) missing")
	}
	want := map[string]float64{"pat": 5.0, "tbsp": 14.2, "cup": 227.0, "stick": 113.0}
	for _, wt := range butter.Weights {
		first := strings.Fields(wt.Unit)[0]
		if g, ok := want[first]; ok {
			if wt.GramsPerOne() != g {
				t.Errorf("butter %s = %vg, want %v", first, wt.GramsPerOne(), g)
			}
			delete(want, first)
		}
	}
	if len(want) != 0 {
		t.Errorf("butter missing Table IV units: %v", want)
	}
}

func TestGramsForUnit(t *testing.T) {
	db := Seed()
	butter, _ := db.ByNDB(1001)
	// tablespoon resolves via the alias "tbsp".
	if g, ok := butter.GramsForUnit("tablespoon"); !ok || g != 14.2 {
		t.Errorf("GramsForUnit(tablespoon) = (%v,%v), want (14.2,true)", g, ok)
	}
	// pat is in the table despite the noisy raw spelling.
	if g, ok := butter.GramsForUnit("pat"); !ok || g != 5.0 {
		t.Errorf("GramsForUnit(pat) = (%v,%v), want (5,true)", g, ok)
	}
	// teaspoon is NOT in butter's table — the §II-C conversion fallback
	// (handled by the core package) must kick in.
	if _, ok := butter.GramsForUnit("teaspoon"); ok {
		t.Error("GramsForUnit(teaspoon) should be absent for butter")
	}
	// Size equivalence: egg has large/medium/small rows; asking for any
	// size must hit one.
	egg, _ := db.ByNDB(1123)
	if g, ok := egg.GramsForUnit("medium"); !ok || g < 38 || g > 63 {
		t.Errorf("egg GramsForUnit(medium) = (%v,%v)", g, ok)
	}
}

func TestNewDBValidation(t *testing.T) {
	good := Food{NDB: 1, Desc: "Test, raw", Per100g: nutrition.Profile{EnergyKcal: 10}}
	cases := []struct {
		name  string
		foods []Food
		want  error
	}{
		{"duplicate ndb", []Food{good, good}, ErrDuplicateNDB},
		{"zero ndb", []Food{{NDB: 0, Desc: "x"}}, ErrBadFood},
		{"empty desc", []Food{{NDB: 2}}, ErrBadFood},
		{"negative nutrient", []Food{{NDB: 3, Desc: "x", Per100g: nutrition.Profile{FatG: -1}}}, ErrBadFood},
		{"bad weight", []Food{{NDB: 4, Desc: "x", Weights: []Weight{{Seq: 1, Amount: 0, Unit: "cup", Grams: 5}}}}, ErrBadFood},
	}
	for _, c := range cases {
		if _, err := NewDB(c.foods); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	if _, err := NewDB([]Food{good}); err != nil {
		t.Errorf("valid food rejected: %v", err)
	}
}

func TestNewDBSorts(t *testing.T) {
	db, err := NewDB([]Food{
		{NDB: 30, Desc: "C"},
		{NDB: 10, Desc: "A"},
		{NDB: 20, Desc: "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.At(0).NDB != 10 || db.At(1).NDB != 20 || db.At(2).NDB != 30 {
		t.Error("NewDB did not sort by NDB")
	}
	if f, ok := db.ByNDB(20); !ok || f.Desc != "B" {
		t.Error("ByNDB broken after sort")
	}
	if _, ok := db.ByNDB(999); ok {
		t.Error("ByNDB found nonexistent food")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := Seed()
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip: %d foods, want %d", back.Len(), db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		a, b := db.At(i), back.At(i)
		if a.NDB != b.NDB || a.Desc != b.Desc || a.Per100g != b.Per100g {
			t.Fatalf("food %d mismatch after round trip:\n%+v\n%+v", i, a, b)
		}
		if len(a.Weights) != len(b.Weights) {
			t.Fatalf("food %d weight count mismatch", i)
		}
		for j := range a.Weights {
			if a.Weights[j] != b.Weights[j] {
				t.Fatalf("food %d weight %d mismatch: %+v vs %+v", i, j, a.Weights[j], b.Weights[j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"not,enough,fields\n",
		"abc,Desc,1,1,1,1,1,1,1,1,1,1,1\n",
		"1,Desc,x,1,1,1,1,1,1,1,1,1,1\n",
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", c)
		}
	}
	// Weight referencing unknown food.
	bad := "1,Desc,1,1,1,1,1,1,1,1,1,1,1\nWEIGHTS\n99,1,1,cup,100\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("ReadCSV with orphan weight succeeded, want error")
	}
}

func TestSeedProfilesPlausible(t *testing.T) {
	db := Seed()
	for i := 0; i < db.Len(); i++ {
		f := db.At(i)
		if !f.Per100g.Valid() {
			t.Errorf("NDB %d %q: invalid profile", f.NDB, f.Desc)
		}
		if f.Per100g.EnergyKcal > 910 {
			t.Errorf("NDB %d %q: energy %.0f kcal/100g exceeds pure fat",
				f.NDB, f.Desc, f.Per100g.EnergyKcal)
		}
		if f.Per100g.ProteinG+f.Per100g.FatG+f.Per100g.CarbsG > 101 {
			t.Errorf("NDB %d %q: macros exceed 100g per 100g", f.NDB, f.Desc)
		}
		for _, wt := range f.Weights {
			if wt.GramsPerOne() <= 0 || wt.GramsPerOne() > 5000 {
				t.Errorf("NDB %d %q: implausible weight %+v", f.NDB, f.Desc, wt)
			}
		}
	}
}

func TestSeedDescriptionsCommaStructured(t *testing.T) {
	db := Seed()
	for i := 0; i < db.Len(); i++ {
		d := db.At(i).Desc
		if strings.TrimSpace(d) != d || d == "" {
			t.Errorf("NDB %d: badly trimmed description %q", db.At(i).NDB, d)
		}
	}
}

func TestSynthetic(t *testing.T) {
	db := Synthetic(500, 42)
	if db.Len() != 500 {
		t.Fatalf("Synthetic(500) = %d foods", db.Len())
	}
	// Deterministic for the same seed.
	db2 := Synthetic(500, 42)
	for i := 0; i < db.Len(); i++ {
		if db.At(i).Desc != db2.At(i).Desc {
			t.Fatalf("Synthetic not deterministic at %d", i)
		}
	}
	// Different for a different seed.
	db3 := Synthetic(500, 43)
	same := 0
	for i := 0; i < db.Len(); i++ {
		if db.At(i).Desc == db3.At(i).Desc {
			same++
		}
	}
	if same == db.Len() {
		t.Error("Synthetic ignores seed")
	}
	// No duplicate descriptions.
	seen := map[string]bool{}
	for i := 0; i < db.Len(); i++ {
		if seen[db.At(i).Desc] {
			t.Fatalf("duplicate synthetic description %q", db.At(i).Desc)
		}
		seen[db.At(i).Desc] = true
	}
}

func TestMerged(t *testing.T) {
	db := Merged(100, 7)
	if db.Len() != Seed().Len()+100 {
		t.Fatalf("Merged len = %d", db.Len())
	}
	if _, ok := db.ByNDB(1001); !ok {
		t.Error("Merged lost the curated butter row")
	}
}

// Property: synthetic foods always validate and have macro-consistent
// energy.
func TestSyntheticProperty(t *testing.T) {
	f := func(seed int64) bool {
		db := Synthetic(50, seed)
		for i := 0; i < db.Len(); i++ {
			fo := db.At(i)
			if !fo.Per100g.Valid() {
				return false
			}
			if fo.Per100g.EnergyKcal != fo.Per100g.MacroEnergyKcal() {
				return false
			}
			if len(fo.Weights) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSeedLookup(b *testing.B) {
	db := Seed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ByNDB(1001)
	}
}
