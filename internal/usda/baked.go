package usda

// Trusted fast-path construction for the baked-image loader
// (internal/usda/bake). NewDB re-normalizes every weight row's unit
// spelling and re-sorts the food list — exactly the per-food work a
// baked image exists to skip, since the bake step already ran it
// offline and serialized the results. AssembleBaked adopts prebuilt
// foods plus a flat canonical-unit array, validating only the cheap
// structural invariants (NDB order, row counts); semantic validation
// happened when the image was baked from a NewDB-vetted database.

import (
	"fmt"
)

// BakedUnit is one precomputed canonical unit resolution, the exported
// counterpart of the weightUnit cache NewDB fills via units.Normalize.
type BakedUnit struct {
	Name  string
	Known bool
}

// AssembleBaked builds a DB from prebuilt foods and their canonical
// unit resolutions without re-normalizing or re-sorting. foods must be
// sorted by strictly ascending NDB (the image stores NDB order), with
// unit cache entries for every weight row of every food concatenated in
// canon, food-major. The foods' unitCache fields are overwritten with
// subslices of canon — one backing array for the whole database.
func AssembleBaked(foods []Food, canon []BakedUnit) (*DB, error) {
	cache := make([]weightUnit, len(canon))
	for i, u := range canon {
		cache[i] = weightUnit{name: u.Name, known: u.Known}
	}
	byNDB := make(map[int]int, len(foods))
	off := 0
	for i := range foods {
		f := &foods[i]
		if f.NDB <= 0 {
			return nil, fmt.Errorf("%w: NDB %d", ErrBadFood, f.NDB)
		}
		if i > 0 && f.NDB <= foods[i-1].NDB {
			return nil, fmt.Errorf("%w: NDB %d out of order after %d", ErrBadFood, f.NDB, foods[i-1].NDB)
		}
		if off+len(f.Weights) > len(cache) {
			return nil, fmt.Errorf("%w: unit cache exhausted at NDB %d", ErrBadFood, f.NDB)
		}
		if len(f.Weights) > 0 {
			f.unitCache = cache[off : off+len(f.Weights) : off+len(f.Weights)]
		} else {
			f.unitCache = nil
		}
		off += len(f.Weights)
		byNDB[f.NDB] = i
	}
	if off != len(cache) {
		return nil, fmt.Errorf("%w: %d unit cache entries for %d weight rows", ErrBadFood, len(cache), off)
	}
	return &DB{foods: foods, byNDB: byNDB}, nil
}

// CanonicalUnits returns the database's precomputed unit resolutions,
// food-major, one entry per weight row — the canon array AssembleBaked
// accepts. cmd/dbbake serializes this alongside the foods so the loader
// never calls units.Normalize.
func (db *DB) CanonicalUnits() []BakedUnit {
	var out []BakedUnit
	for i := range db.foods {
		f := &db.foods[i]
		for j := range f.Weights {
			name, known := f.WeightUnit(j)
			out = append(out, BakedUnit{Name: name, Known: known})
		}
	}
	return out
}
