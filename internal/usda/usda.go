// Package usda models a USDA Standard Reference (USDA-SR) style food
// composition database — the reference the paper matches ingredient names
// against (§II-B) and draws gram weights and nutrient values from (§II-C).
//
// The model mirrors the two SR tables the pipeline needs:
//
//   - food descriptions ("Butter, salted" — comma-separated terms with
//     decreasing importance, Table II of the paper) with per-100 g
//     nutrient profiles, and
//   - per-unit gram weights (Table IV of the paper: "Butter,salted | 1.0 |
//     pat | 5.0", including noisy unit strings like `pat (1" sq, 1/3"
//     high)`).
//
// Row order is significant: §II-B(i) breaks residual matching ties by
// taking the first match "because of the way the descriptions have been
// indexed within USDA-SR Database". The embedded seed database (seed.go)
// preserves SR's NDB-number ordering so those tie-breaks reproduce.
package usda

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"nutriprofile/internal/nutrition"
	"nutriprofile/internal/units"
)

// Weight is one row of the SR weight table: Amount of Unit weighs Grams.
// Unit holds the raw SR spelling, which can be noisy (`pat (1" sq, 1/3"
// high)`); unit cleaning happens downstream, exactly as in the paper.
type Weight struct {
	Seq    int     // ordinal within the food's weight list
	Amount float64 // e.g. 1.0
	Unit   string  // raw unit text, e.g. "tbsp", `pat (1" sq, 1/3" high)`
	Grams  float64 // weight of Amount×Unit in grams
}

// GramsPerOne returns the gram weight of exactly one Unit.
func (w Weight) GramsPerOne() float64 {
	if w.Amount == 0 {
		return 0
	}
	return w.Grams / w.Amount
}

// Food is one SR food item.
type Food struct {
	// NDB is the SR identifier. Foods are kept sorted by NDB; the first
	// food group digit pair encodes the SR category (01 dairy/egg,
	// 02 spices, 09 fruits, 11 vegetables, …).
	NDB int
	// Desc is the comma-separated SR description, e.g.
	// "Milk, reduced fat, fluid, 2% milkfat, with added vitamin A".
	Desc string
	// Per100g holds the nutrient profile of 100 g of this food.
	Per100g nutrition.Profile
	// Weights lists the available unit→gram conversions for this food.
	Weights []Weight
	// unitCache mirrors Weights index-for-index with each row's canonical
	// unit resolution. NewDB fills it once, so per-lookup callers never
	// re-clean the raw SR spellings (`pat (1" sq, 1/3" high)` tokenizes on
	// every units.Normalize call otherwise). Hand-built Food values
	// without a cache fall back to normalizing on demand.
	unitCache []weightUnit
}

// weightUnit is one cached canonical resolution of a weight row's unit.
type weightUnit struct {
	name  string
	known bool
}

// WeightUnit returns the canonical unit name of weight row i and whether
// the row's raw spelling resolves to a known unit. Equal by construction
// to units.Normalize(f.Weights[i].Unit), served from the cache NewDB
// builds.
func (f *Food) WeightUnit(i int) (string, bool) {
	if f.unitCache != nil {
		wu := f.unitCache[i]
		return wu.name, wu.known
	}
	return units.Normalize(f.Weights[i].Unit)
}

// GramsForUnit returns the gram weight of one canonicalUnit of the food,
// consulting only the food's own weight table (the "exact" tier of the
// §II-C fallback chain). An exact unit-name row wins; failing that, any
// Size row satisfies a Size request, per the paper's small=medium=large
// equivalence ("All 3 were considered equivalent because of ambiguity
// between sizes").
func (f *Food) GramsForUnit(canonicalUnit string) (float64, bool) {
	equivalent := -1
	for i, w := range f.Weights {
		name, known := f.WeightUnit(i)
		if !known {
			continue
		}
		if name == canonicalUnit {
			return w.GramsPerOne(), true
		}
		if equivalent < 0 && units.Equivalent(name, canonicalUnit) {
			equivalent = i
		}
	}
	if equivalent >= 0 {
		return f.Weights[equivalent].GramsPerOne(), true
	}
	return 0, false
}

// DB is an immutable, NDB-ordered food composition database.
type DB struct {
	foods []Food
	byNDB map[int]int // NDB → index in foods
}

// Errors returned by NewDB validation.
var (
	ErrDuplicateNDB = errors.New("usda: duplicate NDB number")
	ErrBadFood      = errors.New("usda: invalid food row")
)

// NewDB validates and indexes a list of foods. The input is sorted by NDB
// so iteration order — and therefore §II-B(i) first-match tie-breaking —
// is deterministic regardless of construction order.
func NewDB(foods []Food) (*DB, error) {
	sorted := make([]Food, len(foods))
	copy(sorted, foods)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].NDB < sorted[j].NDB })

	byNDB := make(map[int]int, len(sorted))
	for i := range sorted {
		f := &sorted[i]
		if f.NDB <= 0 {
			return nil, fmt.Errorf("%w: NDB %d", ErrBadFood, f.NDB)
		}
		if f.Desc == "" {
			return nil, fmt.Errorf("%w: NDB %d has empty description", ErrBadFood, f.NDB)
		}
		if !f.Per100g.Valid() {
			return nil, fmt.Errorf("%w: NDB %d has invalid nutrient profile", ErrBadFood, f.NDB)
		}
		if len(f.Weights) > 0 {
			f.unitCache = make([]weightUnit, len(f.Weights))
		} else {
			f.unitCache = nil
		}
		for j, w := range f.Weights {
			if w.Amount <= 0 || w.Grams <= 0 || w.Unit == "" {
				return nil, fmt.Errorf("%w: NDB %d has invalid weight row %+v", ErrBadFood, f.NDB, w)
			}
			name, known := units.Normalize(w.Unit)
			f.unitCache[j] = weightUnit{name: name, known: known}
		}
		if _, dup := byNDB[f.NDB]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateNDB, f.NDB)
		}
		byNDB[f.NDB] = i
	}
	return &DB{foods: sorted, byNDB: byNDB}, nil
}

// MustNewDB panics on validation failure; for static seed tables.
func MustNewDB(foods []Food) *DB {
	db, err := NewDB(foods)
	if err != nil {
		panic(err)
	}
	return db
}

// Len returns the number of foods.
func (db *DB) Len() int { return len(db.foods) }

// At returns the i-th food in NDB order.
func (db *DB) At(i int) *Food { return &db.foods[i] }

// ByNDB looks a food up by its NDB number.
func (db *DB) ByNDB(ndb int) (*Food, bool) {
	i, ok := db.byNDB[ndb]
	if !ok {
		return nil, false
	}
	return &db.foods[i], true
}

// Foods returns the NDB-ordered food slice. Callers must not modify it.
func (db *DB) Foods() []Food { return db.foods }

// csv column layout for the food table.
const foodCols = 13 // ndb, desc, 11 nutrients

// WriteCSV serializes the database as two concatenated CSV sections in one
// stream: a food section and a weight section, separated by a blank
// record. The format round-trips through ReadCSV.
func (db *DB) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range db.foods {
		f := &db.foods[i]
		p := f.Per100g
		rec := []string{
			strconv.Itoa(f.NDB), f.Desc,
			ff(p.EnergyKcal), ff(p.ProteinG), ff(p.FatG), ff(p.CarbsG),
			ff(p.FiberG), ff(p.SugarG), ff(p.CalciumMg), ff(p.IronMg),
			ff(p.SodiumMg), ff(p.VitCMg), ff(p.CholMg),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("usda: writing food %d: %w", f.NDB, err)
		}
	}
	if err := cw.Write([]string{"WEIGHTS"}); err != nil {
		return err
	}
	for i := range db.foods {
		f := &db.foods[i]
		for _, wt := range f.Weights {
			rec := []string{
				strconv.Itoa(f.NDB), strconv.Itoa(wt.Seq),
				ff(wt.Amount), wt.Unit, ff(wt.Grams),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("usda: writing weight for %d: %w", f.NDB, err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the WriteCSV format back into a DB.
func ReadCSV(r io.Reader) (*DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var foods []Food
	index := map[int]int{}
	inWeights := false
	pf := func(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("usda: reading csv: %w", err)
		}
		if len(rec) == 1 && rec[0] == "WEIGHTS" {
			inWeights = true
			continue
		}
		if !inWeights {
			if len(rec) != foodCols {
				return nil, fmt.Errorf("usda: food row has %d fields, want %d", len(rec), foodCols)
			}
			ndb, err := strconv.Atoi(rec[0])
			if err != nil {
				return nil, fmt.Errorf("usda: bad NDB %q: %w", rec[0], err)
			}
			var vals [11]float64
			for i := 0; i < 11; i++ {
				if vals[i], err = pf(rec[2+i]); err != nil {
					return nil, fmt.Errorf("usda: bad nutrient %q in NDB %d: %w", rec[2+i], ndb, err)
				}
			}
			index[ndb] = len(foods)
			foods = append(foods, Food{
				NDB:  ndb,
				Desc: rec[1],
				Per100g: nutrition.Profile{
					EnergyKcal: vals[0], ProteinG: vals[1], FatG: vals[2],
					CarbsG: vals[3], FiberG: vals[4], SugarG: vals[5],
					CalciumMg: vals[6], IronMg: vals[7], SodiumMg: vals[8],
					VitCMg: vals[9], CholMg: vals[10],
				},
			})
			continue
		}
		if len(rec) != 5 {
			return nil, fmt.Errorf("usda: weight row has %d fields, want 5", len(rec))
		}
		ndb, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("usda: bad weight NDB %q: %w", rec[0], err)
		}
		i, ok := index[ndb]
		if !ok {
			return nil, fmt.Errorf("usda: weight row references unknown NDB %d", ndb)
		}
		seq, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("usda: bad weight seq %q: %w", rec[1], err)
		}
		amt, err1 := pf(rec[2])
		grams, err2 := pf(rec[4])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("usda: bad weight numbers in NDB %d", ndb)
		}
		foods[i].Weights = append(foods[i].Weights, Weight{
			Seq: seq, Amount: amt, Unit: rec[3], Grams: grams,
		})
	}
	return NewDB(foods)
}

// normalizeUnit resolves a raw weight-row unit string to its canonical
// unit, re-exported for tests and tools that audit weight-table
// resolvability.
func normalizeUnit(raw string) (string, bool) { return units.Normalize(raw) }
