package bake

import (
	"bytes"
	"testing"

	"nutriprofile/internal/match"
	"nutriprofile/internal/usda"
	"nutriprofile/internal/usda/sr"
)

// benchDB is the real-scale corpus: the seed plus enough synthetic
// foods to reach SR26's ~7,700-food footprint.
func benchDB(tb testing.TB) *usda.DB {
	db := usda.Merged(7500, 1)
	if db.Len() < 7500 {
		tb.Fatalf("bench DB has %d foods", db.Len())
	}
	return db
}

// BenchmarkLoadBaked measures the startup path nutriserve -db takes:
// decode a baked image and stand up a matcher on its prebuilt index.
// The image bytes are in memory, so the comparison against
// BenchmarkLoadParse isolates decode-and-index cost from disk I/O.
func BenchmarkLoadBaked(b *testing.B) {
	db := benchDB(b)
	img, err := BakeBytes(db, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ld, err := Load(img)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := match.NewFromIndex(ld.DB, match.DefaultOptions(), ld.Index); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadParse measures the same food count through the SR26
// text path: parse the three tables and build the matcher index from
// scratch — what startup costs without a baked image.
func BenchmarkLoadParse(b *testing.B) {
	db := benchDB(b)
	var fd, nd, wt bytes.Buffer
	if err := sr.Write(&fd, &nd, &wt, db); err != nil {
		b.Fatal(err)
	}
	fdb, ndb, wtb := fd.Bytes(), nd.Bytes(), wt.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parsed, _, err := sr.Parse(sr.Files{
			FoodDes: bytes.NewReader(fdb),
			NutData: bytes.NewReader(ndb),
			Weight:  bytes.NewReader(wtb),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = match.NewDefault(parsed)
	}
}
