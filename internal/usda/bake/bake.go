// Package bake compiles a parsed USDA database plus its prebuilt
// matcher index into a versioned, checksummed flat binary image, and
// loads such images back with near-zero per-food work. The offline
// cmd/dbbake tool writes images; nutriserve loads one at startup
// (-db) or on POST /admin/reload.
//
// # Image format (version 1, little-endian)
//
//	offset 0   magic "NPBK" (4 bytes)
//	offset 4   format version (uint32)
//	offset 8   payload length (uint64)
//	offset 16  CRC-32C (Castagnoli) of the payload (uint32)
//	offset 20  reserved (uint32, zero)
//	offset 24  payload
//
// The payload is a counts block (eight uint64s: foods, weight rows,
// vocabulary terms, document terms, postings, blob bytes, two
// reserved) followed by fixed-order sections, each padded to 8-byte
// alignment. Sections hold exactly the arrays internal/usda and
// internal/match use at run time — dense nutrient vectors (11 float64
// per food in nutrition.Profile field order), flat weight tables with
// precomputed canonical-unit resolutions, the interned vocabulary, and
// the CSR document/posting arrays of match.Index. Every string lives
// in one deduplicated blob and is referenced as (offset, length), so
// the loader reconstructs the whole database from a single file read:
// on a little-endian host each numeric section is a direct slice cast
// into the image buffer and each string a view into the blob — about a
// dozen allocations total, independent of food count (a copying
// fallback keeps big-endian or misaligned hosts correct).
//
// Integrity is checked before any section is interpreted: bad magic,
// unsupported version, truncation and checksum mismatch are rejected
// with the structured sentinels below, and structural validation
// (match.NewFromIndex, usda.AssembleBaked) rejects semantically
// corrupt arrays — a baked image can fail to load, never panic.
package bake

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"nutriprofile/internal/match"
	"nutriprofile/internal/usda"
)

// Format constants.
const (
	magic      = "NPBK"
	Version    = 1
	headerSize = 24
	countsLen  = 8 // uint64s in the counts block
)

// Load failures. LoadFile/Load errors wrap exactly one of these.
var (
	ErrBadMagic  = errors.New("bake: not a baked DB image")
	ErrVersion   = errors.New("bake: unsupported image version")
	ErrTruncated = errors.New("bake: truncated image")
	ErrChecksum  = errors.New("bake: payload checksum mismatch")
	ErrCorrupt   = errors.New("bake: corrupt image")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// blobBuilder accumulates the deduplicated string blob.
type blobBuilder struct {
	data []byte
	offs map[string]uint32
}

// add returns the (offset, length) of s in the blob, appending it on
// first sight. Unit spellings and canonical names repeat heavily
// across foods, so dedup shrinks the blob severalfold.
func (b *blobBuilder) add(s string) (uint32, uint32) {
	if off, ok := b.offs[s]; ok {
		return off, uint32(len(s))
	}
	off := uint32(len(b.data))
	b.offs[s] = off
	b.data = append(b.data, s...)
	return off, uint32(len(s))
}

func pad8(b []byte) []byte {
	for len(b)%8 != 0 {
		b = append(b, 0)
	}
	return b
}

func putU32s(b []byte, vs []uint32) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return pad8(b)
}

func putI32s(b []byte, vs []int32) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	return pad8(b)
}

func putF64s(b []byte, vs []float64) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// BakeBytes serializes db (and its scoring index; computed with
// match.BuildIndex when idx is nil) into an image.
func BakeBytes(db *usda.DB, idx *match.Index) ([]byte, error) {
	if db == nil {
		return nil, fmt.Errorf("%w: nil database", ErrCorrupt)
	}
	if idx == nil {
		idx = match.BuildIndex(db)
	}
	n := db.Len()
	if len(idx.DocOff) != n+1 || len(idx.HasRaw) != n {
		return nil, fmt.Errorf("%w: index shape does not match database", ErrCorrupt)
	}

	// Gather the per-food and per-weight-row columns, interning every
	// string into the blob.
	blob := &blobBuilder{offs: make(map[string]uint32, 4096)}
	foodNDB := make([]int32, n)
	descOff := make([]uint32, n)
	descLen := make([]uint32, n)
	nutrients := make([]float64, 0, n*11)
	weightCount := make([]uint32, n)
	var wSeq []int32
	var wAmount, wGrams []float64
	var wUnitOff, wUnitLen, wCanonOff, wCanonLen []uint32
	var wKnown []byte
	for i := 0; i < n; i++ {
		f := db.At(i)
		foodNDB[i] = int32(f.NDB)
		descOff[i], descLen[i] = blob.add(f.Desc)
		p := f.Per100g
		nutrients = append(nutrients,
			p.EnergyKcal, p.ProteinG, p.FatG, p.CarbsG, p.FiberG, p.SugarG,
			p.CalciumMg, p.IronMg, p.SodiumMg, p.VitCMg, p.CholMg)
		weightCount[i] = uint32(len(f.Weights))
		for j, w := range f.Weights {
			name, known := f.WeightUnit(j)
			wSeq = append(wSeq, int32(w.Seq))
			wAmount = append(wAmount, w.Amount)
			wGrams = append(wGrams, w.Grams)
			uo, ul := blob.add(w.Unit)
			wUnitOff, wUnitLen = append(wUnitOff, uo), append(wUnitLen, ul)
			co, cl := blob.add(name)
			wCanonOff, wCanonLen = append(wCanonOff, co), append(wCanonLen, cl)
			k := byte(0)
			if known {
				k = 1
			}
			wKnown = append(wKnown, k)
		}
	}
	termOff := make([]uint32, len(idx.Terms))
	termLen := make([]uint32, len(idx.Terms))
	for t, term := range idx.Terms {
		termOff[t], termLen[t] = blob.add(term)
	}
	hasRaw := make([]byte, n)
	for i, r := range idx.HasRaw {
		if r {
			hasRaw[i] = 1
		}
	}

	// Counts block + sections, in the fixed order load.go mirrors.
	payload := make([]byte, 0, 64+len(blob.data)+16*n)
	for _, c := range [countsLen]uint64{
		uint64(n), uint64(len(wSeq)), uint64(len(idx.Terms)),
		uint64(len(idx.DocTerms)), uint64(len(idx.PostDocs)),
		uint64(len(blob.data)), 0, 0,
	} {
		payload = binary.LittleEndian.AppendUint64(payload, c)
	}
	payload = putI32s(payload, foodNDB)
	payload = putU32s(payload, descOff)
	payload = putU32s(payload, descLen)
	payload = putF64s(payload, nutrients)
	payload = putU32s(payload, weightCount)
	payload = putI32s(payload, wSeq)
	payload = putF64s(payload, wAmount)
	payload = putF64s(payload, wGrams)
	payload = putU32s(payload, wUnitOff)
	payload = putU32s(payload, wUnitLen)
	payload = putU32s(payload, wCanonOff)
	payload = putU32s(payload, wCanonLen)
	payload = pad8(append(payload, wKnown...))
	payload = putU32s(payload, termOff)
	payload = putU32s(payload, termLen)
	payload = putU32s(payload, idx.DocTerms)
	payload = putI32s(payload, idx.DocOff)
	payload = pad8(append(payload, hasRaw...))
	payload = putI32s(payload, idx.PostDocs)
	payload = putI32s(payload, idx.PostPri)
	payload = putI32s(payload, idx.PostOff)
	payload = pad8(append(payload, blob.data...))

	img := make([]byte, 0, headerSize+len(payload))
	img = append(img, magic...)
	img = binary.LittleEndian.AppendUint32(img, Version)
	img = binary.LittleEndian.AppendUint64(img, uint64(len(payload)))
	img = binary.LittleEndian.AppendUint32(img, crc32.Checksum(payload, castagnoli))
	img = binary.LittleEndian.AppendUint32(img, 0)
	return append(img, payload...), nil
}

// WriteFile bakes db into an image at path (written atomically via a
// temp file + rename, so a crashed bake never leaves a torn image).
func WriteFile(path string, db *usda.DB, idx *match.Index) error {
	img, err := BakeBytes(db, idx)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, img, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
