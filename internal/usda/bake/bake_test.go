package bake

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nutriprofile/internal/match"
	"nutriprofile/internal/usda"
)

// reseal recomputes the header's payload length and CRC after a payload
// mutation, so tests can reach the structural validators behind the
// checksum gate.
func reseal(img []byte) {
	binary.LittleEndian.PutUint64(img[8:], uint64(len(img)-headerSize))
	binary.LittleEndian.PutUint32(img[16:], crc32.Checksum(img[headerSize:], castagnoli))
}

func bakeSeed(t testing.TB) ([]byte, *usda.DB) {
	t.Helper()
	db := usda.Seed()
	img, err := BakeBytes(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	return img, db
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		db   *usda.DB
	}{
		{"seed", usda.Seed()},
		{"merged synthetic", usda.Merged(300, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			img, err := BakeBytes(tc.db, nil)
			if err != nil {
				t.Fatal(err)
			}
			ld, err := Load(img)
			if err != nil {
				t.Fatal(err)
			}
			if ld.Bytes != len(img) {
				t.Fatalf("Bytes = %d, want %d", ld.Bytes, len(img))
			}

			// The database round-trips exactly: descriptions, nutrient
			// vectors, weight tables and the precomputed canonical units.
			if ld.DB.Len() != tc.db.Len() {
				t.Fatalf("Len = %d, want %d", ld.DB.Len(), tc.db.Len())
			}
			for i := 0; i < tc.db.Len(); i++ {
				if !reflect.DeepEqual(ld.DB.At(i), tc.db.At(i)) {
					t.Fatalf("food %d differs:\n got %+v\nwant %+v", i, ld.DB.At(i), tc.db.At(i))
				}
			}

			// The index round-trips exactly against a fresh build.
			want := match.BuildIndex(tc.db)
			if !reflect.DeepEqual(ld.Index, want) {
				t.Fatal("loaded index differs from freshly built index")
			}

			// And a matcher adopting it scores identically to a fresh one.
			fresh := match.NewDefault(tc.db)
			adopted, err := match.NewFromIndex(ld.DB, match.DefaultOptions(), ld.Index)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range []match.Query{
				{Name: "butter"}, {Name: "all-purpose flour"},
				{Name: "chicken breast", State: "raw"}, {Name: "no such thing"},
			} {
				a, aok := fresh.Match(q)
				b, bok := adopted.Match(q)
				if aok != bok || !reflect.DeepEqual(a, b) {
					t.Fatalf("query %+v: fresh (%+v,%v) vs adopted (%+v,%v)", q, a, aok, b, bok)
				}
			}
		})
	}
}

func TestWriteFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seed.img")
	db := usda.Seed()
	if err := WriteFile(path, db, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file left behind")
	}
	ld, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ld.DB.Len() != db.Len() {
		t.Fatalf("Len = %d, want %d", ld.DB.Len(), db.Len())
	}
}

func TestLoadRejectsCorruptImages(t *testing.T) {
	img, _ := bakeSeed(t)
	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		sentinel error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"short header", func(b []byte) []byte { return b[:headerSize-1] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], Version+1)
			return b
		}, ErrVersion},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, ErrTruncated},
		{"extended payload", func(b []byte) []byte { return append(b, 0, 0, 0) }, ErrTruncated},
		{"flipped payload bit", func(b []byte) []byte {
			b[headerSize+100] ^= 0x40
			return b
		}, ErrChecksum},
		{"flipped crc", func(b []byte) []byte {
			b[16] ^= 0xFF
			return b
		}, ErrChecksum},
		{"implausible count", func(b []byte) []byte {
			// counts[0] (food count) → absurd value, resealed so the CRC
			// passes and the structural check has to catch it.
			binary.LittleEndian.PutUint64(b[headerSize:], 1<<40)
			reseal(b)
			return b
		}, ErrCorrupt},
		{"count beyond payload", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[headerSize:], 1<<20)
			reseal(b)
			return b
		}, ErrTruncated},
		{"trailing garbage inside payload", func(b []byte) []byte {
			b = append(b, make([]byte, 16)...)
			reseal(b)
			return b
		}, ErrCorrupt},
		{"weight counts disagree", func(b []byte) []byte {
			// counts[1] (weight rows) bumped without adding rows.
			n := binary.LittleEndian.Uint64(b[headerSize+8:])
			binary.LittleEndian.PutUint64(b[headerSize+8:], n+1)
			reseal(b)
			return b
		}, ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(tc.mutate(bytes.Clone(img)))
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err = %v, want %v", err, tc.sentinel)
			}
		})
	}
}

// TestLoadRejectsSemanticCorruption flips index/DB content (not
// framing) and re-seals the checksum: the structural validators must
// reject what the CRC can no longer catch.
func TestLoadRejectsSemanticCorruption(t *testing.T) {
	img, _ := bakeSeed(t)

	// The foodNDB section starts right after the counts block. Zeroing
	// the first NDB violates AssembleBaked's ascending-positive invariant.
	off := headerSize + countsLen*8
	bad := bytes.Clone(img)
	binary.LittleEndian.PutUint32(bad[off:], 0)
	reseal(bad)
	if _, err := Load(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zeroed NDB: err = %v, want %v", err, ErrCorrupt)
	}

	// Swapping the first two NDBs breaks ascending order.
	bad = bytes.Clone(img)
	a := binary.LittleEndian.Uint32(bad[off:])
	b := binary.LittleEndian.Uint32(bad[off+4:])
	binary.LittleEndian.PutUint32(bad[off:], b)
	binary.LittleEndian.PutUint32(bad[off+4:], a)
	reseal(bad)
	if _, err := Load(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("swapped NDBs: err = %v, want %v", err, ErrCorrupt)
	}
}

// TestLoadedIndexFailsMatcherValidationWhenTampered goes one layer up:
// a decoded-but-tampered index must be rejected by match.NewFromIndex
// rather than panic the matcher.
func TestLoadedIndexFailsMatcherValidationWhenTampered(t *testing.T) {
	img, _ := bakeSeed(t)
	ld, err := Load(img)
	if err != nil {
		t.Fatal(err)
	}
	idx := *ld.Index
	tampered := make([]uint32, len(idx.DocTerms))
	copy(tampered, idx.DocTerms)
	if len(tampered) == 0 {
		t.Skip("no doc terms")
	}
	tampered[0] = uint32(len(idx.Terms)) + 100 // out-of-range term ID
	idx.DocTerms = tampered
	if _, err := match.NewFromIndex(ld.DB, match.DefaultOptions(), &idx); !errors.Is(err, match.ErrBadIndex) {
		t.Fatalf("err = %v, want %v", err, match.ErrBadIndex)
	}
}
