package bake

// Image decoding. The hot property is that load cost does not scale
// with food count: on a little-endian host every numeric section is an
// unsafe.Slice view into the image buffer and every string an
// unsafe.String view into the blob, so the only O(n) work is filling
// the flat Food/Weight arrays from the column views and presizing the
// NDB map — no parsing, no unit normalization, no re-interning, no
// re-indexing. Misaligned or big-endian hosts transparently take a
// copying path with identical results.
//
// Everything returned by Load aliases the image buffer; callers must
// treat the buffer as immutable for the lifetime of the returned DB
// and Index (LoadFile owns its buffer privately, so this only concerns
// direct Load callers).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"unsafe"

	"nutriprofile/internal/match"
	"nutriprofile/internal/nutrition"
	"nutriprofile/internal/usda"
)

// hostLittle reports whether the host is little-endian — the image's
// byte order, and the precondition for the slice-cast fast path.
var hostLittle = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// Loaded is a decoded image: the database, the matcher index, and the
// image identity (size + checksum) for observability.
type Loaded struct {
	DB    *usda.DB
	Index *match.Index
	Bytes int    // image size in bytes
	CRC   uint32 // payload CRC-32C, the image's content identity
}

// cursor walks the payload sections in their fixed order.
type cursor struct {
	buf []byte
	off int
}

// take reserves n bytes (plus padding to 8) and returns their offset.
func (c *cursor) take(n int) (int, error) {
	if n < 0 || n > len(c.buf)-c.off {
		return 0, fmt.Errorf("%w: section of %d bytes at offset %d", ErrTruncated, n, c.off)
	}
	off := c.off
	c.off += n
	if rem := c.off % 8; rem != 0 {
		pad := 8 - rem
		if pad > len(c.buf)-c.off {
			return 0, fmt.Errorf("%w: missing section padding at offset %d", ErrTruncated, c.off)
		}
		c.off += pad
	}
	return off, nil
}

// aligned reports whether buf[off] can back a direct []T view.
func aligned(buf []byte, off int, align uintptr) bool {
	return uintptr(unsafe.Pointer(&buf[off]))%align == 0
}

// count validates a counts-block entry against the address space.
func count(v uint64) (int, error) {
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("%w: implausible element count %d", ErrCorrupt, v)
	}
	return int(v), nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	off, err := c.take(n)
	if err != nil {
		return nil, err
	}
	return c.buf[off : off+n : off+n], nil
}

func (c *cursor) uint64s(n int) ([]uint64, error) {
	off, err := c.take(n * 8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if hostLittle && aligned(c.buf, off, unsafe.Alignof(uint64(0))) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&c.buf[off])), n), nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(c.buf[off+8*i:])
	}
	return out, nil
}

func (c *cursor) uint32s(n int) ([]uint32, error) {
	off, err := c.take(n * 4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if hostLittle && aligned(c.buf, off, unsafe.Alignof(uint32(0))) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&c.buf[off])), n), nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(c.buf[off+4*i:])
	}
	return out, nil
}

func (c *cursor) int32s(n int) ([]int32, error) {
	us, err := c.uint32s(n)
	if err != nil || us == nil {
		return nil, err
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&us[0])), n), nil
}

func (c *cursor) float64s(n int) ([]float64, error) {
	us, err := c.uint64s(n)
	if err != nil || us == nil {
		return nil, err
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&us[0])), n), nil
}

// blobString views (off, ln) into the blob; zero-length strings avoid
// touching the blob so empty blobs stay valid.
func blobString(blob []byte, off, ln uint32) (string, error) {
	if uint64(off)+uint64(ln) > uint64(len(blob)) {
		return "", fmt.Errorf("%w: string (%d,%d) beyond blob of %d bytes", ErrCorrupt, off, ln, len(blob))
	}
	if ln == 0 {
		return "", nil
	}
	return unsafe.String(&blob[off], int(ln)), nil
}

// Load decodes an image. data must stay immutable while the returned
// DB/Index are in use (strings and numeric sections alias it).
func Load(data []byte) (*Loaded, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, header is %d", ErrTruncated, len(data), headerSize)
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadMagic, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: image version %d, loader supports %d", ErrVersion, v, Version)
	}
	payloadLen := binary.LittleEndian.Uint64(data[8:])
	if payloadLen != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: header claims %d payload bytes, file carries %d", ErrTruncated, payloadLen, len(data)-headerSize)
	}
	payload := data[headerSize:]
	wantCRC := binary.LittleEndian.Uint32(data[16:])
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("%w: crc32c %08x, header says %08x", ErrChecksum, got, wantCRC)
	}

	c := &cursor{buf: payload}
	counts, err := c.uint64s(countsLen)
	if err != nil {
		return nil, err
	}
	nFoods, err := count(counts[0])
	if err != nil {
		return nil, err
	}
	nWeights, err := count(counts[1])
	if err != nil {
		return nil, err
	}
	nTerms, err := count(counts[2])
	if err != nil {
		return nil, err
	}
	nDocTerms, err := count(counts[3])
	if err != nil {
		return nil, err
	}
	nPostings, err := count(counts[4])
	if err != nil {
		return nil, err
	}
	blobLen, err := count(counts[5])
	if err != nil {
		return nil, err
	}

	// Sections, mirroring the bake order exactly.
	foodNDB, err := c.int32s(nFoods)
	if err != nil {
		return nil, err
	}
	descOff, err := c.uint32s(nFoods)
	if err != nil {
		return nil, err
	}
	descLen, err := c.uint32s(nFoods)
	if err != nil {
		return nil, err
	}
	nutrients, err := c.float64s(nFoods * 11)
	if err != nil {
		return nil, err
	}
	weightCount, err := c.uint32s(nFoods)
	if err != nil {
		return nil, err
	}
	wSeq, err := c.int32s(nWeights)
	if err != nil {
		return nil, err
	}
	wAmount, err := c.float64s(nWeights)
	if err != nil {
		return nil, err
	}
	wGrams, err := c.float64s(nWeights)
	if err != nil {
		return nil, err
	}
	wUnitOff, err := c.uint32s(nWeights)
	if err != nil {
		return nil, err
	}
	wUnitLen, err := c.uint32s(nWeights)
	if err != nil {
		return nil, err
	}
	wCanonOff, err := c.uint32s(nWeights)
	if err != nil {
		return nil, err
	}
	wCanonLen, err := c.uint32s(nWeights)
	if err != nil {
		return nil, err
	}
	wKnown, err := c.bytes(nWeights)
	if err != nil {
		return nil, err
	}
	termOff, err := c.uint32s(nTerms)
	if err != nil {
		return nil, err
	}
	termLen, err := c.uint32s(nTerms)
	if err != nil {
		return nil, err
	}
	docTerms, err := c.uint32s(nDocTerms)
	if err != nil {
		return nil, err
	}
	docOff, err := c.int32s(nFoods + 1)
	if err != nil {
		return nil, err
	}
	hasRawBytes, err := c.bytes(nFoods)
	if err != nil {
		return nil, err
	}
	postDocs, err := c.int32s(nPostings)
	if err != nil {
		return nil, err
	}
	postPri, err := c.int32s(nPostings)
	if err != nil {
		return nil, err
	}
	postOff, err := c.int32s(nTerms + 1)
	if err != nil {
		return nil, err
	}
	blob, err := c.bytes(blobLen)
	if err != nil {
		return nil, err
	}
	if c.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(payload)-c.off)
	}

	// Assemble the database: flat backing arrays, subsliced per food.
	weightSum := 0
	for _, wc := range weightCount {
		weightSum += int(wc)
		if weightSum > nWeights {
			return nil, fmt.Errorf("%w: weight counts exceed %d rows", ErrCorrupt, nWeights)
		}
	}
	if weightSum != nWeights {
		return nil, fmt.Errorf("%w: weight counts sum to %d, image carries %d rows", ErrCorrupt, weightSum, nWeights)
	}
	weights := make([]usda.Weight, nWeights)
	canon := make([]usda.BakedUnit, nWeights)
	for i := range weights {
		unit, err := blobString(blob, wUnitOff[i], wUnitLen[i])
		if err != nil {
			return nil, err
		}
		cname, err := blobString(blob, wCanonOff[i], wCanonLen[i])
		if err != nil {
			return nil, err
		}
		weights[i] = usda.Weight{
			Seq: int(wSeq[i]), Amount: wAmount[i], Unit: unit, Grams: wGrams[i],
		}
		canon[i] = usda.BakedUnit{Name: cname, Known: wKnown[i] != 0}
	}
	foods := make([]usda.Food, nFoods)
	woff := 0
	for i := range foods {
		desc, err := blobString(blob, descOff[i], descLen[i])
		if err != nil {
			return nil, err
		}
		nv := nutrients[i*11 : i*11+11]
		wn := int(weightCount[i])
		foods[i] = usda.Food{
			NDB:  int(foodNDB[i]),
			Desc: desc,
			Per100g: nutrition.Profile{
				EnergyKcal: nv[0], ProteinG: nv[1], FatG: nv[2], CarbsG: nv[3],
				FiberG: nv[4], SugarG: nv[5], CalciumMg: nv[6], IronMg: nv[7],
				SodiumMg: nv[8], VitCMg: nv[9], CholMg: nv[10],
			},
			Weights: weights[woff : woff+wn : woff+wn],
		}
		woff += wn
	}
	db, err := usda.AssembleBaked(foods, canon)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	terms := make([]string, nTerms)
	for t := range terms {
		if terms[t], err = blobString(blob, termOff[t], termLen[t]); err != nil {
			return nil, err
		}
	}
	hasRaw := make([]bool, nFoods)
	for i, b := range hasRawBytes {
		hasRaw[i] = b != 0
	}
	idx := &match.Index{
		Terms:    terms,
		DocTerms: docTerms,
		DocOff:   docOff,
		HasRaw:   hasRaw,
		PostDocs: postDocs,
		PostPri:  postPri,
		PostOff:  postOff,
	}
	return &Loaded{DB: db, Index: idx, Bytes: len(data), CRC: wantCRC}, nil
}

// LoadFile reads and decodes an image file.
func LoadFile(path string) (*Loaded, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Load(data)
}
