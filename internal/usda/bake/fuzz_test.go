package bake

import (
	"errors"
	"testing"

	"nutriprofile/internal/usda"
)

// FuzzLoad enforces the loader contract: arbitrary bytes — including
// bit-flipped, truncated and re-sealed valid images — never panic, and
// every failure wraps exactly one of the load sentinels.
func FuzzLoad(f *testing.F) {
	img, err := BakeBytes(usda.Seed(), nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:headerSize])
	f.Add([]byte("NPBK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ld, err := Load(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrCorrupt) {
				t.Fatalf("unstructured error: %v", err)
			}
			return
		}
		if ld == nil || ld.DB == nil || ld.Index == nil {
			t.Fatal("nil Loaded fields without error")
		}
	})
}
