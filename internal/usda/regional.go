package usda

import "sync"

// Regional returns an FAO-INFOODS-style supplementary composition table
// covering region-specific ingredients absent from the US-centric SR
// seed. The paper's §III names this exact gap ("'garam masala' — a spice
// used in Indian dishes is not an ingredient present in the dataset") and
// its remedy ("Incorporation of other data as mentioned in Food and
// Agricultural Organisation of the United Nations would help in improving
// the results"); WithRegional is that incorporation.
//
// NDB numbers live in a 90000+ range so they can never collide with SR
// food groups. Descriptions follow the same comma-separated
// decreasing-importance grammar, so the matcher needs no changes.
func Regional() *DB { return regionalOnce() }

var regionalOnce = sync.OnceValue(func() *DB {
	return MustNewDB(regionalFoods)
})

// WithRegional returns the seed table merged with the regional table —
// the multi-database configuration of the FAO experiment.
func WithRegional() *DB { return withRegionalOnce() }

var withRegionalOnce = sync.OnceValue(func() *DB {
	base := Seed().Foods()
	reg := Regional().Foods()
	all := make([]Food, 0, len(base)+len(reg))
	all = append(all, base...)
	all = append(all, reg...)
	return MustNewDB(all)
})

// IsRegionalNDB reports whether an NDB number belongs to the regional
// table's range.
func IsRegionalNDB(ndb int) bool { return ndb >= 90000 && ndb < 91000 }

// regionalFoods: energy densities for the ten ingredients the corpus
// generator marks regional MUST stay in sync with the generator's
// catalog (recipedb verifies this in its tests via RegionalEnergies).
var regionalFoods = []Food{
	// Indian subcontinent
	fd(90001, "Spice blend, garam masala", p(379, 14.29, 15.10, 50.50, 24.6, 2.80, 525, 29.7, 62, 11.9, 0),
		w(1, 1, "tsp", 2.0),
		w(2, 1, "tbsp", 6.3)),
	fd(90002, "Cheese, paneer, fresh", p(321, 18.86, 26.90, 1.20, 0, 1.20, 480, 0.16, 22, 0, 90),
		w(1, 1, "cup, cubed", 132.0),
		w(2, 1, "oz", 28.35),
		w(3, 1, "slice", 30.0)),
	fd(90003, "Curry leaves, fresh", p(108, 6.10, 1.00, 18.70, 6.4, 0, 830, 0.93, 18, 4.0, 0),
		w(1, 1, "leaf", 0.5),
		w(2, 1, "sprig", 5.0),
		w(3, 1, "tbsp", 2.0)),
	fd(90004, "Spices, asafoetida (hing), powder", p(297, 4.00, 1.10, 67.80, 4.1, 0, 690, 39.4, 55, 0, 0),
		w(1, 1, "tsp", 3.0),
		w(2, 1, "pinch", 0.3)),
	fd(90005, "Sugar, jaggery (gur), unrefined cane", p(383, 0.40, 0.10, 98.00, 0, 84.00, 85, 11.0, 30, 0, 0),
		w(1, 1, "tbsp", 15.0),
		w(2, 1, "cup, grated", 145.0),
		w(3, 1, "piece", 25.0)),
	fd(90006, "Tamarind paste, concentrate", p(239, 2.80, 0.60, 62.50, 5.1, 38.80, 74, 2.80, 28, 3.5, 0),
		w(1, 1, "tbsp", 16.0),
		w(2, 1, "tsp", 5.3)),
	fd(90007, "Ghee, clarified butter", p(876, 0.28, 99.48, 0, 0, 0, 4, 0, 2, 0, 256),
		w(1, 1, "tbsp", 12.8),
		w(2, 1, "tsp", 4.3),
		w(3, 1, "cup", 205.0)),
	fd(90008, "Flour, chickpea (besan)", p(387, 22.39, 6.69, 57.82, 10.8, 10.85, 45, 4.86, 64, 0, 0),
		w(1, 1, "cup", 92.0),
		w(2, 1, "tbsp", 6.0)),
	fd(90009, "Spice blend, chaat masala", p(310, 10.10, 9.50, 46.20, 18.3, 3.10, 410, 21.0, 3100, 5.0, 0),
		w(1, 1, "tsp", 2.2)),
	fd(90010, "Lentils, split pigeon peas (toor dal), raw", p(343, 21.70, 1.49, 62.78, 15.0, 0, 130, 5.23, 17, 0, 0),
		w(1, 1, "cup", 205.0)),

	// East and Southeast Asia
	fd(90011, "Fish sauce, fermented (nam pla)", p(35, 5.06, 0.01, 3.64, 0, 3.64, 43, 0.78, 7851, 0.5, 0),
		w(1, 1, "tbsp", 18.0),
		w(2, 1, "tsp", 6.0)),
	fd(90012, "Chili paste, fermented (gochujang)", p(190, 4.50, 1.80, 41.00, 4.0, 22.00, 40, 1.50, 2480, 2.0, 0),
		w(1, 1, "tbsp", 19.0),
		w(2, 1, "tsp", 6.3)),
	fd(90013, "Sugar, palm, block", p(377, 0.30, 0.20, 94.00, 0, 78.00, 60, 2.60, 35, 0, 0),
		w(1, 1, "tbsp", 14.0),
		w(2, 1, "piece", 30.0),
		w(3, 1, "cup, grated", 140.0)),
	fd(90014, "Lime leaves, kaffir (makrut), fresh", p(80, 3.00, 0.80, 16.00, 9.0, 0, 440, 3.00, 6, 30.0, 0),
		w(1, 1, "leaf", 0.6),
		w(2, 5, "leaves", 3.0)),
	fd(90015, "Rice wine, mirin, sweet cooking", p(241, 0.20, 0, 42.00, 0, 40.00, 3, 0.10, 180, 0, 0),
		w(1, 1, "tbsp", 18.0),
		w(2, 1, "cup", 288.0)),
	fd(90016, "Soybean paste, fermented, doenjang", p(197, 13.60, 5.50, 24.00, 6.1, 6.00, 122, 2.60, 3600, 0, 0),
		w(1, 1, "tbsp", 17.0)),
	fd(90017, "Seaweed, nori, dried sheets", p(188, 30.70, 1.70, 44.40, 31.0, 2.60, 280, 11.9, 480, 42.0, 0),
		w(1, 1, "sheet", 2.6),
		w(2, 1, "cup, shredded", 8.0)),
	fd(90018, "Kimchi, cabbage, fermented", p(15, 1.10, 0.50, 2.40, 1.6, 1.06, 33, 0.51, 498, 4.4, 0),
		w(1, 1, "cup", 150.0),
		w(2, 0.5, "cup", 75.0)),
	fd(90019, "Dashi stock, prepared", p(2, 0.30, 0, 0.20, 0, 0, 2, 0.10, 140, 0, 0),
		w(1, 1, "cup", 240.0),
		w(2, 1, "quart", 960.0)),
	fd(90020, "Sambal oelek, ground chili paste", p(100, 2.00, 1.00, 20.00, 4.0, 10.00, 30, 1.60, 2100, 30.0, 0),
		w(1, 1, "tbsp", 15.0),
		w(2, 1, "tsp", 5.0)),

	// Middle East and Africa
	fd(90021, "Spice blend, za'atar", p(300, 11.00, 10.00, 42.00, 21.0, 1.00, 900, 22.0, 1200, 10.0, 0),
		w(1, 1, "tbsp", 7.0),
		w(2, 1, "tsp", 2.3)),
	fd(90022, "Spices, sumac, ground", p(324, 3.50, 12.00, 63.00, 22.0, 2.00, 290, 8.0, 15, 4.0, 0),
		w(1, 1, "tbsp", 8.0),
		w(2, 1, "tsp", 2.7)),
	fd(90023, "Chili paste, harissa", p(130, 3.50, 6.00, 16.00, 6.0, 7.00, 60, 2.80, 1300, 12.0, 0),
		w(1, 1, "tbsp", 16.0),
		w(2, 1, "tsp", 5.3)),
	fd(90024, "Flour, teff, whole-grain", p(366, 13.30, 2.38, 73.13, 12.2, 1.84, 180, 7.63, 12, 0, 0),
		w(1, 1, "cup", 121.0)),
	fd(90025, "Butter, spiced, clarified (niter kibbeh)", p(870, 0.30, 98.50, 0.30, 0, 0, 5, 0.05, 4, 0, 250),
		w(1, 1, "tbsp", 13.0),
		w(2, 1, "tsp", 4.4)),
	fd(90026, "Spice blend, berbere", p(320, 12.00, 10.00, 50.00, 22.0, 6.00, 350, 18.0, 1500, 8.0, 0),
		w(1, 1, "tbsp", 7.5),
		w(2, 1, "tsp", 2.5)),
	fd(90027, "Couscous, pearl (ptitim), dry", p(376, 12.50, 0.80, 77.00, 5.0, 0.50, 25, 1.20, 12, 0, 0),
		w(1, 1, "cup", 170.0)),
	fd(90028, "Molokhia (jute mallow) leaves, fresh", p(34, 4.65, 0.25, 5.80, 3.0, 0.50, 208, 4.76, 8, 37.0, 0),
		w(1, 1, "cup, chopped", 28.0),
		w(2, 1, "bunch", 150.0)),

	// Latin America and Caribbean
	fd(90029, "Plantains, green, raw", p(122, 1.30, 0.37, 31.89, 2.3, 15.00, 3, 0.60, 4, 18.4, 0),
		w(1, 1, "medium", 179.0),
		w(2, 1, "cup, sliced", 148.0)),
	fd(90030, "Cassava (yuca), raw", p(160, 1.36, 0.28, 38.06, 1.8, 1.70, 16, 0.27, 14, 20.6, 0),
		w(1, 1, "cup, cubed", 206.0),
		w(2, 1, "root", 408.0)),
	fd(90031, "Peppers, aji amarillo, fresh", p(55, 1.90, 0.70, 11.70, 3.6, 6.00, 18, 1.20, 8, 95.0, 0),
		w(1, 1, "medium", 45.0),
		w(2, 1, "tbsp, paste", 16.0)),
	fd(90032, "Masa harina, corn flour, nixtamalized", p(363, 8.50, 3.86, 76.00, 6.4, 1.60, 141, 7.00, 5, 0, 0),
		w(1, 1, "cup", 114.0)),
	fd(90033, "Queso fresco, Mexican fresh cheese", p(299, 18.09, 23.82, 2.98, 0, 2.40, 566, 0.17, 751, 0, 69),
		w(1, 1, "cup, crumbled", 122.0),
		w(2, 1, "oz", 28.35)),
	fd(90034, "Epazote, fresh", p(32, 0.33, 0.52, 7.44, 3.8, 0, 275, 1.88, 43, 3.6, 0),
		w(1, 1, "tbsp", 3.0),
		w(2, 1, "sprig", 2.0)),
	fd(90035, "Achiote (annatto) paste", p(285, 4.00, 9.00, 45.00, 10.0, 5.00, 120, 5.00, 2200, 2.0, 0),
		w(1, 1, "tbsp", 17.0)),
}

// RegionalEnergies exposes the energy density of the regional foods the
// corpus generator also hard-codes, so tests can verify the two stay in
// sync.
func RegionalEnergies() map[string]float64 {
	out := map[string]float64{}
	for _, f := range regionalFoods {
		out[f.Desc] = f.Per100g.EnergyKcal
	}
	return out
}
