package usda

import (
	"fmt"
	"math/rand"

	"nutriprofile/internal/nutrition"
)

// Synthetic generates a synthetic USDA-style database of approximately n
// foods for scale benchmarking. Descriptions follow the SR grammar — a
// head term followed by modifier terms of decreasing importance — and
// deliberately include near-duplicate variant families (raw/cooked,
// with/without salt, whole/reduced-fat) so the matcher's collision
// heuristics are exercised at scale exactly as they are by the real SR.
//
// The generator is deterministic for a given seed. When n exceeds the
// number of distinct combinations, numbered brand terms extend the space.
func Synthetic(n int, seed int64) *DB {
	rng := rand.New(rand.NewSource(seed))

	heads := []string{
		"Beans", "Berries", "Bread", "Broth", "Cake", "Candies", "Cereal",
		"Cheese", "Chicken", "Chips", "Cream", "Crackers", "Fish", "Flour",
		"Fruit", "Grain", "Greens", "Juice", "Meat", "Milk", "Nuts", "Oil",
		"Pasta", "Peppers", "Pork", "Potatoes", "Rice", "Salad", "Sauce",
		"Sausage", "Seeds", "Snacks", "Soup", "Spices", "Squash", "Stew",
		"Syrup", "Tea", "Turkey", "Yogurt",
	}
	variety := []string{
		"alpha", "baja", "calico", "delta", "eastern", "farmhouse",
		"golden", "harvest", "island", "jubilee", "keystone", "lakeside",
		"meadow", "northern", "orchard", "prairie", "quarry", "ridge",
		"sierra", "tundra", "upland", "valley", "western", "yellowstone",
	}
	states := []string{
		"raw", "cooked", "canned", "dried", "frozen", "smoked", "pickled",
		"roasted", "boiled", "baked", "fried", "steamed", "cured",
	}
	details := []string{
		"with salt", "without salt", "with skin", "without skin",
		"whole", "reduced fat", "low sodium", "unsweetened", "sweetened",
		"enriched", "unenriched", "drained solids", "solids and liquids",
		"ready to serve", "condensed", "extra firm", "small curd",
		"large curd", "fortified with vitamin a and vitamin d",
	}
	unitPool := []struct {
		unit  string
		minG  float64
		spanG float64
	}{
		{"cup", 80, 200}, {"tbsp", 5, 18}, {"tsp", 1, 6},
		{"oz", 28.35, 0}, {"piece", 10, 150}, {"slice", 7, 40},
		{"can", 200, 300}, {"package", 100, 400}, {"small", 30, 80},
		{"medium", 60, 120}, {"large", 100, 180}, {"lb", 453.6, 0},
	}

	foods := make([]Food, 0, n)
	seen := map[string]bool{}
	ndb := 90000
	for len(foods) < n {
		head := heads[rng.Intn(len(heads))]
		desc := head
		// 0-1 variety term, 1 state term, 0-2 detail terms.
		if rng.Intn(2) == 0 {
			desc += ", " + variety[rng.Intn(len(variety))]
		}
		desc += ", " + states[rng.Intn(len(states))]
		for d := rng.Intn(3); d > 0; d-- {
			desc += ", " + details[rng.Intn(len(details))]
		}
		if seen[desc] {
			// Extend the space with a brand term so n can exceed the
			// raw combination count without duplicate descriptions.
			desc += fmt.Sprintf(", brand %d", len(foods))
		}
		seen[desc] = true

		prot := rng.Float64() * 30
		fat := rng.Float64() * 50
		carb := rng.Float64() * 70
		prof := nutrition.Profile{
			ProteinG: prot, FatG: fat, CarbsG: carb,
			FiberG: rng.Float64() * 10, SugarG: rng.Float64() * 30,
			CalciumMg: rng.Float64() * 500, IronMg: rng.Float64() * 10,
			SodiumMg: rng.Float64() * 1000, VitCMg: rng.Float64() * 60,
			CholMg: rng.Float64() * 100,
		}
		prof.EnergyKcal = prof.MacroEnergyKcal()

		nw := 1 + rng.Intn(4)
		weights := make([]Weight, 0, nw)
		used := map[string]bool{}
		for len(weights) < nw {
			u := unitPool[rng.Intn(len(unitPool))]
			if used[u.unit] {
				continue
			}
			used[u.unit] = true
			grams := u.minG
			if u.spanG > 0 {
				grams += rng.Float64() * u.spanG
			}
			weights = append(weights, Weight{
				Seq: len(weights) + 1, Amount: 1, Unit: u.unit, Grams: grams,
			})
		}

		ndb++
		foods = append(foods, Food{NDB: ndb, Desc: desc, Per100g: prof, Weights: weights})
	}
	return MustNewDB(foods)
}

// Merged returns a database containing both the curated seed foods and
// extra synthetic foods, for benchmarks that need SR-realistic scale
// (the real SR has ~7,800 foods) while keeping the curated collision
// families intact.
func Merged(extraSynthetic int, seed int64) *DB {
	base := Seed().Foods()
	syn := Synthetic(extraSynthetic, seed).Foods()
	all := make([]Food, 0, len(base)+len(syn))
	all = append(all, base...)
	all = append(all, syn...)
	return MustNewDB(all)
}
