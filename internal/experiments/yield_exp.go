package experiments

import (
	"fmt"
	"math"

	"nutriprofile/internal/core"
	"nutriprofile/internal/instructions"
	"nutriprofile/internal/report"
	"nutriprofile/internal/usda"
	"nutriprofile/internal/yield"
)

// YieldResult quantifies the paper's §I remark that "more accurate
// results would be obtained if nutritional yield due to cooking is taken
// into account": per-serving calorie error against the AS-COOKED gold,
// with and without the Bognár-style yield correction (internal/yield),
// the method being inferred from the recipe title.
type YieldResult struct {
	Recipes         int
	UncorrectedMAE  float64 // raw-sum estimate vs cooked gold (kcal)
	CorrectedMAE    float64 // yield-corrected estimate vs cooked gold
	UncorrectedVitC float64 // same comparison for vitamin C (mg) — the
	CorrectedVitC   float64 // heat-labile nutrient where yield dominates
	InferredCorrect int     // titles whose method inference matched gold
	MethodsInferred int
}

// YieldExperiment runs the pipeline over the corpus and scores both
// variants against the as-cooked gold on fully-mapped recipes.
func YieldExperiment(p Params) (YieldResult, error) {
	p.fill()
	corpus, err := Corpus(p)
	if err != nil {
		return YieldResult{}, err
	}
	e, err := newEstimator(p, usda.Seed(), core.Options{})
	if err != nil {
		return YieldResult{}, err
	}
	e.ObserveUnits(corpus.Phrases())

	// Estimate on the worker pool; score sequentially in corpus order.
	inputs := make([]core.RecipeInput, corpus.Len())
	for i := range corpus.Recipes {
		rec := &corpus.Recipes[i]
		phrases := make([]string, len(rec.Ingredients))
		for j := range rec.Ingredients {
			phrases[j] = rec.Ingredients[j].Phrase
		}
		inputs[i] = core.RecipeInput{Phrases: phrases, Servings: rec.Servings}
	}
	outcomes := e.EstimateRecipes(inputs, p.Workers)

	var res YieldResult
	for i := range corpus.Recipes {
		rec := &corpus.Recipes[i]
		raw, err := outcomes[i].Result, outcomes[i].Err
		if err != nil {
			return res, err
		}
		if raw.MappedFraction < 1 {
			continue
		}
		// Prefer instruction-based inference (the cooking step almost
		// always names the method); fall back to the title.
		inferred := instructions.InferMethod(rec.Instructions)
		if inferred == yield.None {
			inferred = yield.InferFromTitle(rec.Title)
		}
		res.MethodsInferred++
		if inferred == rec.Method {
			res.InferredCorrect++
		}
		goldCooked := rec.GoldCookedPerServing()
		res.Recipes++
		corrected := yield.Apply(raw.PerServing, inferred)
		res.UncorrectedMAE += math.Abs(raw.PerServing.EnergyKcal - goldCooked.EnergyKcal)
		res.CorrectedMAE += math.Abs(corrected.EnergyKcal - goldCooked.EnergyKcal)
		res.UncorrectedVitC += math.Abs(raw.PerServing.VitCMg - goldCooked.VitCMg)
		res.CorrectedVitC += math.Abs(corrected.VitCMg - goldCooked.VitCMg)
	}
	if res.Recipes == 0 {
		return res, fmt.Errorf("experiments: no fully mapped recipes for yield ablation")
	}
	n := float64(res.Recipes)
	res.UncorrectedMAE /= n
	res.CorrectedMAE /= n
	res.UncorrectedVitC /= n
	res.CorrectedVitC /= n
	return res, nil
}

func (r YieldResult) String() string {
	return report.Section("EXTENSION — COOKING-YIELD CORRECTION (paper §I, Bognár)") +
		fmt.Sprintf("Recipes (100%% mapped): %d\n", r.Recipes) +
		fmt.Sprintf("Method inferred from title: %d/%d correct\n", r.InferredCorrect, r.MethodsInferred) +
		fmt.Sprintf("Energy MAE vs as-cooked gold, raw-sum estimate:         %.2f kcal/serving\n", r.UncorrectedMAE) +
		fmt.Sprintf("Energy MAE vs as-cooked gold, yield-corrected estimate: %.2f kcal/serving (%s of error removed)\n",
			r.CorrectedMAE, report.Pct(1-r.CorrectedMAE/math.Max(r.UncorrectedMAE, 1e-9))) +
		fmt.Sprintf("Vitamin C MAE, raw-sum estimate:                        %.2f mg/serving\n", r.UncorrectedVitC) +
		fmt.Sprintf("Vitamin C MAE, yield-corrected estimate:                %.2f mg/serving (%s of error removed)\n",
			r.CorrectedVitC, report.Pct(1-r.CorrectedVitC/math.Max(r.UncorrectedVitC, 1e-9)))
}
