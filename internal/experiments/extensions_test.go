package experiments

import (
	"testing"

	"nutriprofile/internal/usda"
)

func TestYieldExperiment(t *testing.T) {
	r, err := YieldExperiment(small())
	if err != nil {
		t.Fatal(err)
	}
	if r.Recipes == 0 {
		t.Fatal("no recipes evaluated")
	}
	// Method inference must be near-perfect; ingredient names containing
	// cooking verbs ("beef stew meat" in a prep step) cause rare misses.
	if float64(r.InferredCorrect) < 0.99*float64(r.MethodsInferred) {
		t.Errorf("method inference %d/%d below 99%%", r.InferredCorrect, r.MethodsInferred)
	}
	// The correction must not hurt, and must clearly help the
	// heat-labile nutrient.
	if r.CorrectedMAE > r.UncorrectedMAE+1e-9 {
		t.Errorf("yield correction increased energy MAE: %.2f > %.2f",
			r.CorrectedMAE, r.UncorrectedMAE)
	}
	if r.CorrectedVitC >= r.UncorrectedVitC {
		t.Errorf("yield correction did not reduce vitamin C error: %.2f ≥ %.2f",
			r.CorrectedVitC, r.UncorrectedVitC)
	}
}

func TestFAOExperiment(t *testing.T) {
	r, err := FAOExperiment(small())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's prediction: incorporating FAO-style data improves
	// coverage on every axis.
	if r.MergedRate < r.PrimaryRate {
		t.Errorf("merged match rate %.4f below primary %.4f", r.MergedRate, r.PrimaryRate)
	}
	if r.MergedMeanMapped <= r.PrimaryMeanMapped {
		t.Errorf("merged mapping %.4f not above primary %.4f",
			r.MergedMeanMapped, r.PrimaryMeanMapped)
	}
	if r.MergedFully <= r.PrimaryFully {
		t.Errorf("merged fully-mapped %d not above primary %d",
			r.MergedFully, r.PrimaryFully)
	}
	if r.RegionalQueries == 0 {
		t.Fatal("no regional queries found in corpus")
	}
	recall := float64(r.RegionalCorrect) / float64(r.RegionalQueries)
	if recall < 0.8 {
		t.Errorf("regional recall %.2f too low; the regional table should map its own foods", recall)
	}
}

func TestTypoExperiment(t *testing.T) {
	r, err := TypoExperiment(small())
	if err != nil {
		t.Fatal(err)
	}
	if r.Corrections == 0 {
		t.Fatal("typo corpus produced no correctable queries")
	}
	if r.FuzzyRate <= r.ExactRate {
		t.Errorf("fuzzy match rate %.4f not above exact %.4f", r.FuzzyRate, r.ExactRate)
	}
	if r.FuzzyAcc < r.ExactAcc {
		t.Errorf("fuzzy accuracy %.4f below exact %.4f", r.FuzzyAcc, r.ExactAcc)
	}
}

func TestRegionalTableIntegrity(t *testing.T) {
	reg := usda.Regional()
	if reg.Len() < 30 {
		t.Errorf("regional table has %d foods, want ≥30", reg.Len())
	}
	merged := usda.WithRegional()
	if merged.Len() != usda.Seed().Len()+reg.Len() {
		t.Errorf("merged table size %d ≠ seed %d + regional %d",
			merged.Len(), usda.Seed().Len(), reg.Len())
	}
	for i := 0; i < reg.Len(); i++ {
		f := reg.At(i)
		if !usda.IsRegionalNDB(f.NDB) {
			t.Errorf("regional food %q has out-of-range NDB %d", f.Desc, f.NDB)
		}
		if len(f.Weights) == 0 {
			t.Errorf("regional food %q has no weight rows", f.Desc)
		}
	}
	// Sanity: the paper's flagship example must exist and be matched by
	// the merged matcher.
	found := false
	for i := 0; i < reg.Len(); i++ {
		if reg.At(i).Desc == "Spice blend, garam masala" {
			found = true
		}
	}
	if !found {
		t.Error("garam masala missing from regional table")
	}
}
