package experiments

import (
	"strings"
	"testing"
)

// small returns a fast parameterization for tests.
func small() Params {
	return Params{Recipes: 300, Seed: 5, TrainPhrases: 400, TestPhrases: 100, Folds: 2}
}

func TestTableI(t *testing.T) {
	r := TableI(nil)
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(r.Rows))
	}
	// Spot-check the paper's exact Table I cells.
	if r.Rows[0].Name != "beef" || r.Rows[0].State != "lean ground" ||
		r.Rows[0].Quantity != "1/2" || r.Rows[0].Unit != "lb" {
		t.Errorf("row 1 = %+v", r.Rows[0])
	}
	if r.Rows[1].Size != "small" || r.Rows[1].State != "chopped" {
		t.Errorf("row 2 = %+v", r.Rows[1])
	}
	if r.Rows[6].Name != "butter" || r.Rows[6].State != "softened" || r.Rows[6].Unit != "cup" {
		t.Errorf("row 7 (or-alternative) = %+v", r.Rows[6])
	}
	if r.Rows[11].Temp != "cold" || r.Rows[11].Name != "water" {
		t.Errorf("row 12 = %+v", r.Rows[11])
	}
	if !strings.Contains(r.String(), "TABLE I") {
		t.Error("String() missing header")
	}
}

func TestTableII(t *testing.T) {
	r := TableII(nil)
	if len(r.Missing) != 0 {
		t.Errorf("missing Table II descriptions: %v", r.Missing)
	}
	if len(r.Rows) != 19 {
		t.Errorf("rows = %d, want 19", len(r.Rows))
	}
}

func TestTableIII(t *testing.T) {
	r, err := TableIII(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(TableIIIQueries) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The paper-aligned inferences that must hold under the modified
	// index with our seed database.
	wantModified := map[string]string{
		"red lentils":          "Lentils, pink or red, raw",
		"coriander":            "Coriander (cilantro) leaves, raw",
		"tomato paste":         "Tomato products, canned, paste, without salt added",
		"fava beans":           "Broadbeans (fava beans), mature seeds, raw",
		"cayenne pepper":       "Spices, pepper, red or cayenne",
		"sesame seeds":         "Seeds, sesame seeds, whole, dried",
		"chicken with giblets": "Chicken, broilers or fryers, meat and skin and giblets and neck, raw",
	}
	for _, row := range r.Rows {
		if want, ok := wantModified[row.Name]; ok && row.Modified != want {
			t.Errorf("modified(%q) = %q, want %q", row.Name, row.Modified, want)
		}
	}
	if r.Divergence.Different == 0 {
		t.Error("no divergence between metrics; paper found 227/1000")
	}
	if r.Divergence.Rate < 0.02 || r.Divergence.Rate > 0.6 {
		t.Errorf("divergence rate %.3f outside plausible band around the paper's 22.7%%", r.Divergence.Rate)
	}
}

func TestTableIV(t *testing.T) {
	r, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Weights) != 4 {
		t.Fatalf("butter weight rows = %d, want 4 (pat/tbsp/cup/stick)", len(r.Weights))
	}
	// The §II-C teaspoon derivation must land near the paper's ≈35 kcal.
	if r.TeaspoonKcal < 28 || r.TeaspoonKcal > 41 {
		t.Errorf("teaspoon of butter = %.1f kcal, want ≈35", r.TeaspoonKcal)
	}
}

func TestFig2(t *testing.T) {
	r, err := Fig2(small())
	if err != nil {
		t.Fatal(err)
	}
	if r.Mapping.Hist.Total != 300 {
		t.Fatalf("histogram total = %d", r.Mapping.Hist.Total)
	}
	if r.Mapping.MeanMapped < 0.6 {
		t.Errorf("mean mapped %.3f implausibly low", r.Mapping.MeanMapped)
	}
	// The distribution must concentrate in the upper buckets, the Fig. 2
	// shape ("could successfully map a significant proportion").
	upper := r.Mapping.Hist.Counts[8] + r.Mapping.Hist.Counts[9] + r.Mapping.Hist.Counts[10]
	if upper*2 < r.Mapping.Hist.Total {
		t.Errorf("upper buckets hold %d of %d; Fig. 2 shape violated", upper, r.Mapping.Hist.Total)
	}
}

func TestNERF1(t *testing.T) {
	r, err := NERF1(small())
	if err != nil {
		t.Fatal(err)
	}
	if r.SelectedPhrases == 0 || len(r.CV.Folds) != 2 {
		t.Fatalf("bad result %+v", r)
	}
	if r.CV.MeanMicroF1 < 0.85 {
		t.Errorf("CV micro-F1 %.3f; the paper's regime is ≈0.95", r.CV.MeanMicroF1)
	}
	// The CRF — the paper's actual model class — must land in the same
	// regime on its single split.
	if r.CRFMicroF1 < 0.85 {
		t.Errorf("CRF micro-F1 %.3f; want ≥0.85", r.CRFMicroF1)
	}
}

func TestMatchRateExperiment(t *testing.T) {
	r, err := MatchRateExperiment(small())
	if err != nil {
		t.Fatal(err)
	}
	// Paper band: 94.49%. The generated corpus includes ~4-8% deliberate
	// unmappables, so anything in the high 80s through 100% is in-shape.
	if r.Rate.Rate < 0.85 {
		t.Errorf("match rate %.4f below the paper band", r.Rate.Rate)
	}
}

func TestMatchAccuracyExperiment(t *testing.T) {
	r, err := MatchAccuracyExperiment(small(), 300)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 71.6%. Accuracy must be clearly below the match rate (wrong
	// but plausible matches) yet well above chance.
	if r.Accuracy.Accuracy < 0.5 || r.Accuracy.Accuracy > 0.99 {
		t.Errorf("accuracy %.3f outside the paper-shaped band", r.Accuracy.Accuracy)
	}
}

func TestCalorieExperiment(t *testing.T) {
	r, err := CalorieExperiment(small())
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.Recipes == 0 {
		t.Fatal("no fully mapped recipes selected")
	}
	// Paper: 36.42 kcal/serving mean. Same order of magnitude required.
	if r.Result.MedianError > 120 {
		t.Errorf("median error %.1f kcal/serving out of band", r.Result.MedianError)
	}
}

func TestMatcherAblation(t *testing.T) {
	r, err := MatcherAblation(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("variants = %d", len(r.Rows))
	}
	full, vanilla := r.Rows[0], r.Rows[1]
	if full.Name != "full (modified JI)" || vanilla.Name != "vanilla JI" {
		t.Fatalf("unexpected variant order: %+v", r.Rows)
	}
	// The paper's central claim: modified JI is more accurate than
	// vanilla on the frequent-ingredient validation.
	if full.Accuracy < vanilla.Accuracy {
		t.Errorf("modified JI accuracy %.3f < vanilla %.3f — paper's claim inverted",
			full.Accuracy, vanilla.Accuracy)
	}
	// The pre-paper containment baseline must trail the paper's method
	// badly on coverage — the gap §I motivates.
	baseline := r.Rows[len(r.Rows)-1]
	if baseline.MatchRate >= full.MatchRate {
		t.Errorf("containment baseline rate %.3f ≥ full %.3f", baseline.MatchRate, full.MatchRate)
	}
}

func TestUnitChainAblation(t *testing.T) {
	r, err := UnitChainAblation(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("variants = %d", len(r.Rows))
	}
	full := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.MeanMapped > full.MeanMapped+1e-9 {
			t.Errorf("disabling %q RAISED mean mapping (%.4f > %.4f)",
				row.Name, row.MeanMapped, full.MeanMapped)
		}
	}
}

func TestModalUnits(t *testing.T) {
	r, err := ModalUnits(small(), []string{"garlic", "butter"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// §II-C's own example: garlic's dominant unit is the clove.
	if !strings.HasPrefix(r.Rows[0][1], "clove") {
		t.Errorf("modal unit for garlic = %q, want clove", r.Rows[0][1])
	}
}

func TestDefaultsMatchPaperSizes(t *testing.T) {
	d := Defaults()
	if d.TrainPhrases != 6612 || d.TestPhrases != 2188 || d.Folds != 5 {
		t.Errorf("defaults diverge from the paper's §II-A protocol: %+v", d)
	}
}
