package experiments

import (
	"fmt"
	"sort"

	"nutriprofile/internal/cluster"
	"nutriprofile/internal/core"
	"nutriprofile/internal/eval"
	"nutriprofile/internal/match"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/postag"
	"nutriprofile/internal/report"
	"nutriprofile/internal/usda"
)

// ---------------------------------------------------------------------
// §II-A — NER F1 with cluster-based corpus selection and k-fold CV
// ---------------------------------------------------------------------

// NERF1Result is the §II-A model validation: the paper reports F1 = 0.95
// under 5-fold CV on 6,612 train + 2,188 test phrases chosen by POS-vector
// clustering.
type NERF1Result struct {
	SelectedPhrases int
	Clusters        int
	CV              eval.KFoldResult
	BaselineMicroF1 float64 // rule-tagger baseline on the same phrases
	// CRFMicroF1 scores the conditional-random-field trainer — the
	// paper's actual model class — on a single 75/25 split of the same
	// selected phrases.
	CRFMicroF1 float64
}

// NERF1 reproduces the corpus-selection protocol: POS-tag every candidate
// phrase, k-means the frequency vectors, sample a balanced subset of
// train+test size, then run k-fold CV with the perceptron tagger.
func NERF1(p Params) (NERF1Result, error) {
	p.fill()
	corpus, err := Corpus(p)
	if err != nil {
		return NERF1Result{}, err
	}
	examples := corpus.Examples()

	// POS frequency vectors (§II-A: "utilized Parts of Speech Tagging to
	// form vectors representing each ingredient phrase").
	vectors := make([][]float64, len(examples))
	for i, ex := range examples {
		vectors[i] = postag.FrequencyVector(postag.TagPhrase(ex.Tokens))
	}
	const k = 8
	cl, err := cluster.KMeans(vectors, cluster.Config{K: k, Seed: p.Seed})
	if err != nil {
		return NERF1Result{}, err
	}
	want := p.TrainPhrases + p.TestPhrases
	idx := cluster.SampleBalanced(cl.Assignment, k, want, p.Seed)
	selected := make([]ner.Example, len(idx))
	for i, j := range idx {
		selected[i] = examples[j]
	}

	cv, err := eval.KFoldNER(selected, p.Folds, ner.TrainConfig{Epochs: 5, Seed: p.Seed}, p.Seed)
	if err != nil {
		return NERF1Result{}, err
	}
	base, err := eval.EvaluateNER(ner.RuleTagger{}, selected)
	if err != nil {
		return NERF1Result{}, err
	}

	// CRF on a single split (its forward–backward training is costlier
	// than the perceptron's, so it skips the full CV).
	split := len(selected) * 3 / 4
	crf, err := ner.TrainCRF(selected[:split], ner.CRFConfig{Epochs: 4, Seed: p.Seed})
	if err != nil {
		return NERF1Result{}, err
	}
	crfScore, err := eval.EvaluateNER(crf, selected[split:])
	if err != nil {
		return NERF1Result{}, err
	}
	return NERF1Result{
		SelectedPhrases: len(selected),
		Clusters:        k,
		CV:              cv,
		BaselineMicroF1: base.MicroF1,
		CRFMicroF1:      crfScore.MicroF1,
	}, nil
}

func (r NERF1Result) String() string {
	out := report.Section("§II-A — NER MODEL F1 (k-FOLD CV, CLUSTER-SELECTED CORPUS)")
	out += fmt.Sprintf("Phrases selected via POS k-means (%d clusters): %d\n", r.Clusters, r.SelectedPhrases)
	for i, f := range r.CV.Folds {
		out += fmt.Sprintf("  fold %d: micro-F1 %.4f, token accuracy %.4f\n", i+1, f.MicroF1, f.TokenAccuracy)
	}
	out += fmt.Sprintf("Mean micro-F1 (averaged perceptron): %.4f (paper: 0.95)\n", r.CV.MeanMicroF1)
	out += fmt.Sprintf("CRF micro-F1 (single split; the paper's model class): %.4f\n", r.CRFMicroF1)
	out += fmt.Sprintf("Rule-baseline micro-F1: %.4f\n", r.BaselineMicroF1)
	return out
}

// ---------------------------------------------------------------------
// §III — ingredient match rate and accuracy
// ---------------------------------------------------------------------

// MatchRateResult is the §III "94.49% of the unique ingredients" figure.
type MatchRateResult struct {
	Rate eval.MatchRateResult
}

// MatchRateExperiment measures the unique-ingredient match rate over the
// corpus.
func MatchRateExperiment(p Params) (MatchRateResult, error) {
	p.fill()
	corpus, err := Corpus(p)
	if err != nil {
		return MatchRateResult{}, err
	}
	m := match.NewDefault(usda.Seed())
	lqs := eval.CorpusQueries(corpus)
	queries := make([]match.Query, len(lqs))
	for i, lq := range lqs {
		queries[i] = lq.Query
	}
	rate, err := eval.MatchRate(m, queries)
	return MatchRateResult{Rate: rate}, err
}

func (r MatchRateResult) String() string {
	return report.Section("§III — UNIQUE INGREDIENT MATCH RATE") +
		fmt.Sprintf("Unique ingredient+state queries: %d\nMatched: %d\nRate: %s (paper: 94.49%%)\n",
			r.Rate.Unique, r.Rate.Matched, report.Pct(r.Rate.Rate))
}

// MatchAccuracyResult is the §III manual-validation figure (71.6% on the
// 5000 most frequent ingredient+state pairs).
type MatchAccuracyResult struct {
	Accuracy eval.AccuracyResult
	TopN     int
}

// MatchAccuracyExperiment scores exact-NDB accuracy on the most frequent
// mappable queries, gold coming from the generator.
func MatchAccuracyExperiment(p Params, topN int) (MatchAccuracyResult, error) {
	p.fill()
	if topN <= 0 {
		topN = 5000
	}
	corpus, err := Corpus(p)
	if err != nil {
		return MatchAccuracyResult{}, err
	}
	m := match.NewDefault(usda.Seed())
	acc, err := eval.MatchAccuracyTopN(m, eval.CorpusQueries(corpus), topN)
	return MatchAccuracyResult{Accuracy: acc, TopN: topN}, err
}

func (r MatchAccuracyResult) String() string {
	return report.Section("§III — MATCH ACCURACY ON MOST FREQUENT INGREDIENTS") +
		fmt.Sprintf("Evaluated (top %d by frequency): %d\nExact-NDB correct: %d\nAccuracy: %s (paper: 71.6%%)\n",
			r.TopN, r.Accuracy.Evaluated, r.Accuracy.Correct, report.Pct(r.Accuracy.Accuracy))
}

// ---------------------------------------------------------------------
// §III — per-serving calorie error
// ---------------------------------------------------------------------

// CalorieResult is the §III headline figure (36.42 kcal average
// per-serving error over 2,482 fully-mapped recipes).
type CalorieResult struct {
	Result eval.CalorieResult
}

// CalorieExperiment reproduces the selection protocol (100% mapping,
// clean servings) and measures per-serving absolute calorie error against
// the noisy gold standard.
func CalorieExperiment(p Params) (CalorieResult, error) {
	p.fill()
	corpus, err := Corpus(p)
	if err != nil {
		return CalorieResult{}, err
	}
	e, err := newEstimator(p, usda.Seed(), core.Options{})
	if err != nil {
		return CalorieResult{}, err
	}
	e.ObserveUnits(corpus.Phrases())
	res, err := eval.CalorieError(e, corpus, eval.CalorieConfig{
		Seed:                 p.Seed,
		RequireFullMapping:   true,
		RequireCleanServings: true,
		Workers:              p.Workers,
	})
	return CalorieResult{Result: res}, err
}

func (r CalorieResult) String() string {
	return report.Section("§III — PER-SERVING CALORIE ERROR (FULLY MAPPED, CLEAN SERVINGS)") +
		fmt.Sprintf("Recipes selected (100%% mapping + clean servings): %d (paper: 2482)\n", r.Result.Recipes) +
		fmt.Sprintf("Excluded for unclean servings text: %d\n", r.Result.ExcludedUncleanServings) +
		fmt.Sprintf("Mean |error|: %.2f kcal/serving (95%% CI [%.1f, %.1f]; paper: 36.42)\n",
			r.Result.MeanAbsError, r.Result.CILow, r.Result.CIHigh) +
		fmt.Sprintf("Median |error|: %.2f kcal/serving\n", r.Result.MedianError) +
		fmt.Sprintf("Mean gold: %.1f kcal/serving; mean estimate: %.1f kcal/serving\n",
			r.Result.MeanGoldKcal, r.Result.MeanEstKcal) +
		fmt.Sprintf("Mean relative error: %s\n", report.Pct(r.Result.MeanRelError)) +
		fmt.Sprintf("Full-profile MAE/serving: protein %.2f g, fat %.2f g, carbs %.2f g, sodium %.0f mg\n",
			r.Result.ProteinMAE, r.Result.FatMAE, r.Result.CarbsMAE, r.Result.SodiumMAE)
}

// ---------------------------------------------------------------------
// Ablations — the design choices DESIGN.md calls out
// ---------------------------------------------------------------------

// AblationRow is one configuration's metrics.
type AblationRow struct {
	Name        string
	MatchRate   float64
	Accuracy    float64
	MeanMapped  float64
	CalorieMAE  float64
	FullyMapped int
}

// AblationResult compares the full pipeline against variants with one
// heuristic disabled.
type AblationResult struct {
	Rows []AblationRow
}

// matcherVariants enumerates the §II-B heuristic ablations.
func matcherVariants() []struct {
	name string
	opts match.Options
} {
	full := match.DefaultOptions()
	vanilla := full
	vanilla.Metric = match.VanillaJaccard
	noRaw := full
	noRaw.RawProvision = false
	noPrio := full
	noPrio.PriorityResolution = false
	noAnchor := full
	noAnchor.NameAnchoring = false
	return []struct {
		name string
		opts match.Options
	}{
		{"full (modified JI)", full},
		{"vanilla JI", vanilla},
		{"no raw provision", noRaw},
		{"no priority resolution", noPrio},
		{"no name anchoring", noAnchor},
	}
}

// MatcherAblation measures match rate and accuracy per matcher variant.
func MatcherAblation(p Params) (AblationResult, error) {
	p.fill()
	corpus, err := Corpus(p)
	if err != nil {
		return AblationResult{}, err
	}
	lqs := eval.CorpusQueries(corpus)
	queries := make([]match.Query, len(lqs))
	for i, lq := range lqs {
		queries[i] = lq.Query
	}
	db := usda.Seed()
	var res AblationResult
	for _, v := range matcherVariants() {
		m := match.New(db, v.opts)
		rate, err := eval.MatchRate(m, queries)
		if err != nil {
			return res, err
		}
		acc, err := eval.MatchAccuracyTopN(m, lqs, 5000)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Name: v.name, MatchRate: rate.Rate, Accuracy: acc.Accuracy,
		})
	}

	// The pre-paper baseline: naive full-containment string matching.
	em := match.NewExact(match.NewDefault(db))
	matched, correct, mappable := 0, 0, 0
	seen := map[match.Query]bool{}
	for _, lq := range lqs {
		if !seen[lq.Query] {
			seen[lq.Query] = true
			if _, ok := em.Match(lq.Query); ok {
				matched++
			}
		}
		if lq.NDB != 0 && !lq.Regional {
			mappable++
			if r, ok := em.Match(lq.Query); ok && r.NDB == lq.NDB {
				correct++
			}
		}
	}
	row := AblationRow{Name: "containment baseline (pre-paper)"}
	if len(seen) > 0 {
		row.MatchRate = float64(matched) / float64(len(seen))
	}
	if mappable > 0 {
		row.Accuracy = float64(correct) / float64(mappable)
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// UnitChainAblation measures mapping and calorie error as unit-resolution
// fallback tiers are disabled.
func UnitChainAblation(p Params) (AblationResult, error) {
	p.fill()
	corpus, err := Corpus(p)
	if err != nil {
		return AblationResult{}, err
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"full chain", core.Options{}},
		{"no conversion tables", core.Options{DisableConversion: true}},
		{"no phrase search", core.Options{DisablePhraseSearch: true}},
		{"no most-frequent unit", core.Options{DisableMostFrequent: true}},
		{"no default row", core.Options{DisableDefaultRow: true}},
		{"no threshold repair", core.Options{DisableRepair: true}},
	}
	var res AblationResult
	for _, v := range variants {
		e, err := newEstimator(p, usda.Seed(), v.opts)
		if err != nil {
			return res, err
		}
		if !v.opts.DisableMostFrequent {
			e.ObserveUnits(corpus.Phrases())
		}
		mapping, err := eval.PercentMapping(e, corpus, p.Workers)
		if err != nil {
			return res, err
		}
		row := AblationRow{
			Name:        v.name,
			MeanMapped:  mapping.MeanMapped,
			FullyMapped: mapping.FullyMapped,
		}
		if cal, err := eval.CalorieError(e, corpus, eval.CalorieConfig{
			Seed: p.Seed, RequireFullMapping: true, Workers: p.Workers,
		}); err == nil {
			row.CalorieMAE = cal.MeanAbsError
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r AblationResult) String() string {
	tb := report.NewTable("Variant", "MatchRate", "Accuracy", "MeanMapped", "FullyMapped", "CalorieMAE")
	for _, row := range r.Rows {
		cell := func(v float64, pct bool) string {
			if v == 0 {
				return ""
			}
			if pct {
				return report.Pct(v)
			}
			return report.F2(v)
		}
		tb.AddRow(row.Name, cell(row.MatchRate, true), cell(row.Accuracy, true),
			cell(row.MeanMapped, true), fmt.Sprint(row.FullyMapped), cell(row.CalorieMAE, false))
	}
	return report.Section("ABLATIONS") + tb.String()
}

// ---------------------------------------------------------------------
// Unit-frequency diagnostics (the garlic→clove example of §II-C)
// ---------------------------------------------------------------------

// UnitFrequency summarizes the most frequent unit per common ingredient.
type UnitFrequency struct {
	Rows [][2]string // ingredient name, modal unit
}

// ModalUnits reports the most frequent units learned from the corpus for
// a probe set of ingredients.
func ModalUnits(p Params, probes []string) (UnitFrequency, error) {
	p.fill()
	corpus, err := Corpus(p)
	if err != nil {
		return UnitFrequency{}, err
	}
	type stat map[string]int
	counts := map[string]stat{}
	for i := range corpus.Recipes {
		for _, ing := range corpus.Recipes[i].Ingredients {
			if ing.Gold.Unit == "" {
				continue
			}
			s := counts[ing.Gold.Name]
			if s == nil {
				s = stat{}
				counts[ing.Gold.Name] = s
			}
			s[ing.Gold.Unit]++
		}
	}
	var uf UnitFrequency
	for _, probe := range probes {
		s := counts[probe]
		type kv struct {
			u string
			n int
		}
		var kvs []kv
		for u, n := range s {
			kvs = append(kvs, kv{u, n})
		}
		sort.Slice(kvs, func(a, b int) bool {
			if kvs[a].n != kvs[b].n {
				return kvs[a].n > kvs[b].n
			}
			return kvs[a].u < kvs[b].u
		})
		modal := "(none)"
		if len(kvs) > 0 {
			modal = fmt.Sprintf("%s (%d uses)", kvs[0].u, kvs[0].n)
		}
		uf.Rows = append(uf.Rows, [2]string{probe, modal})
	}
	return uf, nil
}

func (u UnitFrequency) String() string {
	tb := report.NewTable("Ingredient", "Most frequent unit")
	for _, r := range u.Rows {
		tb.AddRow(r[0], r[1])
	}
	return report.Section("§II-C — MODAL UNITS (most-frequent-unit fallback)") + tb.String()
}
