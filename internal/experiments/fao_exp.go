package experiments

import (
	"fmt"

	"nutriprofile/internal/core"
	"nutriprofile/internal/eval"
	"nutriprofile/internal/match"
	"nutriprofile/internal/report"
	"nutriprofile/internal/usda"
)

// FAOResult quantifies the paper's §III remedy for region-centric
// coverage gaps: "Incorporation of other data as mentioned in Food and
// Agricultural Organisation of the United Nations would help in improving
// the results". It compares the pipeline on the US-centric primary table
// alone against the primary merged with the FAO-style regional table
// (usda.WithRegional).
type FAOResult struct {
	// Match rate over unique ingredient queries.
	PrimaryRate, MergedRate float64
	// Regional recall: fraction of regional-gold queries mapped to their
	// exact regional food by the merged matcher (the primary cannot map
	// them at all).
	RegionalQueries int
	RegionalCorrect int
	// Mean mapped fraction and fully-mapped recipe count (Fig. 2 axis).
	PrimaryMeanMapped, MergedMeanMapped float64
	PrimaryFully, MergedFully           int
	// Per-serving calorie MAE on each configuration's fully-mapped set.
	PrimaryMAE, MergedMAE float64
}

// FAOExperiment runs both configurations over the same corpus.
func FAOExperiment(p Params) (FAOResult, error) {
	p.fill()
	corpus, err := Corpus(p)
	if err != nil {
		return FAOResult{}, err
	}
	lqs := eval.CorpusQueries(corpus)
	queries := make([]match.Query, len(lqs))
	for i, lq := range lqs {
		queries[i] = lq.Query
	}

	var res FAOResult
	primaryMatcher := match.NewDefault(usda.Seed())
	mergedMatcher := match.NewDefault(usda.WithRegional())
	if r, err := eval.MatchRate(primaryMatcher, queries); err == nil {
		res.PrimaryRate = r.Rate
	} else {
		return res, err
	}
	if r, err := eval.MatchRate(mergedMatcher, queries); err == nil {
		res.MergedRate = r.Rate
	} else {
		return res, err
	}

	// Regional recall under the merged matcher.
	for _, lq := range lqs {
		if !lq.Regional {
			continue
		}
		res.RegionalQueries++
		if r, ok := mergedMatcher.Match(lq.Query); ok && r.NDB == lq.NDB {
			res.RegionalCorrect++
		}
	}

	// End-to-end mapping and calorie error per configuration.
	for _, cfg := range []struct {
		db     *usda.DB
		mapped *float64
		fully  *int
		mae    *float64
	}{
		{usda.Seed(), &res.PrimaryMeanMapped, &res.PrimaryFully, &res.PrimaryMAE},
		{usda.WithRegional(), &res.MergedMeanMapped, &res.MergedFully, &res.MergedMAE},
	} {
		e, err := newEstimator(p, cfg.db, core.Options{})
		if err != nil {
			return res, err
		}
		e.ObserveUnits(corpus.Phrases())
		mapping, err := eval.PercentMapping(e, corpus, p.Workers)
		if err != nil {
			return res, err
		}
		*cfg.mapped = mapping.MeanMapped
		*cfg.fully = mapping.FullyMapped
		cal, err := eval.CalorieError(e, corpus, eval.CalorieConfig{
			Seed: p.Seed, RequireFullMapping: true, Workers: p.Workers,
		})
		if err != nil {
			return res, err
		}
		*cfg.mae = cal.MeanAbsError
	}
	return res, nil
}

func (r FAOResult) String() string {
	tb := report.NewTable("Configuration", "Match rate", "Mean mapped", "Fully mapped", "Calorie MAE")
	tb.AddRow("US-centric primary (SR seed)", report.Pct(r.PrimaryRate),
		report.Pct(r.PrimaryMeanMapped), fmt.Sprint(r.PrimaryFully), report.F2(r.PrimaryMAE))
	tb.AddRow("+ FAO-style regional table", report.Pct(r.MergedRate),
		report.Pct(r.MergedMeanMapped), fmt.Sprint(r.MergedFully), report.F2(r.MergedMAE))
	recall := 0.0
	if r.RegionalQueries > 0 {
		recall = float64(r.RegionalCorrect) / float64(r.RegionalQueries)
	}
	return report.Section("EXTENSION — FAO REGIONAL-TABLE INCORPORATION (paper §III)") +
		tb.String() +
		fmt.Sprintf("\nRegional ingredient recall under the merged table: %d/%d (%s)\n",
			r.RegionalCorrect, r.RegionalQueries, report.Pct(recall))
}
