package experiments

import (
	"fmt"

	"nutriprofile/internal/eval"
	"nutriprofile/internal/match"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/report"
	"nutriprofile/internal/usda"
)

// TypoResult quantifies the fuzzy-matching extension: on a corpus with
// misspelled ingredient names (the scraped-data noise class the paper's
// clean-token preprocessing assumes away), how much match rate does the
// Damerau–Levenshtein-1 correction recover?
type TypoResult struct {
	TypoRate    float64
	ExactRate   float64 // plain Match
	FuzzyRate   float64 // MatchFuzzy
	ExactAcc    float64 // exact-NDB accuracy, plain
	FuzzyAcc    float64 // exact-NDB accuracy, fuzzy
	Corrections int     // queries the corrector actually changed
}

// TypoExperiment generates a corpus with an elevated typo rate and
// compares exact and fuzzy matching.
func TypoExperiment(p Params) (TypoResult, error) {
	p.fill()
	const typoRate = 0.08
	corpus, err := recipedb.Generate(recipedb.Config{
		NumRecipes: p.Recipes, Seed: p.Seed, TypoRate: typoRate,
	})
	if err != nil {
		return TypoResult{}, err
	}
	m := match.NewDefault(usda.Seed())
	lqs := eval.CorpusQueries(corpus)

	res := TypoResult{TypoRate: typoRate}
	var exactMatched, fuzzyMatched, exactOK, fuzzyOK, mappableN int
	for _, lq := range lqs {
		if _, changed := m.CorrectQuery(lq.Query); changed {
			res.Corrections++
		}
		re, okE := m.Match(lq.Query)
		rf, okF := m.MatchFuzzy(lq.Query)
		if okE {
			exactMatched++
		}
		if okF {
			fuzzyMatched++
		}
		if lq.NDB != 0 && !lq.Regional {
			mappableN++
			if okE && re.NDB == lq.NDB {
				exactOK++
			}
			if okF && rf.NDB == lq.NDB {
				fuzzyOK++
			}
		}
	}
	n := float64(len(lqs))
	res.ExactRate = float64(exactMatched) / n
	res.FuzzyRate = float64(fuzzyMatched) / n
	if mappableN > 0 {
		res.ExactAcc = float64(exactOK) / float64(mappableN)
		res.FuzzyAcc = float64(fuzzyOK) / float64(mappableN)
	}
	return res, nil
}

func (r TypoResult) String() string {
	return report.Section("EXTENSION — TYPO-TOLERANT MATCHING (scraped-data noise)") +
		fmt.Sprintf("Corpus typo rate: %s of ingredient names corrupted\n", report.Pct(r.TypoRate)) +
		fmt.Sprintf("Queries the corrector changed: %d\n", r.Corrections) +
		fmt.Sprintf("Match rate, exact:  %s\n", report.Pct(r.ExactRate)) +
		fmt.Sprintf("Match rate, fuzzy:  %s\n", report.Pct(r.FuzzyRate)) +
		fmt.Sprintf("Exact-NDB accuracy, exact matching: %s\n", report.Pct(r.ExactAcc)) +
		fmt.Sprintf("Exact-NDB accuracy, fuzzy matching: %s\n", report.Pct(r.FuzzyAcc))
}
