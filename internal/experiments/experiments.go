// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function from a Params struct to
// a result struct with a String() rendering; cmd/experiments prints them
// and the repository-root benchmarks time them, so the numbers in
// EXPERIMENTS.md and the bench output come from one implementation.
package experiments

import (
	"fmt"
	"strings"

	"nutriprofile/internal/core"
	"nutriprofile/internal/eval"
	"nutriprofile/internal/match"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/report"
	"nutriprofile/internal/usda"
)

// Params configures the experiment suite.
type Params struct {
	// Recipes is the corpus size for the corpus-wide experiments
	// (Fig. 2, match rate/accuracy, calorie error). The paper's corpus
	// is 118,071 recipes; the default harness size is 20,000, which
	// reproduces the same distributions in seconds.
	Recipes int
	// Seed drives corpus generation and every stochastic step.
	Seed int64
	// TrainPhrases / TestPhrases reproduce the paper's NER corpus sizes
	// (6,612 / 2,188).
	TrainPhrases, TestPhrases int
	// Folds is the cross-validation fold count (paper: 5).
	Folds int
	// Workers sizes the estimation worker pools for the corpus-scale
	// experiments (0: one worker per CPU). Results are identical for
	// any worker count; this only changes wall-clock time.
	Workers int
	// CacheSize bounds the estimator memo caches for corpus runs
	// (0: the default 1<<15 entries; negative: caching disabled).
	// Memoization is result-invariant — see DESIGN.md.
	CacheSize int
}

// Defaults returns the standard parameterization.
func Defaults() Params {
	return Params{
		Recipes:      20000,
		Seed:         42,
		TrainPhrases: 6612,
		TestPhrases:  2188,
		Folds:        5,
	}
}

// fill normalizes zero fields.
func (p *Params) fill() {
	d := Defaults()
	if p.Recipes <= 0 {
		p.Recipes = d.Recipes
	}
	if p.TrainPhrases <= 0 {
		p.TrainPhrases = d.TrainPhrases
	}
	if p.TestPhrases <= 0 {
		p.TestPhrases = d.TestPhrases
	}
	if p.Folds <= 1 {
		p.Folds = d.Folds
	}
	if p.CacheSize == 0 {
		p.CacheSize = 1 << 15
	}
}

// newEstimator builds the estimator the corpus experiments share: the
// rule tagger over db, with the params' memo-cache configuration. The
// repeated-ingredient structure of recipe corpora makes the cache the
// difference between re-scoring "salt" thousands of times and once.
func newEstimator(p Params, db *usda.DB, opts core.Options) (*core.Estimator, error) {
	if p.CacheSize > 0 {
		opts.CacheSize = p.CacheSize
	}
	return core.New(db, nil, opts)
}

// Corpus generates (and caches per-params, when used through a Suite) the
// experiment corpus.
func Corpus(p Params) (*recipedb.Corpus, error) {
	p.fill()
	return recipedb.Generate(recipedb.Config{NumRecipes: p.Recipes, Seed: p.Seed})
}

// ---------------------------------------------------------------------
// Table I — NER tag extraction on the Piroszhki phrases
// ---------------------------------------------------------------------

// TableIPhrases are the twelve ingredient phrases of the paper's Table I
// (the recipe "Piroszhki, Little Russian Pastries").
var TableIPhrases = []string{
	"1/2 lb lean ground beef",
	"1 small onion , finely chopped",
	"1 hard-cooked egg , finely chopped",
	"1 tablespoon fresh dill weed",
	"1/2 teaspoon salt , freshly ground",
	"1/8 teaspoon black pepper , minced",
	"3/4 cup butter or 3/4 cup margarine , softened",
	"2 cups all-purpose flour",
	"1 teaspoon salt",
	"1/2 cup low-fat sour cream",
	"1 egg yolk",
	"1 tablespoon cold water",
}

// TableIResult is the reproduced Table I.
type TableIResult struct {
	Rows []ner.Extraction
}

// TableI extracts entities from the twelve phrases using the rule-based
// tagger (the deterministic reference configuration).
func TableI(tagger ner.Tagger) TableIResult {
	if tagger == nil {
		tagger = ner.RuleTagger{}
	}
	res := TableIResult{}
	for _, p := range TableIPhrases {
		res.Rows = append(res.Rows, ner.Extract(tagger, p))
	}
	return res
}

// String renders the paper's Table I layout.
func (r TableIResult) String() string {
	tb := report.NewTable("Ingredient Phrase", "Name", "State", "Quantity", "Unit", "Temperature", "Dry/Fresh", "Size")
	for i, ex := range r.Rows {
		tb.AddRow(TableIPhrases[i], ex.Name, ex.State, ex.Quantity, ex.Unit, ex.Temp, ex.DryFresh, ex.Size)
	}
	return report.Section("TABLE I. INGREDIENT TAGS EXTRACTION") + tb.String()
}

// ---------------------------------------------------------------------
// Table II — food description examples
// ---------------------------------------------------------------------

// TableIIDescriptions are the nineteen SR descriptions the paper lists.
var TableIIDescriptions = []string{
	"Butter, salted",
	"Butter, whipped, with salt",
	"Butter, without salt",
	"Cheese, blue",
	"Cheese, cottage, creamed, large or small curd",
	"Cheese, mozzarella, whole milk",
	"Milk, reduced fat, fluid, 2% milkfat, with added vitamin A and vitamin D",
	"Milk, reduced fat, fluid, 2% milkfat, with added nonfat milk solids and vitamin A and vitamin D",
	"Milk, reduced fat, fluid, 2% milkfat, protein fortified, with added vitamin A and vitamin D",
	"Milk, indian buffalo, fluid",
	"Milk shakes, thick chocolate",
	"Milk shakes, thick vanilla",
	"Yogurt, plain, whole milk, 8 grams protein per 8 ounce",
	"Yogurt, vanilla, low fat, 11 grams protein per 8 ounce",
	"Egg, whole, raw, fresh",
	"Egg, white, raw, fresh",
	"Egg, yolk, raw, fresh",
	"Apples, raw, with skin",
	"Apples, raw, without skin",
}

// TableIIResult verifies every Table II description exists in the DB.
type TableIIResult struct {
	Rows    []string
	Missing []string
}

// TableII checks the seed database against the paper's example list.
func TableII(db *usda.DB) TableIIResult {
	if db == nil {
		db = usda.Seed()
	}
	have := map[string]bool{}
	for i := 0; i < db.Len(); i++ {
		have[db.At(i).Desc] = true
	}
	res := TableIIResult{Rows: TableIIDescriptions}
	for _, d := range TableIIDescriptions {
		if !have[d] {
			res.Missing = append(res.Missing, d)
		}
	}
	return res
}

func (r TableIIResult) String() string {
	tb := report.NewTable("S.No", "Description")
	for i, d := range r.Rows {
		tb.AddRow(fmt.Sprint(i+1), d)
	}
	out := report.Section("TABLE II. EXAMPLES OF FOOD DESCRIPTION IN USDA-SR DATABASE") + tb.String()
	if len(r.Missing) > 0 {
		out += "\nMISSING FROM SEED DB: " + strings.Join(r.Missing, "; ") + "\n"
	}
	return out
}

// ---------------------------------------------------------------------
// Table III — modified vs vanilla Jaccard inferences
// ---------------------------------------------------------------------

// TableIIIQueries are the paper's Table III ingredient phrases, as
// (name, state) pairs the NER stage would produce.
var TableIIIQueries = []struct {
	Phrase string
	Query  match.Query
}{
	{"1 cup red lentil", match.Query{Name: "red lentils"}},
	{"1 roma tomato , quartered", match.Query{Name: "roma tomato", State: "quartered"}},
	{"1/4 teaspoon ground coriander", match.Query{Name: "coriander", State: "ground"}},
	{"2 tablespoons tomato paste", match.Query{Name: "tomato paste"}},
	{"1 1/4 cups vegetable broth", match.Query{Name: "vegetable broth"}},
	{"1 can fava beans", match.Query{Name: "fava beans"}},
	{"1 teaspoon ground cayenne pepper", match.Query{Name: "cayenne pepper", State: "ground"}},
	{"1 whole chicken with giblets patted dry and quartered", match.Query{Name: "chicken with giblets", State: "quartered"}},
	{"2 tablespoons sesame seeds", match.Query{Name: "sesame seeds"}},
}

// TableIIIRow is one comparison row.
type TableIIIRow struct {
	Phrase, Name, Modified, Vanilla string
	Differs                         bool
}

// TableIIIResult reproduces both the example table and the corpus-wide
// divergence count (the paper: 227 of 1000 sampled phrases differ).
type TableIIIResult struct {
	Rows       []TableIIIRow
	Divergence eval.Divergence
}

// TableIII compares modified and vanilla Jaccard on the paper's examples
// and on sampled corpus queries.
func TableIII(p Params) (TableIIIResult, error) {
	p.fill()
	db := usda.Seed()
	mod := match.NewDefault(db)
	vanOpts := match.DefaultOptions()
	vanOpts.Metric = match.VanillaJaccard
	van := match.New(db, vanOpts)

	var res TableIIIResult
	for _, tq := range TableIIIQueries {
		rm, okM := mod.Match(tq.Query)
		rv, okV := van.Match(tq.Query)
		row := TableIIIRow{Phrase: tq.Phrase, Name: tq.Query.Name}
		if okM {
			row.Modified = rm.Desc
		}
		if okV {
			row.Vanilla = rv.Desc
		}
		row.Differs = okM != okV || (okM && rm.NDB != rv.NDB)
		res.Rows = append(res.Rows, row)
	}

	corpus, err := Corpus(p)
	if err != nil {
		return res, err
	}
	lqs := eval.CorpusQueries(corpus)
	queries := make([]match.Query, 0, 1000)
	for i, lq := range lqs {
		if i >= 1000 {
			break
		}
		queries = append(queries, lq.Query)
	}
	res.Divergence, err = eval.CompareMatchers(mod, van, queries)
	return res, err
}

func (r TableIIIResult) String() string {
	tb := report.NewTable("Ingredient Phrase", "Food Desc. (Modified JI)", "Food Desc. (Vanilla JI)", "Differs")
	for _, row := range r.Rows {
		diff := ""
		if row.Differs {
			diff = "YES"
		}
		tb.AddRow(row.Phrase, row.Modified, row.Vanilla, diff)
	}
	return report.Section("TABLE III. MODIFIED vs VANILLA JACCARD INFERENCES") +
		tb.String() +
		fmt.Sprintf("\nCorpus divergence: %d of %d sampled queries differ (%s) — paper: 227/1000\n",
			r.Divergence.Different, r.Divergence.Compared, report.Pct(r.Divergence.Rate))
}

// ---------------------------------------------------------------------
// Table IV — ingredient and unit relations
// ---------------------------------------------------------------------

// TableIVResult reproduces the butter weight table plus the derived
// teaspoon row the §II-C conversion adds.
type TableIVResult struct {
	Desc            string
	Weights         []usda.Weight
	DerivedTeaspoon float64 // grams per teaspoon via conversion
	TeaspoonKcal    float64
}

// TableIV renders the "Butter, salted" unit relations.
func TableIV() (TableIVResult, error) {
	db := usda.Seed()
	butter, ok := db.ByNDB(1001)
	if !ok {
		return TableIVResult{}, fmt.Errorf("experiments: butter missing from seed")
	}
	e := core.NewDefault()
	ir := e.EstimateIngredient("1 teaspoon butter")
	return TableIVResult{
		Desc:            butter.Desc,
		Weights:         butter.Weights,
		DerivedTeaspoon: ir.Grams,
		TeaspoonKcal:    ir.Profile.EnergyKcal,
	}, nil
}

func (r TableIVResult) String() string {
	tb := report.NewTable("ingredient", "seq", "amount", "unit", "grams", "gram per amount")
	for _, w := range r.Weights {
		tb.AddRow(strings.ReplaceAll(r.Desc, ", ", ","), fmt.Sprint(w.Seq),
			report.F2(w.Amount), w.Unit, report.F2(w.Grams), report.F2(w.GramsPerOne()))
	}
	return report.Section("TABLE IV. INGREDIENT AND UNIT RELATIONS") + tb.String() +
		fmt.Sprintf("\nDerived by conversion (§II-C): 1 teaspoon = %.2f g → %.1f kcal (paper's reference: ≈35 kcal)\n",
			r.DerivedTeaspoon, r.TeaspoonKcal)
}

// ---------------------------------------------------------------------
// Fig. 2 — percentage mapping of recipes to nutritional profile
// ---------------------------------------------------------------------

// Fig2Result is the mapping distribution.
type Fig2Result struct {
	Mapping eval.MappingResult
}

// Fig2 runs the pipeline over the corpus and histograms per-recipe mapped
// fractions.
func Fig2(p Params) (Fig2Result, error) {
	p.fill()
	corpus, err := Corpus(p)
	if err != nil {
		return Fig2Result{}, err
	}
	e, err := newEstimator(p, usda.Seed(), core.Options{})
	if err != nil {
		return Fig2Result{}, err
	}
	e.ObserveUnits(corpus.Phrases())
	m, err := eval.PercentMapping(e, corpus, p.Workers)
	return Fig2Result{Mapping: m}, err
}

func (r Fig2Result) String() string {
	labels := make([]string, 11)
	values := make([]int, 11)
	for i := 0; i <= 10; i++ {
		labels[i] = r.Mapping.Hist.BucketLabel(i)
		values[i] = r.Mapping.Hist.Counts[i]
	}
	return report.Section("FIG. 2. PERCENTAGE MAPPING OF RECIPES TO NUTRITIONAL PROFILE") +
		report.Bar(labels, values, 50) +
		fmt.Sprintf("\nMean mapped fraction: %s; fully mapped recipes: %d of %d\n",
			report.Pct(r.Mapping.MeanMapped), r.Mapping.FullyMapped, r.Mapping.Hist.Total)
}
