// Package units implements the paper's unit-matching machinery (§II-C):
// cleaning noisy unit strings down to a canonical unit, resolving aliases
// ("tbsp" and "tablespoon" are the same unit; so are "pound" and "lb"),
// converting between units through Book-of-Yields-style measurement tables,
// and normalizing quantity expressions ("2-4" → 3, "2 1/2" → 2.5).
//
// String-matching heuristics like §II-B's are deliberately NOT used here —
// the paper observes that with a small closed unit inventory they produce
// "unwanted results due to incorrect matching of strings". Instead the
// pipeline is: lemmatize → take first word → strip non-alphabetic runes →
// alias lookup, which turns `pat (1" sq, 1/3" high)` into the canonical
// unit "pat".
package units

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"nutriprofile/internal/lemma"
	"nutriprofile/internal/textutil"
)

// Kind classifies a canonical unit by the dimension it measures.
type Kind uint8

const (
	// Volume units convert among themselves through the ml lattice.
	Volume Kind = iota
	// Mass units convert among themselves through the gram lattice.
	Mass
	// Size units are the small/medium/large family the paper treats as
	// equivalent "because of ambiguity between sizes".
	Size
	// Count units (clove, slice, can, …) are food-specific: their gram
	// weight comes only from the composition table, never from
	// conversion.
	Count
)

func (k Kind) String() string {
	switch k {
	case Volume:
		return "volume"
	case Mass:
		return "mass"
	case Size:
		return "size"
	case Count:
		return "count"
	}
	return "invalid"
}

// ErrUnknownUnit is returned when a raw string cannot be resolved to any
// canonical unit.
var ErrUnknownUnit = errors.New("units: unknown unit")

// ErrIncompatible is returned when a conversion crosses dimensions
// (volume↔mass) without a food-specific density.
var ErrIncompatible = errors.New("units: incompatible unit kinds")

// def describes one canonical unit.
type def struct {
	kind Kind
	// base is the measure in the kind's base quantity: millilitres for
	// Volume, grams for Mass; zero for Size and Count.
	base float64
}

// canonical maps canonical unit names to their definitions. Volume values
// are US customary measures in millilitres; mass values in grams — the
// constants behind the Book of Yields conversion tables ("1 cup is
// equivalent to 16 tbsp and 48 tsp and so on").
var canonical = map[string]def{
	// volume
	"drop":        {Volume, 0.0513},
	"pinch":       {Volume, 0.308},
	"dash":        {Volume, 0.616},
	"teaspoon":    {Volume, 4.92892},
	"tablespoon":  {Volume, 14.78676},
	"fluid ounce": {Volume, 29.57353},
	"jigger":      {Volume, 44.36029},
	"gill":        {Volume, 118.29412},
	"cup":         {Volume, 236.58824},
	"pint":        {Volume, 473.17647},
	"quart":       {Volume, 946.35295},
	"gallon":      {Volume, 3785.41178},
	"milliliter":  {Volume, 1},
	"centiliter":  {Volume, 10},
	"deciliter":   {Volume, 100},
	"liter":       {Volume, 1000},

	// mass
	"milligram": {Mass, 0.001},
	"gram":      {Mass, 1},
	"kilogram":  {Mass, 1000},
	"ounce":     {Mass, 28.34952},
	"pound":     {Mass, 453.59237},

	// sizes (equivalent per §II-C)
	"small":  {Size, 0},
	"medium": {Size, 0},
	"large":  {Size, 0},

	// counts — weight is food-specific, supplied by the composition table
	"unit":      {Count, 0},
	"clove":     {Count, 0},
	"slice":     {Count, 0},
	"piece":     {Count, 0},
	"can":       {Count, 0},
	"package":   {Count, 0},
	"stick":     {Count, 0},
	"pat":       {Count, 0},
	"head":      {Count, 0},
	"bunch":     {Count, 0},
	"sprig":     {Count, 0},
	"stalk":     {Count, 0},
	"rib":       {Count, 0},
	"leaf":      {Count, 0},
	"ear":       {Count, 0},
	"fillet":    {Count, 0},
	"jar":       {Count, 0},
	"bottle":    {Count, 0},
	"box":       {Count, 0},
	"bag":       {Count, 0},
	"envelope":  {Count, 0},
	"packet":    {Count, 0},
	"scoop":     {Count, 0},
	"loaf":      {Count, 0},
	"sheet":     {Count, 0},
	"cube":      {Count, 0},
	"wedge":     {Count, 0},
	"strip":     {Count, 0},
	"link":      {Count, 0},
	"breast":    {Count, 0},
	"thigh":     {Count, 0},
	"drumstick": {Count, 0},
	"carton":    {Count, 0},
	"container": {Count, 0},
	"square":    {Count, 0},
	"round":     {Count, 0},
	"serving":   {Count, 0},
	"handful":   {Count, 0},
	"knob":      {Count, 0},
	"bulb":      {Count, 0},
	"pod":       {Count, 0},
	"kernel":    {Count, 0},
	"floret":    {Count, 0},
	"spear":     {Count, 0},
	"crown":     {Count, 0},
}

// aliases maps cleaned (lemmatized, alpha-only) spellings to canonical
// unit names. Lookup happens after cleaning, so plural and punctuated
// variants do not need their own rows.
var aliases = map[string]string{
	"tsp":           "teaspoon",
	"teaspoonful":   "teaspoon",
	"tbsp":          "tablespoon",
	"tbs":           "tablespoon",
	"tbl":           "tablespoon",
	"tablespoonful": "tablespoon",
	"c":             "cup",
	"floz":          "fluid ounce",
	"fluidounce":    "fluid ounce",
	"fl":            "fluid ounce",
	"pt":            "pint",
	"qt":            "quart",
	"gal":           "gallon",
	"ml":            "milliliter",
	"millilitre":    "milliliter",
	"cl":            "centiliter",
	"dl":            "deciliter",
	"l":             "liter",
	"litre":         "liter",
	"mg":            "milligram",
	"g":             "gram",
	"gm":            "gram",
	"gr":            "gram",
	"kg":            "kilogram",
	"kilo":          "kilogram",
	"oz":            "ounce",
	"lb":            "pound",
	"pd":            "pound",
	"pkg":           "package",
	"pack":          "package",
	"env":           "envelope",
	"md":            "medium",
	"med":           "medium",
	"sm":            "small",
	"lg":            "large",
	"ctn":           "carton",
	"cn":            "can",
	"tin":           "can",
	"stalks":        "stalk",
	"filet":         "fillet",
	"whole":         "unit",
	"item":          "unit",
	"each":          "unit",
	"count":         "unit",
	"fruit":         "unit",
	"chunk":         "piece",
	"segment":       "piece",
	"section":       "piece",
	"splash":        "dash",
	"smidgen":       "pinch",
	// Count nouns that SR weight tables use as their own units
	// ("1 bagel", "1 fig"). Mapping them to the generic count unit makes
	// those rows resolvable.
	"bagel":     "unit",
	"muffin":    "unit",
	"croissant": "unit",
	"doughnut":  "unit",
	"pita":      "unit",
	"cookie":    "unit",
	"cracker":   "unit",
	"biscuit":   "unit",
	"pancake":   "unit",
	"waffle":    "unit",
	"roll":      "unit",
	"fig":       "unit",
	"date":      "unit",
	"mushroom":  "unit",
	"cap":       "unit",
	"leek":      "unit",
	"pickle":    "unit",
	"olive":     "unit",
	"pepper":    "unit",
	"tortilla":  "piece",
	"sandwich":  "unit",
	"taco":      "unit",
	"burrito":   "unit",
	"bar":       "unit",
}

// Clean reduces a raw unit string to its cleaned token: lemmatize the
// first word, then strip everything non-alphabetic. This is the exact
// §II-C pipeline (`pat (1" sq, 1/3" high)` → "pat", "cups" → "cup").
func Clean(raw string) string {
	first := textutil.FirstWord(raw)
	if first == "" {
		return ""
	}
	return textutil.StripNonAlpha(lemma.Word(first))
}

// Normalize resolves a raw unit string to its canonical unit name.
// The second return reports whether the unit is known.
func Normalize(raw string) (string, bool) {
	return lookupUnit(Clean(raw))
}

// lookupUnit resolves a cleaned spelling through the canonical and alias
// tables. Unknown non-empty spellings are returned as-is with ok=false,
// mirroring Normalize's historical contract.
func lookupUnit(c string) (string, bool) {
	if c == "" {
		return "", false
	}
	if _, ok := canonical[c]; ok {
		return c, true
	}
	if target, ok := aliases[c]; ok {
		return target, true
	}
	return c, false
}

// CleanToken is Clean for a single token as Tokenize emits them. Tokens
// re-tokenize to themselves, so FirstWord(tok) is tok itself when it is a
// word token and "" otherwise — this skips the re-tokenization Clean pays
// on arbitrary strings.
func CleanToken(tok string) string {
	if !textutil.IsWordToken(tok) {
		return ""
	}
	return textutil.StripNonAlpha(lemma.Word(tok))
}

// CleanTokenLemma is CleanToken when the caller has already lemmatized
// the token (the phrase lemma pass produces every token's noun lemma):
// the cached lemma is plumbed through instead of recomputing it.
func CleanTokenLemma(tok, lem string) string {
	if !textutil.IsWordToken(tok) {
		return ""
	}
	return textutil.StripNonAlpha(lem)
}

// NormalizeToken is Normalize for a single Tokenize-emitted token.
func NormalizeToken(tok string) (string, bool) {
	return lookupUnit(CleanToken(tok))
}

// NormalizeTokenLemma is NormalizeToken with the token's noun lemma
// supplied by the caller, avoiding a redundant lemmatization when the
// phrase pipeline has already produced it.
func NormalizeTokenLemma(tok, lem string) (string, bool) {
	return lookupUnit(CleanTokenLemma(tok, lem))
}

// MustKind returns the Kind of a canonical unit name; it panics on unknown
// names and is intended for static tables in this module.
func MustKind(name string) Kind {
	d, ok := canonical[name]
	if !ok {
		panic(fmt.Sprintf("units: %q is not canonical", name))
	}
	return d.kind
}

// KindOf returns the Kind of a canonical unit name.
func KindOf(name string) (Kind, error) {
	d, ok := canonical[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownUnit, name)
	}
	return d.kind, nil
}

// IsKnown reports whether name is a canonical unit name.
func IsKnown(name string) bool {
	_, ok := canonical[name]
	return ok
}

// Equivalent reports whether two canonical units should be treated as the
// same for table joining. Identical names are equivalent, and so are any
// two Size units (§II-C: small, medium and large "were considered
// equivalent because of ambiguity between sizes").
func Equivalent(a, b string) bool {
	if a == b {
		return true
	}
	da, ok1 := canonical[a]
	db, ok2 := canonical[b]
	return ok1 && ok2 && da.kind == Size && db.kind == Size
}

// Convert converts amount from one canonical unit to another within the
// same dimension: Convert(1, "cup", "tablespoon") = 16. Size and Count
// units have no intrinsic measure and cannot be converted.
func Convert(amount float64, from, to string) (float64, error) {
	df, ok := canonical[from]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownUnit, from)
	}
	dt, ok := canonical[to]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownUnit, to)
	}
	if df.kind != dt.kind || df.base == 0 || dt.base == 0 {
		return 0, fmt.Errorf("%w: %s (%s) → %s (%s)", ErrIncompatible, from, df.kind, to, dt.kind)
	}
	return amount * df.base / dt.base, nil
}

// Ratio returns how many `to` units make one `from` unit.
func Ratio(from, to string) (float64, error) { return Convert(1, from, to) }

// Grams converts an amount of a Mass unit directly to grams.
func Grams(amount float64, unit string) (float64, error) {
	return Convert(amount, unit, "gram")
}

// Milliliters converts an amount of a Volume unit directly to millilitres.
func Milliliters(amount float64, unit string) (float64, error) {
	return Convert(amount, unit, "milliliter")
}

// Canonical returns the sorted list of canonical unit names of a given
// kind (for table generation and tests).
func Canonical(kind Kind) []string {
	var out []string
	for name, d := range canonical {
		if d.kind == kind {
			out = append(out, name)
		}
	}
	sortStrings(out)
	return out
}

// AllCanonical returns every canonical unit name, sorted.
func AllCanonical() []string {
	out := make([]string, 0, len(canonical))
	for name := range canonical {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// FindInPhrase scans a tokenized ingredient phrase for the first token
// that resolves to a known unit. The paper uses this as the recovery path
// when NER fails to detect a unit ("we searched the ingredient phrase for
// known units and if found they were updated").
func FindInPhrase(tokens []string) (canonicalName string, index int, ok bool) {
	for i, t := range tokens {
		if name, known := Normalize(t); known {
			return name, i, true
		}
	}
	return "", -1, false
}

// wordNumbers spells out the small cardinals that recipes write as words.
var wordNumbers = map[string]float64{
	"a": 1, "an": 1, "one": 1, "two": 2, "three": 3, "four": 4,
	"five": 5, "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
	"eleven": 11, "twelve": 12, "dozen": 12, "half": 0.5, "quarter": 0.25,
	"couple": 2, "few": 3, "several": 3,
}

// ParseQuantity normalizes a quantity expression to a single number,
// reproducing §II-C: "'2-4' was averaged to 3, '2 1/2' was converted to
// 2.5 and so on". Accepted forms: integers, decimals, fractions "1/2",
// mixed numbers "2 1/2", ranges "2-4" (averaged, also with fraction
// endpoints), unicode fractions, and small word numbers ("a", "one",
// "half", "dozen").
func ParseQuantity(raw string) (float64, error) {
	raw = strings.TrimSpace(textutil.ExpandFractions(raw))
	if raw == "" {
		return 0, errors.New("units: empty quantity")
	}
	// Split into lower-cased fields without the strings.Fields +
	// strings.ToLower allocations: quantities are short, so the fields
	// live in a stack array (append spills transparently past 8). Folding
	// per field is identical to folding the whole string because case
	// mapping never creates or destroys whitespace.
	var arr [8]string
	fields := appendFieldsLower(arr[:0], raw)

	// Word numbers: "a", "one", "half", "one dozen".
	if v, ok := wordNumbers[fields[0]]; ok {
		if len(fields) == 2 {
			if w, ok2 := wordNumbers[fields[1]]; ok2 {
				return v * w, nil // "one dozen" = 12
			}
		}
		if len(fields) == 1 {
			return v, nil
		}
	}

	// "N to M" spelled ranges become "N-M".
	if len(fields) == 3 && (fields[1] == "to" || fields[1] == "-" || fields[1] == "or") {
		fields[0] = fields[0] + "-" + fields[2]
		fields = fields[:1]
	}

	// Mixed number: "2 1/2".
	if len(fields) == 2 && strings.Contains(fields[1], "/") {
		whole, err1 := parseSimple(fields[0])
		frac, err2 := parseSimple(fields[1])
		if err1 == nil && err2 == nil {
			return whole + frac, nil
		}
	}

	if len(fields) != 1 {
		// Take the first parseable field ("3 heaping" → 3).
		for _, f := range fields {
			if v, err := parseSimple(f); err == nil {
				return v, nil
			}
		}
		return 0, fmt.Errorf("units: unparseable quantity %q", raw)
	}
	return parseSimple(fields[0])
}

// ParseServings extracts the serving count from a recipe's servings text
// ("6", "Serves 4", "4 servings", "makes 12", "4-6 servings"). clean
// reports whether the count is well-defined — a single unambiguous
// integer — the selection criterion of the paper's calorie evaluation
// ("clean, well-defined servings"). Ranges parse to their rounded average
// with clean=false; text without any number returns ok=false.
func ParseServings(s string) (n int, clean, ok bool) {
	fields := strings.Fields(strings.ToLower(textutil.ExpandFractions(s)))
	var values []float64
	ranged := false
	for _, f := range fields {
		f = strings.Trim(f, ".,;:!()")
		if f == "" {
			continue
		}
		if v, err := parseSimple(f); err == nil {
			values = append(values, v)
			if strings.ContainsAny(f, "-/.") {
				ranged = true
			}
		}
	}
	if len(values) == 0 {
		return 0, false, false
	}
	v := values[0]
	n = int(math.Round(v))
	if n < 1 {
		n = 1
	}
	clean = len(values) == 1 && !ranged && v == math.Trunc(v)
	return n, clean, true
}

// appendFieldsLower appends the whitespace-separated fields of s to dst,
// each lower-cased. Equivalent to strings.Fields(strings.ToLower(s)) but
// allocation-free when every field is already lower-case and dst has
// capacity.
func appendFieldsLower(dst []string, s string) []string {
	i := 0
	for i < len(s) {
		r, size := utf8.DecodeRuneInString(s[i:])
		if unicode.IsSpace(r) {
			i += size
			continue
		}
		j := i + size
		for j < len(s) {
			r2, sz := utf8.DecodeRuneInString(s[j:])
			if unicode.IsSpace(r2) {
				break
			}
			j += sz
		}
		dst = append(dst, lowerField(s[i:j]))
		i = j
	}
	return dst
}

// lowerField lower-cases one field, returning it unchanged (no alloc)
// when it contains no ASCII upper-case byte and no multi-byte rune.
func lowerField(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf || ('A' <= s[i] && s[i] <= 'Z') {
			return strings.ToLower(s)
		}
	}
	return s
}

// parseSimple handles one token: number, decimal, fraction or range.
func parseSimple(tok string) (float64, error) {
	// Range "2-4" (but not a leading negative sign).
	if i := strings.IndexByte(tok, '-'); i > 0 {
		lo, err1 := parseSimple(tok[:i])
		hi, err2 := parseSimple(tok[i+1:])
		if err1 == nil && err2 == nil {
			return (lo + hi) / 2, nil
		}
	}
	// Fraction "1/2".
	if i := strings.IndexByte(tok, '/'); i > 0 {
		num, err1 := strconv.ParseFloat(tok[:i], 64)
		den, err2 := strconv.ParseFloat(tok[i+1:], 64)
		if err1 == nil && err2 == nil && den != 0 {
			return num / den, nil
		}
		return 0, fmt.Errorf("units: bad fraction %q", tok)
	}
	v, err := strconv.ParseFloat(tok, 64)
	// ParseFloat accepts "nan" and "inf" spellings; quantities must be
	// finite and non-negative.
	if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("units: bad number %q", tok)
	}
	return v, nil
}
