package units

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6*math.Max(1, math.Abs(b)) }

func TestClean(t *testing.T) {
	cases := []struct{ in, want string }{
		{`pat (1" sq, 1/3" high)`, "pat"},
		{"cups", "cup"},
		{"tablespoons", "tablespoon"},
		{"Tbsp.", "tbsp"},
		{"fl oz", "fl"},
		{"", ""},
		{"1 cup", "cup"},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeAliases(t *testing.T) {
	cases := []struct {
		in, want string
		known    bool
	}{
		{"tbsp", "tablespoon", true},
		{"tablespoon", "tablespoon", true},
		{"tablespoons", "tablespoon", true},
		{"tbsps", "tablespoon", true},
		{"tsp", "teaspoon", true},
		{"lb", "pound", true},
		{"lbs", "pound", true},
		{"pound", "pound", true},
		{"g", "gram", true},
		{"grams", "gram", true},
		{"oz", "ounce", true},
		{"ml", "milliliter", true},
		{"pkg", "package", true},
		{"cloves", "clove", true},
		{`pat (1" sq, 1/3" high)`, "pat", true},
		{"small", "small", true},
		{"frobnitz", "frobnitz", false},
		{"", "", false},
	}
	for _, c := range cases {
		got, known := Normalize(c.in)
		if got != c.want || known != c.known {
			t.Errorf("Normalize(%q) = (%q,%v), want (%q,%v)", c.in, got, known, c.want, c.known)
		}
	}
}

func TestBookOfYieldsRatios(t *testing.T) {
	// The conversions the paper quotes: "1 cup is equivalent to 16 tbsp
	// and 48 tsp and so on".
	cases := []struct {
		from, to string
		want     float64
	}{
		{"cup", "tablespoon", 16},
		{"cup", "teaspoon", 48},
		{"tablespoon", "teaspoon", 3},
		{"pint", "cup", 2},
		{"quart", "pint", 2},
		{"gallon", "quart", 4},
		{"pound", "ounce", 16},
		{"kilogram", "gram", 1000},
		{"liter", "milliliter", 1000},
		{"cup", "fluid ounce", 8},
	}
	for _, c := range cases {
		got, err := Ratio(c.from, c.to)
		if err != nil {
			t.Fatalf("Ratio(%s→%s): %v", c.from, c.to, err)
		}
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("Ratio(%s→%s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestConvertIncompatible(t *testing.T) {
	if _, err := Convert(1, "cup", "gram"); !errors.Is(err, ErrIncompatible) {
		t.Errorf("cup→gram err = %v, want ErrIncompatible", err)
	}
	if _, err := Convert(1, "clove", "cup"); !errors.Is(err, ErrIncompatible) {
		t.Errorf("clove→cup err = %v, want ErrIncompatible", err)
	}
	if _, err := Convert(1, "small", "large"); !errors.Is(err, ErrIncompatible) {
		t.Errorf("small→large err = %v, want ErrIncompatible (no intrinsic measure)", err)
	}
	if _, err := Convert(1, "nope", "cup"); !errors.Is(err, ErrUnknownUnit) {
		t.Errorf("unknown err = %v, want ErrUnknownUnit", err)
	}
}

func TestEquivalentSizes(t *testing.T) {
	// §II-C: small, medium, large considered equivalent.
	for _, pair := range [][2]string{{"small", "medium"}, {"medium", "large"}, {"small", "large"}} {
		if !Equivalent(pair[0], pair[1]) {
			t.Errorf("Equivalent(%s,%s) = false, want true", pair[0], pair[1])
		}
	}
	if Equivalent("cup", "tablespoon") {
		t.Error("cup and tablespoon must not be equivalent")
	}
	if !Equivalent("cup", "cup") {
		t.Error("identity equivalence failed")
	}
}

func TestGramsAndMilliliters(t *testing.T) {
	if g, err := Grams(2, "pound"); err != nil || !approx(g, 907.18474) {
		t.Errorf("Grams(2, pound) = %v, %v", g, err)
	}
	if ml, err := Milliliters(0.5, "cup"); err != nil || !approx(ml, 118.29412) {
		t.Errorf("Milliliters(0.5, cup) = %v, %v", ml, err)
	}
}

func TestParseQuantity(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"2", 2},
		{"2.5", 2.5},
		{"1/2", 0.5},
		{"2 1/2", 2.5}, // §II-C example
		{"2-4", 3},     // §II-C example: averaged
		{"1-2", 1.5},
		{"2 to 4", 3},
		{"1/2-3/4", 0.625},
		{"½", 0.5},
		{"1½", 1.5},
		{"a", 1},
		{"one", 1},
		{"half", 0.5},
		{"dozen", 12},
		{"one dozen", 12},
		{"two", 2},
		{"3 heaping", 3},
		{"500", 500},
	}
	for _, c := range cases {
		got, err := ParseQuantity(c.in)
		if err != nil {
			t.Fatalf("ParseQuantity(%q): %v", c.in, err)
		}
		if !approx(got, c.want) {
			t.Errorf("ParseQuantity(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseQuantityErrors(t *testing.T) {
	for _, in := range []string{"", "   ", "abc", "/2", "x-y"} {
		if _, err := ParseQuantity(in); err == nil {
			t.Errorf("ParseQuantity(%q) succeeded, want error", in)
		}
	}
}

func TestParseServings(t *testing.T) {
	cases := []struct {
		in    string
		n     int
		clean bool
		ok    bool
	}{
		{"4", 4, true, true},
		{"Serves 4", 4, true, true},
		{"4 servings", 4, true, true},
		{"serves 6.", 6, true, true},
		{"4-6 servings", 5, false, true},
		{"makes 12", 12, true, true},
		{"Serves 2 to 4", 2, false, true},
		{"several", 0, false, false},
		{"", 0, false, false},
		{"2.5 servings", 3, false, true},
	}
	for _, c := range cases {
		n, clean, ok := ParseServings(c.in)
		if n != c.n || clean != c.clean || ok != c.ok {
			t.Errorf("ParseServings(%q) = (%d,%v,%v), want (%d,%v,%v)",
				c.in, n, clean, ok, c.n, c.clean, c.ok)
		}
	}
}

func TestFindInPhrase(t *testing.T) {
	name, idx, ok := FindInPhrase([]string{"500", "g", "or", "1", "cup", "flour"})
	if !ok || name != "gram" || idx != 1 {
		t.Errorf("FindInPhrase = (%q,%d,%v), want (gram,1,true)", name, idx, ok)
	}
	_, _, ok = FindInPhrase([]string{"nothing", "here"})
	if ok {
		t.Error("FindInPhrase found a unit in unitless phrase")
	}
}

func TestCanonicalInventory(t *testing.T) {
	vol := Canonical(Volume)
	if len(vol) < 10 {
		t.Errorf("volume inventory too small: %v", vol)
	}
	mass := Canonical(Mass)
	if len(mass) != 5 {
		t.Errorf("mass inventory = %v, want 5 units", mass)
	}
	sizes := Canonical(Size)
	if len(sizes) != 3 {
		t.Errorf("size inventory = %v, want small/medium/large", sizes)
	}
	all := AllCanonical()
	if len(all) != len(vol)+len(mass)+len(sizes)+len(Canonical(Count)) {
		t.Error("AllCanonical does not partition by kind")
	}
	// Sorted.
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("AllCanonical not sorted at %d: %q >= %q", i, all[i-1], all[i])
		}
	}
}

func TestKindOf(t *testing.T) {
	cases := []struct {
		name string
		want Kind
	}{
		{"cup", Volume}, {"gram", Mass}, {"small", Size}, {"clove", Count},
	}
	for _, c := range cases {
		got, err := KindOf(c.name)
		if err != nil || got != c.want {
			t.Errorf("KindOf(%q) = (%v,%v), want %v", c.name, got, err, c.want)
		}
	}
	if _, err := KindOf("blorp"); err == nil {
		t.Error("KindOf(blorp) succeeded")
	}
}

func TestMustKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustKind on unknown unit did not panic")
		}
	}()
	MustKind("blorp")
}

// Property: conversion round-trips are the identity within the same kind.
func TestConvertRoundTrip(t *testing.T) {
	vols := Canonical(Volume)
	f := func(amt float64, i, j uint8) bool {
		if math.IsNaN(amt) || math.IsInf(amt, 0) || math.Abs(amt) > 1e12 {
			return true
		}
		from := vols[int(i)%len(vols)]
		to := vols[int(j)%len(vols)]
		there, err1 := Convert(amt, from, to)
		back, err2 := Convert(there, to, from)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(back-amt) <= 1e-9*math.Max(1, math.Abs(amt))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: conversion is multiplicative — A→B→C equals A→C.
func TestConvertTransitive(t *testing.T) {
	vols := Canonical(Volume)
	f := func(i, j, k uint8) bool {
		a, b, c := vols[int(i)%len(vols)], vols[int(j)%len(vols)], vols[int(k)%len(vols)]
		ab, _ := Ratio(a, b)
		bc, _ := Ratio(b, c)
		ac, _ := Ratio(a, c)
		return math.Abs(ab*bc-ac) <= 1e-9*math.Max(1, ac)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ParseQuantity never returns a negative quantity.
func TestParseQuantityNonNegative(t *testing.T) {
	f := func(s string) bool {
		v, err := ParseQuantity(s)
		return err != nil || v >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkNormalize(b *testing.B) {
	ins := []string{"tbsp", "cups", `pat (1" sq, 1/3" high)`, "lbs", "teaspoons"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Normalize(ins[i%len(ins)])
	}
}

func BenchmarkParseQuantity(b *testing.B) {
	ins := []string{"2 1/2", "2-4", "1/2", "3", "½"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ParseQuantity(ins[i%len(ins)]) //nolint:errcheck
	}
}
