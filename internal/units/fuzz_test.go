package units

import (
	"math"
	"testing"
)

func FuzzParseQuantity(f *testing.F) {
	for _, seed := range []string{
		"2 1/2", "2-4", "1/2", "½", "one dozen", "3 heaping",
		"", "abc", "-1", "1/0", "1e309", "999999999999999999999",
		"2 to 4", "0.0001",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseQuantity(s)
		if err != nil {
			return
		}
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("ParseQuantity(%q) = %v without error", s, v)
		}
	})
}

func FuzzParseServings(f *testing.F) {
	for _, seed := range []string{
		"4", "Serves 4", "4-6 servings", "makes 12 cookies", "", "a few",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, clean, ok := ParseServings(s)
		if !ok && (n != 0 || clean) {
			t.Fatalf("ParseServings(%q): ok=false but n=%d clean=%v", s, n, clean)
		}
		if ok && n < 1 {
			t.Fatalf("ParseServings(%q) = %d < 1", s, n)
		}
	})
}

func FuzzNormalize(f *testing.F) {
	for _, seed := range []string{
		"tbsp", "cups", `pat (1" sq, 1/3" high)`, "", "123", "fl oz",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		name, known := Normalize(s)
		if known && !IsKnown(name) {
			t.Fatalf("Normalize(%q) returned unknown canonical %q", s, name)
		}
	})
}
