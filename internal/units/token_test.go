package units

import (
	"testing"
	"testing/quick"

	"nutriprofile/internal/lemma"
	"nutriprofile/internal/textutil"
)

// checkTokenEquivalence asserts the single-token fast paths —
// NormalizeToken and NormalizeTokenLemma with the phrase pass's cached
// lemma — agree with Normalize. Known-ness must always agree; the name
// must agree whenever the unit is known (unknown names are never
// consumed, and inputs that are not Tokenize-emitted tokens, like the
// "<s>" sentinel, legitimately clean differently when unknown).
func checkTokenEquivalence(t *testing.T, tok string) {
	t.Helper()
	wantName, wantKnown := Normalize(tok)
	if gotName, gotKnown := NormalizeToken(tok); gotKnown != wantKnown || (wantKnown && gotName != wantName) {
		t.Errorf("NormalizeToken(%q) = (%q, %v), want (%q, %v)",
			tok, gotName, gotKnown, wantName, wantKnown)
	}
	if gotName, gotKnown := NormalizeTokenLemma(tok, lemma.Word(tok)); gotKnown != wantKnown || (wantKnown && gotName != wantName) {
		t.Errorf("NormalizeTokenLemma(%q, Word) = (%q, %v), want (%q, %v)",
			tok, gotName, gotKnown, wantName, wantKnown)
	}
}

// TestNormalizeTokenEquivalence sweeps the full canonical + alias
// inventory (singular and pluralized spellings) plus the NER sentinels —
// the regression gate for the units re-lemmatization fix: plumbing the
// phrase pass's lemma through must never change a resolution.
func TestNormalizeTokenEquivalence(t *testing.T) {
	var toks []string
	for c := range canonical {
		toks = append(toks, c, c+"s")
	}
	for a := range aliases {
		toks = append(toks, a, a+"s")
	}
	toks = append(toks,
		"<s>", "</s>", "", ",", "(", ")", "1", "1/2", "2-4", "%",
		"flour", "butter", "tomatoes", "berries", "all-purpose",
	)
	for _, tok := range toks {
		checkTokenEquivalence(t, tok)
	}
}

// TestNormalizeTokenEquivalenceFuzz extends the sweep to arbitrary
// input: every token Tokenize emits must resolve identically through
// all three entry points.
func TestNormalizeTokenEquivalenceFuzz(t *testing.T) {
	check := func(s string) bool {
		for _, tok := range textutil.Tokenize(s) {
			wantName, wantKnown := Normalize(tok)
			gotName, gotKnown := NormalizeToken(tok)
			if gotName != wantName || gotKnown != wantKnown {
				t.Logf("NormalizeToken(%q) = (%q, %v), want (%q, %v)",
					tok, gotName, gotKnown, wantName, wantKnown)
				return false
			}
			gotName, gotKnown = NormalizeTokenLemma(tok, lemma.Word(tok))
			if gotName != wantName || gotKnown != wantKnown {
				t.Logf("NormalizeTokenLemma(%q) = (%q, %v), want (%q, %v)",
					tok, gotName, gotKnown, wantName, wantKnown)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
