package instructions

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nutriprofile/internal/yield"
)

func TestGenerateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	steps := Generate([]string{"onion", "garlic", "beef"}, yield.Fried, rng)
	if len(steps) < 3 || len(steps) > 4 {
		t.Fatalf("step count = %d, want 3-4: %v", len(steps), steps)
	}
	for _, s := range steps {
		if s == "" || strings.Contains(s, "%") {
			t.Errorf("malformed step %q", s)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate([]string{"milk"}, yield.Baked, rand.New(rand.NewSource(5)))
	b := Generate([]string{"milk"}, yield.Baked, rand.New(rand.NewSource(5)))
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Error("instructions not deterministic for fixed seed")
	}
}

func TestGenerateEmptyIngredients(t *testing.T) {
	steps := Generate(nil, yield.Boiled, rand.New(rand.NewSource(2)))
	if len(steps) < 2 {
		t.Fatalf("want cooking+finish steps, got %v", steps)
	}
}

// TestRoundTrip is the load-bearing property: the method rendered into
// instructions must be recoverable by InferMethod.
func TestRoundTrip(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		m := yield.Method(raw % uint8(yield.NMethods))
		rng := rand.New(rand.NewSource(seed))
		steps := Generate([]string{"onion", "carrot"}, m, rng)
		got := InferMethod(steps)
		if m == yield.None {
			return got == yield.None
		}
		return got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInferMethodFreeText(t *testing.T) {
	cases := map[string]yield.Method{
		"Preheat the oven to 350F. Bake until golden.":            yield.Baked,
		"Bring to a boil, then simmer gently for 20 minutes.":     yield.Boiled,
		"Grill the skewers 4 minutes per side.":                   yield.Grilled,
		"Saute the onions, then stir-fry the vegetables briskly.": yield.Fried,
		"Mix and chill. Serve cold.":                              yield.None,
		"Braise in the covered pot for two hours.":                yield.Stewed,
		"": yield.None,
	}
	for text, want := range cases {
		if got := InferMethod([]string{text}); got != want {
			t.Errorf("InferMethod(%q) = %v, want %v", text, got, want)
		}
	}
}

func TestInferMethodCountsAllSteps(t *testing.T) {
	steps := []string{
		"Boil the pasta.",           // one boil hit
		"Fry the bacon.",            // one fry hit
		"Fry the onions in grease.", // second fry hit → fried wins
	}
	if got := InferMethod(steps); got != yield.Fried {
		t.Errorf("InferMethod = %v, want fried", got)
	}
}
