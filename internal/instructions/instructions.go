// Package instructions models the cooking-instructions section of a
// recipe. RecipeDB stores instructions alongside ingredients; the paper's
// pipeline consumes only the ingredient section, but instructions carry
// the cooking method — the signal the yield extension (internal/yield)
// needs. This package renders templated instruction text from a recipe's
// structure and infers the cooking method back out of free text.
package instructions

import (
	"fmt"
	"math/rand"
	"strings"

	"nutriprofile/internal/yield"
)

// methodVerbs maps each cooking method to the instruction verbs that
// signal it, in decreasing specificity. Inference counts weighted hits.
var methodVerbs = map[yield.Method][]string{
	yield.Boiled:  {"boil", "simmer", "blanch", "parboil"},
	yield.Steamed: {"steam"},
	yield.Baked:   {"bake", "oven", "preheat"},
	yield.Roasted: {"roast"},
	yield.Fried:   {"fry", "saute", "sauté", "sear", "stir-fry", "skillet"},
	yield.Grilled: {"grill", "barbecue", "broil"},
	yield.Stewed:  {"stew", "braise", "slow-cook", "slow cooker"},
}

// prepTemplates render preparation steps from ingredient names.
var prepTemplates = []string{
	"Prepare the %s and set aside.",
	"Measure out the %s.",
	"Combine the %s in a large bowl.",
	"Season the %s to taste.",
}

// cookTemplates render the method-bearing step.
var cookTemplates = map[yield.Method][]string{
	yield.None: {
		"Toss everything together and serve chilled.",
		"Arrange on a platter and serve immediately.",
	},
	yield.Boiled: {
		"Bring a large pot of water to a boil and simmer for %d minutes.",
		"Boil gently until tender, about %d minutes.",
	},
	yield.Steamed: {
		"Steam in a covered basket for %d minutes.",
		"Place in a steamer and steam until just done, %d minutes.",
	},
	yield.Baked: {
		"Preheat the oven to 180C and bake for %d minutes.",
		"Bake in the preheated oven until golden, about %d minutes.",
	},
	yield.Roasted: {
		"Roast at 200C for %d minutes, turning once.",
		"Roast until browned and fragrant, about %d minutes.",
	},
	yield.Fried: {
		"Heat oil in a skillet and fry for %d minutes.",
		"Stir-fry over high heat for %d minutes.",
		"Saute until softened, about %d minutes.",
	},
	yield.Grilled: {
		"Grill over medium-high heat for %d minutes per side.",
		"Broil close to the heat for %d minutes.",
	},
	yield.Stewed: {
		"Cover and stew on low heat for %d minutes.",
		"Braise, covered, until fork-tender, about %d minutes.",
	},
}

var finishTemplates = []string{
	"Adjust seasoning and serve.",
	"Garnish and serve warm.",
	"Let rest for a few minutes before serving.",
	"Serve with the remaining ingredients on the side.",
}

// Generate renders a deterministic instruction list for a recipe: one or
// two preparation steps over the given ingredient names, one
// method-bearing cooking step, and a finishing step.
func Generate(ingredientNames []string, method yield.Method, rng *rand.Rand) []string {
	var steps []string
	if len(ingredientNames) > 0 {
		n := 1 + rng.Intn(2)
		for i := 0; i < n && i < len(ingredientNames); i++ {
			tpl := prepTemplates[rng.Intn(len(prepTemplates))]
			steps = append(steps, fmt.Sprintf(tpl, ingredientNames[rng.Intn(len(ingredientNames))]))
		}
	}
	cooks := cookTemplates[method]
	if len(cooks) == 0 {
		cooks = cookTemplates[yield.None]
	}
	tpl := cooks[rng.Intn(len(cooks))]
	if strings.Contains(tpl, "%d") {
		steps = append(steps, fmt.Sprintf(tpl, 5+rng.Intn(40)))
	} else {
		steps = append(steps, tpl)
	}
	steps = append(steps, finishTemplates[rng.Intn(len(finishTemplates))])
	return steps
}

// InferMethod scans instruction text for method-bearing verbs and returns
// the method with the most hits; ties and no-hits return yield.None.
// It is the instructions-based counterpart of yield.InferFromTitle and is
// generally more reliable: recipe titles often omit the method, but the
// cooking step almost never does.
func InferMethod(steps []string) yield.Method {
	text := strings.ToLower(strings.Join(steps, " "))
	best, bestHits := yield.None, 0
	for m := yield.Method(1); m < yield.NMethods; m++ {
		hits := 0
		for _, verb := range methodVerbs[m] {
			hits += strings.Count(text, verb)
		}
		if hits > bestHits {
			best, bestHits = m, hits
		}
	}
	return best
}
