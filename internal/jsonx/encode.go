// Package jsonx is the serving layer's pooled JSON codec: append-style
// encoders whose output is byte-for-byte identical to encoding/json's
// default (HTML-escaping) marshaler, a zero-allocation pull decoder for
// the small request shapes the API accepts, and a buffer pool so a warm
// handler neither allocates a response buffer nor walks reflection
// metadata per request.
//
// encoding/json is the executable specification: every primitive here is
// pinned to it by differential tests (strings across the escaping
// classes, floats across the exponent-format switchover), and the
// serving layer pins whole response bodies against json.Marshal over the
// golden corpus. The decoder matches encoding/json's *semantics* for the
// request shapes (null handling, unknown-field rejection, last-duplicate
// wins, one value read with trailing bytes ignored) but reports its own
// error strings — error text is not part of the API contract, only the
// structured error code is.
package jsonx

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// AppendString appends s as a JSON string literal, byte-identical to
// encoding/json with its default EscapeHTML(true) behavior: ", \ and
// control bytes are escaped (\b \f \n \r \t named, the rest \u00xx),
// <, > and & become their \u00xx escapes, invalid UTF-8 bytes are
// replaced with U+FFFD, and U+2028/U+2029 are escaped for JSONP safety.
func AppendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// AppendFloat appends f in encoding/json's float64 notation: shortest
// 'f' form in [1e-6, 1e21), 'e' form outside with the exponent's leading
// zero stripped (1e-07 → 1e-7). f must be finite — encoding/json refuses
// NaN/Inf with an error, and the serving layer's profiles are validated
// finite, so this appender has no error path.
func AppendFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// AppendInt appends v in base 10.
func AppendInt(b []byte, v int64) []byte { return strconv.AppendInt(b, v, 10) }

// AppendBool appends true or false.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// Buffer is a pooled byte buffer. Use B with the append-style encoders
// and store the grown slice back before Put, so capacity survives the
// round trip through the pool.
type Buffer struct {
	B []byte
}

// maxPooledBuffer caps the capacity a buffer may carry back into the
// pool; one pathological response must not pin megabytes forever.
const maxPooledBuffer = 1 << 20

var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 4096)} }}

// GetBuffer checks a buffer out of the pool with length reset to zero.
func GetBuffer() *Buffer {
	buf := bufPool.Get().(*Buffer)
	buf.B = buf.B[:0]
	return buf
}

// PutBuffer returns a buffer to the pool. Oversized buffers are dropped
// instead of pooled.
func PutBuffer(buf *Buffer) {
	if cap(buf.B) > maxPooledBuffer {
		return
	}
	bufPool.Put(buf)
}
