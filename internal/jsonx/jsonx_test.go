package jsonx

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestAppendStringMatchesEncodingJSON pins AppendString byte-for-byte
// against json.Marshal across every escaping class the encoder
// branches on.
func TestAppendStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"",
		"plain ascii",
		"2 cups flour",
		`quote " backslash \ slash /`,
		"control \b \f \n \r \t",
		"low controls \x00\x01\x1f",
		"html <b>&amp;</b> >",
		"unicode crème brûlée 漢字 émincé",
		"astral \U0001F35E bread emoji",
		"line sep   para sep  ",
		"invalid utf8 \xff\xfe trailing",
		"truncated rune \xe2\x82",
		"lone continuation \x80",
		"mixed \xffvalid end\x01",
		strings.Repeat("a", 5000) + "\n" + strings.Repeat("b", 100),
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", s, err)
		}
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Errorf("AppendString(%q) = %s, want %s", s, got, want)
		}
	}
}

// TestAppendFloatMatchesEncodingJSON pins AppendFloat across the
// 'f'/'e' switchover boundaries and the exponent-zero-stripping fixup.
func TestAppendFloatMatchesEncodingJSON(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, -0.5, 3.14159, 123.456, 42,
		1e-5, 1e-6, 9.999e-7, 1e-7, 1e-9, 1e-21, 5e-324,
		1e20, 9.9e20, 1e21, 1.5e21, 1e22, 1e300, math.MaxFloat64,
		-1e-7, -1e21, -1e22,
		251.0, 0.079, 1100, 0.0000015,
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("json.Marshal(%v): %v", f, err)
		}
		got := AppendFloat(nil, f)
		if string(got) != string(want) {
			t.Errorf("AppendFloat(%v) = %s, want %s", f, got, want)
		}
	}
}

func TestAppendIntBool(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, -9007, math.MaxInt64, math.MinInt64} {
		want, _ := json.Marshal(v)
		if got := AppendInt(nil, v); string(got) != string(want) {
			t.Errorf("AppendInt(%d) = %s, want %s", v, got, want)
		}
	}
	if got := AppendBool(nil, true); string(got) != "true" {
		t.Errorf("AppendBool(true) = %s", got)
	}
	if got := AppendBool(AppendBool(nil, false), true); string(got) != "falsetrue" {
		t.Errorf("AppendBool chain = %s", got)
	}
}

// estReq mirrors the server's estimate request for differential
// decoding: the hand-rolled loop below must accept and reject exactly
// what encoding/json's DisallowUnknownFields decoder does.
type estReq struct {
	Phrase string `json:"phrase"`
}

// decodeEstReq drives the pull decoder the way the server does.
func decodeEstReq(data []byte) (estReq, error) {
	var req estReq
	var d Decoder
	d.Reset(data)
	isNull, err := d.ObjectStart()
	if err != nil || isNull {
		return req, err
	}
	for first := true; ; first = false {
		key, ok, err := d.Member(first)
		if err != nil {
			return req, err
		}
		if !ok {
			return req, nil
		}
		switch string(key) {
		case "phrase":
			val, isNull, err := d.String()
			if err != nil {
				return req, err
			}
			if !isNull {
				req.Phrase = string(val)
			}
		default:
			return req, fmt.Errorf("unknown field %q", key)
		}
	}
}

// recReq mirrors the server's recipe request.
type recReq struct {
	Ingredients []string `json:"ingredients"`
	Servings    int      `json:"servings"`
	Method      string   `json:"method"`
}

func decodeRecReq(data []byte) (recReq, error) {
	var req recReq
	var d Decoder
	d.Reset(data)
	isNull, err := d.ObjectStart()
	if err != nil || isNull {
		return req, err
	}
	for first := true; ; first = false {
		key, ok, err := d.Member(first)
		if err != nil {
			return req, err
		}
		if !ok {
			return req, nil
		}
		switch string(key) {
		case "ingredients":
			req.Ingredients = req.Ingredients[:0]
			isNull, err := d.ArrayStart()
			if err != nil {
				return req, err
			}
			if isNull {
				req.Ingredients = nil
				continue
			}
			for efirst := true; ; efirst = false {
				more, err := d.ArrayNext(efirst)
				if err != nil {
					return req, err
				}
				if !more {
					break
				}
				val, _, err := d.String()
				if err != nil {
					return req, err
				}
				req.Ingredients = append(req.Ingredients, string(val))
			}
			if req.Ingredients == nil {
				req.Ingredients = []string{}
			}
		case "servings":
			v, _, err := d.Int()
			if err != nil {
				return req, err
			}
			req.Servings = int(v)
		case "method":
			val, isNull, err := d.String()
			if err != nil {
				return req, err
			}
			if !isNull {
				req.Method = string(val)
			}
		default:
			return req, fmt.Errorf("unknown field %q", key)
		}
	}
}

// TestDecoderDifferentialEstimate feeds the same documents to the pull
// decoder and to encoding/json (DisallowUnknownFields, one-value
// Decode) and asserts they agree on accept/reject and on the decoded
// value.
func TestDecoderDifferentialEstimate(t *testing.T) {
	cases := []string{
		`{"phrase":"2 cups flour"}`,
		`{"phrase":""}`,
		`{}`,
		`null`,
		` { "phrase" : "x" } `,
		`{"phrase":"a","phrase":"b"}`,          // last duplicate wins
		`{"phrase":null}`,                      // null → no-op
		`{"phrase":"esc \n \" \\ é \/"}`,       // escapes
		`{"phrase":"🍞"}`,                       // surrogate pair
		`{"phrase":"\ud800"}`,                  // unpaired surrogate → U+FFFD
		`{"phrase":"\ud800x"}`,                 // high surrogate then ASCII
		`{"phrase":"\ud800\ud800"}`,            // two high surrogates
		"{\"phrase\":\"raw \xff bytes\"}",      // invalid UTF-8 → U+FFFD
		`{"phrase":"crème brûlée"}`,            // valid multibyte
		`{"phrase":"x"} trailing garbage here`, // Decode reads one value
		`{"phrase":"x"}{"phrase":"y"}`,
		// rejects
		``,
		`{`,
		`{"phrase"`,
		`{"phrase":`,
		`{"phrase":"unterminated`,
		`{"phrase":"bad esc \q"}`,
		`{"phrase":"bad hex \u00zz"}`,
		"{\"phrase\":\"raw ctrl \x01\"}",
		`{"phrase":7}`,
		`{"phrase":"a" "b":1}`,
		`{"unknown":"x"}`,
		`{"phrase":"a","unknown":1}`,
		`[1,2]`,
		`"just a string"`,
		`{"phrase":"a",}`,
		`{,}`,
	}
	for _, doc := range cases {
		var want estReq
		dec := json.NewDecoder(strings.NewReader(doc))
		dec.DisallowUnknownFields()
		wantErr := dec.Decode(&want)

		got, gotErr := decodeEstReq([]byte(doc))
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("doc %q: encoding/json err=%v, jsonx err=%v", doc, wantErr, gotErr)
			continue
		}
		if wantErr == nil && got != want {
			t.Errorf("doc %q: decoded %+v, want %+v", doc, got, want)
		}
	}
}

func TestDecoderDifferentialRecipe(t *testing.T) {
	cases := []string{
		`{"ingredients":["2 cups flour","1 egg"],"servings":4,"method":"fried"}`,
		`{"ingredients":[],"servings":0}`,
		`{"ingredients":null}`,
		`{"servings":-3}`,
		`{"servings":null}`,
		`{"ingredients":["a"],"ingredients":["b","c"]}`, // last duplicate wins
		`{"ingredients":[null,"x"]}`,                    // null element → ""? (no-op keeps zero)
		`{"method":"Fried"}`,
		`{"servings": 12 , "method" : "boiled" }`,
		`null`,
		`{}`,
		// rejects
		`{"ingredients":"flour"}`,
		`{"servings":4.5}`,
		`{"servings":1e2}`,
		`{"servings":"4"}`,
		`{"servings":04}`,
		`{"servings":+4}`,
		`{"servings":--4}`,
		`{"servings":4.}`,
		`{"servings":4e}`,
		`{"ingredients":[1,2]}`,
		`{"ingredients":["a",]}`,
		`{"ingredients":["a" "b"]}`,
		`{"extra":true}`,
	}
	for _, doc := range cases {
		var want recReq
		dec := json.NewDecoder(strings.NewReader(doc))
		dec.DisallowUnknownFields()
		wantErr := dec.Decode(&want)

		got, gotErr := decodeRecReq([]byte(doc))
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("doc %q: encoding/json err=%v, jsonx err=%v", doc, wantErr, gotErr)
			continue
		}
		if wantErr != nil {
			continue
		}
		if got.Servings != want.Servings || got.Method != want.Method ||
			len(got.Ingredients) != len(want.Ingredients) ||
			(got.Ingredients == nil) != (want.Ingredients == nil) {
			t.Errorf("doc %q: decoded %+v, want %+v", doc, got, want)
			continue
		}
		for i := range got.Ingredients {
			if got.Ingredients[i] != want.Ingredients[i] {
				t.Errorf("doc %q: ingredient %d = %q, want %q", doc, i, got.Ingredients[i], want.Ingredients[i])
			}
		}
	}
}

// TestDecoderScratchStability asserts values returned earlier in a
// document survive later slow-path decodes (the append-only contract).
func TestDecoderScratchStability(t *testing.T) {
	doc := []byte(`{"a":"first\nvalue","b":"second\tvalue","c":"third é"}`)
	var d Decoder
	d.Reset(doc)
	if _, err := d.ObjectStart(); err != nil {
		t.Fatal(err)
	}
	var vals [][]byte
	for first := true; ; first = false {
		_, ok, err := d.Member(first)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		v, _, err := d.String()
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	want := []string{"first\nvalue", "second\tvalue", "third é"}
	for i, v := range vals {
		if string(v) != want[i] {
			t.Errorf("value %d = %q, want %q (scratch reuse clobbered it?)", i, v, want[i])
		}
	}
}

// TestDecodeZeroAllocsWarm guards the steady-state contract: decoding a
// typical request with a warm decoder does not allocate.
func TestDecodeZeroAllocsWarm(t *testing.T) {
	doc := []byte(`{"phrase":"2 cups all purpose flour"}`)
	var d Decoder
	var out []byte
	decode := func() {
		d.Reset(doc)
		if _, err := d.ObjectStart(); err != nil {
			t.Fatal(err)
		}
		for first := true; ; first = false {
			key, ok, err := d.Member(first)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if string(key) != "phrase" {
				t.Fatalf("key %q", key)
			}
			v, _, err := d.String()
			if err != nil {
				t.Fatal(err)
			}
			out = v
		}
	}
	decode() // warm
	if allocs := testing.AllocsPerRun(100, decode); allocs != 0 {
		t.Errorf("warm decode allocates %v per run, want 0", allocs)
	}
	if string(out) != "2 cups all purpose flour" {
		t.Errorf("decoded %q", out)
	}
}

// TestBufferPool exercises the checkout/return cycle and the oversize
// drop policy.
func TestBufferPool(t *testing.T) {
	buf := GetBuffer()
	if len(buf.B) != 0 {
		t.Fatalf("fresh buffer has len %d", len(buf.B))
	}
	buf.B = append(buf.B, "hello"...)
	PutBuffer(buf)
	buf2 := GetBuffer()
	if len(buf2.B) != 0 {
		t.Errorf("recycled buffer not reset: len %d", len(buf2.B))
	}
	buf2.B = make([]byte, 0, maxPooledBuffer+1)
	PutBuffer(buf2) // must not panic; oversize is dropped
}

// TestResetKeepPreservesViews pins the NDJSON-window contract: views
// returned before a ResetKeep stay intact while the decoder moves on to
// later lines, and a plain Reset is the point where they die (the
// scratch is reclaimed and may be overwritten).
func TestResetKeepPreservesViews(t *testing.T) {
	decodeOnly := func(t *testing.T, d *Decoder, doc string) []byte {
		t.Helper()
		if _, err := d.ObjectStart(); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := d.Member(true); err != nil || !ok {
			t.Fatalf("member: %v", err)
		}
		v, _, err := d.String()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	var d Decoder
	d.Reset([]byte(`{"a":"first\nline"}`))
	first := decodeOnly(t, &d, "line 1")

	// Re-point at the next window lines without reclaiming the scratch.
	d.ResetKeep([]byte(`{"b":"second\tline"}`))
	second := decodeOnly(t, &d, "line 2")
	d.ResetKeep([]byte(`{"c":"` + strings.Repeat(`xé`, 400) + `"}`)) // force scratch growth
	third := decodeOnly(t, &d, "line 3")

	if string(first) != "first\nline" {
		t.Errorf("first view clobbered across ResetKeep: %q", first)
	}
	if string(second) != "second\tline" {
		t.Errorf("second view clobbered across ResetKeep: %q", second)
	}
	if want := strings.Repeat("xé", 400); string(third) != want {
		t.Errorf("post-growth view wrong: %q", third)
	}

	// A plain Reset reclaims the scratch: the next escaped decode may
	// reuse the same backing array, so old views are dead. Only assert
	// what the contract promises — the new value is correct.
	d.Reset([]byte(`{"d":"after\rreset"}`))
	if v := decodeOnly(t, &d, "after reset"); string(v) != "after\rreset" {
		t.Errorf("decode after Reset: %q", v)
	}
}
