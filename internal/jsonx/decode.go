package jsonx

// A pull decoder for the serving layer's request shapes: flat objects of
// scalars and string arrays. The design goal is zero heap allocations on
// the steady state — string values are returned as sub-slices of the
// input buffer when they contain no escapes, and unescaped into an
// append-only scratch otherwise, so the caller can view them without
// materializing Go strings. Errors allocate; they are the cold path.
//
// Semantics mirror encoding/json's Decoder for these shapes: leading
// `null` decodes to the zero value, numbers bound for int fields must be
// integer literals, duplicate keys keep the last value, and decoding
// reads exactly one JSON value (trailing bytes are ignored, as
// Decoder.Decode does). Unknown-field rejection is the caller's loop —
// see Decoder.Member.

import (
	"errors"
	"fmt"
	"strconv"
	"unicode/utf8"
)

// ErrUnexpectedEnd mirrors encoding/json's "unexpected end of JSON
// input" class of failures.
var ErrUnexpectedEnd = errors.New("unexpected end of JSON input")

// Decoder reads one JSON value from a byte buffer. The zero value is
// ready after Reset. Returned byte slices alias either the input buffer
// or the decoder's scratch and stay valid until the next Reset.
type Decoder struct {
	data []byte
	pos  int
	// scratch holds unescaped string values, append-only within one
	// Reset so earlier returned values stay intact while later ones are
	// decoded (growth abandons, never rewrites, prior backing arrays).
	scratch []byte
}

// Reset points the decoder at a new buffer and invalidates every slice
// returned since the previous Reset.
func (d *Decoder) Reset(data []byte) {
	d.data = data
	d.pos = 0
	d.scratch = d.scratch[:0]
}

// ResetKeep points the decoder at a new buffer while preserving the
// unescape scratch: slices returned since the last plain Reset remain
// valid. This is the NDJSON-window mode — the streaming batch endpoint
// decodes many lines whose values must all stay alive until the window
// is processed, then issues one Reset to reclaim the scratch. Safe
// because the scratch is append-only between Resets: growth abandons
// prior backing arrays instead of rewriting them.
func (d *Decoder) ResetKeep(data []byte) {
	d.data = data
	d.pos = 0
}

func (d *Decoder) skipSpace() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

// null consumes a `null` literal if one is next.
func (d *Decoder) null() bool {
	if d.pos+4 <= len(d.data) && string(d.data[d.pos:d.pos+4]) == "null" {
		d.pos += 4
		return true
	}
	return false
}

func (d *Decoder) errAt(what string) error {
	if d.pos >= len(d.data) {
		return ErrUnexpectedEnd
	}
	return fmt.Errorf("invalid character %q %s", d.data[d.pos], what)
}

// ObjectStart consumes `{` or `null`, reporting isNull for the latter —
// the shape of a request body whose top level may be null (decoding
// null into a struct is a no-op for encoding/json).
func (d *Decoder) ObjectStart() (isNull bool, err error) {
	d.skipSpace()
	if d.null() {
		return true, nil
	}
	if d.pos < len(d.data) && d.data[d.pos] == '{' {
		d.pos++
		return false, nil
	}
	return false, d.errAt("looking for beginning of object")
}

// Member advances to the object's next member and returns its key, with
// ok=false at the closing brace. first distinguishes the opening member
// from comma-separated successors. The key aliases decoder memory; the
// caller must consume the member's value before calling Member again.
func (d *Decoder) Member(first bool) (key []byte, ok bool, err error) {
	d.skipSpace()
	if d.pos >= len(d.data) {
		return nil, false, ErrUnexpectedEnd
	}
	if d.data[d.pos] == '}' {
		d.pos++
		return nil, false, nil
	}
	if !first {
		if d.data[d.pos] != ',' {
			return nil, false, d.errAt("after object member")
		}
		d.pos++
		d.skipSpace()
	}
	key, err = d.str()
	if err != nil {
		return nil, false, err
	}
	d.skipSpace()
	if d.pos >= len(d.data) || d.data[d.pos] != ':' {
		return nil, false, d.errAt("after object key")
	}
	d.pos++
	return key, true, nil
}

// String reads a string value; `null` yields (nil, true, nil), matching
// encoding/json's no-op decode of null into a string field.
func (d *Decoder) String() (val []byte, isNull bool, err error) {
	d.skipSpace()
	if d.null() {
		return nil, true, nil
	}
	val, err = d.str()
	return val, false, err
}

// ArrayStart consumes `[` or `null` (isNull, the nil-slice decode).
func (d *Decoder) ArrayStart() (isNull bool, err error) {
	d.skipSpace()
	if d.null() {
		return true, nil
	}
	if d.pos < len(d.data) && d.data[d.pos] == '[' {
		d.pos++
		return false, nil
	}
	return false, d.errAt("looking for beginning of array")
}

// ArrayNext reports whether another element follows, consuming the
// separating comma or the closing bracket.
func (d *Decoder) ArrayNext(first bool) (more bool, err error) {
	d.skipSpace()
	if d.pos >= len(d.data) {
		return false, ErrUnexpectedEnd
	}
	if d.data[d.pos] == ']' {
		d.pos++
		return false, nil
	}
	if first {
		return true, nil
	}
	if d.data[d.pos] != ',' {
		return false, d.errAt("after array element")
	}
	d.pos++
	return true, nil
}

// Int reads an integer value; `null` yields (0, true, nil). A valid JSON
// number that is not an integer literal (fractions, exponents) is
// rejected the way encoding/json rejects it for an int field.
func (d *Decoder) Int() (v int64, isNull bool, err error) {
	d.skipSpace()
	if d.null() {
		return 0, true, nil
	}
	start := d.pos
	if err := d.number(); err != nil {
		return 0, false, err
	}
	lit := d.data[start:d.pos]
	v, perr := strconv.ParseInt(string(lit), 10, 64)
	if perr != nil {
		return 0, false, fmt.Errorf("cannot decode number %s into an integer field", lit)
	}
	return v, false, nil
}

// number consumes one JSON number literal, validating the grammar
// (-?int frac? exp?) so Int can tell a malformed document from a
// well-formed non-integer.
func (d *Decoder) number() error {
	if d.pos < len(d.data) && d.data[d.pos] == '-' {
		d.pos++
	}
	switch {
	case d.pos >= len(d.data):
		return ErrUnexpectedEnd
	case d.data[d.pos] == '0':
		d.pos++
	case d.data[d.pos] >= '1' && d.data[d.pos] <= '9':
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			d.pos++
		}
	default:
		return d.errAt("in numeric literal")
	}
	if d.pos < len(d.data) && d.data[d.pos] == '.' {
		d.pos++
		if err := d.digits(); err != nil {
			return err
		}
	}
	if d.pos < len(d.data) && (d.data[d.pos] == 'e' || d.data[d.pos] == 'E') {
		d.pos++
		if d.pos < len(d.data) && (d.data[d.pos] == '+' || d.data[d.pos] == '-') {
			d.pos++
		}
		if err := d.digits(); err != nil {
			return err
		}
	}
	return nil
}

func (d *Decoder) digits() error {
	if d.pos >= len(d.data) || d.data[d.pos] < '0' || d.data[d.pos] > '9' {
		return d.errAt("in numeric literal")
	}
	for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
		d.pos++
	}
	return nil
}

// str reads a string literal. The fast path — no escapes, pure ASCII —
// returns a zero-copy sub-slice of the input; anything else is decoded
// into the scratch with encoding/json's semantics (named and \uXXXX
// escapes, surrogate pairs, invalid UTF-8 and unpaired surrogates
// replaced with U+FFFD, raw control bytes rejected).
func (d *Decoder) str() ([]byte, error) {
	if d.pos >= len(d.data) || d.data[d.pos] != '"' {
		return nil, d.errAt("looking for beginning of string")
	}
	d.pos++
	start := d.pos
	for i := d.pos; i < len(d.data); i++ {
		switch c := d.data[i]; {
		case c == '"':
			d.pos = i + 1
			return d.data[start:i], nil
		case c == '\\' || c >= utf8.RuneSelf:
			return d.strSlow(start, i)
		case c < 0x20:
			d.pos = i
			return nil, fmt.Errorf("invalid control character %q in string literal", c)
		}
	}
	d.pos = len(d.data)
	return nil, ErrUnexpectedEnd
}

// strSlow finishes a string containing escapes or non-ASCII bytes,
// appending the decoded value to the scratch. start is the first content
// byte, i the first byte needing attention.
func (d *Decoder) strSlow(start, i int) ([]byte, error) {
	from := len(d.scratch)
	d.scratch = append(d.scratch, d.data[start:i]...)
	for i < len(d.data) {
		switch c := d.data[i]; {
		case c == '"':
			d.pos = i + 1
			return d.scratch[from:], nil
		case c < 0x20:
			d.pos = i
			return nil, fmt.Errorf("invalid control character %q in string literal", c)
		case c == '\\':
			var err error
			i, err = d.escape(i)
			if err != nil {
				return nil, err
			}
		case c < utf8.RuneSelf:
			d.scratch = append(d.scratch, c)
			i++
		default:
			r, size := utf8.DecodeRune(d.data[i:])
			if r == utf8.RuneError && size == 1 {
				d.scratch = utf8.AppendRune(d.scratch, utf8.RuneError)
				i++
				continue
			}
			d.scratch = append(d.scratch, d.data[i:i+size]...)
			i += size
		}
	}
	d.pos = len(d.data)
	return nil, ErrUnexpectedEnd
}

// escape decodes one backslash escape starting at i, appending to the
// scratch and returning the index past the escape.
func (d *Decoder) escape(i int) (int, error) {
	if i+1 >= len(d.data) {
		d.pos = len(d.data)
		return i, ErrUnexpectedEnd
	}
	switch c := d.data[i+1]; c {
	case '"', '\\', '/':
		d.scratch = append(d.scratch, c)
		return i + 2, nil
	case 'b':
		d.scratch = append(d.scratch, '\b')
		return i + 2, nil
	case 'f':
		d.scratch = append(d.scratch, '\f')
		return i + 2, nil
	case 'n':
		d.scratch = append(d.scratch, '\n')
		return i + 2, nil
	case 'r':
		d.scratch = append(d.scratch, '\r')
		return i + 2, nil
	case 't':
		d.scratch = append(d.scratch, '\t')
		return i + 2, nil
	case 'u':
		r, next, err := d.hex4(i + 2)
		if err != nil {
			return i, err
		}
		if utf16IsHighSurrogate(r) && next+6 <= len(d.data) &&
			d.data[next] == '\\' && d.data[next+1] == 'u' {
			if r2, next2, err2 := d.hex4(next + 2); err2 == nil && utf16IsLowSurrogate(r2) {
				d.scratch = utf8.AppendRune(d.scratch,
					((r-0xD800)<<10|(r2-0xDC00))+0x10000)
				return next2, nil
			}
		}
		if r >= 0xD800 && r < 0xE000 {
			// Unpaired surrogate half: encoding/json substitutes U+FFFD.
			r = utf8.RuneError
		}
		d.scratch = utf8.AppendRune(d.scratch, r)
		return next, nil
	default:
		d.pos = i
		return i, fmt.Errorf("invalid escape \\%c in string literal", c)
	}
}

// hex4 parses four hex digits at i, returning the rune and the index
// past them.
func (d *Decoder) hex4(i int) (rune, int, error) {
	if i+4 > len(d.data) {
		d.pos = len(d.data)
		return 0, i, ErrUnexpectedEnd
	}
	var r rune
	for _, c := range d.data[i : i+4] {
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			d.pos = i
			return 0, i, fmt.Errorf("invalid character %q in \\u escape", c)
		}
	}
	return r, i + 4, nil
}

func utf16IsHighSurrogate(r rune) bool { return r >= 0xD800 && r < 0xDC00 }
func utf16IsLowSurrogate(r rune) bool  { return r >= 0xDC00 && r < 0xE000 }
