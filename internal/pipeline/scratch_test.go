package pipeline_test

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"nutriprofile/internal/lemma"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/pipeline"
	"nutriprofile/internal/postag"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/textutil"
	"nutriprofile/internal/units"
)

// edgePhrases stresses the paths a generated corpus rarely hits:
// unicode fractions, casing, punctuation noise, empties.
var edgePhrases = []string{
	"", " ", ",", "1", "cup", "½ cup sugar", "1¼ cups milk",
	"2 Tbsp. olive oil", "Boiling Water", "1 (8 ounce) package cream cheese , softened",
	"salt and pepper to taste", "3/4 cup butter or 3/4 cup margarine , softened",
	"100% whole wheat flour", `pat (1" sq, 1/3" high)`,
}

// corpusPhrases returns generated recipe phrases plus the edge cases.
func corpusPhrases(t testing.TB, recipes int) []string {
	t.Helper()
	corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: recipes, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return append(corpus.Phrases(), edgePhrases...)
}

// trainedModel fits a small perceptron on silver labels so the scratch
// path is exercised with a real (sparse, averaged) weight table.
func trainedModel(t testing.TB, phrases []string) *ner.Model {
	t.Helper()
	var rt ner.RuleTagger
	var examples []ner.Example
	for _, p := range phrases {
		if len(examples) >= 200 {
			break
		}
		toks := textutil.Tokenize(p)
		if len(toks) == 0 {
			continue
		}
		examples = append(examples, ner.Example{Tokens: toks, Labels: rt.Tag(toks)})
	}
	m, err := ner.Train(examples, ner.TrainConfig{Epochs: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// checkPhrase runs one phrase through sc and compares every stage
// against the allocating reference implementations.
func checkPhrase(t *testing.T, sc *pipeline.Scratch, tagger ner.Tagger, p string) {
	t.Helper()
	wantToks := textutil.Tokenize(p)
	gotToks := sc.Tokenize(p)
	if !(len(wantToks) == 0 && len(gotToks) == 0) && !reflect.DeepEqual(gotToks, wantToks) {
		t.Fatalf("phrase %q: tokens %q, want %q", p, gotToks, wantToks)
	}
	wantTags := postag.TagPhrase(wantToks)
	gotTags := sc.Tag()
	if !(len(wantTags) == 0 && len(gotTags) == 0) && !reflect.DeepEqual(gotTags, wantTags) {
		t.Fatalf("phrase %q: tags %v, want %v", p, gotTags, wantTags)
	}
	wantLems := lemma.Phrase(wantToks)
	gotLems := sc.Lemmas()
	if !(len(wantLems) == 0 && len(gotLems) == 0) && !reflect.DeepEqual(gotLems, wantLems) {
		t.Fatalf("phrase %q: lemmas %q, want %q", p, gotLems, wantLems)
	}
	for i, tok := range wantToks {
		wantName, wantKnown := units.Normalize(tok)
		gotName, gotKnown := sc.UnitFor(i)
		if gotName != wantName || gotKnown != wantKnown {
			t.Fatalf("phrase %q token %q: UnitFor = (%q, %v), want (%q, %v)",
				p, tok, gotName, gotKnown, wantName, wantKnown)
		}
	}
	if got, want := string(sc.PhraseKey()), strings.Join(wantToks, " "); got != want {
		t.Fatalf("phrase %q: PhraseKey %q, want %q", p, got, want)
	}
	wantEx := ner.Extract(tagger, p)
	if gotEx := sc.Extract(tagger); gotEx != wantEx {
		t.Fatalf("phrase %q: extraction %+v, want %+v", p, gotEx, wantEx)
	}
}

// TestScratchDifferential runs a generated corpus through one warm,
// continuously reused Scratch and pins every stage — tokens, POS tags,
// lemmas, unit lookups, cache keys, extraction — to the reference path.
func TestScratchDifferential(t *testing.T) {
	phrases := corpusPhrases(t, 150)
	taggers := []struct {
		name string
		t    ner.Tagger
	}{
		{"rule", ner.RuleTagger{}},
		{"model", trainedModel(t, phrases)},
	}
	for _, tc := range taggers {
		t.Run(tc.name, func(t *testing.T) {
			sc := pipeline.Get()
			defer pipeline.Put(sc)
			for _, p := range phrases {
				checkPhrase(t, sc, tc.t, p)
			}
			// Second pass: every memo map is now warm; results must not drift.
			for _, p := range phrases {
				checkPhrase(t, sc, tc.t, p)
			}
		})
	}
}

// TestJoinKey pins JoinKey to the strings.Join reference, including the
// empty-fields shapes the match cache produces.
func TestJoinKey(t *testing.T) {
	sc := &pipeline.Scratch{}
	cases := [][]string{
		{},
		{""},
		{"flour"},
		{"flour", "", "", ""},
		{"sour cream", "chopped", "cold", "fresh"},
	}
	for _, fields := range cases {
		if got, want := string(sc.JoinKey(fields...)), strings.Join(fields, "\x1f"); got != want {
			t.Errorf("JoinKey(%q) = %q, want %q", fields, got, want)
		}
	}
	// PhraseKey and JoinKey use distinct buffers: both must stay valid at
	// once, as the estimator's miss path requires.
	sc.Tokenize("2 cups flour")
	pk := sc.PhraseKey()
	sc.JoinKey("flour", "", "", "")
	if string(pk) != "2 cups flour" {
		t.Fatalf("PhraseKey clobbered by JoinKey: %q", pk)
	}
}

// TestColdPathZeroAllocs is the tentpole acceptance gate: a warm Scratch
// must process a phrase through tokenize → POS-tag → lemma → NER →
// unit lookup → cache keys with zero heap allocations, for both the
// rule tagger and a trained model. (Phrases with vulgar-fraction glyphs
// are excluded: expanding "½" rewrites the input string before
// tokenization, a per-input normalization cost outside the arena.)
func TestColdPathZeroAllocs(t *testing.T) {
	phrases := []string{
		"2 cups all-purpose flour",
		"1 small onion , finely chopped",
		"1/2 lb lean ground beef",
		"1 teaspoon butter",
		"2 Tbsp. olive oil",
		"1 (8 ounce) package cream cheese , softened",
		"salt and pepper to taste",
	}
	taggers := []struct {
		name string
		t    ner.Tagger
	}{
		{"rule", ner.RuleTagger{}},
		{"model", trainedModel(t, corpusPhrases(t, 50))},
	}
	for _, tc := range taggers {
		t.Run(tc.name, func(t *testing.T) {
			sc := pipeline.Get()
			defer pipeline.Put(sc)
			run := func() {
				for _, p := range phrases {
					sc.Tokenize(p)
					sc.Tag()
					sc.Lemmas()
					ex := sc.Extract(tc.t)
					if ex.IsEmpty() {
						t.Fatal("empty extraction")
					}
					for i := range sc.Tokens() {
						sc.UnitFor(i)
					}
					sc.PhraseKey()
					sc.JoinKey(ex.Name, ex.State, ex.Temp, ex.DryFresh)
				}
			}
			run() // warm every buffer and memo map
			if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
				t.Fatalf("warm pipeline allocates: %v allocs/run, want 0", allocs)
			}
		})
	}
}

// TestPoolStress hammers the pool from 8 goroutines (run under -race in
// CI): pooled, recycled scratches must produce outputs identical to a
// fresh reference on every phrase, proving no cross-goroutine state
// leaks through the arena.
func TestPoolStress(t *testing.T) {
	phrases := corpusPhrases(t, 60)
	var rt ner.RuleTagger
	want := make([]ner.Extraction, len(phrases))
	for i, p := range phrases {
		want[i] = ner.Extract(rt, p)
	}
	const goroutines = 8
	const rounds = 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sc := pipeline.Get()
				// Walk the corpus from a goroutine-specific offset so
				// concurrent scratches are always on different phrases.
				for k := range phrases {
					i := (k + g*len(phrases)/goroutines) % len(phrases)
					if got := sc.Run(rt, phrases[i]); got != want[i] {
						t.Errorf("goroutine %d round %d phrase %q: %+v, want %+v",
							g, r, phrases[i], got, want[i])
						pipeline.Put(sc)
						return
					}
				}
				pipeline.Put(sc)
			}
		}(g)
	}
	wg.Wait()
}
