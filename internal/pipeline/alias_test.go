package pipeline

import (
	"testing"
	"unsafe"

	"nutriprofile/internal/ner"
)

// TestScratchMemosOwnTheirBytes is the regression test for the
// serving-layer aliasing bug: the scratch memo maps (lemmas, units)
// must deep-copy both keys and values, because the serving hot path
// feeds phrases that are unsafe views into a pooled request buffer —
// after the request, those bytes are overwritten by unrelated data.
// Before the fix, lemma.Word's suffix detachment returned substrings of
// the token ("slices" → "slices"[:5]) that were cached verbatim, so a
// later request mutated memoized lemmas and unit names in place.
func TestScratchMemosOwnTheirBytes(t *testing.T) {
	// The phrase lives in a buffer we control and will clobber.
	buf := []byte("2 slices bread and 3 tablespoons sugar")
	phrase := unsafe.String(unsafe.SliceData(buf), len(buf))

	var sc Scratch
	sc.Tokenize(phrase)
	sc.Tag()

	// Record the memoized outcomes while the buffer is intact.
	type unitOutcome struct {
		name  string
		known bool
	}
	lemmas := make([]string, 0, 8)
	units := make([]unitOutcome, 0, 8)
	for _, l := range sc.Lemmas() {
		lemmas = append(lemmas, l)
	}
	for i := range sc.Tokens() {
		name, known := sc.UnitFor(i)
		units = append(units, unitOutcome{name, known})
	}
	ex := sc.Extract(ner.RuleTagger{})

	// Simulate the next request reusing the buffer.
	for i := range buf {
		buf[i] = 'X'
	}

	// Everything recorded must still read back intact: stale bytes in
	// any memo value would show up here as mutated strings.
	wantLemmas := []string{"2", "slice", "bread", "and", "3", "tablespoon", "sugar"}
	for i, want := range wantLemmas {
		if lemmas[i] != want {
			t.Errorf("lemma[%d] = %q after buffer reuse, want %q", i, lemmas[i], want)
		}
	}
	if units[1].name != "slice" || !units[1].known {
		t.Errorf(`unit for "slices" = (%q, %v) after buffer reuse, want ("slice", true)`, units[1].name, units[1].known)
	}
	if units[5].name != "tablespoon" || !units[5].known {
		t.Errorf(`unit for "tablespoons" = (%q, %v) after buffer reuse, want ("tablespoon", true)`, units[5].name, units[5].known)
	}
	if ex.Unit == "" || ex.Name == "" {
		t.Fatalf("extraction missing fields: %+v", ex)
	}
	for _, f := range []string{ex.Name, ex.Unit, ex.Quantity} {
		for i := 0; i < len(f); i++ {
			if f[i] == 'X' {
				t.Fatalf("extraction field %q contains clobbered bytes", f)
			}
		}
	}

	// A second phrase re-hitting the memos must see the original
	// outcomes, not the clobbered bytes.
	sc.Tokenize("4 slices ham")
	if l := sc.Lemmas()[1]; l != "slice" {
		t.Errorf(`memoized lemma for "slices" = %q, want "slice"`, l)
	}
	if name, known := sc.UnitFor(1); name != "slice" || !known {
		t.Errorf(`memoized unit for "slices" = (%q, %v), want ("slice", true)`, name, known)
	}
}
