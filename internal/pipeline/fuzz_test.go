package pipeline_test

import (
	"reflect"
	"strings"
	"testing"

	"nutriprofile/internal/lemma"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/pipeline"
	"nutriprofile/internal/postag"
	"nutriprofile/internal/textutil"
	"nutriprofile/internal/units"
)

// FuzzPipelineScratch feeds arbitrary phrases through one long-lived,
// continuously reused Scratch and cross-checks every stage against the
// allocating reference path. The warm scratch (with whatever memo state
// previous inputs left behind) and a fresh scratch must both agree with
// the reference — the property the pooled batch workers rely on.
func FuzzPipelineScratch(f *testing.F) {
	for _, p := range []string{
		"2 cups all-purpose flour",
		"½ cup sugar",
		"1 (8 ounce) package cream cheese , softened",
		"Boiling Water",
		"3/4 cup butter or 3/4 cup margarine",
		"100% whole wheat flour",
		"", ",", "1¼", "<s> </s>",
		"\x00\xff weird bytes",
	} {
		f.Add(p)
	}
	warm := &pipeline.Scratch{}
	var rt ner.RuleTagger
	f.Fuzz(func(t *testing.T, phrase string) {
		wantToks := textutil.Tokenize(phrase)
		wantTags := postag.TagPhrase(wantToks)
		wantLems := lemma.Phrase(wantToks)
		wantEx := ner.Extract(rt, phrase)

		for _, sc := range []*pipeline.Scratch{warm, new(pipeline.Scratch)} {
			gotToks := sc.Tokenize(phrase)
			if !(len(wantToks) == 0 && len(gotToks) == 0) && !reflect.DeepEqual(gotToks, wantToks) {
				t.Fatalf("tokens %q, want %q", gotToks, wantToks)
			}
			gotTags := sc.Tag()
			if !(len(wantTags) == 0 && len(gotTags) == 0) && !reflect.DeepEqual(gotTags, wantTags) {
				t.Fatalf("tags %v, want %v", gotTags, wantTags)
			}
			gotLems := sc.Lemmas()
			if !(len(wantLems) == 0 && len(gotLems) == 0) && !reflect.DeepEqual(gotLems, wantLems) {
				t.Fatalf("lemmas %q, want %q", gotLems, wantLems)
			}
			for i, tok := range wantToks {
				wantName, wantKnown := units.Normalize(tok)
				gotName, gotKnown := sc.UnitFor(i)
				if gotName != wantName || gotKnown != wantKnown {
					t.Fatalf("token %q: UnitFor = (%q, %v), want (%q, %v)",
						tok, gotName, gotKnown, wantName, wantKnown)
				}
			}
			if got, want := string(sc.PhraseKey()), strings.Join(wantToks, " "); got != want {
				t.Fatalf("PhraseKey %q, want %q", got, want)
			}
			if gotEx := sc.Extract(rt); gotEx != wantEx {
				t.Fatalf("extraction %+v, want %+v", gotEx, wantEx)
			}
		}
	})
}
