// Package pipeline provides the per-goroutine scratch arena the NLP
// front-end (tokenize → POS-tag → lemmatize → NER → unit lookup) runs
// in. One Scratch holds every buffer and memo the per-phrase hot path
// needs, so a warm Scratch processes a phrase with zero heap
// allocations; core.Estimator checks one out per batch worker and reuses
// it across the worker's whole shard.
//
// Ownership model (DESIGN.md §10): a Scratch belongs to exactly one
// goroutine between Get and Put. Results that outlive the phrase
// (Extraction fields, cache keys) are copied out of the arena before the
// next phrase reuses it; everything else (token slices, tag/lemma
// buffers, Viterbi arrays, key buffers) aliases the arena and is valid
// only until the next Tokenize call.
package pipeline

import (
	"strings"
	"sync"
	"sync/atomic"

	"nutriprofile/internal/lemma"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/postag"
	"nutriprofile/internal/textutil"
	"nutriprofile/internal/units"
)

// unitHit memoizes one token's unit resolution.
type unitHit struct {
	name  string
	known bool
}

// maxScratchEntries bounds the per-scratch memo maps. Recipe vocabulary
// is a few thousand distinct tokens, so clearing only triggers on
// adversarial input; the maps are cleared wholesale rather than evicted
// entry-wise to keep the hot path branch-free.
const maxScratchEntries = 4096

// Scratch is the arena. The zero value is ready to use; buffers grow to
// the corpus' longest phrase and then stop allocating. Not safe for
// concurrent use.
type Scratch struct {
	// NER is the tagging/assembly sub-arena, passed to ner.ExtractScratch.
	NER ner.Scratch

	tokens     []string
	tags       []postag.Tag
	lemmas     []string
	haveLemmas bool

	folder     textutil.Folder   // memoized case folding for cased tokens
	lemmaCache map[string]string // token → noun lemma (stable strings)
	unitCache  map[string]unitHit

	keyBuf  []byte // phrase-cache key scratch
	qkeyBuf []byte // match-cache key scratch (distinct: both live at once)
}

// Tokenize resets the scratch to a new phrase and returns its tokens.
// Token values equal textutil.Tokenize's; the slice aliases the arena.
func (sc *Scratch) Tokenize(phrase string) []string {
	sc.tokens = textutil.AppendTokensFolded(sc.tokens[:0], phrase, &sc.folder)
	sc.haveLemmas = false
	return sc.tokens
}

// Tokens returns the current phrase's tokens.
func (sc *Scratch) Tokens() []string { return sc.tokens }

// Tag POS-tags the current phrase. Values equal postag.TagPhrase's.
func (sc *Scratch) Tag() []postag.Tag {
	sc.tags = postag.TagInto(sc.tags[:0], sc.tokens)
	return sc.tags
}

// Lemmas returns the noun lemma of every token of the current phrase,
// equal to lemma.Phrase's output, computed lazily once per phrase and
// memoized per distinct token spelling across phrases.
func (sc *Scratch) Lemmas() []string {
	if sc.haveLemmas {
		return sc.lemmas
	}
	sc.lemmas = sc.lemmas[:0]
	for _, t := range sc.tokens {
		sc.lemmas = append(sc.lemmas, sc.lemmaOf(t))
	}
	sc.haveLemmas = true
	return sc.lemmas
}

// lemmaOf is a memoized lemma.Word. Cached values never alias the phrase:
// keys are cloned, and a token that is its own lemma maps to the clone.
func (sc *Scratch) lemmaOf(tok string) string {
	if l, ok := sc.lemmaCache[tok]; ok {
		return l
	}
	l := lemma.Word(tok)
	if sc.lemmaCache == nil {
		sc.lemmaCache = make(map[string]string)
	} else if len(sc.lemmaCache) >= maxScratchEntries {
		clear(sc.lemmaCache)
	}
	key := strings.Clone(tok)
	if l == tok {
		l = key
	} else {
		// lemma.Word's suffix detachment can return a substring of tok
		// (e.g. "slices"[:5] via the "s"→"" rule). The cached value must
		// own its bytes: tok may be a view into a serving-layer buffer
		// that is overwritten by the next request.
		l = strings.Clone(l)
	}
	sc.lemmaCache[key] = l
	return l
}

// UnitFor resolves token i of the current phrase as a unit, equal to
// units.Normalize(token). The already-computed phrase lemma is plumbed
// through (units.NormalizeTokenLemma) instead of re-lemmatizing, and the
// outcome is memoized per token spelling.
func (sc *Scratch) UnitFor(i int) (string, bool) {
	tok := sc.tokens[i]
	if hit, ok := sc.unitCache[tok]; ok {
		return hit.name, hit.known
	}
	name, known := units.NormalizeTokenLemma(tok, sc.Lemmas()[i])
	if sc.unitCache == nil {
		sc.unitCache = make(map[string]unitHit)
	} else if len(sc.unitCache) >= maxScratchEntries {
		clear(sc.unitCache)
	}
	// Clone the value too: units.lookupUnit echoes unknown (and some
	// known) spellings back as-is, so name can alias tok — and tok can
	// be a view into a serving-layer buffer. The memoized hit, and the
	// IngredientResult.Unit built from it, must outlive that buffer.
	name = strings.Clone(name)
	sc.unitCache[strings.Clone(tok)] = unitHit{name: name, known: known}
	return name, known
}

// Extract tags the current phrase with t and assembles the Extraction
// through the NER sub-arena. Field values are byte-identical to
// ner.Extract over the raw phrase.
func (sc *Scratch) Extract(t ner.Tagger) ner.Extraction {
	return ner.ExtractScratch(t, sc.tokens, &sc.NER)
}

// Run processes one phrase through the whole front-end: tokenize, tag,
// lemmatize, extract. It exists for tests and benchmarks that exercise
// the path end to end; core threads the stages individually.
func (sc *Scratch) Run(t ner.Tagger, phrase string) ner.Extraction {
	sc.Tokenize(phrase)
	sc.Tag()
	sc.Lemmas()
	return sc.Extract(t)
}

// PhraseKey renders the current token stream as the phrase-cache key,
// byte-equal to strings.Join(tokens, " "). The slice aliases the arena
// and stays valid across JoinKey calls (separate buffers), but not
// across Tokenize.
func (sc *Scratch) PhraseKey() []byte {
	b := sc.keyBuf[:0]
	for i, t := range sc.tokens {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t...)
	}
	sc.keyBuf = b
	return b
}

// JoinKey renders fields separated by 0x1f, byte-equal to joining them
// with "\x1f" — the match-cache key shape.
func (sc *Scratch) JoinKey(fields ...string) []byte {
	b := sc.qkeyBuf[:0]
	for i, f := range fields {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = append(b, f...)
	}
	sc.qkeyBuf = b
	return b
}

// pool recycles scratches across batches. Scratches are never reset on
// Put: the memo maps are the warm state the next batch wants, and every
// per-phrase buffer is re-initialized by Tokenize. No finalizers — an
// abandoned Scratch is plain garbage (DESIGN.md §10).
var pool = sync.Pool{New: func() any { poolMisses.Add(1); return new(Scratch) }}

var (
	poolGets   atomic.Uint64
	poolMisses atomic.Uint64
)

// PoolStats counts scratch-pool checkouts and the subset that had to
// allocate a fresh (cold) Scratch. sync.Pool keeps per-P caches that GC
// cycles and goroutine migration drain, so under an oversubscribed
// multi-core pool the miss rate is the tell for cold-scratch re-warming
// costs (re-interning, memo-map cloning) — the per-worker allocation
// leak the estimator's own worker environments exist to avoid
// (DESIGN.md §12).
type PoolStats struct {
	Gets   uint64 `json:"gets"`
	Misses uint64 `json:"misses"`
}

// Stats snapshots the pool counters.
func Stats() PoolStats {
	return PoolStats{Gets: poolGets.Load(), Misses: poolMisses.Load()}
}

// Get checks a Scratch out of the pool.
func Get() *Scratch { poolGets.Add(1); return pool.Get().(*Scratch) }

// Put returns a Scratch to the pool. The caller must not retain any
// alias into it afterwards.
func Put(sc *Scratch) { pool.Put(sc) }
