// Package lemma implements a WordNet-style English lemmatizer, the
// substitute for NLTK's WordNetLemmatizer used by the paper in §II-B(b)
// (description-term unification) and §II-C (unit normalization).
//
// The algorithm is WordNet's "morphy": first consult an exception list of
// irregular forms, then apply suffix-detachment rules. The paper notes that
// stemmers were rejected for being too aggressive ("their high aggression");
// morphy-style detachment only removes genuine inflection, which is exactly
// the behaviour reproduced here. The exception list is weighted toward the
// food domain (tomatoes→tomato, leaves→leaf, halves→half, …) because those
// are the irregulars the matcher actually encounters.
package lemma

import "strings"

// PartOfSpeech selects which rule family Lemmatize applies.
type PartOfSpeech int

const (
	// Noun detachment rules; the default for description matching.
	Noun PartOfSpeech = iota
	// Verb detachment rules; used for processing-state words
	// (chopped→chop) when callers want them unified.
	Verb
	// Adjective detachment rules (comparatives/superlatives).
	Adjective
)

// rule is one suffix-detachment rewrite: if the word ends in suffix,
// replace that suffix with repl and check plausibility.
type rule struct {
	suffix, repl string
}

// WordNet's noun detachment rules, in priority order. Longer, more
// specific suffixes first so "dishes"→"dish" fires before "s"→"".
var nounRules = []rule{
	{"ches", "ch"},
	{"shes", "sh"},
	{"sses", "ss"},
	{"xes", "x"},
	{"zes", "z"},
	{"ives", "ife"}, // knives→knife (exception list covers leaves→leaf)
	{"men", "man"},
	{"ies", "y"},
	{"ses", "s"},
	{"s", ""},
}

// verbLexicon lists base forms of the cooking verbs that appear as STATE
// words; it arbitrates between detachment candidates ("diced" → dice, not
// dic) the way WordNet's lexicon lookup does.
var verbLexicon = map[string]bool{
	"bake": true, "baste": true, "beat": true, "blanch": true,
	"blend": true, "boil": true, "braise": true, "brown": true,
	"bruise": true, "brush": true, "carve": true, "chill": true,
	"chop": true, "coat": true, "cook": true, "core": true,
	"cream": true, "crumble": true, "crush": true, "cube": true,
	"cure": true, "dice": true, "dissolve": true, "drain": true,
	"dredge": true, "dress": true, "drizzle": true, "dry": true,
	"dust": true, "fillet": true, "flake": true, "fold": true,
	"fry": true, "garnish": true, "glaze": true, "grate": true,
	"grease": true, "grill": true, "grind": true, "halve": true,
	"heat": true, "hull": true, "julienne": true, "knead": true,
	"marinate": true, "mash": true, "melt": true, "mince": true,
	"mix": true, "pack": true, "pare": true, "peel": true,
	"pickle": true, "pit": true, "poach": true, "pound": true,
	"puree": true, "quarter": true, "rinse": true, "roast": true,
	"roll": true, "rub": true, "scald": true, "score": true,
	"sear": true, "season": true, "seed": true, "shave": true,
	"shell": true, "shred": true, "shuck": true, "sift": true,
	"simmer": true, "skim": true, "skin": true, "slice": true,
	"sliver": true, "smoke": true, "soak": true, "soften": true,
	"steam": true, "steep": true, "stem": true, "stir": true,
	"strain": true, "stuff": true, "sweeten": true, "temper": true,
	"thaw": true, "thicken": true, "toast": true, "toss": true,
	"trim": true, "whip": true, "whisk": true, "zest": true,
}

// nounExceptions lists irregular noun plurals. Culinary vocabulary is
// covered exhaustively; a core of general English irregulars rounds it out.
var nounExceptions = map[string]string{
	// culinary
	"tomatoes":   "tomato",
	"potatoes":   "potato",
	"mangoes":    "mango",
	"leaves":     "leaf",
	"loaves":     "loaf",
	"halves":     "half",
	"cloves":     "clove",
	"olives":     "olive",
	"chives":     "chive",
	"knives":     "knife",
	"berries":    "berry",
	"cherries":   "cherry",
	"anchovies":  "anchovy",
	"calves":     "calf",
	"shelves":    "shelf",
	"wives":      "wife",
	"lives":      "life",
	"radii":      "radius",
	"fungi":      "fungus",
	"cacti":      "cactus",
	"chilies":    "chili",
	"chillies":   "chilli",
	"dashes":     "dash",
	"pinches":    "pinch",
	"bunches":    "bunch",
	"branches":   "branch",
	"peaches":    "peach",
	"radishes":   "radish",
	"squashes":   "squash",
	"geese":      "goose",
	"feet":       "foot",
	"teeth":      "tooth",
	"mice":       "mouse",
	"children":   "child",
	"people":     "person",
	"oxen":       "ox",
	"sheep":      "sheep",
	"fish":       "fish",
	"shrimp":     "shrimp",
	"deer":       "deer",
	"salmon":     "salmon",
	"trout":      "trout",
	"tuna":       "tuna",
	"bass":       "bass",
	"molasses":   "molasses",
	"couscous":   "couscous",
	"hummus":     "hummus",
	"asparagus":  "asparagus",
	"citrus":     "citrus",
	"octopus":    "octopus",
	"watercress": "watercress",
	"cress":      "cress",
	"swiss":      "swiss",
	// measurement-adjacent
	"dozens": "dozen",
	"gross":  "gross",
	"lbs":    "lb",
	"ozs":    "oz",
	"pts":    "pt",
	"qts":    "qt",
	"tbsps":  "tbsp",
	"tsps":   "tsp",
}

var verbExceptions = map[string]string{
	"beaten":   "beat",
	"bought":   "buy",
	"brought":  "bring",
	"cut":      "cut",
	"done":     "do",
	"drawn":    "draw",
	"dried":    "dry",
	"frozen":   "freeze",
	"ground":   "grind",
	"held":     "hold",
	"left":     "leave",
	"made":     "make",
	"melted":   "melt",
	"put":      "put",
	"risen":    "rise",
	"shaken":   "shake",
	"shredded": "shred",
	"slit":     "slit",
	"split":    "split",
	"torn":     "tear",
}

// invariant words end in "s" but are already singular; bare detachment
// would corrupt them.
var invariants = map[string]bool{
	"molasses":   true,
	"hummus":     true,
	"couscous":   true,
	"asparagus":  true,
	"citrus":     true,
	"swiss":      true,
	"bass":       true,
	"cress":      true,
	"watercress": true,
	"gross":      true,
	"plus":       true,
	"dress":      true,
	"press":      true,
	"express":    true,
	"glass":      true,
	"grass":      true,
	"mess":       true,
	"less":       true,
	"boneless":   true,
	"skinless":   true,
	"fatless":    true,
	"seedless":   true,
	"dis":        true,
	"gas":        true,
	"this":       true,
	"is":         true,
	"as":         true,
	"us":         true,
	"anise":      true,
	"blancmange": true,
}

// Lemmatize returns the lemma of word for the given part of speech. The
// input is expected lower-cased (Tokenize output); the result is
// lower-cased. Unknown or already-base forms are returned unchanged —
// morphy never invents forms.
func Lemmatize(word string, pos PartOfSpeech) string {
	if word == "" {
		return word
	}
	switch pos {
	case Noun:
		return lemmatizeNoun(word)
	case Verb:
		return lemmatizeVerb(word)
	case Adjective:
		return lemmatizeAdj(word)
	}
	return word
}

// Word lemmatizes with the noun rules — the default the paper uses for
// both description terms and units.
func Word(word string) string { return Lemmatize(word, Noun) }

// Phrase lemmatizes every token of a pre-tokenized phrase as nouns.
func Phrase(tokens []string) []string {
	return LemmaInto(make([]string, 0, len(tokens)), tokens)
}

// LemmaInto is Phrase appending into dst, so hot paths can reuse one
// lemma buffer across phrases. Tokens that are already base forms (the
// common case) are appended as-is — zero copies, zero allocations.
func LemmaInto(dst []string, tokens []string) []string {
	for _, t := range tokens {
		dst = append(dst, Word(t))
	}
	return dst
}

// nounTable merges nounExceptions with the invariants (mapped to
// themselves) so lemmatizeNoun resolves both irregular classes in one
// probe. Exceptions win on overlap ("molasses" appears in both, mapping
// to itself either way), matching the original lookup order.
var nounTable = make(map[string]string, len(nounExceptions)+len(invariants))

func init() {
	for w, l := range nounExceptions {
		nounTable[w] = l
	}
	for w := range invariants {
		if _, ok := nounTable[w]; !ok {
			nounTable[w] = w
		}
	}
}

func lemmatizeNoun(w string) string {
	if lemma, ok := nounTable[w]; ok {
		return lemma
	}
	if len(w) < 3 {
		return w
	}
	// Every noun detachment suffix ends in 's' except "men", so any other
	// ending can skip the rule scan entirely. This is the zero-copy fast
	// path: the typical already-singular token returns here untouched.
	if last := w[len(w)-1]; last != 's' && !(last == 'n' && strings.HasSuffix(w, "men")) {
		return w
	}
	for _, r := range nounRules {
		if !strings.HasSuffix(w, r.suffix) {
			continue
		}
		stem := w[:len(w)-len(r.suffix)] + r.repl
		if plausibleStem(stem) {
			return stem
		}
	}
	return w
}

func lemmatizeVerb(w string) string {
	if lemma, ok := verbExceptions[w]; ok {
		return lemma
	}
	if len(w) < 4 {
		return w
	}
	for _, suffix := range []string{"ied", "ies", "ing", "ed", "es", "s"} {
		if !strings.HasSuffix(w, suffix) || len(w)-len(suffix) < 2 {
			continue
		}
		stem := w[:len(w)-len(suffix)]
		// Candidates in preference order are the bare stem, stem+"e",
		// and the undoubled stem (chopped→chopp→chop); a lexicon hit on
		// any outranks plausibility on any. Candidates are tested
		// inline rather than gathered into a slice so that rejected
		// ones never materialize — only the returned lemma is built.
		switch suffix {
		case "ied", "ies":
			if verbLexicon[stem+"y"] || plausibleStem(stem+"y") {
				return stem + "y"
			}
		case "s":
			if verbLexicon[stem] || (len(stem) >= 3 && plausibleStem(stem)) {
				return stem
			}
		default:
			undoubled := ""
			if len(stem) >= 3 && stem[len(stem)-1] == stem[len(stem)-2] {
				undoubled = stem[:len(stem)-1]
			}
			if verbLexicon[stem] {
				return stem
			}
			if verbLexicon[stem+"e"] {
				return stem + "e"
			}
			if undoubled != "" && verbLexicon[undoubled] {
				return undoubled
			}
			if len(stem) >= 3 && plausibleStem(stem) {
				return stem
			}
			if plausibleStem(stem + "e") {
				return stem + "e"
			}
			if len(undoubled) >= 3 && plausibleStem(undoubled) {
				return undoubled
			}
		}
	}
	return w
}

// adjLexicon arbitrates between bare-strip and +e candidates for
// comparative/superlative detachment (larger → large, not larg).
var adjLexicon = map[string]bool{
	"coarse": true, "dense": true, "fine": true, "large": true,
	"loose": true, "pale": true, "ripe": true, "stale": true,
	"wide": true, "close": true, "pure": true, "simple": true,
}

func lemmatizeAdj(w string) string {
	if len(w) < 4 {
		return w
	}
	for _, suffix := range []string{"est", "er"} {
		if !strings.HasSuffix(w, suffix) || len(w)-len(suffix) < 3 {
			continue
		}
		stem := w[:len(w)-len(suffix)]
		cands := []string{stem, stem + "e"}
		if len(stem) >= 3 && stem[len(stem)-1] == stem[len(stem)-2] {
			cands = append(cands, stem[:len(stem)-1])
		}
		for _, c := range cands {
			if adjLexicon[c] {
				return c
			}
		}
		if plausibleStem(stem) {
			return stem
		}
	}
	return w
}

// plausibleStem rejects detachments that leave no vowel (a morphy-style
// sanity check: "ms"→"m" is fine but "s"→"" is not a word).
func plausibleStem(s string) bool {
	if len(s) < 2 {
		return false
	}
	return strings.ContainsAny(s, "aeiouy")
}
