package lemma

import (
	"testing"
	"testing/quick"
)

func TestNounRegular(t *testing.T) {
	cases := []struct{ in, want string }{
		{"apples", "apple"},
		{"eggs", "egg"},
		{"cups", "cup"},
		{"teaspoons", "teaspoon"},
		{"tablespoons", "tablespoon"},
		{"onions", "onion"},
		{"lentils", "lentil"},
		{"beans", "bean"},
		{"seeds", "seed"},
		{"shakes", "shake"},
		{"dishes", "dish"},
		{"boxes", "box"},
		{"spices", "spice"},
		{"grams", "gram"},
		{"ounces", "ounce"},
		{"sticks", "stick"},
		{"slices", "slice"},
		{"pieces", "piece"},
	}
	for _, c := range cases {
		if got := Word(c.in); got != c.want {
			t.Errorf("Word(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNounIrregular(t *testing.T) {
	cases := []struct{ in, want string }{
		{"tomatoes", "tomato"},
		{"potatoes", "potato"},
		{"leaves", "leaf"},
		{"loaves", "loaf"},
		{"halves", "half"},
		{"cloves", "clove"},
		{"knives", "knife"},
		{"berries", "berry"},
		{"cherries", "cherry"},
		{"anchovies", "anchovy"},
		{"pinches", "pinch"},
		{"dashes", "dash"},
		{"children", "child"},
		{"feet", "foot"},
	}
	for _, c := range cases {
		if got := Word(c.in); got != c.want {
			t.Errorf("Word(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNounInvariants(t *testing.T) {
	// Already-singular words ending in s must pass through unchanged —
	// this is the "stemmers are too aggressive" point from §II-B(b).
	for _, w := range []string{
		"molasses", "hummus", "couscous", "asparagus", "swiss",
		"boneless", "skinless", "glass", "bass", "anise",
	} {
		if got := Word(w); got != w {
			t.Errorf("Word(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestNounAlreadySingular(t *testing.T) {
	for _, w := range []string{"butter", "milk", "egg", "flour", "salt", "pepper", "cup"} {
		if got := Word(w); got != w {
			t.Errorf("Word(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestVerb(t *testing.T) {
	cases := []struct{ in, want string }{
		{"chopped", "chop"},
		{"diced", "dice"},
		{"minced", "mince"},
		{"sliced", "slice"},
		{"grated", "grate"},
		{"whipped", "whip"},
		{"shredded", "shred"},
		{"ground", "grind"},
		{"melted", "melt"},
		{"softened", "soften"},
		{"beaten", "beat"},
		{"dried", "dry"},
		{"frozen", "freeze"},
		{"chopping", "chop"},
		{"dicing", "dice"},
		{"simmering", "simmer"},
		{"boiled", "boil"},
		{"toasted", "toast"},
	}
	for _, c := range cases {
		if got := Lemmatize(c.in, Verb); got != c.want {
			t.Errorf("Lemmatize(%q, Verb) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAdjective(t *testing.T) {
	cases := []struct{ in, want string }{
		{"larger", "large"},
		{"largest", "large"},
		{"smaller", "small"},
		{"fresher", "fresh"},
	}
	for _, c := range cases {
		if got := Lemmatize(c.in, Adjective); got != c.want {
			t.Errorf("Lemmatize(%q, Adjective) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestUnitAliases(t *testing.T) {
	// §II-C lemmatizes units before alias resolution; plural abbreviations
	// must reduce to their singular.
	cases := []struct{ in, want string }{
		{"lbs", "lb"},
		{"tsps", "tsp"},
		{"tbsps", "tbsp"},
		{"ozs", "oz"},
		{"cups", "cup"},
		{"cans", "can"},
		{"packages", "package"},
		{"pints", "pint"},
		{"quarts", "quart"},
		{"gallons", "gallon"},
	}
	for _, c := range cases {
		if got := Word(c.in); got != c.want {
			t.Errorf("Word(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPhrase(t *testing.T) {
	in := []string{"apples", "raw", "skins"}
	got := Phrase(in)
	want := []string{"apple", "raw", "skin"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Phrase[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if in[0] != "apples" {
		t.Error("Phrase mutated its input")
	}
}

func TestEmptyAndShort(t *testing.T) {
	for _, w := range []string{"", "a", "is", "as"} {
		if got := Word(w); got != w {
			t.Errorf("Word(%q) = %q, want unchanged", w, got)
		}
	}
}

// Property: lemmatization is idempotent — Word(Word(x)) == Word(x).
func TestIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Word(s)
		return Word(once) == once
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// And on realistic vocabulary.
	for _, w := range []string{"apples", "tomatoes", "berries", "dishes", "cups", "leaves"} {
		once := Word(w)
		if Word(once) != once {
			t.Errorf("not idempotent on %q: %q → %q", w, once, Word(once))
		}
	}
}

// Property: a lemma is never longer than the input plus two runes (the
// longest expansion is ife/man style replacements).
func TestLemmaNeverGrowsMuch(t *testing.T) {
	f := func(s string) bool {
		return len(Word(s)) <= len(s)+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWord(b *testing.B) {
	words := []string{"apples", "tomatoes", "tablespoons", "butter", "berries"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Word(words[i%len(words)])
	}
}
