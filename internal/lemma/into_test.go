package lemma

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestLemmaIntoMatchesPhrase pins the appending path to Phrase with one
// destination buffer reused across calls.
func TestLemmaIntoMatchesPhrase(t *testing.T) {
	var dst []string
	check := func(s string) bool {
		tokens := strings.Fields(strings.ToLower(s))
		want := Phrase(tokens)
		dst = LemmaInto(dst[:0], tokens)
		if len(want) == 0 && len(dst) == 0 {
			return true
		}
		return reflect.DeepEqual(dst, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestNounTableMergesExceptionsAndInvariants: the one-probe table must
// reproduce the original two-lookup order — exceptions first, then
// invariants mapping to themselves.
func TestNounTableMergesExceptionsAndInvariants(t *testing.T) {
	for w, want := range nounExceptions {
		if got := Word(w); got != want {
			t.Errorf("Word(%q) = %q, want exception %q", w, got, want)
		}
	}
	for w := range invariants {
		if got := Word(w); got != w {
			t.Errorf("Word(%q) = %q, want invariant unchanged", w, got)
		}
	}
}

// TestNounFastPathGate: the last-byte gate skipping the rule scan must
// be exact — every detachment suffix ends in 's' except "men". Words
// that do not end in 's' and are not "-men" must come back as the
// identical string (zero-copy), while suffixed forms still detach.
func TestNounFastPathGate(t *testing.T) {
	unchanged := []string{"flour", "butter", "chicken", "oven", "corn", "cinnamon"}
	for _, w := range unchanged {
		if got := Word(w); got != w {
			t.Errorf("Word(%q) = %q, want unchanged", w, got)
		}
	}
	detached := map[string]string{
		"cups":      "cup",
		"dishes":    "dish",
		"ramekins":  "ramekin",
		"craftsmen": "craftsman",
	}
	for w, want := range detached {
		if got := Word(w); got != want {
			t.Errorf("Word(%q) = %q, want %q", w, got, want)
		}
	}
}
