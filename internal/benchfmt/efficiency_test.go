package benchfmt

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// effSample is one benchmark swept with -cpu 1,4,8 (perfect scaling at
// 4, sublinear at 8) plus a series with no 1-proc baseline and a
// single-proc-only series, which must both be skipped.
const effSample = `goos: linux
BenchmarkEstimateBatch/parallel     	     100	   8000000 ns/op	  50000 phrases/s
BenchmarkEstimateBatch/parallel-4   	     400	   2000000 ns/op	 200000 phrases/s
BenchmarkEstimateBatch/parallel-8   	     500	   1600000 ns/op	 250000 phrases/s
BenchmarkNoBaseline-4               	     100	   1000000 ns/op
BenchmarkSoloSeq                    	     100	   1000000 ns/op
PASS
`

func parseEff(t *testing.T, s string) []Entry {
	t.Helper()
	entries, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func TestParallelEfficiency(t *testing.T) {
	effs := ParallelEfficiency(parseEff(t, effSample))
	if len(effs) != 2 {
		t.Fatalf("got %d efficiencies, want 2 (no-baseline and solo series skipped): %+v", len(effs), effs)
	}
	// eff(4) = 8e6 / (4 × 2e6) = 1.0; eff(8) = 8e6 / (8 × 1.6e6) = 0.625.
	if e := effs[0]; e.Name != "BenchmarkEstimateBatch/parallel" || e.Procs != 4 || math.Abs(e.Value-1.0) > 1e-9 {
		t.Errorf("eff(4) = %+v, want 1.0", e)
	}
	if e := effs[1]; e.Procs != 8 || math.Abs(e.Value-0.625) > 1e-9 {
		t.Errorf("eff(8) = %+v, want 0.625", e)
	}
}

func TestParallelEfficiencyLastEntryWins(t *testing.T) {
	// A rerun of the same series later in the file replaces the first
	// measurement, mirroring Gate's map-build semantics.
	s := effSample + "BenchmarkEstimateBatch/parallel-4 200 4000000 ns/op\n"
	effs := ParallelEfficiency(parseEff(t, s))
	if e := effs[0]; e.Procs != 4 || math.Abs(e.Value-0.5) > 1e-9 {
		t.Errorf("eff(4) after rerun = %+v, want 0.5 (8e6 / (4 × 4e6))", e)
	}
}

func TestGateEfficiencyPass(t *testing.T) {
	old := parseEff(t, effSample)
	// 8-proc series 8% less efficient: 1.6e6 → 1.74e6 ns/op gives
	// eff 0.625 → 0.575, a 8.05% drop — inside the 10% budget.
	s := strings.Replace(effSample, "1600000 ns/op", "1740000 ns/op", 1)
	if regs := GateEfficiency(old, parseEff(t, s), 0.10); len(regs) != 0 {
		t.Fatalf("8%% efficiency drop tripped the 10%% gate: %+v", regs)
	}
}

func TestGateEfficiencyFail(t *testing.T) {
	old := parseEff(t, effSample)
	// 4-proc series halves in efficiency (2e6 → 4e6 ns/op while the
	// 1-proc baseline is unchanged): a 50% drop must fail the gate and
	// name the -4 series.
	s := strings.Replace(effSample, "2000000 ns/op", "4000000 ns/op", 1)
	regs := GateEfficiency(old, parseEff(t, s), 0.10)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	if regs[0].Name != "BenchmarkEstimateBatch/parallel-4" {
		t.Errorf("regression names %q, want the -4 series", regs[0].Name)
	}
	if !strings.Contains(regs[0].Reason, "parallel efficiency") {
		t.Errorf("reason %q does not mention parallel efficiency", regs[0].Reason)
	}
}

func TestGateEfficiencyIgnoresOneSidedSeries(t *testing.T) {
	old := parseEff(t, effSample)
	// The candidate run lost its 1-proc baseline: no efficiency can be
	// derived, so nothing gates — like Gate's added/removed rule.
	s := strings.Replace(effSample,
		"BenchmarkEstimateBatch/parallel     	     100	   8000000 ns/op	  50000 phrases/s\n", "", 1)
	if regs := GateEfficiency(old, parseEff(t, s), 0.10); len(regs) != 0 {
		t.Fatalf("series without baseline should be ignored: %+v", regs)
	}
	// And a slower baseline with proportionally slower parallel runs is
	// an absolute slowdown but NOT an efficiency regression.
	slower := strings.NewReplacer(
		"8000000 ns/op", "16000000 ns/op",
		"2000000 ns/op", "4000000 ns/op",
		"1600000 ns/op", "3200000 ns/op",
	).Replace(effSample)
	if regs := GateEfficiency(old, parseEff(t, slower), 0.10); len(regs) != 0 {
		t.Fatalf("uniform 2× slowdown must not trip the efficiency gate: %+v", regs)
	}
}

func TestWriteJSONIncludesEfficiency(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, parseEff(t, effSample)); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Efficiency) != 2 {
		t.Fatalf("artifact carries %d efficiency rows, want 2: %+v", len(rep.Efficiency), rep.Efficiency)
	}
	if rep.Efficiency[0].Procs != 4 || rep.Efficiency[1].Procs != 8 {
		t.Errorf("efficiency rows not sorted by procs: %+v", rep.Efficiency)
	}
}
