package benchfmt

// Parallel-efficiency derivation and gate. A benchmark run at -cpu
// 1,4,8 yields one series per proc count; the derived metric
//
//	eff(N) = throughput(N) / (N × throughput(1)) = ns1 / (N × nsN)
//
// is 1.0 for perfect linear scaling, and *independent of the absolute
// speed of the runner* — which is what makes it gateable in CI: raw
// ns/op of an oversubscribed -cpu 8 run on a 2-core runner is noise,
// but the old-vs-new efficiency ratio on the same runner is not. The
// nightly workflow fails when a series' efficiency drops more than 10%
// relative to the previous commit (a contention regression: someone
// re-introduced a shared hot cache line or lock).

import (
	"fmt"
	"sort"
)

// Efficiency is the derived parallel efficiency of one multi-proc
// benchmark series relative to its own 1-proc baseline.
type Efficiency struct {
	Name  string  `json:"name"`
	Procs int     `json:"procs"`
	Value float64 `json:"efficiency"` // 1.0 = perfect linear scaling
}

// effKey reuses the Gate identity: a series is (name, procs).
type effKey = gateKey

// lastByKey collapses entries to the last one per (name, procs) — the
// same last-entry-wins rule Gate applies via its map build.
func lastByKey(entries []Entry) map[effKey]Entry {
	m := make(map[effKey]Entry, len(entries))
	for _, e := range entries {
		m[effKey{e.Name, e.Procs}] = e
	}
	return m
}

// ParallelEfficiency derives eff(N) for every series with a 1-proc
// baseline and at least one N>1 measurement in the same entry set.
// Series without a 1-proc baseline, and entries with non-positive
// ns/op, are skipped. Output is sorted by (name, procs) so artifacts
// diff cleanly.
func ParallelEfficiency(entries []Entry) []Efficiency {
	byKey := lastByKey(entries)
	var out []Efficiency
	for k, e := range byKey {
		if k.procs <= 1 || e.NsPerOp <= 0 {
			continue
		}
		base, ok := byKey[effKey{k.name, 1}]
		if !ok || base.NsPerOp <= 0 {
			continue
		}
		out = append(out, Efficiency{
			Name:  k.name,
			Procs: k.procs,
			Value: base.NsPerOp / (float64(k.procs) * e.NsPerOp),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Procs < out[j].Procs
	})
	return out
}

// GateEfficiency compares the parallel efficiency of new against old
// (matched by name and procs) and returns a violation for every series
// whose efficiency dropped by more than maxDrop (e.g. 0.10 = a series
// at 0.80 may not fall below 0.72). Series present on only one side —
// including series that lost their 1-proc baseline — are ignored, like
// Gate's treatment of added/removed benchmarks.
func GateEfficiency(old, new []Entry, maxDrop float64) []Regression {
	base := make(map[effKey]float64)
	for _, eff := range ParallelEfficiency(old) {
		base[effKey{eff.Name, eff.Procs}] = eff.Value
	}
	var regs []Regression
	for _, eff := range ParallelEfficiency(new) {
		o, ok := base[effKey{eff.Name, eff.Procs}]
		if !ok || o <= 0 {
			continue
		}
		if eff.Value < o*(1-maxDrop) {
			regs = append(regs, Regression{
				Name: fmt.Sprintf("%s-%d", eff.Name, eff.Procs),
				Reason: fmt.Sprintf("parallel efficiency %.3f → %.3f (%.1f%% drop, limit %.0f%%)",
					o, eff.Value, 100*(1-eff.Value/o), 100*maxDrop),
			})
		}
	}
	return regs
}
