// Package benchfmt parses the standard `go test -bench` text format into
// structured entries, serializes them as JSON for artifact tracking
// (make bench-json → BENCH_match.json), and implements the regression
// gate the nightly workflow enforces: a match benchmark may not get more
// than 10% slower in ns/op, and may not regress in allocs/op at all —
// the zero-allocation warm path is a hard property, not a statistic.
//
// The parser is dependency-free on purpose: the container builds with
// the standard library only, so the gate itself is unit-testable here
// while the (optional) human-readable old-vs-new delta in CI comes from
// benchstat installed on the runner.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result line, e.g.
//
//	BenchmarkRank-8   869994   1423 ns/op   0 B/op   0 allocs/op
//
// Fields not present on the line (no -benchmem) stay at -1 so the gate
// can distinguish "zero allocations" from "not measured".
type Entry struct {
	Name        string  `json:"name"`  // without the -GOMAXPROCS suffix
	Procs       int     `json:"procs"` // the -N suffix, 1 if absent
	Runs        int64   `json:"runs"`  // iteration count
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`  // -1 when not measured
	AllocsPerOp int64   `json:"allocs_per_op"` // -1 when not measured
	// Extra holds non-standard custom metrics (e.g. phrases/s from the
	// batch benchmarks), unit → value.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Parse reads every benchmark line from r, in input order. Non-benchmark
// lines (goos/pkg headers, PASS, test logs) are skipped.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		e, ok, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: %q: %w", line, err)
		}
		if ok {
			out = append(out, e)
		}
	}
	return out, sc.Err()
}

func parseLine(line string) (Entry, bool, error) {
	fields := strings.Fields(line)
	// Shortest valid line: name, runs, value, unit.
	if len(fields) < 4 {
		return Entry{}, false, nil
	}
	e := Entry{Procs: 1, BytesPerOp: -1, AllocsPerOp: -1}
	e.Name = fields[0]
	if i := strings.LastIndex(e.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(e.Name[i+1:]); err == nil {
			e.Procs = p
			e.Name = e.Name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false, fmt.Errorf("iteration count: %w", err)
	}
	e.Runs = runs
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false, fmt.Errorf("metric value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
			seenNs = true
		case "B/op":
			e.BytesPerOp = int64(val)
		case "allocs/op":
			e.AllocsPerOp = int64(val)
		default:
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[unit] = val
		}
	}
	if !seenNs {
		return Entry{}, false, nil
	}
	return e, true, nil
}

// Filter returns the entries whose Name contains any of the given
// substrings (all entries when none are given).
func Filter(entries []Entry, substrings ...string) []Entry {
	if len(substrings) == 0 {
		return entries
	}
	var out []Entry
	for _, e := range entries {
		for _, s := range substrings {
			if strings.Contains(e.Name, s) {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// Report is the JSON artifact schema for BENCH_*.json. Entries that
// were run at several -cpu values additionally surface their derived
// parallel-efficiency curve (see ParallelEfficiency), so the scaling
// shape is readable straight off the artifact.
type Report struct {
	Benchmarks []Entry      `json:"benchmarks"`
	Efficiency []Efficiency `json:"parallel_efficiency,omitempty"`
}

// WriteJSON emits the entries as an indented JSON report, sorted by
// (name, procs) so successive artifacts diff cleanly — the same
// benchmark run at -cpu 1,4,8 yields stably-ordered entries plus its
// efficiency curve.
func WriteJSON(w io.Writer, entries []Entry) error {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return sorted[i].Procs < sorted[j].Procs
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Benchmarks: sorted, Efficiency: ParallelEfficiency(sorted)})
}

// Regression is one gate violation.
type Regression struct {
	Name   string
	Reason string
}

func (r Regression) String() string { return r.Name + ": " + r.Reason }

// gateKey identifies one comparable series: a benchmark run at -cpu 1,4
// is two series, and a 4-proc result must never gate against the 1-proc
// baseline.
type gateKey struct {
	name  string
	procs int
}

// Gate compares new against old entries (matched by Name and Procs) and
// returns every violation of the perf contract: ns/op more than
// maxSlowdown worse (e.g. 0.10 = +10%), or any increase in allocs/op.
// Benchmarks present on only one side are ignored — adding or removing
// a benchmark is not a regression.
func Gate(old, new []Entry, maxSlowdown float64) []Regression {
	base := make(map[gateKey]Entry, len(old))
	for _, e := range old {
		base[gateKey{e.Name, e.Procs}] = e
	}
	var regs []Regression
	for _, e := range new {
		o, ok := base[gateKey{e.Name, e.Procs}]
		if !ok {
			continue
		}
		// Report multi-proc series under their -N suffix so a -cpu 1,4
		// violation names the series that regressed.
		name := e.Name
		if e.Procs != 1 {
			name = fmt.Sprintf("%s-%d", e.Name, e.Procs)
		}
		if o.NsPerOp > 0 && e.NsPerOp > o.NsPerOp*(1+maxSlowdown) {
			regs = append(regs, Regression{
				Name: name,
				Reason: fmt.Sprintf("ns/op %.1f → %.1f (+%.1f%%, limit +%.0f%%)",
					o.NsPerOp, e.NsPerOp, 100*(e.NsPerOp/o.NsPerOp-1), 100*maxSlowdown),
			})
		}
		if o.AllocsPerOp >= 0 && e.AllocsPerOp > o.AllocsPerOp {
			regs = append(regs, Regression{
				Name: name,
				Reason: fmt.Sprintf("allocs/op %d → %d (any increase fails)",
					o.AllocsPerOp, e.AllocsPerOp),
			})
		}
	}
	return regs
}
