package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: nutriprofile/internal/match
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMatchSeed    	 1000000	      1075 ns/op	       0 B/op	       0 allocs/op
BenchmarkMatchName-8  	  703645	      1484 ns/op	       0 B/op	       0 allocs/op
BenchmarkRank         	  869994	      1423 ns/op	       0 B/op	       0 allocs/op
BenchmarkEstimateBatch/sequential-8         	     100	  11169870 ns/op	     44706 phrases/s	  269691 allocs/op
BenchmarkNoMem 	  500	   2000 ns/op
PASS
ok  	nutriprofile/internal/match	7.419s
`

func TestParse(t *testing.T) {
	entries, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("parsed %d entries, want 5", len(entries))
	}
	e := entries[1]
	if e.Name != "BenchmarkMatchName" || e.Procs != 8 || e.Runs != 703645 ||
		e.NsPerOp != 1484 || e.BytesPerOp != 0 || e.AllocsPerOp != 0 {
		t.Errorf("MatchName parsed wrong: %+v", e)
	}
	if b := entries[3]; b.Name != "BenchmarkEstimateBatch/sequential" ||
		b.Extra["phrases/s"] != 44706 || b.AllocsPerOp != 269691 {
		t.Errorf("batch entry parsed wrong: %+v", b)
	}
	if nm := entries[4]; nm.AllocsPerOp != -1 || nm.BytesPerOp != -1 {
		t.Errorf("missing -benchmem should leave -1 sentinels: %+v", nm)
	}
}

func TestFilter(t *testing.T) {
	entries, _ := Parse(strings.NewReader(sample))
	got := Filter(entries, "MatchName", "Rank")
	if len(got) != 2 || got[0].Name != "BenchmarkMatchName" || got[1].Name != "BenchmarkRank" {
		t.Fatalf("Filter = %+v", got)
	}
	if all := Filter(entries); len(all) != len(entries) {
		t.Fatal("no-substring Filter should keep everything")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	entries, _ := Parse(strings.NewReader(sample))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, entries); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != len(entries) {
		t.Fatalf("round-trip lost entries: %d vs %d", len(rep.Benchmarks), len(entries))
	}
	for i := 1; i < len(rep.Benchmarks); i++ {
		if rep.Benchmarks[i-1].Name > rep.Benchmarks[i].Name {
			t.Fatal("JSON output not sorted by name")
		}
	}
}

// TestGateProcs pins the -cpu 1,4 behavior: the same benchmark name at
// different GOMAXPROCS is two independent series. A 4-proc result must
// gate only against the 4-proc baseline, and a violation names the
// series with its -N suffix.
func TestGateProcs(t *testing.T) {
	old := []Entry{
		{Name: "BenchmarkEstimateBatch/parallel", Procs: 1, NsPerOp: 4000, AllocsPerOp: 10},
		{Name: "BenchmarkEstimateBatch/parallel", Procs: 4, NsPerOp: 1000, AllocsPerOp: 10},
	}
	// The 4-proc series regresses; the 1-proc series is fine even though
	// its ns/op sits far above the 4-proc baseline.
	regs := Gate(old, []Entry{
		{Name: "BenchmarkEstimateBatch/parallel", Procs: 1, NsPerOp: 4100, AllocsPerOp: 10},
		{Name: "BenchmarkEstimateBatch/parallel", Procs: 4, NsPerOp: 2000, AllocsPerOp: 10},
	}, 0.10)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions (%v), want 1", len(regs), regs)
	}
	if regs[0].Name != "BenchmarkEstimateBatch/parallel-4" {
		t.Errorf("regression name = %q, want the -4 series", regs[0].Name)
	}
	// A series present on only one side is ignored, whatever its procs.
	if regs := Gate(old, []Entry{
		{Name: "BenchmarkEstimateBatch/parallel", Procs: 8, NsPerOp: 9999, AllocsPerOp: 99},
	}, 0.10); len(regs) != 0 {
		t.Errorf("unmatched procs should not gate: %v", regs)
	}
}

// TestWriteJSONProcsOrder pins the artifact ordering: same name sorts
// by procs so a -cpu 1,4 run diffs cleanly between nightlies.
func TestWriteJSONProcsOrder(t *testing.T) {
	var buf bytes.Buffer
	err := WriteJSON(&buf, []Entry{
		{Name: "BenchmarkB", Procs: 4, NsPerOp: 1},
		{Name: "BenchmarkA", Procs: 4, NsPerOp: 1},
		{Name: "BenchmarkB", Procs: 1, NsPerOp: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	got := make([][2]any, len(rep.Benchmarks))
	for i, e := range rep.Benchmarks {
		got[i] = [2]any{e.Name, e.Procs}
	}
	want := [][2]any{{"BenchmarkA", 4}, {"BenchmarkB", 1}, {"BenchmarkB", 4}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestGate(t *testing.T) {
	old := []Entry{
		{Name: "BenchmarkRank", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "BenchmarkMatchName", NsPerOp: 2000, AllocsPerOp: 0},
		{Name: "BenchmarkRemoved", NsPerOp: 10, AllocsPerOp: 0},
	}
	cases := []struct {
		name string
		new  []Entry
		want int
	}{
		{"identical", old[:2], 0},
		{"within 10%", []Entry{{Name: "BenchmarkRank", NsPerOp: 1099, AllocsPerOp: 0}}, 0},
		{"ns regression", []Entry{{Name: "BenchmarkRank", NsPerOp: 1101, AllocsPerOp: 0}}, 1},
		{"alloc regression", []Entry{{Name: "BenchmarkRank", NsPerOp: 900, AllocsPerOp: 1}}, 1},
		{"both regress", []Entry{{Name: "BenchmarkRank", NsPerOp: 3000, AllocsPerOp: 5}}, 2},
		{"new benchmark ignored", []Entry{{Name: "BenchmarkBrandNew", NsPerOp: 1, AllocsPerOp: 99}}, 0},
		{"faster is fine", []Entry{{Name: "BenchmarkRank", NsPerOp: 100, AllocsPerOp: 0}}, 0},
		{"unmeasured allocs skip the alloc gate",
			[]Entry{{Name: "BenchmarkNoMem", NsPerOp: 1, AllocsPerOp: 5}}, 0},
	}
	oldPlusNoMem := append(old, Entry{Name: "BenchmarkNoMem", NsPerOp: 1, AllocsPerOp: -1})
	for _, tc := range cases {
		regs := Gate(oldPlusNoMem, tc.new, 0.10)
		if len(regs) != tc.want {
			t.Errorf("%s: %d regressions (%v), want %d", tc.name, len(regs), regs, tc.want)
		}
	}
}
