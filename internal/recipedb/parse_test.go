package recipedb

import (
	"strings"
	"testing"

	"nutriprofile/internal/yield"
)

func TestParseTextFull(t *testing.T) {
	text := `Baked Macaroni and Cheese
Serves 6

Ingredients:
8 oz pasta
2 cups cheddar cheese , shredded
2 cups milk
2 tablespoons butter

Instructions:
Preheat the oven to 180C.
Combine everything and bake for 30 minutes.
`
	rec, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Title != "Baked Macaroni and Cheese" {
		t.Errorf("title = %q", rec.Title)
	}
	if rec.Servings != 6 || rec.ServingsText != "Serves 6" {
		t.Errorf("servings = %d %q", rec.Servings, rec.ServingsText)
	}
	if len(rec.Ingredients) != 4 {
		t.Fatalf("ingredients = %d: %v", len(rec.Ingredients), rec.Phrases())
	}
	if rec.Ingredients[0].Phrase != "8 oz pasta" {
		t.Errorf("first ingredient = %q", rec.Ingredients[0].Phrase)
	}
	if len(rec.Instructions) != 2 {
		t.Fatalf("instructions = %d", len(rec.Instructions))
	}
	if rec.Method != yield.Baked {
		t.Errorf("method = %v, want baked", rec.Method)
	}
}

func TestParseTextNoHeaders(t *testing.T) {
	text := `Simple Salad
2 cups lettuce , shredded
1 tomato , diced
1 tablespoon olive oil
`
	rec, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Title != "Simple Salad" {
		t.Errorf("title = %q", rec.Title)
	}
	if len(rec.Ingredients) != 3 {
		t.Fatalf("ingredients = %d", len(rec.Ingredients))
	}
	// "2 cups lettuce" must NOT be eaten as a servings line.
	if rec.Servings != 1 {
		t.Errorf("servings = %d, want default 1", rec.Servings)
	}
	if rec.Method != yield.None {
		t.Errorf("method = %v, want none (from title)", rec.Method)
	}
}

func TestParseTextBareServingsNumber(t *testing.T) {
	text := "Stew\n4\n1 lb stew beef\n"
	rec, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Servings != 4 {
		t.Errorf("servings = %d, want 4", rec.Servings)
	}
	if len(rec.Ingredients) != 1 {
		t.Fatalf("ingredients = %v", rec.Phrases())
	}
	if rec.Method != yield.Stewed {
		t.Errorf("method = %v, want stewed (title)", rec.Method)
	}
}

func TestParseTextDirectionsAlias(t *testing.T) {
	text := "T\n1 egg\nDirections\nBoil for 7 minutes.\n"
	rec, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Instructions) != 1 || rec.Method != yield.Boiled {
		t.Errorf("instructions=%v method=%v", rec.Instructions, rec.Method)
	}
}

func TestParseTextErrors(t *testing.T) {
	if _, err := ParseText(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ParseText(strings.NewReader("Title Only\n")); err == nil {
		t.Error("title-only input accepted")
	}
}
