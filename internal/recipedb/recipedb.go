// Package recipedb is the corpus substrate: a RecipeDB-style collection
// of recipes whose ingredient sections are noisy natural-language phrases.
//
// The paper consumes 118,071 scraped recipes from AllRecipes and FOOD.com.
// This package substitutes a deterministic generator that renders phrases
// from a structured gold model, reproducing the noise classes the paper
// documents — fraction and range quantities ("2 1/2", "2-4"), unit aliases
// ("tbsp"/"tablespoon"), post-comma states ("onion , finely chopped"),
// dual-unit phrases ("500 g or 1 cup"), missing units, and region-specific
// ingredients absent from the composition table ("garam masala"). Because
// every phrase is rendered from structure, the corpus carries exact ground
// truth for NER labels, USDA identity, gram weight and per-serving
// calories — the role the AllRecipes third-party profiles play in §III.
package recipedb

import (
	"fmt"

	"nutriprofile/internal/ner"
	"nutriprofile/internal/nutrition"
	"nutriprofile/internal/yield"
)

// Gold is the ground truth behind one rendered ingredient phrase.
type Gold struct {
	// NDB is the true composition-table food. For Regional ingredients
	// it refers to the FAO-style regional table (usda.Regional), which
	// the US-centric primary table cannot map — the paper's "garam
	// masala" case.
	NDB int
	// Regional marks ingredients absent from the primary table.
	Regional bool
	// Name is the surface ingredient name used in the phrase.
	Name string
	// State/Temp/DryFresh/Size are the entity values rendered, if any.
	State, Temp, DryFresh, Size string
	// Quantity is the numeric quantity after normalization (2-4 → 3).
	Quantity float64
	// Unit is the canonical unit rendered, or "" for bare counts.
	Unit string
	// Grams is the true gram weight of the whole ingredient line.
	Grams float64
}

// Ingredient is one line of a recipe's ingredient section.
type Ingredient struct {
	// Phrase is the noisy rendered text, e.g. "2-4 cloves garlic , minced".
	Phrase string
	// Tokens and Labels are the gold NER annotation of Phrase. Tokens
	// equals textutil.Tokenize(Phrase).
	Tokens []string
	Labels []ner.Label
	// Gold is the structured ground truth.
	Gold Gold
}

// Recipe is one recipe with its gold nutritional profile.
type Recipe struct {
	ID      int
	Title   string
	Cuisine string
	// Servings is the true serving count; ServingsText is the noisy
	// surface form recipes publish ("Serves 4", "4-6 servings"). The
	// paper's calorie evaluation keeps only recipes with "clean,
	// well-defined servings" — units.ParseServings recovers both the
	// count and the cleanliness from the text.
	Servings     int
	ServingsText string
	// Method is the dish's cooking method (inferable from Title, which
	// always contains the dish word, and from Instructions).
	Method yield.Method
	// Ingredients is the rendered ingredient section.
	Ingredients []Ingredient
	// Instructions is the cooking-instructions section (RecipeDB stores
	// one per recipe; the core pipeline ignores it, the yield extension
	// mines it for the cooking method).
	Instructions []string
	// GoldTotal is the true RAW nutrient total over all ingredient lines
	// (including unmappable ones — their nutrition is real even if the
	// composition table cannot supply it). The as-cooked truth is
	// GoldCookedTotal.
	GoldTotal nutrition.Profile
}

// GoldPerServing returns the true raw-sum per-serving profile.
func (r *Recipe) GoldPerServing() nutrition.Profile {
	if r.Servings <= 0 {
		return r.GoldTotal
	}
	return r.GoldTotal.Scale(1 / float64(r.Servings))
}

// GoldCookedTotal returns the true as-cooked nutrient total: the raw sum
// corrected by the dish's cooking-method retention factors (the Bognár
// adjustment the paper cites as the accuracy ceiling of the raw-sum
// approximation).
func (r *Recipe) GoldCookedTotal() nutrition.Profile {
	return yield.Apply(r.GoldTotal, r.Method)
}

// GoldCookedPerServing returns the as-cooked per-serving profile.
func (r *Recipe) GoldCookedPerServing() nutrition.Profile {
	if r.Servings <= 0 {
		return r.GoldCookedTotal()
	}
	return r.GoldCookedTotal().Scale(1 / float64(r.Servings))
}

// Corpus is a generated recipe collection.
type Corpus struct {
	Recipes []Recipe
}

// Len returns the number of recipes.
func (c *Corpus) Len() int { return len(c.Recipes) }

// Phrases streams every ingredient phrase in the corpus.
func (c *Corpus) Phrases() []string {
	var out []string
	for i := range c.Recipes {
		for j := range c.Recipes[i].Ingredients {
			out = append(out, c.Recipes[i].Ingredients[j].Phrase)
		}
	}
	return out
}

// Examples converts the corpus's gold annotations into NER training
// examples.
func (c *Corpus) Examples() []ner.Example {
	var out []ner.Example
	for i := range c.Recipes {
		for j := range c.Recipes[i].Ingredients {
			ing := &c.Recipes[i].Ingredients[j]
			out = append(out, ner.Example{Tokens: ing.Tokens, Labels: ing.Labels})
		}
	}
	return out
}

// Validate checks internal consistency of a recipe (for tests and
// loaders).
func (r *Recipe) Validate() error {
	if r.Servings <= 0 {
		return fmt.Errorf("recipedb: recipe %d has servings %d", r.ID, r.Servings)
	}
	if len(r.Ingredients) == 0 {
		return fmt.Errorf("recipedb: recipe %d has no ingredients", r.ID)
	}
	for i, ing := range r.Ingredients {
		if len(ing.Tokens) != len(ing.Labels) {
			return fmt.Errorf("recipedb: recipe %d ingredient %d: %d tokens vs %d labels",
				r.ID, i, len(ing.Tokens), len(ing.Labels))
		}
		if ing.Gold.Grams < 0 || ing.Gold.Quantity < 0 {
			return fmt.Errorf("recipedb: recipe %d ingredient %d: negative gold", r.ID, i)
		}
	}
	if !r.GoldTotal.Valid() {
		return fmt.Errorf("recipedb: recipe %d has invalid gold profile", r.ID)
	}
	return nil
}
