package recipedb

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCorpusCSVRoundTrip(t *testing.T) {
	orig := genCorpus(t, 80, 13)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip: %d recipes, want %d", back.Len(), orig.Len())
	}
	for i := range orig.Recipes {
		a, b := &orig.Recipes[i], &back.Recipes[i]
		if a.ID != b.ID || a.Title != b.Title || a.Cuisine != b.Cuisine ||
			a.Servings != b.Servings || a.ServingsText != b.ServingsText ||
			a.Method != b.Method {
			t.Fatalf("recipe %d header mismatch:\n%+v\n%+v", i, a, b)
		}
		if a.GoldTotal != b.GoldTotal {
			t.Fatalf("recipe %d gold total mismatch", i)
		}
		if !reflect.DeepEqual(a.Instructions, b.Instructions) {
			t.Fatalf("recipe %d instructions mismatch:\n%v\n%v", i, a.Instructions, b.Instructions)
		}
		if len(a.Ingredients) != len(b.Ingredients) {
			t.Fatalf("recipe %d ingredient count mismatch", i)
		}
		for j := range a.Ingredients {
			ia, ib := &a.Ingredients[j], &b.Ingredients[j]
			if ia.Phrase != ib.Phrase {
				t.Fatalf("phrase mismatch: %q vs %q", ia.Phrase, ib.Phrase)
			}
			if !reflect.DeepEqual(ia.Tokens, ib.Tokens) {
				t.Fatalf("tokens mismatch for %q", ia.Phrase)
			}
			if !reflect.DeepEqual(ia.Labels, ib.Labels) {
				t.Fatalf("labels mismatch for %q", ia.Phrase)
			}
			if ia.Gold != ib.Gold {
				t.Fatalf("gold mismatch for %q:\n%+v\n%+v", ia.Phrase, ia.Gold, ib.Gold)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"ingredient before recipe": `I,1,x,NAME,1,false,x,,,,,1,,5` + "\n",
		"unknown record type":      `X,1` + "\n",
		"short R record":           `R,1,t,c,4` + "\n",
		"bad servings":             `R,1,t,c,abc,4,none,0,0,0,0,0,0,0,0,0,0,0` + "\n",
		"bad label": `R,1,t,c,4,4,none,0,0,0,0,0,0,0,0,0,0,0` + "\n" +
			`I,1,1 cup milk,BOGUS BOGUS BOGUS,1077,false,milk,,,,,1,cup,244` + "\n",
		"label arity": `R,1,t,c,4,4,none,0,0,0,0,0,0,0,0,0,0,0` + "\n" +
			`I,1,1 cup milk,NAME,1077,false,milk,,,,,1,cup,244` + "\n",
		"mismatched recipe id": `R,1,t,c,4,4,none,0,0,0,0,0,0,0,0,0,0,0` + "\n" +
			`I,9,1 cup milk,QUANTITY UNIT NAME,1077,false,milk,,,,,1,cup,244` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadCSV accepted bad input", name)
		}
	}
}

func TestReadCSVEmpty(t *testing.T) {
	c, err := ReadCSV(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Errorf("empty input produced %d recipes", c.Len())
	}
}
