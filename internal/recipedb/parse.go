package recipedb

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"nutriprofile/internal/instructions"
	"nutriprofile/internal/units"
	"nutriprofile/internal/yield"
)

// ParseText reads a recipe in the plain-text layout recipe sites export
// and users write by hand:
//
//	Title line
//	Serves 4                      (optional; any servings spelling)
//
//	Ingredients:                  (header optional)
//	2 cups all-purpose flour
//	1/2 cup butter, softened
//
//	Instructions:                 (section optional)
//	Preheat the oven to 180C...
//
// Sections are recognized by their headers (case-insensitive,
// "ingredients"/"instructions"/"directions"/"method", trailing colon
// optional). Without headers, every non-blank line after the title and
// servings is an ingredient. The returned Recipe carries no gold
// annotations — it is pipeline input, not corpus data — but Method is
// inferred from the instruction text when present.
func ParseText(r io.Reader) (*Recipe, error) {
	sc := bufio.NewScanner(r)
	rec := &Recipe{ID: 1, Servings: 1, ServingsText: "1"}

	const (
		inPreamble = iota
		inIngredients
		inInstructions
	)
	state := inPreamble
	sawTitle := false

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch header(line) {
		case "ingredients":
			state = inIngredients
			continue
		case "instructions":
			state = inInstructions
			continue
		}
		switch state {
		case inPreamble:
			if !sawTitle {
				rec.Title = line
				sawTitle = true
				continue
			}
			if n, _, ok := units.ParseServings(line); ok && looksLikeServings(line) {
				rec.Servings = n
				rec.ServingsText = line
				continue
			}
			// First non-title, non-servings line starts the ingredients.
			state = inIngredients
			fallthrough
		case inIngredients:
			rec.Ingredients = append(rec.Ingredients, Ingredient{Phrase: line})
		case inInstructions:
			rec.Instructions = append(rec.Instructions, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("recipedb: reading recipe text: %w", err)
	}
	if len(rec.Ingredients) == 0 {
		return nil, fmt.Errorf("recipedb: no ingredient lines found")
	}
	if len(rec.Instructions) > 0 {
		rec.Method = instructions.InferMethod(rec.Instructions)
	} else {
		rec.Method = yield.InferFromTitle(rec.Title)
	}
	return rec, nil
}

// header canonicalizes a section header line, or returns "".
func header(line string) string {
	h := strings.ToLower(strings.TrimSuffix(strings.TrimSpace(line), ":"))
	switch h {
	case "ingredients", "ingredient list":
		return "ingredients"
	case "instructions", "directions", "method", "preparation", "steps":
		return "instructions"
	}
	return ""
}

// looksLikeServings guards against eating an ingredient line as the
// servings ("2 cups flour" parses as servings=2 otherwise): a servings
// line mentions serves/servings/makes/yield or is a bare number.
func looksLikeServings(line string) bool {
	l := strings.ToLower(line)
	for _, kw := range []string{"serve", "serving", "makes", "yield", "portion"} {
		if strings.Contains(l, kw) {
			return true
		}
	}
	return strings.IndexFunc(l, func(r rune) bool { return r < '0' || r > '9' }) == -1
}

// Phrases returns the raw ingredient phrases of one recipe (mirroring
// Corpus.Phrases for single parsed recipes).
func (r *Recipe) Phrases() []string {
	out := make([]string, len(r.Ingredients))
	for i := range r.Ingredients {
		out[i] = r.Ingredients[i].Phrase
	}
	return out
}
