package recipedb

import (
	"math"
	"math/rand"
)

// Zipf samples ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^s — the
// power-law shape of real recipe-phrase traffic, where a small head
// ("salt", "1 cup sugar") recurs across the whole corpus and the tail
// is nearly unique. Unlike math/rand's Zipf it accepts any exponent
// s >= 0, including the s <= 1 regime (RecipeDB's ingredient
// distribution sits near s ≈ 0.8–1.1), and s = 0 degenerates to the
// uniform distribution. Sampling inverts a precomputed CDF by binary
// search, so construction is O(n) and each draw is O(log n) with zero
// allocation.
type Zipf struct {
	cdf []float64 // cdf[k] = P(rank <= k); cdf[n-1] == 1
	rng *rand.Rand
}

// NewZipf builds a sampler over n ranks with exponent s, seeded
// deterministically: equal (n, s, seed) yields the identical draw
// sequence, which is what makes load runs and hit-rate experiments
// reproducible. n must be >= 1; s < 0 is treated as 0 (uniform).
func NewZipf(n int, s float64, seed int64) *Zipf {
	if n < 1 {
		n = 1
	}
	if s < 0 {
		s = 0
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // exact, despite float rounding
	return &Zipf{cdf: cdf, rng: rand.New(rand.NewSource(seed))}
}

// Next draws the next rank from the sampler's own deterministic
// stream. Not safe for concurrent use — concurrent workers should
// share the sampler and call Rank with their own rand streams.
func (z *Zipf) Next() int { return z.Rank(z.rng.Float64()) }

// Rank inverts the CDF at u ∈ [0, 1): the smallest rank k with
// cdf[k] > u. Pure and read-only, so any number of goroutines may
// call it concurrently with their own uniform variates.
func (z *Zipf) Rank(u float64) int {
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }
