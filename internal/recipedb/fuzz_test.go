package recipedb

import (
	"strings"
	"testing"
)

func FuzzReadCSV(f *testing.F) {
	// Seed with a valid single-recipe document and mutations of it.
	valid := "R,1,Title,American,4,4,baked,100,5,3,10,1,2,50,1,200,5,10\n" +
		"S,1,Bake it.\n" +
		"I,1,1 cup milk,QUANTITY UNIT NAME,1077,false,milk,,,,,1,cup,244\n"
	f.Add(valid)
	f.Add("")
	f.Add("R,1\n")
	f.Add("I,1,phrase,NAME,x,y,,,,,,,,\n")
	f.Add(strings.ReplaceAll(valid, "1077", "-5"))
	f.Fuzz(func(t *testing.T, s string) {
		// Must never panic; errors are fine.
		c, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		for i := range c.Recipes {
			if err := c.Recipes[i].Validate(); err != nil {
				t.Fatalf("ReadCSV accepted invalid recipe: %v", err)
			}
		}
	})
}
