package recipedb

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nutriprofile/internal/ner"
	"nutriprofile/internal/nutrition"
	"nutriprofile/internal/yield"
)

// CSV persistence for corpora. The format is line-oriented CSV with a
// record-type discriminator in column 0:
//
//	R, id, title, cuisine, servings, servings-text, method,
//	   <11 gold nutrient totals>
//	S, recipeID, instruction-step-text
//	I, recipeID, phrase, labels, ndb, regional, name, state, temp, df,
//	   size, quantity, unit, grams
//
// Ingredient tokens are NOT stored: Tokens == textutil.Tokenize(Phrase)
// is a generator invariant, so ReadCSV re-derives them and stores labels
// space-separated in phrase-token order.

// WriteCSV serializes the corpus.
func (c *Corpus) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range c.Recipes {
		r := &c.Recipes[i]
		g := r.GoldTotal
		rec := []string{
			"R", strconv.Itoa(r.ID), r.Title, r.Cuisine,
			strconv.Itoa(r.Servings), r.ServingsText, r.Method.String(),
			ff(g.EnergyKcal), ff(g.ProteinG), ff(g.FatG), ff(g.CarbsG),
			ff(g.FiberG), ff(g.SugarG), ff(g.CalciumMg), ff(g.IronMg),
			ff(g.SodiumMg), ff(g.VitCMg), ff(g.CholMg),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("recipedb: writing recipe %d: %w", r.ID, err)
		}
		for _, step := range r.Instructions {
			if err := cw.Write([]string{"S", strconv.Itoa(r.ID), step}); err != nil {
				return fmt.Errorf("recipedb: writing instructions of recipe %d: %w", r.ID, err)
			}
		}
		for j := range r.Ingredients {
			ing := &r.Ingredients[j]
			labels := make([]string, len(ing.Labels))
			for k, l := range ing.Labels {
				labels[k] = l.String()
			}
			gold := &ing.Gold
			rec := []string{
				"I", strconv.Itoa(r.ID), ing.Phrase, strings.Join(labels, " "),
				strconv.Itoa(gold.NDB), strconv.FormatBool(gold.Regional),
				gold.Name, gold.State, gold.Temp, gold.DryFresh, gold.Size,
				ff(gold.Quantity), gold.Unit, ff(gold.Grams),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("recipedb: writing ingredient of recipe %d: %w", r.ID, err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a corpus written by WriteCSV and validates every recipe.
func ReadCSV(r io.Reader) (*Corpus, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var corpus Corpus
	var cur *Recipe
	pf := func(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("recipedb: csv line %d: %w", line, err)
		}
		switch rec[0] {
		case "R":
			if len(rec) != 18 {
				return nil, fmt.Errorf("recipedb: line %d: R record has %d fields, want 18", line, len(rec))
			}
			id, err1 := strconv.Atoi(rec[1])
			servings, err2 := strconv.Atoi(rec[4])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("recipedb: line %d: bad recipe numbers", line)
			}
			var vals [11]float64
			for i := range vals {
				if vals[i], err = pf(rec[7+i]); err != nil {
					return nil, fmt.Errorf("recipedb: line %d: bad gold nutrient: %w", line, err)
				}
			}
			corpus.Recipes = append(corpus.Recipes, Recipe{
				ID: id, Title: rec[2], Cuisine: rec[3],
				Servings: servings, ServingsText: rec[5],
				Method: yield.ParseMethod(rec[6]),
				GoldTotal: nutrition.Profile{
					EnergyKcal: vals[0], ProteinG: vals[1], FatG: vals[2],
					CarbsG: vals[3], FiberG: vals[4], SugarG: vals[5],
					CalciumMg: vals[6], IronMg: vals[7], SodiumMg: vals[8],
					VitCMg: vals[9], CholMg: vals[10],
				},
			})
			cur = &corpus.Recipes[len(corpus.Recipes)-1]
		case "S":
			if cur == nil {
				return nil, fmt.Errorf("recipedb: line %d: instruction before any recipe", line)
			}
			if len(rec) != 3 {
				return nil, fmt.Errorf("recipedb: line %d: S record has %d fields, want 3", line, len(rec))
			}
			if id, err := strconv.Atoi(rec[1]); err != nil || id != cur.ID {
				return nil, fmt.Errorf("recipedb: line %d: instruction recipe id %q does not match %d", line, rec[1], cur.ID)
			}
			cur.Instructions = append(cur.Instructions, rec[2])
		case "I":
			if cur == nil {
				return nil, fmt.Errorf("recipedb: line %d: ingredient before any recipe", line)
			}
			if len(rec) != 14 {
				return nil, fmt.Errorf("recipedb: line %d: I record has %d fields, want 14", line, len(rec))
			}
			id, err := strconv.Atoi(rec[1])
			if err != nil || id != cur.ID {
				return nil, fmt.Errorf("recipedb: line %d: ingredient recipe id %q does not match %d", line, rec[1], cur.ID)
			}
			ing := Ingredient{Phrase: rec[2]}
			ing.Tokens = tokenizePhrase(rec[2])
			if rec[3] != "" {
				for _, name := range strings.Fields(rec[3]) {
					l, err := ner.ParseLabel(name)
					if err != nil {
						return nil, fmt.Errorf("recipedb: line %d: %w", line, err)
					}
					ing.Labels = append(ing.Labels, l)
				}
			}
			if len(ing.Labels) != len(ing.Tokens) {
				return nil, fmt.Errorf("recipedb: line %d: %d labels for %d tokens",
					line, len(ing.Labels), len(ing.Tokens))
			}
			ndb, err := strconv.Atoi(rec[4])
			if err != nil {
				return nil, fmt.Errorf("recipedb: line %d: bad NDB %q", line, rec[4])
			}
			regional, err := strconv.ParseBool(rec[5])
			if err != nil {
				return nil, fmt.Errorf("recipedb: line %d: bad regional flag %q", line, rec[5])
			}
			qty, err1 := pf(rec[11])
			grams, err2 := pf(rec[13])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("recipedb: line %d: bad gold numbers", line)
			}
			ing.Gold = Gold{
				NDB: ndb, Regional: regional,
				Name: rec[6], State: rec[7], Temp: rec[8],
				DryFresh: rec[9], Size: rec[10],
				Quantity: qty, Unit: rec[12], Grams: grams,
			}
			cur.Ingredients = append(cur.Ingredients, ing)
		default:
			return nil, fmt.Errorf("recipedb: line %d: unknown record type %q", line, rec[0])
		}
	}
	for i := range corpus.Recipes {
		if err := corpus.Recipes[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &corpus, nil
}
