package recipedb

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"nutriprofile/internal/instructions"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/textutil"
	"nutriprofile/internal/units"
	"nutriprofile/internal/usda"
	"nutriprofile/internal/yield"
)

func genCorpus(t testing.TB, n int, seed int64) *Corpus {
	t.Helper()
	c, err := Generate(Config{NumRecipes: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateBasics(t *testing.T) {
	c := genCorpus(t, 200, 1)
	if c.Len() != 200 {
		t.Fatalf("Len = %d", c.Len())
	}
	for i := range c.Recipes {
		if err := c.Recipes[i].Validate(); err != nil {
			t.Fatalf("recipe %d invalid: %v", i, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genCorpus(t, 50, 7)
	b := genCorpus(t, 50, 7)
	for i := range a.Recipes {
		ra, rb := a.Recipes[i], b.Recipes[i]
		if ra.Title != rb.Title || len(ra.Ingredients) != len(rb.Ingredients) {
			t.Fatalf("recipe %d differs across identical seeds", i)
		}
		for j := range ra.Ingredients {
			if ra.Ingredients[j].Phrase != rb.Ingredients[j].Phrase {
				t.Fatalf("phrase %d/%d differs: %q vs %q", i, j,
					ra.Ingredients[j].Phrase, rb.Ingredients[j].Phrase)
			}
		}
	}
	diff := genCorpus(t, 50, 8)
	same := 0
	for i := range a.Recipes {
		if a.Recipes[i].Title == diff.Recipes[i].Title {
			same++
		}
	}
	if same == len(a.Recipes) {
		t.Error("corpus identical across different seeds")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{NumRecipes: 0}); err == nil {
		t.Error("NumRecipes=0 accepted")
	}
}

// TestTokensAlignWithTokenizer is the load-bearing invariant: the gold
// Tokens of every ingredient must equal what the tokenizer produces from
// the phrase, or the NER evaluation would be misaligned.
func TestTokensAlignWithTokenizer(t *testing.T) {
	c := genCorpus(t, 300, 2)
	for _, r := range c.Recipes {
		for _, ing := range r.Ingredients {
			want := textutil.Tokenize(ing.Phrase)
			if !reflect.DeepEqual(ing.Tokens, want) {
				t.Fatalf("token misalignment for %q:\n gold %v\n tok  %v",
					ing.Phrase, ing.Tokens, want)
			}
		}
	}
}

func TestGoldLabelsSane(t *testing.T) {
	c := genCorpus(t, 300, 3)
	for _, r := range c.Recipes {
		for _, ing := range r.Ingredients {
			if len(ing.Tokens) != len(ing.Labels) {
				t.Fatalf("arity mismatch for %q", ing.Phrase)
			}
			hasName, hasQty := false, false
			for i, l := range ing.Labels {
				if l >= ner.NLabels {
					t.Fatalf("label out of range for %q", ing.Phrase)
				}
				if l == ner.Name {
					hasName = true
				}
				if l == ner.Quantity {
					if !strings.ContainsAny(ing.Tokens[i], "0123456789") && ing.Tokens[i] != "one" {
						t.Fatalf("non-numeric QUANTITY token %q in %q", ing.Tokens[i], ing.Phrase)
					}
					hasQty = true
				}
			}
			if !hasName {
				t.Fatalf("no NAME token in %q", ing.Phrase)
			}
			if !hasQty {
				t.Fatalf("no QUANTITY token in %q", ing.Phrase)
			}
		}
	}
}

func TestGoldGramsPositiveAndPlausible(t *testing.T) {
	c := genCorpus(t, 300, 4)
	for _, r := range c.Recipes {
		for _, ing := range r.Ingredients {
			g := ing.Gold
			if g.Grams <= 0 || g.Grams > 25000 {
				t.Fatalf("implausible gold grams %v for %q", g.Grams, ing.Phrase)
			}
			if g.Quantity <= 0 {
				t.Fatalf("non-positive quantity for %q", ing.Phrase)
			}
			if g.Unit != "" && !units.IsKnown(g.Unit) {
				t.Fatalf("gold unit %q not canonical for %q", g.Unit, ing.Phrase)
			}
		}
	}
}

func TestGoldNDBsExistInTables(t *testing.T) {
	seed := usda.Seed()
	regional := usda.Regional()
	c := genCorpus(t, 200, 5)
	regionalLines := 0
	total := 0
	for _, r := range c.Recipes {
		for _, ing := range r.Ingredients {
			total++
			if ing.Gold.NDB == 0 {
				t.Fatalf("gold NDB 0 for %q; every ingredient must have a true food", ing.Phrase)
			}
			if ing.Gold.Regional {
				regionalLines++
				if _, ok := regional.ByNDB(ing.Gold.NDB); !ok {
					t.Fatalf("regional gold NDB %d missing (%q)", ing.Gold.NDB, ing.Phrase)
				}
				if _, ok := seed.ByNDB(ing.Gold.NDB); ok {
					t.Fatalf("regional gold NDB %d unexpectedly in the primary seed", ing.Gold.NDB)
				}
				continue
			}
			if _, ok := seed.ByNDB(ing.Gold.NDB); !ok {
				t.Fatalf("gold NDB %d missing from seed DB (%q)", ing.Gold.NDB, ing.Phrase)
			}
		}
	}
	if regionalLines == 0 {
		t.Error("corpus has no region-specific ingredients")
	}
	if frac := float64(regionalLines) / float64(total); frac > 0.2 {
		t.Errorf("regional fraction %.2f too high", frac)
	}
}

func TestCuisineCoverage(t *testing.T) {
	c := genCorpus(t, 2000, 6)
	seen := map[string]bool{}
	for _, r := range c.Recipes {
		seen[r.Cuisine] = true
	}
	// The paper's corpus spans 26 regional cuisines.
	if len(seen) != 26 {
		t.Errorf("saw %d cuisines, want 26", len(seen))
	}
}

func TestNoiseClassesPresent(t *testing.T) {
	c := genCorpus(t, 1500, 9)
	var dual, rng, mixed, glyphless, postComma, converted int
	for _, r := range c.Recipes {
		for _, ing := range r.Ingredients {
			p := ing.Phrase
			if strings.Contains(p, " or ") {
				dual++
			}
			if strings.Contains(ing.Gold.Name, " ") {
				glyphless++ // multi-word names
			}
			for _, tok := range ing.Tokens {
				if strings.Contains(tok, "-") && strings.ContainsAny(tok, "0123456789") {
					rng++
				}
			}
			if strings.Contains(p, "1/2") || strings.Contains(p, "1/4") || strings.Contains(p, "3/4") {
				mixed++
			}
			if strings.Contains(p, " , ") {
				postComma++
			}
			if ing.Gold.Unit == "teaspoon" || ing.Gold.Unit == "fluid ounce" {
				converted++
			}
		}
	}
	for name, count := range map[string]int{
		"dual-unit": dual, "range-quantity": rng, "fraction": mixed,
		"multi-word-name": glyphless, "post-comma-state": postComma,
	} {
		if count == 0 {
			t.Errorf("noise class %q absent from corpus", name)
		}
	}
}

func TestExamplesAndPhrases(t *testing.T) {
	c := genCorpus(t, 50, 10)
	exs := c.Examples()
	phrases := c.Phrases()
	if len(exs) != len(phrases) {
		t.Fatalf("examples %d vs phrases %d", len(exs), len(phrases))
	}
	for _, ex := range exs {
		if err := ex.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInstructionsCarryMethod(t *testing.T) {
	c := genCorpus(t, 200, 15)
	wrong := 0
	for _, r := range c.Recipes {
		if len(r.Instructions) < 2 {
			t.Fatalf("recipe %d has %d instruction steps", r.ID, len(r.Instructions))
		}
		if got := instructions.InferMethod(r.Instructions); got != r.Method {
			// Rare: an ingredient name containing a cooking verb
			// ("beef stew meat") echoed in a prep step.
			wrong++
		}
		if got := yield.InferFromTitle(r.Title); got != r.Method {
			t.Fatalf("recipe %d: inferred %v from title %q, gold %v", r.ID, got, r.Title, r.Method)
		}
	}
	if float64(wrong) > 0.01*float64(c.Len()) {
		t.Errorf("instruction-based method inference wrong on %d/%d recipes", wrong, c.Len())
	}
}

func TestGoldPerServing(t *testing.T) {
	c := genCorpus(t, 100, 11)
	for _, r := range c.Recipes {
		ps := r.GoldPerServing()
		if !ps.Valid() {
			t.Fatalf("invalid per-serving profile for recipe %d", r.ID)
		}
		if r.GoldTotal.EnergyKcal > 0 && ps.EnergyKcal <= 0 {
			t.Fatalf("per-serving energy vanished for recipe %d", r.ID)
		}
	}
}

// Property: generation never panics and always validates across seeds.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64) bool {
		c, err := Generate(Config{NumRecipes: 20, Seed: seed})
		if err != nil {
			return false
		}
		for i := range c.Recipes {
			if c.Recipes[i].Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Config{NumRecipes: 100, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEachMatchesGenerate pins the streaming generator: Each must
// produce exactly the recipes Generate materializes, in order, without
// building the corpus — and stop early when the callback returns false.
func TestEachMatchesGenerate(t *testing.T) {
	cfg := Config{NumRecipes: 40, Seed: 11, TypoRate: 0.1}
	corpus, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = Each(cfg, func(r Recipe) bool {
		if i >= len(corpus.Recipes) {
			t.Fatalf("Each produced more than %d recipes", len(corpus.Recipes))
		}
		want := fmt.Sprintf("%+v", corpus.Recipes[i])
		if got := fmt.Sprintf("%+v", r); got != want {
			t.Fatalf("recipe %d diverges from Generate:\n got: %s\nwant: %s", i, got, want)
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(corpus.Recipes) {
		t.Fatalf("Each produced %d recipes, want %d", i, len(corpus.Recipes))
	}

	// Early stop: the callback's false return ends the walk.
	n := 0
	if err := Each(cfg, func(Recipe) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop after %d recipes, want 5", n)
	}

	// Config validation surfaces the same way Generate's does.
	if err := Each(Config{}, func(Recipe) bool { return true }); err == nil {
		t.Fatal("Each with NumRecipes 0 should error")
	}
}
