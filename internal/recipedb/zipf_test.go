package recipedb

import (
	"math"
	"testing"
)

// TestZipfDeterministic: equal (n, s, seed) must yield the identical
// draw sequence — the property load runs and hit-rate experiments
// depend on for reproducibility.
func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(1000, 1.1, 42)
	b := NewZipf(1000, 1.1, 42)
	for i := 0; i < 10000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("draw %d diverged: %d vs %d", i, av, bv)
		}
	}
	c := NewZipf(1000, 1.1, 43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced the identical sequence")
	}
}

// TestZipfRange: every draw must fall in [0, n), across exponents and
// degenerate shapes.
func TestZipfRange(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{1, 1.1}, {2, 0}, {10, 0.8}, {100, 2.5}, {1000, 1.0}} {
		z := NewZipf(tc.n, tc.s, 7)
		for i := 0; i < 5000; i++ {
			if r := z.Next(); r < 0 || r >= tc.n {
				t.Fatalf("n=%d s=%v: draw %d out of range", tc.n, tc.s, r)
			}
		}
	}
}

// TestZipfRankEdges: CDF inversion at the boundaries of [0, 1).
func TestZipfRankEdges(t *testing.T) {
	z := NewZipf(100, 1.1, 1)
	if r := z.Rank(0); r != 0 {
		t.Fatalf("Rank(0) = %d, want 0 (the head rank)", r)
	}
	if r := z.Rank(math.Nextafter(1, 0)); r != 99 {
		t.Fatalf("Rank(1-ε) = %d, want 99 (the tail rank)", r)
	}
}

// TestZipfSkew: with s > 0 the head must dominate — rank 0 drawn far
// more often than a tail rank — and more so at higher s; with s = 0
// the distribution must be statistically uniform.
func TestZipfSkew(t *testing.T) {
	const n, draws = 1000, 200000
	counts := func(s float64) []int {
		z := NewZipf(n, s, 99)
		c := make([]int, n)
		for i := 0; i < draws; i++ {
			c[z.Next()]++
		}
		return c
	}

	c08, c11 := counts(0.8), counts(1.1)
	// At s=0.8 over 1000 ranks the head holds ~2.6% of mass; at s=1.1
	// ~12%. Both must beat uniform (0.1%) by a wide margin, and the
	// higher exponent must be visibly more skewed.
	if c08[0] < 10*draws/n {
		t.Fatalf("s=0.8: head count %d not >> uniform %d", c08[0], draws/n)
	}
	if c11[0] < 2*c08[0] {
		t.Fatalf("skew did not grow with s: head %d (s=1.1) vs %d (s=0.8)", c11[0], c08[0])
	}
	// Head outweighs the entire last-half tail at s=1.1.
	tail := 0
	for _, v := range c11[n/2:] {
		tail += v
	}
	if c11[0] < tail {
		t.Fatalf("s=1.1: head %d below tail-half sum %d", c11[0], tail)
	}

	c0 := counts(0)
	want := draws / n
	for k, v := range c0 {
		if v < want/2 || v > want*2 {
			t.Fatalf("s=0: rank %d count %d strays from uniform %d", k, v, want)
		}
	}
}
