package recipedb

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"nutriprofile/internal/instructions"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/nutrition"
	"nutriprofile/internal/textutil"
	"nutriprofile/internal/units"
	"nutriprofile/internal/usda"
	"nutriprofile/internal/yield"
)

// Config controls corpus generation.
type Config struct {
	// NumRecipes is the corpus size (required, ≥ 1). The paper's corpus
	// has 118,071 recipes; the experiment harness defaults to a smaller
	// sample with the same noise mix.
	NumRecipes int
	// Seed makes generation deterministic.
	Seed int64
	// DB is the composition table gold weights/nutrition are drawn from.
	// Defaults to usda.Seed().
	DB *usda.DB
	// MinIngredients/MaxIngredients bound the ingredient-section length
	// (defaults 4 and 12).
	MinIngredients, MaxIngredients int
	// DualUnitRate is the probability of rendering the §II-C "500 g or 1
	// cup" double-unit noise (default 0.03).
	DualUnitRate float64
	// RegionalRate is the per-ingredient probability, within non-Western
	// cuisines, of drawing a region-specific unmappable ingredient
	// (default 0.18).
	RegionalRate float64
	// ConvertedUnitRate is the probability of rendering a unit the food's
	// weight table lacks but that volume conversion can reach — the
	// paper's "1 teaspoon of butter" case (default 0.08).
	ConvertedUnitRate float64
	// TypoRate is the per-ingredient probability of corrupting one
	// letter of the ingredient name (transposition, deletion or
	// doubling) — the scraped-data misspelling noise class. Default 0
	// (the paper's preprocessing assumes clean tokens); the typo
	// experiment raises it.
	TypoRate float64
}

func (c *Config) fill() error {
	if c.NumRecipes < 1 {
		return errors.New("recipedb: NumRecipes must be ≥ 1")
	}
	if c.DB == nil {
		c.DB = usda.Seed()
	}
	if c.MinIngredients <= 0 {
		c.MinIngredients = 4
	}
	if c.MaxIngredients < c.MinIngredients {
		c.MaxIngredients = c.MinIngredients + 8
	}
	if c.DualUnitRate == 0 {
		c.DualUnitRate = 0.03
	}
	if c.RegionalRate == 0 {
		c.RegionalRate = 0.18
	}
	if c.ConvertedUnitRate == 0 {
		c.ConvertedUnitRate = 0.08
	}
	return nil
}

// seg is one rendered phrase segment with its entity label.
type seg struct {
	text  string
	label ner.Label
}

// generator carries the per-run state.
type generator struct {
	cfg      Config
	rng      *rand.Rand
	mappable []int // catalog indices with ndb != 0
	regional []int // catalog indices with ndb == 0
}

// newGenerator validates cfg and builds the per-run generator state.
func newGenerator(cfg Config) (*generator, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i, e := range catalog {
		if e.regional {
			if _, ok := usda.Regional().ByNDB(e.ndb); !ok {
				return nil, fmt.Errorf("recipedb: catalog NDB %d missing from regional DB", e.ndb)
			}
			g.regional = append(g.regional, i)
		} else {
			if _, ok := cfg.DB.ByNDB(e.ndb); !ok {
				return nil, fmt.Errorf("recipedb: catalog NDB %d missing from DB", e.ndb)
			}
			g.mappable = append(g.mappable, i)
		}
	}
	return g, nil
}

// Generate renders a deterministic synthetic corpus.
func Generate(cfg Config) (*Corpus, error) {
	g, err := newGenerator(cfg)
	if err != nil {
		return nil, err
	}
	recipes := make([]Recipe, 0, cfg.NumRecipes)
	for id := 1; id <= cfg.NumRecipes; id++ {
		recipes = append(recipes, g.recipe(id))
	}
	return &Corpus{Recipes: recipes}, nil
}

// Each streams the corpus cfg describes, one recipe at a time, without
// materializing it — recipe i here is byte-identical to
// Generate(cfg).Recipes[i] (the generator is a deterministic function of
// the seed), so a paper-scale 118k-recipe corpus can feed a load
// generator in O(1) memory. fn returning false stops early.
func Each(cfg Config, fn func(Recipe) bool) error {
	g, err := newGenerator(cfg)
	if err != nil {
		return err
	}
	for id := 1; id <= cfg.NumRecipes; id++ {
		if !fn(g.recipe(id)) {
			return nil
		}
	}
	return nil
}

// westernCuisineCount marks the prefix of the cuisine list whose recipes
// avoid region-specific ingredients.
const westernCuisineCount = 11

func (g *generator) recipe(id int) Recipe {
	cuisine := cuisines[g.rng.Intn(len(cuisines))]
	regionalOK := false
	for i := westernCuisineCount; i < len(cuisines); i++ {
		if cuisines[i] == cuisine {
			regionalOK = true
			break
		}
	}
	n := g.cfg.MinIngredients + g.rng.Intn(g.cfg.MaxIngredients-g.cfg.MinIngredients+1)
	used := map[int]bool{}
	ings := make([]Ingredient, 0, n)
	var total nutrition.Profile
	for len(ings) < n {
		var ci int
		if regionalOK && len(g.regional) > 0 && g.rng.Float64() < g.cfg.RegionalRate {
			ci = g.regional[g.rng.Intn(len(g.regional))]
		} else {
			ci = g.mappable[g.rng.Intn(len(g.mappable))]
		}
		if used[ci] {
			continue
		}
		used[ci] = true
		ing := g.ingredient(&catalog[ci])
		total = total.Add(g.goldProfile(&catalog[ci], ing.Gold.Grams))
		ings = append(ings, ing)
	}
	servings := 2 + g.rng.Intn(7)
	servingsText := g.servingsText(servings)
	dish := dishWords[g.rng.Intn(len(dishWords))]
	title := fmt.Sprintf("%s %s %s #%d", cuisine,
		strings.Title(catalog[firstKey(used)].names[0]), dish.word, id) //nolint:staticcheck // titles are ASCII
	names := make([]string, len(ings))
	for i := range ings {
		names[i] = ings[i].Gold.Name
	}
	return Recipe{
		ID: id, Title: title, Cuisine: cuisine,
		Servings: servings, ServingsText: servingsText,
		Method: dish.method, Ingredients: ings,
		Instructions: instructions.Generate(names, dish.method, g.rng),
		GoldTotal:    total,
	}
}

// servingsText renders the noisy surface form of a serving count. Most
// recipes publish a clean integer; a minority use ranges, which the
// paper's calorie evaluation excludes as not "well-defined".
func (g *generator) servingsText(n int) string {
	switch g.rng.Intn(10) {
	case 0:
		return fmt.Sprintf("Serves %d", n)
	case 1:
		return fmt.Sprintf("%d servings", n)
	case 2:
		// Range centred on n: ParseServings averages back to n but
		// flags it unclean.
		return fmt.Sprintf("%d-%d servings", n-1, n+1)
	default:
		return strconv.Itoa(n)
	}
}

// dishWords are title nouns that carry the cooking method, so
// yield.InferFromTitle can recover Recipe.Method from the title alone.
var dishWords = []struct {
	word   string
	method yield.Method
}{
	{"Salad", yield.None},
	{"Soup", yield.Boiled},
	{"Stew", yield.Stewed},
	{"Bake", yield.Baked},
	{"Roast", yield.Roasted},
	{"Stir-Fry", yield.Fried},
	{"Grill", yield.Grilled},
	{"Steam Bowl", yield.Steamed},
	{"Casserole", yield.Baked},
	{"Braise", yield.Stewed},
}

func firstKey(m map[int]bool) int {
	best := -1
	for k := range m {
		if best == -1 || k < best {
			best = k
		}
	}
	return best
}

// foodFor resolves the entry's food: the primary table for ordinary
// entries, the FAO-style regional table for regional ones.
func (g *generator) foodFor(e *catalogEntry) (*usda.Food, bool) {
	if e.regional {
		return usda.Regional().ByNDB(e.ndb)
	}
	return g.cfg.DB.ByNDB(e.ndb)
}

// goldProfile computes the true nutrition of grams of the entry's food.
func (g *generator) goldProfile(e *catalogEntry, grams float64) nutrition.Profile {
	food, ok := g.foodFor(e)
	if !ok {
		return nutrition.Profile{}
	}
	return food.Per100g.ForGrams(grams)
}

// ingredient renders one catalog entry into a noisy phrase with gold
// annotation.
func (g *generator) ingredient(e *catalogEntry) Ingredient {
	if g.rng.Float64() < g.cfg.DualUnitRate {
		if ing, ok := g.dualUnitIngredient(e); ok {
			return ing
		}
	}
	if e.unitless {
		return g.countIngredient(e)
	}
	return g.unitIngredient(e)
}

// pickWeight selects a weight row of the entry's food matching pred, or
// nil.
func (g *generator) pickWeight(e *catalogEntry, pred func(canonical string, kind units.Kind) bool) *usda.Weight {
	food, ok := g.foodFor(e)
	if !ok {
		return nil
	}
	var cands []usda.Weight
	for _, w := range food.Weights {
		name, known := units.Normalize(w.Unit)
		if !known {
			continue
		}
		k, err := units.KindOf(name)
		if err != nil {
			continue
		}
		if pred(name, k) {
			cands = append(cands, w)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	// Bias toward the food's first matching weight row: SR lists the
	// most natural household measure first, and real recipes do use it
	// most of the time (garlic → clove, flour → cup).
	if len(cands) > 1 && g.rng.Intn(2) == 0 {
		return &cands[0]
	}
	wt := cands[g.rng.Intn(len(cands))]
	return &wt
}

// smallestWeight returns the weight row of the given kind with the
// smallest per-item gram weight, or nil.
func (g *generator) smallestWeight(e *catalogEntry, kind units.Kind) *usda.Weight {
	food, ok := g.foodFor(e)
	if !ok {
		return nil
	}
	var best *usda.Weight
	for i := range food.Weights {
		w := &food.Weights[i]
		name, known := units.Normalize(w.Unit)
		if !known {
			continue
		}
		if k, err := units.KindOf(name); err != nil || k != kind {
			continue
		}
		if best == nil || w.GramsPerOne() < best.GramsPerOne() {
			best = w
		}
	}
	if best == nil {
		return nil
	}
	cp := *best
	return &cp
}

// maxGoldGramsPerLine caps the true weight of one ingredient line so the
// generator never emits absurd recipes ("15 packages pasta") — real recipe
// lines rarely exceed ~1.5 kg.
const maxGoldGramsPerLine = 1500.0

// countIngredient renders a bare-count or size-counted item: "2 eggs",
// "1 small onion , finely chopped".
func (g *generator) countIngredient(e *catalogEntry) Ingredient {
	// Either a size word (when size rows exist) or a count row. Count
	// rows take the smallest per-item weight (the natural reading of
	// "6 bacon" is slices, not packages).
	var gramsPerOne float64
	size := ""
	sizeWt := g.pickWeight(e, func(_ string, k units.Kind) bool { return k == units.Size })
	countWt := g.smallestWeight(e, units.Count)
	var sizeName string
	if sizeWt != nil {
		sizeName, _ = units.Normalize(sizeWt.Unit)
	}
	useSize := sizeWt != nil && (countWt == nil || g.rng.Intn(2) == 0)
	switch {
	case useSize:
		size = sizeName
		gramsPerOne = sizeWt.GramsPerOne()
	case countWt != nil:
		gramsPerOne = countWt.GramsPerOne()
	default:
		// No usable count/size row: fall back to the food's first weight
		// row for the TRUE weight (the pipeline may still fail to map
		// the unit — that gap is exactly what Fig. 2 measures).
		if food, ok := g.foodFor(e); ok && len(food.Weights) > 0 {
			gramsPerOne = food.Weights[0].GramsPerOne()
		}
		if gramsPerOne == 0 {
			gramsPerOne = 50
		}
	}

	qtyHi := e.qtyHi
	if cap := math.Floor(maxGoldGramsPerLine / gramsPerOne); cap < qtyHi {
		qtyHi = cap
	}
	if qtyHi < e.qtyLo {
		qtyHi = e.qtyLo
	}
	qty := float64(int(e.qtyLo) + g.rng.Intn(int(qtyHi-e.qtyLo)+1))
	grams := qty * gramsPerOne

	var segs []seg
	segs = append(segs, seg{strconv.Itoa(int(qty)), ner.Quantity})
	if useSize {
		segs = append(segs, seg{size, ner.Size})
	}

	nameSegs, _ := g.nameSegments(e)
	segs = append(segs, nameSegs...)
	state := g.appendState(e, &segs)
	return g.assemble(e, segs, Gold{
		NDB: e.ndb, Regional: e.regional,
		Name: joinLabel(segs, ner.Name), State: state,
		Size: size, DryFresh: joinLabel(segs, ner.DF),
		Quantity: qty, Unit: "", Grams: grams,
	})
}

// unitIngredient renders a measured item: "2 1/2 cups flour , sifted".
func (g *generator) unitIngredient(e *catalogEntry) Ingredient {
	var canonical string
	var gramsPerUnit float64
	if g.rng.Float64() < g.cfg.ConvertedUnitRate {
		if c, gpu, ok := g.convertedUnit(e); ok {
			canonical, gramsPerUnit = c, gpu
		}
	}
	if canonical == "" {
		wt := g.pickWeight(e, func(_ string, k units.Kind) bool {
			return k == units.Volume || k == units.Mass || k == units.Count
		})
		if wt != nil {
			name, _ := units.Normalize(wt.Unit)
			canonical, gramsPerUnit = name, wt.GramsPerOne()
		}
	}
	if canonical == "" {
		// Foods without any usable weight row: render a mass unit, which
		// is always resolvable in principle.
		canonical, gramsPerUnit = "gram", 1
	}

	// Clamp the quantity range so heavy units (quart, package, pound)
	// cannot produce absurd lines.
	qtyHi := e.qtyHi
	if cap := maxGoldGramsPerLine / gramsPerUnit; cap < qtyHi {
		qtyHi = cap
	}
	qtyLo := e.qtyLo
	if qtyLo > qtyHi {
		qtyLo = qtyHi
	}
	qty, qtyText := g.quantity(qtyLo, qtyHi)

	var segs []seg
	segs = append(segs, seg{qtyText, ner.Quantity})
	segs = append(segs, seg{g.surface(canonical), ner.Unit})
	nameSegs, _ := g.nameSegments(e)
	segs = append(segs, nameSegs...)
	state := g.appendState(e, &segs)

	return g.assemble(e, segs, Gold{
		NDB: e.ndb, Regional: e.regional,
		Name: joinLabel(segs, ner.Name), State: state,
		DryFresh: joinLabel(segs, ner.DF), Temp: joinLabel(segs, ner.Temp),
		Quantity: qty, Unit: canonical, Grams: qty * gramsPerUnit,
	})
}

// dualUnitIngredient renders the paper's "500 g or 1 cup" noise. Gold
// truth follows the mass spelling.
func (g *generator) dualUnitIngredient(e *catalogEntry) (Ingredient, bool) {
	wt := g.pickWeight(e, func(c string, k units.Kind) bool { return k == units.Volume && c == "cup" })
	if wt == nil {
		return Ingredient{}, false
	}
	cups := float64(1 + g.rng.Intn(2))
	grams := cups * wt.GramsPerOne()
	gramsRounded := math.Round(grams/50) * 50
	if gramsRounded < 50 {
		gramsRounded = 50
	}
	var segs []seg
	segs = append(segs, seg{strconv.Itoa(int(gramsRounded)), ner.Quantity})
	segs = append(segs, seg{"g", ner.Unit})
	segs = append(segs, seg{"or", ner.Out})
	segs = append(segs, seg{strconv.Itoa(int(cups)), ner.Quantity})
	segs = append(segs, seg{g.surface("cup"), ner.Unit})
	nameSegs, _ := g.nameSegments(e)
	segs = append(segs, nameSegs...)
	state := g.appendState(e, &segs)
	return g.assemble(e, segs, Gold{
		NDB: e.ndb, Regional: e.regional,
		Name: joinLabel(segs, ner.Name), State: state,
		Quantity: gramsRounded, Unit: "gram", Grams: gramsRounded,
	}), true
}

// convertedUnit picks a volume unit ABSENT from the food's weight table
// but reachable by conversion from a present volume row (§II-C: teaspoon
// of butter via the cup row).
func (g *generator) convertedUnit(e *catalogEntry) (string, float64, bool) {
	base := g.pickWeight(e, func(_ string, k units.Kind) bool { return k == units.Volume })
	if base == nil {
		return "", 0, false
	}
	baseName, _ := units.Normalize(base.Unit)
	food, ok := g.foodFor(e)
	if !ok {
		return "", 0, false
	}
	for _, cand := range []string{"teaspoon", "tablespoon", "cup", "fluid ounce"} {
		if cand == baseName {
			continue
		}
		if _, present := food.GramsForUnit(cand); present {
			continue
		}
		ratio, err := units.Ratio(cand, baseName)
		if err != nil {
			continue
		}
		return cand, ratio * base.GramsPerOne(), true
	}
	return "", 0, false
}

// quantity renders a numeric quantity in one of the corpus's noisy
// spellings and returns its normalized value.
func (g *generator) quantity(lo, hi float64) (float64, string) {
	// Snap to quarters.
	v := lo + g.rng.Float64()*(hi-lo)
	v = math.Round(v*4) / 4
	if v < 0.125 {
		v = 0.25
	}
	whole := math.Floor(v)
	frac := v - whole

	fracText := map[float64]string{0.25: "1/4", 0.5: "1/2", 0.75: "3/4"}
	glyphText := map[float64]string{0.25: "¼", 0.5: "½", 0.75: "¾"}

	switch g.rng.Intn(10) {
	case 0: // range "2-4": value is the average
		loI := int(math.Max(1, whole))
		hiI := loI + 1 + g.rng.Intn(2)
		return float64(loI+hiI) / 2, fmt.Sprintf("%d-%d", loI, hiI)
	case 1: // decimal
		if frac != 0 {
			return v, strconv.FormatFloat(v, 'g', -1, 64)
		}
		fallthrough
	case 2: // unicode glyph
		if frac != 0 {
			if whole == 0 {
				return v, glyphText[frac]
			}
			return v, fmt.Sprintf("%d %s", int(whole), glyphText[frac])
		}
		fallthrough
	default:
		if frac == 0 {
			if v == 1 && g.rng.Intn(8) == 0 {
				return 1, "one"
			}
			return v, strconv.Itoa(int(v))
		}
		if whole == 0 {
			return v, fracText[frac]
		}
		return v, fmt.Sprintf("%d %s", int(whole), fracText[frac])
	}
}

// surface picks a rendering of a canonical unit.
func (g *generator) surface(canonical string) string {
	if alts, ok := unitSurfaces[canonical]; ok {
		return alts[g.rng.Intn(len(alts))]
	}
	return canonical
}

// leadStates are name-variant prefixes that are STATE entities in Table I
// ("lean ground beef" → State "lean ground", Name "beef").
var leadStates = map[string]bool{
	"ground": true, "lean": true, "boneless": true, "skinless": true,
	"canned": true, "raw": true, "ripe": true,
}

// typo corrupts one letter of a word: an adjacent transposition, a
// deletion, or a doubling, never touching the first letter.
func (g *generator) typo(word string) string {
	if len(word) < 4 {
		return word
	}
	i := 1 + g.rng.Intn(len(word)-2)
	switch g.rng.Intn(3) {
	case 0: // transpose word[i] and word[i+1]
		b := []byte(word)
		b[i], b[i+1] = b[i+1], b[i]
		return string(b)
	case 1: // delete word[i]
		return word[:i] + word[i+1:]
	default: // double word[i]
		return word[:i+1] + word[i:]
	}
}

// nameSegments splits a name variant into DF/STATE prefixes and the NAME
// remainder, as the paper's Table I annotation does.
func (g *generator) nameSegments(e *catalogEntry) ([]seg, string) {
	name := e.names[g.rng.Intn(len(e.names))]
	if g.cfg.TypoRate > 0 && g.rng.Float64() < g.cfg.TypoRate {
		words := strings.Fields(name)
		// Corrupt the longest word — the one carrying the signal.
		longest := 0
		for i, w := range words {
			if len(w) > len(words[longest]) {
				longest = i
			}
		}
		words[longest] = g.typo(words[longest])
		name = strings.Join(words, " ")
	}
	toks := strings.Fields(name)
	var segs []seg
	i := 0
	for ; i < len(toks)-1; i++ {
		switch {
		case toks[i] == "fresh" || toks[i] == "dried":
			segs = append(segs, seg{toks[i], ner.DF})
		case toks[i] == "cold" || toks[i] == "warm":
			segs = append(segs, seg{toks[i], ner.Temp})
		case leadStates[toks[i]]:
			segs = append(segs, seg{toks[i], ner.State})
		default:
			segs = append(segs, seg{strings.Join(toks[i:], " "), ner.Name})
			return segs, name
		}
	}
	segs = append(segs, seg{toks[len(toks)-1], ner.Name})
	return segs, name
}

// appendState optionally appends a post-comma state ("… , finely
// chopped") or a pre-positioned state and returns the gold State string
// (including any state tokens already in the name segments).
func (g *generator) appendState(e *catalogEntry, segs *[]seg) string {
	state := e.states[g.rng.Intn(len(e.states))]
	if state != "" {
		if g.rng.Intn(3) > 0 {
			// Post-comma: ", finely chopped".
			*segs = append(*segs, seg{",", ner.Out})
			if g.rng.Intn(3) == 0 {
				*segs = append(*segs, seg{stateAdverbs[g.rng.Intn(len(stateAdverbs))], ner.Out})
			}
			*segs = append(*segs, seg{state, ner.State})
		} else {
			// Pre-name placement: insert before the NAME segment.
			out := make([]seg, 0, len(*segs)+1)
			inserted := false
			for _, s := range *segs {
				if !inserted && s.label == ner.Name {
					out = append(out, seg{state, ner.State})
					inserted = true
				}
				out = append(out, s)
			}
			*segs = out
		}
	}
	return joinLabel(*segs, ner.State)
}

// joinLabel concatenates the text of all segments carrying a label.
func joinLabel(segs []seg, l ner.Label) string {
	var parts []string
	for _, s := range segs {
		if s.label == l {
			parts = append(parts, s.text)
		}
	}
	return strings.Join(parts, " ")
}

// assemble renders segments into the final Ingredient with aligned gold
// token labels.
func (g *generator) assemble(e *catalogEntry, segs []seg, gold Gold) Ingredient {
	texts := make([]string, len(segs))
	for i, s := range segs {
		texts[i] = s.text
	}
	phrase := strings.Join(texts, " ")

	var tokens []string
	var labels []ner.Label
	for _, s := range segs {
		for _, tok := range textutil.Tokenize(s.text) {
			tokens = append(tokens, tok)
			labels = append(labels, s.label)
		}
	}
	// Normalize gold text fields through the tokenizer so they match what
	// an exact tagger would extract (lower-cased, glyphs expanded).
	gold.Name = retokenize(gold.Name)
	gold.State = retokenize(gold.State)
	gold.Temp = retokenize(gold.Temp)
	gold.DryFresh = retokenize(gold.DryFresh)
	_ = e
	return Ingredient{Phrase: phrase, Tokens: tokens, Labels: labels, Gold: gold}
}

func retokenize(s string) string {
	if s == "" {
		return ""
	}
	return strings.Join(textutil.Tokenize(s), " ")
}

// tokenizePhrase re-derives the gold token sequence of a stored phrase
// (Tokens == Tokenize(Phrase) is a corpus invariant).
func tokenizePhrase(phrase string) []string { return textutil.Tokenize(phrase) }
