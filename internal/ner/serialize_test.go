package ner

import (
	"bytes"
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	model, err := Train(goldCorpus(200, 7), TrainConfig{Epochs: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.FeatureCount() != model.FeatureCount() {
		t.Fatalf("feature count %d after round trip, want %d",
			back.FeatureCount(), model.FeatureCount())
	}
	// The loaded model must decode identically on a probe set.
	probes := []string{
		"2 cups fresh milk , chopped",
		"1/2 lb butter",
		"2-4 cloves garlic , minced",
		"1 small onion",
	}
	for _, p := range probes {
		toks := tokenize(p)
		a, b := model.Tag(toks), back.Tag(toks)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round-trip divergence on %q at token %d: %v vs %v", p, i, a[i], b[i])
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("Load accepted garbage")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("Load accepted empty input")
	}
}

func TestSaveEmptyModel(t *testing.T) {
	var buf bytes.Buffer
	if err := NewModel().Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.FeatureCount() != 0 {
		t.Errorf("empty model round-tripped with %d features", m.FeatureCount())
	}
}
