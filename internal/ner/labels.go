// Package ner implements the paper's Ingredient Data Mining stage
// (§II-A): a Named Entity Recognition system that tags each token of an
// ingredient phrase with one of NAME, STATE, UNIT, QUANTITY, TEMP, DF
// (dry/fresh) or SIZE — the tag inventory of the paper's Table I.
//
// The paper trains the Stanford NER model (a CRF). This package
// substitutes a linear-chain tagger of the same model class: hand-rolled
// feature templates over word identity/shape/lexicon membership, Viterbi
// decoding, and averaged structured-perceptron training. A deterministic
// rule-based tagger is provided both as the baseline for ablation and as
// the bootstrap annotator.
package ner

import "fmt"

// Label is a token-level entity tag.
type Label uint8

// The tag inventory of §II-A / Table I. Out is "no entity" (punctuation
// and filler words).
const (
	Out Label = iota
	Name
	State
	Unit
	Quantity
	Temp
	DF
	Size
	NLabels
)

var labelNames = [NLabels]string{
	"O", "NAME", "STATE", "UNIT", "QUANTITY", "TEMP", "DF", "SIZE",
}

// String returns the conventional tag spelling.
func (l Label) String() string {
	if l < NLabels {
		return labelNames[l]
	}
	return fmt.Sprintf("Label(%d)", uint8(l))
}

// ParseLabel converts a tag name back to a Label.
func ParseLabel(s string) (Label, error) {
	for i, n := range labelNames {
		if n == s {
			return Label(i), nil
		}
	}
	return Out, fmt.Errorf("ner: unknown label %q", s)
}

// Example is one gold-labeled ingredient phrase.
type Example struct {
	Tokens []string
	Labels []Label
}

// Validate checks the token/label arity and label range.
func (e Example) Validate() error {
	if len(e.Tokens) != len(e.Labels) {
		return fmt.Errorf("ner: %d tokens but %d labels", len(e.Tokens), len(e.Labels))
	}
	for i, l := range e.Labels {
		if l >= NLabels {
			return fmt.Errorf("ner: label %d out of range at %d", l, i)
		}
	}
	return nil
}
