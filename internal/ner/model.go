package ner

import (
	"errors"
	"math/rand"
	"sync"

	"nutriprofile/internal/textutil"
)

// Model is a linear-chain sequence tagger: per-feature emission weights
// and label-to-label transition weights, decoded with Viterbi. Training
// uses the averaged structured perceptron (Collins 2002), a discriminative
// trainer in the same model family as the CRF the paper uses, with the
// same feature expressiveness at a fraction of the training cost.
type Model struct {
	emissions   map[string]*[NLabels]float64
	transitions [NLabels + 1][NLabels]float64 // row NLabels is the start state

	// Compiled read-only view of emissions, built lazily on the first
	// TagScratch call (training always runs before serving, so the weights
	// are final by then): feature strings become dense IDs so the hot path
	// probes with scratch-assembled byte keys instead of building feature
	// strings. Weight values are copied, not aliased — identical scores.
	compileOnce sync.Once
	featIDs     *textutil.Interner
	featWeights [][NLabels]float64
}

// NewModel returns an empty (all-zero) model.
func NewModel() *Model {
	return &Model{emissions: make(map[string]*[NLabels]float64)}
}

// Tag decodes the best label sequence for a tokenized phrase.
func (m *Model) Tag(tokens []string) []Label {
	if len(tokens) == 0 {
		return nil
	}
	n := len(tokens)
	// Emission scores per position.
	emit := make([][NLabels]float64, n)
	for i := range tokens {
		for _, f := range featurize(tokens, i) {
			if wv, ok := m.emissions[f]; ok {
				for l := 0; l < int(NLabels); l++ {
					emit[i][l] += wv[l]
				}
			}
		}
	}

	// Viterbi.
	type cell struct {
		score float64
		back  Label
	}
	prev := make([]cell, NLabels)
	cur := make([]cell, NLabels)
	backptr := make([][]Label, n)
	for l := Label(0); l < NLabels; l++ {
		prev[l] = cell{score: m.transitions[NLabels][l] + emit[0][l]}
	}
	for i := 1; i < n; i++ {
		backptr[i] = make([]Label, NLabels)
		for l := Label(0); l < NLabels; l++ {
			best, bestFrom := prev[0].score+m.transitions[0][l], Label(0)
			for from := Label(1); from < NLabels; from++ {
				if s := prev[from].score + m.transitions[from][l]; s > best {
					best, bestFrom = s, from
				}
			}
			cur[l] = cell{score: best + emit[i][l]}
			backptr[i][l] = bestFrom
		}
		prev, cur = cur, prev
	}

	bestLabel, bestScore := Label(0), prev[0].score
	for l := Label(1); l < NLabels; l++ {
		if prev[l].score > bestScore {
			bestLabel, bestScore = l, prev[l].score
		}
	}
	labels := make([]Label, n)
	labels[n-1] = bestLabel
	for i := n - 1; i > 0; i-- {
		labels[i-1] = backptr[i][labels[i]]
	}
	return labels
}

// TagPhrase tokenizes and tags a raw phrase.
func (m *Model) TagPhrase(phrase string) ([]string, []Label) {
	toks := tokenize(phrase)
	return toks, m.Tag(toks)
}

// compile builds the dense feature-ID view of the emission table. Map
// iteration order is irrelevant: Intern assigns IDs in encounter order
// and featWeights is appended in the same order, so ID i always indexes
// feature i's weights.
func (m *Model) compile() {
	m.featIDs = textutil.NewInterner()
	m.featWeights = make([][NLabels]float64, 0, len(m.emissions))
	for f, wv := range m.emissions {
		m.featIDs.Intern(f)
		m.featWeights = append(m.featWeights, *wv)
	}
}

// bump adds the emission weights of the feature spelled by key (if the
// model knows it) into row. The byte-key probe does not allocate.
func (m *Model) bump(key []byte, row *[NLabels]float64) {
	if id, ok := m.featIDs.LookupBytes(key); ok {
		wv := &m.featWeights[id]
		for l := 0; l < int(NLabels); l++ {
			row[l] += wv[l]
		}
	}
}

// TagScratch is Tag decoding into sc. Scores are computed feature-by-
// feature in exactly Tag's accumulation order, so the floating-point
// results — and therefore the decoded labels — are bit-identical. The
// returned slice aliases sc.
func (m *Model) TagScratch(tokens []string, sc *Scratch) []Label {
	if len(tokens) == 0 {
		return nil
	}
	m.compileOnce.Do(m.compile)
	n := len(tokens)
	emit := sc.emitRows(n)
	buf := sc.buf
	for i := range tokens {
		buf = m.emitFeatures(tokens, i, buf, &emit[i], sc)
	}
	sc.buf = buf

	// Viterbi over fixed-size score arrays; prev/cur swap by array copy.
	var prev, cur [NLabels]float64
	back := sc.backRows(n)
	for l := Label(0); l < NLabels; l++ {
		prev[l] = m.transitions[NLabels][l] + emit[0][l]
	}
	for i := 1; i < n; i++ {
		row := back[i*int(NLabels) : (i+1)*int(NLabels)]
		for l := Label(0); l < NLabels; l++ {
			best, bestFrom := prev[0]+m.transitions[0][l], Label(0)
			for from := Label(1); from < NLabels; from++ {
				if s := prev[from] + m.transitions[from][l]; s > best {
					best, bestFrom = s, from
				}
			}
			cur[l] = best + emit[i][l]
			row[l] = bestFrom
		}
		prev = cur
	}

	bestLabel, bestScore := Label(0), prev[0]
	for l := Label(1); l < NLabels; l++ {
		if prev[l] > bestScore {
			bestLabel, bestScore = l, prev[l]
		}
	}
	labels := sc.labelSlice(n)
	labels[n-1] = bestLabel
	for i := n - 1; i > 0; i-- {
		labels[i-1] = back[i*int(NLabels)+int(labels[i])]
	}
	return labels
}

// TrainConfig controls perceptron training.
type TrainConfig struct {
	Epochs int   // passes over the training set (default 8)
	Seed   int64 // shuffling seed; training is deterministic given it
}

// Train fits an averaged structured perceptron on gold examples. The
// returned model holds the averaged weights, which generalize markedly
// better than the final raw weights.
func Train(examples []Example, cfg TrainConfig) (*Model, error) {
	if len(examples) == 0 {
		return nil, errors.New("ner: no training examples")
	}
	for i, ex := range examples {
		if err := ex.Validate(); err != nil {
			return nil, err
		}
		if len(ex.Tokens) == 0 {
			return nil, errors.New("ner: empty training example")
		}
		_ = i
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 8
	}

	raw := NewModel()
	// Averaging bookkeeping: totals accumulate weight×steps-held via the
	// lazy-update trick (Daumé's averaged perceptron formulation).
	totalEmissions := make(map[string]*[NLabels]float64)
	lastUpdate := make(map[string]*[NLabels]int)
	var totalTransitions [NLabels + 1][NLabels]float64
	var lastTransUpdate [NLabels + 1][NLabels]int

	step := 0
	bumpEmit := func(f string, l Label, delta float64) {
		wv, ok := raw.emissions[f]
		if !ok {
			wv = new([NLabels]float64)
			raw.emissions[f] = wv
			totalEmissions[f] = new([NLabels]float64)
			lastUpdate[f] = new([NLabels]int)
		}
		totalEmissions[f][l] += wv[l] * float64(step-lastUpdate[f][l])
		lastUpdate[f][l] = step
		wv[l] += delta
	}
	bumpTrans := func(from int, to Label, delta float64) {
		totalTransitions[from][to] += raw.transitions[from][to] * float64(step-lastTransUpdate[from][to])
		lastTransUpdate[from][to] = step
		raw.transitions[from][to] += delta
	}

	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			ex := examples[idx]
			step++
			pred := raw.Tag(ex.Tokens)
			for i := range ex.Tokens {
				if pred[i] == ex.Labels[i] {
					continue
				}
				for _, f := range featurize(ex.Tokens, i) {
					bumpEmit(f, ex.Labels[i], 1)
					bumpEmit(f, pred[i], -1)
				}
			}
			// Transition updates, including the start transition.
			goldPrev, predPrev := int(NLabels), int(NLabels)
			for i := range ex.Tokens {
				g, p := ex.Labels[i], pred[i]
				if goldPrev != predPrev || g != p {
					bumpTrans(goldPrev, g, 1)
					bumpTrans(predPrev, p, -1)
				}
				goldPrev, predPrev = int(g), int(p)
			}
		}
	}

	// Finalize averages.
	avg := NewModel()
	denom := float64(step)
	for f, wv := range raw.emissions {
		tot := totalEmissions[f]
		lu := lastUpdate[f]
		out := new([NLabels]float64)
		nonzero := false
		for l := 0; l < int(NLabels); l++ {
			t := tot[l] + wv[l]*float64(step-lu[l])
			out[l] = t / denom
			if out[l] != 0 {
				nonzero = true
			}
		}
		if nonzero {
			avg.emissions[f] = out
		}
	}
	for from := 0; from <= int(NLabels); from++ {
		for to := Label(0); to < NLabels; to++ {
			t := totalTransitions[from][to] +
				raw.transitions[from][to]*float64(step-lastTransUpdate[from][to])
			avg.transitions[from][to] = t / denom
		}
	}
	return avg, nil
}

// FeatureCount reports the number of active emission features (for
// diagnostics and tests).
func (m *Model) FeatureCount() int { return len(m.emissions) }
