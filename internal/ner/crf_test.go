package ner

import (
	"math"
	"testing"
)

func TestCRFLearnsCorpus(t *testing.T) {
	train := goldCorpus(500, 21)
	test := goldCorpus(200, 22)
	model, err := TrainCRF(train, CRFConfig{Epochs: 4, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, ex := range test {
		pred := model.Tag(ex.Tokens)
		for i := range ex.Labels {
			total++
			if pred[i] == ex.Labels[i] {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.97 {
		t.Errorf("CRF token accuracy %.3f, want ≥0.97", acc)
	}
}

func TestCRFComparableToPerceptron(t *testing.T) {
	train := goldCorpus(400, 31)
	test := goldCorpus(150, 32)
	crf, err := TrainCRF(train, CRFConfig{Epochs: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	perc, err := Train(train, TrainConfig{Epochs: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	score := func(m *Model) float64 {
		correct, total := 0, 0
		for _, ex := range test {
			pred := m.Tag(ex.Tokens)
			for i := range ex.Labels {
				total++
				if pred[i] == ex.Labels[i] {
					correct++
				}
			}
		}
		return float64(correct) / float64(total)
	}
	c, p := score(crf), score(perc)
	t.Logf("CRF accuracy %.4f, perceptron %.4f", c, p)
	// Same model class, same features: they must land in the same regime.
	if math.Abs(c-p) > 0.05 {
		t.Errorf("CRF (%.3f) and perceptron (%.3f) diverge beyond 5 points", c, p)
	}
}

func TestCRFValidation(t *testing.T) {
	if _, err := TrainCRF(nil, CRFConfig{}); err == nil {
		t.Error("TrainCRF(nil) succeeded")
	}
	bad := []Example{{Tokens: []string{"a"}, Labels: []Label{Name, Name}}}
	if _, err := TrainCRF(bad, CRFConfig{}); err == nil {
		t.Error("TrainCRF arity mismatch succeeded")
	}
}

func TestCRFDeterministic(t *testing.T) {
	corpus := goldCorpus(150, 41)
	a, err1 := TrainCRF(corpus, CRFConfig{Epochs: 2, Seed: 5})
	b, err2 := TrainCRF(corpus, CRFConfig{Epochs: 2, Seed: 5})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	probe := tokenize("2 cups fresh milk , finely chopped")
	pa, pb := a.Tag(probe), b.Tag(probe)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("CRF training not deterministic for fixed seed")
		}
	}
}

func TestCRFSerializes(t *testing.T) {
	// The CRF returns a *Model, so Save/Load must work unchanged.
	model, err := TrainCRF(goldCorpus(100, 51), CRFConfig{Epochs: 2, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	var sink countingWriter
	if err := model.Save(&sink); err != nil {
		t.Fatal(err)
	}
	if sink.n == 0 {
		t.Error("Save wrote nothing")
	}
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

func TestLogSumExp(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{0, 0}, math.Log(2)},
		{[]float64{1000, 1000}, 1000 + math.Log(2)},
		{[]float64{math.Inf(-1), 0}, 0},
		{[]float64{math.Inf(-1), math.Inf(-1)}, math.Inf(-1)},
	}
	for _, c := range cases {
		if got := logSumExp(c.in); math.Abs(got-c.want) > 1e-9 && !(math.IsInf(got, -1) && math.IsInf(c.want, -1)) {
			t.Errorf("logSumExp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func BenchmarkTrainCRF(b *testing.B) {
	corpus := goldCorpus(150, 61)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TrainCRF(corpus, CRFConfig{Epochs: 2, Seed: 61}); err != nil {
			b.Fatal(err)
		}
	}
}
