package ner

import "strings"

// Extraction is the structured form of one ingredient phrase — one row of
// the paper's Table I.
type Extraction struct {
	Name     string // "beef", "black pepper"
	State    string // "ground lean", "chopped"
	Quantity string // "1/2", "2-4"
	Unit     string // "lb", "tablespoon"
	Temp     string // "cold"
	DryFresh string // "fresh"
	Size     string // "small"
}

// Tagger is anything that labels tokenized phrases: the learned Model,
// the RuleTagger baseline, or a test double.
type Tagger interface {
	Tag(tokens []string) []Label
}

// Extract runs a tagger over a raw ingredient phrase and assembles the
// labeled tokens into an Extraction. Tokens with the same label are
// joined in phrase order with single spaces (Table I shows multi-word
// values like "ground lean" and "black pepper").
func Extract(t Tagger, phrase string) Extraction {
	tokens := tokenize(phrase)
	labels := t.Tag(tokens)
	return Assemble(tokens, labels)
}

// Assemble groups labeled tokens into an Extraction.
func Assemble(tokens []string, labels []Label) Extraction {
	var parts [NLabels][]string
	for i, tok := range tokens {
		l := labels[i]
		if l == Out || l >= NLabels {
			continue
		}
		parts[l] = append(parts[l], tok)
	}
	join := func(l Label) string { return strings.Join(parts[l], " ") }
	return Extraction{
		Name:     join(Name),
		State:    join(State),
		Quantity: join(Quantity),
		Unit:     join(Unit),
		Temp:     join(Temp),
		DryFresh: join(DF),
		Size:     join(Size),
	}
}

// IsEmpty reports whether nothing at all was extracted.
func (e Extraction) IsEmpty() bool {
	return e == Extraction{}
}
