package ner

// RuleTagger is the deterministic baseline tagger. It encodes the
// positional grammar of ingredient phrases directly: a leading numeric
// token is the QUANTITY, a following measurement word is the UNIT,
// closed-class lexicons give SIZE/TEMP/DF/STATE, punctuation and filler
// map to O, and remaining content words are the NAME.
//
// It serves two roles: the ablation baseline the learned tagger is
// compared against, and the bootstrap annotator used to produce silver
// labels when no gold corpus is available.
type RuleTagger struct{}

// Tag labels a tokenized phrase. It never fails; unknown tokens default
// to NAME, which is the majority class in ingredient phrases.
func (RuleTagger) Tag(tokens []string) []Label {
	labels := make([]Label, len(tokens))
	seenName := false
	afterComma := false
	skipAlternative := false
	for i, tok := range tokens {
		// "3/4 cup butter or 3/4 cup margarine": once the NAME has been
		// seen, an "or" introduces an alternative ingredient, which the
		// paper's Table I drops entirely.
		if skipAlternative && tok != "," {
			labels[i] = Out
			continue
		}
		if tok == "or" && seenName {
			labels[i] = Out
			skipAlternative = true
			continue
		}
		switch {
		case tok == "," || tok == "(" || tok == ")":
			labels[i] = Out
			if tok == "," {
				afterComma = true
				skipAlternative = false
			}
		case isQuantityToken(tok):
			labels[i] = Quantity
		case sizeWords[tok]:
			labels[i] = Size
		case tempWords[tok]:
			labels[i] = Temp
		case dfWords[tok]:
			labels[i] = DF
		case stateWords[tok]:
			labels[i] = State
		case fillerWords[tok]:
			labels[i] = Out
		case isUnitToken(tok) && !seenName:
			// Unit words before the name are true units ("2 cups flour");
			// after the name they are usually part of it or noise
			// ("chicken breast" — breast is a count unit but here NAME).
			labels[i] = Unit
		default:
			// Content word. After a comma boundary, trailing content
			// words are nearly always processing states in this corpus
			// ("onion , finely chopped"), but only when a name exists.
			if afterComma && seenName {
				labels[i] = State
			} else {
				labels[i] = Name
				seenName = true
			}
		}
	}
	return labels
}

// TagPhrase tokenizes and tags a raw phrase in one call.
func (r RuleTagger) TagPhrase(phrase string) ([]string, []Label) {
	toks := tokenize(phrase)
	return toks, r.Tag(toks)
}
