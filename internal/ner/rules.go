package ner

// RuleTagger is the deterministic baseline tagger. It encodes the
// positional grammar of ingredient phrases directly: a leading numeric
// token is the QUANTITY, a following measurement word is the UNIT,
// closed-class lexicons give SIZE/TEMP/DF/STATE, punctuation and filler
// map to O, and remaining content words are the NAME.
//
// It serves two roles: the ablation baseline the learned tagger is
// compared against, and the bootstrap annotator used to produce silver
// labels when no gold corpus is available.
type RuleTagger struct{}

// Tag labels a tokenized phrase. It never fails; unknown tokens default
// to NAME, which is the majority class in ingredient phrases.
func (RuleTagger) Tag(tokens []string) []Label {
	return appendRuleTags(make([]Label, 0, len(tokens)), tokens, nil)
}

// TagScratch is Tag decoding into sc, with isUnitToken memoized per
// scratch. The returned slice aliases sc.
func (RuleTagger) TagScratch(tokens []string, sc *Scratch) []Label {
	sc.labels = appendRuleTags(sc.labels[:0], tokens, sc)
	return sc.labels
}

// appendRuleTags is the positional grammar, appending one label per
// token to dst. sc (nilable) only memoizes the unit predicate — the
// labels emitted are independent of it.
func appendRuleTags(dst []Label, tokens []string, sc *Scratch) []Label {
	seenName := false
	afterComma := false
	skipAlternative := false
	for _, tok := range tokens {
		// "3/4 cup butter or 3/4 cup margarine": once the NAME has been
		// seen, an "or" introduces an alternative ingredient, which the
		// paper's Table I drops entirely.
		if skipAlternative && tok != "," {
			dst = append(dst, Out)
			continue
		}
		if tok == "or" && seenName {
			dst = append(dst, Out)
			skipAlternative = true
			continue
		}
		switch {
		case tok == "," || tok == "(" || tok == ")":
			dst = append(dst, Out)
			if tok == "," {
				afterComma = true
				skipAlternative = false
			}
		case isQuantityToken(tok):
			dst = append(dst, Quantity)
		case sizeWords[tok]:
			dst = append(dst, Size)
		case tempWords[tok]:
			dst = append(dst, Temp)
		case dfWords[tok]:
			dst = append(dst, DF)
		case stateWords[tok]:
			dst = append(dst, State)
		case fillerWords[tok]:
			dst = append(dst, Out)
		case sc.isUnit(tok) && !seenName:
			// Unit words before the name are true units ("2 cups flour");
			// after the name they are usually part of it or noise
			// ("chicken breast" — breast is a count unit but here NAME).
			dst = append(dst, Unit)
		default:
			// Content word. After a comma boundary, trailing content
			// words are nearly always processing states in this corpus
			// ("onion , finely chopped"), but only when a name exists.
			if afterComma && seenName {
				dst = append(dst, State)
			} else {
				dst = append(dst, Name)
				seenName = true
			}
		}
	}
	return dst
}

// TagPhrase tokenizes and tags a raw phrase in one call.
func (r RuleTagger) TagPhrase(phrase string) ([]string, []Label) {
	toks := tokenize(phrase)
	return toks, r.Tag(toks)
}
