package ner

import (
	"strconv"

	"nutriprofile/internal/textutil"
)

// tokenize is the package-local tokenizer; identical to textutil.Tokenize
// and aliased so the feature code reads locally.
func tokenize(phrase string) []string { return textutil.Tokenize(phrase) }

// featurize emits the feature strings for position i of tokens. The
// templates mirror a standard CRF NER configuration: word identity in a
// ±2 window, bigram conjunctions, affixes, word shape, and gazetteer
// (lexicon) membership flags. Transition structure is handled separately
// by the decoder's transition weights.
func featurize(tokens []string, i int) []string {
	at := func(j int) string {
		switch {
		case j < 0:
			return "<s>"
		case j >= len(tokens):
			return "</s>"
		default:
			return tokens[j]
		}
	}
	w := tokens[i]
	feats := make([]string, 0, 24)
	add := func(f string) { feats = append(feats, f) }

	add("w0=" + w)
	add("w-1=" + at(i-1))
	add("w+1=" + at(i+1))
	add("w-2=" + at(i-2))
	add("w+2=" + at(i+2))
	add("w-1,0=" + at(i-1) + "|" + w)
	add("w0,+1=" + w + "|" + at(i+1))

	if n := len(w); n > 2 {
		add("suf2=" + w[n-2:])
		if n > 3 {
			add("suf3=" + w[n-3:])
		}
		add("pre2=" + w[:2])
		if n > 3 {
			add("pre3=" + w[:3])
		}
	}

	add("shape=" + wordShape(w))
	add("pos=" + strconv.Itoa(min(i, 6)))
	if i == 0 {
		add("first")
	}
	if i == len(tokens)-1 {
		add("last")
	}

	if isQuantityToken(w) {
		add("lex:qty")
	}
	if isUnitToken(w) {
		add("lex:unit")
	}
	if sizeWords[w] {
		add("lex:size")
	}
	if tempWords[w] {
		add("lex:temp")
	}
	if dfWords[w] {
		add("lex:df")
	}
	if stateWords[w] {
		add("lex:state")
	}
	if fillerWords[w] {
		add("lex:filler")
	}
	if isQuantityToken(at(i - 1)) {
		add("prev:qty")
	}
	if isUnitToken(at(i - 1)) {
		add("prev:unit")
	}
	if at(i-1) == "," {
		add("prev:comma")
	}
	return feats
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// emitFeatures is featurize fused with the emission lookup: instead of
// materializing feature strings it assembles each feature's byte spelling
// in buf and bumps the model's weights for it straight into row. The
// templates, their spellings, and their emission order deliberately
// duplicate featurize line for line — a shared abstraction would either
// allocate (closures over append targets escape) or obscure the exact
// float accumulation order that keeps TagScratch bit-identical to Tag.
// TestEmitFeaturesParity pins the two against each other.
func (m *Model) emitFeatures(tokens []string, i int, buf []byte, row *[NLabels]float64, sc *Scratch) []byte {
	at := func(j int) string {
		switch {
		case j < 0:
			return "<s>"
		case j >= len(tokens):
			return "</s>"
		default:
			return tokens[j]
		}
	}
	w := tokens[i]

	buf = append(buf[:0], "w0="...)
	buf = append(buf, w...)
	m.bump(buf, row)

	buf = append(buf[:0], "w-1="...)
	buf = append(buf, at(i-1)...)
	m.bump(buf, row)

	buf = append(buf[:0], "w+1="...)
	buf = append(buf, at(i+1)...)
	m.bump(buf, row)

	buf = append(buf[:0], "w-2="...)
	buf = append(buf, at(i-2)...)
	m.bump(buf, row)

	buf = append(buf[:0], "w+2="...)
	buf = append(buf, at(i+2)...)
	m.bump(buf, row)

	buf = append(buf[:0], "w-1,0="...)
	buf = append(buf, at(i-1)...)
	buf = append(buf, '|')
	buf = append(buf, w...)
	m.bump(buf, row)

	buf = append(buf[:0], "w0,+1="...)
	buf = append(buf, w...)
	buf = append(buf, '|')
	buf = append(buf, at(i+1)...)
	m.bump(buf, row)

	if n := len(w); n > 2 {
		buf = append(buf[:0], "suf2="...)
		buf = append(buf, w[n-2:]...)
		m.bump(buf, row)
		if n > 3 {
			buf = append(buf[:0], "suf3="...)
			buf = append(buf, w[n-3:]...)
			m.bump(buf, row)
		}
		buf = append(buf[:0], "pre2="...)
		buf = append(buf, w[:2]...)
		m.bump(buf, row)
		if n > 3 {
			buf = append(buf[:0], "pre3="...)
			buf = append(buf, w[:3]...)
			m.bump(buf, row)
		}
	}

	buf = append(buf[:0], "shape="...)
	buf = appendShape(buf, w)
	m.bump(buf, row)

	buf = append(buf[:0], "pos="...)
	buf = append(buf, byte('0'+min(i, 6)))
	m.bump(buf, row)

	if i == 0 {
		m.bump(append(buf[:0], "first"...), row)
	}
	if i == len(tokens)-1 {
		m.bump(append(buf[:0], "last"...), row)
	}

	if isQuantityToken(w) {
		m.bump(append(buf[:0], "lex:qty"...), row)
	}
	if sc.isUnit(w) {
		m.bump(append(buf[:0], "lex:unit"...), row)
	}
	if sizeWords[w] {
		m.bump(append(buf[:0], "lex:size"...), row)
	}
	if tempWords[w] {
		m.bump(append(buf[:0], "lex:temp"...), row)
	}
	if dfWords[w] {
		m.bump(append(buf[:0], "lex:df"...), row)
	}
	if stateWords[w] {
		m.bump(append(buf[:0], "lex:state"...), row)
	}
	if fillerWords[w] {
		m.bump(append(buf[:0], "lex:filler"...), row)
	}
	if isQuantityToken(at(i - 1)) {
		m.bump(append(buf[:0], "prev:qty"...), row)
	}
	if sc.isUnit(at(i - 1)) {
		m.bump(append(buf[:0], "prev:unit"...), row)
	}
	if at(i-1) == "," {
		m.bump(append(buf[:0], "prev:comma"...), row)
	}
	return buf
}
