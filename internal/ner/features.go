package ner

import (
	"strconv"

	"nutriprofile/internal/textutil"
)

// tokenize is the package-local tokenizer; identical to textutil.Tokenize
// and aliased so the feature code reads locally.
func tokenize(phrase string) []string { return textutil.Tokenize(phrase) }

// featurize emits the feature strings for position i of tokens. The
// templates mirror a standard CRF NER configuration: word identity in a
// ±2 window, bigram conjunctions, affixes, word shape, and gazetteer
// (lexicon) membership flags. Transition structure is handled separately
// by the decoder's transition weights.
func featurize(tokens []string, i int) []string {
	at := func(j int) string {
		switch {
		case j < 0:
			return "<s>"
		case j >= len(tokens):
			return "</s>"
		default:
			return tokens[j]
		}
	}
	w := tokens[i]
	feats := make([]string, 0, 24)
	add := func(f string) { feats = append(feats, f) }

	add("w0=" + w)
	add("w-1=" + at(i-1))
	add("w+1=" + at(i+1))
	add("w-2=" + at(i-2))
	add("w+2=" + at(i+2))
	add("w-1,0=" + at(i-1) + "|" + w)
	add("w0,+1=" + w + "|" + at(i+1))

	if n := len(w); n > 2 {
		add("suf2=" + w[n-2:])
		if n > 3 {
			add("suf3=" + w[n-3:])
		}
		add("pre2=" + w[:2])
		if n > 3 {
			add("pre3=" + w[:3])
		}
	}

	add("shape=" + wordShape(w))
	add("pos=" + strconv.Itoa(min(i, 6)))
	if i == 0 {
		add("first")
	}
	if i == len(tokens)-1 {
		add("last")
	}

	if isQuantityToken(w) {
		add("lex:qty")
	}
	if isUnitToken(w) {
		add("lex:unit")
	}
	if sizeWords[w] {
		add("lex:size")
	}
	if tempWords[w] {
		add("lex:temp")
	}
	if dfWords[w] {
		add("lex:df")
	}
	if stateWords[w] {
		add("lex:state")
	}
	if fillerWords[w] {
		add("lex:filler")
	}
	if isQuantityToken(at(i - 1)) {
		add("prev:qty")
	}
	if isUnitToken(at(i - 1)) {
		add("prev:unit")
	}
	if at(i-1) == "," {
		add("prev:comma")
	}
	return feats
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
