package ner

import (
	"strings"

	"nutriprofile/internal/textutil"
)

// Scratch is the ner stage's per-goroutine arena: every buffer the
// tagging and assembly hot path needs, owned by exactly one goroutine at
// a time (see pipeline.Scratch, which embeds one per worker). A warm
// Scratch makes the whole tag→assemble path allocation-free.
//
// The zero value is ready to use; buffers grow on demand and are reused
// across phrases. None of the methods are safe for concurrent use.
type Scratch struct {
	labels []Label            // decoded label sequence, one live phrase
	emit   [][NLabels]float64 // Viterbi emission scores, row per token
	back   []Label            // Viterbi backpointers, n×NLabels flat
	buf    []byte             // feature-key / field-join byte scratch

	// interned maps field strings to stable copies so Extraction fields
	// never alias the byte scratch (or, via single-token joins, the
	// caller's phrase). unitCache memoizes isUnitToken, whose lemma step
	// allocates for plural spellings. Both are bounded: vocabulary-sized
	// in practice, cleared wholesale if adversarial input overflows them.
	interned  map[string]string
	unitCache map[string]bool

	// firstWord[l] is the index of the first alphabetic token labeled l
	// in the phrase assembled last, or -1. Recorded during
	// AssembleScratch so unit resolution does not re-tokenize fields.
	firstWord [NLabels]int
}

// maxScratchEntries bounds each memo map; real corpora stay far below it.
const maxScratchEntries = 4096

// intern returns a stable string equal to b, reusing a prior copy when
// the same bytes were seen before.
func (sc *Scratch) intern(b []byte) string {
	if s, ok := sc.interned[string(b)]; ok {
		return s
	}
	s := string(b)
	if sc.interned == nil {
		sc.interned = make(map[string]string)
	} else if len(sc.interned) >= maxScratchEntries {
		clear(sc.interned)
	}
	sc.interned[s] = s
	return s
}

// isUnit is a memoized isUnitToken. A nil receiver falls back to the
// uncached predicate, so shared code paths need no branching.
func (sc *Scratch) isUnit(tok string) bool {
	if sc == nil {
		return isUnitToken(tok)
	}
	if known, ok := sc.unitCache[tok]; ok {
		return known
	}
	known := isUnitToken(tok)
	if sc.unitCache == nil {
		sc.unitCache = make(map[string]bool)
	} else if len(sc.unitCache) >= maxScratchEntries {
		clear(sc.unitCache)
	}
	// Clone the key: tok is usually a substring of the caller's phrase.
	sc.unitCache[strings.Clone(tok)] = known
	return known
}

// emitRows returns n zeroed emission rows. Rows must be cleared (unlike
// the backpointer rows) because features accumulate into them with +=.
func (sc *Scratch) emitRows(n int) [][NLabels]float64 {
	if cap(sc.emit) < n {
		sc.emit = make([][NLabels]float64, n)
	}
	sc.emit = sc.emit[:n]
	for i := range sc.emit {
		sc.emit[i] = [NLabels]float64{}
	}
	return sc.emit
}

// backRows returns the flat n×NLabels backpointer array, uncleared:
// Viterbi writes every cell it later reads (rows 1..n-1 fully, row 0
// never), so stale values from the previous phrase are unreachable.
func (sc *Scratch) backRows(n int) []Label {
	need := n * int(NLabels)
	if cap(sc.back) < need {
		sc.back = make([]Label, need)
	}
	sc.back = sc.back[:need]
	return sc.back
}

// labelSlice returns the n-length output slice for decoded labels.
func (sc *Scratch) labelSlice(n int) []Label {
	if cap(sc.labels) < n {
		sc.labels = make([]Label, n)
	}
	sc.labels = sc.labels[:n]
	return sc.labels
}

// FirstWordIndex returns the token index of the first alphabetic token
// the last AssembleScratch call assigned to label l, or -1 if none.
// Equivalent to textutil.FirstWord over the joined field, without the
// re-tokenization.
func (sc *Scratch) FirstWordIndex(l Label) int {
	if l >= NLabels {
		return -1
	}
	return sc.firstWord[l]
}

// ScratchTagger is a Tagger that can decode into a caller-owned Scratch,
// avoiding per-phrase allocations. The returned slice aliases the
// Scratch and is valid until its next use.
type ScratchTagger interface {
	Tagger
	TagScratch(tokens []string, sc *Scratch) []Label
}

// ExtractScratch is Extract over pre-tokenized input, decoding and
// assembling through sc. Taggers that do not implement ScratchTagger
// fall back to their allocating Tag path; assembly still reuses sc.
func ExtractScratch(t Tagger, tokens []string, sc *Scratch) Extraction {
	var labels []Label
	if st, ok := t.(ScratchTagger); ok {
		labels = st.TagScratch(tokens, sc)
	} else {
		labels = t.Tag(tokens)
	}
	return AssembleScratch(tokens, labels, sc)
}

// AssembleScratch is Assemble building its field strings in sc's byte
// scratch and interning the results, so a warm Scratch assembles without
// allocating. Field values are byte-identical to Assemble's.
func AssembleScratch(tokens []string, labels []Label, sc *Scratch) Extraction {
	var present [NLabels]bool
	for i := range sc.firstWord {
		sc.firstWord[i] = -1
	}
	for i := range tokens {
		if l := labels[i]; l < NLabels {
			present[l] = true
		}
	}
	var ex Extraction
	fields := [NLabels]*string{
		nil, &ex.Name, &ex.State, &ex.Unit, &ex.Quantity,
		&ex.Temp, &ex.DryFresh, &ex.Size,
	}
	for l := Name; l < NLabels; l++ {
		if !present[l] {
			continue
		}
		buf := sc.buf[:0]
		for i, tok := range tokens {
			if labels[i] != l {
				continue
			}
			if len(buf) > 0 {
				buf = append(buf, ' ')
			}
			buf = append(buf, tok...)
			if sc.firstWord[l] < 0 && textutil.IsWordToken(tok) {
				sc.firstWord[l] = i
			}
		}
		sc.buf = buf
		*fields[l] = sc.intern(buf)
	}
	return ex
}
