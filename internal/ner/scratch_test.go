package ner

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"nutriprofile/internal/textutil"
)

// scratchTestPhrases exercises every feature template and rule branch:
// quantities in all spellings, units before/after the name, sizes,
// temps, dry/fresh, states, fillers, commas, parentheses, alternative
// ingredients, unicode fraction glyphs, and degenerate inputs.
var scratchTestPhrases = []string{
	"2 cups all-purpose flour",
	"1 small onion , finely chopped",
	"1/2 lb lean ground beef",
	"1 teaspoon butter",
	"3/4 cup butter or 3/4 cup margarine , softened",
	"2 eggs , beaten",
	"1 tablespoon cold water",
	"2 cloves garlic , minced",
	"1 cup dried cranberries",
	"salt and pepper to taste",
	"1 (8 ounce) package cream cheese , softened",
	"2-4 large carrots , peeled and sliced",
	"½ cup sugar",
	"1¼ cups milk",
	"1.5 kg chicken breast , skinless",
	"pinch of salt",
	"fresh parsley for garnish",
	"3 medium tomatoes",
	"1 pound fresh mushrooms , sliced",
	"Boiling Water",
	"2 Tbsp. olive oil",
	"a",
	",",
	"",
	"1",
	"cup",
	"x",
}

// TestAppendShapeParity pins appendShape to wordShape over the corpus
// tokens plus multi-byte and punctuation-heavy shapes.
func TestAppendShapeParity(t *testing.T) {
	toks := []string{"", "Flour", "2-4", "hard-cooked", "½", "1¼", "a1a1", "..", "éclair", "ÅB", "日本", "x,y"}
	for _, p := range scratchTestPhrases {
		toks = append(toks, tokenize(p)...)
	}
	var buf []byte
	for _, tok := range toks {
		buf = appendShape(buf[:0], tok)
		if got, want := string(buf), wordShape(tok); got != want {
			t.Errorf("appendShape(%q) = %q, want %q", tok, got, want)
		}
	}
}

// probeModel builds a model whose emission table holds every feature the
// test phrases produce, with distinct deterministic weights per feature —
// so any divergence between featurize and emitFeatures shifts a score.
func probeModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel()
	n := 0
	for _, p := range scratchTestPhrases {
		toks := tokenize(p)
		for i := range toks {
			for _, f := range featurize(toks, i) {
				if _, ok := m.emissions[f]; ok {
					continue
				}
				wv := new([NLabels]float64)
				for l := 0; l < int(NLabels); l++ {
					wv[l] = float64((n*7+l*13)%101) - 50
				}
				m.emissions[f] = wv
				n++
			}
		}
	}
	// Distinct transitions so Viterbi paths are sensitive to them too.
	for from := 0; from <= int(NLabels); from++ {
		for to := 0; to < int(NLabels); to++ {
			m.transitions[from][to] = float64((from*17+to*5)%23) - 11
		}
	}
	if n == 0 {
		t.Fatal("probe model has no features")
	}
	return m
}

// TestEmitFeaturesParity compares the per-position emission row built by
// the string-based featurize path against emitFeatures' fused byte-key
// path. Scores must be bit-identical (same features, same accumulation
// order).
func TestEmitFeaturesParity(t *testing.T) {
	m := probeModel(t)
	m.compileOnce.Do(m.compile)
	sc := &Scratch{}
	for _, p := range scratchTestPhrases {
		toks := tokenize(p)
		var buf []byte
		for i := range toks {
			var want [NLabels]float64
			for _, f := range featurize(toks, i) {
				if wv, ok := m.emissions[f]; ok {
					for l := 0; l < int(NLabels); l++ {
						want[l] += wv[l]
					}
				}
			}
			var got [NLabels]float64
			buf = m.emitFeatures(toks, i, buf, &got, sc)
			if got != want {
				t.Errorf("phrase %q pos %d: emitFeatures row %v, want %v", p, i, got, want)
			}
		}
	}
}

// TestModelTagScratchMatchesTag pins the scratch decoder to the
// allocating one on a model with dense, adversarially distinct weights.
func TestModelTagScratchMatchesTag(t *testing.T) {
	m := probeModel(t)
	sc := &Scratch{}
	for _, p := range scratchTestPhrases {
		toks := tokenize(p)
		want := m.Tag(toks)
		got := m.TagScratch(toks, sc)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("phrase %q: TagScratch %v, want %v", p, got, want)
		}
	}
}

// TestTrainedModelTagScratchMatchesTag repeats the differential with a
// model trained on silver labels — realistic (sparse, averaged) weights.
func TestTrainedModelTagScratchMatchesTag(t *testing.T) {
	var rt RuleTagger
	var examples []Example
	for _, p := range scratchTestPhrases {
		toks := tokenize(p)
		if len(toks) == 0 {
			continue
		}
		examples = append(examples, Example{Tokens: toks, Labels: rt.Tag(toks)})
	}
	m, err := Train(examples, TrainConfig{Epochs: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scratch{}
	for _, p := range scratchTestPhrases {
		toks := tokenize(p)
		want := m.Tag(toks)
		got := m.TagScratch(toks, sc)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("phrase %q: TagScratch %v, want %v", p, got, want)
		}
	}
}

// TestRuleTaggerTagScratchMatchesTag pins the appending rule path (with
// the memoized unit predicate) to the plain one.
func TestRuleTaggerTagScratchMatchesTag(t *testing.T) {
	var rt RuleTagger
	sc := &Scratch{}
	for _, p := range scratchTestPhrases {
		toks := tokenize(p)
		want := rt.Tag(toks)
		got := rt.TagScratch(toks, sc)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("phrase %q: TagScratch %v, want %v", p, got, want)
		}
	}
}

// TestExtractScratchMatchesExtract pins scratch assembly (byte-scratch
// joins, interning, first-word indices) to Extract/Assemble, for both
// the rule tagger and the probe model.
func TestExtractScratchMatchesExtract(t *testing.T) {
	taggers := []struct {
		name string
		t    Tagger
	}{
		{"rule", RuleTagger{}},
		{"model", probeModel(t)},
	}
	for _, tc := range taggers {
		t.Run(tc.name, func(t *testing.T) {
			sc := &Scratch{}
			for _, p := range scratchTestPhrases {
				want := Extract(tc.t, p)
				toks := tokenize(p)
				got := ExtractScratch(tc.t, toks, sc)
				if got != want {
					t.Errorf("phrase %q: ExtractScratch %+v, want %+v", p, got, want)
				}
				// FirstWordIndex must agree with textutil.FirstWord over
				// the joined field — the equivalence unit resolution
				// relies on.
				fields := [NLabels]string{
					"", got.Name, got.State, got.Unit, got.Quantity,
					got.Temp, got.DryFresh, got.Size,
				}
				for l := Name; l < NLabels; l++ {
					idx := sc.FirstWordIndex(l)
					first := textutil.FirstWord(fields[l])
					if first == "" {
						if idx != -1 {
							t.Errorf("phrase %q label %v: FirstWordIndex %d, want -1 (field %q)", p, l, idx, fields[l])
						}
						continue
					}
					if idx < 0 || idx >= len(toks) || toks[idx] != first {
						t.Errorf("phrase %q label %v: FirstWordIndex %d (token %q), want token %q",
							p, l, idx, tokenAt(toks, idx), first)
					}
				}
			}
		})
	}
}

func tokenAt(toks []string, i int) string {
	if i < 0 || i >= len(toks) {
		return fmt.Sprintf("<out of range %d>", i)
	}
	return toks[i]
}

// TestExtractScratchFieldsStable: Extraction fields must survive the
// scratch being reused for later phrases (they are interned copies, not
// aliases into the byte scratch).
func TestExtractScratchFieldsStable(t *testing.T) {
	var rt RuleTagger
	sc := &Scratch{}
	first := ExtractScratch(rt, tokenize("2 cups all-purpose flour"), sc)
	want := first
	for _, p := range scratchTestPhrases {
		ExtractScratch(rt, tokenize(p), sc)
	}
	if first != want {
		t.Fatalf("extraction mutated by later scratch reuse: %+v, want %+v", first, want)
	}
	if first.Name != "all-purpose flour" {
		t.Fatalf("Name = %q, want %q", first.Name, "all-purpose flour")
	}
}

// TestScratchIsUnitMemo: the memoized predicate must agree with
// isUnitToken across repeated and overflowing use.
func TestScratchIsUnitMemo(t *testing.T) {
	sc := &Scratch{}
	toks := []string{"cup", "cups", "flour", "<s>", "</s>", "small", "lb", "g", ""}
	for round := 0; round < 3; round++ {
		for _, tok := range toks {
			if got, want := sc.isUnit(tok), isUnitToken(tok); got != want {
				t.Fatalf("round %d: isUnit(%q) = %v, want %v", round, tok, got, want)
			}
		}
	}
	// Overflow the bound; correctness must survive the wholesale clear.
	for i := 0; i < maxScratchEntries+10; i++ {
		sc.isUnit(strings.Repeat("x", 1+i%7) + fmt.Sprint(i))
	}
	for _, tok := range toks {
		if got, want := sc.isUnit(tok), isUnitToken(tok); got != want {
			t.Fatalf("post-overflow: isUnit(%q) = %v, want %v", tok, got, want)
		}
	}
}
