package ner

import (
	"errors"
	"math"
	"math/rand"
)

// TrainCRF fits a linear-chain Conditional Random Field — the exact model
// class of the Stanford NER tagger the paper trains (§II-A) — by
// stochastic gradient ascent on the conditional log-likelihood, using the
// same feature templates and the same Viterbi decoder as the averaged
// perceptron (the returned *Model differs only in how its weights were
// estimated). Forward–backward runs in log space.
//
// On this corpus the CRF and the perceptron land in the same high-0.9 F1
// regime (see the NER experiment); the CRF is provided for fidelity to
// the paper and for the probabilistic marginals its training computes.
func TrainCRF(examples []Example, cfg CRFConfig) (*Model, error) {
	if len(examples) == 0 {
		return nil, errors.New("ner: no training examples")
	}
	for _, ex := range examples {
		if err := ex.Validate(); err != nil {
			return nil, err
		}
		if len(ex.Tokens) == 0 {
			return nil, errors.New("ner: empty training example")
		}
	}
	cfg.fill()

	m := NewModel()
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}

	// Pre-extract features once; they are position-static.
	feats := make([][][]string, len(examples))
	for i, ex := range examples {
		feats[i] = make([][]string, len(ex.Tokens))
		for j := range ex.Tokens {
			feats[i][j] = featurize(ex.Tokens, j)
		}
	}

	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, idx := range order {
			step++
			lr := cfg.LearningRate / (1 + cfg.Decay*float64(step))
			m.sgdStep(examples[idx], feats[idx], lr, cfg.L2)
		}
	}
	return m, nil
}

// CRFConfig controls TrainCRF.
type CRFConfig struct {
	Epochs       int     // passes over the data (default 6)
	LearningRate float64 // initial SGD step size (default 0.2)
	Decay        float64 // step-size decay per update (default 1e-4)
	L2           float64 // L2 penalty applied to touched weights (default 1e-6)
	Seed         int64
}

func (c *CRFConfig) fill() {
	if c.Epochs <= 0 {
		c.Epochs = 6
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.2
	}
	if c.Decay <= 0 {
		c.Decay = 1e-4
	}
	if c.L2 < 0 {
		c.L2 = 0
	} else if c.L2 == 0 {
		c.L2 = 1e-6
	}
}

// sgdStep performs one conditional-log-likelihood gradient step for a
// single sentence: ∇ = empirical feature counts − model-expected counts,
// the expectations coming from forward–backward node and edge marginals.
func (m *Model) sgdStep(ex Example, feats [][]string, lr, l2 float64) {
	n := len(ex.Tokens)
	L := int(NLabels)

	// Emission scores.
	emit := make([][NLabels]float64, n)
	for i := range feats {
		for _, f := range feats[i] {
			if wv, ok := m.emissions[f]; ok {
				for l := 0; l < L; l++ {
					emit[i][l] += wv[l]
				}
			}
		}
	}

	// Forward (log space). alpha[i][l] includes emit[i][l].
	alpha := make([][NLabels]float64, n)
	for l := 0; l < L; l++ {
		alpha[0][l] = m.transitions[L][l] + emit[0][l]
	}
	var buf [NLabels]float64
	for i := 1; i < n; i++ {
		for l := 0; l < L; l++ {
			for from := 0; from < L; from++ {
				buf[from] = alpha[i-1][from] + m.transitions[from][l]
			}
			alpha[i][l] = logSumExp(buf[:]) + emit[i][l]
		}
	}
	logZ := logSumExp(alpha[n-1][:])

	// Backward. beta[i][l] excludes emit[i][l].
	beta := make([][NLabels]float64, n)
	for i := n - 2; i >= 0; i-- {
		for l := 0; l < L; l++ {
			for to := 0; to < L; to++ {
				buf[to] = m.transitions[l][to] + emit[i+1][to] + beta[i+1][to]
			}
			beta[i][l] = logSumExp(buf[:])
		}
	}

	// Emission gradient: for each position and feature,
	// w[l] += lr·(1{l=gold} − p(i,l)) − lr·l2·w[l].
	for i := 0; i < n; i++ {
		var marg [NLabels]float64
		for l := 0; l < L; l++ {
			marg[l] = math.Exp(alpha[i][l] + beta[i][l] - logZ)
		}
		gold := ex.Labels[i]
		for _, f := range feats[i] {
			wv, ok := m.emissions[f]
			if !ok {
				wv = new([NLabels]float64)
				m.emissions[f] = wv
			}
			for l := 0; l < L; l++ {
				g := -marg[l]
				if Label(l) == gold {
					g++
				}
				wv[l] += lr * (g - l2*wv[l])
			}
		}
	}

	// Transition gradient. Start row uses the position-0 marginals.
	{
		var marg [NLabels]float64
		for l := 0; l < L; l++ {
			marg[l] = math.Exp(alpha[0][l] + beta[0][l] - logZ)
		}
		for l := 0; l < L; l++ {
			g := -marg[l]
			if Label(l) == ex.Labels[0] {
				g++
			}
			m.transitions[L][l] += lr * g
		}
	}
	for i := 1; i < n; i++ {
		for from := 0; from < L; from++ {
			for to := 0; to < L; to++ {
				p := math.Exp(alpha[i-1][from] + m.transitions[from][to] +
					emit[i][to] + beta[i][to] - logZ)
				g := -p
				if ex.Labels[i-1] == Label(from) && ex.Labels[i] == Label(to) {
					g++
				}
				m.transitions[from][to] += lr * g
			}
		}
	}
}

// logSumExp computes log Σ exp(x) stably.
func logSumExp(xs []float64) float64 {
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}
