package ner

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"nutriprofile/internal/units"
)

// Closed-class lexicons backing both the rule-based tagger and the
// feature templates. These mirror the gazetteer features Stanford NER is
// typically run with.

// sizeWords are the SIZE entity inventory (§II-C treats the three sizes
// as equivalent units, but at the NER level they are SIZE tags).
var sizeWords = map[string]bool{
	"small": true, "medium": true, "large": true, "extra-large": true,
	"jumbo": true, "big": true, "little": true, "bite-size": true,
	"bite-sized": true, "medium-size": true, "medium-sized": true,
}

// tempWords carry the TEMP entity: serving/working temperature of an
// ingredient ("1 tablespoon cold water").
var tempWords = map[string]bool{
	"cold": true, "hot": true, "warm": true, "lukewarm": true,
	"chilled": true, "iced": true, "frozen": true, "room-temperature": true,
	"boiling": true, "cool": true, "tepid": true,
}

// dfWords carry the DF (dry/fresh) entity of Table I.
var dfWords = map[string]bool{
	"fresh": true, "dried": true, "dry": true,
	"dehydrated": true, "freeze-dried": true,
}

// stateWords are processing states: the participles and adjectives that
// fill the STATE column of Table I ("ground", "chopped", "softened",
// "hard-cooked", "lean", "low fat"…).
var stateWords = map[string]bool{
	"beaten": true, "blanched": true, "boiled": true, "boneless": true,
	"broken": true, "browned": true, "chopped": true, "cooked": true,
	"creamed": true, "crumbled": true, "crushed": true, "cubed": true,
	"cut": true, "diced": true, "drained": true, "grated": true,
	"ground": true, "halved": true, "hard-boiled": true,
	"hard-cooked": true, "hulled": true, "juiced": true, "julienned": true,
	"lean": true, "mashed": true, "melted": true, "minced": true,
	"packed": true, "pared": true, "peeled": true, "pitted": true,
	"pureed": true, "quartered": true, "rinsed": true, "roasted": true,
	"rolled": true, "scalded": true, "seeded": true, "shaved": true,
	"shelled": true, "shredded": true, "shucked": true, "sifted": true,
	"skinless": true, "sliced": true, "slivered": true, "smoked": true,
	"soaked": true, "soft-boiled": true, "softened": true, "split": true,
	"steamed": true, "stemmed": true, "stewed": true, "strained": true,
	"thawed": true, "toasted": true, "torn": true, "trimmed": true,
	"uncooked": true, "unsalted": true, "unsweetened": true, "washed": true,
	"whipped": true, "zested": true, "sour": true, "low-fat": true,
	"nonfat": true, "fat-free": true, "skim": true, "skimmed": true,
	"condensed": true, "evaporated": true, "sweetened": true,
	"marinated": true, "pickled": true, "cured": true, "salted": true,
	"squeezed": true, "sectioned": true, "flaked": true, "refrigerated": true,
	"divided": true, "separated": true, "crosswise": true, "lengthwise": true,
}

// fillerWords never carry an entity: adverbs and glue the NER maps to O.
var fillerWords = map[string]bool{
	"finely": true, "coarsely": true, "thinly": true, "thickly": true,
	"roughly": true, "lightly": true, "well": true, "very": true,
	"freshly": true,
	"about":   true, "approximately": true, "plus": true, "more": true,
	"taste": true, "to": true, "for": true, "garnish": true, "into": true,
	"or": true, "and": true, "of": true, "with": true, "without": true,
	"optional": true, "needed": true, "if": true, "desired": true,
	"such": true, "as": true, "a": true, "an": true, "the": true,
	"each": true, "in": true, "at": true, "on": true, "pieces": true,
	"piece": true, "serving": true, "additional": true, "extra": true,
	"preferably": true, "pats": true,
}

// isQuantityToken reports whether a token is numeric in any of the
// quantity spellings the corpus uses (integers, decimals, fractions,
// ranges).
func isQuantityToken(tok string) bool {
	if tok == "" {
		return false
	}
	hasDigit := false
	for _, r := range tok {
		switch {
		case unicode.IsDigit(r):
			hasDigit = true
		case r == '.' || r == '/' || r == '-':
		default:
			return false
		}
	}
	return hasDigit
}

// isUnitToken reports whether the token resolves to a known measurement
// unit that is NOT a size word (sizes get their own tag). NormalizeToken
// skips Normalize's re-tokenization; the inputs here are always single
// tokens (or the "<s>"/"</s>" sentinels, unknown either way).
func isUnitToken(tok string) bool {
	if sizeWords[tok] {
		return false
	}
	name, known := units.NormalizeToken(tok)
	if !known {
		return false
	}
	if k, err := units.KindOf(name); err == nil && k == units.Size {
		return false
	}
	return true
}

// wordShape produces a compact shape signature: "1" for digits, "a" for
// letters, with punctuation preserved; runs collapsed. "2-4" → "1-1",
// "hard-cooked" → "a-a", "Flour" → "a".
func wordShape(tok string) string {
	var b strings.Builder
	var last rune
	for _, r := range tok {
		var c rune
		switch {
		case unicode.IsDigit(r):
			c = '1'
		case unicode.IsLetter(r):
			c = 'a'
		default:
			c = r
		}
		if c != last {
			b.WriteRune(c)
			last = c
		}
	}
	return b.String()
}

// appendShape is wordShape appending its bytes to dst instead of
// building a string — the zero-alloc form the compiled feature emitter
// uses. Kept next to wordShape so the two rune classifications stay in
// lockstep (pinned by TestAppendShapeParity).
func appendShape(dst []byte, tok string) []byte {
	var last rune
	for _, r := range tok {
		var c rune
		switch {
		case unicode.IsDigit(r):
			c = '1'
		case unicode.IsLetter(r):
			c = 'a'
		default:
			c = r
		}
		if c != last {
			dst = utf8.AppendRune(dst, c)
			last = c
		}
	}
	return dst
}
