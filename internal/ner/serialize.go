package ner

import (
	"encoding/gob"
	"fmt"
	"io"
)

// modelData is the exported gob shadow of Model.
type modelData struct {
	Version     int
	Emissions   map[string][]float64
	Transitions [][]float64
}

const modelVersion = 1

// Save serializes the trained model. The format is gob with a version
// header; Load rejects unknown versions.
func (m *Model) Save(w io.Writer) error {
	data := modelData{
		Version:   modelVersion,
		Emissions: make(map[string][]float64, len(m.emissions)),
	}
	for f, wv := range m.emissions {
		row := make([]float64, NLabels)
		copy(row, wv[:])
		data.Emissions[f] = row
	}
	data.Transitions = make([][]float64, NLabels+1)
	for from := 0; from <= int(NLabels); from++ {
		row := make([]float64, NLabels)
		copy(row, m.transitions[from][:])
		data.Transitions[from] = row
	}
	if err := gob.NewEncoder(w).Encode(data); err != nil {
		return fmt.Errorf("ner: encoding model: %w", err)
	}
	return nil
}

// Load deserializes a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var data modelData
	if err := gob.NewDecoder(r).Decode(&data); err != nil {
		return nil, fmt.Errorf("ner: decoding model: %w", err)
	}
	if data.Version != modelVersion {
		return nil, fmt.Errorf("ner: model version %d, want %d", data.Version, modelVersion)
	}
	if len(data.Transitions) != int(NLabels)+1 {
		return nil, fmt.Errorf("ner: model has %d transition rows, want %d",
			len(data.Transitions), NLabels+1)
	}
	m := NewModel()
	for f, row := range data.Emissions {
		if len(row) != int(NLabels) {
			return nil, fmt.Errorf("ner: feature %q has %d weights, want %d", f, len(row), NLabels)
		}
		wv := new([NLabels]float64)
		copy(wv[:], row)
		m.emissions[f] = wv
	}
	for from, row := range data.Transitions {
		if len(row) != int(NLabels) {
			return nil, fmt.Errorf("ner: transition row %d has %d weights, want %d", from, len(row), NLabels)
		}
		copy(m.transitions[from][:], row)
	}
	return m, nil
}
