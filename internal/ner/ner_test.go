package ner

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// tableI lists the twelve ingredient phrases of the paper's Table I with
// their expected extractions.
var tableI = []struct {
	phrase string
	want   Extraction
}{
	{"1/2 lb lean ground beef",
		Extraction{Name: "beef", State: "lean ground", Quantity: "1/2", Unit: "lb"}},
	{"1 small onion , finely chopped",
		Extraction{Name: "onion", State: "chopped", Quantity: "1", Size: "small"}},
	{"1 hard-cooked egg , finely chopped",
		Extraction{Name: "egg", State: "hard-cooked chopped", Quantity: "1"}},
	{"1 tablespoon fresh dill weed",
		Extraction{Name: "dill weed", Quantity: "1", Unit: "tablespoon", DryFresh: "fresh"}},
	{"1/2 teaspoon salt", Extraction{Name: "salt", Quantity: "1/2", Unit: "teaspoon"}},
	{"1/8 teaspoon black pepper",
		Extraction{Name: "black pepper", Quantity: "1/8", Unit: "teaspoon"}},
	{"3/4 cup butter , softened",
		Extraction{Name: "butter", State: "softened", Quantity: "3/4", Unit: "cup"}},
	{"2 cups all-purpose flour",
		Extraction{Name: "all-purpose flour", Quantity: "2", Unit: "cups"}},
	{"1 teaspoon salt", Extraction{Name: "salt", Quantity: "1", Unit: "teaspoon"}},
	{"1/2 cup low-fat sour cream",
		Extraction{Name: "cream", State: "low-fat sour", Quantity: "1/2", Unit: "cup"}},
	{"1 egg yolk", Extraction{Name: "egg yolk", Quantity: "1"}},
	{"1 tablespoon cold water",
		Extraction{Name: "water", Quantity: "1", Unit: "tablespoon", Temp: "cold"}},
}

func TestRuleTaggerTableI(t *testing.T) {
	var rt RuleTagger
	for _, c := range tableI {
		got := Extract(rt, c.phrase)
		if got != c.want {
			t.Errorf("Extract(%q):\n got %+v\nwant %+v", c.phrase, got, c.want)
		}
	}
}

func TestRuleTaggerEdgeCases(t *testing.T) {
	var rt RuleTagger
	cases := []struct {
		phrase string
		want   Extraction
	}{
		{"", Extraction{}},
		{"salt", Extraction{Name: "salt"}},
		{"2-4 cloves garlic , minced",
			Extraction{Name: "garlic", State: "minced", Quantity: "2-4", Unit: "cloves"}},
		{"1 1/2 cups milk", Extraction{Name: "milk", Quantity: "1 1/2", Unit: "cups"}},
	}
	for _, c := range cases {
		if got := Extract(rt, c.phrase); got != c.want {
			t.Errorf("Extract(%q):\n got %+v\nwant %+v", c.phrase, got, c.want)
		}
	}
}

// goldCorpus builds a silver training corpus with the rule tagger over
// phrase templates, then perturbs nothing — the perceptron must at least
// learn to reproduce its teacher on held-out phrases built from disjoint
// vocabulary combinations.
func goldCorpus(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"beef", "onion", "egg", "salt", "butter", "flour",
		"milk", "sugar", "garlic", "water", "cream", "pepper", "rice",
		"cheese", "tomato", "basil", "chicken", "carrot", "celery", "honey"}
	quantities := []string{"1", "2", "1/2", "1/4", "3/4", "2-4", "1 1/2", "3"}
	unitWords := []string{"cup", "cups", "tablespoon", "teaspoon", "lb", "oz", "cloves", "can"}
	sizes := []string{"small", "medium", "large"}
	states := []string{"chopped", "minced", "ground", "softened", "diced", "melted"}
	dfs := []string{"fresh", "dried"}
	temps := []string{"cold", "hot", "warm"}

	var rt RuleTagger
	out := make([]Example, 0, n)
	for len(out) < n {
		var b strings.Builder
		b.WriteString(quantities[rng.Intn(len(quantities))])
		switch rng.Intn(4) {
		case 0:
			b.WriteString(" " + unitWords[rng.Intn(len(unitWords))])
		case 1:
			b.WriteString(" " + sizes[rng.Intn(len(sizes))])
		}
		if rng.Intn(3) == 0 {
			b.WriteString(" " + dfs[rng.Intn(len(dfs))])
		}
		if rng.Intn(4) == 0 {
			b.WriteString(" " + temps[rng.Intn(len(temps))])
		}
		b.WriteString(" " + names[rng.Intn(len(names))])
		if rng.Intn(2) == 0 {
			b.WriteString(" , " + states[rng.Intn(len(states))])
		}
		toks := tokenize(b.String())
		out = append(out, Example{Tokens: toks, Labels: rt.Tag(toks)})
	}
	return out
}

func TestTrainLearnsCorpus(t *testing.T) {
	train := goldCorpus(600, 1)
	test := goldCorpus(200, 2)
	model, err := Train(train, TrainConfig{Epochs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, ex := range test {
		pred := model.Tag(ex.Tokens)
		for i := range ex.Labels {
			total++
			if pred[i] == ex.Labels[i] {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.97 {
		t.Errorf("token accuracy %.3f on held-out silver corpus, want ≥0.97", acc)
	}
	if model.FeatureCount() == 0 {
		t.Error("trained model has no features")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Error("Train(nil) succeeded")
	}
	bad := []Example{{Tokens: []string{"a", "b"}, Labels: []Label{Name}}}
	if _, err := Train(bad, TrainConfig{}); err == nil {
		t.Error("Train with arity mismatch succeeded")
	}
	empty := []Example{{Tokens: nil, Labels: nil}}
	if _, err := Train(empty, TrainConfig{}); err == nil {
		t.Error("Train with empty example succeeded")
	}
}

func TestTrainDeterministic(t *testing.T) {
	corpus := goldCorpus(150, 5)
	m1, err1 := Train(corpus, TrainConfig{Epochs: 3, Seed: 9})
	m2, err2 := Train(corpus, TrainConfig{Epochs: 3, Seed: 9})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	probe := tokenize("2 cups fresh milk , chopped")
	p1, p2 := m1.Tag(probe), m2.Tag(probe)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("training not deterministic for fixed seed")
		}
	}
}

func TestModelEmptyInput(t *testing.T) {
	m := NewModel()
	if got := m.Tag(nil); got != nil {
		t.Errorf("Tag(nil) = %v", got)
	}
	toks, labels := m.TagPhrase("")
	if len(toks) != 0 || len(labels) != 0 {
		t.Error("TagPhrase empty should produce nothing")
	}
}

func TestLabelString(t *testing.T) {
	cases := map[Label]string{
		Out: "O", Name: "NAME", State: "STATE", Unit: "UNIT",
		Quantity: "QUANTITY", Temp: "TEMP", DF: "DF", Size: "SIZE",
	}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
		back, err := ParseLabel(want)
		if err != nil || back != l {
			t.Errorf("ParseLabel(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseLabel("BOGUS"); err == nil {
		t.Error("ParseLabel(BOGUS) succeeded")
	}
}

func TestAssembleJoinsInOrder(t *testing.T) {
	toks := []string{"lean", "ground", "beef"}
	labels := []Label{State, State, Name}
	e := Assemble(toks, labels)
	if e.State != "lean ground" || e.Name != "beef" {
		t.Errorf("Assemble = %+v", e)
	}
}

func TestWordShape(t *testing.T) {
	cases := map[string]string{
		"2-4":         "1-1",
		"hard-cooked": "a-a",
		"1/2":         "1/1",
		"flour":       "a",
		"2.5":         "1.1",
		"":            "",
	}
	for in, want := range cases {
		if got := wordShape(in); got != want {
			t.Errorf("wordShape(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: the rule tagger is total — label count always matches token
// count and all labels are valid.
func TestRuleTaggerTotal(t *testing.T) {
	var rt RuleTagger
	f := func(phrase string) bool {
		toks, labels := rt.TagPhrase(phrase)
		if len(toks) != len(labels) {
			return false
		}
		for _, l := range labels {
			if l >= NLabels {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a trained model is total over arbitrary phrases.
func TestModelTotal(t *testing.T) {
	model, err := Train(goldCorpus(100, 4), TrainConfig{Epochs: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := func(phrase string) bool {
		toks, labels := model.TagPhrase(phrase)
		return len(toks) == len(labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRuleTagger(b *testing.B) {
	var rt RuleTagger
	toks := tokenize("1/2 cup low-fat sour cream , chilled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Tag(toks)
	}
}

func BenchmarkModelTag(b *testing.B) {
	model, err := Train(goldCorpus(300, 6), TrainConfig{Epochs: 3, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	toks := tokenize("1/2 cup low-fat sour cream , chilled")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Tag(toks)
	}
}
