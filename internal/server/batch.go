package server

// POST /v1/batch — the streaming bulk endpoint. The body is NDJSON:
// each line is either an EstimateRequest or a RecipeRequest, and each
// non-blank line produces exactly one NDJSON response line, in input
// order — an EstimateResponse, a RecipeResponse, or a BatchErrorBody
// carrying the 1-based input line number. Per-line failures never abort
// the stream; the only in-stream terminations are client disconnect and
// graceful drain (which ends the stream with a `draining` trailer line
// rather than hanging shutdown).
//
// The stream is processed in bounded windows: read up to BatchWindow
// lines (or ~batchWindowBytes), decode them into scratch-owned views,
// estimate the whole window through core.EstimateRecipesInto on
// BatchWorkers workers, render, write, flush, yield. Windowing is what
// ties an unbounded stream to bounded memory and bounded scheduling:
// between windows the goroutine yields and re-checks the drain signal,
// and the estimator only ever sees BatchWindow recipes at a time.
//
// Hot-path discipline matches codec.go: one batchScratch owns every
// buffer a stream touches, all of them grow-only, so a warm stream
// processes each window with zero heap allocations
// (TestServeBatchHotZeroAllocs pins this). Line payloads are decoded as
// unsafe views into the window buffer / decoder scratch; they die at
// compact(), after the window's output is rendered.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"nutriprofile/internal/core"
	"nutriprofile/internal/jsonx"
	"nutriprofile/internal/yield"
)

const (
	ndjsonContentType = "application/x-ndjson"
	// batchWindowBytes soft-caps the raw bytes one window consumes, so a
	// stream of maximal lines cannot turn BatchWindow into an unbounded
	// buffer. A single line may still reach MaxBodyBytes.
	batchWindowBytes = 512 << 10
	// drainPoll bounds how long a bulk stream blocked on a slow reader
	// goes without checking the drain signal.
	drainPoll = 250 * time.Millisecond
)

// lineSpan locates one input line inside the window buffer. tooLong
// marks a line that exceeded the per-line byte cap — its bytes were
// discarded and only the error response remains to be rendered.
type lineSpan struct {
	off, end int
	line     int // 1-based input line number
	tooLong  bool
}

type batchItemKind uint8

const (
	itemError batchItemKind = iota
	itemEstimate
	itemRecipe
)

// batchItem is one decoded line awaiting estimation/encoding. Estimate
// and recipe items index into batchScratch.inputs/outcomes; error items
// carry their envelope inline.
type batchItem struct {
	kind   batchItemKind
	line   int
	idx    int
	status int
	code   string
	msg    string
}

// batchScratch is the per-stream arena: the window buffer, the rendered
// output, decoded line metadata, the estimator's input/outcome/result
// arenas and the phrase-view arena. Everything is grow-only across
// windows, so a warm stream stops allocating entirely.
type batchScratch struct {
	buf      []byte // raw input bytes: consumed window + unread tail
	out      []byte // rendered NDJSON for the current window
	spans    []lineSpan
	items    []batchItem
	inputs   []core.RecipeInput
	outcomes []core.RecipeOutcome
	arena    []core.IngredientResult
	ings     []string // phrase views; inputs' Phrases are sub-slices
	dec      jsonx.Decoder
}

// maxPooledBatch caps the buffer capacity a batch scratch may carry
// back into the pool — one oversized stream must not pin megabytes.
const maxPooledBatch = 4 << 20

var batchPool = sync.Pool{New: func() any {
	return &batchScratch{
		buf: make([]byte, 0, 64<<10),
		out: make([]byte, 0, 64<<10),
	}
}}

func getBatchScratch() *batchScratch { return batchPool.Get().(*batchScratch) }

func putBatchScratch(bs *batchScratch) {
	// Clear through cap, not len: entries parked beyond the current
	// length still hold views of request bytes and must not survive into
	// another stream (or pin dead buffers in the pool).
	clear(bs.ings[:cap(bs.ings)])
	clear(bs.inputs[:cap(bs.inputs)])
	clear(bs.items[:cap(bs.items)])
	clear(bs.outcomes[:cap(bs.outcomes)])
	clear(bs.arena[:cap(bs.arena)])
	bs.ings = bs.ings[:0]
	bs.inputs = bs.inputs[:0]
	bs.items = bs.items[:0]
	bs.outcomes = bs.outcomes[:0]
	bs.arena = bs.arena[:0]
	bs.spans = bs.spans[:0]
	bs.buf = bs.buf[:0]
	bs.out = bs.out[:0]
	bs.dec.Reset(nil)
	if cap(bs.buf)+cap(bs.out) > maxPooledBatch {
		return
	}
	batchPool.Put(bs)
}

// batchStream drives one /v1/batch request through the window loop.
type batchStream struct {
	s    *Server
	bs   *batchScratch
	body io.Reader
	dst  io.Writer
	ctx  context.Context
	// rc controls the underlying connection; deadlineOK/flushOK latch to
	// false the first time the transport reports the verb unsupported
	// (httptest recorders, fuzz harness), falling back to plain blocking
	// reads and unflushed writes.
	rc         *http.ResponseController
	deadlineOK bool
	flushOK    bool

	line     int // input lines numbered so far
	consumed int // bytes of bs.buf consumed by the current window
	errs     int // error lines rendered in the current window
	discard  bool
	draining bool
	eof      bool
	readErr  error
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	bs := getBatchScratch()
	defer putBatchScratch(bs)
	st := batchStream{
		s:          s,
		bs:         bs,
		body:       r.Body,
		dst:        w,
		ctx:        r.Context(),
		rc:         http.NewResponseController(w),
		deadlineOK: true,
		flushOK:    true,
	}
	// HTTP/1.x servers close the request body once the handler starts
	// responding; a bulk stream writes and reads concurrently for its
	// whole life, so it must opt in to full-duplex. Ignore the error:
	// transports that don't support the verb (httptest recorders) don't
	// close the body on write either.
	_ = st.rc.EnableFullDuplex()
	// Probe deadline support once so the poll loop doesn't retry a verb
	// the transport will never grow.
	if st.rc.SetReadDeadline(time.Time{}) != nil {
		st.deadlineOK = false
	}
	// The status line commits before the first line is read: per-line
	// failures are in-stream envelopes, and an early 200 + flush lets
	// clients start their read loop immediately (avoiding the
	// write-write deadlock a full client-side send buffer would cause).
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	st.flush()
	st.run()
	if st.deadlineOK {
		_ = st.rc.SetReadDeadline(time.Time{})
	}
}

func (st *batchStream) flush() {
	if st.flushOK && st.rc.Flush() != nil {
		st.flushOK = false
	}
}

// run is the window loop. Each pass reads one window, decodes it,
// estimates it, renders it, writes it, then reclaims the buffers and
// yields the processor — the cadence that keeps a 118k-line stream from
// monopolizing either memory or cores.
func (st *batchStream) run() {
	for {
		select {
		case <-st.s.drainCh:
			st.draining = true
		default:
		}
		if st.draining {
			st.trailer(http.StatusServiceUnavailable, "draining",
				"server is draining; stream truncated")
			return
		}
		st.readWindow()
		st.decodeWindow()
		if st.estimateWindow() != nil {
			return // request context dead: the client is gone
		}
		st.encodeWindow()
		if len(st.bs.out) > 0 {
			if _, err := st.dst.Write(st.bs.out); err != nil {
				return
			}
			st.flush()
		}
		if n := len(st.bs.items); n > 0 {
			st.s.reg.AddBatchWindow()
			st.s.reg.AddBatchLines(uint64(n))
			if st.errs > 0 {
				st.s.reg.AddBatchLineErrors(uint64(st.errs))
			}
		}
		st.compact()
		if st.readErr != nil {
			return // aborted mid-line; trailing torn bytes are dropped
		}
		if st.eof && len(st.bs.buf) == 0 {
			return
		}
		runtime.Gosched()
	}
}

// trailer ends the stream with one in-stream error line numbered for
// the next unanswered input line, so a client replaying a truncated
// stream knows exactly where to resume.
func (st *batchStream) trailer(status int, code, msg string) {
	bs := st.bs
	bs.out = appendBatchErrorBody(bs.out[:0], status, code, msg, st.line+1)
	bs.out = append(bs.out, '\n')
	if _, err := st.dst.Write(bs.out); err == nil {
		st.flush()
	}
}

// readWindow gathers up to BatchWindow lines (or batchWindowBytes) into
// bs.spans. Spans index into bs.buf, which only grows during a window —
// compaction happens in compact(), after the spans are dead.
func (st *batchStream) readWindow() {
	bs := st.bs
	bs.spans = bs.spans[:0]
	pos := 0
	maxLine := int(st.s.cfg.MaxBodyBytes)
	for {
		// Harvest complete lines already buffered.
		for len(bs.spans) < st.s.cfg.BatchWindow && pos < batchWindowBytes {
			i := bytes.IndexByte(bs.buf[pos:], '\n')
			if i < 0 {
				break
			}
			end := pos + i
			st.takeLine(pos, end)
			pos = end + 1
		}
		if len(bs.spans) >= st.s.cfg.BatchWindow || pos >= batchWindowBytes {
			break
		}
		if st.draining || st.eof || st.readErr != nil {
			break
		}
		// Input stalled with lines in hand: flush them rather than block.
		// A bulk sender keeps the buffer full, so its windows still reach
		// BatchWindow; a trickling client gets per-line latency instead
		// of waiting for a window it may never fill.
		if len(bs.spans) > 0 && bytes.IndexByte(bs.buf[pos:], '\n') < 0 {
			break
		}
		// A partial line past the per-line cap becomes an error span now;
		// its bytes are dropped and the rest of the line discarded as it
		// arrives, so one abusive line costs bounded memory.
		if !st.discard && len(bs.buf)-pos > maxLine {
			st.line++
			bs.spans = append(bs.spans, lineSpan{line: st.line, tooLong: true})
			st.discard = true
			bs.buf = bs.buf[:pos]
		}
		if st.discard {
			st.discardToNewline(pos)
			continue
		}
		st.fill()
	}
	// A final line without a trailing newline is valid NDJSON at clean
	// EOF. On a read error the tail is torn mid-line — never answer it.
	if st.eof && !st.discard && pos < len(bs.buf) &&
		len(bs.spans) < st.s.cfg.BatchWindow {
		st.takeLine(pos, len(bs.buf))
		pos = len(bs.buf)
	}
	st.consumed = pos
}

// takeLine records buf[off:end) as the next input line: blank lines are
// numbered but produce nothing; over-long lines produce an error span.
func (st *batchStream) takeLine(off, end int) {
	st.line++
	bs := st.bs
	if end > off && bs.buf[end-1] == '\r' {
		end--
	}
	if end-off > int(st.s.cfg.MaxBodyBytes) {
		bs.spans = append(bs.spans, lineSpan{line: st.line, tooLong: true})
		return
	}
	blank := true
	for _, c := range bs.buf[off:end] {
		if c != ' ' && c != '\t' {
			blank = false
			break
		}
	}
	if blank {
		return
	}
	bs.spans = append(bs.spans, lineSpan{off: off, end: end, line: st.line})
}

// discardToNewline reads and drops bytes of an over-long line. Bytes
// after its terminating newline are kept (moved down to pos); earlier
// spans all live below pos and are untouched by the move.
func (st *batchStream) discardToNewline(pos int) {
	st.fill()
	bs := st.bs
	tail := bs.buf[pos:]
	if i := bytes.IndexByte(tail, '\n'); i >= 0 {
		n := copy(tail, tail[i+1:])
		bs.buf = bs.buf[:pos+n]
		st.discard = false
	} else {
		bs.buf = bs.buf[:pos]
	}
}

// fill appends one read's worth of body bytes to bs.buf. When the
// transport supports read deadlines, reads wake every drainPoll to
// re-check the drain signal — the mechanism that lets shutdown reach a
// stream blocked on a silent client.
func (st *batchStream) fill() {
	bs := st.bs
	if len(bs.buf) == cap(bs.buf) {
		bs.buf = append(bs.buf, 0)[:len(bs.buf)]
	}
	for {
		select {
		case <-st.s.drainCh:
			st.draining = true
			return
		default:
		}
		if st.deadlineOK && st.rc.SetReadDeadline(time.Now().Add(drainPoll)) != nil {
			st.deadlineOK = false
		}
		n, err := st.body.Read(bs.buf[len(bs.buf):cap(bs.buf)])
		bs.buf = bs.buf[:len(bs.buf)+n]
		switch {
		case err == nil:
			if n > 0 {
				return
			}
		case errors.Is(err, io.EOF):
			st.eof = true
			return
		case st.deadlineOK && errors.Is(err, os.ErrDeadlineExceeded):
			if n > 0 {
				return // the poll tick also delivered bytes
			}
		default:
			st.readErr = err
			return
		}
	}
}

// compact reclaims the consumed window prefix. This is the moment every
// span — and every string view into the window — dies.
func (st *batchStream) compact() {
	bs := st.bs
	n := copy(bs.buf, bs.buf[st.consumed:])
	bs.buf = bs.buf[:n]
	st.consumed = 0
}

// decodeWindow turns spans into items. One plain Reset reclaims the
// decoder's unescape scratch for the window; each line then re-points
// the decoder with ResetKeep so earlier lines' views stay valid.
func (st *batchStream) decodeWindow() {
	bs := st.bs
	bs.items = bs.items[:0]
	bs.inputs = bs.inputs[:0]
	bs.ings = bs.ings[:0]
	bs.dec.Reset(nil)
	for i := range bs.spans {
		sp := &bs.spans[i]
		if sp.tooLong {
			st.errItem(sp.line, http.StatusRequestEntityTooLarge, "line_too_large",
				fmt.Sprintf("input line exceeds %d bytes", st.s.cfg.MaxBodyBytes))
			continue
		}
		st.decodeLine(sp)
	}
}

func (st *batchStream) errItem(line, status int, code, msg string) {
	st.bs.items = append(st.bs.items, batchItem{
		kind: itemError, line: line, status: status, code: code, msg: msg,
	})
}

func (st *batchStream) badJSON(line int, err error) {
	st.errItem(line, http.StatusBadRequest, "bad_json",
		"input line is not valid JSON for this route: "+err.Error())
}

// decodeLine parses one NDJSON line. The shape is dispatched by key —
// "phrase" selects the estimate form, any of "ingredients"/"servings"/
// "method" the recipe form — with exactly the validation vocabulary of
// the corresponding interactive route, so a batch line and a single
// request produce byte-identical success bodies (the golden
// differential test's invariant).
func (st *batchStream) decodeLine(sp *lineSpan) {
	bs := st.bs
	d := &bs.dec
	d.ResetKeep(bs.buf[sp.off:sp.end])
	isNull, err := d.ObjectStart()
	if err != nil {
		st.badJSON(sp.line, err)
		return
	}
	if isNull {
		st.errItem(sp.line, http.StatusBadRequest, "bad_request",
			`line must be an object with "phrase" or "ingredients"`)
		return
	}
	var (
		hasPhrase bool
		hasRecipe bool
		hasIngs   bool
		phrase    []byte
		method    []byte
		servings  int64
		ingsStart = len(bs.ings)
	)
	for first := true; ; first = false {
		key, ok, err := d.Member(first)
		if err != nil {
			st.badJSON(sp.line, err)
			return
		}
		if !ok {
			break
		}
		switch string(key) {
		case "phrase":
			hasPhrase = true
			val, isNull, err := d.String()
			if err != nil {
				st.badJSON(sp.line, err)
				return
			}
			if !isNull {
				phrase = val
			}
		case "ingredients":
			hasRecipe, hasIngs = true, true
			bs.ings = bs.ings[:ingsStart] // duplicate key: last wins
			isNull, err := d.ArrayStart()
			if err != nil {
				st.badJSON(sp.line, err)
				return
			}
			if isNull {
				continue
			}
			for efirst := true; ; efirst = false {
				more, err := d.ArrayNext(efirst)
				if err != nil {
					st.badJSON(sp.line, err)
					return
				}
				if !more {
					break
				}
				val, _, err := d.String()
				if err != nil {
					st.badJSON(sp.line, err)
					return
				}
				bs.ings = append(bs.ings, byteView(val))
			}
		case "servings":
			hasRecipe = true
			v, _, err := d.Int()
			if err != nil {
				st.badJSON(sp.line, err)
				return
			}
			servings = v
		case "method":
			hasRecipe = true
			val, isNull, err := d.String()
			if err != nil {
				st.badJSON(sp.line, err)
				return
			}
			if !isNull {
				method = val
			}
		default:
			st.badJSON(sp.line, fmt.Errorf("unknown field %q", key))
			return
		}
	}
	switch {
	case hasPhrase && hasRecipe:
		st.errItem(sp.line, http.StatusBadRequest, "bad_request",
			`line mixes "phrase" with recipe fields`)
		return
	case hasPhrase:
		p := strings.TrimSpace(byteView(phrase))
		if p == "" {
			st.errItem(sp.line, http.StatusBadRequest, "empty_phrase",
				`"phrase" must be a non-empty ingredient phrase`)
			return
		}
		bs.ings = append(bs.ings, p)
		bs.items = append(bs.items, batchItem{
			kind: itemEstimate, line: sp.line, idx: len(bs.inputs),
		})
		bs.inputs = append(bs.inputs, core.RecipeInput{
			Phrases:  bs.ings[len(bs.ings)-1 : len(bs.ings) : len(bs.ings)],
			Servings: 1,
		})
		return
	case !hasRecipe:
		st.errItem(sp.line, http.StatusBadRequest, "bad_request",
			`line must be an object with "phrase" or "ingredients"`)
		return
	}
	// Recipe form: the recipeHot validation vocabulary, per line.
	if !hasIngs || len(bs.ings) == ingsStart {
		st.errItem(sp.line, http.StatusBadRequest, "no_ingredients",
			`"ingredients" must list at least one phrase`)
		return
	}
	if servings == 0 {
		servings = 1
	}
	if servings < 0 {
		st.errItem(sp.line, http.StatusBadRequest, "bad_servings",
			fmt.Sprintf("servings must be positive, got %d", servings))
		return
	}
	m := yield.None
	if name := strings.ToLower(strings.TrimSpace(byteView(method))); name != "" {
		m = yield.ParseMethod(name)
		if m == yield.None && name != yield.None.String() {
			st.errItem(sp.line, http.StatusBadRequest, "bad_method",
				fmt.Sprintf("unknown cooking method %q", byteView(method)))
			return
		}
	}
	bs.items = append(bs.items, batchItem{
		kind: itemRecipe, line: sp.line, idx: len(bs.inputs),
	})
	bs.inputs = append(bs.inputs, core.RecipeInput{
		Phrases:  bs.ings[ingsStart:len(bs.ings):len(bs.ings)],
		Servings: int(servings),
		Method:   m,
	})
}

// estimateWindow runs the window's decoded inputs through the sharded
// batch estimator into the stream-owned outcome/result arenas.
func (st *batchStream) estimateWindow() error {
	bs := st.bs
	if len(bs.inputs) == 0 {
		return nil
	}
	total := 0
	for i := range bs.inputs {
		total += len(bs.inputs[i].Phrases)
	}
	if cap(bs.outcomes) < len(bs.inputs) {
		bs.outcomes = make([]core.RecipeOutcome, len(bs.inputs))
	}
	bs.outcomes = bs.outcomes[:len(bs.inputs)]
	if cap(bs.arena) < total {
		bs.arena = make([]core.IngredientResult, total)
	}
	bs.arena = bs.arena[:total]
	return st.s.est.EstimateRecipesInto(st.ctx, bs.inputs, st.s.cfg.BatchWorkers, bs.outcomes, bs.arena)
}

// encodeWindow renders the window's items into bs.out, one NDJSON line
// per item, in input order.
func (st *batchStream) encodeWindow() {
	bs := st.bs
	bs.out = bs.out[:0]
	st.errs = 0
	for i := range bs.items {
		it := &bs.items[i]
		switch it.kind {
		case itemEstimate:
			resp := toEstimateResponse(bs.outcomes[it.idx].Result.Ingredients[0])
			bs.out = appendEstimateResponse(bs.out, &resp)
			bs.out = append(bs.out, '\n')
		case itemRecipe:
			o := &bs.outcomes[it.idx]
			if o.Err != nil {
				// Unreachable after decode-time validation, but the core
				// contract allows it; keep the stream alive regardless.
				st.errs++
				bs.out = appendBatchErrorBody(bs.out, http.StatusBadRequest, "bad_recipe", o.Err.Error(), it.line)
				bs.out = append(bs.out, '\n')
				continue
			}
			head := RecipeResponse{
				Servings:       o.Result.Servings,
				Method:         bs.inputs[it.idx].Method.String(),
				MappedFraction: o.Result.MappedFraction,
				Total:          o.Result.Total,
				PerServing:     o.Result.PerServing,
			}
			bs.out = appendRecipeResponseHeader(bs.out, &head)
			for j := range o.Result.Ingredients {
				if j > 0 {
					bs.out = append(bs.out, ',')
				}
				resp := toEstimateResponse(o.Result.Ingredients[j])
				bs.out = appendEstimateResponse(bs.out, &resp)
			}
			bs.out = appendRecipeResponseFooter(bs.out) // includes the line's \n
		default:
			st.errs++
			bs.out = appendBatchErrorBody(bs.out, it.status, it.code, it.msg, it.line)
			bs.out = append(bs.out, '\n')
		}
	}
}
