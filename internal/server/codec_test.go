package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
)

// reencode round-trips a response body through encoding/json: decode
// into the wire struct (rejecting unknown fields so a stray key the
// struct would not have produced fails loudly), then re-encode with
// json.Encoder exactly the way the pre-codec server did. If the pooled
// codec's output is byte-identical to this, it is byte-identical to
// what encoding/json emitted for the same value — omitempty decisions,
// field order, float format, HTML escaping, trailing newline and all.
func reencode[T any](t *testing.T, body []byte) []byte {
	t.Helper()
	var v T
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		t.Fatalf("response is not a valid %T: %v (body %q)", v, err, body)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func assertCodecEqual[T any](t *testing.T, context string, body []byte) {
	t.Helper()
	if want := reencode[T](t, body); !bytes.Equal(body, want) {
		t.Errorf("%s: pooled codec output diverges from encoding/json\n got: %q\nwant: %q", context, body, want)
	}
}

// corpusRecipes loads the golden corpus' request side.
func corpusRecipes(t *testing.T) []RecipeRequest {
	t.Helper()
	raw, err := os.ReadFile("testdata/corpus.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Recipes []struct {
			Name        string   `json:"name"`
			Servings    int      `json:"servings"`
			Method      string   `json:"method"`
			Ingredients []string `json:"ingredients"`
		} `json:"recipes"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	out := make([]RecipeRequest, len(doc.Recipes))
	for i, r := range doc.Recipes {
		out[i] = RecipeRequest{Ingredients: r.Ingredients, Servings: r.Servings, Method: r.Method}
	}
	return out
}

// TestCodecGoldenEquality runs the whole golden corpus through
// /v1/recipe and every distinct ingredient phrase through /v1/estimate,
// asserting each 200 body is byte-for-byte what encoding/json would
// have produced.
func TestCodecGoldenEquality(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	seen := map[string]bool{}
	for i, rec := range corpusRecipes(t) {
		body, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		w := postJSON(t, h, "/v1/recipe", string(body))
		if w.Code != http.StatusOK {
			t.Fatalf("recipe %d: status %d body %q", i, w.Code, w.Body.String())
		}
		assertCodecEqual[RecipeResponse](t, fmt.Sprintf("recipe %d", i), w.Body.Bytes())

		for _, phrase := range rec.Ingredients {
			if seen[phrase] {
				continue
			}
			seen[phrase] = true
			req, _ := json.Marshal(EstimateRequest{Phrase: phrase})
			w := postJSON(t, h, "/v1/estimate", string(req))
			if w.Code != http.StatusOK {
				t.Fatalf("estimate %q: status %d body %q", phrase, w.Code, w.Body.String())
			}
			assertCodecEqual[EstimateResponse](t, fmt.Sprintf("estimate %q", phrase), w.Body.Bytes())
		}
	}

	// The probe routes ride the same codec.
	w := getPath(t, h, "/v1/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
	assertCodecEqual[HealthzResponse](t, "healthz", w.Body.Bytes())
}

// TestCodecErrorEnvelopeEquality triggers every structured-error path
// the API can produce through the real handler stack and asserts each
// envelope is byte-for-byte what encoding/json emitted before the
// pooled codec.
func TestCodecErrorEnvelopeEquality(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxBodyBytes = 256
		c.MaxInFlight = 1
	})
	h := s.Handler()

	check := func(name string, w interface {
		Result() *http.Response
	}, body []byte, wantStatus int, wantCode string) {
		t.Helper()
		res := w.Result()
		if res.StatusCode != wantStatus {
			t.Fatalf("%s: status %d, want %d (body %q)", name, res.StatusCode, wantStatus, body)
		}
		var eb ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != wantCode {
			t.Fatalf("%s: body %q, want code %q (err %v)", name, body, wantCode, err)
		}
		assertCodecEqual[ErrorBody](t, name, body)
	}

	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"bad_json_syntax", "/v1/estimate", `{`, 400, "bad_json"},
		{"bad_json_type", "/v1/estimate", `{"phrase":7}`, 400, "bad_json"},
		{"bad_json_unknown_field", "/v1/estimate", `{"phrase":"x","nope":1}`, 400, "bad_json"},
		{"bad_json_empty_body", "/v1/estimate", ``, 400, "bad_json"},
		{"bad_json_escape", "/v1/estimate", `{"phrase":"\q"}`, 400, "bad_json"},
		{"empty_phrase", "/v1/estimate", `{"phrase":"   "}`, 400, "empty_phrase"},
		{"empty_phrase_null_body", "/v1/estimate", `null`, 400, "empty_phrase"},
		{"no_ingredients", "/v1/recipe", `{"ingredients":[]}`, 400, "no_ingredients"},
		{"no_ingredients_missing", "/v1/recipe", `{}`, 400, "no_ingredients"},
		{"bad_servings", "/v1/recipe", `{"ingredients":["1 cup milk"],"servings":-2}`, 400, "bad_servings"},
		{"bad_servings_float", "/v1/recipe", `{"ingredients":["1 cup milk"],"servings":2.5}`, 400, "bad_json"},
		{"bad_method", "/v1/recipe", `{"ingredients":["1 cup milk"],"method":"microwaved"}`, 400, "bad_method"},
		{"body_too_large", "/v1/estimate", `{"phrase":"` + strings.Repeat("a", 1024) + `"}`, 413, "body_too_large"},
	}
	for _, tc := range cases {
		w := postJSON(t, h, tc.path, tc.body)
		check(tc.name, w, w.Body.Bytes(), tc.status, tc.code)
	}

	// overloaded: hold the only admission slot open with a hung request.
	release := make(chan struct{})
	admitted := make(chan struct{}, 1)
	s.testHookAdmitted = func(string) {
		admitted <- struct{}{}
		<-release
	}
	go postJSON(t, h, "/v1/estimate", `{"phrase":"1 cup milk"}`)
	<-admitted
	s.testHookAdmitted = nil
	w := postJSON(t, h, "/v1/estimate", `{"phrase":"1 cup milk"}`)
	close(release)
	check("overloaded", w, w.Body.Bytes(), http.StatusTooManyRequests, "overloaded")

	// timeout: a deadline that has always already expired.
	st := newTestServer(t, func(c *Config) { c.RequestTimeout = 1 })
	w = postJSON(t, st.Handler(), "/v1/estimate", `{"phrase":"1 cup milk"}`)
	check("timeout", w, w.Body.Bytes(), http.StatusGatewayTimeout, "timeout")
}

// TestAppendErrorBodyEquality pins the envelope encoder directly
// against encoding/json across escaping-heavy messages the handler
// paths can produce (quoted user input, angle brackets, unicode).
func TestAppendErrorBodyEquality(t *testing.T) {
	cases := []ErrorDetail{
		{Code: "bad_json", Status: 400, Message: `request body is not valid JSON for this route: invalid character '<' looking for beginning of value`},
		{Code: "bad_method", Status: 400, Message: `unknown cooking method "micro\"waved & <grilled>"`},
		{Code: "empty_phrase", Status: 400, Message: `"phrase" must be a non-empty ingredient phrase`},
		{Code: "overloaded", Status: 429, Message: "server at capacity (64 requests in flight); retry later"},
		{Code: "bad_recipe", Status: 400, Message: "crème brûlée\nline two"},
	}
	for _, d := range cases {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(ErrorBody{Error: d}); err != nil {
			t.Fatal(err)
		}
		got := appendErrorBody(nil, d.Status, d.Code, d.Message)
		if !bytes.Equal(got, buf.Bytes()) {
			t.Errorf("appendErrorBody(%+v):\n got %q\nwant %q", d, got, buf.Bytes())
		}
	}
}
