package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nutriprofile/internal/core"
	"nutriprofile/internal/usda"
)

// newTestServer builds a Server over the seed DB with caching enabled
// and any overrides applied to the default test config.
func newTestServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	est, err := core.New(usda.Seed(), nil, core.Options{CacheSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Estimator: est}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// decodeErrorBody asserts a response is a well-formed structured error.
func decodeErrorBody(t *testing.T, w *httptest.ResponseRecorder) ErrorBody {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("non-200 body is not an ErrorBody: %v (body %q)", err, w.Body.String())
	}
	if eb.Error.Code == "" || eb.Error.Message == "" || eb.Error.Status != w.Code {
		t.Fatalf("malformed error body %+v for status %d", eb, w.Code)
	}
	return eb
}

func TestEstimateRoute(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	w := postJSON(t, h, "/v1/estimate", `{"phrase":"2 cups all-purpose flour"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var resp EstimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Matched || !resp.Mapped {
		t.Fatalf("expected flour to map fully: %+v", resp)
	}
	if resp.Grams <= 0 || resp.Profile.EnergyKcal <= 0 {
		t.Fatalf("expected positive grams and energy: %+v", resp)
	}
	// The response must agree with a direct pipeline call.
	direct := s.est.EstimateIngredient("2 cups all-purpose flour")
	if resp.Grams != direct.Grams || resp.Profile != direct.Profile || resp.NDB != direct.Match.NDB {
		t.Fatalf("HTTP result diverges from direct pipeline: %+v vs %+v", resp, direct)
	}
}

func TestEstimateErrors(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"invalid json", `{`, http.StatusBadRequest, "bad_json"},
		{"wrong type", `{"phrase": 7}`, http.StatusBadRequest, "bad_json"},
		{"unknown field", `{"phrase":"salt","extra":1}`, http.StatusBadRequest, "bad_json"},
		{"empty phrase", `{"phrase":"  "}`, http.StatusBadRequest, "empty_phrase"},
		{"empty body", ``, http.StatusBadRequest, "bad_json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, h, "/v1/estimate", tc.body)
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d (body %s)", w.Code, tc.status, w.Body.String())
			}
			if eb := decodeErrorBody(t, w); eb.Error.Code != tc.code {
				t.Fatalf("code %q, want %q", eb.Error.Code, tc.code)
			}
		})
	}
}

func TestRecipeRoute(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	body := `{"ingredients":["2 cups all-purpose flour","1 cup sugar","2 eggs"],"servings":4,"method":"baked"}`
	w := postJSON(t, h, "/v1/recipe", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var resp RecipeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Servings != 4 || resp.Method != "baked" || len(resp.Ingredients) != 3 {
		t.Fatalf("unexpected shape: %+v", resp)
	}
	if resp.MappedFraction != 1 {
		t.Fatalf("expected full mapping, got %v", resp.MappedFraction)
	}
	if got := resp.PerServing.EnergyKcal * 4; got < resp.Total.EnergyKcal*0.999 || got > resp.Total.EnergyKcal*1.001 {
		t.Fatalf("per-serving does not scale to total: %v vs %v", got, resp.Total.EnergyKcal)
	}
}

func TestRecipeErrors(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	cases := []struct {
		name, body string
		code       string
	}{
		{"no ingredients", `{"ingredients":[]}`, "no_ingredients"},
		{"negative servings", `{"ingredients":["salt"],"servings":-2}`, "bad_servings"},
		{"unknown method", `{"ingredients":["salt"],"method":"sous-vide"}`, "bad_method"},
		{"bad json", `[1,2`, "bad_json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, h, "/v1/recipe", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", w.Code, w.Body.String())
			}
			if eb := decodeErrorBody(t, w); eb.Error.Code != tc.code {
				t.Fatalf("code %q, want %q", eb.Error.Code, tc.code)
			}
		})
	}
}

func TestBodyTooLarge(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 256 })
	h := s.Handler()
	big := `{"phrase":"` + strings.Repeat("a", 1024) + `"}`
	w := postJSON(t, h, "/v1/estimate", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body %s)", w.Code, w.Body.String())
	}
	if eb := decodeErrorBody(t, w); eb.Error.Code != "body_too_large" {
		t.Fatalf("code %q", eb.Error.Code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	w := getPath(t, h, "/v1/estimate")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on estimate: status %d", w.Code)
	}
}

// TestAdmissionShed holds the only admission slot open and asserts the
// next request is shed with 429 + Retry-After instead of queuing.
func TestAdmissionShed(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.RetryAfter = 3 * time.Second
	})
	admitted := make(chan struct{})
	release := make(chan struct{})
	var once bool
	s.testHookAdmitted = func(string) {
		if !once {
			once = true
			close(admitted)
			<-release
		}
	}
	h := s.Handler()

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { firstDone <- postJSON(t, h, "/v1/estimate", `{"phrase":"salt"}`) }()
	<-admitted

	// Slot is held: this request must be rejected immediately.
	w := postJSON(t, h, "/v1/estimate", `{"phrase":"sugar"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}
	if eb := decodeErrorBody(t, w); eb.Error.Code != "overloaded" {
		t.Fatalf("code %q", eb.Error.Code)
	}
	if got := s.Registry().Shed(); got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}

	close(release)
	if w := <-firstDone; w.Code != http.StatusOK {
		t.Fatalf("held request finished %d", w.Code)
	}

	// Slot free again: traffic flows.
	if w := postJSON(t, h, "/v1/estimate", `{"phrase":"salt"}`); w.Code != http.StatusOK {
		t.Fatalf("post-release status %d", w.Code)
	}
}

// TestStatsBypassAdmission saturates the semaphore and asserts probes
// still answer.
func TestStatsBypassAdmission(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInFlight = 1 })
	// Fill the semaphore directly; no request holds it, so this models
	// a fully saturated pipeline.
	s.sem <- struct{}{}
	h := s.Handler()
	if w := getPath(t, h, "/v1/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", w.Code)
	}
	if w := getPath(t, h, "/v1/stats"); w.Code != http.StatusOK {
		t.Fatalf("stats under saturation: %d", w.Code)
	}
	if w := postJSON(t, h, "/v1/estimate", `{"phrase":"salt"}`); w.Code != http.StatusTooManyRequests {
		t.Fatalf("estimate under saturation: %d, want 429", w.Code)
	}
}

func TestHealthzAndStatsShape(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	w := getPath(t, h, "/v1/healthz")
	var hz HealthzResponse
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Foods <= 0 {
		t.Fatalf("healthz %+v", hz)
	}

	// Generate some traffic, then check the stats surface reflects it.
	postJSON(t, h, "/v1/estimate", `{"phrase":"2 cups flour"}`)
	postJSON(t, h, "/v1/estimate", `{"phrase":"2 cups flour"}`)
	postJSON(t, h, "/v1/estimate", `{"phrase":"not json`)

	w = getPath(t, h, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats status %d", w.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Matcher.Docs <= 0 || st.Matcher.VocabSize <= 0 {
		t.Fatalf("matcher stats empty: %+v", st.Matcher)
	}
	if st.Memo.Phrase.Hits < 1 {
		t.Fatalf("expected a phrase-cache hit from the repeated phrase: %+v", st.Memo.Phrase)
	}
	if st.Memo.Phrase.Capacity <= 0 || st.Memo.Phrase.Shards <= 0 {
		t.Fatalf("memo snapshot missing shape: %+v", st.Memo.Phrase)
	}
	est := st.HTTP.Routes["/v1/estimate"]
	if est.Requests != 3 || est.ByClass["2xx"] != 2 || est.ByClass["4xx"] != 1 {
		t.Fatalf("estimate route metrics %+v", est)
	}
	if est.Latency.Count != 3 {
		t.Fatalf("latency count %d, want 3", est.Latency.Count)
	}
	if st.Runtime.HeapAllocBytes == 0 || st.Runtime.TotalAllocBytes == 0 || st.Runtime.Goroutines <= 0 {
		t.Fatalf("runtime gauges empty: %+v", st.Runtime)
	}
}

// TestRequestTimeout deadlines a many-ingredient recipe with a
// one-nanosecond budget; the response must be a structured 504 and the
// cancellation must propagate into core (no result computed).
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	h := s.Handler()
	phrases := make([]string, 64)
	for i := range phrases {
		phrases[i] = "2 cups flour"
	}
	body, _ := json.Marshal(RecipeRequest{Ingredients: phrases})
	w := postJSON(t, h, "/v1/recipe", string(body))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", w.Code, w.Body.String())
	}
	if eb := decodeErrorBody(t, w); eb.Error.Code != "timeout" {
		t.Fatalf("code %q", eb.Error.Code)
	}
}

// TestGracefulDrain starts a real listener, parks a request mid-flight,
// cancels the serve context, and asserts (a) the in-flight request
// completes 200 during the drain and (b) Serve returns nil (clean
// drain) without accepting new connections.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, nil)
	inflight := make(chan struct{})
	release := make(chan struct{})
	var first bool
	s.testHookAdmitted = func(string) {
		if !first {
			first = true
			close(inflight)
			<-release
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, 5*time.Second) }()

	resp := make(chan int, 1)
	go func() {
		r, err := http.Post("http://"+addr+"/v1/estimate", "application/json",
			bytes.NewReader([]byte(`{"phrase":"2 cups flour"}`)))
		if err != nil {
			resp <- -1
			return
		}
		r.Body.Close()
		resp <- r.StatusCode
	}()
	<-inflight

	cancel() // begin graceful shutdown with the request still parked
	// Give Shutdown a moment to close the listener, then release the
	// parked request; it must still complete.
	time.Sleep(50 * time.Millisecond)
	close(release)

	if code := <-resp; code != http.StatusOK {
		t.Fatalf("in-flight request during drain got %d, want 200", code)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want nil after clean drain", err)
	}
	// The listener must be closed now.
	if _, err := http.Get("http://" + addr + "/v1/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
}
