package server

import (
	"bytes"
	"context"
	"net/http"
	"testing"
)

// TestServeEstimateHotZeroAllocs enforces the PR's acceptance
// criterion: the steady-state /v1/estimate path — read body, pooled
// decode, cached estimate, pooled encode — performs zero heap
// allocations once the scratch and the phrase cache are warm. The
// net/http transport (Header().Set, WriteHeader, the connection
// buffers) is excluded by construction: estimateHot is exactly the
// per-request work between those layers.
func TestServeEstimateHotZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	s := newTestServer(t, nil)
	body := []byte(`{"phrase":"2 cups all-purpose flour"}`)
	rd := bytes.NewReader(body)
	sc := getServeScratch()
	defer putServeScratch(sc)
	ctx := context.Background()

	run := func() {
		rd.Reset(body)
		status, out := s.estimateHot(sc, ctx, rd)
		if status != http.StatusOK || len(out) == 0 {
			t.Fatalf("estimateHot: status %d, %d body bytes", status, len(out))
		}
	}
	run() // warm the scratch buffers, pipeline memos, and phrase cache
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Errorf("warm estimate hot path allocates: %v allocs/run, want 0", allocs)
	}
}
