//go:build race

package server

// The race detector instruments every memory access and allocates for
// its own bookkeeping, so testing.AllocsPerRun over-counts under -race.
// TestServeEstimateHotZeroAllocs skips itself when this flag is set;
// the zero-allocation contract is still enforced by the normal test run
// and the nightly allocs/op gate.
const raceEnabled = true
