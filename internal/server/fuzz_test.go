package server

// FuzzEstimateHandler drives arbitrary bodies through the full request
// path — decoder, admission, deadline, pipeline — and enforces the API's
// two hard invariants: the handler never panics (a panic would fail the
// fuzz run), and every non-200 response carries a structured ErrorBody
// with a stable code. Wired into the nightly fuzz job via `make fuzz`.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nutriprofile/internal/core"
	"nutriprofile/internal/usda"
)

// fuzzServer is shared across fuzz iterations: building the seed DB and
// matcher per-exec would dominate the fuzzing budget.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func sharedFuzzServer(f *testing.F) *Server {
	fuzzOnce.Do(func() {
		est, err := core.New(usda.Seed(), nil, core.Options{CacheSize: 4096})
		if err != nil {
			f.Fatal(err)
		}
		fuzzSrv, err = New(Config{Estimator: est, MaxBodyBytes: 1 << 16})
		if err != nil {
			f.Fatal(err)
		}
	})
	return fuzzSrv
}

func FuzzEstimateHandler(f *testing.F) {
	f.Add([]byte(`{"phrase":"2 cups all-purpose flour"}`))
	f.Add([]byte(`{"phrase":""}`))
	f.Add([]byte(`{"phrase":"500 cups sugar or 250 g"}`))
	f.Add([]byte(`{"phrase":"1 ½ cups milk"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"phrase": 42}`))
	f.Add([]byte(`{"phrase":"salt","unknown":true}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(strings.Repeat(`{"phrase":"a`, 500)))
	f.Add([]byte(`{"phrase":"` + strings.Repeat("flour ", 2000) + `"}`))

	s := sharedFuzzServer(f)
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req) // must not panic for any body

		switch {
		case w.Code == http.StatusOK:
			var resp EstimateResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 body is not an EstimateResponse: %v (body %q)", err, w.Body.String())
			}
			if strings.TrimSpace(resp.Phrase) == "" {
				t.Fatalf("200 for an empty phrase: request %q", body)
			}
		default:
			var eb ErrorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
				t.Fatalf("status %d body is not a structured error: %v (body %q, request %q)",
					w.Code, err, w.Body.String(), body)
			}
			if eb.Error.Code == "" || eb.Error.Message == "" {
				t.Fatalf("status %d error body missing code/message: %+v (request %q)", w.Code, eb, body)
			}
			if eb.Error.Status != w.Code {
				t.Fatalf("error body status %d disagrees with response status %d", eb.Error.Status, w.Code)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("non-200 Content-Type %q", ct)
			}
		}
	})
}

// FuzzRecipeHandler applies the same invariants to the recipe route,
// whose decoder surface (arrays, servings, method) is wider.
func FuzzRecipeHandler(f *testing.F) {
	f.Add([]byte(`{"ingredients":["2 cups flour","1 cup sugar"],"servings":4}`))
	f.Add([]byte(`{"ingredients":[]}`))
	f.Add([]byte(`{"ingredients":["salt"],"servings":-1}`))
	f.Add([]byte(`{"ingredients":["salt"],"method":"vaporized"}`))
	f.Add([]byte(`{"ingredients":["salt"],"method":"baked"}`))
	f.Add([]byte(`{"ingredients":[""],"servings":1}`))
	f.Add([]byte(`{"ingredients":"flour"}`))
	f.Add([]byte(`{"servings":2}`))

	s := sharedFuzzServer(f)
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/recipe", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)

		if w.Code == http.StatusOK {
			var resp RecipeResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 body is not a RecipeResponse: %v", err)
			}
			if resp.Servings <= 0 || len(resp.Ingredients) == 0 {
				t.Fatalf("200 with invalid shape: %+v (request %q)", resp, body)
			}
			return
		}
		var eb ErrorBody
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
			t.Fatalf("status %d body is not a structured error (body %q, request %q)", w.Code, w.Body.String(), body)
		}
		if eb.Error.Code == "" || eb.Error.Status != w.Code {
			t.Fatalf("malformed error body %+v for status %d", eb, w.Code)
		}
	})
}

// FuzzBatchHandler drives arbitrary NDJSON bodies through the streaming
// bulk route. Invariants: the handler never panics, the stream never
// loses or invents lines (every non-blank input line — and every line
// over the per-line cap — yields exactly one response line, in order),
// every response line is valid JSON, and every error line is a
// structured BatchErrorBody whose line numbers are strictly increasing.
func FuzzBatchHandler(f *testing.F) {
	f.Add([]byte(`{"phrase":"2 cups all-purpose flour"}` + "\n"))
	f.Add([]byte(`{"ingredients":["2 cups flour","1 cup sugar"],"servings":4}` + "\n"))
	f.Add([]byte("{\"phrase\":\"salt\"}\r\n\r\n{\"ingredients\":[\"salt\"]}\n"))
	f.Add([]byte(`{"phrase":"salt"}` + "\n" + `{"phrase":` + "\n" + `{"phrase":"salt"}`))
	f.Add([]byte("not json\nnull\n{}\n[]\n"))
	f.Add([]byte("\n\n \t\n"))
	f.Add([]byte(`{"phrase":"` + strings.Repeat("a", 1<<17) + `"}` + "\n" + `{"phrase":"salt"}` + "\n"))
	f.Add([]byte(strings.Repeat(`{"phrase":"salt"}`+"\n", 200)))
	f.Add([]byte(`{"phrase":"salt","ingredients":["x"]}` + "\n" + `{"bogus":1}`))
	f.Add([]byte("\x00\xff\xfe\n"))
	f.Add([]byte(`{"phrase":"1 ½ cups milk"}` + "\n"))

	s := sharedFuzzServer(f)
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/x-ndjson")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req) // must not panic for any body

		if w.Code == http.StatusTooManyRequests {
			// Parallel fuzz workers can exceed the bulk-stream cap; the
			// shed must still be a structured whole-request error.
			var eb ErrorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error.Code == "" {
				t.Fatalf("shed body is not a structured error: %v (%q)", err, w.Body.Bytes())
			}
			return
		}
		if w.Code != http.StatusOK {
			t.Fatalf("batch status %d (request %q)", w.Code, body)
		}

		// Expected answered-line count, mirroring the wire contract: one
		// response per newline-separated segment that is non-blank after
		// stripping one trailing CR, plus one per segment over the
		// per-line cap (answered 413 even when blank).
		maxLine := 1 << 16 // sharedFuzzServer's MaxBodyBytes
		want := 0
		for _, seg := range strings.Split(string(body), "\n") {
			seg = strings.TrimSuffix(seg, "\r")
			if len(seg) > maxLine {
				want++
				continue
			}
			if strings.Trim(seg, " \t") != "" {
				want++
			}
		}

		out := w.Body.Bytes()
		got := 0
		lastErrLine := 0
		for len(out) > 0 {
			i := bytes.IndexByte(out, '\n')
			if i < 0 {
				t.Fatalf("response ends mid-line: %q", out)
			}
			ln := out[:i]
			out = out[i+1:]
			got++
			if !json.Valid(ln) {
				t.Fatalf("response line %d is not valid JSON: %q (request %q)", got, ln, body)
			}
			if !bytes.HasPrefix(ln, []byte(`{"error"`)) {
				continue
			}
			var eb BatchErrorBody
			if err := json.Unmarshal(ln, &eb); err != nil {
				t.Fatalf("error line does not parse: %v (%q)", err, ln)
			}
			if eb.Error.Code == "" || eb.Error.Message == "" || eb.Error.Status == 0 {
				t.Fatalf("malformed batch error %+v (%q)", eb, ln)
			}
			if eb.Error.Line <= lastErrLine {
				t.Fatalf("error line numbers not increasing: %d after %d (request %q)",
					eb.Error.Line, lastErrLine, body)
			}
			lastErrLine = eb.Error.Line
		}
		if got != want {
			t.Fatalf("answered %d lines for %d answerable input lines (request %q, response %q)",
				got, want, body, w.Body.Bytes())
		}
	})
}
