package server

// FuzzEstimateHandler drives arbitrary bodies through the full request
// path — decoder, admission, deadline, pipeline — and enforces the API's
// two hard invariants: the handler never panics (a panic would fail the
// fuzz run), and every non-200 response carries a structured ErrorBody
// with a stable code. Wired into the nightly fuzz job via `make fuzz`.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nutriprofile/internal/core"
	"nutriprofile/internal/usda"
)

// fuzzServer is shared across fuzz iterations: building the seed DB and
// matcher per-exec would dominate the fuzzing budget.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func sharedFuzzServer(f *testing.F) *Server {
	fuzzOnce.Do(func() {
		est, err := core.New(usda.Seed(), nil, core.Options{CacheSize: 4096})
		if err != nil {
			f.Fatal(err)
		}
		fuzzSrv, err = New(Config{Estimator: est, MaxBodyBytes: 1 << 16})
		if err != nil {
			f.Fatal(err)
		}
	})
	return fuzzSrv
}

func FuzzEstimateHandler(f *testing.F) {
	f.Add([]byte(`{"phrase":"2 cups all-purpose flour"}`))
	f.Add([]byte(`{"phrase":""}`))
	f.Add([]byte(`{"phrase":"500 cups sugar or 250 g"}`))
	f.Add([]byte(`{"phrase":"1 ½ cups milk"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"phrase": 42}`))
	f.Add([]byte(`{"phrase":"salt","unknown":true}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(strings.Repeat(`{"phrase":"a`, 500)))
	f.Add([]byte(`{"phrase":"` + strings.Repeat("flour ", 2000) + `"}`))

	s := sharedFuzzServer(f)
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/estimate", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req) // must not panic for any body

		switch {
		case w.Code == http.StatusOK:
			var resp EstimateResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 body is not an EstimateResponse: %v (body %q)", err, w.Body.String())
			}
			if strings.TrimSpace(resp.Phrase) == "" {
				t.Fatalf("200 for an empty phrase: request %q", body)
			}
		default:
			var eb ErrorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
				t.Fatalf("status %d body is not a structured error: %v (body %q, request %q)",
					w.Code, err, w.Body.String(), body)
			}
			if eb.Error.Code == "" || eb.Error.Message == "" {
				t.Fatalf("status %d error body missing code/message: %+v (request %q)", w.Code, eb, body)
			}
			if eb.Error.Status != w.Code {
				t.Fatalf("error body status %d disagrees with response status %d", eb.Error.Status, w.Code)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("non-200 Content-Type %q", ct)
			}
		}
	})
}

// FuzzRecipeHandler applies the same invariants to the batch route,
// whose decoder surface (arrays, servings, method) is wider.
func FuzzRecipeHandler(f *testing.F) {
	f.Add([]byte(`{"ingredients":["2 cups flour","1 cup sugar"],"servings":4}`))
	f.Add([]byte(`{"ingredients":[]}`))
	f.Add([]byte(`{"ingredients":["salt"],"servings":-1}`))
	f.Add([]byte(`{"ingredients":["salt"],"method":"vaporized"}`))
	f.Add([]byte(`{"ingredients":["salt"],"method":"baked"}`))
	f.Add([]byte(`{"ingredients":[""],"servings":1}`))
	f.Add([]byte(`{"ingredients":"flour"}`))
	f.Add([]byte(`{"servings":2}`))

	s := sharedFuzzServer(f)
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/recipe", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)

		if w.Code == http.StatusOK {
			var resp RecipeResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 body is not a RecipeResponse: %v", err)
			}
			if resp.Servings <= 0 || len(resp.Ingredients) == 0 {
				t.Fatalf("200 with invalid shape: %+v (request %q)", resp, body)
			}
			return
		}
		var eb ErrorBody
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
			t.Fatalf("status %d body is not a structured error (body %q, request %q)", w.Code, w.Body.String(), body)
		}
		if eb.Error.Code == "" || eb.Error.Status != w.Code {
			t.Fatalf("malformed error body %+v for status %d", eb, w.Code)
		}
	})
}
