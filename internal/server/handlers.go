package server

// Route handlers and their wire types. Conventions: every response body
// is JSON; every non-200 body is an ErrorBody whose code is a stable
// machine-readable string (the fuzz harness enforces this invariant for
// arbitrary inputs).
//
// The estimation routes run on the pooled codec in codec.go: the wire
// structs below are no longer what goes through encoding/json at
// request time — they are the *specification* of the wire format, and
// codec_test.go pins the hand-written encoders byte-for-byte against
// json.Marshal of these structs. Change a tag here and the codec tests
// will tell you where the encoder must follow.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"nutriprofile/internal/core"
	"nutriprofile/internal/flight"
	"nutriprofile/internal/jsonx"
	"nutriprofile/internal/match"
	"nutriprofile/internal/memo"
	"nutriprofile/internal/metrics"
	"nutriprofile/internal/nutrition"
	"nutriprofile/internal/pipeline"
	"nutriprofile/internal/yield"
)

// ErrorBody is the structured error wrapper on every non-200 response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable error.
type ErrorDetail struct {
	Code    string `json:"code"` // stable identifier: bad_request, overloaded, timeout, ...
	Status  int    `json:"status"`
	Message string `json:"message"`
}

// BatchErrorBody is the structured per-line error on a /v1/batch stream.
// It is ErrorBody plus the 1-based input line the error answers, so a
// client correlating by position can also correlate by number after a
// resync (blank lines are counted but never answered).
type BatchErrorBody struct {
	Error BatchErrorDetail `json:"error"`
}

// BatchErrorDetail carries the machine-readable per-line error.
type BatchErrorDetail struct {
	Code    string `json:"code"`
	Status  int    `json:"status"`
	Message string `json:"message"`
	Line    int    `json:"line"`
}

// EstimateRequest is the POST /v1/estimate body.
type EstimateRequest struct {
	Phrase string `json:"phrase"`
}

// EstimateResponse is the pipeline trace for one ingredient phrase.
type EstimateResponse struct {
	Phrase      string            `json:"phrase"`
	Matched     bool              `json:"matched"`
	NDB         int               `json:"ndb,omitempty"`
	Description string            `json:"description,omitempty"`
	Score       float64           `json:"score,omitempty"`
	Quantity    float64           `json:"quantity"`
	Unit        string            `json:"unit,omitempty"`
	UnitOrigin  string            `json:"unit_origin"`
	GramsVia    string            `json:"grams_via"`
	Grams       float64           `json:"grams"`
	Mapped      bool              `json:"mapped"`
	Profile     nutrition.Profile `json:"profile"`
}

func toEstimateResponse(r core.IngredientResult) EstimateResponse {
	out := EstimateResponse{
		Phrase:     r.Phrase,
		Matched:    r.Matched,
		Quantity:   r.Quantity,
		Unit:       r.Unit,
		UnitOrigin: r.UnitOrigin.String(),
		GramsVia:   r.GramsVia.String(),
		Grams:      r.Grams,
		Mapped:     r.Mapped,
		Profile:    r.Profile,
	}
	if r.Matched {
		out.NDB = r.Match.NDB
		out.Description = r.Match.Desc
		out.Score = r.Match.Score
	}
	return out
}

// writeRendered flushes a pre-rendered JSON body. The handler owns the
// body's backing buffer, so this must be the request's final write.
func writeRendered(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	_, _ = w.Write(body)
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	sc := getServeScratch()
	status, body := s.estimateHot(sc, r.Context(), r.Body)
	writeRendered(w, status, body)
	putServeScratch(sc)
}

// estimateHot is the gated steady-state path: read → decode → estimate
// → encode, everything in scratch-owned memory. With a warm scratch and
// a phrase-cache hit it performs zero heap allocations (enforced by
// TestServeEstimateHotZeroAllocs and the serve benchmarks). The
// returned body aliases sc.out.
func (s *Server) estimateHot(sc *serveScratch, ctx context.Context, body io.Reader) (int, []byte) {
	sc.out = sc.out[:0]
	if err := sc.readBody(body); err != nil {
		return decodeErrInto(sc, err)
	}
	phraseBytes, err := sc.decodeEstimate()
	if err != nil {
		return decodeErrInto(sc, err)
	}
	phrase := strings.TrimSpace(byteView(phraseBytes))
	if phrase == "" {
		return errInto(sc, http.StatusBadRequest, "empty_phrase",
			`"phrase" must be a non-empty ingredient phrase`)
	}
	if err := ctx.Err(); err != nil {
		return timeoutInto(sc, err)
	}
	resp := toEstimateResponse(s.est.EstimateIngredientScratch(phrase, &sc.pipe))
	sc.out = appendEstimateResponse(sc.out, &resp)
	sc.out = append(sc.out, '\n')
	return http.StatusOK, sc.out
}

// RecipeRequest is the POST /v1/recipe body.
type RecipeRequest struct {
	// Ingredients are the recipe's ingredient phrases, one per line.
	Ingredients []string `json:"ingredients"`
	// Servings defaults to 1.
	Servings int `json:"servings,omitempty"`
	// Method optionally names a cooking method ("baked", "boiled", ...)
	// to apply the cooking-yield correction to the totals. Unknown
	// names are rejected.
	Method string `json:"method,omitempty"`
}

// RecipeResponse aggregates a recipe estimate.
type RecipeResponse struct {
	Servings       int                `json:"servings"`
	Method         string             `json:"method"`
	MappedFraction float64            `json:"mapped_fraction"`
	Total          nutrition.Profile  `json:"total"`
	PerServing     nutrition.Profile  `json:"per_serving"`
	Ingredients    []EstimateResponse `json:"ingredients"`
}

func (s *Server) handleRecipe(w http.ResponseWriter, r *http.Request) {
	sc := getServeScratch()
	status, body := s.recipeHot(sc, r.Context(), r.Body)
	writeRendered(w, status, body)
	putServeScratch(sc)
}

// recipeHot mirrors estimateHot for /v1/recipe. The recipe path is not
// allocation-free (core materializes per-ingredient results), but the
// codec work — decode, validation, encode — all runs in scratch memory.
func (s *Server) recipeHot(sc *serveScratch, ctx context.Context, body io.Reader) (int, []byte) {
	sc.out = sc.out[:0]
	if err := sc.readBody(body); err != nil {
		return decodeErrInto(sc, err)
	}
	req, err := sc.decodeRecipe()
	if err != nil {
		return decodeErrInto(sc, err)
	}
	if len(req.ingredients) == 0 {
		return errInto(sc, http.StatusBadRequest, "no_ingredients",
			`"ingredients" must list at least one phrase`)
	}
	if req.servings == 0 {
		req.servings = 1
	}
	if req.servings < 0 {
		return errInto(sc, http.StatusBadRequest, "bad_servings",
			fmt.Sprintf("servings must be positive, got %d", req.servings))
	}
	method := yield.None
	if name := strings.ToLower(strings.TrimSpace(req.method)); name != "" {
		method = yield.ParseMethod(name)
		if method == yield.None && name != yield.None.String() {
			return errInto(sc, http.StatusBadRequest, "bad_method",
				fmt.Sprintf("unknown cooking method %q", req.method))
		}
	}

	res, err := s.est.EstimateRecipeCookedContext(ctx, req.ingredients, req.servings, method, s.cfg.Workers)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return timeoutInto(sc, err)
		}
		return errInto(sc, http.StatusBadRequest, "bad_recipe", err.Error())
	}

	head := RecipeResponse{
		Servings:       res.Servings,
		Method:         method.String(),
		MappedFraction: res.MappedFraction,
		Total:          res.Total,
		PerServing:     res.PerServing,
	}
	sc.out = appendRecipeResponseHeader(sc.out, &head)
	for i := range res.Ingredients {
		if i > 0 {
			sc.out = append(sc.out, ',')
		}
		resp := toEstimateResponse(res.Ingredients[i])
		sc.out = appendEstimateResponse(sc.out, &resp)
	}
	sc.out = appendRecipeResponseFooter(sc.out)
	return http.StatusOK, sc.out
}

// timeoutInto maps a context error to the wire: 504 for an expired
// deadline (the request exceeded RequestTimeout), 499-style 503 when
// the client went away or the server is draining.
func timeoutInto(sc *serveScratch, err error) (int, []byte) {
	if errors.Is(err, context.DeadlineExceeded) {
		return errInto(sc, http.StatusGatewayTimeout, "timeout",
			"request exceeded the per-request deadline")
	}
	return errInto(sc, http.StatusServiceUnavailable, "canceled",
		"request canceled before completion")
}

// HealthzResponse is the GET /v1/healthz body.
type HealthzResponse struct {
	Status string `json:"status"`
	Foods  int    `json:"foods"` // composition-table size, a cheap liveness probe of the pipeline
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	buf := jsonx.GetBuffer()
	resp := HealthzResponse{Status: "ok", Foods: s.est.DB().Len()}
	buf.B = appendHealthzResponse(buf.B, &resp)
	writeRendered(w, http.StatusOK, buf.B)
	jsonx.PutBuffer(buf)
}

// StatsResponse is the GET /v1/stats body: the full observability
// surface of one serving process. Stats is off the hot path and keeps
// encoding/json — its shape churns with every new counter, and pinning
// a hand encoder to it would buy nothing.
type StatsResponse struct {
	Memo struct {
		Phrase memo.Stats `json:"phrase"`
		Match  memo.Stats `json:"match"`
	} `json:"memo"`
	Flight  flight.Stats         `json:"flight"`
	Shard   core.ShardStats      `json:"shard"`
	Scratch pipeline.PoolStats   `json:"scratch_pool"`
	Matcher match.MatcherStats   `json:"matcher"`
	DB      core.SnapshotStats   `json:"db"`
	HTTP    metrics.Snapshot     `json:"http"`
	Runtime metrics.RuntimeStats `json:"runtime"`
}

// handleMetrics serves the registry in Prometheus text format — the
// same counters as /v1/stats HTTP section, rendered for scrape stacks
// — followed by the estimator's memo-cache families (hits, misses,
// evictions, admission outcomes, and the derived hit-ratio gauge) and
// the matcher-engine families (index shape plus the pruned ranking
// engine's work-avoidance counters), snapshotted at scrape time. See
// memo_metrics.go and match_metrics.go.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.PrometheusContentType())
	if err := s.reg.WritePrometheus(w); err != nil {
		return
	}
	phrase, match := s.est.CacheStats()
	if err := writeMemoMetrics(w, phrase, match); err != nil {
		return
	}
	_ = writeMatchMetrics(w, s.est.MatcherStats())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var out StatsResponse
	out.Memo.Phrase, out.Memo.Match = s.est.CacheStats()
	out.Flight = s.est.FlightStats()
	out.Shard = s.est.ShardStats()
	out.Scratch = pipeline.Stats()
	out.Matcher = s.est.MatcherStats()
	out.DB = s.est.SnapshotStats()
	out.HTTP = s.reg.Snapshot()
	out.Runtime = s.runtime.Sample()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
