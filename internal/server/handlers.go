package server

// Route handlers and their wire types. Conventions: every response body
// is JSON; every non-200 body is an ErrorBody whose code is a stable
// machine-readable string (the fuzz harness enforces this invariant for
// arbitrary inputs).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"nutriprofile/internal/core"
	"nutriprofile/internal/match"
	"nutriprofile/internal/memo"
	"nutriprofile/internal/metrics"
	"nutriprofile/internal/nutrition"
	"nutriprofile/internal/yield"
)

// ErrorBody is the structured error wrapper on every non-200 response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable error.
type ErrorDetail struct {
	Code    string `json:"code"` // stable identifier: bad_request, overloaded, timeout, ...
	Status  int    `json:"status"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{Code: code, Status: status, Message: msg}})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// decodeJSON reads one JSON value from the (size-limited) body, mapping
// failure classes onto the structured error vocabulary.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		switch {
		case errors.As(err, &maxErr):
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
		default:
			writeError(w, http.StatusBadRequest, "bad_json", "request body is not valid JSON for this route: "+err.Error())
		}
		return false
	}
	return true
}

// EstimateRequest is the POST /v1/estimate body.
type EstimateRequest struct {
	Phrase string `json:"phrase"`
}

// EstimateResponse is the pipeline trace for one ingredient phrase.
type EstimateResponse struct {
	Phrase      string            `json:"phrase"`
	Matched     bool              `json:"matched"`
	NDB         int               `json:"ndb,omitempty"`
	Description string            `json:"description,omitempty"`
	Score       float64           `json:"score,omitempty"`
	Quantity    float64           `json:"quantity"`
	Unit        string            `json:"unit,omitempty"`
	UnitOrigin  string            `json:"unit_origin"`
	GramsVia    string            `json:"grams_via"`
	Grams       float64           `json:"grams"`
	Mapped      bool              `json:"mapped"`
	Profile     nutrition.Profile `json:"profile"`
}

func toEstimateResponse(r core.IngredientResult) EstimateResponse {
	out := EstimateResponse{
		Phrase:     r.Phrase,
		Matched:    r.Matched,
		Quantity:   r.Quantity,
		Unit:       r.Unit,
		UnitOrigin: r.UnitOrigin.String(),
		GramsVia:   r.GramsVia.String(),
		Grams:      r.Grams,
		Mapped:     r.Mapped,
		Profile:    r.Profile,
	}
	if r.Matched {
		out.NDB = r.Match.NDB
		out.Description = r.Match.Desc
		out.Score = r.Match.Score
	}
	return out
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Phrase) == "" {
		writeError(w, http.StatusBadRequest, "empty_phrase", `"phrase" must be a non-empty ingredient phrase`)
		return
	}
	if err := r.Context().Err(); err != nil {
		writeTimeout(w, err)
		return
	}
	writeJSON(w, toEstimateResponse(s.est.EstimateIngredient(req.Phrase)))
}

// RecipeRequest is the POST /v1/recipe body.
type RecipeRequest struct {
	// Ingredients are the recipe's ingredient phrases, one per line.
	Ingredients []string `json:"ingredients"`
	// Servings defaults to 1.
	Servings int `json:"servings,omitempty"`
	// Method optionally names a cooking method ("baked", "boiled", ...)
	// to apply the cooking-yield correction to the totals. Unknown
	// names are rejected.
	Method string `json:"method,omitempty"`
}

// RecipeResponse aggregates a recipe estimate.
type RecipeResponse struct {
	Servings       int                `json:"servings"`
	Method         string             `json:"method"`
	MappedFraction float64            `json:"mapped_fraction"`
	Total          nutrition.Profile  `json:"total"`
	PerServing     nutrition.Profile  `json:"per_serving"`
	Ingredients    []EstimateResponse `json:"ingredients"`
}

func (s *Server) handleRecipe(w http.ResponseWriter, r *http.Request) {
	var req RecipeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Ingredients) == 0 {
		writeError(w, http.StatusBadRequest, "no_ingredients", `"ingredients" must list at least one phrase`)
		return
	}
	if req.Servings == 0 {
		req.Servings = 1
	}
	if req.Servings < 0 {
		writeError(w, http.StatusBadRequest, "bad_servings", fmt.Sprintf("servings must be positive, got %d", req.Servings))
		return
	}
	method := yield.None
	if name := strings.ToLower(strings.TrimSpace(req.Method)); name != "" {
		method = yield.ParseMethod(name)
		if method == yield.None && name != yield.None.String() {
			writeError(w, http.StatusBadRequest, "bad_method", fmt.Sprintf("unknown cooking method %q", req.Method))
			return
		}
	}

	res, err := s.est.EstimateRecipeCookedContext(r.Context(), req.Ingredients, req.Servings, method, s.cfg.Workers)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeTimeout(w, err)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_recipe", err.Error())
		return
	}

	out := RecipeResponse{
		Servings:       res.Servings,
		Method:         method.String(),
		MappedFraction: res.MappedFraction,
		Total:          res.Total,
		PerServing:     res.PerServing,
		Ingredients:    make([]EstimateResponse, len(res.Ingredients)),
	}
	for i, ing := range res.Ingredients {
		out.Ingredients[i] = toEstimateResponse(ing)
	}
	writeJSON(w, out)
}

// writeTimeout maps a context error to the wire: 504 for an expired
// deadline (the request exceeded RequestTimeout), 499-style 503 when
// the client went away or the server is draining.
func writeTimeout(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "timeout", "request exceeded the per-request deadline")
		return
	}
	writeError(w, http.StatusServiceUnavailable, "canceled", "request canceled before completion")
}

// HealthzResponse is the GET /v1/healthz body.
type HealthzResponse struct {
	Status string `json:"status"`
	Foods  int    `json:"foods"` // composition-table size, a cheap liveness probe of the pipeline
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, HealthzResponse{Status: "ok", Foods: s.est.DB().Len()})
}

// StatsResponse is the GET /v1/stats body: the full observability
// surface of one serving process.
type StatsResponse struct {
	Memo struct {
		Phrase memo.Stats `json:"phrase"`
		Match  memo.Stats `json:"match"`
	} `json:"memo"`
	Matcher match.MatcherStats   `json:"matcher"`
	HTTP    metrics.Snapshot     `json:"http"`
	Runtime metrics.RuntimeStats `json:"runtime"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var out StatsResponse
	out.Memo.Phrase, out.Memo.Match = s.est.CacheStats()
	out.Matcher = s.est.MatcherStats()
	out.HTTP = s.reg.Snapshot()
	out.Runtime = metrics.ReadRuntime()
	writeJSON(w, out)
}
