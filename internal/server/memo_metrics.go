package server

// Memo-cache families for GET /metrics. The registry's exposition
// (internal/metrics) renders only HTTP-layer counters and knows
// nothing about the estimator; the cache counters come from
// memo.Stats snapshots taken at scrape time, so they are appended
// here in the same text format (0.0.4) rather than registered. One
// snapshot per cache per scrape keeps each family internally
// consistent exactly as far as memo.Stats itself is.
//
// nutriserve_memo_hit_ratio is a derived gauge — hits/(hits+misses)
// computed at scrape from the same snapshot the counter families
// render, so dashboards get the ratio without a PromQL rate quotient
// and loadgen can gate on it directly.

import (
	"io"
	"strconv"

	"nutriprofile/internal/memo"
)

// memoFamilies drives the exposition: one row per family, each
// reading its value out of a memo.Stats snapshot. Counters first,
// then gauges, names sorted within each group for deterministic
// output.
var memoFamilies = []struct {
	name, help, typ string
	value           func(st memo.Stats) float64
}{
	{"nutriserve_memo_admissions_total", "Window-overflow candidates admitted to the cache's main segment (TinyLFU).", "counter",
		func(st memo.Stats) float64 { return float64(st.Admissions) }},
	{"nutriserve_memo_evictions_total", "Entries evicted from the memo cache.", "counter",
		func(st memo.Stats) float64 { return float64(st.Evictions) }},
	{"nutriserve_memo_hits_total", "Memo cache lookup hits.", "counter",
		func(st memo.Stats) float64 { return float64(st.Hits) }},
	{"nutriserve_memo_misses_total", "Memo cache lookup misses.", "counter",
		func(st memo.Stats) float64 { return float64(st.Misses) }},
	{"nutriserve_memo_rejections_total", "Window-overflow candidates rejected by TinyLFU admission.", "counter",
		func(st memo.Stats) float64 { return float64(st.Rejections) }},
	{"nutriserve_memo_sketch_resets_total", "Frequency-sketch aging resets (counters halved, doorkeeper cleared).", "counter",
		func(st memo.Stats) float64 { return float64(st.SketchResets) }},
	{"nutriserve_memo_touches_total", "Out-of-band frequency touches from caller-side cache tiers (slot L1 hits).", "counter",
		func(st memo.Stats) float64 { return float64(st.Touches) }},
	{"nutriserve_memo_entries", "Entries currently resident in the memo cache.", "gauge",
		func(st memo.Stats) float64 { return float64(st.Entries) }},
	{"nutriserve_memo_hit_ratio", "Lifetime hit ratio, hits/(hits+misses), computed at scrape.", "gauge",
		func(st memo.Stats) float64 { return st.HitRate() }},
}

// writeMemoMetrics renders the memo families for both caches. The
// cache label distinguishes the phrase-level and match-level caches.
func writeMemoMetrics(w io.Writer, phrase, match memo.Stats) error {
	buf := make([]byte, 0, 2048)
	for _, fam := range memoFamilies {
		buf = append(buf, "# HELP "...)
		buf = append(buf, fam.name...)
		buf = append(buf, ' ')
		buf = append(buf, fam.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, fam.name...)
		buf = append(buf, ' ')
		buf = append(buf, fam.typ...)
		buf = append(buf, '\n')
		for _, c := range []struct {
			label string
			st    memo.Stats
		}{{"phrase", phrase}, {"match", match}} {
			buf = append(buf, fam.name...)
			buf = append(buf, `{cache="`...)
			buf = append(buf, c.label...)
			buf = append(buf, `"} `...)
			buf = strconv.AppendFloat(buf, fam.value(c.st), 'g', -1, 64)
			buf = append(buf, '\n')
		}
	}
	_, err := w.Write(buf)
	return err
}
