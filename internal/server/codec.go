package server

// The pooled request/response codec behind the estimation hot paths.
// Encoding is hand-written append-style (internal/jsonx primitives),
// byte-identical to what encoding/json produced for the same wire
// structs — the structs in handlers.go remain the executable spec, and
// codec_test.go pins every encoder against json.Marshal over the golden
// corpus and every error envelope. Decoding drives the jsonx pull
// decoder with the same accept/reject semantics as the json.Decoder +
// DisallowUnknownFields stack it replaces.
//
// Ownership: a serveScratch belongs to one request from checkout to
// Put. Request bytes live in sc.body (and the decoder's unescape
// scratch), phrase strings handed to core are unsafe views of those
// bytes — core never retains them (see core.EstimateIngredientScratch) —
// and the response is rendered into sc.out before anything is written
// to the ResponseWriter. Nothing of the request survives putServeScratch.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"unsafe"

	"nutriprofile/internal/jsonx"
	"nutriprofile/internal/pipeline"
)

// serveScratch is the per-request arena: body buffer, pull decoder,
// response buffer, the reusable ingredient-slice for recipe requests,
// and a full pipeline scratch so /v1/estimate runs the estimator
// without touching the pipeline pool.
type serveScratch struct {
	body        []byte
	out         []byte
	dec         jsonx.Decoder
	ingredients []string
	pipe        pipeline.Scratch
}

// maxPooledScratch caps the byte capacity a scratch may carry back into
// the pool, mirroring jsonx's buffer-pool policy.
const maxPooledScratch = 1 << 21

var scratchPool = sync.Pool{New: func() any {
	return &serveScratch{
		body: make([]byte, 0, 4096),
		out:  make([]byte, 0, 4096),
	}
}}

func getServeScratch() *serveScratch {
	return scratchPool.Get().(*serveScratch)
}

func putServeScratch(sc *serveScratch) {
	// Drop references to request bytes: the string views alias buffers
	// the next request will overwrite, and holding them would also pin
	// dead body arrays.
	clear(sc.ingredients)
	sc.ingredients = sc.ingredients[:0]
	sc.body = sc.body[:0]
	sc.out = sc.out[:0]
	sc.dec.Reset(nil)
	if cap(sc.body)+cap(sc.out) > maxPooledScratch {
		return
	}
	scratchPool.Put(sc)
}

// byteView returns a string view of b without copying. The view aliases
// b and is only valid while b's backing array is untouched — every use
// here is bounded by the owning request.
func byteView(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// readBody slurps r into sc.body. With a warm scratch whose capacity
// has grown to the workload's body size, reading allocates nothing.
func (sc *serveScratch) readBody(r io.Reader) error {
	sc.body = sc.body[:0]
	for {
		if len(sc.body) == cap(sc.body) {
			sc.body = append(sc.body, 0)[:len(sc.body)]
		}
		n, err := r.Read(sc.body[len(sc.body):cap(sc.body)])
		sc.body = sc.body[:len(sc.body)+n]
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// --- request decoding ---------------------------------------------------

// decodeEstimate parses an EstimateRequest from sc.body, returning the
// phrase as a view into decoder-owned bytes.
func (sc *serveScratch) decodeEstimate() (phrase []byte, err error) {
	d := &sc.dec
	d.Reset(sc.body)
	isNull, err := d.ObjectStart()
	if err != nil || isNull {
		return nil, err
	}
	for first := true; ; first = false {
		key, ok, err := d.Member(first)
		if err != nil {
			return nil, err
		}
		if !ok {
			return phrase, nil
		}
		if string(key) != "phrase" {
			return nil, fmt.Errorf("unknown field %q", key)
		}
		val, isNull, err := d.String()
		if err != nil {
			return nil, err
		}
		if !isNull {
			phrase = val
		}
	}
}

// recipeRequestView is RecipeRequest decoded into scratch-owned memory:
// the ingredient strings are views into sc.body / the decoder scratch.
type recipeRequestView struct {
	ingredients []string
	servings    int
	method      string
}

// decodeRecipe parses a RecipeRequest from sc.body into sc.ingredients.
func (sc *serveScratch) decodeRecipe() (req recipeRequestView, err error) {
	d := &sc.dec
	d.Reset(sc.body)
	isNull, err := d.ObjectStart()
	if err != nil || isNull {
		return req, err
	}
	for first := true; ; first = false {
		key, ok, err := d.Member(first)
		if err != nil {
			return req, err
		}
		if !ok {
			req.ingredients = sc.ingredients
			return req, nil
		}
		switch string(key) {
		case "ingredients":
			sc.ingredients = sc.ingredients[:0]
			isNull, err := d.ArrayStart()
			if err != nil {
				return req, err
			}
			if isNull {
				continue
			}
			for efirst := true; ; efirst = false {
				more, err := d.ArrayNext(efirst)
				if err != nil {
					return req, err
				}
				if !more {
					break
				}
				val, _, err := d.String()
				if err != nil {
					return req, err
				}
				sc.ingredients = append(sc.ingredients, byteView(val))
			}
		case "servings":
			v, _, err := d.Int()
			if err != nil {
				return req, err
			}
			req.servings = int(v)
		case "method":
			val, isNull, err := d.String()
			if err != nil {
				return req, err
			}
			if !isNull {
				req.method = byteView(val)
			}
		default:
			return req, fmt.Errorf("unknown field %q", key)
		}
	}
}

// --- response encoding --------------------------------------------------

// Every append*Body helper renders the exact bytes json.NewEncoder(w).
// Encode(v) wrote for the corresponding wire struct, trailing newline
// included. Field order and omitempty conditions must track the struct
// tags in handlers.go; codec_test.go enforces the equivalence.

func appendErrorBody(b []byte, status int, code, msg string) []byte {
	b = append(b, `{"error":{"code":`...)
	b = jsonx.AppendString(b, code)
	b = append(b, `,"status":`...)
	b = jsonx.AppendInt(b, int64(status))
	b = append(b, `,"message":`...)
	b = jsonx.AppendString(b, msg)
	b = append(b, '}', '}', '\n')
	return b
}

// appendBatchErrorBody renders a per-line batch error envelope (no
// trailing newline — the batch encoder owns line separation).
func appendBatchErrorBody(b []byte, status int, code, msg string, line int) []byte {
	b = append(b, `{"error":{"code":`...)
	b = jsonx.AppendString(b, code)
	b = append(b, `,"status":`...)
	b = jsonx.AppendInt(b, int64(status))
	b = append(b, `,"message":`...)
	b = jsonx.AppendString(b, msg)
	b = append(b, `,"line":`...)
	b = jsonx.AppendInt(b, int64(line))
	return append(b, '}', '}')
}

func appendEstimateResponse(b []byte, e *EstimateResponse) []byte {
	b = append(b, `{"phrase":`...)
	b = jsonx.AppendString(b, e.Phrase)
	b = append(b, `,"matched":`...)
	b = jsonx.AppendBool(b, e.Matched)
	if e.NDB != 0 {
		b = append(b, `,"ndb":`...)
		b = jsonx.AppendInt(b, int64(e.NDB))
	}
	if e.Description != "" {
		b = append(b, `,"description":`...)
		b = jsonx.AppendString(b, e.Description)
	}
	if e.Score != 0 {
		b = append(b, `,"score":`...)
		b = jsonx.AppendFloat(b, e.Score)
	}
	b = append(b, `,"quantity":`...)
	b = jsonx.AppendFloat(b, e.Quantity)
	if e.Unit != "" {
		b = append(b, `,"unit":`...)
		b = jsonx.AppendString(b, e.Unit)
	}
	b = append(b, `,"unit_origin":`...)
	b = jsonx.AppendString(b, e.UnitOrigin)
	b = append(b, `,"grams_via":`...)
	b = jsonx.AppendString(b, e.GramsVia)
	b = append(b, `,"grams":`...)
	b = jsonx.AppendFloat(b, e.Grams)
	b = append(b, `,"mapped":`...)
	b = jsonx.AppendBool(b, e.Mapped)
	b = append(b, `,"profile":`...)
	b = e.Profile.AppendJSON(b)
	return append(b, '}')
}

// appendRecipeResponseHeader renders everything before the ingredients
// array; the caller streams the elements and closes with
// appendRecipeResponseFooter. Split so recipe encoding never
// materializes an []EstimateResponse.
func appendRecipeResponseHeader(b []byte, r *RecipeResponse) []byte {
	b = append(b, `{"servings":`...)
	b = jsonx.AppendInt(b, int64(r.Servings))
	b = append(b, `,"method":`...)
	b = jsonx.AppendString(b, r.Method)
	b = append(b, `,"mapped_fraction":`...)
	b = jsonx.AppendFloat(b, r.MappedFraction)
	b = append(b, `,"total":`...)
	b = r.Total.AppendJSON(b)
	b = append(b, `,"per_serving":`...)
	b = r.PerServing.AppendJSON(b)
	b = append(b, `,"ingredients":[`...)
	return b
}

func appendRecipeResponseFooter(b []byte) []byte {
	return append(b, ']', '}', '\n')
}

func appendHealthzResponse(b []byte, h *HealthzResponse) []byte {
	b = append(b, `{"status":`...)
	b = jsonx.AppendString(b, h.Status)
	b = append(b, `,"foods":`...)
	b = jsonx.AppendInt(b, int64(h.Foods))
	return append(b, '}', '\n')
}

// --- error rendering ----------------------------------------------------

// errInto renders the structured error envelope into sc.out and returns
// (status, body) for the handler to write.
func errInto(sc *serveScratch, status int, code, msg string) (int, []byte) {
	sc.out = appendErrorBody(sc.out[:0], status, code, msg)
	return status, sc.out
}

// decodeErrInto maps a body-read or decode failure onto the error
// vocabulary: 413 when the size limit tripped, 400 bad_json otherwise.
func decodeErrInto(sc *serveScratch, err error) (int, []byte) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		return errInto(sc, http.StatusRequestEntityTooLarge, "body_too_large",
			fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
	}
	return errInto(sc, http.StatusBadRequest, "bad_json",
		"request body is not valid JSON for this route: "+err.Error())
}

// writeError renders an error envelope through a pooled buffer — the
// path for errors raised outside a scratch-owning handler (admission
// sheds).
func writeError(w http.ResponseWriter, status int, code, msg string) {
	buf := jsonx.GetBuffer()
	buf.B = appendErrorBody(buf.B, status, code, msg)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.B)
	jsonx.PutBuffer(buf)
}
