package server

// Tests for the streaming /v1/batch bulk endpoint.
//
// The load-bearing invariant is the golden differential: a line sent
// through /v1/batch must produce the byte-identical body the same
// request would get from /v1/estimate or /v1/recipe. Everything else —
// per-line error envelopes, over-long line recovery, incremental
// window flushes, the draining trailer, bulk admission, and the
// no-starvation storm — pins the streaming semantics around that core.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nutriprofile/internal/recipedb"
)

// postBatch drives a complete NDJSON body through the batch route via a
// recorder. No real streaming happens — the whole response is buffered —
// which is exactly what the semantic tests want.
func postBatch(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body))
	req.Header.Set("Content-Type", ndjsonContentType)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// batchSplit splits an NDJSON response into its lines (without the
// terminating newlines).
func batchSplit(t *testing.T, body []byte) [][]byte {
	t.Helper()
	if len(body) == 0 {
		return nil
	}
	if body[len(body)-1] != '\n' {
		t.Fatalf("batch response does not end in a newline: %q", body)
	}
	return bytes.Split(body[:len(body)-1], []byte{'\n'})
}

func decodeBatchError(t *testing.T, line []byte) BatchErrorBody {
	t.Helper()
	var eb BatchErrorBody
	if err := json.Unmarshal(line, &eb); err != nil {
		t.Fatalf("error line is not a BatchErrorBody: %v (line %q)", err, line)
	}
	if eb.Error.Code == "" || eb.Error.Message == "" || eb.Error.Status == 0 || eb.Error.Line <= 0 {
		t.Fatalf("malformed batch error %+v (line %q)", eb, line)
	}
	return eb
}

// TestBatchGoldenDifferential is the acceptance invariant: the 25-recipe
// golden corpus plus a 1000-recipe generated corpus go through /v1/batch,
// and every response line must be byte-identical to what the single
// interactive route returns for the same request body.
func TestBatchGoldenDifferential(t *testing.T) {
	corpus := loadCorpus(t)
	gen, err := recipedb.Generate(recipedb.Config{NumRecipes: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	type wire struct {
		route string
		body  []byte
	}
	var reqs []wire
	var ndjson bytes.Buffer
	add := func(route string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, wire{route: route, body: b})
		ndjson.Write(b)
		ndjson.WriteByte('\n')
	}
	for _, rec := range corpus {
		add("/v1/recipe", RecipeRequest{Ingredients: rec.Ingredients, Servings: rec.Servings, Method: rec.Method})
	}
	for i := range gen.Recipes {
		rec := &gen.Recipes[i]
		ings := make([]string, len(rec.Ingredients))
		for j := range rec.Ingredients {
			ings[j] = rec.Ingredients[j].Phrase
		}
		add("/v1/recipe", RecipeRequest{Ingredients: ings, Servings: rec.Servings, Method: rec.Method.String()})
		if i%5 == 0 {
			add("/v1/estimate", EstimateRequest{Phrase: rec.Ingredients[0].Phrase})
		}
	}

	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/batch", ndjsonContentType, bytes.NewReader(ndjson.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Fatalf("batch Content-Type %q, want %q", ct, ndjsonContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := batchSplit(t, raw)
	if len(lines) != len(reqs) {
		t.Fatalf("batch returned %d lines for %d inputs", len(lines), len(reqs))
	}

	for i, ln := range lines {
		single, err := http.Post(ts.URL+reqs[i].route, "application/json", bytes.NewReader(reqs[i].body))
		if err != nil {
			t.Fatal(err)
		}
		want, err := io.ReadAll(single.Body)
		single.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if single.StatusCode != http.StatusOK {
			t.Fatalf("line %d: single request to %s got status %d (%s)", i+1, reqs[i].route, single.StatusCode, want)
		}
		if got := string(ln) + "\n"; got != string(want) {
			t.Fatalf("line %d (%s): batch line diverges from single response\nrequest: %s\nbatch:   %s\nsingle:  %s",
				i+1, reqs[i].route, reqs[i].body, got, want)
		}
	}
}

// TestBatchLineSemantics exercises the per-line contract on one stream:
// blank lines are numbered but skipped, CRLF is tolerated, a final
// unterminated line is answered at clean EOF, and every malformed line
// produces its interactive route's error code in-stream, numbered, while
// the stream keeps going.
func TestBatchLineSemantics(t *testing.T) {
	s := newTestServer(t, nil)
	input := `{"phrase":"2 cups all-purpose flour"}` + "\n" + // 1: estimate
		" \t\n" + // 2: blank — numbered, skipped
		`{"ingredients":["1 cup whole milk"],"servings":2,"method":"baked"}` + "\r\n" + // 3: recipe, CRLF
		"not json\n" + // 4
		`{"phrase":""}` + "\n" + // 5
		`{"ingredients":[]}` + "\n" + // 6
		`{"ingredients":["salt"],"servings":-1}` + "\n" + // 7
		`{"ingredients":["salt"],"method":"nuked"}` + "\n" + // 8
		`{"phrase":"salt","ingredients":["salt"]}` + "\n" + // 9: mixed shapes
		`{"bogus":1}` + "\n" + // 10
		"null\n" + // 11
		`{}` // 12: no trailing newline — still answered at clean EOF

	w := postBatch(t, s.Handler(), input)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	lines := batchSplit(t, w.Body.Bytes())
	if len(lines) != 11 {
		t.Fatalf("got %d lines, want 11:\n%s", len(lines), w.Body.String())
	}

	var est EstimateResponse
	if err := json.Unmarshal(lines[0], &est); err != nil || !est.Matched {
		t.Fatalf("line 1 is not a matched estimate: %v (%s)", err, lines[0])
	}
	var rr RecipeResponse
	if err := json.Unmarshal(lines[1], &rr); err != nil || rr.Servings != 2 || rr.Method != "baked" {
		t.Fatalf("line 3 is not the expected recipe response: %v (%s)", err, lines[1])
	}

	wantErrs := []struct {
		line   int
		status int
		code   string
	}{
		{4, http.StatusBadRequest, "bad_json"},
		{5, http.StatusBadRequest, "empty_phrase"},
		{6, http.StatusBadRequest, "no_ingredients"},
		{7, http.StatusBadRequest, "bad_servings"},
		{8, http.StatusBadRequest, "bad_method"},
		{9, http.StatusBadRequest, "bad_request"},
		{10, http.StatusBadRequest, "bad_json"},
		{11, http.StatusBadRequest, "bad_request"},
		{12, http.StatusBadRequest, "bad_request"},
	}
	for i, want := range wantErrs {
		eb := decodeBatchError(t, lines[2+i])
		if eb.Error.Line != want.line || eb.Error.Status != want.status || eb.Error.Code != want.code {
			t.Errorf("error %d: got (line %d, status %d, %s), want (line %d, status %d, %s)",
				i, eb.Error.Line, eb.Error.Status, eb.Error.Code, want.line, want.status, want.code)
		}
	}
}

// TestBatchOversizeLine pins per-line isolation of the body-size limit:
// an over-long line — whether it arrives complete or has to be discarded
// incrementally because it dwarfs the read buffer — costs one 413 line,
// and the stream resynchronizes on the next newline.
func TestBatchOversizeLine(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 256 })
	var input bytes.Buffer
	input.WriteString(`{"phrase":"2 cups all-purpose flour"}` + "\n")             // 1
	input.WriteString(`{"phrase":"` + strings.Repeat("a", 600) + `"}` + "\n")     // 2: complete over-long line
	input.WriteString(`{"phrase":"` + strings.Repeat("b", 200<<10) + `"}` + "\n") // 3: larger than the read buffer
	input.WriteString(`{"phrase":"1 cup whole milk"}` + "\n")                     // 4

	w := postBatch(t, s.Handler(), input.String())
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	lines := batchSplit(t, w.Body.Bytes())
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), w.Body.String())
	}
	for _, i := range []int{0, 3} {
		var est EstimateResponse
		if err := json.Unmarshal(lines[i], &est); err != nil {
			t.Fatalf("line %d is not an estimate: %v (%s)", i+1, err, lines[i])
		}
	}
	for _, i := range []int{1, 2} {
		eb := decodeBatchError(t, lines[i])
		if eb.Error.Code != "line_too_large" || eb.Error.Status != http.StatusRequestEntityTooLarge || eb.Error.Line != i+1 {
			t.Fatalf("line %d: got (%s, %d, line %d), want (line_too_large, 413, line %d)",
				i+1, eb.Error.Code, eb.Error.Status, eb.Error.Line, i+1)
		}
	}
}

// batchClientStream opens a real streaming request against ts: the body
// is an io.Pipe the test writes to, and response lines arrive on a
// channel as the server flushes them.
type batchClientStream struct {
	pw    *io.PipeWriter
	resp  *http.Response
	lines chan string
}

func openBatchStream(t *testing.T, ts *httptest.Server) *batchClientStream {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ndjsonContentType)
	resp, err := ts.Client().Do(req) // returns as soon as the server commits the status line
	if err != nil {
		t.Fatal(err)
	}
	cs := &batchClientStream{pw: pw, resp: resp, lines: make(chan string, 16)}
	t.Cleanup(func() {
		pw.Close()
		resp.Body.Close()
	})
	go func() {
		br := bufio.NewReader(resp.Body)
		for {
			ln, err := br.ReadString('\n')
			if ln != "" {
				cs.lines <- ln
			}
			if err != nil {
				close(cs.lines)
				return
			}
		}
	}()
	return cs
}

func (cs *batchClientStream) write(t *testing.T, s string) {
	t.Helper()
	if _, err := cs.pw.Write([]byte(s)); err != nil {
		t.Fatalf("writing request line: %v", err)
	}
}

func (cs *batchClientStream) readLine(t *testing.T) string {
	t.Helper()
	select {
	case ln, ok := <-cs.lines:
		if !ok {
			t.Fatal("stream ended while expecting a response line")
		}
		return ln
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a response line — the window did not flush")
		return ""
	}
}

func (cs *batchClientStream) expectEnd(t *testing.T) {
	t.Helper()
	select {
	case ln, ok := <-cs.lines:
		if ok {
			t.Fatalf("expected end of stream, got line %q", ln)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for the stream to end")
	}
}

// TestBatchIncrementalFlush pins the streaming property itself: a
// response line must arrive while the request body is still open —
// windows flush as input stalls, they don't wait for EOF or for
// BatchWindow lines to accumulate.
func TestBatchIncrementalFlush(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cs := openBatchStream(t, ts)
	if cs.resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", cs.resp.StatusCode)
	}

	cs.write(t, `{"phrase":"2 cups all-purpose flour"}`+"\n")
	ln1 := cs.readLine(t) // request body still open: this is a mid-stream flush
	var est EstimateResponse
	if err := json.Unmarshal([]byte(ln1), &est); err != nil || !est.Matched {
		t.Fatalf("first streamed line: %v (%s)", err, ln1)
	}

	cs.write(t, `{"ingredients":["1 cup whole milk"],"servings":3}`+"\n")
	ln2 := cs.readLine(t)
	var rr RecipeResponse
	if err := json.Unmarshal([]byte(ln2), &rr); err != nil || rr.Servings != 3 {
		t.Fatalf("second streamed line: %v (%s)", err, ln2)
	}

	cs.pw.Close() // clean EOF: the stream must terminate, not hang
	cs.expectEnd(t)
}

// TestBatchDrainTrailer pins graceful shutdown against an open stream:
// drain must not hang waiting for the client, and must not silently
// truncate — the stream ends with one `draining` trailer carrying the
// next unanswered line number, so the client knows where to resume.
func TestBatchDrainTrailer(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cs := openBatchStream(t, ts)
	cs.write(t, `{"phrase":"2 cups all-purpose flour"}`+"\n")
	cs.readLine(t)
	cs.write(t, `{"phrase":"1 cup whole milk"}`+"\n")
	cs.readLine(t)

	s.startDrain() // what Serve does on shutdown, without tearing down ts

	trailer := cs.readLine(t)
	eb := decodeBatchError(t, []byte(trailer))
	if eb.Error.Code != "draining" || eb.Error.Status != http.StatusServiceUnavailable {
		t.Fatalf("trailer (%s, %d), want (draining, 503): %s", eb.Error.Code, eb.Error.Status, trailer)
	}
	if eb.Error.Line != 3 {
		t.Fatalf("trailer resume line %d, want 3 (two lines were answered)", eb.Error.Line)
	}
	cs.pw.Close()
	cs.expectEnd(t)
}

// TestBatchBulkCapacity pins bulk admission: streams beyond
// MaxBulkStreams shed with a structured 429 before any body is read,
// interactive traffic is unaffected, and the slot is reusable once the
// stream ends.
func TestBatchBulkCapacity(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBulkStreams = 1 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cs := openBatchStream(t, ts) // holds the only bulk slot

	resp, err := http.Post(ts.URL+"/v1/batch", ndjsonContentType, strings.NewReader(`{"phrase":"salt"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != "bulk_capacity" {
		t.Fatalf("shed body: %v (%s)", err, body)
	}

	// Interactive traffic is admitted independently of bulk capacity.
	ir, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(`{"phrase":"2 cups all-purpose flour"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, ir.Body)
	ir.Body.Close()
	if ir.StatusCode != http.StatusOK {
		t.Fatalf("interactive request under full bulk capacity: status %d", ir.StatusCode)
	}

	// End the held stream; its slot must become available again.
	cs.pw.Close()
	cs.expectEnd(t)
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2, err := http.Post(ts.URL+"/v1/batch", ndjsonContentType, strings.NewReader(`{"phrase":"salt"}`+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if r2.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bulk slot not released after stream end: status %d", r2.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchStarvationStorm is the no-starvation contract under
// saturation: 32 interactive clients against 4 bulk streams on a server
// with 2 bulk slots. Every response must be a 200 or a structured 429,
// interactive traffic must keep succeeding while bulk runs, and every
// admitted bulk stream must deliver its exact line count with no torn
// or error lines.
func TestBatchStarvationStorm(t *testing.T) {
	const (
		bulkStreams   = 4
		bulkLines     = 256
		interactive   = 32
		reqsPerClient = 20
	)
	s := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 16
		c.MaxBulkStreams = 2
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var bulkBody bytes.Buffer
	for i := 0; i < bulkLines; i++ {
		if i%2 == 0 {
			bulkBody.WriteString(`{"phrase":"2 cups all-purpose flour"}` + "\n")
		} else {
			bulkBody.WriteString(`{"ingredients":["1 cup whole milk","salt"],"servings":2}` + "\n")
		}
	}

	type bulkResult struct {
		status int
		lines  int
		errs   int
		fail   string
	}
	bulkCh := make(chan bulkResult, bulkStreams)
	for b := 0; b < bulkStreams; b++ {
		go func() {
			var res bulkResult
			defer func() { bulkCh <- res }()
			resp, err := http.Post(ts.URL+"/v1/batch", ndjsonContentType, bytes.NewReader(bulkBody.Bytes()))
			if err != nil {
				res.fail = err.Error()
				return
			}
			defer resp.Body.Close()
			res.status = resp.StatusCode
			if resp.StatusCode != http.StatusOK {
				var eb ErrorBody
				if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error.Code == "" {
					res.fail = fmt.Sprintf("shed stream body is not a structured error: %v", err)
				}
				return
			}
			br := bufio.NewReaderSize(resp.Body, 1<<20)
			for {
				ln, err := br.ReadBytes('\n')
				if len(ln) > 0 {
					if ln[len(ln)-1] != '\n' {
						res.fail = "torn final line"
						return
					}
					if !json.Valid(ln) {
						res.fail = fmt.Sprintf("invalid JSON line: %q", ln)
						return
					}
					if bytes.HasPrefix(ln, []byte(`{"error"`)) {
						res.errs++
					}
					res.lines++
				}
				if err == io.EOF {
					return
				}
				if err != nil {
					res.fail = err.Error()
					return
				}
			}
		}()
	}

	type cliResult struct {
		ok, shed int
		fail     string
	}
	cliCh := make(chan cliResult, interactive)
	for c := 0; c < interactive; c++ {
		go func(id int) {
			var res cliResult
			defer func() { cliCh <- res }()
			for i := 0; i < reqsPerClient; i++ {
				var resp *http.Response
				var err error
				if (id+i)%2 == 0 {
					resp, err = http.Post(ts.URL+"/v1/estimate", "application/json",
						strings.NewReader(`{"phrase":"2 cups all-purpose flour"}`))
				} else {
					resp, err = http.Post(ts.URL+"/v1/recipe", "application/json",
						strings.NewReader(`{"ingredients":["1 cup whole milk"],"servings":2}`))
				}
				if err != nil {
					res.fail = err.Error()
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					res.ok++
				case http.StatusTooManyRequests:
					var eb ErrorBody
					if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code == "" {
						res.fail = fmt.Sprintf("malformed 429 body: %s", body)
						return
					}
					res.shed++
				default:
					res.fail = fmt.Sprintf("status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(c)
	}

	okBulk, totalOK, totalShed := 0, 0, 0
	for i := 0; i < bulkStreams; i++ {
		res := <-bulkCh
		if res.fail != "" {
			t.Fatalf("bulk stream: %s", res.fail)
		}
		if res.status == http.StatusOK {
			okBulk++
			if res.lines != bulkLines || res.errs != 0 {
				t.Fatalf("admitted bulk stream returned %d lines (%d errors), want %d clean", res.lines, res.errs, bulkLines)
			}
		}
	}
	for i := 0; i < interactive; i++ {
		res := <-cliCh
		if res.fail != "" {
			t.Fatalf("interactive client: %s", res.fail)
		}
		totalOK += res.ok
		totalShed += res.shed
	}
	if okBulk == 0 {
		t.Fatal("no bulk stream was admitted")
	}
	if totalOK == 0 {
		t.Fatalf("interactive traffic fully starved: 0 OK, %d shed", totalShed)
	}

	// Quiesce: gauges must return to zero once the storm is over.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.reg.Snapshot()
		if snap.Batch.Active == 0 && s.reg.InFlight() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges did not quiesce: active=%d in_flight=%d", snap.Batch.Active, s.reg.InFlight())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchMetricsCounters pins the batch counter accounting on a known
// stream: 3 answered lines, 1 of them an error, at least one window.
func TestBatchMetricsCounters(t *testing.T) {
	s := newTestServer(t, nil)
	before := s.reg.Snapshot().Batch
	input := `{"phrase":"2 cups all-purpose flour"}` + "\n" +
		"not json\n" +
		`{"ingredients":["salt"],"servings":2}` + "\n"
	w := postBatch(t, s.Handler(), input)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	after := s.reg.Snapshot().Batch
	if got := after.Lines - before.Lines; got != 3 {
		t.Errorf("batch lines counter advanced by %d, want 3", got)
	}
	if got := after.LineErrors - before.LineErrors; got != 1 {
		t.Errorf("batch line-error counter advanced by %d, want 1", got)
	}
	if after.Windows <= before.Windows {
		t.Error("batch window counter did not advance")
	}
	if after.Active != 0 {
		t.Errorf("active streams gauge %d after stream end, want 0", after.Active)
	}
}

// TestServeBatchHotZeroAllocs pins the warm-stream hot path: once the
// scratch arenas have grown and the memo cache is hot, a full
// read-decode-estimate-encode window cycle performs zero heap
// allocations. Mirrors TestServeEstimateHotZeroAllocs.
func TestServeBatchHotZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	s := newTestServer(t, func(c *Config) {
		c.BatchWindow = 64
		c.BatchWorkers = 1
	})
	var body bytes.Buffer
	for i := 0; i < 32; i++ {
		body.WriteString(`{"phrase":"2 cups all-purpose flour"}` + "\n")
		body.WriteString(`{"ingredients":["2 cups all-purpose flour","1 cup whole milk"],"servings":4,"method":"baked"}` + "\n")
	}

	bs := getBatchScratch()
	defer putBatchScratch(bs)
	rd := bytes.NewReader(nil)
	run := func() {
		rd.Reset(body.Bytes())
		// rc is nil: deadlineOK/flushOK stay false, so the stream uses
		// plain blocking reads and unflushed writes — the recorder path.
		st := batchStream{s: s, bs: bs, body: rd, dst: io.Discard, ctx: context.Background()}
		st.run()
	}
	run() // warm: grow the arenas, populate the memo cache
	run()
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("warm batch stream allocated %v times per run, want 0", n)
	}
}
