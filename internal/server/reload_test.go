package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nutriprofile/internal/core"
	"nutriprofile/internal/usda"
	"nutriprofile/internal/usda/bake"
)

// bakeImage writes a baked image of db into a temp dir and returns its path.
func bakeImage(t *testing.T, name string, db *usda.DB) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := bake.WriteFile(path, db, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

// postReload issues POST /admin/reload from the given peer address.
func postReload(t *testing.T, h http.Handler, remoteAddr, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/admin/reload", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.RemoteAddr = remoteAddr
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestReloadDisabledByDefault(t *testing.T) {
	s := newTestServer(t, nil)
	w := postReload(t, s.Handler(), "127.0.0.1:1234", `{"path":"x"}`)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404 when EnableReload is unset", w.Code)
	}
}

func TestReloadRefusesNonLoopback(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.EnableReload = true })
	h := s.Handler()
	for _, addr := range []string{"192.0.2.1:1234", "10.0.0.8:99", "not-an-addr", ""} {
		w := postReload(t, h, addr, `{"path":"x"}`)
		if w.Code != http.StatusForbidden {
			t.Fatalf("peer %q: status %d, want 403", addr, w.Code)
		}
		if eb := decodeErrorBody(t, w); eb.Error.Code != "forbidden" {
			t.Fatalf("peer %q: code %q", addr, eb.Error.Code)
		}
	}
	// IPv6 loopback is a loopback.
	img := bakeImage(t, "v6.img", usda.Seed())
	w := postReload(t, h, "[::1]:5555", fmt.Sprintf(`{"path":%q}`, img))
	if w.Code != http.StatusOK {
		t.Fatalf("::1 peer: status %d body %s", w.Code, w.Body)
	}
}

func TestReloadBadRequests(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.EnableReload = true })
	h := s.Handler()
	cases := []struct {
		name, body, code string
	}{
		{"malformed json", `{"path":`, "bad_json"},
		{"unknown field", `{"path":"x","extra":1}`, "bad_json"},
		{"empty path", `{}`, "bad_request"},
		{"missing image", `{"path":"/nonexistent/db.img"}`, "bad_image"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postReload(t, h, "127.0.0.1:1", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", w.Code)
			}
			if eb := decodeErrorBody(t, w); eb.Error.Code != tc.code {
				t.Fatalf("code %q, want %q", eb.Error.Code, tc.code)
			}
		})
	}
}

func TestReloadRejectsCorruptImageAndKeepsServing(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.EnableReload = true })
	h := s.Handler()
	bad := filepath.Join(t.TempDir(), "bad.img")
	if err := os.WriteFile(bad, []byte("NPBKgarbage-not-an-image"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := postReload(t, h, "127.0.0.1:1", fmt.Sprintf(`{"path":%q}`, bad))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if eb := decodeErrorBody(t, w); eb.Error.Code != "bad_image" {
		t.Fatalf("code %q, want bad_image", eb.Error.Code)
	}
	// The old snapshot still serves.
	if w := postJSON(t, h, "/v1/estimate", `{"phrase":"1 cup butter"}`); w.Code != http.StatusOK {
		t.Fatalf("estimate after failed reload: status %d", w.Code)
	}
	if got := s.est.SnapshotStats().Version; got != 1 {
		t.Fatalf("failed reload moved version to %d", got)
	}
}

func TestReloadSwapsDatabase(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.EnableReload = true })
	h := s.Handler()

	// Baseline estimate against the boot DB.
	w := postJSON(t, h, "/v1/estimate", `{"phrase":"1 cup butter"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("estimate: %d", w.Code)
	}
	var before EstimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &before); err != nil {
		t.Fatal(err)
	}

	// Swap in a doubled-nutrient database.
	seed := usda.Seed()
	foods := make([]usda.Food, seed.Len())
	for i := range foods {
		f := *seed.At(i)
		f.Per100g = f.Per100g.Scale(2)
		foods[i] = f
	}
	db2, err := usda.NewDB(foods)
	if err != nil {
		t.Fatal(err)
	}
	img := bakeImage(t, "v2.img", db2)

	w = postReload(t, h, "127.0.0.1:1", fmt.Sprintf(`{"path":%q}`, img))
	if w.Code != http.StatusOK {
		t.Fatalf("reload: status %d body %s", w.Code, w.Body)
	}
	var st core.SnapshotStats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 || st.Foods != db2.Len() || st.Source != img {
		t.Fatalf("reload response %+v", st)
	}

	// Estimates now resolve against the new DB (and the caches were purged).
	w = postJSON(t, h, "/v1/estimate", `{"phrase":"1 cup butter"}`)
	var after EstimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Profile.EnergyKcal != 2*before.Profile.EnergyKcal {
		t.Fatalf("post-reload energy %v, want doubled %v", after.Profile.EnergyKcal, 2*before.Profile.EnergyKcal)
	}

	// /v1/stats reports the new snapshot.
	var stats StatsResponse
	if err := json.Unmarshal(getPath(t, h, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.DB.Version != 2 || stats.DB.Source != img {
		t.Fatalf("stats db = %+v", stats.DB)
	}
}

// TestReloadUnderConcurrentTraffic hammers /v1/estimate while reloading
// repeatedly: no request may fail, and every profile must be the pure
// old-DB or pure new-DB answer.
func TestReloadUnderConcurrentTraffic(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.EnableReload = true
		c.MaxInFlight = 256
	})
	h := s.Handler()

	seed := usda.Seed()
	foods := make([]usda.Food, seed.Len())
	for i := range foods {
		f := *seed.At(i)
		f.Per100g = f.Per100g.Scale(3)
		foods[i] = f
	}
	db2, err := usda.NewDB(foods)
	if err != nil {
		t.Fatal(err)
	}
	imgA := bakeImage(t, "a.img", seed)
	imgB := bakeImage(t, "b.img", db2)

	// Reference answers: serve once against each database (computing
	// 3*wantA here instead would differ in the last float bit — scaling
	// before vs after the grams conversion is not associative).
	serveEnergy := func() float64 {
		var r EstimateResponse
		w := postJSON(t, h, "/v1/estimate", `{"phrase":"1 cup butter"}`)
		if err := json.Unmarshal(w.Body.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		return r.Profile.EnergyKcal
	}
	wantA := serveEnergy()
	if w := postReload(t, h, "127.0.0.1:1", fmt.Sprintf(`{"path":%q}`, imgB)); w.Code != http.StatusOK {
		t.Fatalf("priming reload: %d %s", w.Code, w.Body)
	}
	wantB := serveEnergy()
	if w := postReload(t, h, "127.0.0.1:1", fmt.Sprintf(`{"path":%q}`, imgA)); w.Code != http.StatusOK {
		t.Fatalf("priming reload: %d %s", w.Code, w.Body)
	}
	if wantA == wantB {
		t.Fatal("reference profiles identical; test cannot distinguish databases")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := postJSON(t, h, "/v1/estimate", `{"phrase":"1 cup butter"}`)
				if w.Code != http.StatusOK {
					t.Errorf("estimate failed mid-reload: %d %s", w.Code, w.Body)
					return
				}
				var r EstimateResponse
				if err := json.Unmarshal(w.Body.Bytes(), &r); err != nil {
					t.Errorf("bad body: %v", err)
					return
				}
				if got := r.Profile.EnergyKcal; got != wantA && got != wantB {
					t.Errorf("torn profile: energy %v, want %v or %v", got, wantA, wantB)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		img := imgA
		if i%2 == 0 {
			img = imgB
		}
		if w := postReload(t, h, "127.0.0.1:1", fmt.Sprintf(`{"path":%q}`, img)); w.Code != http.StatusOK {
			t.Fatalf("reload %d: %d %s", i, w.Code, w.Body)
		}
	}
	close(stop)
	wg.Wait()

	// Boot snapshot + 2 priming reloads + 20 storm reloads.
	if got := s.est.SnapshotStats().Version; got != 23 {
		t.Fatalf("version %d after 22 reloads, want 23", got)
	}
}
