package server

// Matcher-engine families for GET /metrics, appended after the memo
// families in the same hand-rendered 0.0.4 text format (see
// memo_metrics.go for why these are snapshotted at scrape time rather
// than registered). The prune counters expose the candidate-pruned
// ranking engine's work avoidance — postings never walked, candidates
// retired by the bar tests, gather→update transitions — so a ±10%
// regression in pruning effectiveness is visible on a dashboard long
// before it shows up as cold-batch latency. One MatcherStats snapshot
// per scrape; the families carry no labels (there is one matcher per
// snapshot).

import (
	"io"
	"strconv"

	"nutriprofile/internal/match"
)

// matchFamilies drives the exposition: counters first, then gauges,
// names sorted within each group for deterministic output.
var matchFamilies = []struct {
	name, help, typ string
	value           func(st match.MatcherStats) float64
}{
	{"nutriserve_match_pool_gets_total", "Scoring-arena checkouts (one per ranking query).", "counter",
		func(st match.MatcherStats) float64 { return float64(st.PoolGets) }},
	{"nutriserve_match_pool_misses_total", "Arena checkouts that allocated instead of reusing a pooled arena.", "counter",
		func(st match.MatcherStats) float64 { return float64(st.PoolMisses) }},
	{"nutriserve_match_probe_terms_total", "Update terms scored by candidate probes of the posting list instead of a full walk.", "counter",
		func(st match.MatcherStats) float64 { return float64(st.AdaptiveProbeTerms) }},
	{"nutriserve_match_prune_compactions_total", "Candidate-set compaction passes run by the pruned engine.", "counter",
		func(st match.MatcherStats) float64 { return float64(st.PruneCompactions) }},
	{"nutriserve_match_prune_docs_dropped_total", "Candidates retired by the exact bar tests (compaction and final selection).", "counter",
		func(st match.MatcherStats) float64 { return float64(st.PruneDocsDropped) }},
	{"nutriserve_match_prune_gather_exits_total", "Queries whose gather phase ended early (gather-to-update transition).", "counter",
		func(st match.MatcherStats) float64 { return float64(st.PruneGatherExits) }},
	{"nutriserve_match_prune_postings_avoided_total", "Posting entries never walked thanks to probing, skipping, or early exit.", "counter",
		func(st match.MatcherStats) float64 { return float64(st.PrunePostingsAvoided) }},
	{"nutriserve_match_prune_terms_skipped_total", "Scheduled terms skipped outright (empty candidate set).", "counter",
		func(st match.MatcherStats) float64 { return float64(st.PruneTermsSkipped) }},
	{"nutriserve_match_docs", "Documents (food descriptions) in the live scoring index.", "gauge",
		func(st match.MatcherStats) float64 { return float64(st.Docs) }},
	{"nutriserve_match_posting_entries", "Total posting entries in the live scoring index.", "gauge",
		func(st match.MatcherStats) float64 { return float64(st.PostingEntries) }},
	{"nutriserve_match_pruning_enabled", "1 when the candidate-pruned ranking engine is active, 0 under the exhaustive ablation.", "gauge",
		func(st match.MatcherStats) float64 {
			if st.PruningEnabled {
				return 1
			}
			return 0
		}},
	{"nutriserve_match_vocab_size", "Distinct terms in the live scoring index's vocabulary.", "gauge",
		func(st match.MatcherStats) float64 { return float64(st.VocabSize) }},
}

// writeMatchMetrics renders the matcher families from one stats
// snapshot.
func writeMatchMetrics(w io.Writer, st match.MatcherStats) error {
	buf := make([]byte, 0, 2048)
	for _, fam := range matchFamilies {
		buf = append(buf, "# HELP "...)
		buf = append(buf, fam.name...)
		buf = append(buf, ' ')
		buf = append(buf, fam.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, fam.name...)
		buf = append(buf, ' ')
		buf = append(buf, fam.typ...)
		buf = append(buf, '\n')
		buf = append(buf, fam.name...)
		buf = append(buf, ' ')
		buf = strconv.AppendFloat(buf, fam.value(st), 'g', -1, 64)
		buf = append(buf, '\n')
	}
	_, err := w.Write(buf)
	return err
}
