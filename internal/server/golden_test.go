package server

// End-to-end golden harness: the committed 25-recipe corpus
// (testdata/corpus.json) is driven through a real httptest.Server via
// POST /v1/recipe and every response is compared field-by-field against
// the committed golden profiles (testdata/golden.json). The pipeline is
// deterministic — worker pools return input-ordered, byte-identical
// results — so the comparison is exact, no tolerances.
//
// Regenerate after an intentional pipeline change with:
//
//	go test ./internal/server/ -run TestGoldenCorpus -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"nutriprofile/internal/nutrition"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.json from current responses")

// corpusFile mirrors testdata/corpus.json.
type corpusFile struct {
	Recipes []corpusRecipe `json:"recipes"`
}

type corpusRecipe struct {
	Name        string   `json:"name"`
	Servings    int      `json:"servings"`
	Method      string   `json:"method,omitempty"`
	Ingredients []string `json:"ingredients"`
}

// goldenEntry is one recipe's pinned response.
type goldenEntry struct {
	Name     string         `json:"name"`
	Response RecipeResponse `json:"response"`
}

func loadCorpus(t *testing.T) []corpusRecipe {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "corpus.json"))
	if err != nil {
		t.Fatal(err)
	}
	var cf corpusFile
	if err := json.Unmarshal(raw, &cf); err != nil {
		t.Fatalf("corpus.json: %v", err)
	}
	if len(cf.Recipes) != 25 {
		t.Fatalf("corpus has %d recipes, want 25", len(cf.Recipes))
	}
	return cf.Recipes
}

func TestGoldenCorpus(t *testing.T) {
	recipes := loadCorpus(t)
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	got := make([]goldenEntry, 0, len(recipes))
	for _, rec := range recipes {
		body, err := json.Marshal(RecipeRequest{
			Ingredients: rec.Ingredients,
			Servings:    rec.Servings,
			Method:      rec.Method,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/recipe", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", rec.Name, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", rec.Name, resp.StatusCode)
		}
		var rr RecipeResponse
		err = json.NewDecoder(resp.Body).Decode(&rr)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: decode: %v", rec.Name, err)
		}
		got = append(got, goldenEntry{Name: rec.Name, Response: rr})
	}

	goldenPath := filepath.Join("testdata", "golden.json")
	if *update {
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(got))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("golden.json: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d entries, corpus produced %d", len(want), len(got))
	}
	for i := range want {
		compareRecipe(t, want[i], got[i])
	}
}

// compareRecipe diffs one recipe field-by-field so a regression names
// the exact divergent field instead of dumping two JSON blobs.
func compareRecipe(t *testing.T, want, got goldenEntry) {
	t.Helper()
	if want.Name != got.Name {
		t.Errorf("entry order: golden %q vs corpus %q", want.Name, got.Name)
		return
	}
	w, g := want.Response, got.Response
	pre := want.Name + ": "
	if g.Servings != w.Servings {
		t.Errorf("%sservings %d, want %d", pre, g.Servings, w.Servings)
	}
	if g.Method != w.Method {
		t.Errorf("%smethod %q, want %q", pre, g.Method, w.Method)
	}
	if g.MappedFraction != w.MappedFraction {
		t.Errorf("%smapped_fraction %v, want %v", pre, g.MappedFraction, w.MappedFraction)
	}
	compareProfile(t, pre+"total", w.Total, g.Total)
	compareProfile(t, pre+"per_serving", w.PerServing, g.PerServing)
	if len(g.Ingredients) != len(w.Ingredients) {
		t.Errorf("%s%d ingredients, want %d", pre, len(g.Ingredients), len(w.Ingredients))
		return
	}
	for i := range w.Ingredients {
		wi, gi := w.Ingredients[i], g.Ingredients[i]
		ipre := fmt.Sprintf("%singredient[%d] %q: ", pre, i, wi.Phrase)
		if gi.Phrase != wi.Phrase {
			t.Errorf("%sphrase %q", ipre, gi.Phrase)
		}
		if gi.Matched != wi.Matched || gi.NDB != wi.NDB || gi.Description != wi.Description {
			t.Errorf("%smatch (%v, %d, %q), want (%v, %d, %q)",
				ipre, gi.Matched, gi.NDB, gi.Description, wi.Matched, wi.NDB, wi.Description)
		}
		if gi.Score != wi.Score {
			t.Errorf("%sscore %v, want %v", ipre, gi.Score, wi.Score)
		}
		if gi.Quantity != wi.Quantity || gi.Unit != wi.Unit {
			t.Errorf("%squantity/unit (%v, %q), want (%v, %q)", ipre, gi.Quantity, gi.Unit, wi.Quantity, wi.Unit)
		}
		if gi.UnitOrigin != wi.UnitOrigin || gi.GramsVia != wi.GramsVia {
			t.Errorf("%sorigin/via (%s, %s), want (%s, %s)", ipre, gi.UnitOrigin, gi.GramsVia, wi.UnitOrigin, wi.GramsVia)
		}
		if gi.Grams != wi.Grams || gi.Mapped != wi.Mapped {
			t.Errorf("%sgrams/mapped (%v, %v), want (%v, %v)", ipre, gi.Grams, gi.Mapped, wi.Grams, wi.Mapped)
		}
		compareProfile(t, ipre+"profile", wi.Profile, gi.Profile)
	}
}

func compareProfile(t *testing.T, label string, want, got nutrition.Profile) {
	t.Helper()
	if got != want {
		t.Errorf("%s = %+v, want %+v", label, got, want)
	}
}
