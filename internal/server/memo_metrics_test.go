package server

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"nutriprofile/internal/memo"
)

// memoSample is one parsed exposition line of a memo family.
type memoSample struct {
	name  string
	cache string
	value float64
}

// parseMemoExposition strictly parses the full /metrics body and
// returns the nutriserve_memo_* samples: every sample line must
// belong to the family block its HELP/TYPE headers opened (0.0.4
// ordering), memo families must declare counter or gauge types, and
// every memo sample must carry exactly a cache label.
func parseMemoExposition(t *testing.T, text string) map[string]memoSample {
	t.Helper()
	samples := map[string]memoSample{}
	var lastHelp, current, currentTyp string
	for ln, line := range strings.Split(text, "\n") {
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d (%q): %s", ln+1, line, fmt.Sprintf(format, args...))
		}
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" || help == "" {
				fail("malformed HELP")
			}
			lastHelp = name
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name != lastHelp {
				fail("TYPE not immediately preceded by its HELP")
			}
			if strings.HasPrefix(name, "nutriserve_memo_") && typ != "counter" && typ != "gauge" {
				fail("memo family %s has type %q", name, typ)
			}
			current, currentTyp = name, typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			fail("unexpected comment")
		}
		if current == "" {
			fail("sample before any family header")
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := name
		if currentTyp == "histogram" {
			base = strings.TrimSuffix(base, "_bucket")
			base = strings.TrimSuffix(base, "_sum")
			base = strings.TrimSuffix(base, "_count")
		}
		if base != current {
			fail("sample %s outside its family block (current %s)", name, current)
		}
		if !strings.HasPrefix(name, "nutriserve_memo_") {
			continue
		}
		// Memo samples are exactly name{cache="<phrase|match>"} value.
		rest := strings.TrimPrefix(line, name)
		if !strings.HasPrefix(rest, `{cache="`) {
			fail("memo sample missing cache label")
		}
		rest = strings.TrimPrefix(rest, `{cache="`)
		cache, rest, ok := strings.Cut(rest, `"} `)
		if !ok || (cache != "phrase" && cache != "match") {
			fail("malformed memo sample or unknown cache %q", cache)
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			fail("unparseable value: %v", err)
		}
		samples[name+"/"+cache] = memoSample{name: name, cache: cache, value: v}
	}
	return samples
}

// TestMemoMetricsExposition drives traffic through a live server and
// checks the scraped memo families against the estimator's own
// CacheStats snapshot: every family present for both caches, counter
// values matching, and the derived hit-ratio gauge equal to
// hits/(hits+misses) of the very same scrape.
func TestMemoMetricsExposition(t *testing.T) {
	s := newTestServer(t, nil)
	// Repeat phrases so the phrase cache records both misses and hits.
	for i := 0; i < 3; i++ {
		w := postJSON(t, s.Handler(), "/v1/estimate", `{"phrase":"2 cups flour"}`)
		if w.Code != 200 {
			t.Fatalf("estimate status %d", w.Code)
		}
	}
	postJSON(t, s.Handler(), "/v1/estimate", `{"phrase":"1 tbsp olive oil"}`)

	w := getPath(t, s.Handler(), "/metrics")
	if w.Code != 200 {
		t.Fatalf("/metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type %q", ct)
	}
	samples := parseMemoExposition(t, w.Body.String())

	phrase, match := s.est.CacheStats()
	for _, c := range []struct {
		label string
		st    memo.Stats
	}{{"phrase", phrase}, {"match", match}} {
		wantCounters := map[string]float64{
			"nutriserve_memo_hits_total":          float64(c.st.Hits),
			"nutriserve_memo_misses_total":        float64(c.st.Misses),
			"nutriserve_memo_evictions_total":     float64(c.st.Evictions),
			"nutriserve_memo_rejections_total":    float64(c.st.Rejections),
			"nutriserve_memo_admissions_total":    float64(c.st.Admissions),
			"nutriserve_memo_sketch_resets_total": float64(c.st.SketchResets),
			"nutriserve_memo_entries":             float64(c.st.Entries),
		}
		for name, want := range wantCounters {
			got, ok := samples[name+"/"+c.label]
			if !ok {
				t.Errorf("family %s missing cache=%q sample", name, c.label)
				continue
			}
			if got.value != want {
				t.Errorf("%s{cache=%q} = %v, want %v", name, c.label, got.value, want)
			}
		}
		ratio, ok := samples["nutriserve_memo_hit_ratio/"+c.label]
		if !ok {
			t.Fatalf("hit_ratio gauge missing for cache=%q", c.label)
		}
		// The gauge must be derived from the same snapshot the counter
		// lines render — recompute it from the scraped lines, not from
		// a second CacheStats call.
		hits := samples["nutriserve_memo_hits_total/"+c.label].value
		misses := samples["nutriserve_memo_misses_total/"+c.label].value
		want := 0.0
		if hits+misses > 0 {
			want = hits / (hits + misses)
		}
		if math.Abs(ratio.value-want) > 1e-12 {
			t.Errorf("hit_ratio{cache=%q} = %v, want %v from the scrape's own counters", c.label, ratio.value, want)
		}
	}
	// The traffic above guarantees phrase-cache activity.
	if samples["nutriserve_memo_hits_total/phrase"].value == 0 {
		t.Error("no phrase hits recorded — repeat estimate did not hit the cache")
	}
	if samples["nutriserve_memo_hit_ratio/phrase"].value <= 0 {
		t.Error("phrase hit_ratio not positive after repeat traffic")
	}
}
