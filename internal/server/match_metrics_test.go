package server

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// parseMatchExposition strictly parses the full /metrics body and
// returns the nutriserve_match_* samples: every sample line must
// belong to the family block its HELP/TYPE headers opened (0.0.4
// ordering), match families must declare counter or gauge types, and
// every match sample must be bare `name value` — the matcher families
// carry no labels (one matcher per snapshot).
func parseMatchExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	var lastHelp, current, currentTyp string
	for ln, line := range strings.Split(text, "\n") {
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d (%q): %s", ln+1, line, fmt.Sprintf(format, args...))
		}
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" || help == "" {
				fail("malformed HELP")
			}
			lastHelp = name
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name != lastHelp {
				fail("TYPE not immediately preceded by its HELP")
			}
			if strings.HasPrefix(name, "nutriserve_match_") && typ != "counter" && typ != "gauge" {
				fail("match family %s has type %q", name, typ)
			}
			current, currentTyp = name, typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			fail("unexpected comment")
		}
		if current == "" {
			fail("sample before any family header")
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := name
		if currentTyp == "histogram" {
			base = strings.TrimSuffix(base, "_bucket")
			base = strings.TrimSuffix(base, "_sum")
			base = strings.TrimSuffix(base, "_count")
		}
		if base != current {
			fail("sample %s outside its family block (current %s)", name, current)
		}
		if !strings.HasPrefix(name, "nutriserve_match_") {
			continue
		}
		// Match samples are exactly `name value` — no labels.
		rest := strings.TrimPrefix(line, name)
		if !strings.HasPrefix(rest, " ") || strings.Contains(line, "{") {
			fail("match sample not in bare name-value form")
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(rest, " "), 64)
		if err != nil {
			fail("unparseable value: %v", err)
		}
		if _, dup := samples[name]; dup {
			fail("duplicate match sample %s", name)
		}
		samples[name] = v
	}
	return samples
}

// TestMatchMetricsExposition drives cache-missing traffic through a
// live server and checks the scraped nutriserve_match_* families
// against the estimator's own MatcherStats snapshot: every family
// present exactly once, values matching, pruning reported enabled, and
// the prune counters actually moving under ranking traffic.
func TestMatchMetricsExposition(t *testing.T) {
	s := newTestServer(t, nil)
	// Distinct multi-word phrases: every one is a phrase-cache miss that
	// reaches the ranking engine, so the prune counters must move.
	for i := 0; i < 8; i++ {
		body := fmt.Sprintf(`{"phrase":"%d cups raw whole milk"}`, i+1)
		if w := postJSON(t, s.Handler(), "/v1/estimate", body); w.Code != 200 {
			t.Fatalf("estimate status %d", w.Code)
		}
	}

	w := getPath(t, s.Handler(), "/metrics")
	if w.Code != 200 {
		t.Fatalf("/metrics status %d", w.Code)
	}
	samples := parseMatchExposition(t, w.Body.String())

	st := s.est.MatcherStats()
	want := map[string]float64{
		"nutriserve_match_pool_gets_total":              float64(st.PoolGets),
		"nutriserve_match_pool_misses_total":            float64(st.PoolMisses),
		"nutriserve_match_probe_terms_total":            float64(st.AdaptiveProbeTerms),
		"nutriserve_match_prune_compactions_total":      float64(st.PruneCompactions),
		"nutriserve_match_prune_docs_dropped_total":     float64(st.PruneDocsDropped),
		"nutriserve_match_prune_gather_exits_total":     float64(st.PruneGatherExits),
		"nutriserve_match_prune_postings_avoided_total": float64(st.PrunePostingsAvoided),
		"nutriserve_match_prune_terms_skipped_total":    float64(st.PruneTermsSkipped),
		"nutriserve_match_docs":                         float64(st.Docs),
		"nutriserve_match_posting_entries":              float64(st.PostingEntries),
		"nutriserve_match_pruning_enabled":              1,
		"nutriserve_match_vocab_size":                   float64(st.VocabSize),
	}
	if len(samples) != len(want) {
		t.Errorf("scraped %d match samples, want %d", len(samples), len(want))
	}
	for name, wv := range want {
		got, ok := samples[name]
		if !ok {
			t.Errorf("family %s missing from scrape", name)
			continue
		}
		if got != wv {
			t.Errorf("%s = %v, want %v", name, got, wv)
		}
	}
	// Ranking traffic ran, so the engine must have reported real work
	// and real avoidance: index gauges nonzero, at least one query
	// ranked, and the pruned engine's headline counter moving.
	if samples["nutriserve_match_docs"] == 0 || samples["nutriserve_match_vocab_size"] == 0 {
		t.Error("index-shape gauges are zero on a live server")
	}
	if samples["nutriserve_match_pool_gets_total"] == 0 {
		t.Error("no ranking queries recorded after estimate traffic")
	}
	if samples["nutriserve_match_prune_docs_dropped_total"] == 0 {
		t.Error("prune_docs_dropped_total = 0: the bar tests never fired under ranking traffic")
	}
}
