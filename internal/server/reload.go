package server

// POST /admin/reload: hot-swap the serving database from a baked image
// (cmd/dbbake) without dropping a request. The endpoint is an admin
// surface, not an API one: it is off unless Config.EnableReload is set,
// it only answers loopback peers (nutriserve does not do authentication,
// so the reachable-from-anywhere failure mode is fenced at the socket),
// and it bypasses admission control — a reload must succeed exactly when
// the pipeline is saturated.
//
// The swap itself is core.Estimator.Install: requests already pinned to
// the old snapshot finish on it byte-identically, requests admitted
// after the store see only the new database (DESIGN.md §13).

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"nutriprofile/internal/usda/bake"
)

// ReloadRequest is the POST /admin/reload body.
type ReloadRequest struct {
	// Path is the baked image file to load, as seen by the server
	// process (the image is read server-side; nothing is uploaded).
	Path string `json:"path"`
}

// The response body is the installed snapshot's identity —
// core.SnapshotStats: {"version":…,"gen":…,"foods":…,"source":…}.

// isLoopback reports whether the peer address is a loopback socket.
// Anything unparseable counts as non-loopback: fail closed.
func isLoopback(remoteAddr string) bool {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if !isLoopback(r.RemoteAddr) {
		writeError(w, http.StatusForbidden, "forbidden",
			"/admin/reload only answers loopback peers")
		return
	}
	// A reload body is one short path; anything bigger is not a reload.
	r.Body = http.MaxBytesReader(w, r.Body, 4096)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req ReloadRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_json",
			fmt.Sprintf("invalid reload body: %v", err))
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "bad_request",
			`"path" must name a baked DB image on the server`)
		return
	}
	ld, err := bake.LoadFile(req.Path)
	if err != nil {
		// Load validates magic, version, checksum and structure; a bad
		// image never reaches the estimator, and serving continues on
		// the current snapshot.
		writeError(w, http.StatusBadRequest, "bad_image",
			fmt.Sprintf("loading %s: %v", req.Path, err))
		return
	}
	st, err := s.est.Install(ld.DB, ld.Index, req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_image",
			fmt.Sprintf("installing %s: %v", req.Path, err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}
