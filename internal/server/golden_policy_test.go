package server

import (
	"encoding/json"
	"testing"

	"nutriprofile/internal/core"
	"nutriprofile/internal/memo"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/usda"
)

// newPolicyServer builds a Server whose estimator's memo caches run
// the given admission policy, deliberately undersized so the policies
// actually diverge in what they keep resident.
func newPolicyServer(t *testing.T, p memo.Policy) *Server {
	t.Helper()
	est, err := core.New(usda.Seed(), nil, core.Options{CacheSize: 256, CachePolicy: p})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGoldenCorpusPolicyDifferential is the end-to-end half of the
// cache-policy acceptance gate: the committed 25-recipe corpus plus a
// generated batch are driven through two servers identical except for
// -cache-policy, and every /v1/recipe response must be byte-identical
// — the cache is a memo, never an approximation, so admission and
// eviction choices must be invisible on the wire.
func TestGoldenCorpusPolicyDifferential(t *testing.T) {
	lru := newPolicyServer(t, memo.PolicyLRU)
	tlfu := newPolicyServer(t, memo.PolicyTinyLFU)

	check := func(name, body string) {
		t.Helper()
		wl := postJSON(t, lru.Handler(), "/v1/recipe", body)
		wt := postJSON(t, tlfu.Handler(), "/v1/recipe", body)
		if wl.Code != 200 || wt.Code != 200 {
			t.Fatalf("%s: status lru=%d tinylfu=%d", name, wl.Code, wt.Code)
		}
		if wl.Body.String() != wt.Body.String() {
			t.Fatalf("%s: responses diverge across cache policies\n lru  %s\n tlfu %s",
				name, wl.Body.String(), wt.Body.String())
		}
	}

	marshal := func(req RecipeRequest) string {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// The committed corpus, twice: the second pass replays every recipe
	// against warm, churned caches, so hit-path results are compared
	// too, not just first-touch misses.
	corpus := loadCorpus(t)
	for pass := 0; pass < 2; pass++ {
		for _, rec := range corpus {
			check(rec.Name, marshal(RecipeRequest{
				Ingredients: rec.Ingredients,
				Servings:    rec.Servings,
				Method:      rec.Method,
			}))
		}
	}

	// Generated recipes: enough phrase volume to overflow the 256-entry
	// caches and force both eviction (LRU) and rejection (TinyLFU).
	n := 300
	if testing.Short() {
		n = 60
	}
	gen, err := recipedb.Generate(recipedb.Config{NumRecipes: n, Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range gen.Recipes {
		phrases := make([]string, len(rec.Ingredients))
		for i := range rec.Ingredients {
			phrases[i] = rec.Ingredients[i].Phrase
		}
		check(rec.Title, marshal(RecipeRequest{Ingredients: phrases, Servings: 2}))
	}

	// Prove the differential was non-vacuous: TinyLFU must have
	// rejected candidates, i.e. the two servers really held different
	// residency sets while producing identical bytes.
	ps, _ := tlfu.est.CacheStats()
	if ps.Rejections == 0 {
		t.Fatalf("tinylfu phrase cache saw no rejections (stats %+v) — corpus too small for the gate", ps)
	}
}
