package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"nutriprofile/internal/core"
	"nutriprofile/internal/usda"
)

// The serve benchmarks are the load-bench harness: they drive the real
// handler stack (mux → middleware → pooled codec → pipeline) with the
// golden-corpus workload and report throughput plus p50/p99 latency, so
// the nightly bench-compare gate catches serving-layer regressions the
// micro-benchmarks cannot see. The `hot` variants isolate the pooled
// per-request path the zero-allocation criterion applies to.

// newBenchServer mirrors newTestServer for benchmarks: seed DB, a cache
// big enough that the corpus stays warm, no access log.
func newBenchServer(b *testing.B) *Server {
	b.Helper()
	est, err := core.New(usda.Seed(), nil, core.Options{CacheSize: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{Estimator: est})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchCorpus loads the golden corpus' request side for benchmarks.
func benchCorpus(b *testing.B) []RecipeRequest {
	b.Helper()
	raw, err := os.ReadFile("testdata/corpus.json")
	if err != nil {
		b.Fatal(err)
	}
	var doc struct {
		Recipes []struct {
			Servings    int      `json:"servings"`
			Method      string   `json:"method"`
			Ingredients []string `json:"ingredients"`
		} `json:"recipes"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		b.Fatal(err)
	}
	out := make([]RecipeRequest, len(doc.Recipes))
	for i, r := range doc.Recipes {
		out[i] = RecipeRequest{Ingredients: r.Ingredients, Servings: r.Servings, Method: r.Method}
	}
	return out
}

// nullWriter is the cheapest possible ResponseWriter: the benchmark
// measures the serving stack, not httptest's body recorder.
type nullWriter struct {
	h      http.Header
	status int
}

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullWriter) WriteHeader(code int)        { w.status = code }

// benchRequest is one pre-built request the harness can replay: the
// body reader is rewound and re-attached every iteration because the
// middleware wraps Body in a fresh MaxBytesReader per request.
type benchRequest struct {
	req  *http.Request
	body *bytes.Reader
}

func newBenchRequest(path string, body []byte) benchRequest {
	rd := bytes.NewReader(body)
	req := httptest.NewRequest(http.MethodPost, path, rd)
	req.Header.Set("Content-Type", "application/json")
	return benchRequest{req: req, body: rd}
}

type readCloser struct{ *bytes.Reader }

func (readCloser) Close() error { return nil }

// replay runs reqs round-robin through h for b.N iterations, recording
// per-request wall time, and reports p50/p99 latency.
func replay(b *testing.B, h http.Handler, reqs []benchRequest) {
	lat := make([]time.Duration, 0, b.N)
	w := &nullWriter{h: make(http.Header, 4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := &reqs[i%len(reqs)]
		br.body.Seek(0, io.SeekStart)
		br.req.Body = readCloser{br.body}
		w.status = 0
		start := time.Now()
		h.ServeHTTP(w, br.req)
		lat = append(lat, time.Since(start))
		if w.status != 0 && w.status != http.StatusOK {
			b.Fatalf("request %d: status %d", i, w.status)
		}
	}
	b.StopTimer()
	reportPercentiles(b, lat)
}

func reportPercentiles(b *testing.B, lat []time.Duration) {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return float64(lat[i]) / float64(time.Millisecond)
	}
	b.ReportMetric(pct(0.50), "p50_ms")
	b.ReportMetric(pct(0.99), "p99_ms")
}

// BenchmarkServeEstimate drives /v1/estimate with every distinct
// corpus phrase. `full` is the whole stack including middleware;
// `hot` is the pooled per-request path the 0 allocs/op gate covers.
func BenchmarkServeEstimate(b *testing.B) {
	s := newBenchServer(b)
	var bodies [][]byte
	seen := map[string]bool{}
	for _, rec := range benchCorpus(b) {
		for _, phrase := range rec.Ingredients {
			if seen[phrase] {
				continue
			}
			seen[phrase] = true
			body, err := json.Marshal(EstimateRequest{Phrase: phrase})
			if err != nil {
				b.Fatal(err)
			}
			bodies = append(bodies, body)
		}
	}

	b.Run("full", func(b *testing.B) {
		h := s.Handler()
		reqs := make([]benchRequest, len(bodies))
		for i, body := range bodies {
			reqs[i] = newBenchRequest("/v1/estimate", body)
		}
		replay(b, h, reqs)
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "phrases/s")
	})

	b.Run("hot", func(b *testing.B) {
		sc := getServeScratch()
		defer putServeScratch(sc)
		ctx := context.Background()
		readers := make([]*bytes.Reader, len(bodies))
		for i, body := range bodies {
			readers[i] = bytes.NewReader(body)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % len(bodies)
			readers[j].Seek(0, io.SeekStart)
			status, out := s.estimateHot(sc, ctx, readers[j])
			if status != http.StatusOK || len(out) == 0 {
				b.Fatalf("status %d, %d body bytes", status, len(out))
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "phrases/s")
	})
}

// BenchmarkServeRecipe drives /v1/recipe with the 25 golden recipes.
// phrases/s counts ingredient phrases so the number is comparable with
// BenchmarkServeEstimate and BenchmarkEstimateBatch.
func BenchmarkServeRecipe(b *testing.B) {
	s := newBenchServer(b)
	recipes := benchCorpus(b)
	bodies := make([][]byte, len(recipes))
	var phrases int
	for i, rec := range recipes {
		body, err := json.Marshal(rec)
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
		phrases += len(rec.Ingredients)
	}
	meanPhrases := float64(phrases) / float64(len(recipes))

	b.Run("full", func(b *testing.B) {
		h := s.Handler()
		reqs := make([]benchRequest, len(bodies))
		for i, body := range bodies {
			reqs[i] = newBenchRequest("/v1/recipe", body)
		}
		replay(b, h, reqs)
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "recipes/s")
		b.ReportMetric(meanPhrases*float64(b.N)/b.Elapsed().Seconds(), "phrases/s")
	})

	b.Run("hot", func(b *testing.B) {
		sc := getServeScratch()
		defer putServeScratch(sc)
		ctx := context.Background()
		readers := make([]*bytes.Reader, len(bodies))
		for i, body := range bodies {
			readers[i] = bytes.NewReader(body)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % len(bodies)
			readers[j].Seek(0, io.SeekStart)
			status, out := s.recipeHot(sc, ctx, readers[j])
			if status != http.StatusOK || len(out) == 0 {
				b.Fatalf("status %d, %d body bytes", status, len(out))
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "recipes/s")
		b.ReportMetric(meanPhrases*float64(b.N)/b.Elapsed().Seconds(), "phrases/s")
	})
}
