package server

// Race/stress coverage for the serving layer: 32 goroutines hammer one
// shared server with mixed traffic while a sampler asserts the metrics
// counters stay monotonic, then a second pass drives traffic INTO a
// graceful shutdown and proves no accepted request is ever lost (every
// issued request gets exactly one terminal outcome, and the metrics
// agree with the client-side tally). Run in CI under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressMixedRoutes: 32 goroutines × mixed routes against a shared
// handler. Asserts: every request gets a terminal response, 200s only
// shed to 429 (never 5xx), and the registry's totals equal the
// client-side request count afterwards.
func TestStressMixedRoutes(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 16 // small enough that shedding actually happens
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		goroutines = 32
		perG       = 40
	)
	recipeBody := []byte(`{"ingredients":["2 cups flour","1 cup sugar","2 eggs","1 tsp salt"],"servings":4}`)
	estimateBody := []byte(`{"phrase":"2 cups all-purpose flour"}`)

	var issued, ok200, shed429, badOther atomic.Int64
	stopSampler := make(chan struct{})
	samplerDone := make(chan error, 1)

	// Sampler: GET /v1/stats concurrently with the storm, asserting
	// every sampled counter is non-decreasing.
	go func() {
		var prevTotal, prevShed uint64
		client := ts.Client()
		for {
			select {
			case <-stopSampler:
				samplerDone <- nil
				return
			default:
			}
			resp, err := client.Get(ts.URL + "/v1/stats")
			if err != nil {
				samplerDone <- fmt.Errorf("stats during storm: %w", err)
				return
			}
			var st StatsResponse
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				samplerDone <- fmt.Errorf("stats decode: %w", err)
				return
			}
			total := st.HTTP.TotalRequests()
			if total < prevTotal || st.HTTP.Shed < prevShed {
				samplerDone <- fmt.Errorf("metrics went backwards: total %d→%d shed %d→%d",
					prevTotal, total, prevShed, st.HTTP.Shed)
				return
			}
			prevTotal, prevShed = total, st.HTTP.Shed
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perG; i++ {
				issued.Add(1)
				var resp *http.Response
				var err error
				switch i % 3 {
				case 0:
					resp, err = client.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(estimateBody))
				case 1:
					resp, err = client.Post(ts.URL+"/v1/recipe", "application/json", bytes.NewReader(recipeBody))
				default:
					resp, err = client.Get(ts.URL + "/v1/healthz")
				}
				if err != nil {
					t.Errorf("g%d req %d: %v", g, i, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					shed429.Add(1)
				default:
					badOther.Add(1)
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopSampler)
	if err := <-samplerDone; err != nil {
		t.Fatal(err)
	}

	if got := ok200.Load() + shed429.Load() + badOther.Load(); got != issued.Load() {
		t.Fatalf("lost responses: %d outcomes for %d requests", got, issued.Load())
	}
	if ok200.Load() == 0 {
		t.Fatal("no request succeeded")
	}

	// Post-storm accounting: the registry must have seen exactly the
	// issued requests (sampler GETs add to /v1/stats route count, so
	// compare only the three stormed routes).
	snap := s.Registry().Snapshot()
	stormTotal := snap.Routes["/v1/estimate"].Requests +
		snap.Routes["/v1/recipe"].Requests +
		snap.Routes["/v1/healthz"].Requests
	if stormTotal != uint64(issued.Load()) {
		t.Fatalf("registry saw %d storm-route requests, clients issued %d", stormTotal, issued.Load())
	}
	if snap.Shed != uint64(shed429.Load()) {
		t.Fatalf("registry shed %d, clients observed %d×429", snap.Shed, shed429.Load())
	}
	if snap.InFlight != 0 {
		t.Fatalf("in-flight gauge %d after storm, want 0", snap.InFlight)
	}
}

// TestStressConcurrentShutdown drives traffic into a graceful shutdown:
// clients hammer a live listener, the serve context is cancelled
// mid-storm, and afterwards every request must have one of exactly two
// outcomes — a complete HTTP response, or a transport error from the
// closed listener. A response that was accepted but never answered
// (lost in shutdown) would show up as a client hanging until test
// timeout; a torn response fails decoding.
func TestStressConcurrentShutdown(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInFlight = 32 })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, 10*time.Second) }()

	const goroutines = 32
	var answered, refused atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Fresh transport per goroutine: pooled keep-alive conns
			// are part of what graceful shutdown must drain.
			client := &http.Client{Timeout: 15 * time.Second}
			body := []byte(`{"ingredients":["2 cups flour","1 cup sugar","2 eggs"],"servings":2}`)
			<-start
			for i := 0; ; i++ {
				var resp *http.Response
				var err error
				switch i % 3 {
				case 0:
					resp, err = client.Post(url+"/v1/recipe", "application/json", bytes.NewReader(body))
				case 1:
					resp, err = client.Post(url+"/v1/estimate", "application/json",
						bytes.NewReader([]byte(`{"phrase":"1 cup sugar"}`)))
				default:
					resp, err = client.Get(url + "/v1/stats")
				}
				if err != nil {
					// Transport-level refusal: only legitimate once
					// shutdown has begun.
					if ctx.Err() == nil {
						t.Errorf("g%d: transport error before shutdown: %v", g, err)
					}
					refused.Add(1)
					return
				}
				// Fully read the body: a torn response decodes short.
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("g%d: torn response body: %v", g, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("g%d: status %d", g, resp.StatusCode)
				}
				answered.Add(1)
			}
		}(g)
	}

	close(start)
	time.Sleep(100 * time.Millisecond) // let the storm establish
	cancel()                           // graceful shutdown under load

	wg.Wait()
	if err := <-served; err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Serve: %v", err)
	}
	if answered.Load() == 0 {
		t.Fatal("no request completed before shutdown")
	}
	if refused.Load() == 0 {
		t.Fatal("storm never observed the closed listener; shutdown untested")
	}
	// Every handler that started also finished: the in-flight gauge is
	// back to zero and request totals are coherent.
	snap := s.Registry().Snapshot()
	if snap.InFlight != 0 {
		t.Fatalf("in-flight gauge %d after drain, want 0", snap.InFlight)
	}
	if total := snap.TotalRequests(); total < uint64(answered.Load()) {
		t.Fatalf("registry total %d below client-observed %d", total, answered.Load())
	}
}
