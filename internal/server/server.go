// Package server is the nutriserve HTTP serving layer: a stdlib-only
// JSON API over the core estimation pipeline, shaped for production
// traffic rather than demos. Every request passes through the same
// middleware stack — body-size limit, admission control, per-request
// deadline, metrics, structured access log — and every non-200 response
// carries a machine-readable error body.
//
// Admission control is a bounded semaphore over the two estimation
// routes: when MaxInFlight requests are already in the pipeline, new
// work is shed immediately with 429 + Retry-After instead of queuing
// unboundedly (queuing under overload only converts load into latency
// and memory; shedding keeps the served requests fast). /v1/healthz and
// /v1/stats bypass admission so probes and scrapes stay responsive
// exactly when the pipeline is saturated — the moment operators need
// them.
//
// Shutdown is graceful: Serve stops accepting connections on context
// cancellation (SIGTERM in cmd/nutriserve), drains in-flight requests
// up to the drain timeout, then exits. See DESIGN.md §9.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"nutriprofile/internal/core"
	"nutriprofile/internal/metrics"
)

// Config configures a Server. The zero value of every field selects a
// production-safe default; only Estimator is required.
type Config struct {
	// Estimator is the shared pipeline. Required.
	Estimator *core.Estimator
	// MaxInFlight bounds concurrently admitted estimation requests
	// (/v1/estimate + /v1/recipe combined). Excess load is shed with
	// 429. Default 64.
	MaxInFlight int
	// RequestTimeout is the per-request deadline; it propagates through
	// the request context into core's batch workers, so an expired
	// recipe stops consuming pipeline capacity. Default 5s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies; larger bodies get 413.
	// Default 1 MiB.
	MaxBodyBytes int64
	// Workers is the per-recipe ingredient worker pool size passed to
	// core (0: one per CPU).
	Workers int
	// RetryAfter is the hint sent with 429 responses. Default 1s.
	RetryAfter time.Duration
	// EnableReload exposes POST /admin/reload (loopback-only hot swap of
	// the serving database from a baked image). Off by default: a
	// process whose DB is baked into the binary has nothing to reload.
	EnableReload bool
	// BatchWindow is the number of NDJSON lines a /v1/batch stream
	// decodes, estimates and flushes per pipeline pass. Smaller windows
	// yield to interactive traffic more often; larger windows amortize
	// the per-window dispatch. Default 64.
	BatchWindow int
	// BatchWorkers bounds the estimator workers one bulk window runs on,
	// independent of Workers (interactive recipes): bulk is throughput
	// traffic and must leave cores for latency traffic. Default
	// GOMAXPROCS/2, minimum 1.
	BatchWorkers int
	// MaxBulkStreams bounds concurrently admitted /v1/batch streams.
	// Each stream also holds one MaxInFlight admission slot for its
	// whole life, so bulk can never occupy more than MaxBulkStreams
	// slots of the interactive budget. Default MaxInFlight/4, minimum 1.
	MaxBulkStreams int
	// AccessLog receives one structured line per request; nil disables
	// access logging.
	AccessLog *log.Logger
	// Registry collects request metrics; a fresh one is created when nil.
	Registry *metrics.Registry
}

func (c *Config) fill() error {
	if c.Estimator == nil {
		return errors.New("server: Config.Estimator is required")
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 64
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0) / 2
		if c.BatchWorkers < 1 {
			c.BatchWorkers = 1
		}
	}
	if c.MaxBulkStreams <= 0 {
		c.MaxBulkStreams = c.MaxInFlight / 4
		if c.MaxBulkStreams < 1 {
			c.MaxBulkStreams = 1
		}
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return nil
}

// Server serves the nutriserve API. Construct with New; a Server is
// safe for concurrent use and its Handler may back any number of
// listeners.
type Server struct {
	cfg Config
	est *core.Estimator
	reg *metrics.Registry
	// sem is the admission semaphore: a request holds one slot for its
	// full pipeline residence. Acquisition never blocks — a full
	// semaphore sheds the request.
	sem chan struct{}
	// bulkSem bounds concurrently open /v1/batch streams; a bulk stream
	// holds one bulkSem slot AND one sem slot, so interactive traffic
	// always keeps MaxInFlight - MaxBulkStreams admission slots to
	// itself (the starvation bound DESIGN.md §14 documents).
	bulkSem chan struct{}
	// drainCh closes when graceful shutdown begins. Bulk streams poll it
	// between windows (and while blocked on slow readers) so they can
	// end with an in-stream trailer instead of hanging the drain.
	drainCh   chan struct{}
	drainOnce sync.Once
	// runtime caches the stop-the-world MemStats read behind a 1 s TTL
	// so scraping /v1/stats hard cannot become a GC-pause generator.
	runtime *metrics.RuntimeSampler

	// testHookAdmitted, when set, runs after a request is admitted and
	// before the pipeline runs — test seam for holding slots open to
	// force deterministic sheds.
	testHookAdmitted func(route string)
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Server{
		cfg:     cfg,
		est:     cfg.Estimator,
		reg:     cfg.Registry,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		bulkSem: make(chan struct{}, cfg.MaxBulkStreams),
		drainCh: make(chan struct{}),
		runtime: metrics.NewRuntimeSampler(time.Second),
	}, nil
}

// startDrain flips the server into draining state (idempotent). Serve
// calls it when shutdown begins; tests may call it directly.
func (s *Server) startDrain() {
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Registry exposes the metrics registry backing /v1/stats.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the route mux with the full middleware stack applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/estimate", s.instrument("/v1/estimate", true, s.handleEstimate))
	mux.Handle("POST /v1/recipe", s.instrument("/v1/recipe", true, s.handleRecipe))
	mux.Handle("POST /v1/batch", s.instrumentBulk("/v1/batch", s.handleBatch))
	mux.Handle("GET /v1/healthz", s.instrument("/v1/healthz", false, s.handleHealthz))
	mux.Handle("GET /v1/stats", s.instrument("/v1/stats", false, s.handleStats))
	mux.Handle("GET /metrics", s.instrument("/metrics", false, s.handleMetrics))
	if s.cfg.EnableReload {
		// Unadmitted: a reload must go through exactly when the pipeline
		// is saturated, and it holds no estimation capacity.
		mux.Handle("POST /admin/reload", s.instrument("/admin/reload", false, s.handleReload))
	}
	return mux
}

// statusRecorder captures the status code and body size for metrics and
// access logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach through to the underlying
// writer — the bulk stream uses it for Flush and SetReadDeadline.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// observe finishes one request's middleware accounting: the latency
// observation and the structured access-log line. Deferred by both
// instrument and instrumentBulk.
func (s *Server) observe(route string, rt *metrics.Route, r *http.Request, rec *statusRecorder, start time.Time) {
	s.reg.DecInFlight()
	d := time.Since(start)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	rt.Observe(rec.status, d)
	if lg := s.cfg.AccessLog; lg != nil {
		lg.Printf("method=%s route=%s status=%d bytes=%d dur_ms=%.3f remote=%s",
			r.Method, route, rec.status, rec.bytes, float64(d)/float64(time.Millisecond), r.RemoteAddr)
	}
}

// shed rejects a request at admission with 429 + Retry-After.
func (s *Server) shed(w http.ResponseWriter, code, msg string) {
	s.reg.AddShed()
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeError(w, http.StatusTooManyRequests, code, msg)
}

// instrument wraps a route handler with the middleware stack: metrics +
// access log always; body limit, admission control and the per-request
// deadline only on estimation routes (admitted == true).
func (s *Server) instrument(route string, admitted bool, h http.HandlerFunc) http.Handler {
	rt := s.reg.Route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		s.reg.IncInFlight()
		defer s.observe(route, rt, r, rec, start)

		if !admitted {
			h(rec, r)
			return
		}

		// Shed before reading the body: a rejected request should cost
		// nothing but the header parse.
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.shed(rec, "overloaded",
				fmt.Sprintf("server at capacity (%d requests in flight); retry later", s.cfg.MaxInFlight))
			return
		}
		if hook := s.testHookAdmitted; hook != nil {
			hook(route)
		}

		r.Body = http.MaxBytesReader(rec, r.Body, s.cfg.MaxBodyBytes)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(rec, r.WithContext(ctx))
	})
}

// instrumentBulk is the middleware for the streaming bulk route. A bulk
// stream acquires one bulkSem slot (bounding open streams) and one
// admission slot (so the interactive semaphore sees bulk load), both
// non-blocking — at capacity the stream is shed exactly like an
// interactive request. What it deliberately does NOT get: no
// MaxBytesReader (the body is unbounded by design; MaxBodyBytes caps
// each line instead) and no per-request deadline (a 118k-line stream
// cannot fit one; windowing, drain polling and client disconnect bound
// its life).
func (s *Server) instrumentBulk(route string, h http.HandlerFunc) http.Handler {
	rt := s.reg.Route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		s.reg.IncInFlight()
		defer s.observe(route, rt, r, rec, start)

		select {
		case s.bulkSem <- struct{}{}:
			defer func() { <-s.bulkSem }()
		default:
			s.shed(rec, "bulk_capacity",
				fmt.Sprintf("server at bulk capacity (%d streams open); retry later", s.cfg.MaxBulkStreams))
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.shed(rec, "overloaded",
				fmt.Sprintf("server at capacity (%d requests in flight); retry later", s.cfg.MaxInFlight))
			return
		}
		if hook := s.testHookAdmitted; hook != nil {
			hook(route)
		}
		s.reg.IncBulkActive()
		defer s.reg.DecBulkActive()
		h(rec, r)
	})
}

// Serve runs the API on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// up to drain to complete, and stragglers are cut off. The returned
// error is nil on a clean drain, context.DeadlineExceeded when the
// drain timed out, or the listener failure that stopped the server.
func (s *Server) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	// Shutdown (below) stops the listener but does not cancel in-flight
	// request contexts, so admitted work finishes within the drain
	// window — the ordering DESIGN.md §9 documents.
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	// Signal bulk streams before Shutdown starts waiting on handlers:
	// they finish their current window, write a draining trailer line,
	// and return, so a bulk stream never pins the drain window open.
	s.startDrain()
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := hs.Shutdown(dctx)
	// Serve always returns ErrServerClosed after Shutdown; swallow it.
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

// ListenAndServe is Serve over a fresh TCP listener on addr.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln, drain)
}
