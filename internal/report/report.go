// Package report renders the experiment outputs in the layouts the paper
// uses: aligned text tables (Tables I–IV) and an ASCII bar histogram
// (Fig. 2).
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with a separator line under the header.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders a labeled horizontal ASCII bar chart. values and labels
// must be the same length; bars scale to maxWidth characters.
func Bar(labels []string, values []int, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	maxVal := 1
	labelW := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		bar := strings.Repeat("█", v*maxWidth/maxVal)
		if v > 0 && bar == "" {
			bar = "▏"
		}
		fmt.Fprintf(&b, "%-*s |%s %d\n", labelW, labels[i], bar, v)
	}
	return b.String()
}

// Pct formats a fraction as a percentage with two decimals ("94.49%").
func Pct(frac float64) string { return fmt.Sprintf("%.2f%%", 100*frac) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Section renders an underlined section heading.
func Section(title string) string {
	return title + "\n" + strings.Repeat("=", len(title)) + "\n"
}
