package report

import (
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	tb := NewTable("Ingredient", "Unit", "Grams")
	tb.AddRow("Butter,salted", "pat", "5.0")
	tb.AddRow("Butter,salted", "tbsp", "14.2")
	tb.AddRow("short")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Ingredient") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
	// Columns align: "pat" and "tbsp" start at the same offset.
	if strings.Index(lines[2], "pat") != strings.Index(lines[3], "tbsp") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	out := Bar([]string{"a", "bb"}, []int{10, 5}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 bars:\n%s", out)
	}
	if !strings.Contains(lines[0], "█") {
		t.Errorf("no bar glyphs: %q", lines[0])
	}
	if strings.Count(lines[0], "█") <= strings.Count(lines[1], "█") {
		t.Error("bar lengths not proportional")
	}
	if !strings.HasSuffix(lines[0], "10") {
		t.Errorf("missing count suffix: %q", lines[0])
	}
}

func TestBarTinyNonZero(t *testing.T) {
	out := Bar([]string{"x", "y"}, []int{1000, 1}, 30)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "▏") && !strings.Contains(lines[1], "█") {
		t.Errorf("nonzero value rendered invisible: %q", lines[1])
	}
}

func TestPctAndF2(t *testing.T) {
	if got := Pct(0.9449); got != "94.49%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F2(36.4249); got != "36.42" {
		t.Errorf("F2 = %q", got)
	}
}

func TestSection(t *testing.T) {
	out := Section("Results")
	if !strings.Contains(out, "Results\n=======") {
		t.Errorf("Section = %q", out)
	}
}
