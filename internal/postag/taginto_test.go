package postag

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestTagIntoMatchesTagPhrase pins the appending path to TagPhrase,
// including reuse of one destination buffer across calls.
func TestTagIntoMatchesTagPhrase(t *testing.T) {
	var dst []Tag
	check := func(s string) bool {
		tokens := strings.Fields(s)
		want := TagPhrase(tokens)
		dst = TagInto(dst[:0], tokens)
		if len(want) == 0 && len(dst) == 0 {
			return true
		}
		return reflect.DeepEqual(dst, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestLexiconPrecedence: the merged lexicon must reproduce the original
// case-chain precedence. "frozen" is in both the adjective and the
// participle inventories; the chain checked adjectives first, so it must
// tag ADJ.
func TestLexiconPrecedence(t *testing.T) {
	cases := []struct {
		tok  string
		want Tag
	}{
		{"frozen", Adj},   // adjective beats participle
		{"ground", Verb},  // participle only
		{"cut", Verb},     // participle only
		{"the", Det},      // determiner
		{"of", Prep},      // preposition
		{"and", Conj},     // conjunction
		{"to", Prep},      // preposition (also a filler downstream)
		{"fresh", Adj},    // adjective
		{"chopped", Verb}, // -ed suffix, not lexicon
		{"finely", Adv},   // -ly suffix
		{"flour", Noun},   // open-class default
	}
	for _, c := range cases {
		if got := Tagging(c.tok); got != c.want {
			t.Errorf("Tagging(%q) = %v, want %v", c.tok, got, c.want)
		}
	}
	// Every word of every source inventory must resolve to the tag the
	// original chain gave it (chain order: det > prep > conj > adj > verb).
	chain := func(w string) Tag {
		switch {
		case determiners[w]:
			return Det
		case prepositions[w]:
			return Prep
		case conjunctions[w]:
			return Conj
		case adjectives[w]:
			return Adj
		case participles[w]:
			return Verb
		}
		return NTags
	}
	for _, inventory := range []map[string]bool{determiners, prepositions, conjunctions, adjectives, participles} {
		for w := range inventory {
			if got, want := lexicon[w], chain(w); got != want {
				t.Errorf("lexicon[%q] = %v, want chain order %v", w, got, want)
			}
		}
	}
}

// TestSuffixRuleBounds pins the strict length bounds the inline checks
// used: "ly"/"ed" need >3/>4 total runes respectively.
func TestSuffixRuleBounds(t *testing.T) {
	cases := []struct {
		tok  string
		want Tag
	}{
		{"ly", Noun}, {"fly", Noun}, {"only", Adv},
		{"ed", Noun}, {"red", Adj}, {"bed", Noun}, {"aged", Noun}, {"diced", Verb},
		{"ing", Noun}, {"king", Noun}, {"icing", Verb},
	}
	for _, c := range cases {
		if got := Tagging(c.tok); got != c.want {
			t.Errorf("Tagging(%q) = %v, want %v", c.tok, got, c.want)
		}
	}
}
