// Package postag is a coarse part-of-speech tagger for ingredient phrases.
//
// The paper (§II-A) uses POS tagging only to build frequency vectors that
// represent each ingredient phrase ("A vector representing an ingredient
// phrase would be defined by the frequency of the tag in the ingredient
// phrase"); the vectors are then clustered to select a diverse NER
// train/test corpus. A coarse lexicon-plus-suffix tagger preserves exactly
// that signal, substituting for NLTK's tagger without external models.
package postag

import (
	"strings"
	"unicode"
)

// Tag is a coarse part-of-speech label.
type Tag uint8

// The coarse tag inventory. NTags is the vector dimensionality used by the
// clustering step.
const (
	Noun Tag = iota
	Verb
	Adj
	Adv
	Num
	Det
	Prep
	Conj
	Punct
	Other
	NTags
)

var tagNames = [NTags]string{
	"NOUN", "VERB", "ADJ", "ADV", "NUM", "DET", "PREP", "CONJ", "PUNCT", "OTHER",
}

// String returns the conventional upper-case tag name.
func (t Tag) String() string {
	if t < NTags {
		return tagNames[t]
	}
	return "INVALID"
}

var determiners = map[string]bool{
	"a": true, "an": true, "the": true, "each": true, "some": true,
	"any": true, "all": true, "this": true, "that": true, "these": true,
	"those": true,
}

var prepositions = map[string]bool{
	"of": true, "in": true, "on": true, "at": true, "with": true,
	"without": true, "for": true, "from": true, "to": true, "into": true,
	"per": true, "about": true, "over": true, "under": true, "by": true,
}

var conjunctions = map[string]bool{
	"and": true, "or": true, "but": true, "nor": true, "plus": true,
}

// adjectives covers the descriptive words that dominate ingredient phrases:
// sizes, temperatures, dryness, colours and quality descriptors. These are
// exactly the words that become SIZE/TEMP/DF/STATE entities downstream, so
// tagging them ADJ gives the clustering step its discriminative signal.
var adjectives = map[string]bool{
	"small": true, "medium": true, "large": true, "extra-large": true,
	"jumbo": true, "big": true, "little": true, "thin": true, "thick": true,
	"fresh": true, "dried": true, "dry": true, "frozen": true, "cold": true,
	"hot": true, "warm": true, "lukewarm": true, "chilled": true,
	"lean": true, "fat": true, "low-fat": true, "nonfat": true,
	"fat-free": true, "skim": true, "whole": true, "half": true,
	"boneless": true, "skinless": true, "seedless": true, "unsalted": true,
	"salted": true, "sweet": true, "sour": true, "bitter": true,
	"ripe": true, "raw": true, "cooked": true, "uncooked": true,
	"fine": true, "coarse": true, "soft": true, "firm": true, "hard": true,
	"light": true, "dark": true, "golden": true, "red": true, "green": true,
	"yellow": true, "white": true, "black": true, "brown": true,
	"all-purpose": true, "self-rising": true, "instant": true,
	"plain": true, "pure": true, "heavy": true, "mild": true, "spicy": true,
	"hard-cooked": true, "hard-boiled": true, "soft-boiled": true,
	"reduced-fat": true, "low-sodium": true, "sodium-free": true,
	"sugar-free": true, "gluten-free": true, "extra-virgin": true,
	"stale": true, "day-old": true, "new": true, "young": true, "baby": true,
}

// participles covers cooking-state verb forms that do not end in -ed/-ing.
var participles = map[string]bool{
	"ground": true, "beaten": true, "frozen": true, "cut": true,
	"split": true, "slit": true, "shucked": true, "torn": true,
	"broken": true, "drawn": true, "melted": true,
}

// lexicon merges the closed-class word lists into one map so Tagging does
// a single probe instead of five. Insertion order mirrors the precedence
// of the original case chain (determiner > preposition > conjunction >
// adjective > participle): first writer wins, so a word listed in two
// classes ("frozen" is both adjective and participle) keeps the tag the
// chain would have produced.
var lexicon = make(map[string]Tag, 160)

func addLexicon(words map[string]bool, t Tag) {
	for w := range words {
		if _, ok := lexicon[w]; !ok {
			lexicon[w] = t
		}
	}
}

func init() {
	addLexicon(determiners, Det)
	addLexicon(prepositions, Prep)
	addLexicon(conjunctions, Conj)
	addLexicon(adjectives, Adj)
	addLexicon(participles, Verb)
}

// suffixRules is the morphological fallback for open-class words, applied
// in order after the lexicon misses. minLen is the strict lower bound on
// token length the original inline checks used (len(tok) > n).
var suffixRules = [...]struct {
	suffix string
	minLen int
	tag    Tag
}{
	{"ly", 3, Adv},
	{"ed", 4, Verb},
	{"ing", 4, Verb},
}

// Tagging returns the coarse POS tag for one (lower-cased) token.
func Tagging(tok string) Tag {
	switch {
	case tok == "":
		return Other
	case isPunct(tok):
		return Punct
	case isNumeric(tok):
		return Num
	}
	if t, ok := lexicon[tok]; ok {
		return t
	}
	for _, r := range suffixRules {
		if len(tok) > r.minLen && strings.HasSuffix(tok, r.suffix) {
			return r.tag
		}
	}
	if !startsWithLetter(tok) {
		return Other
	}
	return Noun
}

// TagPhrase tags every token of a pre-tokenized phrase.
func TagPhrase(tokens []string) []Tag {
	return TagInto(make([]Tag, 0, len(tokens)), tokens)
}

// TagInto is TagPhrase appending into dst, so hot paths can reuse one
// tag buffer across phrases instead of allocating per call.
func TagInto(dst []Tag, tokens []string) []Tag {
	for _, t := range tokens {
		dst = append(dst, Tagging(t))
	}
	return dst
}

// FrequencyVector returns the per-tag frequency vector of a tagged phrase,
// the phrase representation clustered in §II-A. The vector is normalized
// by phrase length so phrases of different lengths are comparable.
func FrequencyVector(tags []Tag) []float64 {
	v := make([]float64, NTags)
	if len(tags) == 0 {
		return v
	}
	for _, t := range tags {
		if t < NTags {
			v[t]++
		}
	}
	inv := 1.0 / float64(len(tags))
	for i := range v {
		v[i] *= inv
	}
	return v
}

func isPunct(tok string) bool {
	if len(tok) != 1 {
		return false
	}
	r := rune(tok[0])
	return !unicode.IsLetter(r) && !unicode.IsDigit(r)
}

func isNumeric(tok string) bool {
	hasDigit := false
	for _, r := range tok {
		switch {
		case unicode.IsDigit(r):
			hasDigit = true
		case r == '.' || r == '/' || r == '-':
			// fraction, decimal or range punctuation inside a number
		default:
			return false
		}
	}
	return hasDigit
}

func startsWithLetter(tok string) bool {
	for _, r := range tok {
		return unicode.IsLetter(r)
	}
	return false
}
