package postag

import (
	"math"
	"testing"
	"testing/quick"

	"nutriprofile/internal/textutil"
)

func TestTagging(t *testing.T) {
	cases := []struct {
		tok  string
		want Tag
	}{
		{"1/2", Num},
		{"2-4", Num},
		{"2.5", Num},
		{"500", Num},
		{"beef", Noun},
		{"onion", Noun},
		{"chopped", Verb},
		{"ground", Verb},
		{"finely", Adv},
		{"freshly", Adv},
		{"small", Adj},
		{"fresh", Adj},
		{"lean", Adj},
		{"hard-cooked", Adj},
		{"all-purpose", Adj},
		{"the", Det},
		{"with", Prep},
		{"without", Prep},
		{"or", Conj},
		{",", Punct},
		{"(", Punct},
		{"", Other},
	}
	for _, c := range cases {
		if got := Tagging(c.tok); got != c.want {
			t.Errorf("Tagging(%q) = %v, want %v", c.tok, got, c.want)
		}
	}
}

func TestTagPhraseTableI(t *testing.T) {
	// The first Table I phrase: "1/2 lb lean ground beef".
	toks := textutil.Tokenize("1/2 lb lean ground beef")
	tags := TagPhrase(toks)
	want := []Tag{Num, Noun, Adj, Verb, Noun}
	for i := range want {
		if tags[i] != want[i] {
			t.Errorf("tag[%d] (%q) = %v, want %v", i, toks[i], tags[i], want[i])
		}
	}
}

func TestFrequencyVector(t *testing.T) {
	tags := []Tag{Num, Noun, Noun, Adj}
	v := FrequencyVector(tags)
	if len(v) != int(NTags) {
		t.Fatalf("vector length = %d, want %d", len(v), NTags)
	}
	if v[Num] != 0.25 || v[Noun] != 0.5 || v[Adj] != 0.25 {
		t.Errorf("vector = %v", v)
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("vector sum = %v, want 1", sum)
	}
}

func TestFrequencyVectorEmpty(t *testing.T) {
	v := FrequencyVector(nil)
	for i, x := range v {
		if x != 0 {
			t.Errorf("empty vector[%d] = %v, want 0", i, x)
		}
	}
}

func TestTagString(t *testing.T) {
	if Noun.String() != "NOUN" || Punct.String() != "PUNCT" {
		t.Error("Tag.String misnamed")
	}
	if Tag(250).String() != "INVALID" {
		t.Error("out-of-range Tag should stringify as INVALID")
	}
}

// Property: frequency vectors are probability distributions (non-negative,
// sum to 1 for non-empty input).
func TestFrequencyVectorProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		tags := make([]Tag, len(raw))
		for i, r := range raw {
			tags[i] = Tag(r % uint8(NTags))
		}
		v := FrequencyVector(tags)
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1.0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Tagging is total — every string gets a valid tag.
func TestTaggingTotal(t *testing.T) {
	f := func(s string) bool {
		return Tagging(s) < NTags
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
