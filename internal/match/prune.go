package match

// The candidate-pruned ranking engine (DESIGN.md §16). rankCandsPruned
// produces byte-identical results to rankCandsExhaustive — the
// straight-line engine kept as the executable spec behind
// Options.DisablePruning — while doing strictly less posting work on
// three classical IR axes:
//
//  1. df-ordered term scheduling. Scored terms are processed
//     rarest-first (anchor terms — the only terms allowed to CREATE
//     candidates — strictly before the folded STATE/TEMP/DF terms), so
//     the accumulators are as discriminating as possible before the
//     long stop-word-like posting lists arrive. Accumulation is
//     commutative integer addition, so any processing order yields the
//     same final counters; order only decides how early the pruning
//     bars engage.
//
//  2. A merged gather+score pass. The exhaustive engine walks every
//     anchor posting list twice — once to mark candidates, once to
//     score them. Here the anchor walk accumulates as it marks, so a
//     query whose heaviest term sits in the NAME itself ("raw chicken")
//     pays for that term's posting list exactly once.
//
//  3. Adaptive posting-vs-candidate scoring. A term in update-only mode
//     must only touch documents that are already candidates. When its
//     posting list is ≥ probeCrossover× longer than the live candidate
//     set, the engine binary-probes the posting list once per candidate
//     (O(|touched|·log df)) instead of walking it (O(df)) — killing the
//     pathology where a 3-candidate anchor set pays a 2,000-entry "raw"
//     posting scan. The posting list is probed rather than the doc's
//     term IDSet because the §II-B(h) priority lives in the posting
//     entry; presence alone would not reproduce the tie-break chain.
//
//  4. Quit/continue early termination (Modified Jaccard, bounded k).
//     Under J* = |A∩B|/|A| every scored term contributes exactly 1/|A|,
//     so intersection COUNTS order scores exactly and two integer bars
//     are available:
//
//     gather→update: before anchor term i (of T total scored terms), a
//     document not yet touched can finish with at most T−i
//     intersections. If at least k live candidates already hold
//     strictly more (worst-at-root bar B > T−i), no unseen document can
//     ever displace them — switch to update-only mode and stop
//     materializing new accumulators for the remaining long-tail terms.
//
//     compaction: in update-only mode, with r terms still unapplied, a
//     candidate with inter+r < B is strictly dominated by ≥ k live
//     candidates and is dropped (unstamped + removed from touched), so
//     late long-tail terms and the final selection scan only survivors.
//
// Exactness of the bars despite the raw-bonus/priority/doc-order
// tie-break chain: both bars demand a STRICT intersection-count
// deficit. Under Modified Jaccard inter_x > inter_y implies
// score_x > score_y (same positive divisor |A|; the counts are tiny
// integers, so float division preserves strict order), and `better`
// consults the tie-break chain only on EQUAL scores — a strictly
// dominated candidate loses to all k witnesses no matter how its raw
// bonus, priority sum or database index compare. Ties (inter+r == B)
// are always kept. The witnesses themselves are never dropped
// (inter ≥ B > inter+r is unsatisfiable for them) and only ever gain
// intersections, so the final selection provably contains the same k
// results, with bit-identical scores, priorities and raw flags, in the
// same total order. Vanilla Jaccard divides by |A∪B|, which varies per
// document, so intersection counts do not order scores across
// documents: the bars stay off (useBar == false) and vanilla queries
// keep df-ordering, the merged gather pass and adaptive probing only —
// all of which are order/lookup changes with identical arithmetic.
//
// MinScore interacts safely with both bars: a dropped candidate either
// fails the MinScore filter (and was never returned by the spec
// engine) or passes it — in which case its k strict dominators pass it
// too and fill the selection ahead of it.

// probeCrossover is the adaptive scoring heuristic: an update-only term
// is binary-probed per candidate instead of walked when its posting
// list is at least this many times longer than the live candidate set.
// A probe costs ~log2(df) branchy comparisons against the walk's one
// sequential load per posting, so the ratio is set well above break-even
// to keep the walk — which also prefetches — on all close calls.
const probeCrossover = 8

// Compaction gates: a compaction pass costs O(|touched|), so it only
// runs when the candidate set is big enough for drops to pay for the
// scan, both absolutely and relative to k.
const (
	compactMinTouched = 64
	compactMinFanout  = 4
)

// schedTerm is one scored term in the df-ordered schedule.
type schedTerm struct {
	id     uint32
	df     int32
	anchor bool
}

// schedBefore orders the term schedule: anchor terms first (they alone
// may create candidates, so they must all run before any candidate set
// is considered final), rarest-first within each group, term ID as the
// deterministic tail key. The order is a pure performance choice —
// accumulation commutes — so any total order here is exact.
func schedBefore(x, y schedTerm) bool {
	if x.anchor != y.anchor {
		return x.anchor
	}
	if x.df != y.df {
		return x.df < y.df
	}
	return x.id < y.id
}

// pruneLocal batches one query's prune counters; flushed to the
// matcher's atomics once per query so the warm path pays a handful of
// atomic adds, not one per decision.
type pruneLocal struct {
	termsSkipped    uint64
	postingsAvoided uint64
	docsDropped     uint64
	compactions     uint64
	probeTerms      uint64
	gatherExit      bool
}

// kthInter returns the k-th largest live intersection count from the
// bar histogram (hist[v] = number of live candidates with inter == v),
// or 0 when fewer than k candidates are live — 0 disables both bars,
// since they require a strict excess.
func kthInter(hist []int32, k int) int32 {
	n := int32(0)
	for v := len(hist) - 1; v >= 1; v-- {
		n += hist[v]
		if n >= int32(k) {
			return int32(v)
		}
	}
	return 0
}

// rankCandsPruned is the adaptive early-termination ranking engine.
// See the file comment for the exactness argument; the golden, fuzz and
// metamorphic differentials in prune_test.go pin it to the exhaustive
// spec byte-for-byte.
func (m *Matcher) rankCandsPruned(a *arena, q Query, k int) []cand {
	if !a.prepare(m, q) {
		return nil
	}

	// Build the df-ordered schedule from the scored in-vocabulary terms.
	// Under NameAnchoring the anchor IDs are a sorted subset of a.ids;
	// without it every scored term is an anchor.
	sched := a.sched[:0]
	for _, t := range a.ids {
		anchor := true
		if m.opts.NameAnchoring {
			anchor = containsID(a.anchorIDs, t)
		}
		sched = append(sched, schedTerm{id: t, df: m.postOff[t+1] - m.postOff[t], anchor: anchor})
	}
	// Queries are phrase-sized, so insertion sort beats sort.Slice and
	// allocates nothing.
	for i := 1; i < len(sched); i++ {
		for j := i; j > 0 && schedBefore(sched[j], sched[j-1]); j-- {
			sched[j], sched[j-1] = sched[j-1], sched[j]
		}
	}
	a.sched = sched

	// The bars need intersection counts to order scores exactly, which
	// only Modified Jaccard guarantees, and a bounded selection to bar
	// against.
	useBar := k > 0 && m.opts.Metric == ModifiedJaccard
	var hist []int32
	if useBar {
		need := len(a.ids) + 1
		if cap(a.histo) < need {
			a.histo = make([]int32, need)
		}
		hist = a.histo[:need]
		clear(hist)
	}

	epoch := a.nextEpoch()
	touched := a.touched[:0]
	total := len(sched)
	gather := true
	var pc pruneLocal

	for i, st := range sched {
		if st.anchor && gather {
			// Gather→update bar: an untouched document can finish with at
			// most total−i intersections (this term plus everything after).
			// If the k-th best live candidate strictly beats that, no new
			// candidate can enter the selection — stop creating them.
			if useBar && kthInter(hist, k) > int32(total-i) {
				gather = false
				pc.gatherExit = true
			}
		}
		if st.anchor && gather {
			// Gather mode: the merged gather+score walk. Every posting must
			// be visited — any document here is a live candidate.
			off, end := m.postOff[st.id], m.postOff[st.id+1]
			docs := m.postDocs[off:end]
			pris := m.postPri[off:end]
			for j, d := range docs {
				e := &a.acc[d]
				if e.stamp != epoch {
					*e = accEntry{stamp: epoch, inter: 1, pri: pris[j]}
					touched = append(touched, d)
					if hist != nil {
						hist[1]++
					}
				} else {
					v := e.inter
					e.inter = v + 1
					e.pri += pris[j]
					if hist != nil {
						hist[v]--
						hist[v+1]++
					}
				}
			}
			continue
		}

		// Update-only mode: no anchor term can create candidates anymore
		// (either they are exhausted — anchors sort first — or the gather
		// bar retired them), so dropped documents can never resurface and
		// compaction is exact.
		if len(touched) == 0 {
			// No candidates at all: nothing left can score, and the spec
			// engine would return the same empty selection.
			for _, rest := range sched[i:] {
				pc.termsSkipped++
				pc.postingsAvoided += uint64(rest.df)
			}
			break
		}
		if useBar && len(touched) >= compactMinTouched && len(touched) > compactMinFanout*k {
			// Compaction: r = this term plus everything after it.
			// A touched doc has inter ≥ 1, so a drop (inter+r < bar)
			// requires bar ≥ r+2 — skip the touched walk entirely when
			// the bar cannot be that discriminating yet.
			r := int32(total - i)
			if bar := kthInter(hist, k); bar >= r+2 {
				pc.compactions++
				keep := touched[:0]
				for _, d := range touched {
					e := &a.acc[d]
					if e.inter+r < bar {
						e.stamp = epoch - 1 // unmark: walks and selection skip it
						hist[e.inter]--
						pc.docsDropped++
					} else {
						keep = append(keep, d)
					}
				}
				touched = keep
			}
		}

		off, end := m.postOff[st.id], m.postOff[st.id+1]
		docs := m.postDocs[off:end]
		pris := m.postPri[off:end]
		if int(st.df) > probeCrossover*len(touched) {
			// Candidate-probe mode: binary-search each live candidate in
			// the posting list instead of scanning it.
			pc.probeTerms++
			pc.postingsAvoided += uint64(len(docs))
			for _, d := range touched {
				lo, hi := 0, len(docs)
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if docs[mid] < d {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				if lo < len(docs) && docs[lo] == d {
					e := &a.acc[d]
					v := e.inter
					e.inter = v + 1
					e.pri += pris[lo]
					if hist != nil {
						hist[v]--
						hist[v+1]++
					}
				}
			}
			continue
		}
		// Posting-walk mode: the classic TAAT update over stamped docs.
		for j, d := range docs {
			e := &a.acc[d]
			if e.stamp == epoch {
				v := e.inter
				e.inter = v + 1
				e.pri += pris[j]
				if hist != nil {
					hist[v]--
					hist[v+1]++
				}
			}
		}
	}
	a.touched = touched
	if len(touched) == 0 {
		m.flushPrune(&pc)
		return nil
	}

	// Selection bar: with every term applied, the histogram holds the
	// FINAL intersection counts, so the k-th largest is an exact floor —
	// a candidate strictly below it is outranked by ≥ k candidates at or
	// above it (strict count ⇒ strict score under J*; MinScore filters
	// dominators and dominated alike) and is skipped with one integer
	// compare instead of a float score, filter and heap round-trip.
	finalBar := int32(0)
	if useBar {
		finalBar = kthInter(hist, k)
	}

	// Score, filter and select — identical arithmetic and total order to
	// the exhaustive spec, over the surviving candidates.
	sel := a.cands[:0]
	vanilla := m.opts.Metric == VanillaJaccard
	scoredLen := float64(a.scoredLen)
	for _, d := range a.touched {
		e := &a.acc[d]
		inter := e.inter
		if inter < finalBar {
			pc.docsDropped++
			continue
		}
		var score float64
		if vanilla {
			score = float64(inter) / (scoredLen + float64(m.docLen(d)) - float64(inter))
		} else {
			score = float64(inter) / scoredLen
		}
		if score < m.opts.MinScore {
			continue
		}
		c := cand{score: score, pri: e.pri, doc: d, raw: a.rawEligible && m.hasRaw[d]}
		if k <= 0 || len(sel) < k {
			sel = append(sel, c)
			if k > 0 && len(sel) == k {
				heapifyWorst(sel, m)
			}
			continue
		}
		if m.better(c, sel[0]) {
			sel[0] = c
			siftWorst(sel, 0, len(sel), m)
		}
	}
	a.cands = sel
	sortCands(sel, m)
	m.flushPrune(&pc)
	return sel
}

// containsID reports whether sorted holds id (binary search; anchor
// sets are SortDedupIDs output).
func containsID(sorted []uint32, id uint32) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == id
}

// flushPrune lands one query's batched prune counters in the matcher's
// lifetime atomics; zero counters cost nothing.
func (m *Matcher) flushPrune(pc *pruneLocal) {
	if pc.termsSkipped != 0 {
		m.pruneTermsSkipped.Add(pc.termsSkipped)
	}
	if pc.postingsAvoided != 0 {
		m.prunePostingsAvoided.Add(pc.postingsAvoided)
	}
	if pc.docsDropped != 0 {
		m.pruneDocsDropped.Add(pc.docsDropped)
	}
	if pc.compactions != 0 {
		m.pruneCompactions.Add(pc.compactions)
	}
	if pc.probeTerms != 0 {
		m.adaptiveProbeTerms.Add(pc.probeTerms)
	}
	if pc.gatherExit {
		m.pruneGatherExits.Add(1)
	}
}
