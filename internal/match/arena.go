package match

import "nutriprofile/internal/textutil"

// oovID marks a normalized query word that appears in no description.
// Out-of-vocabulary words still count toward |A| (and the vanilla-Jaccard
// union) exactly as they did in string space — they simply can never
// intersect, so they own no posting list and no real term ID.
const oovID = ^uint32(0)

// arena is the per-query scratch state Rank scores into. One arena holds
// dense per-document accumulators (intersection count and priority sum)
// plus every slice the query-preparation and selection phases need, so a
// warm query allocates nothing: arenas are recycled through the
// Matcher's sync.Pool and all slices are re-sliced to length 0, never
// freed.
//
// The accumulators are epoch-stamped: stamp[d] == epoch means document
// d's counters belong to the current query, anything else is stale
// garbage from an earlier query that costs nothing to "clear". The
// epoch counter bumping per query replaces an O(docs) memset; on the
// (once per 4 billion queries) wraparound the stamps are actually
// cleared once and the epoch restarts at 1.
type arena struct {
	epoch uint32
	stamp []uint32 // stamp[d] == epoch ⇔ inter[d]/pri[d] are live
	inter []int32  // |A ∩ doc| accumulator, by document index
	pri   []int32  // Σ matched-term priorities (§II-B(h)), by document

	touched []int32 // documents marked live this query (anchor hits)
	cands   []cand  // selection buffer for the bounded top-k heap

	// Pruned-engine scratch (prune.go): packed per-document accumulators
	// (one cache line instead of three per doc touch — the walks access
	// documents randomly, so stamp/inter/pri on one 12-byte entry halve
	// the engine's memory traffic versus the spec's parallel arrays),
	// the df-ordered term schedule, and the histogram of live candidates'
	// intersection counts the bar tests read. Grown on demand and reused
	// across queries like every other arena slice.
	acc   []accEntry
	sched []schedTerm
	histo []int32

	// Query-preparation scratch (see prepare).
	toks      []string // raw lower-cased word tokens
	norm      []string // normalized tokens, name first then extras
	words     []string // distinct scored words (string space, |A| = len)
	wordIDs   []uint32 // words' term IDs, oovID for unindexed words
	ids       []uint32 // distinct in-vocabulary scored term IDs
	anchorIDs []uint32 // term IDs candidates must contain one of

	scoredLen   int  // |A|, counting out-of-vocabulary words
	rawEligible bool // §II-B(g) provision applies to this query
}

// accEntry is the pruned engine's per-document accumulator: the epoch
// stamp and both counters on a single cache line.
type accEntry struct {
	stamp uint32 // == arena epoch ⇔ inter/pri are live this query
	inter int32  // |A ∩ doc|
	pri   int32  // Σ matched-term priorities (§II-B(h))
}

func newArena(docs int) *arena {
	return &arena{
		stamp: make([]uint32, docs),
		inter: make([]int32, docs),
		pri:   make([]int32, docs),
		acc:   make([]accEntry, docs),
	}
}

// nextEpoch starts a new query's accumulator generation.
func (a *arena) nextEpoch() uint32 {
	a.epoch++
	if a.epoch == 0 { // wraparound: invalidate stale stamps for real
		clear(a.stamp)
		clear(a.acc)
		a.epoch = 1
	}
	return a.epoch
}

// prepare normalizes the query into ID space: the distinct scored word
// set A of §II-B(e) (words, wordIDs, scoredLen), the in-vocabulary
// scoring terms (ids), the anchor terms candidates must share (anchorIDs,
// per §II-B(a) name anchoring when enabled), and the §II-B(g) raw
// eligibility. It reports false when the anchor set is empty — the query
// has no matchable content, mirroring the anchor.Len() == 0 early return
// of the string-space implementation.
func (a *arena) prepare(m *Matcher, q Query) bool {
	a.norm, a.toks = appendNormalizedTokens(a.norm[:0], q.Name, a.toks)
	nameLen := len(a.norm)
	if q.State != "" {
		a.norm, a.toks = appendNormalizedTokens(a.norm, q.State, a.toks)
	}
	if q.Temp != "" {
		a.norm, a.toks = appendNormalizedTokens(a.norm, q.Temp, a.toks)
	}
	if q.DryFresh != "" {
		a.norm, a.toks = appendNormalizedTokens(a.norm, q.DryFresh, a.toks)
	}

	// Distinct scored words. Queries are phrase-sized (a handful of
	// words), so linear-scan dedup beats any map both in time and in
	// allocations.
	a.words = a.words[:0]
	a.wordIDs = a.wordIDs[:0]
	rawInScored := false
	for _, w := range a.norm {
		dup := false
		for _, seen := range a.words {
			if seen == w {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		a.words = append(a.words, w)
		id, ok := m.vocab.Lookup(w)
		if !ok {
			id = oovID
		}
		a.wordIDs = append(a.wordIDs, id)
		if w == "raw" {
			rawInScored = true
		}
	}
	a.scoredLen = len(a.words)

	a.ids = a.ids[:0]
	for _, id := range a.wordIDs {
		if id != oovID {
			a.ids = append(a.ids, id)
		}
	}

	a.anchorIDs = a.anchorIDs[:0]
	if m.opts.NameAnchoring {
		if nameLen == 0 {
			return false
		}
		for _, w := range a.norm[:nameLen] {
			if id, ok := m.vocab.Lookup(w); ok {
				a.anchorIDs = append(a.anchorIDs, id)
			}
		}
		a.anchorIDs = textutil.SortDedupIDs(a.anchorIDs)
	} else {
		if len(a.norm) == 0 {
			return false
		}
		a.anchorIDs = append(a.anchorIDs, a.ids...)
	}

	a.rawEligible = m.opts.RawProvision && q.State == "" && !rawInScored

	if m.opts.ExplainMatched {
		// Co-sort words/wordIDs lexically so Result.Matched comes out in
		// the same sorted order the eager implementation produced.
		for i := 1; i < len(a.words); i++ {
			for j := i; j > 0 && a.words[j] < a.words[j-1]; j-- {
				a.words[j], a.words[j-1] = a.words[j-1], a.words[j]
				a.wordIDs[j], a.wordIDs[j-1] = a.wordIDs[j-1], a.wordIDs[j]
			}
		}
	}
	return true
}
