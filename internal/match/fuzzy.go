package match

// Fuzzy fallback: scraped ingredient sections carry misspellings
// ("buttre", "oinon") that defeat exact word-set intersection. When
// enabled, query words absent from the description vocabulary are
// corrected to their closest vocabulary word within Damerau–Levenshtein
// distance 1 before matching. This is an extension beyond the paper
// (whose preprocessing assumes clean tokens); the typo experiment
// quantifies the match-rate it recovers.

// withinDL1 reports whether two words are within Damerau–Levenshtein
// distance 1 (one insertion, deletion, substitution, or adjacent
// transposition).
func withinDL1(a, b string) bool {
	if a == b {
		return true
	}
	la, lb := len(a), len(b)
	switch {
	case la == lb:
		// One substitution or one adjacent transposition.
		diff := -1
		for i := 0; i < la; i++ {
			if a[i] != b[i] {
				if diff >= 0 {
					// Second difference: only a transposition of the
					// adjacent pair saves it.
					if diff == i-1 && a[diff] == b[i] && a[i] == b[diff] {
						return a[i+1:] == b[i+1:]
					}
					return false
				}
				diff = i
			}
		}
		return true
	case la == lb+1:
		return oneDeletion(a, b)
	case lb == la+1:
		return oneDeletion(b, a)
	default:
		return false
	}
}

// oneDeletion reports whether deleting exactly one rune from long yields
// short.
func oneDeletion(long, short string) bool {
	i := 0
	for i < len(short) && long[i] == short[i] {
		i++
	}
	return long[:i]+long[i+1:] == short
}

// correct maps an out-of-vocabulary word to a unique-best vocabulary
// word within distance 1. Returns "" when no candidate (or an ambiguous
// candidate set spanning different words) exists. Short words (< 4
// bytes) are never corrected: at that length distance-1 neighbours are
// mostly different words ("oat"/"eat").
func (m *Matcher) correct(word string) string {
	if len(word) < 4 {
		return ""
	}
	if _, ok := m.vocab.Lookup(word); ok {
		return word
	}
	best := ""
	for _, vocab := range m.vocab.Terms() {
		d := len(vocab) - len(word)
		if d < -1 || d > 1 {
			continue
		}
		if withinDL1(word, vocab) {
			if best != "" && best != vocab {
				return "" // ambiguous
			}
			best = vocab
		}
	}
	return best
}

// CorrectQuery rewrites the query's Name with fuzzy corrections for
// out-of-vocabulary words, leaving in-vocabulary words untouched. It is
// exposed so the pipeline can apply correction once and log what changed.
func (m *Matcher) CorrectQuery(q Query) (Query, bool) {
	tokens := NormalizeTokens(q.Name)
	changed := false
	for i, tok := range tokens {
		if _, ok := m.vocab.Lookup(tok); ok {
			continue
		}
		if fixed := m.correct(tok); fixed != "" {
			tokens[i] = fixed
			changed = true
		}
	}
	if !changed {
		return q, false
	}
	out := q
	out.Name = join(tokens)
	return out, true
}

func join(tokens []string) string {
	n := 0
	for _, t := range tokens {
		n += len(t) + 1
	}
	b := make([]byte, 0, n)
	for i, t := range tokens {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t...)
	}
	return string(b)
}

// MatchFuzzy matches with the typo-correction fallback: an exact Match
// first, then a corrected retry for queries that found nothing.
func (m *Matcher) MatchFuzzy(q Query) (Result, bool) {
	if r, ok := m.Match(q); ok {
		return r, true
	}
	if fixed, changed := m.CorrectQuery(q); changed {
		return m.Match(fixed)
	}
	return Result{}, false
}
