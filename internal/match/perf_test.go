package match

// Steady-state performance pins for the interned engine. The CI perf gate
// (cmd/benchgate via make bench-json) tracks BenchmarkMatchName and
// BenchmarkRank; TestWarmPathZeroAllocs turns the headline claim — zero
// allocations per query once the arena pool is warm — into a hard test
// so an accidental allocation fails fast, not just in nightly benchstat.

import (
	"testing"

	"nutriprofile/internal/usda"
)

// benchQueries exercise multi-word phrases, entity folding, negation
// rewriting and raw-provision ties against the seed database.
var benchQueries = []Query{
	{Name: "low fat sour cream"},
	{Name: "unsalted butter"},
	{Name: "apple"},
	{Name: "chicken breast", State: "roasted"},
	{Name: "tomato paste"},
}

func BenchmarkMatchName(b *testing.B) {
	m := NewDefault(usda.Seed())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.MatchName("low fat sour cream"); !ok {
			b.Fatal("no match")
		}
	}
}

func BenchmarkRank(b *testing.B) {
	m := NewDefault(usda.Seed())
	var buf []Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.RankInto(benchQueries[i%len(benchQueries)], 10, buf)
		if len(buf) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkRankExplain(b *testing.B) {
	// The eager-Matched configuration dbtool explain output uses: shows
	// what lazy materialization saves the default path.
	opts := DefaultOptions()
	opts.ExplainMatched = true
	m := New(usda.Seed(), opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs := m.Rank(benchQueries[i%len(benchQueries)], 10); len(rs) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkRankLargeDB(b *testing.B) {
	m := NewDefault(usda.Merged(7500, 3))
	var buf []Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.RankInto(Query{Name: "golden harvest beans"}, 10, buf)
	}
}

func TestWarmPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	m := NewDefault(usda.Seed())
	var buf []Result
	// Warm the arena pool and grow every scratch slice to steady state.
	for _, q := range benchQueries {
		buf = m.RankInto(q, 10, buf)
		if _, ok := m.Match(q); !ok {
			t.Fatalf("no match for %+v", q)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, q := range benchQueries {
			buf = m.RankInto(q, 10, buf)
			m.Match(q)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Match/RankInto allocated %.1f times per run, want 0", allocs)
	}
}
