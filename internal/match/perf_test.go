package match

// Steady-state performance pins for the interned engine. The CI perf gate
// (cmd/benchgate via make bench-json) tracks BenchmarkMatchName and
// BenchmarkRank; TestWarmPathZeroAllocs turns the headline claim — zero
// allocations per query once the arena pool is warm — into a hard test
// so an accidental allocation fails fast, not just in nightly benchstat.

import (
	"fmt"
	"testing"

	"nutriprofile/internal/usda"
)

// benchQueries exercise multi-word phrases, entity folding, negation
// rewriting and raw-provision ties against the seed database.
var benchQueries = []Query{
	{Name: "low fat sour cream"},
	{Name: "unsalted butter"},
	{Name: "apple"},
	{Name: "chicken breast", State: "roasted"},
	{Name: "tomato paste"},
}

func BenchmarkMatchName(b *testing.B) {
	m := NewDefault(usda.Seed())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.MatchName("low fat sour cream"); !ok {
			b.Fatal("no match")
		}
	}
}

func BenchmarkRank(b *testing.B) {
	m := NewDefault(usda.Seed())
	var buf []Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.RankInto(benchQueries[i%len(benchQueries)], 10, buf)
		if len(buf) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkRankExplain(b *testing.B) {
	// The eager-Matched configuration dbtool explain output uses: shows
	// what lazy materialization saves the default path.
	opts := DefaultOptions()
	opts.ExplainMatched = true
	m := New(usda.Seed(), opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs := m.Rank(benchQueries[i%len(benchQueries)], 10); len(rs) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkRankLargeDB(b *testing.B) {
	m := NewDefault(usda.Merged(7500, 3))
	var buf []Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.RankInto(Query{Name: "golden harvest beans"}, 10, buf)
	}
}

// longPostingQueries are the pruning engine's target workload: names
// and folded entities that drag stop-word-like terms ("raw", "whole",
// "with salt") whose posting lists span hundreds-to-thousands of
// documents at SR26 scale. The mix covers the three pruning wins:
// heavy terms inside the anchor (merged gather+score), a rare anchor
// with a heavy folded state (adaptive candidate probing), and
// many-term names (gather-exit + bar compaction).
var longPostingQueries = []Query{
	{Name: "chicken raw"},
	{Name: "raw whole milk"},
	{Name: "tomato paste", State: "raw"},
	{Name: "golden harvest beans", State: "frozen"},
	{Name: "whole raw cream cheese with salt"},
	{Name: "quail", State: "raw"},
}

// benchRankEngines runs one query set over both engines at k ∈ {1, 10}:
// the pruned/exhaustive pairing is what the nightly bench gate tracks
// and EXPERIMENTS.md quotes as the pruning speedup.
func benchRankEngines(b *testing.B, db *usda.DB, queries []Query) {
	for _, eng := range []struct {
		name    string
		disable bool
	}{{"pruned", false}, {"exhaustive", true}} {
		opts := DefaultOptions()
		opts.DisablePruning = eng.disable
		m := New(db, opts)
		for _, k := range []int{1, 10} {
			b.Run(fmt.Sprintf("%s/k=%d", eng.name, k), func(b *testing.B) {
				var buf []Result
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = m.RankInto(queries[i%len(queries)], k, buf)
					if len(buf) == 0 {
						b.Fatal("no results")
					}
				}
			})
		}
	}
}

// BenchmarkRankCold is the cache-miss ranking cost on the realistic
// query mix — the per-phrase price every cold batch pays — at seed and
// SR26 scale, both engines.
func BenchmarkRankCold(b *testing.B) {
	for _, sc := range []struct {
		name string
		db   *usda.DB
	}{{"seed", usda.Seed()}, {"sr26", usda.Merged(7500, 3)}} {
		b.Run(sc.name, func(b *testing.B) { benchRankEngines(b, sc.db, benchQueries) })
	}
}

// BenchmarkRankLongPostings is BenchmarkRankCold on the long-posting
// workload the pruned engine exists for.
func BenchmarkRankLongPostings(b *testing.B) {
	for _, sc := range []struct {
		name string
		db   *usda.DB
	}{{"seed", usda.Seed()}, {"sr26", usda.Merged(7500, 3)}} {
		b.Run(sc.name, func(b *testing.B) { benchRankEngines(b, sc.db, longPostingQueries) })
	}
}

func TestWarmPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	m := NewDefault(usda.Seed())
	var buf []Result
	// Warm the arena pool and grow every scratch slice to steady state.
	for _, q := range benchQueries {
		buf = m.RankInto(q, 10, buf)
		if _, ok := m.Match(q); !ok {
			t.Fatalf("no match for %+v", q)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, q := range benchQueries {
			buf = m.RankInto(q, 10, buf)
			m.Match(q)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Match/RankInto allocated %.1f times per run, want 0", allocs)
	}
}
