package match

import (
	"sort"

	"nutriprofile/internal/textutil"
	"nutriprofile/internal/usda"
)

// Metric selects the string-similarity index. The paper's contribution is
// the Modified Jaccard Index; the vanilla index is retained as the
// baseline Table III compares against.
type Metric int

const (
	// ModifiedJaccard is J*(A,B) = |A∩B| / |A| (§II-B(e)): only the
	// ingredient-phrase words need covering, removing the bias against
	// long, detailed food descriptions.
	ModifiedJaccard Metric = iota
	// VanillaJaccard is J(A,B) = |A∩B| / |A∪B|.
	VanillaJaccard
)

func (m Metric) String() string {
	if m == VanillaJaccard {
		return "vanilla-jaccard"
	}
	return "modified-jaccard"
}

// Options toggles the individual §II-B heuristics, primarily so the
// ablation benchmarks can measure each one's contribution. DefaultOptions
// enables everything, which is the paper's configuration.
type Options struct {
	Metric Metric
	// RawProvision implements §II-B(g): when the query carries no STATE
	// entity, a description containing the word "raw" gets "an
	// additional word" matched — realized as a tie-break bonus above
	// priority resolution, so "apple" prefers "Apples, raw, with skin"
	// over equal-scoring descriptions without "raw". The bonus never
	// changes the Jaccard score itself, so it cannot displace a
	// strictly better match (e.g. "tomato paste" still beats
	// "Tomatoes, green, raw").
	RawProvision bool
	// PriorityResolution breaks score ties by preferring matches whose
	// words occur in earlier comma-separated description terms (§II-B(h)).
	PriorityResolution bool
	// NameAnchoring requires every candidate description to share at
	// least one word with the NAME entity itself (not merely with the
	// STATE/TEMP/DF words folded in by §II-B(d)). This operationalizes
	// §II-B(a)'s observation that the head food term is what carries the
	// match: without it, "zucchini, sliced" drifts to "Ham, sliced"
	// through the state word alone.
	NameAnchoring bool
	// MinScore is the score below which a query is reported unmatched.
	// The paper treats any nonzero overlap as a (possibly poor) match.
	MinScore float64
}

// DefaultOptions is the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Metric:             ModifiedJaccard,
		RawProvision:       true,
		PriorityResolution: true,
		NameAnchoring:      true,
		MinScore:           1e-9,
	}
}

// Query is one ingredient to match. Name is the NER NAME entity; State,
// Temp and DryFresh are the additional entities §II-B(d) folds into the
// comparison ("we match the whole description along with the State,
// Temperature and Freshness entities derived from our NER pipeline").
type Query struct {
	Name     string
	State    string
	Temp     string
	DryFresh string
}

// Result is one candidate description with its score.
type Result struct {
	NDB      int
	Desc     string
	Score    float64
	Priority int // sum of matched words' term priorities; lower is better
	// RawBonus marks the §II-B(g) provision: the description contains
	// "raw" and the query had no STATE entity.
	RawBonus bool
	Matched  []string
	index    int // position in db order, the §II-B(i) tie-break key
}

// Matcher matches ingredient queries against a fixed database. It is
// immutable after construction and safe for concurrent use: Match,
// Rank, MatchFuzzy and CorrectQuery only read the prebuilt docs and
// inverted index, so any number of goroutines may share one Matcher
// (core.EstimateBatch does exactly that). Results are deterministic
// regardless of goroutine interleaving — Rank's sort key (score, raw
// bonus, priority, database order) is a total order, so identical
// queries always produce identical rankings.
type Matcher struct {
	db   *usda.DB
	opts Options
	docs []descDoc
	// inverted maps each description word to the (ascending) indices of
	// foods containing it, restricting scoring to plausible candidates.
	inverted map[string][]int32
}

// New preprocesses every description in db and builds the inverted index.
func New(db *usda.DB, opts Options) *Matcher {
	m := &Matcher{
		db:       db,
		opts:     opts,
		docs:     make([]descDoc, db.Len()),
		inverted: make(map[string][]int32),
	}
	for i := 0; i < db.Len(); i++ {
		doc := normalizeDesc(db.At(i).Desc)
		m.docs[i] = doc
		for w := range doc.set {
			m.inverted[w] = append(m.inverted[w], int32(i))
		}
	}
	return m
}

// NewDefault builds a Matcher with the paper's configuration.
func NewDefault(db *usda.DB) *Matcher { return New(db, DefaultOptions()) }

// Options returns the matcher's configuration.
func (m *Matcher) Options() Options { return m.opts }

// querySet builds the preprocessed ingredient word set A of §II-B(e).
// anchor is the set candidate gathering and the must-overlap requirement
// run against: the NAME words alone under NameAnchoring, otherwise all
// query words. rawEligible reports whether the §II-B(g) provision applies
// (no STATE entity and "raw" not already a query word).
func (m *Matcher) querySet(q Query) (anchor, scored textutil.Set, rawEligible bool) {
	nameTokens := NormalizeTokens(q.Name)
	tokens := nameTokens
	for _, extra := range []string{q.State, q.Temp, q.DryFresh} {
		if extra != "" {
			tokens = append(tokens, NormalizeTokens(extra)...)
		}
	}
	scored = textutil.NewSet(tokens)
	anchor = scored
	if m.opts.NameAnchoring {
		anchor = textutil.NewSet(nameTokens)
	}
	rawEligible = m.opts.RawProvision && q.State == "" && !scored.Has("raw")
	return anchor, scored, rawEligible
}

// Match returns the best description for the query, or ok=false when no
// description shares a word with it (the unmatched ~5.5% of §III).
func (m *Matcher) Match(q Query) (Result, bool) {
	res := m.Rank(q, 1)
	if len(res) == 0 {
		return Result{}, false
	}
	return res[0], true
}

// Rank returns the top-k candidates in preference order: score descending,
// then priority ascending (if enabled), then database order (§II-B(i)).
// k ≤ 0 returns every candidate with Score ≥ MinScore.
func (m *Matcher) Rank(q Query, k int) []Result {
	anchor, qset, rawEligible := m.querySet(q)
	if anchor.Len() == 0 {
		return nil
	}

	// Gather candidates through the inverted index, from anchor words
	// only: under NameAnchoring, STATE/TEMP/DF words may strengthen a
	// match but never create one.
	candSet := map[int32]struct{}{}
	for w := range anchor {
		for _, i := range m.inverted[w] {
			candSet[i] = struct{}{}
		}
	}
	if len(candSet) == 0 {
		return nil
	}

	results := make([]Result, 0, len(candSet))
	for i := range candSet {
		doc := &m.docs[i]
		if anchor.IntersectLen(doc.set) == 0 {
			continue
		}
		inter := qset.IntersectLen(doc.set)
		var score float64
		switch m.opts.Metric {
		case VanillaJaccard:
			score = float64(inter) / float64(qset.UnionLen(doc.set))
		default:
			score = float64(inter) / float64(qset.Len())
		}
		if score < m.opts.MinScore {
			continue
		}
		matched := make([]string, 0, inter)
		priority := 0
		for w := range qset {
			if doc.set.Has(w) {
				matched = append(matched, w)
				priority += doc.priority[w]
			}
		}
		sort.Strings(matched)
		food := m.db.At(int(i))
		results = append(results, Result{
			NDB: food.NDB, Desc: food.Desc, Score: score,
			Priority: priority, RawBonus: rawEligible && doc.hasRaw,
			Matched: matched, index: int(i),
		})
	}
	if len(results) == 0 {
		return nil
	}

	sort.Slice(results, func(a, b int) bool {
		ra, rb := &results[a], &results[b]
		if ra.Score != rb.Score {
			return ra.Score > rb.Score
		}
		if ra.RawBonus != rb.RawBonus {
			return ra.RawBonus // §II-B(g): the free "raw" word wins ties
		}
		if m.opts.PriorityResolution && ra.Priority != rb.Priority {
			return ra.Priority < rb.Priority
		}
		return ra.index < rb.index // §II-B(i): first match in SR order
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// MatchName is shorthand for matching a bare ingredient name.
func (m *Matcher) MatchName(name string) (Result, bool) {
	return m.Match(Query{Name: name})
}

// DB returns the underlying database.
func (m *Matcher) DB() *usda.DB { return m.db }
