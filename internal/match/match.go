package match

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nutriprofile/internal/textutil"
	"nutriprofile/internal/usda"
)

// Metric selects the string-similarity index. The paper's contribution is
// the Modified Jaccard Index; the vanilla index is retained as the
// baseline Table III compares against.
type Metric int

const (
	// ModifiedJaccard is J*(A,B) = |A∩B| / |A| (§II-B(e)): only the
	// ingredient-phrase words need covering, removing the bias against
	// long, detailed food descriptions.
	ModifiedJaccard Metric = iota
	// VanillaJaccard is J(A,B) = |A∩B| / |A∪B|.
	VanillaJaccard
)

func (m Metric) String() string {
	if m == VanillaJaccard {
		return "vanilla-jaccard"
	}
	return "modified-jaccard"
}

// Options toggles the individual §II-B heuristics, primarily so the
// ablation benchmarks can measure each one's contribution. DefaultOptions
// enables everything, which is the paper's configuration.
type Options struct {
	Metric Metric
	// RawProvision implements §II-B(g): when the query carries no STATE
	// entity, a description containing the word "raw" gets "an
	// additional word" matched — realized as a tie-break bonus above
	// priority resolution, so "apple" prefers "Apples, raw, with skin"
	// over equal-scoring descriptions without "raw". The bonus never
	// changes the Jaccard score itself, so it cannot displace a
	// strictly better match (e.g. "tomato paste" still beats
	// "Tomatoes, green, raw").
	RawProvision bool
	// PriorityResolution breaks score ties by preferring matches whose
	// words occur in earlier comma-separated description terms (§II-B(h)).
	PriorityResolution bool
	// NameAnchoring requires every candidate description to share at
	// least one word with the NAME entity itself (not merely with the
	// STATE/TEMP/DF words folded in by §II-B(d)). This operationalizes
	// §II-B(a)'s observation that the head food term is what carries the
	// match: without it, "zucchini, sliced" drifts to "Ham, sliced"
	// through the state word alone.
	NameAnchoring bool
	// MinScore is the score below which a query is reported unmatched.
	// The paper treats any nonzero overlap as a (possibly poor) match.
	MinScore float64
	// DisablePruning selects the straight-line exhaustive scoring engine
	// instead of the candidate-pruned one (prune.go): every scored
	// term's posting list is walked in full and every touched document
	// is scored. The two engines are byte-identical in results — the
	// pruned engine's early termination is provably exact, and the
	// golden/fuzz differentials pin it — so this switch is a pure
	// performance ablation (threaded to the CLIs as -match-pruning).
	DisablePruning bool
	// ExplainMatched materializes Result.Matched — the sorted query
	// words found in each returned description — for explain-style
	// output (dbtool -search, examples/matcher). It is off by default:
	// the scoring itself never needs the strings, and the estimation
	// pipeline never reads them, so the hot path skips the per-result
	// []string entirely. Scores, ordering and every other Result field
	// are identical either way.
	ExplainMatched bool
}

// DefaultOptions is the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Metric:             ModifiedJaccard,
		RawProvision:       true,
		PriorityResolution: true,
		NameAnchoring:      true,
		MinScore:           1e-9,
	}
}

// Query is one ingredient to match. Name is the NER NAME entity; State,
// Temp and DryFresh are the additional entities §II-B(d) folds into the
// comparison ("we match the whole description along with the State,
// Temperature and Freshness entities derived from our NER pipeline").
type Query struct {
	Name     string
	State    string
	Temp     string
	DryFresh string
}

// Result is one candidate description with its score.
type Result struct {
	NDB      int
	Desc     string
	Score    float64
	Priority int // sum of matched words' term priorities; lower is better
	// RawBonus marks the §II-B(g) provision: the description contains
	// "raw" and the query had no STATE entity.
	RawBonus bool
	// Matched lists the query words found in the description, sorted.
	// Populated only under Options.ExplainMatched.
	Matched []string
	index   int // position in db order, the §II-B(i) tie-break key
}

// Matcher matches ingredient queries against a fixed database. It is
// immutable after construction and safe for concurrent use: Match,
// Rank, MatchFuzzy and CorrectQuery only read the prebuilt index, and
// per-query scratch state lives in pooled arenas, so any number of
// goroutines may share one Matcher (core.EstimateBatch does exactly
// that). Results are deterministic regardless of goroutine interleaving
// — the ranking key (score, raw bonus, priority, database order) is a
// total order, so identical queries always produce identical rankings.
//
// Internally the matcher is a small IR engine over an interned
// vocabulary: every normalized description word gets a dense uint32
// term ID at construction, documents are sorted ID sets, and each term
// owns a flat posting list of the documents containing it (plus the
// word's §II-B(h) sequence priority in that document). Rank runs
// term-at-a-time over the query's posting lists into an epoch-stamped
// accumulator arena and selects the top k with a bounded heap — no
// maps, no string hashing, and zero allocations on the warm path.
type Matcher struct {
	db   *usda.DB
	opts Options

	vocab *textutil.Interner

	// Documents, CSR-flat: docTerms[docOff[d]:docOff[d+1]] is document
	// d's sorted unique term IDs; hasRaw records the literal state word
	// "raw" for the §II-B(g) provision.
	docTerms []uint32
	docOff   []int32
	hasRaw   []bool

	// Posting lists, CSR-flat: postDocs[postOff[t]:postOff[t+1]] is the
	// ascending document indices containing term t, and postPri the
	// term's 1-based first comma-term index in that document (§II-B(h)).
	postDocs []int32
	postPri  []int32
	postOff  []int32

	// arenas recycles per-query accumulator state; see arena.go.
	arenas     sync.Pool
	poolGets   atomic.Uint64
	poolMisses atomic.Uint64

	// Pruned-engine instrumentation (prune.go), batched per query and
	// flushed once, so the counters cost a handful of uncontended atomic
	// adds per rank, not one per posting decision.
	pruneTermsSkipped    atomic.Uint64
	prunePostingsAvoided atomic.Uint64
	pruneDocsDropped     atomic.Uint64
	pruneCompactions     atomic.Uint64
	pruneGatherExits     atomic.Uint64
	adaptiveProbeTerms   atomic.Uint64
}

// Index is the matcher's prebuilt scoring index in its exact in-memory
// layout: the interned vocabulary (Terms[id] is term id's word), the
// CSR-flat document term sets, and the CSR-flat posting lists. New
// computes an Index from the database descriptions; the baked-image
// loader (internal/usda/bake) deserializes one and hands it to
// NewFromIndex, skipping the normalize/intern/flatten pass entirely.
// Index construction depends only on the database — never on Options —
// so one Index serves any matcher configuration.
type Index struct {
	// Terms is the interned vocabulary in ID order.
	Terms []string
	// DocTerms[DocOff[d]:DocOff[d+1]] is document d's sorted unique term
	// IDs; HasRaw[d] records the literal state word "raw" (§II-B(g)).
	DocTerms []uint32
	DocOff   []int32
	HasRaw   []bool
	// PostDocs[PostOff[t]:PostOff[t+1]] is the ascending document
	// indices containing term t, PostPri the term's 1-based first
	// comma-term index in that document (§II-B(h)).
	PostDocs []int32
	PostPri  []int32
	PostOff  []int32
}

// buildIndex preprocesses every description in db into the interned
// vocabulary, document ID sets and posting lists.
func buildIndex(db *usda.DB) (*Index, *textutil.Interner) {
	n := db.Len()
	idx := &Index{}
	vocab := textutil.NewInterner()

	// Pass 1: normalize each description into per-document (term ID,
	// priority) pairs, interning every word.
	type termPri struct {
		id  uint32
		pri int32
	}
	perDoc := make([][]termPri, n)
	idx.HasRaw = make([]bool, n)
	var norm, toks []string
	for d := 0; d < n; d++ {
		var doc []termPri
		for termIdx, term := range textutil.SplitCommaTerms(db.At(d).Desc) {
			norm, toks = appendNormalizedTokens(norm[:0], term, toks)
			for _, w := range norm {
				if w == "raw" {
					idx.HasRaw[d] = true
				}
				id := vocab.Intern(w)
				dup := false
				for _, tp := range doc {
					if tp.id == id {
						dup = true
						break
					}
				}
				// First occurrence wins: the §II-B(h) priority is the
				// FIRST comma term the word appears in.
				if !dup {
					doc = append(doc, termPri{id: id, pri: int32(termIdx + 1)})
				}
			}
		}
		perDoc[d] = doc
	}

	// Pass 2: flatten documents (sorted by term ID) and posting lists
	// (sorted by document index, which the ascending doc loop gives for
	// free).
	vocabLen := vocab.Len()
	total := 0
	counts := make([]int32, vocabLen+1)
	for _, doc := range perDoc {
		total += len(doc)
		for _, tp := range doc {
			counts[tp.id+1]++
		}
	}
	idx.Terms = vocab.Terms()
	idx.DocTerms = make([]uint32, 0, total)
	idx.DocOff = make([]int32, n+1)
	idx.PostOff = make([]int32, vocabLen+1)
	for t := 1; t <= vocabLen; t++ {
		idx.PostOff[t] = idx.PostOff[t-1] + counts[t]
	}
	idx.PostDocs = make([]int32, total)
	idx.PostPri = make([]int32, total)
	fill := append([]int32(nil), idx.PostOff[:vocabLen]...)
	ids := make([]uint32, 0, 16)
	for d, doc := range perDoc {
		ids = ids[:0]
		for _, tp := range doc {
			ids = append(ids, tp.id)
			p := fill[tp.id]
			idx.PostDocs[p] = int32(d)
			idx.PostPri[p] = tp.pri
			fill[tp.id] = p + 1
		}
		idx.DocTerms = append(idx.DocTerms, textutil.SortDedupIDs(ids)...)
		idx.DocOff[d+1] = int32(len(idx.DocTerms))
	}
	return idx, vocab
}

// BuildIndex computes the scoring index for db — exactly the index New
// builds internally. cmd/dbbake serializes its output into the baked
// image so serving processes can load it back with NewFromIndex.
func BuildIndex(db *usda.DB) *Index {
	idx, _ := buildIndex(db)
	return idx
}

// ErrBadIndex reports a structurally invalid prebuilt index (corrupt or
// mismatched baked image).
var ErrBadIndex = errors.New("match: invalid prebuilt index")

// validate checks the structural invariants the scoring engine assumes:
// consistent section lengths, monotonic CSR offsets, term IDs inside the
// vocabulary, document indices inside the database, and sorted unique
// per-document term sets. An index that passes cannot make the engine
// read out of bounds.
func (idx *Index) validate(docs int) error {
	vocabLen := len(idx.Terms)
	switch {
	case len(idx.DocOff) != docs+1:
		return fmt.Errorf("%w: %d doc offsets for %d docs", ErrBadIndex, len(idx.DocOff), docs)
	case len(idx.HasRaw) != docs:
		return fmt.Errorf("%w: %d hasRaw flags for %d docs", ErrBadIndex, len(idx.HasRaw), docs)
	case len(idx.PostOff) != vocabLen+1:
		return fmt.Errorf("%w: %d posting offsets for %d terms", ErrBadIndex, len(idx.PostOff), vocabLen)
	case len(idx.PostDocs) != len(idx.PostPri):
		return fmt.Errorf("%w: %d posting docs vs %d priorities", ErrBadIndex, len(idx.PostDocs), len(idx.PostPri))
	case len(idx.DocTerms) != len(idx.PostDocs):
		return fmt.Errorf("%w: %d doc terms vs %d postings", ErrBadIndex, len(idx.DocTerms), len(idx.PostDocs))
	case len(idx.DocOff) > 0 && idx.DocOff[0] != 0,
		len(idx.PostOff) > 0 && idx.PostOff[0] != 0:
		return fmt.Errorf("%w: nonzero leading offset", ErrBadIndex)
	case len(idx.DocOff) > 0 && int(idx.DocOff[docs]) != len(idx.DocTerms):
		return fmt.Errorf("%w: doc offsets end at %d, want %d", ErrBadIndex, idx.DocOff[docs], len(idx.DocTerms))
	case len(idx.PostOff) > 0 && int(idx.PostOff[vocabLen]) != len(idx.PostDocs):
		return fmt.Errorf("%w: posting offsets end at %d, want %d", ErrBadIndex, idx.PostOff[vocabLen], len(idx.PostDocs))
	}
	for d := 0; d < docs; d++ {
		lo, hi := idx.DocOff[d], idx.DocOff[d+1]
		if lo > hi {
			return fmt.Errorf("%w: doc %d offsets decrease", ErrBadIndex, d)
		}
		for i := lo; i < hi; i++ {
			if int(idx.DocTerms[i]) >= vocabLen {
				return fmt.Errorf("%w: doc %d references term %d beyond vocabulary %d", ErrBadIndex, d, idx.DocTerms[i], vocabLen)
			}
			if i > lo && idx.DocTerms[i] <= idx.DocTerms[i-1] {
				return fmt.Errorf("%w: doc %d term set not sorted unique", ErrBadIndex, d)
			}
		}
	}
	for t := 0; t < vocabLen; t++ {
		lo, hi := idx.PostOff[t], idx.PostOff[t+1]
		if lo > hi {
			return fmt.Errorf("%w: term %d posting offsets decrease", ErrBadIndex, t)
		}
		for i := lo; i < hi; i++ {
			if int(idx.PostDocs[i]) >= docs || idx.PostDocs[i] < 0 {
				return fmt.Errorf("%w: term %d posts document %d outside db of %d", ErrBadIndex, t, idx.PostDocs[i], docs)
			}
			if i > lo && idx.PostDocs[i] <= idx.PostDocs[i-1] {
				return fmt.Errorf("%w: term %d posting list not ascending", ErrBadIndex, t)
			}
			if idx.PostPri[i] < 1 {
				return fmt.Errorf("%w: term %d has non-positive priority %d", ErrBadIndex, t, idx.PostPri[i])
			}
		}
	}
	return nil
}

// adopt wires a built/validated index into the matcher.
func (m *Matcher) adopt(idx *Index, vocab *textutil.Interner) {
	m.vocab = vocab
	m.docTerms = idx.DocTerms
	m.docOff = idx.DocOff
	m.hasRaw = idx.HasRaw
	m.postDocs = idx.PostDocs
	m.postPri = idx.PostPri
	m.postOff = idx.PostOff
	n := m.db.Len()
	m.arenas.New = func() any {
		m.poolMisses.Add(1)
		return newArena(n)
	}
}

// New preprocesses every description in db and builds the interned
// vocabulary, document ID sets and posting lists.
func New(db *usda.DB, opts Options) *Matcher {
	m := &Matcher{db: db, opts: opts}
	idx, vocab := buildIndex(db)
	m.adopt(idx, vocab)
	return m
}

// NewFromIndex builds a Matcher over db adopting a prebuilt index (a
// deserialized baked image) instead of re-normalizing and re-interning
// every description. The index is structurally validated — offsets
// monotone, IDs in range — so a corrupt image yields ErrBadIndex, never
// an out-of-bounds panic at query time. The caller must not mutate idx
// after the call; the matcher aliases its slices.
func NewFromIndex(db *usda.DB, opts Options, idx *Index) (*Matcher, error) {
	if db == nil || idx == nil {
		return nil, fmt.Errorf("%w: nil database or index", ErrBadIndex)
	}
	if err := idx.validate(db.Len()); err != nil {
		return nil, err
	}
	m := &Matcher{db: db, opts: opts}
	m.adopt(idx, textutil.NewInternerFromTerms(idx.Terms))
	return m, nil
}

// NewDefault builds a Matcher with the paper's configuration.
func NewDefault(db *usda.DB) *Matcher { return New(db, DefaultOptions()) }

// Options returns the matcher's configuration.
func (m *Matcher) Options() Options { return m.opts }

// docIDs returns document d's sorted term-ID set.
func (m *Matcher) docIDs(d int32) textutil.IDSet {
	return textutil.IDSet(m.docTerms[m.docOff[d]:m.docOff[d+1]])
}

// docLen returns the number of distinct normalized words in document d
// (the |B| of the vanilla-Jaccard union).
func (m *Matcher) docLen(d int32) int {
	return int(m.docOff[d+1] - m.docOff[d])
}

// querySet builds the preprocessed ingredient word set A of §II-B(e) in
// string space. The scoring engine works in interned-ID space (see
// arena.prepare); this helper remains for the containment baseline
// (ExactMatcher) and for tests that inspect the sets directly.
// rawEligible reports whether the §II-B(g) provision applies (no STATE
// entity and "raw" not already a query word).
func (m *Matcher) querySet(q Query) (anchor, scored textutil.Set, rawEligible bool) {
	nameTokens := NormalizeTokens(q.Name)
	tokens := nameTokens
	for _, extra := range []string{q.State, q.Temp, q.DryFresh} {
		if extra != "" {
			tokens = append(tokens, NormalizeTokens(extra)...)
		}
	}
	scored = textutil.NewSet(tokens)
	anchor = scored
	if m.opts.NameAnchoring {
		anchor = textutil.NewSet(nameTokens)
	}
	rawEligible = m.opts.RawProvision && q.State == "" && !scored.Has("raw")
	return anchor, scored, rawEligible
}

// Match returns the best description for the query, or ok=false when no
// description shares a word with it (the unmatched ~5.5% of §III). It
// allocates nothing on the warm path beyond the optional ExplainMatched
// materialization.
func (m *Matcher) Match(q Query) (Result, bool) {
	a := m.getArena()
	defer m.putArena(a)
	cands := m.rankCands(a, q, 1)
	if len(cands) == 0 {
		return Result{}, false
	}
	var r Result
	m.fillResult(a, cands[0], &r)
	return r, true
}

// Rank returns the top-k candidates in preference order: score descending,
// then priority ascending (if enabled), then database order (§II-B(i)).
// k ≤ 0 returns every candidate with Score ≥ MinScore.
func (m *Matcher) Rank(q Query, k int) []Result {
	a := m.getArena()
	defer m.putArena(a)
	cands := m.rankCands(a, q, k)
	if len(cands) == 0 {
		return nil
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		m.fillResult(a, c, &out[i])
	}
	return out
}

// RankInto is Rank appending into dst[:0], so steady-state callers can
// reuse one result buffer across queries and rank with zero allocations
// (when ExplainMatched is off). It returns dst re-sliced to the result
// count, which is 0 (not nil) for unmatched queries.
func (m *Matcher) RankInto(q Query, k int, dst []Result) []Result {
	dst = dst[:0]
	a := m.getArena()
	defer m.putArena(a)
	for _, c := range m.rankCands(a, q, k) {
		var r Result
		m.fillResult(a, c, &r)
		dst = append(dst, r)
	}
	return dst
}

// rankCands runs the scoring engine: prepare the query in ID space,
// accumulate term-at-a-time over posting lists, then select and order
// the top k (all, for k ≤ 0) under the total order. The returned slice
// lives in the arena and is valid until putArena.
//
// Two engines implement this contract: the candidate-pruned engine
// (prune.go — df-ordered scheduling, adaptive posting-vs-candidate
// scoring, exact quit/continue early termination) and the exhaustive
// engine below, which is retained as the executable specification the
// differential suites compare against. They return byte-identical
// results; Options.DisablePruning selects the spec engine.
func (m *Matcher) rankCands(a *arena, q Query, k int) []cand {
	if m.opts.DisablePruning {
		return m.rankCandsExhaustive(a, q, k)
	}
	return m.rankCandsPruned(a, q, k)
}

// rankCandsExhaustive is the straight-line engine: a gather pass over
// the anchor posting lists, a full scoring pass over every scored
// term's posting list, then selection. No early termination, no
// adaptive lookups — every equality below is trivially exact, which is
// what makes it the spec the pruned engine is differential-tested
// against (prune_test.go, golden_test.go).
func (m *Matcher) rankCandsExhaustive(a *arena, q Query, k int) []cand {
	if !a.prepare(m, q) {
		return nil
	}

	// Gather-and-mark pass over the anchor terms' posting lists: under
	// NameAnchoring, STATE/TEMP/DF words may strengthen a match but
	// never create one.
	epoch := a.nextEpoch()
	touched := a.touched[:0]
	for _, t := range a.anchorIDs {
		for _, d := range m.postDocs[m.postOff[t]:m.postOff[t+1]] {
			if a.stamp[d] != epoch {
				a.stamp[d] = epoch
				a.inter[d] = 0
				a.pri[d] = 0
				touched = append(touched, d)
			}
		}
	}
	a.touched = touched
	if len(touched) == 0 {
		return nil
	}

	// Scoring pass: every scored term contributes its posting list to
	// the marked documents' accumulators.
	for _, t := range a.ids {
		off, end := m.postOff[t], m.postOff[t+1]
		docs := m.postDocs[off:end]
		pris := m.postPri[off:end]
		for j, d := range docs {
			if a.stamp[d] == epoch {
				a.inter[d]++
				a.pri[d] += pris[j]
			}
		}
	}

	// Score, filter and select. For bounded k the arena keeps a heap of
	// the current k best with the WORST at the root, so each remaining
	// candidate costs one comparison against the bar (plus a sift when
	// it clears it). k ≤ 0 collects everything.
	sel := a.cands[:0]
	vanilla := m.opts.Metric == VanillaJaccard
	scoredLen := float64(a.scoredLen)
	for _, d := range a.touched {
		inter := a.inter[d]
		var score float64
		if vanilla {
			score = float64(inter) / (scoredLen + float64(m.docLen(d)) - float64(inter))
		} else {
			score = float64(inter) / scoredLen
		}
		if score < m.opts.MinScore {
			continue
		}
		c := cand{score: score, pri: a.pri[d], doc: d, raw: a.rawEligible && m.hasRaw[d]}
		if k <= 0 || len(sel) < k {
			sel = append(sel, c)
			if k > 0 && len(sel) == k {
				heapifyWorst(sel, m)
			}
			continue
		}
		if m.better(c, sel[0]) {
			sel[0] = c
			siftWorst(sel, 0, len(sel), m)
		}
	}
	a.cands = sel
	sortCands(sel, m)
	return sel
}

// fillResult materializes one selected candidate into a Result.
func (m *Matcher) fillResult(a *arena, c cand, r *Result) {
	food := m.db.At(int(c.doc))
	r.NDB = food.NDB
	r.Desc = food.Desc
	r.Score = c.score
	r.Priority = int(c.pri)
	r.RawBonus = c.raw
	r.index = int(c.doc)
	if m.opts.ExplainMatched {
		r.Matched = m.matchedWords(a, c.doc)
	}
}

// matchedWords lazily materializes the sorted matched-word list for one
// returned document — the per-candidate cost the old engine paid for
// every scored candidate now happens at most k times per query.
func (m *Matcher) matchedWords(a *arena, d int32) []string {
	doc := m.docIDs(d)
	matched := make([]string, 0, len(a.words))
	// a.words is lexically sorted by prepare under ExplainMatched, so
	// filtering preserves sortedness.
	for i, w := range a.words {
		if id := a.wordIDs[i]; id != oovID && doc.Has(id) {
			matched = append(matched, w)
		}
	}
	return matched
}

// better reports whether candidate x outranks y under the total order:
// score descending, raw bonus (§II-B(g)), priority ascending (§II-B(h),
// if enabled), then database order (§II-B(i)). The final key is unique,
// so this is a strict total order and every selection is deterministic.
func (m *Matcher) better(x, y cand) bool {
	if x.score != y.score {
		return x.score > y.score
	}
	if x.raw != y.raw {
		return x.raw // §II-B(g): the free "raw" word wins ties
	}
	if m.opts.PriorityResolution && x.pri != y.pri {
		return x.pri < y.pri
	}
	return x.doc < y.doc // §II-B(i): first match in SR order
}

// MatchName is shorthand for matching a bare ingredient name.
func (m *Matcher) MatchName(name string) (Result, bool) {
	return m.Match(Query{Name: name})
}

// DB returns the underlying database.
func (m *Matcher) DB() *usda.DB { return m.db }

// MatcherStats describes the interned index and the arena pool, for
// observability (cmd/nutriprofile -stats, nutriserve GET /v1/stats —
// the JSON tags are that endpoint's wire form).
type MatcherStats struct {
	Docs           int    `json:"docs"`            // documents (food descriptions) indexed
	VocabSize      int    `json:"vocab_size"`      // distinct interned terms
	PostingLists   int    `json:"posting_lists"`   // non-empty posting lists (== VocabSize here)
	PostingEntries int    `json:"posting_entries"` // total (term, doc) postings
	PoolGets       uint64 `json:"pool_gets"`       // arena checkouts (one per query)
	PoolMisses     uint64 `json:"pool_misses"`     // checkouts that had to allocate a fresh arena

	// Pruned-engine counters (prune.go); all zero when the matcher runs
	// with Options.DisablePruning.
	PruningEnabled       bool   `json:"pruning_enabled"`        // the candidate-pruned engine is active
	PruneTermsSkipped    uint64 `json:"prune_terms_skipped"`    // scored terms never applied (candidate set emptied)
	PrunePostingsAvoided uint64 `json:"prune_postings_avoided"` // posting entries never sequentially scanned
	PruneDocsDropped     uint64 `json:"prune_docs_dropped"`     // candidates dropped by bar compaction
	PruneCompactions     uint64 `json:"prune_compactions"`      // bar compaction passes over the candidate set
	PruneGatherExits     uint64 `json:"prune_gather_exits"`     // queries that switched gather → update-only mode
	AdaptiveProbeTerms   uint64 `json:"adaptive_probe_terms"`   // terms scored by candidate probes instead of posting walks
}

// PoolHitRate returns the fraction of queries served by a recycled
// arena; the steady state is ~1 (only pool cold-starts and GC-reclaimed
// arenas miss).
func (s MatcherStats) PoolHitRate() float64 {
	if s.PoolGets == 0 {
		return 0
	}
	return 1 - float64(s.PoolMisses)/float64(s.PoolGets)
}

// Stats snapshots the matcher's index shape and arena-pool counters.
func (m *Matcher) Stats() MatcherStats {
	lists := 0
	for t := 0; t < m.vocab.Len(); t++ {
		if m.postOff[t+1] > m.postOff[t] {
			lists++
		}
	}
	return MatcherStats{
		Docs:                 m.db.Len(),
		VocabSize:            m.vocab.Len(),
		PostingLists:         lists,
		PostingEntries:       len(m.postDocs),
		PoolGets:             m.poolGets.Load(),
		PoolMisses:           m.poolMisses.Load(),
		PruningEnabled:       !m.opts.DisablePruning,
		PruneTermsSkipped:    m.pruneTermsSkipped.Load(),
		PrunePostingsAvoided: m.prunePostingsAvoided.Load(),
		PruneDocsDropped:     m.pruneDocsDropped.Load(),
		PruneCompactions:     m.pruneCompactions.Load(),
		PruneGatherExits:     m.pruneGatherExits.Load(),
		AdaptiveProbeTerms:   m.adaptiveProbeTerms.Load(),
	}
}

func (m *Matcher) getArena() *arena {
	m.poolGets.Add(1)
	return m.arenas.Get().(*arena)
}

func (m *Matcher) putArena(a *arena) { m.arenas.Put(a) }
