package match

// Table-driven tie-break coverage: the total order Rank selects under is
// score desc → RawBonus (§II-B(g)) → Priority asc (§II-B(h)) → SR index
// (§II-B(i)). These invariants guard the bounded-heap selection rewrite:
// a heap that compared any key in the wrong order or dropped a tie level
// would reorder one of these fixtures.

import (
	"testing"

	"nutriprofile/internal/usda"
)

// tieDB is built so that the bare query "apple" scores 1.0 against every
// food (ModifiedJaccard, |A| = 1), forcing the ranking to be decided
// purely by the tie-break chain.
func tieDB(t *testing.T) *usda.DB {
	t.Helper()
	return usda.MustNewDB([]usda.Food{
		{NDB: 100, Desc: "Juice, apple"},             // pri 2, no raw
		{NDB: 101, Desc: "Apple, juice"},             // pri 1, no raw
		{NDB: 102, Desc: "Dessert, apple, raw"},      // pri 2, raw
		{NDB: 103, Desc: "Apple, raw"},               // pri 1, raw
		{NDB: 104, Desc: "Apple, juice concentrate"}, // pri 1, no raw (index tie with 101)
	})
}

func rankNDBs(m *Matcher, q Query, k int) []int {
	rs := m.Rank(q, k)
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.NDB
	}
	return out
}

func TestRankTieBreakChain(t *testing.T) {
	db := tieDB(t)
	cases := []struct {
		name string
		opts func() Options
		k    int
		want []int
	}{
		{
			// Full chain: raw bonus dominates priority (102 with pri 2
			// outranks 101 with pri 1), priority dominates index (101
			// before 104's index-tie resolution — equal pri 1, so 101's
			// earlier index wins), index last (101 before 104, 100 last).
			name: "all heuristics, k=0 returns all",
			opts: DefaultOptions,
			k:    0,
			want: []int{103, 102, 101, 104, 100},
		},
		{
			name: "k=-1 also returns all",
			opts: DefaultOptions,
			k:    -1,
			want: []int{103, 102, 101, 104, 100},
		},
		{
			name: "k truncates after ordering",
			opts: DefaultOptions,
			k:    2,
			want: []int{103, 102},
		},
		{
			name: "k=1 is the Match result",
			opts: DefaultOptions,
			k:    1,
			want: []int{103},
		},
		{
			name: "k beyond candidate count returns all",
			opts: DefaultOptions,
			k:    50,
			want: []int{103, 102, 101, 104, 100},
		},
		{
			// Without the raw provision the bonus level vanishes and
			// priority takes over: pri-1 docs in index order, then pri-2.
			name: "raw provision off → priority then index",
			opts: func() Options {
				o := DefaultOptions()
				o.RawProvision = false
				return o
			},
			k:    0,
			want: []int{101, 103, 104, 100, 102},
		},
		{
			// Without priority resolution, raw bonus then pure SR index.
			name: "priority off → raw bonus then index",
			opts: func() Options {
				o := DefaultOptions()
				o.PriorityResolution = false
				return o
			},
			k:    0,
			want: []int{102, 103, 100, 101, 104},
		},
		{
			// With both off, the §II-B(i) first-match rule alone: pure
			// database order.
			name: "raw and priority off → database order",
			opts: func() Options {
				o := DefaultOptions()
				o.RawProvision = false
				o.PriorityResolution = false
				return o
			},
			k:    0,
			want: []int{100, 101, 102, 103, 104},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New(db, tc.opts())
			got := rankNDBs(m, Query{Name: "apple"}, tc.k)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("position %d: got %v, want %v", i, got, tc.want)
				}
			}
		})
	}
}

// TestRankScoreDominatesTieBreaks pins that every tie-break level only
// applies between equal scores: a strictly better score wins even against
// a raw-bonus, priority-1, index-0 rival.
func TestRankScoreDominatesTieBreaks(t *testing.T) {
	db := usda.MustNewDB([]usda.Food{
		{NDB: 200, Desc: "Tomato, raw"},           // score 1/2, raw bonus, index 0
		{NDB: 201, Desc: "Sauce, tomato, paste"},  // score 1, priority 5
		{NDB: 202, Desc: "Tomato, paste, canned"}, // score 1, priority 3
	})
	m := NewDefault(db)
	got := rankNDBs(m, Query{Name: "tomato paste"}, 0)
	// 201 and 202 both match {tomato, paste} → score 1.0; 201 has
	// priority 2+3=5, 202 has 1+2=3, so 202 first. 200 scores 0.5 and
	// comes last despite its raw bonus and earlier index.
	want := []int{202, 201, 200}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestRawBonusNeverCreatesScore pins that the §II-B(g) provision is a
// tie-break, not a score change: a query with a STATE entity gets no
// bonus at all.
func TestRawBonusSuppressedByState(t *testing.T) {
	db := tieDB(t)
	m := NewDefault(db)
	for _, r := range m.Rank(Query{Name: "apple", State: "juice"}, 0) {
		if r.RawBonus {
			t.Fatalf("RawBonus set despite STATE entity: %+v", r)
		}
	}
}
