// Package match implements the paper's Closest Description Annotation
// (§II-B): mapping an ingredient name extracted by NER to the best food
// description in a USDA-SR style database using a Modified Jaccard Index
// over preprocessed word sets, with negation rewriting, a raw-state
// provision, sequence-priority collision resolution and first-match
// tie-breaking.
package match

import (
	"strings"

	"nutriprofile/internal/lemma"
	"nutriprofile/internal/stopwords"
	"nutriprofile/internal/textutil"
)

// negativePrefixWords whitelists the "un-"/"non-" words whose prefix is a
// true negation (§II-B(f): `we replaced all negation terms and prefixes
// (like "un" in unsalted) to "not"`). A whitelist avoids corrupting words
// like "union" or "uniform" where "un" is not a prefix.
var negativePrefixWords = map[string]string{
	"unsalted":        "salt",
	"unsweetened":     "sweeten",
	"uncooked":        "cook",
	"unbleached":      "bleach",
	"unenriched":      "enrich",
	"unseasoned":      "season",
	"unpeeled":        "peel",
	"unflavored":      "flavor",
	"unprepared":      "prepare",
	"unbaked":         "bake",
	"undiluted":       "dilute",
	"unheated":        "heat",
	"unsifted":        "sift",
	"unblanched":      "blanch",
	"uncured":         "cure",
	"undrained":       "drain",
	"unripe":          "ripe",
	"nonfat":          "fat",
	"nondairy":        "dairy",
	"nonhydrogenated": "hydrogenate",
}

// appendNormalizedToken appends one raw token's normalized form(s) to
// dst: negation rewriting (§II-B(f)) first — standalone negations become
// "not", negative prefixes and "-free"/"less" suffixes become "not" plus
// the un-negated base — then stop-word removal and lemmatization of the
// surviving word. Appending (instead of returning a fresh 1–2 element
// slice per token) is what lets the whole normalization pipeline run out
// of reusable scratch buffers.
func appendNormalizedToken(dst []string, tok string) []string {
	if stopwords.IsNegation(tok) {
		return append(dst, "not")
	}
	base, negated := negativePrefixWords[tok]
	if !negated {
		// "X-free" and "Xless" suffixes negate X: fat-free → not fat,
		// boneless → not bone. Tokenize keeps hyphenated words whole, so
		// the forms arrive as single tokens.
		if rest, ok := strings.CutSuffix(tok, "-free"); ok && len(rest) >= 3 {
			base, negated = lemma.Word(rest), true
		} else if rest, ok := strings.CutSuffix(tok, "less"); ok && len(rest) >= 4 {
			base, negated = lemma.Word(rest), true
		}
	}
	if negated {
		dst = append(dst, "not")
		tok = base
	}
	if stopwords.IsStop(tok) {
		return dst
	}
	if n := normalizeWord(tok); n != "" {
		dst = append(dst, n)
	}
	return dst
}

// normalizeWord lemmatizes a token for set comparison. Nouns dominate
// description vocabulary, so the noun lemma is tried first; words that the
// noun lemmatizer leaves untouched but that carry verbal inflection
// (cooking states like "salted", "chopped") fall through to the verb
// lemmatizer so both sides of pairs like "salted"/"salt" unify.
func normalizeWord(tok string) string {
	n := lemma.Word(tok)
	if n != tok {
		return n
	}
	if strings.HasSuffix(tok, "ed") || strings.HasSuffix(tok, "ing") {
		return lemma.Lemmatize(tok, lemma.Verb)
	}
	return tok
}

// appendNormalizedTokens runs the full §II-B preprocessing over a raw
// phrase — uniform casing, negation expansion, stop-word removal and
// lemmatization — appending the result to dst. scratch holds the
// intermediate word tokens; both slices are returned so callers can
// recycle their backing arrays across phrases (the matcher's arena does,
// making query normalization allocation-free once warm).
func appendNormalizedTokens(dst []string, s string, scratch []string) (norm, scratchOut []string) {
	scratch = textutil.AppendWords(scratch[:0], s)
	for _, tok := range scratch {
		dst = appendNormalizedToken(dst, tok)
	}
	return dst, scratch
}

// NormalizeTokens runs the full §II-B preprocessing over a raw phrase.
// The same function is applied to ingredient phrases and to food
// descriptions so the two sides stay comparable.
func NormalizeTokens(s string) []string {
	out, _ := appendNormalizedTokens(nil, s, nil)
	return out
}
