// Package match implements the paper's Closest Description Annotation
// (§II-B): mapping an ingredient name extracted by NER to the best food
// description in a USDA-SR style database using a Modified Jaccard Index
// over preprocessed word sets, with negation rewriting, a raw-state
// provision, sequence-priority collision resolution and first-match
// tie-breaking.
package match

import (
	"strings"

	"nutriprofile/internal/lemma"
	"nutriprofile/internal/stopwords"
	"nutriprofile/internal/textutil"
)

// negativePrefixWords whitelists the "un-"/"non-" words whose prefix is a
// true negation (§II-B(f): `we replaced all negation terms and prefixes
// (like "un" in unsalted) to "not"`). A whitelist avoids corrupting words
// like "union" or "uniform" where "un" is not a prefix.
var negativePrefixWords = map[string]string{
	"unsalted":        "salt",
	"unsweetened":     "sweeten",
	"uncooked":        "cook",
	"unbleached":      "bleach",
	"unenriched":      "enrich",
	"unseasoned":      "season",
	"unpeeled":        "peel",
	"unflavored":      "flavor",
	"unprepared":      "prepare",
	"unbaked":         "bake",
	"undiluted":       "dilute",
	"unheated":        "heat",
	"unsifted":        "sift",
	"unblanched":      "blanch",
	"uncured":         "cure",
	"undrained":       "drain",
	"unripe":          "ripe",
	"nonfat":          "fat",
	"nondairy":        "dairy",
	"nonhydrogenated": "hydrogenate",
}

// expandNegations rewrites one token into its negation-normalized form.
// It returns either the token itself (1 element) or ["not", base].
func expandNegations(tok string) []string {
	if stopwords.IsNegation(tok) {
		return []string{"not"}
	}
	if base, ok := negativePrefixWords[tok]; ok {
		return []string{"not", base}
	}
	// "X-free" and "Xless" suffixes negate X: fat-free → not fat,
	// boneless → not bone. Tokenize keeps hyphenated words whole, so the
	// forms arrive as single tokens.
	if rest, ok := strings.CutSuffix(tok, "-free"); ok && len(rest) >= 3 {
		return []string{"not", lemma.Word(rest)}
	}
	if rest, ok := strings.CutSuffix(tok, "less"); ok && len(rest) >= 4 {
		return []string{"not", lemma.Word(rest)}
	}
	return []string{tok}
}

// normalizeWord lemmatizes a token for set comparison. Nouns dominate
// description vocabulary, so the noun lemma is tried first; words that the
// noun lemmatizer leaves untouched but that carry verbal inflection
// (cooking states like "salted", "chopped") fall through to the verb
// lemmatizer so both sides of pairs like "salted"/"salt" unify.
func normalizeWord(tok string) string {
	n := lemma.Word(tok)
	if n != tok {
		return n
	}
	if strings.HasSuffix(tok, "ed") || strings.HasSuffix(tok, "ing") {
		return lemma.Lemmatize(tok, lemma.Verb)
	}
	return tok
}

// NormalizeTokens runs the full §II-B preprocessing over a raw phrase:
// uniform casing (Tokenize lower-cases), negation expansion, stop-word
// removal and lemmatization. The same function is applied to ingredient
// phrases and to food descriptions so the two sides stay comparable.
func NormalizeTokens(s string) []string {
	var out []string
	for _, tok := range textutil.Words(s) {
		for _, piece := range expandNegations(tok) {
			if piece == "not" {
				out = append(out, "not")
				continue
			}
			if stopwords.IsStop(piece) {
				continue
			}
			if n := normalizeWord(piece); n != "" {
				out = append(out, n)
			}
		}
	}
	return out
}

// descDoc is a preprocessed food description: its word set plus, for each
// word, the 1-based index of the FIRST comma-separated term the word
// appears in — the sequence priority of §II-B(h). hasRaw records whether
// the literal state word "raw" occurs anywhere in the description (for
// the §II-B(g) provision).
type descDoc struct {
	set      textutil.Set
	priority map[string]int
	hasRaw   bool
}

// normalizeDesc preprocesses one comma-separated food description.
func normalizeDesc(desc string) descDoc {
	doc := descDoc{
		set:      textutil.Set{},
		priority: map[string]int{},
	}
	for termIdx, term := range textutil.SplitCommaTerms(desc) {
		for _, w := range NormalizeTokens(term) {
			doc.set.Add(w)
			if _, seen := doc.priority[w]; !seen {
				doc.priority[w] = termIdx + 1
			}
			if w == "raw" {
				doc.hasRaw = true
			}
		}
	}
	return doc
}
