package match

// cand is one scored candidate during selection: everything the total
// order needs, in 24 bytes, with Result materialization deferred until
// the final k are known.
type cand struct {
	score float64
	pri   int32
	doc   int32
	raw   bool
}

// Bounded top-k selection. The arena's cands buffer holds the k best
// candidates seen so far as a binary heap with the WORST at the root
// (under the Matcher's `better` total order), so a streaming candidate
// either loses one comparison against the bar at sel[0] or evicts it in
// O(log k). sortCands then heap-sorts the survivors into best-first
// order — because `better` is a strict total order (the database index
// key is unique), this is the unique ordering sort.Slice produced, so
// the rewrite cannot perturb results.

// heapifyWorst establishes the worst-at-root invariant over sel.
func heapifyWorst(sel []cand, m *Matcher) {
	for i := len(sel)/2 - 1; i >= 0; i-- {
		siftWorst(sel, i, len(sel), m)
	}
}

// siftWorst restores the invariant below index i within sel[:n]: a
// parent must rank below (be worse than) both children.
func siftWorst(sel []cand, i, n int, m *Matcher) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		worst := l
		if r := l + 1; r < n && m.better(sel[l], sel[r]) {
			worst = r
		}
		if m.better(sel[worst], sel[i]) {
			return // parent already worse than its worst child
		}
		sel[i], sel[worst] = sel[worst], sel[i]
		i = worst
	}
}

// sortCands orders sel best-first (index 0 = top result) by heapsort:
// repeatedly swap the worst survivor to the tail and re-sift.
func sortCands(sel []cand, m *Matcher) {
	if len(sel) < 2 {
		return
	}
	heapifyWorst(sel, m)
	for end := len(sel) - 1; end > 0; end-- {
		sel[0], sel[end] = sel[end], sel[0]
		siftWorst(sel, 0, end, m)
	}
}
