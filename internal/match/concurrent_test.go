package match

import (
	"fmt"
	"sync"
	"testing"

	"nutriprofile/internal/usda"
)

// TestConcurrentRankDeterministic drives full Rank lists (not just the
// top-1 Match) from 8 goroutines sharing one Matcher and requires every
// ranking to be byte-identical to the single-goroutine reference —
// order included. Run under -race in CI, this pins the documented
// guarantee that Rank is safe and deterministic under concurrency.
func TestConcurrentRankDeterministic(t *testing.T) {
	m := NewDefault(usda.Seed())
	queries := []Query{
		{Name: "butter"},
		{Name: "onion", State: "chopped"},
		{Name: "flour"},
		{Name: "chicken breast", State: "boneless"},
		{Name: "tomato"},
		{Name: "milk", DryFresh: "fresh"},
	}
	render := func(rs []Result) string { return fmt.Sprintf("%+v", rs) }
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = render(m.Rank(q, 10))
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 100; iter++ {
				i := (iter + g) % len(queries)
				if got := render(m.Rank(queries[i], 10)); got != want[i] {
					errs <- fmt.Sprintf("goroutine %d query %d:\n got: %s\nwant: %s", g, i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}

// TestConcurrentFuzzyMatch covers the typo-correction path, whose
// correct() walks the shared inverted index: map iteration order varies
// per goroutine, so this pins that corrections are order-independent.
func TestConcurrentFuzzyMatch(t *testing.T) {
	m := NewDefault(usda.Seed())
	queries := []Query{
		{Name: "buttre"}, {Name: "oinon"}, {Name: "flouur"}, {Name: "tomatto"},
	}
	type ref struct {
		res Result
		ok  bool
	}
	want := make([]ref, len(queries))
	for i, q := range queries {
		want[i].res, want[i].ok = m.MatchFuzzy(q)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				i := iter % len(queries)
				r, ok := m.MatchFuzzy(queries[i])
				if ok != want[i].ok || r.NDB != want[i].res.NDB {
					errs <- fmt.Sprintf("fuzzy %q → (%d,%v), want (%d,%v)",
						queries[i].Name, r.NDB, ok, want[i].res.NDB, want[i].ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}
