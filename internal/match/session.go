package match

// Session pins one scoring arena to a caller for many queries, so a
// batch worker pays the arena pool checkout once per worker lifetime
// instead of once per phrase. Match/Rank acquire and release an arena
// per call, which is free when the sync.Pool's per-P cache holds one —
// but under an oversubscribed multi-core pool, goroutine migration and
// GC cycles drain the per-P caches, and every miss rebuilds the dense
// per-document accumulator arrays from scratch (the measured allocs/op
// inflation of the parallel batch path; DESIGN.md §12).
//
// A Session is not safe for concurrent use: it belongs to exactly one
// goroutine between NewSession and Close. Results are identical to the
// pool-backed entry points — a Session only changes who holds the arena
// between queries.
type Session struct {
	m *Matcher
	a *arena
}

// NewSession checks one arena out of the matcher's pool and pins it.
// Callers must Close to return the arena; an abandoned Session is plain
// garbage (the arena is simply collected, like any pool miss).
func (m *Matcher) NewSession() *Session {
	return &Session{m: m, a: m.getArena()}
}

// Close returns the pinned arena to the matcher's pool. The Session
// must not be used afterwards.
func (s *Session) Close() {
	if s.a != nil {
		s.m.putArena(s.a)
		s.a = nil
	}
}

// Match is Matcher.Match on the pinned arena.
func (s *Session) Match(q Query) (Result, bool) {
	cands := s.m.rankCands(s.a, q, 1)
	if len(cands) == 0 {
		return Result{}, false
	}
	var r Result
	s.m.fillResult(s.a, cands[0], &r)
	return r, true
}

// MatchFuzzy is Matcher.MatchFuzzy on the pinned arena: an exact Match
// first, then a corrected retry for queries that found nothing.
func (s *Session) MatchFuzzy(q Query) (Result, bool) {
	if r, ok := s.Match(q); ok {
		return r, true
	}
	if fixed, changed := s.m.CorrectQuery(q); changed {
		return s.Match(fixed)
	}
	return Result{}, false
}
