package match

// ExactMatcher is the naive string-matching baseline the paper's
// introduction positions itself against ("Previous studies have testified
// the efficiency of string-matching methods on small datasets"): an
// ingredient matches a description only if EVERY preprocessed ingredient
// word appears in the description (full containment), ties broken by
// shorter description then database order. It has no modified-Jaccard
// partial credit, no raw provision, no priority resolution — on a large
// noisy corpus its coverage collapses, which is the gap the paper's
// §II-B heuristics close. Included for the baseline comparison bench.
type ExactMatcher struct {
	m *Matcher
}

// NewExact wraps a prepared Matcher's preprocessed index with
// containment-only semantics.
func NewExact(m *Matcher) *ExactMatcher { return &ExactMatcher{m: m} }

// Match returns the first (shortest-description) food containing every
// query word, or ok=false.
func (e *ExactMatcher) Match(q Query) (Result, bool) {
	anchor, scored, _ := e.m.querySet(q)
	if anchor.Len() == 0 {
		return Result{}, false
	}
	bestIdx, bestLen := -1, 1<<31-1
	for i := range e.m.docs {
		doc := &e.m.docs[i]
		if scored.IntersectLen(doc.set) != scored.Len() {
			continue // not full containment
		}
		if doc.set.Len() < bestLen {
			bestIdx, bestLen = i, doc.set.Len()
		}
	}
	if bestIdx < 0 {
		return Result{}, false
	}
	food := e.m.db.At(bestIdx)
	return Result{
		NDB: food.NDB, Desc: food.Desc, Score: 1.0,
		Matched: scored.Sorted(), index: bestIdx,
	}, true
}
