package match

import "nutriprofile/internal/textutil"

// ExactMatcher is the naive string-matching baseline the paper's
// introduction positions itself against ("Previous studies have testified
// the efficiency of string-matching methods on small datasets"): an
// ingredient matches a description only if EVERY preprocessed ingredient
// word appears in the description (full containment), ties broken by
// shorter description then database order. It has no modified-Jaccard
// partial credit, no raw provision, no priority resolution — on a large
// noisy corpus its coverage collapses, which is the gap the paper's
// §II-B heuristics close. Included for the baseline comparison bench.
type ExactMatcher struct {
	m *Matcher
}

// NewExact wraps a prepared Matcher's preprocessed index with
// containment-only semantics.
func NewExact(m *Matcher) *ExactMatcher { return &ExactMatcher{m: m} }

// Match returns the first (shortest-description) food containing every
// query word, or ok=false.
func (e *ExactMatcher) Match(q Query) (Result, bool) {
	anchor, scored, _ := e.m.querySet(q)
	if anchor.Len() == 0 {
		return Result{}, false
	}
	// Lift the scored words into ID space. A word absent from the
	// interned vocabulary appears in no description, so full containment
	// is impossible for the whole query.
	ids := make([]uint32, 0, scored.Len())
	for w := range scored {
		id, ok := e.m.vocab.Lookup(w)
		if !ok {
			return Result{}, false
		}
		ids = append(ids, id)
	}
	want := textutil.NewIDSet(ids)
	bestIdx, bestLen := -1, 1<<31-1
	for d := 0; d < e.m.db.Len(); d++ {
		doc := e.m.docIDs(int32(d))
		if !doc.ContainsAll(want) {
			continue // not full containment
		}
		if doc.Len() < bestLen {
			bestIdx, bestLen = d, doc.Len()
		}
	}
	if bestIdx < 0 {
		return Result{}, false
	}
	food := e.m.db.At(bestIdx)
	return Result{
		NDB: food.NDB, Desc: food.Desc, Score: 1.0,
		Matched: scored.Sorted(), index: bestIdx,
	}, true
}
