package match

// Differential suite for the candidate-pruned ranking engine. The
// exhaustive engine behind Options.DisablePruning is the executable
// specification (rankCandsExhaustive); every test here demands
// reflect.DeepEqual-identical []Result slices from both engines — same
// scores, same tie-breaks, same Matched materialization, same slice
// nil-ness — across golden corpora, randomized databases, fuzzed
// queries, and the full SR26-scale NER workload. A pruning bug cannot
// hide behind "close enough": one divergent cell fails the suite.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"nutriprofile/internal/ner"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/usda"
)

// prunePair builds the two engines over one database with otherwise
// identical options.
func prunePair(db *usda.DB, opts Options) (pruned, exhaustive *Matcher) {
	opts.DisablePruning = false
	pruned = New(db, opts)
	opts.DisablePruning = true
	exhaustive = New(db, opts)
	return pruned, exhaustive
}

// diffCell compares one (query, k) cell across the engine pair.
func diffCell(t testing.TB, pruned, exhaustive *Matcher, q Query, k int) {
	t.Helper()
	got := pruned.Rank(q, k)
	want := exhaustive.Rank(q, k)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pruned diverged from exhaustive spec: q=%+v k=%d opts=%+v\n  pruned %s\n  spec   %s",
			q, k, pruned.opts, renderResults(got), renderResults(want))
	}
}

var pruneKs = []int{0, 1, 3, 10}

// TestPruneDifferentialGolden sweeps the same grid the interning golden
// test uses — every option set (both metrics × all 2³ heuristic
// ablations × the strict-MinScore case) × the derived + adversarial
// query corpus × k ∈ {0,1,3,10} — but pits the pruned engine against
// the exhaustive spec instead of the map reference.
func TestPruneDifferentialGolden(t *testing.T) {
	db := usda.Seed()
	corpus := goldenCorpus(db)
	cells := 0
	for _, opts := range goldenOptionSets() {
		pruned, exhaustive := prunePair(db, opts)
		for _, q := range corpus {
			for _, k := range pruneKs {
				diffCell(t, pruned, exhaustive, q, k)
				cells++
			}
		}
	}
	t.Logf("compared %d (options × query × k) cells", cells)
}

// pruneVocab is deliberately tiny so random descriptions collide hard:
// shared terms, duplicate word sets, score ties, and "raw" both as a
// description word (raw-provision bonus) and a query word (bonus
// suppression) all occur constantly.
var pruneVocab = []string{
	"oil", "olive", "butter", "salt", "milk", "whole", "raw", "chicken",
	"breast", "cheese", "cream", "tomato", "paste", "beans", "frozen",
	"dried", "wheat", "flour", "sugar", "brown", "egg", "white", "corn",
	"syrup", "apple", "juice", "pepper", "red", "green", "fat", "free", "low",
}

// randomFoodDB builds a synthetic database of n comma-term descriptions
// drawn from pruneVocab. Every structural property the tie-break chain
// depends on — first-term priorities, hasRaw, duplicate descriptions —
// arises naturally from the collisions.
func randomFoodDB(rng *rand.Rand, n int) *usda.DB {
	foods := make([]usda.Food, n)
	for i := range foods {
		desc := ""
		for term := 0; term <= rng.Intn(3); term++ {
			if term > 0 {
				desc += ", "
			}
			for w := 0; w <= rng.Intn(3); w++ {
				if w > 0 {
					desc += " "
				}
				desc += pruneVocab[rng.Intn(len(pruneVocab))]
			}
		}
		foods[i] = usda.Food{NDB: 90000 + i, Desc: desc}
	}
	return usda.MustNewDB(foods)
}

// randomQuery assembles a query from the same vocabulary plus an
// occasional out-of-vocabulary token, with folded entities appearing at
// the same rates the NER front-end produces them.
func randomQuery(rng *rand.Rand) Query {
	word := func() string {
		if rng.Intn(12) == 0 {
			return "qzxv"
		}
		return pruneVocab[rng.Intn(len(pruneVocab))]
	}
	name := word()
	for i := 0; i < rng.Intn(4); i++ {
		name += " " + word()
	}
	q := Query{Name: name}
	if rng.Intn(3) == 0 {
		q.State = word()
	}
	if rng.Intn(6) == 0 {
		q.Temp = word()
	}
	if rng.Intn(6) == 0 {
		q.DryFresh = word()
	}
	return q
}

// TestPruneMetamorphicRandom runs the engine pair over randomized
// databases and queries: every option set, both metrics, all k values.
// Distinct seeds per database keep the sweep reproducible.
func TestPruneMetamorphicRandom(t *testing.T) {
	dbs, queries := 20, 30
	if testing.Short() {
		dbs = 6
	}
	cells := 0
	for seed := 0; seed < dbs; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		db := randomFoodDB(rng, 40+rng.Intn(160))
		qs := make([]Query, queries)
		for i := range qs {
			qs[i] = randomQuery(rng)
		}
		for _, opts := range goldenOptionSets() {
			pruned, exhaustive := prunePair(db, opts)
			for _, q := range qs {
				for _, k := range pruneKs {
					diffCell(t, pruned, exhaustive, q, k)
					cells++
				}
			}
		}
	}
	t.Logf("compared %d randomized cells across %d databases", cells, dbs)
}

// FuzzPruneDifferential lets the fuzzer drive both the database shape
// and the query text. Arbitrary name/state strings exercise the
// normalization front-end (unicode, punctuation, negations) on top of
// the randomized index, and the option mask rotates the metric and
// heuristic ablations per input.
func FuzzPruneDifferential(f *testing.F) {
	f.Add(int64(1), "raw whole milk", "", uint8(10))
	f.Add(int64(2), "tomato paste", "raw", uint8(1))
	f.Add(int64(3), "qzxv florp", "frozen", uint8(0))
	f.Add(int64(4), "no salt added butter", "dried", uint8(3))
	f.Add(int64(5), "½ apple, raw", "raw", uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, name, state string, bits uint8) {
		rng := rand.New(rand.NewSource(seed))
		db := randomFoodDB(rng, 20+rng.Intn(120))
		opts := Options{
			Metric:             ModifiedJaccard,
			RawProvision:       bits&1 != 0,
			PriorityResolution: bits&2 != 0,
			NameAnchoring:      bits&4 != 0,
			ExplainMatched:     bits&8 != 0,
			MinScore:           1e-9,
		}
		if bits&16 != 0 {
			opts.Metric = VanillaJaccard
		}
		if bits&32 != 0 {
			opts.MinScore = 0.5
		}
		pruned, exhaustive := prunePair(db, opts)
		k := int(bits >> 6) // 0..3: all, 1, 2, 3
		for _, q := range []Query{
			{Name: name, State: state},
			{Name: name},
			randomQuery(rng),
		} {
			diffCell(t, pruned, exhaustive, q, k)
			diffCell(t, pruned, exhaustive, q, 10)
		}
	})
}

// TestPruneGoldenSR26Corpus is the production-shaped differential: the
// full SR26-scale merged database against every distinct query the NER
// front-end extracts from the generated recipe corpus — the same
// workload the cold-batch experiments measure. -short trades scale for
// speed but keeps the same structure.
func TestPruneGoldenSR26Corpus(t *testing.T) {
	recipes, synth := 20000, 7500
	if testing.Short() {
		recipes, synth = 2000, 800
	}
	db := usda.Merged(synth, 3)
	corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: recipes, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Dedupe on the extracted query, not the raw phrase: quantities make
	// most phrases unique but collapse to the same ranking input.
	seen := map[Query]struct{}{}
	var queries []Query
	for _, p := range corpus.Phrases() {
		ex := ner.Extract(ner.RuleTagger{}, p)
		if ex.Name == "" {
			continue
		}
		q := Query{Name: ex.Name, State: ex.State, Temp: ex.Temp, DryFresh: ex.DryFresh}
		if _, dup := seen[q]; dup {
			continue
		}
		seen[q] = struct{}{}
		queries = append(queries, q)
	}

	cells := 0
	for _, metric := range []Metric{ModifiedJaccard, VanillaJaccard} {
		opts := DefaultOptions()
		opts.Metric = metric
		pruned, exhaustive := prunePair(db, opts)
		for _, q := range queries {
			for _, k := range []int{1, 10} {
				diffCell(t, pruned, exhaustive, q, k)
				cells++
			}
		}
	}
	t.Logf("compared %d cells: %d NER queries over %d foods", cells, len(queries), db.Len())
}

// TestPruneCountersAccount pins the observability contract: the pruned
// engine reports its work avoidance through MatcherStats, and the
// exhaustive ablation reports none. The long-posting workload must
// trigger every counter class the /metrics families export.
func TestPruneCountersAccount(t *testing.T) {
	db := usda.Merged(2000, 3)
	pruned, exhaustive := prunePair(db, DefaultOptions())
	for _, m := range []*Matcher{pruned, exhaustive} {
		for _, q := range longPostingQueries {
			for _, k := range []int{1, 10} {
				if rs := m.Rank(q, k); len(rs) == 0 {
					t.Fatalf("no results for %+v", q)
				}
			}
		}
	}

	st := pruned.Stats()
	if !st.PruningEnabled {
		t.Error("pruned engine reports PruningEnabled=false")
	}
	for name, v := range map[string]uint64{
		"PrunePostingsAvoided": st.PrunePostingsAvoided,
		"PruneDocsDropped":     st.PruneDocsDropped,
		"PruneGatherExits":     st.PruneGatherExits,
		"AdaptiveProbeTerms":   st.AdaptiveProbeTerms,
	} {
		if v == 0 {
			t.Errorf("%s = 0 after the long-posting workload", name)
		}
	}

	se := exhaustive.Stats()
	if se.PruningEnabled {
		t.Error("exhaustive engine reports PruningEnabled=true")
	}
	for name, v := range map[string]uint64{
		"PruneTermsSkipped":    se.PruneTermsSkipped,
		"PrunePostingsAvoided": se.PrunePostingsAvoided,
		"PruneDocsDropped":     se.PruneDocsDropped,
		"PruneCompactions":     se.PruneCompactions,
		"PruneGatherExits":     se.PruneGatherExits,
		"AdaptiveProbeTerms":   se.AdaptiveProbeTerms,
	} {
		if v != 0 {
			t.Errorf("exhaustive engine moved prune counter %s = %d", name, v)
		}
	}
}

// TestPruneOptionDefault documents that pruning is the production
// default and the ablation flag round-trips through Stats.
func TestPruneOptionDefault(t *testing.T) {
	if DefaultOptions().DisablePruning {
		t.Fatal("DefaultOptions disables pruning; the pruned engine must be the default")
	}
	for _, disable := range []bool{false, true} {
		opts := DefaultOptions()
		opts.DisablePruning = disable
		m := New(usda.Seed(), opts)
		if got := m.Stats().PruningEnabled; got != !disable {
			t.Errorf("DisablePruning=%v: Stats().PruningEnabled = %v, want %v",
				disable, got, fmt.Sprint(!disable))
		}
	}
}
