//go:build !race

package match

const raceEnabled = false
