package match

import (
	"testing"

	"nutriprofile/internal/usda"
)

func TestExactMatcherContainment(t *testing.T) {
	em := NewExact(defaultMatcher(t))
	// A query whose words all appear in a description matches…
	if r, ok := em.Match(Query{Name: "butter salted"}); !ok || r.Desc != "Butter, salted" {
		t.Errorf("butter salted → (%q,%v)", r.Desc, ok)
	}
	// …but one extra unmatched word kills it (no partial credit).
	if r, ok := em.Match(Query{Name: "salted butter sticks"}); ok {
		t.Errorf("containment baseline matched %q despite extra word", r.Desc)
	}
}

func TestExactMatcherPrefersShorterDescription(t *testing.T) {
	em := NewExact(defaultMatcher(t))
	r, ok := em.Match(Query{Name: "butter"})
	if !ok {
		t.Fatal("bare butter unmatched")
	}
	// "Butter, salted" (2 words) must beat longer butter descriptions.
	if r.Desc != "Butter, salted" {
		t.Errorf("butter → %q", r.Desc)
	}
}

func TestExactBaselineCoverageCollapses(t *testing.T) {
	// The gap the paper's heuristics close: on realistic noisy names the
	// containment baseline matches far less than the modified-Jaccard
	// matcher.
	m := defaultMatcher(t)
	em := NewExact(m)
	queries := []Query{
		{Name: "red lentils"},                     // desc says "pink or red"
		{Name: "skim milk"},                       // desc is the long nonfat variant
		{Name: "boneless chicken breast"},         // desc lacks "boneless"
		{Name: "all-purpose flour"},               // desc spells it differently
		{Name: "cayenne pepper", State: "ground"}, // desc says "red or cayenne"
		{Name: "unsalted butter"},
		{Name: "butter"},
		{Name: "egg whites"},
	}
	full, exact := 0, 0
	for _, q := range queries {
		if _, ok := m.Match(q); ok {
			full++
		}
		if _, ok := em.Match(q); ok {
			exact++
		}
	}
	if full != len(queries) {
		t.Fatalf("modified matcher covered %d/%d", full, len(queries))
	}
	if exact >= full {
		t.Errorf("containment baseline covered %d/%d — no gap to close?", exact, full)
	}
	t.Logf("coverage: modified %d/%d, containment baseline %d/%d",
		full, len(queries), exact, len(queries))
}

func BenchmarkExactMatcher(b *testing.B) {
	em := NewExact(NewDefault(usda.Seed()))
	q := Query{Name: "butter salted"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.Match(q)
	}
}
