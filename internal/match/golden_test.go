package match

// Golden differential test for the interned-vocabulary engine: refMatcher
// below is the pre-interning implementation — map[string]struct{} word
// sets, map[string][]int32 inverted index, per-candidate Matched
// materialization, full sort.Slice — kept verbatim as an executable
// specification. Every (query, options, k) cell must produce a
// reflect.DeepEqual-identical []Result from both engines, pinning the
// rewrite to byte-identical behavior across the full seed DB, a corpus of
// derived + adversarial queries, both metrics, and every heuristic
// ablation.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"nutriprofile/internal/textutil"
	"nutriprofile/internal/usda"
)

// refDoc is the reference engine's preprocessed description (the old
// descDoc): its word set plus each word's first comma-term index
// (§II-B(h)) and the literal-"raw" flag (§II-B(g)).
type refDoc struct {
	set      textutil.Set
	priority map[string]int
	hasRaw   bool
}

func refNormalizeDesc(desc string) refDoc {
	doc := refDoc{set: textutil.Set{}, priority: map[string]int{}}
	for termIdx, term := range textutil.SplitCommaTerms(desc) {
		for _, w := range NormalizeTokens(term) {
			doc.set.Add(w)
			if _, seen := doc.priority[w]; !seen {
				doc.priority[w] = termIdx + 1
			}
			if w == "raw" {
				doc.hasRaw = true
			}
		}
	}
	return doc
}

// refMatcher is the old map-based scoring engine.
type refMatcher struct {
	db       *usda.DB
	opts     Options
	docs     []refDoc
	inverted map[string][]int32
}

func newRefMatcher(db *usda.DB, opts Options) *refMatcher {
	m := &refMatcher{
		db:       db,
		opts:     opts,
		docs:     make([]refDoc, db.Len()),
		inverted: make(map[string][]int32),
	}
	for i := 0; i < db.Len(); i++ {
		doc := refNormalizeDesc(db.At(i).Desc)
		m.docs[i] = doc
		for w := range doc.set {
			m.inverted[w] = append(m.inverted[w], int32(i))
		}
	}
	return m
}

func (m *refMatcher) querySet(q Query) (anchor, scored textutil.Set, rawEligible bool) {
	nameTokens := NormalizeTokens(q.Name)
	tokens := nameTokens
	for _, extra := range []string{q.State, q.Temp, q.DryFresh} {
		if extra != "" {
			tokens = append(tokens, NormalizeTokens(extra)...)
		}
	}
	scored = textutil.NewSet(tokens)
	anchor = scored
	if m.opts.NameAnchoring {
		anchor = textutil.NewSet(nameTokens)
	}
	rawEligible = m.opts.RawProvision && q.State == "" && !scored.Has("raw")
	return anchor, scored, rawEligible
}

func (m *refMatcher) Rank(q Query, k int) []Result {
	anchor, qset, rawEligible := m.querySet(q)
	if anchor.Len() == 0 {
		return nil
	}
	candSet := map[int32]struct{}{}
	for w := range anchor {
		for _, i := range m.inverted[w] {
			candSet[i] = struct{}{}
		}
	}
	if len(candSet) == 0 {
		return nil
	}
	results := make([]Result, 0, len(candSet))
	for i := range candSet {
		doc := &m.docs[i]
		if anchor.IntersectLen(doc.set) == 0 {
			continue
		}
		inter := qset.IntersectLen(doc.set)
		var score float64
		switch m.opts.Metric {
		case VanillaJaccard:
			score = float64(inter) / float64(qset.UnionLen(doc.set))
		default:
			score = float64(inter) / float64(qset.Len())
		}
		if score < m.opts.MinScore {
			continue
		}
		matched := make([]string, 0, inter)
		priority := 0
		for w := range qset {
			if doc.set.Has(w) {
				matched = append(matched, w)
				priority += doc.priority[w]
			}
		}
		sort.Strings(matched)
		food := m.db.At(int(i))
		results = append(results, Result{
			NDB: food.NDB, Desc: food.Desc, Score: score,
			Priority: priority, RawBonus: rawEligible && doc.hasRaw,
			Matched: matched, index: int(i),
		})
	}
	if len(results) == 0 {
		return nil
	}
	sort.Slice(results, func(a, b int) bool {
		ra, rb := &results[a], &results[b]
		if ra.Score != rb.Score {
			return ra.Score > rb.Score
		}
		if ra.RawBonus != rb.RawBonus {
			return ra.RawBonus
		}
		if m.opts.PriorityResolution && ra.Priority != rb.Priority {
			return ra.Priority < rb.Priority
		}
		return ra.index < rb.index
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// goldenCorpus builds the query sweep: every seed description recycled
// into queries (first comma term as NAME, second as STATE — guaranteeing
// in-vocabulary hits, score ties among sibling descriptions, and raw/
// priority collisions), plus handcrafted adversarial queries covering
// negations, unicode fractions, out-of-vocabulary words, empty and
// punctuation-only names, multi-entity queries and "raw" as a query word.
func goldenCorpus(db *usda.DB) []Query {
	var corpus []Query
	for i := 0; i < db.Len(); i++ {
		terms := textutil.SplitCommaTerms(db.At(i).Desc)
		q := Query{Name: terms[0]}
		corpus = append(corpus, q)
		if len(terms) > 1 {
			corpus = append(corpus,
				Query{Name: terms[0], State: terms[1]},
				Query{Name: terms[0] + " " + terms[1]})
		}
	}
	corpus = append(corpus,
		Query{},                    // empty everything
		Query{Name: "   "},         // whitespace only
		Query{Name: "1/2 (2,%)"},   // punctuation/number only → no words
		Query{Name: "qzxv florp"},  // fully out-of-vocabulary
		Query{Name: "butter qzxv"}, // partially out-of-vocabulary
		Query{Name: "unsalted butter"},
		Query{Name: "fat-free milk"},
		Query{Name: "boneless chicken"},
		Query{Name: "raw apple"}, // "raw" as an explicit query word
		Query{Name: "apple"},     // raw provision tie-break
		Query{Name: "tomato"},
		Query{Name: "tomato paste"},
		Query{Name: "egg", State: "boiled"},
		Query{Name: "chicken breast", State: "roasted", Temp: "hot"},
		Query{Name: "beans", State: "cooked", DryFresh: "dry"},
		Query{Name: "milk", DryFresh: "fresh"},
		Query{Name: "½ apple"},                 // unicode fraction in the phrase
		Query{Name: "Butter, with salt"},       // commas in a query name
		Query{Name: "lentils lentils lentils"}, // duplicate words
		Query{Name: "salt", State: "salt"},     // same word both entities
		Query{Name: "no salt added butter"},    // standalone negation
	)
	return corpus
}

// goldenOptionSets enumerates both metrics × every 2³ heuristic ablation
// (ExplainMatched on, so Matched materialization is compared too), plus a
// high-MinScore filter case.
func goldenOptionSets() []Options {
	var sets []Options
	for _, metric := range []Metric{ModifiedJaccard, VanillaJaccard} {
		for mask := 0; mask < 8; mask++ {
			sets = append(sets, Options{
				Metric:             metric,
				RawProvision:       mask&1 != 0,
				PriorityResolution: mask&2 != 0,
				NameAnchoring:      mask&4 != 0,
				MinScore:           1e-9,
				ExplainMatched:     true,
			})
		}
	}
	strict := DefaultOptions()
	strict.MinScore = 0.5
	strict.ExplainMatched = true
	sets = append(sets, strict)
	return sets
}

func TestGoldenDifferentialAgainstMapEngine(t *testing.T) {
	db := usda.Seed()
	corpus := goldenCorpus(db)
	ks := []int{0, 1, 3, 10}
	cells := 0
	for oi, opts := range goldenOptionSets() {
		ref := newRefMatcher(db, opts)
		cur := New(db, opts)
		for _, q := range corpus {
			for _, k := range ks {
				want := ref.Rank(q, k)
				got := cur.Rank(q, k)
				cells++
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("opts[%d]=%+v q=%+v k=%d:\n got %s\nwant %s",
						oi, opts, q, k, renderResults(got), renderResults(want))
				}
			}
		}
	}
	t.Logf("compared %d (options × query × k) cells", cells)
}

// TestGoldenLazyMatched pins the ExplainMatched=false contract: identical
// rankings with Matched left nil.
func TestGoldenLazyMatched(t *testing.T) {
	db := usda.Seed()
	eager := DefaultOptions()
	eager.ExplainMatched = true
	ref := newRefMatcher(db, eager)
	cur := New(db, DefaultOptions()) // ExplainMatched off
	for _, q := range goldenCorpus(db) {
		want := ref.Rank(q, 5)
		for i := range want {
			want[i].Matched = nil
		}
		if got := cur.Rank(q, 5); !reflect.DeepEqual(got, want) {
			t.Fatalf("q=%+v:\n got %s\nwant %s", q, renderResults(got), renderResults(want))
		}
	}
}

// TestGoldenRankInto pins that the zero-allocation variant returns the
// same results as Rank through a reused buffer.
func TestGoldenRankInto(t *testing.T) {
	db := usda.Seed()
	m := NewDefault(db)
	var buf []Result
	for _, q := range goldenCorpus(db) {
		buf = m.RankInto(q, 7, buf)
		want := m.Rank(q, 7)
		if len(buf) == 0 && want == nil {
			continue
		}
		if !reflect.DeepEqual([]Result(buf), want) {
			t.Fatalf("q=%+v: RankInto %s != Rank %s", q, renderResults(buf), renderResults(want))
		}
	}
}

func renderResults(rs []Result) string {
	if rs == nil {
		return "nil"
	}
	s := "[\n"
	for _, r := range rs {
		s += fmt.Sprintf("  {NDB:%d Score:%v Pri:%d Raw:%v idx:%d Matched:%q Desc:%q}\n",
			r.NDB, r.Score, r.Priority, r.RawBonus, r.index, r.Matched, r.Desc)
	}
	return s + "]"
}
