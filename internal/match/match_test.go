package match

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"nutriprofile/internal/usda"
)

func defaultMatcher(t testing.TB) *Matcher {
	t.Helper()
	return NewDefault(usda.Seed())
}

func mustMatch(t *testing.T, m *Matcher, q Query) Result {
	t.Helper()
	r, ok := m.Match(q)
	if !ok {
		t.Fatalf("no match for %+v", q)
	}
	return r
}

func TestNormalizeTokens(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		// §II-B(f): the paper's worked example — both sides normalize to
		// the same set.
		{"unsalted butter", []string{"not", "salt", "butter"}},
		{"Butter, without salt", []string{"butter", "not", "salt"}},
		{"Egg whites", []string{"egg", "white"}},
		{"Whole eggs", []string{"whole", "egg"}},
		{"Apples, raw, with skin", []string{"apple", "raw", "skin"}},
		{"low-fat sour cream", []string{"low-fat", "sour", "cream"}},
		{"fat-free milk", []string{"not", "fat", "milk"}},
		{"boneless chicken", []string{"not", "bone", "chicken"}},
		{"2 cups all-purpose flour", []string{"cup", "all-purpose", "flour"}},
	}
	for _, c := range cases {
		if got := NormalizeTokens(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("NormalizeTokens(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPerfectNegationMatch(t *testing.T) {
	// §II-B(f): "unsalted butter" must match "Butter, without salt" with
	// a perfect score.
	m := defaultMatcher(t)
	r := mustMatch(t, m, Query{Name: "unsalted butter", State: "x-no-raw"})
	if r.Desc != "Butter, without salt" {
		t.Errorf("unsalted butter → %q, want Butter, without salt", r.Desc)
	}
	r2 := mustMatch(t, m, Query{Name: "unsalted butter"})
	if r2.Desc != "Butter, without salt" {
		t.Errorf("unsalted butter (no state) → %q", r2.Desc)
	}
}

func TestEggVariants(t *testing.T) {
	// §II-B(c): "Egg whites" → "Egg, white, raw, fresh";
	// "Whole eggs" → "Egg, whole, raw, fresh".
	m := defaultMatcher(t)
	if r := mustMatch(t, m, Query{Name: "egg whites"}); r.Desc != "Egg, white, raw, fresh" {
		t.Errorf("egg whites → %q", r.Desc)
	}
	if r := mustMatch(t, m, Query{Name: "whole eggs"}); r.Desc != "Egg, whole, raw, fresh" {
		t.Errorf("whole eggs → %q", r.Desc)
	}
	if r := mustMatch(t, m, Query{Name: "egg yolk"}); r.Desc != "Egg, yolk, raw, fresh" {
		t.Errorf("egg yolk → %q", r.Desc)
	}
	// §II-B(i): bare "eggs" ties across whole/white/yolk and resolves to
	// the first SR row, the whole egg.
	if r := mustMatch(t, m, Query{Name: "eggs"}); r.Desc != "Egg, whole, raw, fresh" {
		t.Errorf("eggs → %q, want Egg, whole, raw, fresh", r.Desc)
	}
}

func TestAppleRawProvisionAndPriority(t *testing.T) {
	// §II-B(g)+(h)+(i): "apple" → "Apples, raw, with skin", beating both
	// "Babyfood, apples, dices, toddler" (priority) and "Apples, raw,
	// without skin" (first match).
	m := defaultMatcher(t)
	r := mustMatch(t, m, Query{Name: "apple"})
	if r.Desc != "Apples, raw, with skin" {
		t.Errorf("apple → %q, want Apples, raw, with skin", r.Desc)
	}
}

func TestRawProvisionDisabledChangesNothingWithState(t *testing.T) {
	// With a STATE present the provision must not add "raw".
	m := defaultMatcher(t)
	_, scored, eligibleNoState := m.querySet(Query{Name: "apple"})
	_, _, eligibleWithState := m.querySet(Query{Name: "apple", State: "chopped"})
	if !eligibleNoState {
		t.Error("raw provision not eligible for stateless query")
	}
	if scored.Has("raw") {
		t.Error("raw must never enter the scored set")
	}
	if eligibleWithState {
		t.Error("raw provision wrongly eligible with STATE present")
	}
	// The bonus surfaces on results for raw descriptions only.
	rs := m.Rank(Query{Name: "apple"}, 0)
	sawBonus := false
	for _, r := range rs {
		if strings.Contains(r.Desc, "raw") != r.RawBonus {
			t.Errorf("RawBonus=%v for %q", r.RawBonus, r.Desc)
		}
		if r.RawBonus {
			sawBonus = true
		}
	}
	if !sawBonus {
		t.Error("no raw-bonus results for bare apple")
	}
}

func TestTableIIIModifiedInferences(t *testing.T) {
	// The Table III rows our database can reproduce under the modified
	// index (queries as NAME[+STATE] pairs as the NER emits them).
	m := defaultMatcher(t)
	cases := []struct {
		q    Query
		want string
	}{
		{Query{Name: "red lentils"}, "Lentils, pink or red, raw"},
		{Query{Name: "coriander", State: "ground"}, "Coriander (cilantro) leaves, raw"},
		{Query{Name: "tomato paste"}, "Tomato products, canned, paste, without salt added"},
		{Query{Name: "fava beans"}, "Broadbeans (fava beans), mature seeds, raw"},
		{Query{Name: "cayenne pepper", State: "ground"}, "Spices, pepper, red or cayenne"},
		{Query{Name: "sesame seeds"}, "Seeds, sesame seeds, whole, dried"},
	}
	for _, c := range cases {
		r := mustMatch(t, m, c.q)
		if r.Desc != c.want {
			t.Errorf("%+v → %q, want %q", c.q, r.Desc, c.want)
		}
	}
}

func TestModifiedBeatsVanillaOnDetailedDescriptions(t *testing.T) {
	// §II-B(e): under the modified index, "skim milk" must prefer the
	// long, detailed nonfat-milk description over short ones like
	// "Milk shakes, thick chocolate".
	m := defaultMatcher(t)
	r := mustMatch(t, m, Query{Name: "skim milk"})
	if !strings.HasPrefix(r.Desc, "Milk, nonfat") {
		t.Errorf("skim milk (modified) → %q, want Milk, nonfat, …", r.Desc)
	}
}

func TestMetricsDiverge(t *testing.T) {
	// The two metrics must disagree on a meaningful fraction of queries —
	// the paper found 227/1000 differing. Here we just require that some
	// of a probe set diverge.
	mod := New(usda.Seed(), DefaultOptions())
	vanOpts := DefaultOptions()
	vanOpts.Metric = VanillaJaccard
	van := New(usda.Seed(), vanOpts)

	probes := []Query{
		{Name: "skim milk"}, {Name: "red lentils"}, {Name: "vegetable broth"},
		{Name: "chicken"}, {Name: "tomato paste"}, {Name: "butter"},
		{Name: "milk"}, {Name: "cheese"}, {Name: "sour cream"},
		{Name: "whole milk"}, {Name: "brown sugar"}, {Name: "olive oil"},
	}
	diverged := 0
	for _, q := range probes {
		a, ok1 := mod.Match(q)
		b, ok2 := van.Match(q)
		if ok1 && ok2 && a.NDB != b.NDB {
			diverged++
		}
	}
	if diverged == 0 {
		t.Error("modified and vanilla Jaccard never diverged on probe set")
	}
}

func TestScoreBounds(t *testing.T) {
	m := defaultMatcher(t)
	for _, q := range []Query{
		{Name: "butter"}, {Name: "skim milk"}, {Name: "red lentils"},
		{Name: "garam masala spice blend"},
	} {
		for _, r := range m.Rank(q, 0) {
			if r.Score <= 0 || r.Score > 1 {
				t.Errorf("score out of (0,1] for %+v: %+v", q, r)
			}
		}
	}
}

func TestUnmatchable(t *testing.T) {
	m := defaultMatcher(t)
	// The paper's own example of a region-specific unmappable ingredient.
	if r, ok := m.Match(Query{Name: "xyzzy frobnitz"}); ok {
		t.Errorf("nonsense matched %q", r.Desc)
	}
	if r, ok := m.Match(Query{Name: ""}); ok {
		t.Errorf("empty query matched %q", r.Desc)
	}
}

func TestRankOrdering(t *testing.T) {
	m := defaultMatcher(t)
	rs := m.Rank(Query{Name: "milk"}, 10)
	if len(rs) < 3 {
		t.Fatalf("milk should rank many candidates, got %d", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		a, b := rs[i-1], rs[i]
		if a.Score < b.Score {
			t.Fatalf("rank not score-sorted at %d", i)
		}
		if a.Score == b.Score && a.Priority > b.Priority {
			t.Fatalf("rank not priority-sorted at %d", i)
		}
		if a.Score == b.Score && a.Priority == b.Priority && a.index > b.index {
			t.Fatalf("rank not index-sorted at %d", i)
		}
	}
}

func TestRankK(t *testing.T) {
	m := defaultMatcher(t)
	if got := m.Rank(Query{Name: "milk"}, 3); len(got) != 3 {
		t.Errorf("Rank k=3 returned %d", len(got))
	}
	all := m.Rank(Query{Name: "milk"}, 0)
	if len(all) < 4 {
		t.Errorf("Rank k=0 should return all, got %d", len(all))
	}
}

func TestStateTempFreshnessFoldedIn(t *testing.T) {
	// §II-B(d): STATE/TEMP/DF entities join the comparison.
	m := defaultMatcher(t)
	plain := mustMatch(t, m, Query{Name: "milk"})
	skim := mustMatch(t, m, Query{Name: "milk", State: "skim"})
	if plain.NDB == skim.NDB {
		t.Error("STATE entity had no effect on match")
	}
	if !strings.Contains(skim.Desc, "skim") {
		t.Errorf("milk+skim → %q", skim.Desc)
	}
}

func TestDeterminism(t *testing.T) {
	m := defaultMatcher(t)
	q := Query{Name: "sour cream", State: "low fat"}
	first := mustMatch(t, m, q)
	for i := 0; i < 20; i++ {
		if r := mustMatch(t, m, q); r.NDB != first.NDB {
			t.Fatalf("non-deterministic match: %d vs %d", r.NDB, first.NDB)
		}
	}
}

// Property: the modified score is always ≥ the vanilla score for the same
// query/description pair, since |A| ≤ |A∪B|.
func TestModifiedDominatesVanilla(t *testing.T) {
	db := usda.Seed()
	mod := New(db, Options{Metric: ModifiedJaccard, MinScore: 1e-9})
	van := New(db, Options{Metric: VanillaJaccard, MinScore: 1e-9})
	names := []string{"milk", "butter", "egg", "red lentils", "chicken broth",
		"sesame seeds", "sour cream", "apple", "skim milk"}
	for _, name := range names {
		q := Query{Name: name}
		modAll := mod.Rank(q, 0)
		vanAll := van.Rank(q, 0)
		vanByNDB := map[int]float64{}
		for _, r := range vanAll {
			vanByNDB[r.NDB] = r.Score
		}
		for _, r := range modAll {
			if v, ok := vanByNDB[r.NDB]; ok && r.Score < v-1e-12 {
				t.Errorf("%q vs NDB %d: modified %.4f < vanilla %.4f",
					name, r.NDB, r.Score, v)
			}
		}
	}
}

// Property: NormalizeTokens is stable (idempotent when re-joined).
func TestNormalizeTokensIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := NormalizeTokens(s)
		again := NormalizeTokens(strings.Join(once, " "))
		return reflect.DeepEqual(once, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: matching is total and never panics over synthetic databases.
func TestMatchSyntheticNeverPanics(t *testing.T) {
	db := usda.Synthetic(300, 11)
	m := NewDefault(db)
	f := func(name string) bool {
		_, _ = m.Match(Query{Name: name})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatchSeed(b *testing.B) {
	m := NewDefault(usda.Seed())
	queries := []Query{
		{Name: "unsalted butter"}, {Name: "skim milk"}, {Name: "red lentils"},
		{Name: "boneless chicken breast"}, {Name: "all-purpose flour"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(queries[i%len(queries)])
	}
}

func BenchmarkMatchLargeDB(b *testing.B) {
	m := NewDefault(usda.Merged(7500, 3))
	q := Query{Name: "golden harvest beans"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(q)
	}
}
