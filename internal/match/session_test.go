package match

import (
	"reflect"
	"sync"
	"testing"

	"nutriprofile/internal/usda"
)

// TestSessionMatchEquivalence: a Session must return byte-identical
// results to the pool-backed Match/MatchFuzzy across a query mix that
// exercises hits, misses, and the fuzzy retry.
func TestSessionMatchEquivalence(t *testing.T) {
	m := NewDefault(usda.Seed())
	queries := []Query{
		{Name: "low fat sour cream"},
		{Name: "butter"},
		{Name: "all purpose flour"},
		{Name: "zzz no such ingredient"},
		{Name: "buttr"}, // typo: exact misses, fuzzy recovers
		{Name: "onion", State: "chopped"},
		{Name: ""},
	}
	s := m.NewSession()
	defer s.Close()
	for _, q := range queries {
		wantR, wantOK := m.Match(q)
		gotR, gotOK := s.Match(q)
		if gotOK != wantOK || !reflect.DeepEqual(gotR, wantR) {
			t.Errorf("Session.Match(%+v) = (%+v, %v), Matcher.Match = (%+v, %v)", q, gotR, gotOK, wantR, wantOK)
		}
		wantR, wantOK = m.MatchFuzzy(q)
		gotR, gotOK = s.MatchFuzzy(q)
		if gotOK != wantOK || !reflect.DeepEqual(gotR, wantR) {
			t.Errorf("Session.MatchFuzzy(%+v) = (%+v, %v), Matcher.MatchFuzzy = (%+v, %v)", q, gotR, gotOK, wantR, wantOK)
		}
	}
}

// TestSessionWarmZeroAllocs: after one warming query, Session.Match
// must allocate nothing — the arena is pinned, so not even a pool
// checkout happens per call.
func TestSessionWarmZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	m := NewDefault(usda.Seed())
	s := m.NewSession()
	defer s.Close()
	q := Query{Name: "low fat sour cream"}
	s.Match(q) // warm the arena
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := s.Match(q); !ok {
			t.Fatal("query stopped matching")
		}
	}); allocs != 0 {
		t.Fatalf("warm Session.Match allocates %v per run, want 0", allocs)
	}
}

// TestSessionsConcurrent: distinct sessions on one shared Matcher must
// be independent — the per-worker usage pattern of core's batch pool.
func TestSessionsConcurrent(t *testing.T) {
	m := NewDefault(usda.Seed())
	queries := []Query{
		{Name: "butter"},
		{Name: "all purpose flour"},
		{Name: "low fat sour cream"},
		{Name: "onion"},
	}
	want := make([]Result, len(queries))
	for i, q := range queries {
		want[i], _ = m.Match(q)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := m.NewSession()
			defer s.Close()
			for rep := 0; rep < 200; rep++ {
				for i, q := range queries {
					r, ok := s.Match(q)
					if !ok || !reflect.DeepEqual(r, want[i]) {
						t.Errorf("concurrent Session.Match(%+v) = (%+v, %v), want %+v", q, r, ok, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestSessionCloseIdempotent: double Close must not corrupt the pool.
func TestSessionCloseIdempotent(t *testing.T) {
	m := NewDefault(usda.Seed())
	s := m.NewSession()
	s.Close()
	s.Close() // no-op, must not panic or double-free the arena
	s2 := m.NewSession()
	defer s2.Close()
	if _, ok := s2.Match(Query{Name: "butter"}); !ok {
		t.Fatal("pool corrupted after double Close")
	}
}
