package match

import (
	"strings"
	"testing"

	"nutriprofile/internal/usda"
)

// Tests for the two implementation refinements documented in DESIGN.md:
// name anchoring and the raw-provision-as-bonus reading of §II-B(g).

func TestNameAnchoringBlocksStateDrift(t *testing.T) {
	m := defaultMatcher(t)
	// "zucchini, sliced" must never drift to "Ham, sliced" through the
	// state word: the candidate shares no NAME word.
	r := mustMatch(t, m, Query{Name: "zucchini", State: "sliced"})
	if !strings.Contains(strings.ToLower(r.Desc), "zucchini") {
		t.Errorf("zucchini+sliced → %q", r.Desc)
	}
	// "salmon fillets, skinless" must not land on "Apples, raw, without
	// skin" through the negation expansion of "skinless".
	r = mustMatch(t, m, Query{Name: "salmon fillets", State: "skinless"})
	if !strings.Contains(strings.ToLower(r.Desc), "salmon") {
		t.Errorf("skinless salmon → %q", r.Desc)
	}
}

func TestNameAnchoringDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.NameAnchoring = false
	m := New(usda.Seed(), opts)
	// Without anchoring the state word alone may create candidates; the
	// call must still return something sensible and not panic.
	if _, ok := m.Match(Query{Name: "zucchini", State: "sliced"}); !ok {
		t.Error("no match with anchoring disabled")
	}
}

func TestRawBonusDoesNotBeatHigherScore(t *testing.T) {
	// The §II-B(g) provision is a tie-break, not a score: "tomato paste"
	// scores 2/2 against the paste description and only 1/2 against
	// "Tomatoes, green, raw", so the raw description must lose even
	// though the query is stateless.
	m := defaultMatcher(t)
	r := mustMatch(t, m, Query{Name: "tomato paste"})
	if r.Desc != "Tomato products, canned, paste, without salt added" {
		t.Errorf("tomato paste → %q", r.Desc)
	}
}

func TestRawBonusBreaksTrueTies(t *testing.T) {
	// Bare "apple": the babyfood description scores the same 1.0 but has
	// no "raw"; the provision must demote it below both raw apples.
	m := defaultMatcher(t)
	rs := m.Rank(Query{Name: "apple"}, 0)
	babyRank, rawRank := -1, -1
	for i, r := range rs {
		if strings.HasPrefix(r.Desc, "Babyfood") && babyRank == -1 {
			babyRank = i
		}
		if r.Desc == "Apples, raw, with skin" {
			rawRank = i
		}
	}
	if rawRank == -1 {
		t.Fatal("Apples, raw, with skin not ranked")
	}
	if babyRank != -1 && babyRank < rawRank {
		t.Errorf("babyfood (rank %d) above raw apples (rank %d)", babyRank, rawRank)
	}
}

func TestRawProvisionDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.RawProvision = false
	m := New(usda.Seed(), opts)
	for _, r := range m.Rank(Query{Name: "apple"}, 0) {
		if r.RawBonus {
			t.Fatalf("RawBonus set with provision disabled: %q", r.Desc)
		}
	}
}

func TestExpandedFamiliesStillResolve(t *testing.T) {
	// The extended seed adds many near-duplicates; the canonical paper
	// matches must survive them.
	m := defaultMatcher(t)
	cases := map[string]string{
		"unsalted butter": "Butter, without salt",
		"egg whites":      "Egg, white, raw, fresh",
		"whole eggs":      "Egg, whole, raw, fresh",
		"red lentils":     "Lentils, pink or red, raw",
		"sesame seeds":    "Seeds, sesame seeds, whole, dried",
	}
	for name, want := range cases {
		r := mustMatch(t, m, Query{Name: name})
		if r.Desc != want {
			t.Errorf("%q → %q, want %q", name, r.Desc, want)
		}
	}
}

func TestMatcherOnMergedRegionalDB(t *testing.T) {
	m := NewDefault(usda.WithRegional())
	cases := map[string]string{
		"garam masala": "Spice blend, garam masala",
		"paneer":       "Cheese, paneer, fresh",
		"fish sauce":   "Fish sauce, fermented (nam pla)",
		"ghee":         "Ghee, clarified butter",
		"plantains":    "Plantains, green, raw",
	}
	for name, want := range cases {
		r, ok := m.Match(Query{Name: name})
		if !ok || r.Desc != want {
			t.Errorf("%q → (%q, %v), want %q", name, r.Desc, ok, want)
		}
	}
	// And the primary families must be unaffected by the merge.
	r, _ := m.Match(Query{Name: "unsalted butter"})
	if r.Desc != "Butter, without salt" {
		t.Errorf("merge broke primary match: %q", r.Desc)
	}
}
