package match

import (
	"strings"
	"sync"
	"testing"

	"nutriprofile/internal/usda"
)

// Metamorphic properties: transformations of queries and databases with
// predictable effects on match results.

func TestQueryWordOrderIrrelevant(t *testing.T) {
	// Jaccard is set-based: permuting query words cannot change the
	// result.
	m := defaultMatcher(t)
	pairs := [][2]string{
		{"red lentils", "lentils red"},
		{"unsalted butter", "butter unsalted"},
		{"low fat sour cream", "sour cream low fat"},
		{"whole eggs", "eggs whole"},
	}
	for _, p := range pairs {
		a, okA := m.Match(Query{Name: p[0]})
		b, okB := m.Match(Query{Name: p[1]})
		if okA != okB || (okA && a.NDB != b.NDB) {
			t.Errorf("order sensitivity: %q → %v/%d, %q → %v/%d",
				p[0], okA, a.NDB, p[1], okB, b.NDB)
		}
	}
}

func TestDuplicateQueryWordsIrrelevant(t *testing.T) {
	m := defaultMatcher(t)
	for _, name := range []string{"butter", "red lentils", "skim milk"} {
		a, _ := m.Match(Query{Name: name})
		b, _ := m.Match(Query{Name: name + " " + name})
		if a.NDB != b.NDB {
			t.Errorf("duplication changed match for %q: %d vs %d", name, a.NDB, b.NDB)
		}
	}
}

func TestStopWordsIrrelevant(t *testing.T) {
	m := defaultMatcher(t)
	pairs := [][2]string{
		{"butter", "the butter"},
		{"red lentils", "some red lentils"},
		{"cheddar cheese", "a cheddar cheese"},
	}
	for _, p := range pairs {
		a, _ := m.Match(Query{Name: p[0]})
		b, _ := m.Match(Query{Name: p[1]})
		if a.NDB != b.NDB {
			t.Errorf("stop word changed match: %q → %d, %q → %d",
				p[0], a.NDB, p[1], b.NDB)
		}
	}
}

func TestAddingIrrelevantFoodCannotStealMatch(t *testing.T) {
	// Growing the database with foods sharing no words with the query
	// must not change the query's result.
	base := usda.Seed()
	mBase := NewDefault(base)
	queries := []Query{
		{Name: "unsalted butter"}, {Name: "red lentils"}, {Name: "skim milk"},
	}
	before := make([]Result, len(queries))
	for i, q := range queries {
		before[i], _ = mBase.Match(q)
	}

	extra := append([]usda.Food(nil), base.Foods()...)
	extra = append(extra, usda.Food{
		NDB: 99901, Desc: "Zzqxx, synthetic, irrelevant",
	})
	grown := usda.MustNewDB(extra)
	mGrown := NewDefault(grown)
	for i, q := range queries {
		after, _ := mGrown.Match(q)
		if after.NDB != before[i].NDB {
			t.Errorf("irrelevant food changed match for %+v: %d → %d",
				q, before[i].NDB, after.NDB)
		}
	}
}

func TestPluralizationIrrelevant(t *testing.T) {
	// §II-B(b): lemmatization unifies singular and plural forms.
	m := defaultMatcher(t)
	pairs := [][2]string{
		{"egg", "eggs"},
		{"tomato", "tomatoes"},
		{"carrot", "carrots"},
		{"onion", "onions"},
	}
	for _, p := range pairs {
		a, okA := m.Match(Query{Name: p[0]})
		b, okB := m.Match(Query{Name: p[1]})
		if okA != okB || a.NDB != b.NDB {
			t.Errorf("plural sensitivity: %q → %d, %q → %d", p[0], a.NDB, p[1], b.NDB)
		}
	}
}

func TestConcurrentMatching(t *testing.T) {
	// The matcher documents safety for concurrent use; hammer it from
	// many goroutines (run under -race in CI).
	m := defaultMatcher(t)
	queries := []Query{
		{Name: "butter"}, {Name: "skim milk"}, {Name: "red lentils"},
		{Name: "egg whites"}, {Name: "all-purpose flour"},
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		r, _ := m.Match(q)
		want[i] = r.NDB
	}
	var wg sync.WaitGroup
	errCh := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				i := iter % len(queries)
				r, ok := m.Match(queries[i])
				if !ok || r.NDB != want[i] {
					errCh <- r.Desc
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if bad, open := <-errCh; open {
		t.Fatalf("concurrent match diverged: %s", strings.TrimSpace(bad))
	}
}
