package match

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestWithinDL1(t *testing.T) {
	yes := [][2]string{
		{"butter", "butter"},  // identical
		{"buttre", "butter"},  // transposition
		{"buter", "butter"},   // deletion
		{"buttter", "butter"}, // insertion
		{"bitter", "butter"},  // substitution
		{"oinon", "onion"},    // transposition
	}
	for _, p := range yes {
		if !withinDL1(p[0], p[1]) {
			t.Errorf("withinDL1(%q,%q) = false, want true", p[0], p[1])
		}
		if !withinDL1(p[1], p[0]) {
			t.Errorf("withinDL1(%q,%q) not symmetric", p[1], p[0])
		}
	}
	noPairs := [][2]string{
		{"butter", "bread"},
		{"milk", "silk y"},
		{"ab", "ba2x"},
		{"butter", "bu"},
		{"tomato", "potato"}, // two substitutions
	}
	for _, p := range noPairs {
		if withinDL1(p[0], p[1]) {
			t.Errorf("withinDL1(%q,%q) = true, want false", p[0], p[1])
		}
	}
}

func TestCorrectQuery(t *testing.T) {
	m := defaultMatcher(t)
	fixed, changed := m.CorrectQuery(Query{Name: "buttre"})
	if !changed || fixed.Name != "butter" {
		t.Errorf("CorrectQuery(buttre) = (%q,%v)", fixed.Name, changed)
	}
	// In-vocabulary queries pass through untouched.
	same, changed := m.CorrectQuery(Query{Name: "butter"})
	if changed || same.Name != "butter" {
		t.Errorf("CorrectQuery(butter) = (%q,%v)", same.Name, changed)
	}
	// Nonsense stays nonsense.
	if _, changed := m.CorrectQuery(Query{Name: "zzqqzz"}); changed {
		t.Error("CorrectQuery invented a correction for nonsense")
	}
	// Short words are never corrected.
	if _, changed := m.CorrectQuery(Query{Name: "mlk"}); changed {
		t.Error("short word corrected; below the length guard")
	}
}

func TestMatchFuzzy(t *testing.T) {
	m := defaultMatcher(t)
	cases := map[string]string{
		"buttre":          "Butter", // transposed
		"oinon":           "Onions", // transposed
		"granulated sugr": "Sugars", // deletion in second word
	}
	for typo, wantPrefix := range cases {
		r, ok := m.MatchFuzzy(Query{Name: typo})
		if !ok {
			t.Errorf("MatchFuzzy(%q) found nothing", typo)
			continue
		}
		if !strings.HasPrefix(r.Desc, wantPrefix) {
			t.Errorf("MatchFuzzy(%q) → %q, want prefix %q", typo, r.Desc, wantPrefix)
		}
	}
	// Fuzzy must not fire when the exact match already succeeds.
	exact, _ := m.Match(Query{Name: "butter"})
	fuzzy, _ := m.MatchFuzzy(Query{Name: "butter"})
	if exact.NDB != fuzzy.NDB {
		t.Error("MatchFuzzy diverged from Match on a clean query")
	}
}

// Property: withinDL1 is symmetric and reflexive over short ASCII strings.
func TestWithinDL1Properties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 12 || len(b) > 12 {
			return true
		}
		if withinDL1(a, b) != withinDL1(b, a) {
			return false
		}
		return withinDL1(a, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCorrectQuery(b *testing.B) {
	m := defaultMatcher(b)
	q := Query{Name: "granulated sugr"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CorrectQuery(q)
	}
}
