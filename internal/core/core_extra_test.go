package core

import (
	"math"
	"strings"
	"testing"

	"nutriprofile/internal/usda"
	"nutriprofile/internal/yield"
)

func TestEstimateRecipeCooked(t *testing.T) {
	e := NewDefault()
	phrases := []string{"2 cups broccoli florets", "1 tablespoon olive oil"}
	raw, err := e.EstimateRecipe(phrases, 2)
	if err != nil {
		t.Fatal(err)
	}
	boiled, err := e.EstimateRecipeCooked(phrases, 2, yield.Boiled)
	if err != nil {
		t.Fatal(err)
	}
	if boiled.PerServing.VitCMg >= raw.PerServing.VitCMg {
		t.Errorf("boiling did not reduce vitamin C: %.1f ≥ %.1f",
			boiled.PerServing.VitCMg, raw.PerServing.VitCMg)
	}
	if boiled.PerServing.EnergyKcal > raw.PerServing.EnergyKcal {
		t.Error("boiling increased energy")
	}
	// yield.None must be the identity.
	same, err := e.EstimateRecipeCooked(phrases, 2, yield.None)
	if err != nil {
		t.Fatal(err)
	}
	if same.PerServing != raw.PerServing {
		t.Error("EstimateRecipeCooked(None) differs from EstimateRecipe")
	}
}

func TestFuzzyMatchOption(t *testing.T) {
	exact, err := New(usda.Seed(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fuzzy, err := New(usda.Seed(), nil, Options{FuzzyMatch: true})
	if err != nil {
		t.Fatal(err)
	}
	phrase := "2 cups buttre , softened" // transposed "butter"
	if r := exact.EstimateIngredient(phrase); r.Matched {
		t.Skipf("exact matcher unexpectedly matched %q — vocabulary drift", phrase)
	}
	r := fuzzy.EstimateIngredient(phrase)
	if !r.Matched || !strings.HasPrefix(r.Match.Desc, "Butter") {
		t.Errorf("fuzzy pipeline on %q → matched=%v desc=%q", phrase, r.Matched, r.Match.Desc)
	}
	if !r.Mapped || math.Abs(r.Grams-454) > 1 {
		t.Errorf("fuzzy pipeline grams = %v (mapped=%v), want 454", r.Grams, r.Mapped)
	}
}

func TestOriginAndViaStrings(t *testing.T) {
	origins := map[UnitOrigin]string{
		UnitNone: "none", UnitNER: "ner", UnitSize: "size",
		UnitSearched: "searched", UnitMostFrequent: "most-frequent",
		UnitDefaultRow: "default-row",
	}
	for o, want := range origins {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
	vias := map[GramsVia]string{
		GramsNone: "none", GramsWeightRow: "weight-row", GramsConverted: "converted",
	}
	for v, want := range vias {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestMergedDBPipeline(t *testing.T) {
	// End-to-end over the merged (seed+regional) table: the paper's
	// flagship unmappable becomes fully mappable.
	e, err := New(usda.WithRegional(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := e.EstimateIngredient("2 teaspoons garam masala")
	if !r.Mapped {
		t.Fatalf("garam masala unmapped on merged table: %+v", r)
	}
	if r.Match.Desc != "Spice blend, garam masala" {
		t.Errorf("matched %q", r.Match.Desc)
	}
	if r.Grams != 4.0 { // 2 tsp × 2.0 g
		t.Errorf("grams = %v, want 4", r.Grams)
	}
}

func TestUnitOriginPriorities(t *testing.T) {
	// The fallback chain must prefer earlier tiers when available.
	e := NewDefault()
	cases := []struct {
		phrase string
		want   UnitOrigin
	}{
		{"2 cups flour", UnitNER},
		{"1 small onion", UnitSize},
		{"garlic and 2 cloves more", UnitSearched},
	}
	for _, c := range cases {
		r := e.EstimateIngredient(c.phrase)
		if !r.Mapped {
			t.Errorf("%q unmapped", c.phrase)
			continue
		}
		if r.UnitOrigin != c.want {
			t.Errorf("%q origin = %v, want %v", c.phrase, r.UnitOrigin, c.want)
		}
	}
}
