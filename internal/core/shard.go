package core

// The per-core sharded estimator (DESIGN.md §12). Four perf PRs made
// the single-core pipeline ~0-alloc, yet parallel batch throughput did
// not scale: every worker wrote the same memo-stat cache lines, every
// cache miss serialized on one singleflight map, and the sync.Pool
// backing the scratch arenas drained under oversubscription so workers
// kept re-warming cold scratches (the measured allocs/op inflation at
// -cpu 4). This file restructures the batch layer around ownership:
//
//   - Worker environments (scratch + pinned match session) are owned by
//     the Estimator in a bounded LIFO free list, not by a sync.Pool, so
//     neither GC cycles nor goroutine migration can drain them; the
//     warmest environment is always reused first.
//
//   - The phrase space is hash-partitioned onto numSlots shards, each
//     with its own lock-free-on-the-hot-path L1 result cache. In a
//     sharded batch, worker w exclusively owns the slots s ≡ w (mod
//     workers) — the same phrase always hashes to the same slot, so no
//     two workers ever touch one slot's L1, and repeat phrases are
//     served without a single shared-memory write.
//
//   - Per-worker stats accumulate in plain locals and flush to a
//     cache-line-striped aggregate once per batch (metrics.Striped),
//     instead of per-phrase atomics on shared counters.
//
// The shared L2 (memo.Cache) and the flight layer sit below the slots
// and are themselves sharded by the same FNV-1a hash family; they only
// see first-contact traffic, so their (padded, per-shard) locks stay
// uncontended.

import (
	"context"
	"strings"
	"sync"

	"nutriprofile/internal/match"
	"nutriprofile/internal/memo"
	"nutriprofile/internal/metrics"
	"nutriprofile/internal/pipeline"
)

const (
	// numSlots is the shard count of the phrase-hash partition (a power
	// of two). Fixed rather than derived from GOMAXPROCS so the
	// phrase→shard mapping is stable for the Estimator's lifetime no
	// matter how many workers any particular batch runs: workers own
	// slot subsets, slots never migrate between hashes. 32 comfortably
	// exceeds any sane worker count for phrase-scale work while keeping
	// the slot array small.
	numSlots = 32

	// maxL1Entries bounds each slot's L1 map. Recipe vocabulary is a
	// few thousand distinct phrases spread over 32 slots, so wholesale
	// clearing only triggers on adversarial input — mirroring the
	// pipeline scratch memo policy.
	maxL1Entries = 4096

	// maxFreeEnvs bounds the worker-environment free list: more
	// environments than this can exist transiently (concurrent batches
	// each holding several), but only this many are retained.
	maxFreeEnvs = 64

	// statStripes is the stripe count of the batched stats aggregates.
	statStripes = 16
)

// slot is one shard of the phrase-hash partition: a generation-gated L1
// cache of full IngredientResults keyed by raw phrase. A slot is locked
// for the whole duration of a sharded batch by the one worker that owns
// it, so the L1 map is read and written without any per-phrase
// synchronization. Padded so neighboring slots' locks never share a
// cache line.
type slot struct {
	mu  sync.Mutex
	l1  map[string]l1Entry
	gen uint64 // Snapshot.gen the l1 contents were computed against
	_   [64]byte
}

// l1Entry is one slot-L1 cached result plus the L2 phrase-cache key
// hash it was stored under. L1 hits never reach the L2 cache, so the
// stored hash is replayed into the TinyLFU admission sketch
// (memo.TouchHash) on every hit — without it, exactly the hottest
// phrases (the ones the L1 absorbs) would stop accruing frequency and
// lose admission duels to cold bulk-scan keys after a sketch reset.
type l1Entry struct {
	res IngredientResult
	l2h uint64 // phrase-cache key hash; 0 when caching is disabled
}

// env is one worker environment: the per-goroutine NLP scratch arena
// plus a match session pinned to one matcher (its own scoring arena).
// Environments are checked out once per worker per batch and returned
// warm; m records which matcher the session belongs to so a checkout
// after a snapshot swap re-pins instead of scoring against the retired
// index.
type env struct {
	sc   *pipeline.Scratch
	sess *match.Session
	m    *match.Matcher
}

// worker is the per-batch-worker state: its environment and the
// batch-local stat accumulators that flush on release.
type worker struct {
	env     *env
	phrases uint64 // phrases estimated by this worker this batch
	l1Hits  uint64 // phrases served from an owned slot's L1
}

// shardState is the Estimator's sharded-batch machinery; embedded by
// value (it is a few KB of padded slots).
type shardState struct {
	slots [numSlots]slot

	envMu    sync.Mutex
	freeEnvs []*env
	envsMade uint64 // lifetime environments created, under envMu

	// Batched-flush aggregates: workers accumulate locally and Add once
	// per batch, striped so concurrent flushes don't share lines.
	phrasesDone *metrics.Striped
	l1Hits      *metrics.Striped
	flushes     *metrics.Striped
}

func (s *shardState) init() {
	s.phrasesDone = metrics.NewStriped(statStripes)
	s.l1Hits = metrics.NewStriped(statStripes)
	s.flushes = metrics.NewStriped(statStripes)
}

// ShardStats is the observability snapshot of the sharded batch layer
// (nutriserve's GET /v1/stats exposes it alongside the cache counters).
type ShardStats struct {
	Slots         int    `json:"slots"`          // phrase-hash partition width
	Phrases       uint64 `json:"phrases"`        // phrases estimated through batch workers
	L1Hits        uint64 `json:"l1_hits"`        // served from an owned slot's L1
	WorkerFlushes uint64 `json:"worker_flushes"` // per-worker batched stat flushes
	Envs          uint64 `json:"envs"`           // worker environments ever created
}

// ShardStats reports the sharded batch layer's counters. Totals are
// exact once in-flight batches drain (each worker flushes exactly once).
func (e *Estimator) ShardStats() ShardStats {
	e.envMu.Lock()
	envs := e.envsMade
	e.envMu.Unlock()
	return ShardStats{
		Slots:         numSlots,
		Phrases:       e.phrasesDone.Sum(),
		L1Hits:        e.l1Hits.Sum(),
		WorkerFlushes: e.flushes.Sum(),
		Envs:          envs,
	}
}

// slotIndex maps a raw phrase to its owning shard — a pure function of
// the phrase bytes (the same FNV-1a family the memo and flight layers
// shard on), stable for the Estimator's lifetime.
func slotIndex(phrase string) int {
	return int(memo.HashString(phrase) & (numSlots - 1))
}

// getEnv checks a worker environment out of the estimator-owned free
// list, creating one when the list is empty. LIFO: the most recently
// returned (warmest) environment is reused first. snap is the batch's
// pinned snapshot; an environment whose session was pinned to a
// now-retired matcher is re-pinned before reuse, so a worker never
// scores against a different index than the snapshot it estimates with.
func (e *Estimator) getEnv(snap *Snapshot) *env {
	e.envMu.Lock()
	if n := len(e.freeEnvs); n > 0 {
		v := e.freeEnvs[n-1]
		e.freeEnvs[n-1] = nil
		e.freeEnvs = e.freeEnvs[:n-1]
		e.envMu.Unlock()
		if v.m != snap.matcher {
			v.sess.Close()
			v.sess = snap.matcher.NewSession()
			v.m = snap.matcher
		}
		return v
	}
	e.envsMade++
	e.envMu.Unlock()
	return &env{sc: new(pipeline.Scratch), sess: snap.matcher.NewSession(), m: snap.matcher}
}

// putEnv returns an environment; beyond maxFreeEnvs it is dismantled
// (the session's arena goes back to the matcher pool) and dropped.
func (e *Estimator) putEnv(v *env) {
	e.envMu.Lock()
	if len(e.freeEnvs) < maxFreeEnvs {
		e.freeEnvs = append(e.freeEnvs, v)
		e.envMu.Unlock()
		return
	}
	e.envMu.Unlock()
	v.sess.Close()
}

// claimSlot tries to take exclusive ownership of slot i for a batch.
// nil means another batch holds it — the caller proceeds without that
// slot's L1 (the shared L2 below still absorbs repeats). gen is the
// claiming batch's pinned Snapshot.gen: on a claim, the L1 is cleared
// if its contents were computed against any other generation (a DB
// swap or ObserveUnits pass retired them — or, after a swap raced this
// batch's pin, the slot ran ahead on the newer snapshot; either way
// mixed-generation contents are never served).
func (e *Estimator) claimSlot(i int, gen uint64) *slot {
	sl := &e.slots[i]
	if !sl.mu.TryLock() {
		return nil
	}
	if sl.gen != gen {
		if sl.l1 != nil {
			clear(sl.l1)
		}
		sl.gen = gen
	}
	return sl
}

// flushWorker performs the batched stats flush: one striped Add per
// counter per worker per batch, then returns the environment.
func (e *Estimator) flushWorker(w *worker, stripe int) {
	if w.phrases != 0 {
		e.phrasesDone.Add(stripe, w.phrases)
	}
	if w.l1Hits != 0 {
		e.l1Hits.Add(stripe, w.l1Hits)
	}
	e.flushes.Add(stripe, 1)
	e.putEnv(w.env)
}

// estimateSlot estimates one phrase on a worker, consulting (and
// populating) the owned slot's L1 when sl is non-nil. The L1 holds
// full, immutable results keyed by raw phrase; keys are cloned because
// callers (the serving layer) may reuse the phrase's backing bytes, and
// the stored value drops the verbatim Phrase for the same reason the L2
// copy does.
func (e *Estimator) estimateSlot(v view, phrase string, w *worker, sl *slot) IngredientResult {
	w.phrases++
	if sl != nil {
		if ent, ok := sl.l1[phrase]; ok {
			w.l1Hits++
			if e.phraseCache != nil {
				e.phraseCache.TouchHash(ent.l2h)
			}
			r := ent.res
			r.Phrase = phrase
			return r
		}
	}
	r, l2h := e.estimateCached(v, phrase, w.env.sc, w.env.sess)
	if sl != nil {
		stored := r
		stored.Phrase = ""
		if sl.l1 == nil {
			sl.l1 = make(map[string]l1Entry, 64)
		} else if len(sl.l1) >= maxL1Entries {
			clear(sl.l1)
		}
		sl.l1[strings.Clone(phrase)] = l1Entry{res: stored, l2h: l2h}
	}
	return r
}

// estimateShardedCtx is the phrase-hash-partitioned worker pool: worker
// w of W owns slots {s : s ≡ w (mod W)} and estimates exactly the
// phrases that hash into them. Dispatch is deterministic — no shared
// claim counter — and every phrase's slot is decided by its bytes, so
// repeats serialize onto their owner and hit its L1 without any
// cross-worker traffic. Output is input-ordered (each worker writes
// only its own indices of out).
//
// Load balance comes from the hash: with hundreds of phrases per batch
// the per-worker share concentrates tightly, and repeat-heavy skew is
// self-correcting (repeats are L1 hits, orders of magnitude cheaper
// than first contact).
func (e *Estimator) estimateShardedCtx(ctx context.Context, v view, phrases []string, workers int, out []IngredientResult) error {
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func(wk int) {
			defer wg.Done()
			w := worker{env: e.getEnv(v.snap)}
			var claimed [numSlots]*slot
			for s := wk; s < numSlots; s += workers {
				claimed[s] = e.claimSlot(s, v.snap.gen)
			}
			defer func() {
				for s := wk; s < numSlots; s += workers {
					if claimed[s] != nil {
						claimed[s].mu.Unlock()
					}
				}
				e.flushWorker(&w, wk%statStripes)
			}()
			for i, p := range phrases {
				s := slotIndex(p)
				if s%workers != wk {
					continue
				}
				select {
				case <-done:
					return
				default:
				}
				out[i] = e.estimateSlot(v, p, &w, claimed[s])
			}
		}(wk)
	}
	wg.Wait()
	return ctx.Err()
}
