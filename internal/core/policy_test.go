package core

import (
	"testing"

	"nutriprofile/internal/memo"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/usda"
)

// TestCachePolicyDifferential is the acceptance gate for the cache
// ablation flag: estimation must be byte-identical with the memo
// caches running LRU, TinyLFU, or disabled entirely. The cache is
// deliberately undersized against the corpus so both policies evict
// and TinyLFU rejects heavily — the maximum opportunity for an
// admission bug to surface as a wrong (stale or fabricated) result.
func TestCachePolicyDifferential(t *testing.T) {
	recipes := 3000
	if testing.Short() {
		recipes = 500
	}
	corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: recipes, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	phrases := corpus.Phrases()

	newEst := func(opts Options) *Estimator {
		e, err := New(usda.Seed(), nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	uncached := newEst(Options{})
	lru := newEst(Options{CacheSize: 256, CachePolicy: memo.PolicyLRU})
	tlfu := newEst(Options{CacheSize: 256, CachePolicy: memo.PolicyTinyLFU})

	// Two passes: the second re-estimates every phrase against warm
	// (and by then heavily churned) caches, so hits, evictions,
	// rejections and re-insertions all land on the comparison path.
	for pass := 0; pass < 2; pass++ {
		for i, p := range phrases {
			want := uncached.EstimateIngredient(p)
			if got := lru.EstimateIngredient(p); !resultsEqual(got, want) {
				t.Fatalf("pass %d phrase %d %q: lru diverged\n got %+v\nwant %+v", pass, i, p, got, want)
			}
			if got := tlfu.EstimateIngredient(p); !resultsEqual(got, want) {
				t.Fatalf("pass %d phrase %d %q: tinylfu diverged\n got %+v\nwant %+v", pass, i, p, got, want)
			}
		}
	}

	// The ablation must have actually exercised admission: an
	// identical-results pass with zero rejections would prove nothing.
	ps, _ := tlfu.CacheStats()
	if ps.Rejections == 0 {
		t.Fatalf("tinylfu phrase cache recorded no rejections (stats %+v) — differential vacuous", ps)
	}
	if ps.Policy != "tinylfu" {
		t.Fatalf("phrase cache policy = %q, want tinylfu", ps.Policy)
	}
	if lps, _ := lru.CacheStats(); lps.Policy != "lru" {
		t.Fatalf("lru estimator phrase cache policy = %q", lps.Policy)
	}
}

// TestCachePolicyBatchDifferential runs the sharded parallel batch
// path (slot L1s + L2 memo + singleflight) under both policies and
// compares whole-recipe results — the path production /v1/batch
// traffic takes.
func TestCachePolicyBatchDifferential(t *testing.T) {
	recipes := 400
	if testing.Short() {
		recipes = 100
	}
	corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: recipes, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	phrases := corpus.Phrases()

	run := func(p memo.Policy) []IngredientResult {
		e, err := New(usda.Seed(), nil, Options{CacheSize: 512, CachePolicy: p})
		if err != nil {
			t.Fatal(err)
		}
		// Two rounds: round one warms and churns, round two is the
		// comparison surface.
		e.EstimateBatchWorkers(phrases, 8)
		return e.EstimateBatchWorkers(phrases, 8)
	}
	lru, tlfu := run(memo.PolicyLRU), run(memo.PolicyTinyLFU)
	for i := range lru {
		if !resultsEqual(lru[i], tlfu[i]) {
			t.Fatalf("phrase %d %q: batch results diverge across policies\n lru  %+v\n tlfu %+v",
				i, phrases[i], lru[i], tlfu[i])
		}
	}
}
