package core

// Pins the fix for the parallel allocation leak: at -cpu 4 the old
// sync.Pool-backed batch path inflated from ~670 to ~1374 allocs/op
// because oversubscription drained the pool's per-P caches and every
// checkout re-warmed a cold scratch (re-interning, memo rebuilds, arena
// regrowth). Worker environments are estimator-owned now, so a warm
// parallel batch allocates only fixed per-batch machinery (result
// slice, goroutines, WaitGroup) — nothing per phrase.

import (
	"testing"

	"nutriprofile/internal/usda"
)

// TestParallelBatchZeroAllocPerPhrase: after one warming sweep, a
// 4-worker sharded batch must stay under a small fixed allocation
// budget regardless of batch size — i.e. zero allocations per phrase.
// A re-warming regression costs multiple allocations per phrase and
// blows the budget by orders of magnitude.
func TestParallelBatchZeroAllocPerPhrase(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	e, err := New(usda.Seed(), nil, Options{CacheSize: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	corpus, _ := testCorpus(t, 40)
	flat := corpus.Phrases()
	phrases := make([]string, 0, len(flat)*3)
	for rep := 0; rep < 3; rep++ {
		phrases = append(phrases, flat...)
	}

	const workers = 4
	e.EstimateBatchWorkers(phrases, workers) // warm caches, L1s, environments

	allocs := testing.AllocsPerRun(20, func() {
		if got := e.EstimateBatchWorkers(phrases, workers); len(got) != len(phrases) {
			t.Fatal("short batch result")
		}
	})
	// Fixed per-batch overhead: one result slice, `workers` goroutine
	// closures, and the WaitGroup. 24 is several times that machinery
	// and still ~0.04 allocs per phrase for this input; the pre-fix
	// behavior (scratch re-warming) costs multiple allocs per *phrase*
	// and lands thousands over budget.
	if maxAllocs := 24.0; allocs > maxAllocs {
		t.Fatalf("warm %d-worker batch of %d phrases allocates %v per run, want <= %v",
			workers, len(phrases), allocs, maxAllocs)
	}
}
