package core

import (
	"fmt"
	"sync"
	"testing"

	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/usda"
)

// testCorpus generates a small deterministic corpus and flattens it to
// per-recipe phrase slices.
func testCorpus(t *testing.T, recipes int) (*recipedb.Corpus, [][]string) {
	t.Helper()
	corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: recipes, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	phrases := make([][]string, len(corpus.Recipes))
	for i := range corpus.Recipes {
		rec := &corpus.Recipes[i]
		phrases[i] = make([]string, len(rec.Ingredients))
		for j := range rec.Ingredients {
			phrases[i][j] = rec.Ingredients[j].Phrase
		}
	}
	return corpus, phrases
}

// renderResult serializes a RecipeResult completely, so "byte-identical"
// below means exactly that.
func renderResult(rr RecipeResult, err error) string {
	if err != nil {
		return "err: " + err.Error()
	}
	return fmt.Sprintf("%+v", rr)
}

// TestSharedEstimatorStress shares one cached Estimator across 8
// goroutines estimating overlapping recipes and asserts every result is
// byte-identical to the sequential, uncached path. Run under -race this
// is the concurrency-safety proof for the batch layer.
func TestSharedEstimatorStress(t *testing.T) {
	corpus, phrases := testCorpus(t, 60)

	// Sequential reference: fresh uncached estimator, one goroutine.
	ref := NewDefault()
	ref.ObserveUnits(corpus.Phrases())
	want := make([]string, len(phrases))
	for i := range phrases {
		rr, err := ref.EstimateRecipe(phrases[i], corpus.Recipes[i].Servings)
		want[i] = renderResult(rr, err)
	}

	// Shared estimator: cached, observed concurrently, hammered by 8
	// goroutines over overlapping recipe sets.
	shared, err := New(usda.Seed(), nil, Options{CacheSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	shared.ObserveUnits(corpus.Phrases())

	const goroutines = 8
	var wg sync.WaitGroup
	got := make([][]string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		got[g] = make([]string, len(phrases))
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine walks every recipe, offset so the cache is
			// hit from different positions simultaneously.
			for k := 0; k < len(phrases); k++ {
				i := (k + g*7) % len(phrases)
				rr, err := shared.EstimateRecipe(phrases[i], corpus.Recipes[i].Servings)
				got[g][i] = renderResult(rr, err)
			}
		}()
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		for i := range phrases {
			if got[g][i] != want[i] {
				t.Fatalf("goroutine %d recipe %d diverged from sequential path:\n got: %s\nwant: %s",
					g, i, got[g][i], want[i])
			}
		}
	}

	ps, ms := shared.CacheStats()
	if ps.Hits == 0 || ms.Hits == 0 {
		t.Errorf("expected cache hits under overlapping load; phrase=%+v match=%+v", ps, ms)
	}
}

// TestEstimateBatchMatchesSequential checks order preservation and
// equivalence for every worker count, cached and uncached.
func TestEstimateBatchMatchesSequential(t *testing.T) {
	corpus, _ := testCorpus(t, 30)
	flat := corpus.Phrases()

	ref := NewDefault()
	want := make([]string, len(flat))
	for i, p := range flat {
		want[i] = fmt.Sprintf("%+v", ref.EstimateIngredient(p))
	}

	for _, cacheSize := range []int{0, 1 << 10} {
		for _, workers := range []int{0, 1, 3, 8} {
			e, err := New(usda.Seed(), nil, Options{CacheSize: cacheSize})
			if err != nil {
				t.Fatal(err)
			}
			got := e.EstimateBatchWorkers(flat, workers)
			if len(got) != len(flat) {
				t.Fatalf("cache=%d workers=%d: len=%d want %d", cacheSize, workers, len(got), len(flat))
			}
			for i := range got {
				if s := fmt.Sprintf("%+v", got[i]); s != want[i] {
					t.Fatalf("cache=%d workers=%d: result %d diverged:\n got: %s\nwant: %s",
						cacheSize, workers, i, s, want[i])
				}
			}
		}
	}

	if got := NewDefault().EstimateBatch(nil); got != nil {
		t.Fatalf("EstimateBatch(nil) = %v; want nil", got)
	}
}

// TestEstimateRecipesMatchesSequential checks the recipe-level pool,
// including per-recipe error isolation.
func TestEstimateRecipesMatchesSequential(t *testing.T) {
	corpus, phrases := testCorpus(t, 25)
	inputs := make([]RecipeInput, len(phrases))
	for i := range phrases {
		inputs[i] = RecipeInput{Phrases: phrases[i], Servings: corpus.Recipes[i].Servings}
	}
	// Inject malformed recipes: they must yield Err without aborting
	// the rest of the batch.
	inputs = append(inputs,
		RecipeInput{Phrases: nil, Servings: 2},
		RecipeInput{Phrases: []string{"1 cup milk"}, Servings: 0},
	)

	ref := NewDefault()
	want := make([]string, len(inputs))
	for i, in := range inputs {
		rr, err := ref.EstimateRecipeCooked(in.Phrases, in.Servings, in.Method)
		want[i] = renderResult(rr, err)
	}

	e, err := New(usda.Seed(), nil, Options{CacheSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	out := e.EstimateRecipes(inputs, 4)
	for i := range out {
		if s := renderResult(out[i].Result, out[i].Err); s != want[i] {
			t.Fatalf("recipe %d diverged:\n got: %s\nwant: %s", i, s, want[i])
		}
	}
	if out[len(out)-2].Err == nil || out[len(out)-1].Err == nil {
		t.Fatal("malformed recipes did not report errors")
	}
	if e.EstimateRecipes(nil, 4) != nil {
		t.Fatal("EstimateRecipes(nil) should be nil")
	}
}

// TestObserveUnitsConcurrentWithEstimation calls ObserveUnits while 8
// workers are estimating through the same estimator — the exact pattern
// the old frequency map raced on. Under -race this must be clean, and
// afterwards the most-frequent-unit fallback must reflect the pass.
func TestObserveUnitsConcurrentWithEstimation(t *testing.T) {
	corpus, _ := testCorpus(t, 40)
	flat := corpus.Phrases()

	e, err := New(usda.Seed(), nil, Options{CacheSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.EstimateBatchWorkers(flat, 2)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.ObserveUnits(flat)
		e.ObserveUnits(flat)
	}()
	wg.Wait()

	// The observation pass must have produced the same frequency state
	// as a sequential estimator observing the corpus twice.
	ref := NewDefault()
	ref.ObserveUnits(flat)
	ref.ObserveUnits(flat)
	for _, p := range flat {
		got := fmt.Sprintf("%+v", e.EstimateIngredient(p))
		want := fmt.Sprintf("%+v", ref.EstimateIngredient(p))
		if got != want {
			t.Fatalf("post-observation estimate for %q diverged:\n got: %s\nwant: %s", p, got, want)
		}
	}
}

// TestObserveUnitsInvalidatesPhraseCache pins the staleness contract:
// a warm cached result that depended on the default-row fallback must
// be recomputed once ObserveUnits teaches the estimator a modal unit.
func TestObserveUnitsInvalidatesPhraseCache(t *testing.T) {
	e, err := New(usda.Seed(), nil, Options{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	ref := NewDefault()

	const probe = "garlic , minced" // no unit in phrase → fallback chain
	before := e.EstimateIngredient(probe)
	if fmt.Sprintf("%+v", before) != fmt.Sprintf("%+v", ref.EstimateIngredient(probe)) {
		t.Fatal("cached estimator diverged before observation")
	}

	teach := []string{"2 cloves garlic", "3 cloves garlic , crushed"}
	e.ObserveUnits(teach)
	ref.ObserveUnits(teach)

	after := e.EstimateIngredient(probe)
	want := ref.EstimateIngredient(probe)
	if fmt.Sprintf("%+v", after) != fmt.Sprintf("%+v", want) {
		t.Fatalf("stale cache after ObserveUnits:\n got: %+v\nwant: %+v", after, want)
	}
	if want.UnitOrigin == UnitMostFrequent && after.UnitOrigin != UnitMostFrequent {
		t.Fatal("observation did not reach the cached path")
	}
}

// TestCachedEqualsUncached sweeps a corpus through a cached and an
// uncached estimator and requires byte-identical output — the purity
// guarantee DESIGN.md documents.
func TestCachedEqualsUncached(t *testing.T) {
	corpus, _ := testCorpus(t, 50)
	flat := corpus.Phrases()

	plain := NewDefault()
	cached, err := New(usda.Seed(), nil, Options{CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	plain.ObserveUnits(flat)
	cached.ObserveUnits(flat)

	// Two sweeps so the second one is answered almost entirely from
	// cache (including LRU churn at capacity 256).
	for sweep := 0; sweep < 2; sweep++ {
		for _, p := range flat {
			got := fmt.Sprintf("%+v", cached.EstimateIngredient(p))
			want := fmt.Sprintf("%+v", plain.EstimateIngredient(p))
			if got != want {
				t.Fatalf("sweep %d: cached result for %q diverged:\n got: %s\nwant: %s", sweep, p, got, want)
			}
		}
	}
	ps, _ := cached.CacheStats()
	if ps.Hits == 0 {
		t.Error("second sweep produced no phrase-cache hits")
	}
}
