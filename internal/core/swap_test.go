package core

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"nutriprofile/internal/usda"
)

// scaledSeed builds a database with the seed's foods, descriptions and
// weight tables but every nutrient vector multiplied by factor — the
// minimal "new release of the same DB" whose estimates are guaranteed
// to differ from the seed's on every mapped phrase.
func scaledSeed(t testing.TB, factor float64) *usda.DB {
	t.Helper()
	seed := usda.Seed()
	foods := make([]usda.Food, seed.Len())
	for i := range foods {
		f := *seed.At(i)
		f.Per100g = f.Per100g.Scale(factor)
		foods[i] = f
	}
	db, err := usda.NewDB(foods)
	if err != nil {
		t.Fatalf("scaledSeed: %v", err)
	}
	return db
}

var swapPhrases = []string{
	"1 cup butter",
	"2 cups all-purpose flour",
	"1/2 cup sugar",
	"3 large eggs",
	"1 tsp salt",
	"2 tbsp olive oil",
	"1 cup whole milk",
	"1 lb chicken breast",
	"2 cloves garlic, minced",
	"1 medium onion, chopped",
	"1 cup cooked white rice",
	"8 oz spaghetti",
	"1 can black beans, drained",
	"1 cup shredded cheddar cheese",
	"1 tbsp unsalted butter, softened",
	"pinch of phantasmagorical dust",
}

func TestInstallSwapsSnapshotAndPurgesCaches(t *testing.T) {
	e, err := New(usda.Seed(), nil, Options{CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.SnapshotStats(); got.Version != 1 || got.Source != "boot" {
		t.Fatalf("boot snapshot = %+v, want version 1 source boot", got)
	}

	before := e.EstimateIngredient("1 cup butter")
	if !before.Mapped {
		t.Fatal("seed estimate not mapped")
	}
	// Prime the caches so a missing purge would serve the stale profile.
	for i := 0; i < 3; i++ {
		e.EstimateIngredient("1 cup butter")
	}

	db2 := scaledSeed(t, 2)
	st, err := e.Install(db2, nil, "unit-test-image")
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 || st.Source != "unit-test-image" || st.Foods != db2.Len() {
		t.Fatalf("install stats = %+v", st)
	}
	if e.DB() != db2 {
		t.Fatal("DB() does not expose the installed database")
	}

	after := e.EstimateIngredient("1 cup butter")
	if !after.Mapped {
		t.Fatal("post-install estimate not mapped")
	}
	want := before.Profile.Scale(2)
	if after.Profile != want {
		t.Fatalf("post-install profile %+v, want scaled %+v (stale cache?)", after.Profile, want)
	}
	// And again, now through the re-primed cache.
	if again := e.EstimateIngredient("1 cup butter"); again.Profile != want {
		t.Fatalf("cached post-install profile %+v, want %+v", again.Profile, want)
	}
}

func TestInstallRejectsNilDB(t *testing.T) {
	e := NewDefault()
	if _, err := e.Install(nil, nil, "x"); err == nil {
		t.Fatal("Install(nil) did not error")
	}
}

func TestObserveUnitsBumpsGenNotVersion(t *testing.T) {
	e, err := New(usda.Seed(), nil, Options{CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	before := e.SnapshotStats()
	e.ObserveUnits([]string{"1 cup butter", "2 cups flour"})
	after := e.SnapshotStats()
	if after.Version != before.Version {
		t.Fatalf("ObserveUnits moved version %d -> %d", before.Version, after.Version)
	}
	if after.Gen <= before.Gen {
		t.Fatalf("ObserveUnits did not bump gen (%d -> %d)", before.Gen, after.Gen)
	}
}

func TestInstallVersionsStrictlyMonotonicUnderConcurrency(t *testing.T) {
	e, err := New(usda.Seed(), nil, Options{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	const installers, per = 8, 6
	db2 := scaledSeed(t, 1.5)
	versions := make([][]uint64, installers)
	var wg sync.WaitGroup
	for g := 0; g < installers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				st, err := e.Install(db2, nil, fmt.Sprintf("g%d-%d", g, i))
				if err != nil {
					t.Errorf("install: %v", err)
					return
				}
				versions[g] = append(versions[g], st.Version)
			}
		}(g)
	}
	wg.Wait()

	seen := map[uint64]bool{}
	for g, vs := range versions {
		for i, v := range vs {
			if i > 0 && v <= vs[i-1] {
				t.Fatalf("goroutine %d saw non-monotonic versions %v", g, vs)
			}
			if seen[v] {
				t.Fatalf("version %d returned twice", v)
			}
			seen[v] = true
		}
	}
	if got := e.SnapshotStats().Version; got != 1+installers*per {
		t.Fatalf("final version %d, want %d", got, 1+installers*per)
	}
}

// TestReloadStorm is the ISSUE's acceptance scenario: 32 goroutines of
// mixed single-phrase and batch estimation racing continuous database
// reloads. Every result must be byte-identical to the pure database-A
// or pure database-B result for that phrase — a torn read (matcher from
// one snapshot, nutrient vectors from another, or a stale cache entry
// surviving a swap) produces a profile matching neither. Run under
// -race in CI.
func TestReloadStorm(t *testing.T) {
	dbA := usda.Seed()
	dbB := scaledSeed(t, 3)
	opts := Options{CacheSize: 512}

	// Reference results from isolated estimators per database.
	expect := func(db *usda.DB) []IngredientResult {
		ref, err := New(db, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]IngredientResult, len(swapPhrases))
		for i, p := range swapPhrases {
			out[i] = ref.EstimateIngredient(p)
		}
		return out
	}
	expA, expB := expect(dbA), expect(dbB)

	e, err := New(dbA, nil, opts)
	if err != nil {
		t.Fatal(err)
	}

	const estimators = 32
	const installsPerReloader = 40
	stop := make(chan struct{})
	var bad atomic.Int64
	check := func(i int, r IngredientResult) {
		if !reflect.DeepEqual(r, expA[i]) && !reflect.DeepEqual(r, expB[i]) {
			if bad.Add(1) < 5 {
				t.Errorf("torn result for %q: %+v\n  wantA %+v\n  wantB %+v", swapPhrases[i], r, expA[i], expB[i])
			}
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < estimators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (g + iter) % 3 {
				case 0:
					i := (g + iter) % len(swapPhrases)
					check(i, e.EstimateIngredient(swapPhrases[i]))
				case 1:
					for i, r := range e.EstimateBatchWorkers(swapPhrases, 4) {
						check(i, r)
					}
				default:
					for i, r := range e.EstimateBatchWorkers(swapPhrases, 1) {
						check(i, r)
					}
				}
			}
		}(g)
	}

	// Two reloaders alternate the databases under the estimators.
	var rwg sync.WaitGroup
	lastVersion := atomic.Uint64{}
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for i := 0; i < installsPerReloader; i++ {
				db := dbA
				if (r+i)%2 == 0 {
					db = dbB
				}
				st, err := e.Install(db, nil, "storm")
				if err != nil {
					t.Errorf("install: %v", err)
					return
				}
				for {
					prev := lastVersion.Load()
					if st.Version <= prev || lastVersion.CompareAndSwap(prev, st.Version) {
						break
					}
				}
			}
		}(r)
	}
	rwg.Wait()
	close(stop)
	wg.Wait()

	if n := bad.Load(); n != 0 {
		t.Fatalf("%d torn results", n)
	}
	if got := e.SnapshotStats().Version; got != 1+2*installsPerReloader {
		t.Fatalf("final version %d, want %d (lost installs)", got, 1+2*installsPerReloader)
	}
}
