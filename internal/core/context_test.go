package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestEstimateBatchContextMatchesSequential pins the context path to the
// plain batch path on a live context.
func TestEstimateBatchContextMatchesSequential(t *testing.T) {
	e := NewDefault()
	phrases := []string{
		"2 cups all-purpose flour",
		"1 cup sugar",
		"2 eggs",
		"1/2 cup butter , softened",
		"1 tsp salt",
	}
	want := e.EstimateBatchWorkers(phrases, 1)
	got, err := e.EstimateBatchContext(context.Background(), phrases, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Grams != want[i].Grams || got[i].Profile != want[i].Profile || got[i].Mapped != want[i].Mapped {
			t.Fatalf("phrase %d diverges: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestEstimateBatchContextEmpty(t *testing.T) {
	e := NewDefault()
	got, err := e.EstimateBatchContext(context.Background(), nil, 4)
	if got != nil || err != nil {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

// TestEstimateBatchContextCancelled pre-cancels the context: no phrase
// may be estimated and the context error must surface.
func TestEstimateBatchContextCancelled(t *testing.T) {
	e := NewDefault()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		got, err := e.EstimateBatchContext(ctx, []string{"1 cup sugar", "2 eggs"}, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err %v, want context.Canceled", workers, err)
		}
		if got != nil {
			t.Fatalf("workers=%d: expected nil results on cancellation", workers)
		}
	}
}

// TestEstimateBatchContextCancelMidway cancels from inside the work
// function and asserts the pool stops claiming new items well short of
// the full batch.
func TestEstimateBatchContextCancelMidway(t *testing.T) {
	e := NewDefault()
	const n = 10000
	phrases := make([]string, n)
	for i := range phrases {
		phrases[i] = "1 cup sugar"
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	err := e.forEachIndexCtx(ctx, e.pin().snap, n, 4, func(i int, _ *worker) {
		if ran.Add(1) == 8 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	// Each of the 4 workers can finish at most the item it already
	// claimed; anything near n means cancellation did not propagate.
	if got := ran.Load(); got >= n/2 {
		t.Fatalf("ran %d of %d items after cancellation", got, n)
	}
}

func TestEstimateRecipeContextValidation(t *testing.T) {
	e := NewDefault()
	if _, err := e.EstimateRecipeContext(context.Background(), nil, 4, 0); err == nil {
		t.Fatal("expected error for empty recipe")
	}
	if _, err := e.EstimateRecipeContext(context.Background(), []string{"salt"}, 0, 0); err == nil {
		t.Fatal("expected error for zero servings")
	}
}

// TestEstimateRecipeContextDeadline gives a huge recipe a 1ns budget.
func TestEstimateRecipeContextDeadline(t *testing.T) {
	e := NewDefault()
	phrases := make([]string, 256)
	for i := range phrases {
		phrases[i] = "2 cups flour"
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err := e.EstimateRecipeContext(ctx, phrases, 4, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want context.DeadlineExceeded", err)
	}
}

// TestEstimateRecipeContextMatchesPlain pins context and plain recipe
// paths to identical results.
func TestEstimateRecipeContextMatchesPlain(t *testing.T) {
	e := NewDefault()
	phrases := []string{"2 cups all-purpose flour", "1 cup sugar", "2 eggs"}
	want, err := e.EstimateRecipe(phrases, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EstimateRecipeContext(context.Background(), phrases, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != want.Total || got.PerServing != want.PerServing || got.MappedFraction != want.MappedFraction {
		t.Fatalf("context recipe diverges: %+v vs %+v", got, want)
	}
}
