package core

import (
	"reflect"
	"sync"
	"testing"

	"nutriprofile/internal/cluster"
	"nutriprofile/internal/match"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/postag"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/textutil"
	"nutriprofile/internal/units"
	"nutriprofile/internal/usda"
)

// This file pins the scratch-arena pipeline to the implementation it
// replaced. refEstimateIngredient and its helpers below are the
// pre-arena per-phrase path kept verbatim as an executable golden spec
// (the PR-2 refMatcher pattern): every phrase of the §II-A train corpus
// must estimate byte-identically through both.

// refEstimateIngredient is the old uncached pipeline: allocating
// tokenization, string-feature NER, per-field unit normalization.
func refEstimateIngredient(e *Estimator, phrase string) IngredientResult {
	res := IngredientResult{Phrase: phrase}
	res.Extraction = ner.Extract(e.tagger, phrase)
	if res.Extraction.Name == "" {
		return res
	}

	q := match.Query{
		Name:     res.Extraction.Name,
		State:    res.Extraction.State,
		Temp:     res.Extraction.Temp,
		DryFresh: res.Extraction.DryFresh,
	}
	m, ok := e.rawMatch(e.pin(), q, nil)
	if !ok {
		return res
	}
	res.Match, res.Matched = m, true
	food, _ := e.DB().ByNDB(m.NDB)

	res.Quantity = e.quantity(res.Extraction.Quantity)
	refResolveUnit(e, &res, food)
	if res.Grams > 0 {
		res.Profile = food.Per100g.ForGrams(res.Grams)
		res.Mapped = true
	}
	return res
}

// refResolveUnit is the old §II-C fallback chain, re-tokenizing the
// phrase and normalizing entity fields from their joined strings.
func refResolveUnit(e *Estimator, res *IngredientResult, food *usda.Food) {
	tokens := textutil.Tokenize(res.Phrase)

	try := func(unit string, origin UnitOrigin, qty float64) bool {
		grams, via := e.gramsFor(food, unit, qty)
		if grams <= 0 {
			return false
		}
		if grams > e.opts.MaxGramsPerLine {
			if e.opts.DisableRepair {
				return false
			}
			if g2, u2, q2, ok := refRepair(e, food, tokens); ok && g2 <= e.opts.MaxGramsPerLine {
				res.Unit, res.UnitOrigin, res.GramsVia = u2, UnitSearched, GramsWeightRow
				res.Quantity, res.Grams = q2, g2
				if _, exact := food.GramsForUnit(u2); !exact {
					res.GramsVia = GramsConverted
				}
				return true
			}
			return false
		}
		res.Unit, res.UnitOrigin, res.GramsVia = unit, origin, via
		res.Grams = grams
		return true
	}

	if res.Extraction.Unit != "" {
		if name, known := units.Normalize(res.Extraction.Unit); known {
			if try(name, UnitNER, res.Quantity) {
				return
			}
		}
	}
	if res.Extraction.Size != "" {
		if name, known := units.Normalize(res.Extraction.Size); known {
			if try(name, UnitSize, res.Quantity) {
				return
			}
		}
	}
	if !e.opts.DisablePhraseSearch {
		if name, _, ok := units.FindInPhrase(tokens); ok {
			if try(name, UnitSearched, res.Quantity) {
				return
			}
		}
	}
	if !e.opts.DisableMostFrequent {
		if unit := e.mostFrequentUnit(food.NDB); unit != "" {
			if try(unit, UnitMostFrequent, res.Quantity) {
				return
			}
		}
	}
	if !e.opts.DisableDefaultRow {
		for _, wRow := range food.Weights {
			name, known := units.Normalize(wRow.Unit)
			if !known {
				continue
			}
			if try(name, UnitDefaultRow, res.Quantity) {
				return
			}
			break
		}
	}
}

// refRepair is the old adjacent quantity+unit scan.
func refRepair(e *Estimator, food *usda.Food, tokens []string) (grams float64, unit string, qty float64, ok bool) {
	for i := 0; i+1 < len(tokens); i++ {
		q, err := units.ParseQuantity(tokens[i])
		if err != nil || q <= 0 {
			continue
		}
		name, known := units.Normalize(tokens[i+1])
		if !known {
			continue
		}
		g, via := e.gramsFor(food, name, q)
		if via != GramsNone && g > 0 && g <= e.opts.MaxGramsPerLine {
			return g, name, q, true
		}
	}
	return 0, "", 0, false
}

// trainCorpus replicates the §II-A corpus-selection protocol
// (experiments.NERF1): POS-tag every generated phrase, k-means the tag
// frequency vectors, sample a cluster-balanced train+test subset, and
// return the train split — 6,612 phrases at full scale.
func trainCorpus(t *testing.T) []string {
	t.Helper()
	recipes, train, test := 20000, 6612, 2188
	if testing.Short() {
		recipes, train, test = 1500, 800, 260
	}
	corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: recipes, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	phrases := corpus.Phrases()
	examples := corpus.Examples() // index-aligned with Phrases
	vectors := make([][]float64, len(examples))
	for i, ex := range examples {
		vectors[i] = postag.FrequencyVector(postag.TagPhrase(ex.Tokens))
	}
	const k = 8
	cl, err := cluster.KMeans(vectors, cluster.Config{K: k, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	idx := cluster.SampleBalanced(cl.Assignment, k, train+test, 42)
	if len(idx) < train {
		t.Fatalf("balanced sample too small: %d < %d", len(idx), train)
	}
	out := make([]string, train)
	for i := 0; i < train; i++ {
		out[i] = phrases[idx[i]]
	}
	return out
}

func resultsEqual(a, b IngredientResult) bool {
	return reflect.DeepEqual(a, b)
}

// TestPipelineGoldenCorpus runs the full train corpus through the
// scratch-arena pipeline — uncached, cached, and cache-hit — and
// requires byte-identical results against the pre-arena reference, for
// both the rule tagger and a trained model.
func TestPipelineGoldenCorpus(t *testing.T) {
	phrases := trainCorpus(t)

	modelPhrases := phrases
	if len(modelPhrases) > 1000 {
		modelPhrases = modelPhrases[:1000]
	}
	var rt ner.RuleTagger
	var examples []ner.Example
	for _, p := range modelPhrases[:min(len(modelPhrases), 300)] {
		toks := textutil.Tokenize(p)
		if len(toks) == 0 {
			continue
		}
		examples = append(examples, ner.Example{Tokens: toks, Labels: rt.Tag(toks)})
	}
	model, err := ner.Train(examples, ner.TrainConfig{Epochs: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		tagger  ner.Tagger
		phrases []string
	}{
		{"rule", nil, phrases},
		{"model", model, modelPhrases},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			uncached, err := New(usda.Seed(), tc.tagger, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cached, err := New(usda.Seed(), tc.tagger, Options{CacheSize: 1 << 15})
			if err != nil {
				t.Fatal(err)
			}
			mismatches := 0
			for _, p := range tc.phrases {
				want := refEstimateIngredient(uncached, p)
				if got := uncached.EstimateIngredient(p); !resultsEqual(got, want) {
					t.Errorf("uncached %q:\n got %+v\nwant %+v", p, got, want)
					mismatches++
				}
				if got := cached.EstimateIngredient(p); !resultsEqual(got, want) {
					t.Errorf("cached %q:\n got %+v\nwant %+v", p, got, want)
					mismatches++
				}
				// Second call is a guaranteed phrase-cache hit.
				if got := cached.EstimateIngredient(p); !resultsEqual(got, want) {
					t.Errorf("cache hit %q:\n got %+v\nwant %+v", p, got, want)
					mismatches++
				}
				if mismatches > 10 {
					t.Fatal("too many mismatches, stopping")
				}
			}
		})
	}
}

// TestPipelineGoldenBatchStress runs the corpus through the parallel
// batch path with 8 pooled workers (exercised under -race in CI) and
// requires results identical to the sequential path and the reference —
// pooled scratches must never leak state between phrases or workers.
func TestPipelineGoldenBatchStress(t *testing.T) {
	phrases := trainCorpus(t)
	if len(phrases) > 2000 {
		phrases = phrases[:2000]
	}
	e, err := New(usda.Seed(), nil, Options{CacheSize: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]IngredientResult, len(phrases))
	for i, p := range phrases {
		want[i] = refEstimateIngredient(e, p)
	}

	sequential := e.EstimateBatchWorkers(phrases, 1)
	const goroutines = 8
	var wg sync.WaitGroup
	parallel := make([][]IngredientResult, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			parallel[g] = e.EstimateBatchWorkers(phrases, 8)
		}(g)
	}
	wg.Wait()

	for i := range phrases {
		if !resultsEqual(sequential[i], want[i]) {
			t.Fatalf("sequential phrase %q:\n got %+v\nwant %+v", phrases[i], sequential[i], want[i])
		}
		for g := 0; g < goroutines; g++ {
			if !resultsEqual(parallel[g][i], want[i]) {
				t.Fatalf("parallel run %d phrase %q:\n got %+v\nwant %+v", g, phrases[i], parallel[g][i], want[i])
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
