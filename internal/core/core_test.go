package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/usda"
)

func TestEstimateIngredientButterTeaspoon(t *testing.T) {
	// The paper's §II-C worked example: butter has no teaspoon row, so
	// teaspoon must arrive via conversion from the cup row
	// (227 g / 48 tsp ≈ 4.73 g), landing near the paper's "1 teaspoon of
	// butter ≈ 35 calories" reference point.
	e := NewDefault()
	r := e.EstimateIngredient("1 teaspoon butter")
	if !r.Mapped {
		t.Fatalf("not mapped: %+v", r)
	}
	if !strings.HasPrefix(r.Match.Desc, "Butter") {
		t.Fatalf("matched %q", r.Match.Desc)
	}
	if r.GramsVia != GramsConverted {
		t.Errorf("GramsVia = %v, want converted", r.GramsVia)
	}
	if r.Grams < 4.0 || r.Grams > 5.5 {
		t.Errorf("teaspoon of butter = %.2fg, want ≈4.7g", r.Grams)
	}
	if r.Profile.EnergyKcal < 28 || r.Profile.EnergyKcal > 41 {
		t.Errorf("teaspoon of butter = %.1f kcal, want ≈34 (paper: 35)", r.Profile.EnergyKcal)
	}
}

func TestEstimateIngredientExactRow(t *testing.T) {
	e := NewDefault()
	r := e.EstimateIngredient("2 tablespoons butter")
	if !r.Mapped || r.GramsVia != GramsWeightRow {
		t.Fatalf("tbsp butter: %+v", r)
	}
	if r.Grams != 28.4 {
		t.Errorf("2 tbsp butter = %vg, want 28.4", r.Grams)
	}
}

func TestEstimateIngredientMassDirect(t *testing.T) {
	e := NewDefault()
	r := e.EstimateIngredient("100 g all-purpose flour")
	if !r.Mapped {
		t.Fatalf("100g flour unmapped: %+v", r)
	}
	if math.Abs(r.Grams-100) > 0.01 {
		t.Errorf("grams = %v, want 100", r.Grams)
	}
	if math.Abs(r.Profile.EnergyKcal-364) > 15 {
		t.Errorf("100g all-purpose flour = %.0f kcal, want ≈364", r.Profile.EnergyKcal)
	}
	// Bare "flour" is ambiguous across the flour family; the §II-B(i)
	// tie-break still lands on *a* flour with flour-like energy density.
	bare := e.EstimateIngredient("100 g flour")
	if !bare.Mapped || bare.Profile.EnergyKcal < 320 || bare.Profile.EnergyKcal > 380 {
		t.Errorf("bare flour = %.0f kcal (%q)", bare.Profile.EnergyKcal, bare.Match.Desc)
	}
}

func TestEstimateIngredientBareCount(t *testing.T) {
	// "2 eggs": no unit anywhere; the default-row fallback uses the first
	// weight row (large, 50 g).
	e := NewDefault()
	r := e.EstimateIngredient("2 eggs")
	if !r.Mapped {
		t.Fatalf("bare count unmapped: %+v", r)
	}
	if r.UnitOrigin != UnitDefaultRow && r.UnitOrigin != UnitMostFrequent {
		t.Errorf("UnitOrigin = %v", r.UnitOrigin)
	}
	if r.Grams != 100 {
		t.Errorf("2 eggs = %vg, want 100", r.Grams)
	}
}

func TestEstimateIngredientSizeAsUnit(t *testing.T) {
	// "1 small onion": SIZE doubles as the unit; onion has a small row
	// (70 g).
	e := NewDefault()
	r := e.EstimateIngredient("1 small onion , finely chopped")
	if !r.Mapped {
		t.Fatalf("unmapped: %+v", r)
	}
	if r.UnitOrigin != UnitSize {
		t.Errorf("UnitOrigin = %v, want size", r.UnitOrigin)
	}
	if r.Grams != 70 {
		t.Errorf("small onion = %vg, want 70", r.Grams)
	}
}

func TestDualUnitRepair(t *testing.T) {
	// The paper's "500 g or 1 cup" phrase: if the naive pairing computes
	// an implausible weight, the threshold repair must recover the mass
	// reading.
	e := NewDefault()
	r := e.EstimateIngredient("500 g or 1 cup flour")
	if !r.Mapped {
		t.Fatalf("dual-unit unmapped: %+v", r)
	}
	if math.Abs(r.Grams-500) > 1 {
		t.Errorf("dual-unit grams = %v, want 500", r.Grams)
	}
}

func TestThresholdRejectsAbsurdLines(t *testing.T) {
	e := NewDefault()
	r := e.EstimateIngredient("500 cups flour")
	// 500 cups = 62.5 kg; with no repairable pair the line must not map
	// at the absurd weight.
	if r.Mapped && r.Grams > e.opts.MaxGramsPerLine {
		t.Errorf("absurd line mapped at %vg", r.Grams)
	}
}

func TestUnmatchable(t *testing.T) {
	e := NewDefault()
	r := e.EstimateIngredient("2 teaspoons garam masala")
	if r.Matched {
		t.Errorf("garam masala matched %q; the paper cites it as unmappable", r.Match.Desc)
	}
	if r.Mapped || !r.Profile.IsZero() {
		t.Error("unmatched ingredient contributed nutrition")
	}
}

func TestEmptyPhrase(t *testing.T) {
	e := NewDefault()
	r := e.EstimateIngredient("")
	if r.Matched || r.Mapped {
		t.Errorf("empty phrase produced %+v", r)
	}
}

func TestEstimateRecipe(t *testing.T) {
	e := NewDefault()
	phrases := []string{
		"2 cups all-purpose flour",
		"1 cup sugar",
		"1/2 cup butter , softened",
		"2 eggs",
		"1 teaspoon vanilla extract",
		"1/2 teaspoon salt",
	}
	res, err := e.EstimateRecipe(phrases, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MappedFraction != 1.0 {
		for _, ir := range res.Ingredients {
			if !ir.Mapped {
				t.Logf("unmapped: %q → matched=%v unit=%q origin=%v", ir.Phrase, ir.Matched, ir.Unit, ir.UnitOrigin)
			}
		}
		t.Fatalf("MappedFraction = %v, want 1.0", res.MappedFraction)
	}
	// Sanity: flour 250g(910) + sugar 200g(774) + butter 113.5g(814) +
	// eggs 100g(143) + vanilla+salt ≈ 2650 kcal total, ≈660/serving.
	if res.Total.EnergyKcal < 2200 || res.Total.EnergyKcal > 3100 {
		t.Errorf("total = %.0f kcal, want ≈2650", res.Total.EnergyKcal)
	}
	if math.Abs(res.PerServing.EnergyKcal*4-res.Total.EnergyKcal) > 0.01 {
		t.Error("per-serving × servings ≠ total")
	}
}

func TestEstimateRecipeValidation(t *testing.T) {
	e := NewDefault()
	if _, err := e.EstimateRecipe(nil, 4); err == nil {
		t.Error("empty recipe accepted")
	}
	if _, err := e.EstimateRecipe([]string{"1 cup milk"}, 0); err == nil {
		t.Error("zero servings accepted")
	}
}

func TestMostFrequentUnitFallback(t *testing.T) {
	// Feed the stats pass phrases that establish "clove" as garlic's
	// modal unit, then check a unitless garlic line adopts it — the
	// paper's own example.
	e := NewDefault()
	e.ObserveUnits([]string{
		"2 cloves garlic , minced",
		"3 cloves garlic",
		"1 clove garlic",
	})
	r := e.EstimateIngredient("garlic , minced")
	if !r.Mapped {
		t.Fatalf("unmapped: %+v", r)
	}
	if r.UnitOrigin != UnitMostFrequent || r.Unit != "clove" {
		t.Errorf("origin=%v unit=%q, want most-frequent clove", r.UnitOrigin, r.Unit)
	}
	if r.Grams != 3.0 {
		t.Errorf("1 clove garlic = %vg, want 3", r.Grams)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Error("New(nil DB) accepted")
	}
}

func TestAblationSwitches(t *testing.T) {
	db := usda.Seed()
	noConv, err := New(db, nil, Options{DisableConversion: true})
	if err != nil {
		t.Fatal(err)
	}
	r := noConv.EstimateIngredient("1 teaspoon butter")
	if r.GramsVia == GramsConverted {
		t.Error("conversion used despite DisableConversion")
	}

	noDefault, err := New(db, nil, Options{DisableDefaultRow: true, DisableMostFrequent: true})
	if err != nil {
		t.Fatal(err)
	}
	r = noDefault.EstimateIngredient("2 eggs")
	if r.Mapped {
		t.Error("bare count mapped despite disabled fallbacks")
	}
}

func TestCorpusEndToEnd(t *testing.T) {
	// Run the pipeline over a small generated corpus: most lines must
	// map, unmapped lines must be dominated by the region-specific
	// ingredients, and profiles must be valid.
	corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: 150, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	e := NewDefault()
	e.ObserveUnits(corpus.Phrases())
	var mapped, total, unmappableGold int
	for _, rec := range corpus.Recipes {
		phrases := make([]string, len(rec.Ingredients))
		for i, ing := range rec.Ingredients {
			phrases[i] = ing.Phrase
			if ing.Gold.Regional {
				unmappableGold++
			}
		}
		res, err := e.EstimateRecipe(phrases, rec.Servings)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Total.Valid() {
			t.Fatalf("invalid total for recipe %d", rec.ID)
		}
		for _, ir := range res.Ingredients {
			total++
			if ir.Mapped {
				mapped++
			}
		}
	}
	frac := float64(mapped) / float64(total)
	goldMappable := 1 - float64(unmappableGold)/float64(total)
	t.Logf("mapped %.1f%% of lines (gold mappable %.1f%%)", 100*frac, 100*goldMappable)
	if frac < 0.80 {
		t.Errorf("mapped fraction %.3f too low", frac)
	}
}

// Property: the estimator is total and profiles are always valid.
func TestEstimateIngredientTotal(t *testing.T) {
	e := NewDefault()
	f := func(phrase string) bool {
		r := e.EstimateIngredient(phrase)
		return r.Profile.Valid() && (!r.Mapped || r.Grams > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEstimateIngredient(b *testing.B) {
	e := NewDefault()
	phrases := []string{
		"2 cups all-purpose flour",
		"1 small onion , finely chopped",
		"1/2 lb lean ground beef",
		"1 teaspoon butter",
		"2-4 cloves garlic , minced",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EstimateIngredient(phrases[i%len(phrases)])
	}
}
