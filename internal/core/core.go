// Package core assembles the paper's full pipeline (Fig. 1): NER over
// ingredient phrases (§II-A), Modified-Jaccard description matching
// (§II-B), and unit matching with conversion-table and frequency
// fallbacks (§II-C), producing per-ingredient and per-recipe nutritional
// profiles as the sum of ingredient profiles.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nutriprofile/internal/flight"
	"nutriprofile/internal/match"
	"nutriprofile/internal/memo"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/nutrition"
	"nutriprofile/internal/pipeline"
	"nutriprofile/internal/units"
	"nutriprofile/internal/usda"
	"nutriprofile/internal/yield"
)

// UnitOrigin records how the pipeline obtained an ingredient's unit.
type UnitOrigin uint8

const (
	// UnitNone: no unit could be determined at all.
	UnitNone UnitOrigin = iota
	// UnitNER: the NER model tagged a UNIT token.
	UnitNER
	// UnitSize: the NER SIZE entity served as the unit (§II-C treats
	// small/medium/large as units).
	UnitSize
	// UnitSearched: recovered by scanning the phrase for known units
	// (§II-C: "we searched the ingredient phrase for known units").
	UnitSearched
	// UnitMostFrequent: the ingredient's most frequent corpus unit
	// (§II-C: "the most frequent unit for that particular ingredient").
	UnitMostFrequent
	// UnitDefaultRow: the food's first weight-table row, the final
	// fallback when no frequency data exists.
	UnitDefaultRow
)

func (o UnitOrigin) String() string {
	switch o {
	case UnitNER:
		return "ner"
	case UnitSize:
		return "size"
	case UnitSearched:
		return "searched"
	case UnitMostFrequent:
		return "most-frequent"
	case UnitDefaultRow:
		return "default-row"
	default:
		return "none"
	}
}

// GramsVia records how the unit was turned into grams.
type GramsVia uint8

const (
	// GramsNone: the unit never resolved to a gram weight.
	GramsNone GramsVia = iota
	// GramsWeightRow: an exact row of the food's weight table.
	GramsWeightRow
	// GramsConverted: reached through the volume/mass conversion tables
	// (§II-C: "we can add teaspoon as a unit since the ratio of volume of
	// a cup and a teaspoon is constant").
	GramsConverted
)

func (v GramsVia) String() string {
	switch v {
	case GramsWeightRow:
		return "weight-row"
	case GramsConverted:
		return "converted"
	default:
		return "none"
	}
}

// Options configures the Estimator; zero-value disables nothing. The
// Disable* switches exist for the ablation benchmarks.
type Options struct {
	// MaxGramsPerLine is the §II-C sanity threshold on quantity×unit
	// ("putting a threshold on the quantity per unit"): lines computing
	// heavier than this trigger quantity/unit re-pairing. Default 2500 g.
	MaxGramsPerLine float64
	// FuzzyMatch enables the typo-correction fallback: queries that find
	// no description are retried with out-of-vocabulary words corrected
	// to their closest vocabulary word (extension; see match.MatchFuzzy).
	FuzzyMatch bool
	// CacheSize bounds the estimator's two memoization levels: a
	// phrase-level cache (normalized phrase → full IngredientResult) and
	// a match-level cache (match.Query → description match). Estimation
	// is a pure function of phrase + options + frozen unit statistics,
	// so memoization never changes results; it only skips recomputation
	// for the "salt"/"olive oil" phrases that dominate real corpora.
	// 0 (the zero value) disables both caches. ObserveUnits invalidates
	// the phrase cache, since it changes the most-frequent-unit state.
	CacheSize int
	// CachePolicy selects the memo caches' eviction policy: PolicyLRU
	// (the zero value) or PolicyTinyLFU, which adds frequency-gated
	// admission so skewed production traffic keeps its hot head
	// resident through cold bulk scans (memo/tinylfu.go, DESIGN.md
	// §15). The policy can never change estimation results — only
	// which phrases stay cached — so it is a pure performance
	// ablation, threaded to the CLIs as -cache-policy.
	CachePolicy memo.Policy
	// DisableCoalescing turns off single-flight deduplication of
	// concurrent cache misses (see internal/flight). On by default when
	// caching is enabled; coalescing is a no-op for sequential callers,
	// so the switch exists for ablation benchmarks and as an escape
	// hatch. Meaningless when CacheSize == 0 — with no cache to land
	// results in, deduplicating the computation would not be observable.
	DisableCoalescing bool
	// DisableSharding turns off the phrase-hash-partitioned batch
	// dispatch (see shard.go): parallel batches fall back to the
	// work-stealing pool with the shared L2 cache only. Results are
	// identical either way; the switch exists for the scaling ablation
	// benchmarks.
	DisableSharding bool
	// DisableMatchPruning selects the matcher's straight-line exhaustive
	// scoring engine instead of the candidate-pruned one (match.Options.
	// DisablePruning). Rankings are byte-identical either way — the
	// switch exists as the cold-path performance ablation, threaded to
	// the CLIs as -match-pruning.
	DisableMatchPruning bool
	// Ablation switches.
	DisableConversion   bool
	DisablePhraseSearch bool
	DisableMostFrequent bool
	DisableDefaultRow   bool
	DisableRepair       bool
}

// matchOptions is the match-engine configuration the estimator's
// options select: engine defaults plus the pruning ablation.
func (o Options) matchOptions() match.Options {
	mo := match.DefaultOptions()
	mo.DisablePruning = o.DisableMatchPruning
	return mo
}

func (o *Options) fill() {
	if o.MaxGramsPerLine <= 0 {
		o.MaxGramsPerLine = 2500
	}
}

// Estimator is the end-to-end pipeline. Construct with New. A single
// Estimator is safe for concurrent use by any number of goroutines
// (EstimateIngredient, EstimateRecipe, EstimateBatch, EstimateRecipes,
// and even ObserveUnits may be called concurrently), provided the
// Tagger is itself concurrency-safe — the built-in RuleTagger and a
// trained ner.Model both are, since Tag only reads model state.
type Estimator struct {
	// snap is the live (database, matcher, version) snapshot; see
	// snapshot.go for the hot-swap protocol. Every request pins it once
	// and computes entirely against the pinned value.
	snap atomic.Pointer[Snapshot]
	// swapMu serializes snapshot writers (Install, ObserveUnits' gen
	// bump) so version/gen stay strictly monotonic. Readers never take it.
	swapMu sync.Mutex

	tagger ner.Tagger
	opts   Options

	// statsMu guards unitStats: ObserveUnits writes under the write
	// lock, the most-frequent-unit fallback reads under the read lock.
	statsMu sync.RWMutex
	// unitStats maps NDB → canonical unit → observation count, feeding
	// the most-frequent-unit fallback. Populated by ObserveUnits.
	unitStats map[int]map[string]int

	// Memoization (nil when Options.CacheSize == 0). Cached values are
	// shared across goroutines and treated as read-only.
	phraseCache *memo.Cache[IngredientResult]
	matchCache  *memo.Cache[matchHit]

	// flights coalesces concurrent phrase-cache misses on the same
	// normalized token stream: one pipeline pass runs, every waiter
	// shares its result. Sits below the cache — see estimateCached.
	flights flight.Group[IngredientResult]

	// shardState is the per-core sharded batch machinery: worker
	// environments, the phrase-hash slot partition with per-slot L1
	// caches, and the striped batched-flush stat aggregates (shard.go).
	shardState
}

// matchHit is the memoized outcome of one description-match query.
type matchHit struct {
	res match.Result
	ok  bool
}

// New builds an Estimator over a composition table with the given tagger.
// A nil tagger selects the rule-based baseline.
func New(db *usda.DB, tagger ner.Tagger, opts Options) (*Estimator, error) {
	if db == nil {
		return nil, errors.New("core: nil database")
	}
	return newEstimator(db, match.New(db, opts.matchOptions()), tagger, opts, "boot")
}

// NewWithIndex builds an Estimator whose matcher adopts a prebuilt
// scoring index (a baked DB image's) instead of re-indexing db — the
// nutriserve -db startup path. The index is structurally validated;
// source labels the snapshot's origin (e.g. the image path).
func NewWithIndex(db *usda.DB, tagger ner.Tagger, opts Options, idx *match.Index, source string) (*Estimator, error) {
	if db == nil {
		return nil, errors.New("core: nil database")
	}
	opts.fill()
	m, err := match.NewFromIndex(db, opts.matchOptions(), idx)
	if err != nil {
		return nil, err
	}
	return newEstimator(db, m, tagger, opts, source)
}

func newEstimator(db *usda.DB, m *match.Matcher, tagger ner.Tagger, opts Options, source string) (*Estimator, error) {
	if tagger == nil {
		tagger = ner.RuleTagger{}
	}
	opts.fill()
	e := &Estimator{
		tagger:    tagger,
		opts:      opts,
		unitStats: map[int]map[string]int{},
	}
	e.snap.Store(&Snapshot{db: db, matcher: m, version: 1, gen: 0, source: source})
	if opts.CacheSize > 0 {
		e.phraseCache = memo.NewPolicy[IngredientResult](opts.CacheSize, memo.DefaultShards, opts.CachePolicy)
		e.matchCache = memo.NewPolicy[matchHit](opts.CacheSize, memo.DefaultShards, opts.CachePolicy)
	}
	e.shardState.init()
	return e, nil
}

// NewDefault builds an Estimator with the rule tagger and default options
// over the seed database.
func NewDefault() *Estimator {
	e, err := New(usda.Seed(), nil, Options{})
	if err != nil {
		panic(err) // unreachable: seed DB is non-nil
	}
	return e
}

// Matcher exposes the live snapshot's description matcher. Callers
// needing matcher+DB consistency should go through Current() instead.
func (e *Estimator) Matcher() *match.Matcher { return e.snap.Load().matcher }

// DB exposes the live snapshot's composition table.
func (e *Estimator) DB() *usda.DB { return e.snap.Load().db }

// IngredientResult is the pipeline output for one phrase.
type IngredientResult struct {
	Phrase     string
	Extraction ner.Extraction
	Match      match.Result
	Matched    bool // description match found (§II-B succeeded)
	Quantity   float64
	Unit       string // canonical unit, "" if unresolved
	UnitOrigin UnitOrigin
	GramsVia   GramsVia
	Grams      float64
	Profile    nutrition.Profile
	// Mapped reports full success: matched AND grams resolved — the
	// quantity Fig. 2 measures per recipe.
	Mapped bool
}

// RecipeResult aggregates a recipe.
type RecipeResult struct {
	Ingredients []IngredientResult
	Total       nutrition.Profile
	PerServing  nutrition.Profile
	Servings    int
	// MappedFraction is the share of ingredient lines fully mapped to a
	// nutritional profile — the x-axis of the paper's Fig. 2.
	MappedFraction float64
}

// EstimateIngredient runs the full pipeline over one phrase. With
// Options.CacheSize > 0 the result is memoized under the normalized
// (tokenized) phrase: two phrases with identical token streams share
// one cached computation. Returned results must be treated as
// read-only when caching is enabled — they are shared with every other
// caller that hits the same entry.
func (e *Estimator) EstimateIngredient(phrase string) IngredientResult {
	sc := pipeline.Get()
	defer pipeline.Put(sc)
	r, _ := e.estimateCached(e.pin(), phrase, sc, nil)
	return r
}

// estimateCached is EstimateIngredient on a caller-owned scratch: the
// batch workers hold one scratch for their whole shard instead of
// cycling the pool per phrase. The cache key is the normalized token
// stream (rendered in the scratch, probed without allocating), the exact
// input every downstream stage consumes. Its FNV-1a hash is computed
// once and reused for the cache shard, the flight shard, and the store
// — one pass over the key bytes instead of three.
//
// sess, when non-nil, is the worker's pinned match session; nil callers
// match through the pinned snapshot's pool-backed matcher entry points.
//
// v is the request's pinned read context. Cache stores go through
// PutHashGen with the generation captured at pin time, so a result
// computed against a snapshot that a concurrent Install/ObserveUnits
// has since retired is dropped instead of cached (snapshot.go).
//
// The second return is the phrase-cache key hash (0 when caching is
// off): the slot-L1 tier above stores it alongside the result so its
// hits can keep feeding the TinyLFU admission sketch (TouchHash)
// without re-normalizing the phrase.
func (e *Estimator) estimateCached(v view, phrase string, sc *pipeline.Scratch, sess *match.Session) (IngredientResult, uint64) {
	if e.phraseCache == nil {
		return e.estimateIngredient(v, phrase, sc, sess), 0
	}
	sc.Tokenize(phrase)
	key := sc.PhraseKey()
	h := memo.Hash(key)
	if r, ok := e.phraseCache.GetBytesHash(h, key); ok {
		// The cached computation is keyed on the token stream; only the
		// verbatim Phrase field can differ.
		r.Phrase = phrase
		return r, h
	}
	if e.opts.DisableCoalescing {
		r := e.estimateTokenized(v, phrase, sc, sess)
		// key still aliases the scratch (nothing downstream of Tokenize
		// touches the phrase-key buffer); materialize it only on this
		// miss path. Scrub the verbatim phrase from the stored copy: the
		// cache is keyed on the token stream, and the serving layer may
		// pass phrases whose backing bytes it reuses after the call.
		stored := r
		stored.Phrase = ""
		e.phraseCache.PutHashGen(h, string(key), stored, v.phraseGen)
		return r, h
	}
	// Coalesce concurrent misses on the same token stream: under load,
	// the same phrase is often requested again while the first pipeline
	// pass is still running, and the cache can only absorb repeats after
	// a result lands. The leader computes, stores, and shares; waiters
	// block on its flight instead of redoing the pass. The shared value
	// carries no Phrase for the same reason the stored one doesn't.
	r, _ := e.flights.DoHash(h, key, func() IngredientResult {
		r := e.estimateTokenized(v, phrase, sc, sess)
		r.Phrase = ""
		e.phraseCache.PutHashGen(h, string(key), r, v.phraseGen)
		return r
	})
	r.Phrase = phrase
	return r, h
}

// FlightStats reports the single-flight coalescing counters: how many
// cache misses led a pipeline pass and how many shared another caller's
// in-flight result. Zero everywhere when caching or coalescing is off.
func (e *Estimator) FlightStats() flight.Stats { return e.flights.Stats() }

// EstimateIngredientScratch is EstimateIngredient on a caller-owned
// scratch, for callers (like the serving layer) that pool their own
// pipeline scratches across requests. The phrase may be backed by a
// caller-reused buffer: neither the caches nor the shared flight
// results retain it past the call. The same read-only contract as
// EstimateIngredient applies to the returned result.
func (e *Estimator) EstimateIngredientScratch(phrase string, sc *pipeline.Scratch) IngredientResult {
	r, _ := e.estimateCached(e.pin(), phrase, sc, nil)
	return r
}

// matchQuery runs the configured description match, memoized when the
// match cache is enabled. Match results depend on the pinned snapshot's
// matcher, so stores carry the generation captured at pin time and a
// swap purges the cache. The key hash is computed once and shared by
// the shard probe and the store.
func (e *Estimator) matchQuery(v view, q match.Query, sc *pipeline.Scratch, sess *match.Session) (match.Result, bool) {
	if e.matchCache == nil {
		return e.rawMatch(v, q, sess)
	}
	key := sc.JoinKey(q.Name, q.State, q.Temp, q.DryFresh)
	kh := memo.Hash(key)
	if h, ok := e.matchCache.GetBytesHash(kh, key); ok {
		return h.res, h.ok
	}
	res, ok := e.rawMatch(v, q, sess)
	e.matchCache.PutHashGen(kh, string(key), matchHit{res: res, ok: ok}, v.matchGen)
	return res, ok
}

// rawMatch dispatches to the worker's pinned session when one is given,
// otherwise to the pinned snapshot's pool-backed matcher entry points.
func (e *Estimator) rawMatch(v view, q match.Query, sess *match.Session) (match.Result, bool) {
	if sess != nil {
		if e.opts.FuzzyMatch {
			return sess.MatchFuzzy(q)
		}
		return sess.Match(q)
	}
	if e.opts.FuzzyMatch {
		return v.snap.matcher.MatchFuzzy(q)
	}
	return v.snap.matcher.Match(q)
}

// estimateIngredient is the uncached pipeline.
func (e *Estimator) estimateIngredient(v view, phrase string, sc *pipeline.Scratch, sess *match.Session) IngredientResult {
	sc.Tokenize(phrase)
	return e.estimateTokenized(v, phrase, sc, sess)
}

// estimateTokenized runs the pipeline over the phrase already tokenized
// into sc (by estimateCached or estimateIngredient). Everything resolves
// against v's snapshot: matcher and food lookup can never mix databases.
func (e *Estimator) estimateTokenized(v view, phrase string, sc *pipeline.Scratch, sess *match.Session) IngredientResult {
	res := IngredientResult{Phrase: phrase}
	res.Extraction = sc.Extract(e.tagger)
	if res.Extraction.Name == "" {
		return res
	}

	q := match.Query{
		Name:     res.Extraction.Name,
		State:    res.Extraction.State,
		Temp:     res.Extraction.Temp,
		DryFresh: res.Extraction.DryFresh,
	}
	m, ok := e.matchQuery(v, q, sc, sess)
	if !ok {
		return res
	}
	res.Match, res.Matched = m, true
	food, _ := v.snap.db.ByNDB(m.NDB)

	res.Quantity = e.quantity(res.Extraction.Quantity)
	e.resolveUnit(&res, food, sc)
	if res.Grams > 0 {
		res.Profile = food.Per100g.ForGrams(res.Grams)
		res.Mapped = true
	}
	return res
}

// quantity normalizes the extracted quantity; missing or unparseable
// quantities default to 1, the bare-count reading.
func (e *Estimator) quantity(raw string) float64 {
	if raw == "" {
		return 1
	}
	v, err := units.ParseQuantity(raw)
	if err != nil || v <= 0 {
		return 1
	}
	return v
}

// resolveUnit runs the §II-C fallback chain, filling Unit, UnitOrigin,
// GramsVia and Grams. The phrase's tokens are already in sc; entity
// fields resolve through their recorded first-word index and the
// scratch's memoized unit lookups instead of re-tokenizing.
func (e *Estimator) resolveUnit(res *IngredientResult, food *usda.Food, sc *pipeline.Scratch) {
	try := func(unit string, origin UnitOrigin, qty float64) bool {
		grams, via := e.gramsFor(food, unit, qty)
		if grams <= 0 {
			return false
		}
		if grams > e.opts.MaxGramsPerLine {
			if e.opts.DisableRepair {
				return false
			}
			// §II-C threshold: implausibly heavy lines ("500 cups") are
			// re-paired by scanning for an adjacent quantity+unit pair.
			if g2, u2, q2, ok := e.repair(food, sc); ok && g2 <= e.opts.MaxGramsPerLine {
				res.Unit, res.UnitOrigin, res.GramsVia = u2, UnitSearched, GramsWeightRow
				res.Quantity, res.Grams = q2, g2
				if _, exact := food.GramsForUnit(u2); !exact {
					res.GramsVia = GramsConverted
				}
				return true
			}
			return false
		}
		res.Unit, res.UnitOrigin, res.GramsVia = unit, origin, via
		res.Grams = grams
		return true
	}

	// entityUnit resolves an entity field as a unit. Normalize takes the
	// field's first alphabetic word, which is exactly the token whose
	// index AssembleScratch recorded — so the memoized per-token lookup
	// gives the identical result without re-tokenizing the field.
	entityUnit := func(l ner.Label) (string, bool) {
		if idx := sc.NER.FirstWordIndex(l); idx >= 0 {
			return sc.UnitFor(idx)
		}
		return "", false
	}

	// 1. The NER UNIT entity.
	if res.Extraction.Unit != "" {
		if name, known := entityUnit(ner.Unit); known {
			if try(name, UnitNER, res.Quantity) {
				return
			}
		}
	}
	// 2. The NER SIZE entity doubles as a unit (§II-C).
	if res.Extraction.Size != "" {
		if name, known := entityUnit(ner.Size); known {
			if try(name, UnitSize, res.Quantity) {
				return
			}
		}
	}
	// 3. Phrase scan for the first token resolving to a known unit
	// (units.FindInPhrase, through the scratch's memoized lookups).
	if !e.opts.DisablePhraseSearch {
		for i := range sc.Tokens() {
			name, known := sc.UnitFor(i)
			if !known {
				continue
			}
			if try(name, UnitSearched, res.Quantity) {
				return
			}
			break // first known unit only, as FindInPhrase returns
		}
	}
	// 4. Most frequent unit for this ingredient.
	if !e.opts.DisableMostFrequent {
		if unit := e.mostFrequentUnit(food.NDB); unit != "" {
			if try(unit, UnitMostFrequent, res.Quantity) {
				return
			}
		}
	}
	// 5. The food's first RESOLVABLE weight row (SR rows with unit
	// spellings outside the alias inventory are skipped).
	if !e.opts.DisableDefaultRow {
		for i := range food.Weights {
			name, known := food.WeightUnit(i)
			if !known {
				continue
			}
			if try(name, UnitDefaultRow, res.Quantity) {
				return
			}
			break // first resolvable row only, per §II-C consistency
		}
	}
}

// gramsFor turns (unit, qty) into grams for a food: exact weight row
// first, then the conversion lattice.
func (e *Estimator) gramsFor(food *usda.Food, unit string, qty float64) (float64, GramsVia) {
	if gpu, ok := food.GramsForUnit(unit); ok {
		return qty * gpu, GramsWeightRow
	}
	if e.opts.DisableConversion {
		return 0, GramsNone
	}
	kind, err := units.KindOf(unit)
	if err != nil {
		return 0, GramsNone
	}
	switch kind {
	case units.Mass:
		g, err := units.Grams(qty, unit)
		if err != nil {
			return 0, GramsNone
		}
		return g, GramsConverted
	case units.Volume:
		// Bridge through any volume row in the food's weight table
		// (§II-C: add teaspoon for butter via the cup row).
		for i, w := range food.Weights {
			name, known := food.WeightUnit(i)
			if !known {
				continue
			}
			if k, err := units.KindOf(name); err != nil || k != units.Volume {
				continue
			}
			ratio, err := units.Ratio(unit, name)
			if err != nil {
				continue
			}
			return qty * ratio * w.GramsPerOne(), GramsConverted
		}
	}
	return 0, GramsNone
}

// repair scans for adjacent (quantity, unit) token pairs and returns the
// first pair that yields a plausible gram weight — the semi-automated
// recovery for dual-unit phrases like "500 g or 1 cup".
func (e *Estimator) repair(food *usda.Food, sc *pipeline.Scratch) (grams float64, unit string, qty float64, ok bool) {
	tokens := sc.Tokens()
	for i := 0; i+1 < len(tokens); i++ {
		q, err := units.ParseQuantity(tokens[i])
		if err != nil || q <= 0 {
			continue
		}
		name, known := sc.UnitFor(i + 1)
		if !known {
			continue
		}
		g, via := e.gramsFor(food, name, q)
		if via != GramsNone && g > 0 && g <= e.opts.MaxGramsPerLine {
			return g, name, q, true
		}
	}
	return 0, "", 0, false
}

// mostFrequentUnit returns the modal observed unit for a food, or "".
func (e *Estimator) mostFrequentUnit(ndb int) string {
	e.statsMu.RLock()
	defer e.statsMu.RUnlock()
	counts := e.unitStats[ndb]
	best, bestN := "", 0
	for u, n := range counts {
		if n > bestN || (n == bestN && u < best) {
			best, bestN = u, n
		}
	}
	return best
}

// ObserveUnits performs the corpus statistics pass behind the
// most-frequent-unit fallback: phrases whose units resolve directly
// (NER/size/search) contribute counts keyed by matched food.
//
// It is safe to call concurrently with estimation (and with itself):
// the pass runs in two phases — estimate every phrase (in parallel,
// bypassing the phrase cache), then apply the counts under the write
// lock. The contributing set is identical to a sequential pass because
// the NER/size/search fallbacks never read the frequency map. After the
// counts land, the phrase cache is purged, since entries resolved via
// the most-frequent-unit fallback may now be stale.
func (e *Estimator) ObserveUnits(phrases []string) {
	type obs struct {
		ndb  int
		unit string
	}
	v := e.pin()
	observations := make([]obs, len(phrases))
	e.forEachIndex(v.snap, len(phrases), 0, func(i int, w *worker) {
		// Bypass the phrase cache: a cached most-frequent-unit result
		// never contributes, and observation must not pollute the cache
		// with entries that this very pass is about to invalidate.
		r := e.estimateIngredient(v, phrases[i], w.env.sc, w.env.sess)
		if !r.Matched || r.Unit == "" {
			return
		}
		switch r.UnitOrigin {
		case UnitNER, UnitSize, UnitSearched:
			observations[i] = obs{ndb: r.Match.NDB, unit: r.Unit}
		}
	})

	e.statsMu.Lock()
	for _, o := range observations {
		if o.unit == "" {
			continue
		}
		m := e.unitStats[o.ndb]
		if m == nil {
			m = map[string]int{}
			e.unitStats[o.ndb] = m
		}
		m[o.unit]++
	}
	e.statsMu.Unlock()

	if e.phraseCache != nil {
		// Unit statistics changed, so cached most-frequent-unit results
		// are stale. Retire the current generation the same way Install
		// does: publish a snapshot copy with gen bumped (same db/matcher),
		// then purge — the publish-before-purge order plus the gen-guarded
		// stores make the invalidation race-free even against estimates
		// running concurrently with this pass (snapshot.go). The slot L1s
		// (shard.go) are gen-stamped, so they clear on next claim.
		e.swapMu.Lock()
		ns := *e.snap.Load()
		ns.gen++
		e.snap.Store(&ns)
		e.phraseCache.Purge()
		e.swapMu.Unlock()
	}
}

// EstimateRecipe runs the pipeline over a recipe's ingredient section.
func (e *Estimator) EstimateRecipe(phrases []string, servings int) (RecipeResult, error) {
	return e.EstimateRecipeConcurrent(phrases, servings, 1)
}

// EstimateRecipeConcurrent is EstimateRecipe with the ingredient lines
// estimated by a worker pool (see EstimateBatchWorkers for worker
// semantics). The result is identical to the sequential path.
func (e *Estimator) EstimateRecipeConcurrent(phrases []string, servings, workers int) (RecipeResult, error) {
	if len(phrases) == 0 {
		return RecipeResult{}, errors.New("core: recipe has no ingredients")
	}
	if servings <= 0 {
		return RecipeResult{}, fmt.Errorf("core: invalid servings %d", servings)
	}
	return aggregateRecipe(e.EstimateBatchWorkers(phrases, workers), servings), nil
}

// aggregateRecipe sums per-ingredient results into a RecipeResult.
func aggregateRecipe(ingredients []IngredientResult, servings int) RecipeResult {
	out := RecipeResult{Servings: servings, Ingredients: ingredients}
	mapped := 0
	for i := range ingredients {
		out.Total = out.Total.Add(ingredients[i].Profile)
		if ingredients[i].Mapped {
			mapped++
		}
	}
	out.PerServing = out.Total.Scale(1 / float64(servings))
	out.MappedFraction = float64(mapped) / float64(len(ingredients))
	return out
}

// EstimateRecipeCooked runs EstimateRecipe and then applies the
// cooking-yield correction of the given method to the totals — the
// Bognár-style adjustment the paper cites as the accuracy gap of the
// raw-ingredient-sum approximation. With yield.None it is identical to
// EstimateRecipe.
func (e *Estimator) EstimateRecipeCooked(phrases []string, servings int, m yield.Method) (RecipeResult, error) {
	return e.EstimateRecipeCookedConcurrent(phrases, servings, m, 1)
}

// EstimateRecipeCookedConcurrent is EstimateRecipeCooked with the
// ingredient lines estimated by a worker pool (see EstimateBatchWorkers).
func (e *Estimator) EstimateRecipeCookedConcurrent(phrases []string, servings int, m yield.Method, workers int) (RecipeResult, error) {
	out, err := e.EstimateRecipeConcurrent(phrases, servings, workers)
	if err != nil {
		return out, err
	}
	out.Total = yield.Apply(out.Total, m)
	out.PerServing = yield.Apply(out.PerServing, m)
	return out, nil
}
