package core

// Tests for the per-core sharded batch layer (shard.go): partition
// stability, sharded/sequential equivalence, the slot-ownership
// invariant, batched stat-flush totals, and L1 invalidation. The storm
// tests run 32 goroutines against one Estimator and are the -race
// proof obligations of DESIGN.md §12.

import (
	"fmt"
	"sync"
	"testing"

	"nutriprofile/internal/memo"
	"nutriprofile/internal/usda"
)

// stormPhrases flattens a corpus and tiles it with repeats so slot L1s
// see both first-contact and repeat traffic.
func stormPhrases(t *testing.T) []string {
	t.Helper()
	corpus, _ := testCorpus(t, 40)
	flat := corpus.Phrases()
	out := make([]string, 0, len(flat)*3)
	for rep := 0; rep < 3; rep++ {
		out = append(out, flat...)
	}
	return out
}

// TestSlotIndexStableUnderStorm: the phrase→slot mapping is a pure
// function of the phrase bytes — 32 goroutines hashing the same phrases
// concurrently must all agree with the single-threaded answer, and the
// answer must be the memo-family hash truncated to the slot width.
func TestSlotIndexStableUnderStorm(t *testing.T) {
	phrases := stormPhrases(t)
	want := make([]int, len(phrases))
	for i, p := range phrases {
		want[i] = slotIndex(p)
		if exp := int(memo.HashString(p) & (numSlots - 1)); want[i] != exp {
			t.Fatalf("slotIndex(%q) = %d, want memo hash slot %d", p, want[i], exp)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, p := range phrases {
				if got := slotIndex(p); got != want[i] {
					t.Errorf("slotIndex(%q) = %d concurrently, want %d", p, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestShardedBatchMatchesSequential: the sharded parallel dispatch, the
// work-stealing ablation (DisableSharding), and the sequential path must
// produce byte-identical output on the same input.
func TestShardedBatchMatchesSequential(t *testing.T) {
	phrases := stormPhrases(t)

	ref := NewDefault()
	want := make([]string, len(phrases))
	for i, r := range ref.EstimateBatchWorkers(phrases, 1) {
		want[i] = fmt.Sprintf("%+v", r)
	}

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sharded", Options{CacheSize: 1 << 12}},
		{"work-stealing", Options{CacheSize: 1 << 12, DisableSharding: true}},
		{"uncached", Options{}},
	} {
		for _, workers := range []int{2, 4, 8, 32} {
			e, err := New(usda.Seed(), nil, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			got := e.EstimateBatchWorkers(phrases, workers)
			for i := range got {
				if s := fmt.Sprintf("%+v", got[i]); s != want[i] {
					t.Fatalf("%s workers=%d: phrase %q diverged:\n got: %s\nwant: %s",
						tc.name, workers, phrases[i], s, want[i])
				}
			}
		}
	}
}

// TestShardedBatchStorm32 hammers one cached estimator with 32
// concurrent sharded batches. Slot claims collide (TryLock), so this
// exercises the nil-slot fallback; every batch must still return the
// sequential reference results. Run under -race this is the proof that
// slot ownership plus the shared L2 are data-race free.
func TestShardedBatchStorm32(t *testing.T) {
	phrases := stormPhrases(t)

	ref := NewDefault()
	want := make([]string, len(phrases))
	for i, r := range ref.EstimateBatchWorkers(phrases, 1) {
		want[i] = fmt.Sprintf("%+v", r)
	}

	e, err := New(usda.Seed(), nil, Options{CacheSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := e.EstimateBatchWorkers(phrases, 1+g%4)
			for i := range got {
				if s := fmt.Sprintf("%+v", got[i]); s != want[i] {
					t.Errorf("goroutine %d: phrase %q diverged:\n got: %s\nwant: %s", g, phrases[i], s, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestShardL1OwnershipInvariant: after sharded batches, every key in a
// slot's L1 must hash to that very slot — the invariant that lets a
// worker read and write its owned slots without per-phrase locking.
func TestShardL1OwnershipInvariant(t *testing.T) {
	phrases := stormPhrases(t)
	e, err := New(usda.Seed(), nil, Options{CacheSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		e.EstimateBatchWorkers(phrases, workers)
	}
	entries := 0
	for i := range e.slots {
		sl := &e.slots[i]
		sl.mu.Lock()
		for k := range sl.l1 {
			entries++
			if got := slotIndex(k); got != i {
				t.Errorf("slot %d holds %q which hashes to slot %d", i, k, got)
			}
		}
		sl.mu.Unlock()
	}
	if entries == 0 {
		t.Fatal("no L1 entries were populated by sharded batches")
	}
}

// TestShardStatsFlushTotals: workers accumulate stats locally and flush
// once per batch; the striped aggregates must still sum to the exact
// true totals once all batches drain — 32 goroutines, no lost updates.
func TestShardStatsFlushTotals(t *testing.T) {
	phrases := stormPhrases(t)
	e, err := New(usda.Seed(), nil, Options{CacheSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 32
	workersPer := 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.EstimateBatchWorkers(phrases, workersPer)
		}()
	}
	wg.Wait()

	st := e.ShardStats()
	if want := uint64(goroutines * len(phrases)); st.Phrases != want {
		t.Errorf("Phrases = %d, want exactly %d", st.Phrases, want)
	}
	if want := uint64(goroutines * workersPer); st.WorkerFlushes != want {
		t.Errorf("WorkerFlushes = %d, want exactly %d (one per worker per batch)", st.WorkerFlushes, want)
	}
	if st.L1Hits > st.Phrases {
		t.Errorf("L1Hits = %d exceeds Phrases = %d", st.L1Hits, st.Phrases)
	}
	if st.L1Hits == 0 {
		t.Error("L1Hits = 0: repeat traffic never hit a slot L1")
	}
	if st.Slots != numSlots {
		t.Errorf("Slots = %d, want %d", st.Slots, numSlots)
	}
	if st.Envs == 0 || st.Envs > goroutines*uint64(workersPer) {
		t.Errorf("Envs = %d, want in [1, %d]", st.Envs, goroutines*workersPer)
	}
}

// TestSlotL1HitsFeedAdmissionSketch pins the L1→L2 frequency feed:
// every slot-L1 hit must replay its phrase's L2 key hash into the
// TinyLFU admission sketch (memo.TouchHash), so the exact algebra
// phrase-cache Touches == shard L1Hits holds — the hottest phrases
// (absorbed by the L1) keep accruing the frequency that wins them
// admission duels against cold bulk-scan traffic.
func TestSlotL1HitsFeedAdmissionSketch(t *testing.T) {
	phrases := stormPhrases(t)
	e, err := New(usda.Seed(), nil, Options{CacheSize: 1 << 12, CachePolicy: memo.PolicyTinyLFU})
	if err != nil {
		t.Fatal(err)
	}
	e.EstimateBatchWorkers(phrases, 4)
	e.EstimateBatchWorkers(phrases, 4)

	st := e.ShardStats()
	if st.L1Hits == 0 {
		t.Fatal("L1Hits = 0: repeat traffic never hit a slot L1")
	}
	ps, _ := e.CacheStats()
	if ps.Touches != st.L1Hits {
		t.Errorf("phrase-cache Touches = %d, want exactly L1Hits = %d", ps.Touches, st.L1Hits)
	}
}

// TestObserveUnitsInvalidatesSlotL1 pins the epoch contract: a sharded
// batch warms the slot L1s, ObserveUnits changes the unit statistics,
// and the next sharded batch must serve recomputed results — not the
// stale L1 entries.
func TestObserveUnitsInvalidatesSlotL1(t *testing.T) {
	e, err := New(usda.Seed(), nil, Options{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	ref := NewDefault()

	// Two copies so the parallel dispatcher has > 1 item per worker.
	probe := []string{"garlic , minced", "garlic , minced"}
	before := e.EstimateBatchWorkers(probe, 2)
	wantBefore := ref.EstimateIngredient(probe[0])
	if fmt.Sprintf("%+v", before[0]) != fmt.Sprintf("%+v", wantBefore) {
		t.Fatal("sharded estimator diverged before observation")
	}

	teach := []string{"2 cloves garlic", "3 cloves garlic , crushed"}
	e.ObserveUnits(teach)
	ref.ObserveUnits(teach)

	after := e.EstimateBatchWorkers(probe, 2)
	want := ref.EstimateIngredient(probe[0])
	for i := range after {
		if fmt.Sprintf("%+v", after[i]) != fmt.Sprintf("%+v", want) {
			t.Fatalf("stale slot L1 after ObserveUnits:\n got: %+v\nwant: %+v", after[i], want)
		}
	}
	if want.UnitOrigin == UnitMostFrequent && after[0].UnitOrigin != UnitMostFrequent {
		t.Fatal("observation did not reach the sharded path")
	}
}

// TestEstimateRecipesSharedWorkers: the recipe-corpus path runs on the
// same worker environments; outcomes must match the sequential recipe
// API exactly.
func TestEstimateRecipesSharedWorkers(t *testing.T) {
	corpus, phrases := testCorpus(t, 30)
	inputs := make([]RecipeInput, len(phrases))
	for i := range phrases {
		inputs[i] = RecipeInput{Phrases: phrases[i], Servings: corpus.Recipes[i].Servings}
	}
	ref := NewDefault()
	want := make([]string, len(inputs))
	for i, in := range inputs {
		rr, err := ref.EstimateRecipeCooked(in.Phrases, in.Servings, in.Method)
		want[i] = renderResult(rr, err)
	}
	e, err := New(usda.Seed(), nil, Options{CacheSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for i, o := range e.EstimateRecipes(inputs, workers) {
			if got := renderResult(o.Result, o.Err); got != want[i] {
				t.Fatalf("workers=%d recipe %d diverged:\n got: %s\nwant: %s", workers, i, got, want[i])
			}
		}
	}
}
